// Dynamic topology: battery-powered sensors leave when their voltage drops
// and rejoin after recharging. The cluster structure reconfigures itself
// with node-move-in / node-move-out, time-slots are repaired locally, and
// broadcasts keep completing throughout — the paper's "dynamic sensor
// network" scenario.
package main

import (
	"fmt"
	"log"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/geom"
	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func main() {
	cfg := workload.PaperConfig(11, 10, 150)
	base, events, err := workload.ChurnTrace(cfg, 60, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.Build(base.Graph(), core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Track live positions so joiners can discover their neighbors.
	live := make(map[graph.NodeID]geom.Point)
	for i, p := range base.Pos {
		live[graph.NodeID(i)] = p
	}

	joins, leaves := 0, 0
	for step, ev := range events {
		switch ev.Kind {
		case workload.Join:
			var nbrs []graph.NodeID
			for id, q := range live {
				if ev.Pos.InRange(q, cfg.Range) {
					nbrs = append(nbrs, id)
				}
			}
			if err := net.Join(ev.Node, nbrs); err != nil {
				log.Fatalf("step %d: join: %v", step, err)
			}
			live[ev.Node] = ev.Pos
			joins++
		case workload.Leave:
			if err := net.Leave(ev.Node); err != nil {
				log.Fatalf("step %d: leave: %v", step, err)
			}
			delete(live, ev.Node)
			leaves++
		}
		if err := net.Verify(); err != nil {
			log.Fatalf("step %d: invariants broken: %v", step, err)
		}
		// Every 15 steps, the sink disseminates a configuration update.
		if (step+1)%15 == 0 {
			m, err := net.Broadcast(net.Root(), broadcast.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("after %2d events (%d nodes): broadcast %d rounds, %d/%d delivered\n",
				step+1, net.Size(), m.CompletionRound, m.Received, m.Audience)
			if !m.Completed {
				log.Fatal("broadcast incomplete on a reconfigured network")
			}
		}
	}

	st := net.Stats()
	fmt.Printf("\nsurvived %d joins and %d leaves; final size %d\n", joins, leaves, net.Size())
	fmt.Printf("accumulated maintenance: %d structural rounds, %d slot-update rounds\n",
		st.StructuralRounds, st.SlotRounds)
}
