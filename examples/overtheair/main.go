// Over the air, end to end: this example never touches the structural API
// directly. The whole network self-constructs through the message-level
// node-move-in protocol (randomized neighbor discovery, knowledge queries,
// attach handshakes), a latecomer joins the same way, a battery-dead node
// departs with the announced Euler tour of node-move-out, and the sink
// broadcasts — all measured in radio rounds on the collision-accurate
// engine.
package main

import (
	"fmt"
	"log"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/graph"
	"dynsens/internal/joinproto"
	"dynsens/internal/workload"
)

func main() {
	deployment, err := workload.IncrementalConnected(workload.PaperConfig(77, 8, 80))
	if err != nil {
		log.Fatal(err)
	}

	// Self-construction: 79 joins, each starting from zero knowledge.
	boot, err := joinproto.Bootstrap(deployment, core.Config{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	net := boot.Network
	fmt.Printf("self-constructed %d nodes in %d radio rounds (%.0f rounds/node, %d incomplete discoveries)\n",
		net.Size(), boot.TotalRounds,
		float64(boot.TotalRounds)/float64(net.Size()-1), boot.IncompleteDiscoveries)

	// A latecomer is deployed next to node 40.
	anchor := graph.NodeID(40)
	nbrs := append([]graph.NodeID{anchor}, net.Graph().Neighbors(anchor)...)
	join, err := joinproto.Join(net, 500, nbrs, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latecomer:  %s\n", join)

	// A node with a draining battery leaves; pick one whose departure
	// keeps the network connected.
	var victim graph.NodeID
	found := false
	for _, id := range net.CNet().Tree().Nodes() {
		if id == net.Root() || id == 500 {
			continue
		}
		g := net.Graph().Clone()
		g.RemoveNode(id)
		if g.Connected() {
			victim, found = id, true
			break
		}
	}
	if !found {
		log.Fatal("no safely removable node")
	}
	leave, err := joinproto.Leave(net, victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("departure:  %s\n", leave)

	if err := net.Verify(); err != nil {
		log.Fatalf("invariants after over-the-air churn: %v", err)
	}

	// The reconfigured network still broadcasts collision-free.
	m, err := net.Broadcast(net.Root(), broadcast.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast:  %s\n", m)
	if !m.Completed {
		log.Fatal("broadcast incomplete")
	}
	fmt.Println("\nevery phase above ran as scheduled transmissions on the shared radio channel.")
}
