// Robustness: sensors die mid-broadcast. The depth-first-order baseline
// carries a single token, so one death on the Eulerian tour stalls the
// whole broadcast; collision-free flooding keeps every surviving branch
// relaying. This example injects the same failure trace into both
// protocols and compares who still gets the message.
package main

import (
	"fmt"
	"log"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/workload"
)

func main() {
	deployment, err := workload.IncrementalConnected(workload.PaperConfig(5, 10, 300))
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.Build(deployment.Graph(), core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	dfoHorizon := 2 * (st.BackboneSize - 1)

	fmt.Println("fail%   CFF delivery   DFO delivery")
	for _, frac := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		trace := workload.FailureTrace(net.Graph(), net.Root(), frac, dfoHorizon, 1234)
		var fails []broadcast.NodeFailure
		for _, f := range trace {
			fails = append(fails, broadcast.NodeFailure{Node: f.Node, Round: f.Round})
		}

		cff, err := net.Broadcast(net.Root(), broadcast.Options{Failures: fails})
		if err != nil {
			log.Fatal(err)
		}
		dfo, err := net.BroadcastDFO(net.Root(), broadcast.Options{Failures: fails})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f%%   %5.1f%% (%3d)   %5.1f%% (%3d)\n",
			frac*100,
			cff.DeliveryRatio()*100, cff.Received,
			dfo.DeliveryRatio()*100, dfo.Received)
	}
	fmt.Println("\n(the same nodes die at the same rounds in both runs;")
	fmt.Println(" flooding routes around them, the token does not)")
}
