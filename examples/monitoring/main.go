// Environmental monitoring: the full dissemination/collection cycle. The
// sink broadcasts a measurement command with collision-free flooding, the
// field answers with a convergecast that aggregates every reading exactly,
// and the per-cycle energy cost shows why clustered TDM lets sensors spend
// almost the entire cycle asleep.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/energy"
	"dynsens/internal/gather"
	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func main() {
	deployment, err := workload.IncrementalConnected(workload.PaperConfig(21, 10, 300))
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.Build(deployment.Graph(), core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2026))
	model := energy.DefaultModel()
	fmt.Println("cycle  command-rounds  readings  mean-temp(c)  max-awake  worst-node-energy")

	for cycle := 1; cycle <= 5; cycle++ {
		// Downlink: the sink orders a measurement.
		cmd, err := net.Broadcast(net.Root(), broadcast.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !cmd.Completed {
			log.Fatalf("cycle %d: command broadcast incomplete", cycle)
		}

		// Every sensor takes a reading (fixed-point centi-degrees).
		readings := make(map[graph.NodeID]int64)
		for _, id := range net.CNet().Tree().Nodes() {
			readings[id] = 1500 + int64(rng.Intn(1000)) // 15.00 - 25.00 C
		}

		// Uplink: exact in-network aggregation.
		agg, err := net.Gather(readings, gather.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !agg.Complete() {
			log.Fatalf("cycle %d: lost %d readings", cycle, agg.Nodes-agg.Reporting)
		}
		meanTemp := float64(agg.Sum) / float64(agg.Reporting) / 100

		// Energy: price the worst node's cycle.
		epoch := cmd.ScheduleLen + agg.ScheduleLen
		worst := 0.0
		for _, id := range net.CNet().Tree().Nodes() {
			cost := model.EpochCost(cmd.Listens[id], cmd.Transmits[id], epoch/2) +
				model.EpochCost(0, 0, epoch/2) // gather costs are tiny; bound them by sleep
			if cost > worst {
				worst = cost
			}
		}
		maxAwake := cmd.MaxAwake + agg.MaxAwake
		fmt.Printf("%5d  %14d  %8d  %12.2f  %9d  %17.2f\n",
			cycle, cmd.CompletionRound, agg.Reporting, meanTemp, maxAwake, worst)
	}

	st := net.Stats()
	fmt.Printf("\n%d sensors stayed awake at most a handful of the ~%d rounds per cycle;\n",
		st.Nodes, 2*st.Delta+st.SmallDelta*st.BackboneHeight)
	fmt.Println("everything else was spent in sleep mode — the paper's energy argument, end to end.")
}
