// Quickstart: deploy a sensor field, let it self-organize into the
// cluster-based structure, and broadcast a message from the sink with the
// paper's Improved Collision-Free Flooding — then compare against the
// depth-first-order baseline.
package main

import (
	"fmt"
	"log"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/workload"
)

func main() {
	// 250 sensors on a 1 km x 1 km field, 50 m radio range — the paper's
	// simulation setup. The deployment is connected by construction
	// because nodes join the network one at a time (node-move-in).
	deployment, err := workload.IncrementalConnected(workload.PaperConfig(42, 10, 250))
	if err != nil {
		log.Fatal(err)
	}

	// Self-organize: every node is inserted via node-move-in, becoming a
	// cluster head, gateway or pure member, and time-slots are assigned
	// incrementally.
	net, err := core.Build(deployment.Graph(), core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		log.Fatalf("structure invariants violated: %v", err)
	}

	st := net.Stats()
	fmt.Printf("self-organized: %d clusters, backbone %d nodes (height %d)\n",
		st.Clusters, st.BackboneSize, st.BackboneHeight)
	fmt.Printf("max degrees D=%d d=%d; largest slots Delta=%d delta=%d\n",
		st.DegreeG, st.DegreeBT, st.Delta, st.SmallDelta)

	// Broadcast from the sink.
	cff, err := net.Broadcast(net.Root(), broadcast.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dfo, err := net.BroadcastDFO(net.Root(), broadcast.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncollision-free flooding: %s\n", cff)
	fmt.Printf("depth-first baseline:    %s\n", dfo)
	fmt.Printf("\nCFF is %.1fx faster and nodes sleep %.1fx longer.\n",
		float64(dfo.CompletionRound)/float64(cff.CompletionRound),
		float64(dfo.MaxAwake)/float64(cff.MaxAwake))
}
