// Firmware rollout: a fleet operator pushes an update to one device model
// only. Devices register in multicast groups by model; the update is
// multicast with relay-list pruning, so subtrees without that model never
// wake up to relay — far fewer transmissions than flooding everyone.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/workload"
)

const (
	modelA = 1 // temperature sensors
	modelB = 2 // humidity sensors
	modelC = 3 // vibration sensors
)

func main() {
	deployment, err := workload.IncrementalConnected(workload.PaperConfig(7, 10, 400))
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.Build(deployment.Graph(), core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Each device registers its model as a multicast group; relay-lists
	// propagate to the sink automatically.
	rng := rand.New(rand.NewSource(99))
	count := map[int]int{}
	for _, id := range net.CNet().Tree().Nodes() {
		model := modelA + rng.Intn(3)
		if err := net.JoinGroup(id, model); err != nil {
			log.Fatal(err)
		}
		count[model]++
	}
	fmt.Printf("fleet: %d model-A, %d model-B, %d model-C devices\n",
		count[modelA], count[modelB], count[modelC])
	if err := net.Verify(); err != nil {
		log.Fatalf("relay lists inconsistent: %v", err)
	}

	// Push the model-B firmware from the sink.
	mc, err := net.Multicast(modelB, net.Root(), broadcast.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// What a full broadcast would have cost.
	bc, err := net.Broadcast(net.Root(), broadcast.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmulticast to model B: %s\n", mc)
	fmt.Printf("full broadcast:       %s\n", bc)
	if !mc.Completed {
		log.Fatalf("rollout incomplete: %d/%d devices updated", mc.Received, mc.Audience)
	}
	fmt.Printf("\nall %d model-B devices updated with %d transmissions (broadcast needs %d)\n",
		mc.Audience, mc.Transmissions, bc.Transmissions)

	// A device model can be retired: leaving the group prunes it from
	// future rollouts immediately.
	members := net.Groups().GroupMembers(modelC)
	for _, id := range members {
		if err := net.LeaveGroup(id, modelC); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("retired model C (%d devices left the group)\n", len(members))
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
}
