package radio

import (
	"testing"

	"dynsens/internal/graph"
)

// scriptProg executes a fixed per-round action script, then sleeps. It
// records everything delivered to it.
type scriptProg struct {
	script   map[int]Action
	received []Message
	doneFrom int // Done() after this many rounds of script exhausted; 0 = when script empty
	lastAct  int
}

func newScript(script map[int]Action) *scriptProg {
	return &scriptProg{script: script}
}

func (p *scriptProg) Act(round int) Action {
	p.lastAct = round
	if a, ok := p.script[round]; ok {
		return a
	}
	return SleepAction()
}

func (p *scriptProg) Deliver(_ int, msg Message) { p.received = append(p.received, msg) }

func (p *scriptProg) Done() bool {
	for r := range p.script {
		if r > p.lastAct {
			return false
		}
	}
	return true
}

func pair(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	return g
}

func runEngine(t *testing.T, g *graph.Graph, progs map[graph.NodeID]Program, rounds int) Result {
	t.Helper()
	e, err := NewEngine(g, progs)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(rounds)
}

func TestSingleTransmitterDelivers(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 7, Src: 0})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	res := runEngine(t, g, map[graph.NodeID]Program{0: tx, 1: rx}, 5)
	if len(rx.received) != 1 || rx.received[0].Seq != 7 {
		t.Fatalf("received %v", rx.received)
	}
	if rx.received[0].From != 0 {
		t.Fatalf("From not stamped: %+v", rx.received[0])
	}
	if res.Deliveries != 1 || res.Collisions != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCollisionTwoTransmitters(t *testing.T) {
	// 0 and 2 both transmit to 1 in the same round: collision, nothing heard.
	g := graph.New()
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 1)
	a := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 1})})
	b := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 2})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	res := runEngine(t, g, map[graph.NodeID]Program{0: a, 2: b, 1: rx}, 3)
	if len(rx.received) != 0 {
		t.Fatalf("collision delivered: %v", rx.received)
	}
	if res.Collisions != 1 {
		t.Fatalf("collisions = %d", res.Collisions)
	}
}

func TestNoCollisionAcrossChannels(t *testing.T) {
	// Two transmitters on different channels; listener tuned to channel 1
	// hears only that transmitter.
	g := graph.New()
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 1)
	a := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 10})})
	b := newScript(map[int]Action{1: TransmitOn(1, Message{Seq: 20})})
	rx := newScript(map[int]Action{1: ListenOn(1)})
	res := runEngine(t, g, map[graph.NodeID]Program{0: a, 2: b, 1: rx}, 3)
	if len(rx.received) != 1 || rx.received[0].Seq != 20 {
		t.Fatalf("received %v", rx.received)
	}
	if res.Collisions != 0 {
		t.Fatalf("collisions = %d", res.Collisions)
	}
}

func TestNonNeighborNotHeard(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	g.AddNode(1) // no edge
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 5})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	res := runEngine(t, g, map[graph.NodeID]Program{0: tx, 1: rx}, 2)
	if len(rx.received) != 0 || res.Deliveries != 0 {
		t.Fatalf("non-neighbor heard: %v", rx.received)
	}
}

func TestSleepingNodeHearsNothing(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 5})})
	rx := newScript(map[int]Action{}) // always sleeps
	runEngine(t, g, map[graph.NodeID]Program{0: tx, 1: rx}, 2)
	if len(rx.received) != 0 {
		t.Fatal("sleeping node received")
	}
}

func TestAwakeAccounting(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{}), 3: TransmitOn(0, Message{})})
	rx := newScript(map[int]Action{1: ListenOn(0), 2: ListenOn(0)})
	res := runEngine(t, g, map[graph.NodeID]Program{0: tx, 1: rx}, 4)
	if res.Awake[0] != 2 {
		t.Fatalf("tx awake = %d", res.Awake[0])
	}
	if res.Awake[1] != 2 {
		t.Fatalf("rx awake = %d", res.Awake[1])
	}
	if res.Transmissions != 2 {
		t.Fatalf("transmissions = %d", res.Transmissions)
	}
	if res.MaxAwake() != 2 {
		t.Fatalf("MaxAwake = %d", res.MaxAwake())
	}
	if res.MeanAwake() != 2 {
		t.Fatalf("MeanAwake = %v", res.MeanAwake())
	}
}

func TestQuiescence(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	res := runEngine(t, g, map[graph.NodeID]Program{0: tx, 1: rx}, 100)
	if !res.Quiesced {
		t.Fatal("did not quiesce")
	}
	if res.Rounds >= 100 {
		t.Fatalf("ran full %d rounds", res.Rounds)
	}
}

func TestNodeFailureSilences(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{2: TransmitOn(0, Message{Seq: 9})})
	rx := newScript(map[int]Action{2: ListenOn(0)})
	e, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	e.FailNodeAt(0, 2) // dies at start of round 2: its transmit never happens
	e.Run(3)
	if len(rx.received) != 0 {
		t.Fatal("dead node transmitted")
	}
}

func TestNodeFailureAfterTransmit(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 9})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	e, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	e.FailNodeAt(0, 2) // dies after round 1: transmit succeeds
	e.Run(3)
	if len(rx.received) != 1 {
		t.Fatal("round-1 transmit lost")
	}
}

func TestLinkFailure(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{2: TransmitOn(0, Message{Seq: 9})})
	rx := newScript(map[int]Action{2: ListenOn(0)})
	e, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	e.FailLinkAt(1, 0, 2)
	res := e.Run(3)
	if len(rx.received) != 0 {
		t.Fatal("cut link carried a message")
	}
	if res.Deliveries != 0 {
		t.Fatalf("deliveries = %d", res.Deliveries)
	}
}

func TestDeadNeighborDoesNotJam(t *testing.T) {
	// 0 and 2 would collide at 1, but 2 dies first: 1 hears 0.
	g := graph.New()
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 1)
	a := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 1})})
	b := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 2})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	e, err := NewEngine(g, map[graph.NodeID]Program{0: a, 2: b, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	e.FailNodeAt(2, 1)
	e.Run(2)
	if len(rx.received) != 1 || rx.received[0].Seq != 1 {
		t.Fatalf("received %v", rx.received)
	}
}

func TestEngineRejectsMissingProgram(t *testing.T) {
	g := pair(t)
	_, err := NewEngine(g, map[graph.NodeID]Program{0: newScript(nil)})
	if err == nil {
		t.Fatal("missing program accepted")
	}
	_, err = NewEngine(g, map[graph.NodeID]Program{
		0: newScript(nil), 1: newScript(nil), 7: newScript(nil),
	})
	if err == nil {
		t.Fatal("extra program accepted")
	}
}

func TestTraceEvents(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 3})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	e, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	var evs []Event
	e.SetTrace(func(ev Event) { evs = append(evs, ev) })
	e.Run(2)
	var sawTx, sawRx bool
	for _, ev := range evs {
		switch ev.Kind {
		case EvTransmit:
			sawTx = true
			if ev.Node != 0 {
				t.Fatalf("tx event node = %d", ev.Node)
			}
		case EvDeliver:
			sawRx = true
			if ev.Node != 1 || ev.Peer != 0 {
				t.Fatalf("rx event = %+v", ev)
			}
		}
	}
	if !sawTx || !sawRx {
		t.Fatalf("missing events: %+v", evs)
	}
}

func TestActionKindString(t *testing.T) {
	if Sleep.String() != "sleep" || Listen.String() != "listen" || Transmit.String() != "transmit" {
		t.Fatal("ActionKind strings wrong")
	}
	if ActionKind(42).String() == "" {
		t.Fatal("unknown kind should format")
	}
}

func TestTransmitterDoesNotHearItself(t *testing.T) {
	// A node transmitting cannot simultaneously receive; also its own
	// transmission must not count toward a neighbor's collision with
	// itself. Node 0 transmits; node 1 transmits too but on another
	// channel; listener 2 hears node 0 only.
	g := graph.New()
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(1, 2)
	a := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 1})})
	b := newScript(map[int]Action{1: TransmitOn(1, Message{Seq: 2})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	res := runEngine(t, g, map[graph.NodeID]Program{0: a, 1: b, 2: rx}, 2)
	if len(rx.received) != 1 || rx.received[0].Seq != 1 {
		t.Fatalf("received %v", rx.received)
	}
	if res.Collisions != 0 {
		t.Fatalf("collisions = %d", res.Collisions)
	}
}

func TestClockSkewShiftsSchedule(t *testing.T) {
	// Transmitter believes it is one round later than it is: its local
	// round-2 transmission happens at global round 1; a listener tuned to
	// global round 1 hears it.
	g := pair(t)
	tx := newScript(map[int]Action{2: TransmitOn(0, Message{Seq: 5})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	e, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	e.SetClockSkew(0, 1)
	e.Run(3)
	if len(rx.received) != 1 || rx.received[0].Seq != 5 {
		t.Fatalf("skewed transmission not heard at shifted round: %v", rx.received)
	}
}

func TestClockSkewBreaksAlignment(t *testing.T) {
	// Without compensation, a -1-skewed transmitter fires one global
	// round late and the listener misses it.
	g := pair(t)
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 5})})
	rx := newScript(map[int]Action{1: ListenOn(0)})
	e, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	e.SetClockSkew(0, -1)
	e.Run(3)
	if len(rx.received) != 0 {
		t.Fatalf("misaligned transmission heard: %v", rx.received)
	}
}

func TestDeliverSeesLocalRound(t *testing.T) {
	g := pair(t)
	tx := newScript(map[int]Action{1: TransmitOn(0, Message{Seq: 5})})
	rx := newScript(map[int]Action{0: ListenOn(0), 1: ListenOn(0)})
	e, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	e.SetClockSkew(1, 1) // listener's local round 2 == global round 1
	var localRound int
	rxWrapped := &roundCapture{inner: rx, last: &localRound}
	e2, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rxWrapped})
	if err != nil {
		t.Fatal(err)
	}
	e2.SetClockSkew(1, 1)
	e2.Run(2)
	_ = e
	if localRound != 2 {
		t.Fatalf("Deliver saw round %d, want local 2", localRound)
	}
}

type roundCapture struct {
	inner *scriptProg
	last  *int
}

func (r *roundCapture) Act(round int) Action { return ListenOn(0) }
func (r *roundCapture) Deliver(round int, msg Message) {
	*r.last = round
	r.inner.Deliver(round, msg)
}
func (r *roundCapture) Done() bool { return false }

func TestSetLossBoundsAndEffect(t *testing.T) {
	g := pair(t)
	e, err := NewEngine(g, map[graph.NodeID]Program{0: newScript(nil), 1: newScript(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetLoss(-0.1, 1); err == nil {
		t.Fatal("negative loss accepted")
	}
	if err := e.SetLoss(1, 1); err == nil {
		t.Fatal("loss rate 1 accepted")
	}
	if err := e.SetLoss(0.5, 1); err != nil {
		t.Fatal(err)
	}
	// With heavy loss, repeated transmissions sometimes fail to arrive.
	script := make(map[int]Action)
	rxScript := make(map[int]Action)
	for r := 1; r <= 40; r++ {
		script[r] = TransmitOn(0, Message{Seq: r})
		rxScript[r] = ListenOn(0)
	}
	tx := newScript(script)
	rx := newScript(rxScript)
	e2, err := NewEngine(g, map[graph.NodeID]Program{0: tx, 1: rx})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.SetLoss(0.5, 7); err != nil {
		t.Fatal(err)
	}
	e2.Run(40)
	if len(rx.received) == 0 || len(rx.received) == 40 {
		t.Fatalf("50%% loss delivered %d/40 frames", len(rx.received))
	}
}

func TestRunZeroRounds(t *testing.T) {
	g := pair(t)
	res := runEngine(t, g, map[graph.NodeID]Program{0: newScript(nil), 1: newScript(nil)}, 0)
	if res.Rounds != 0 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}
