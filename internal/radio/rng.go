package radio

import "dynsens/internal/graph"

// Counter-based loss streams.
//
// The loss model needs one coin per (listener, transmitter, round) frame,
// drawn identically by the reference loop and the kernel at any worker
// count. A single shared *rand.Rand forces a global draw order — that was
// the kernel's serial merge wall — so coins instead come from splitmix64
// counter streams keyed by (lossSeed, listener, round): any shard can
// compute any listener's coins locally, with zero cross-shard ordering
// dependency, and both engines consume each stream in the same in-stream
// order (ascending candidate-transmitter order, the reference loop's
// order). Streams for different (listener, round) pairs never interact, so
// the scheme is deterministic per seed by construction rather than by
// serialization.
//
// splitmix64 (Steele, Lea & Flood; the seeding generator of
// java.util.SplittableRandom and xoshiro) is used both as the key mixer
// and the per-draw generator: a 64-bit Weyl sequence with increment
// smGamma, finalized by mix64. It is not cryptographic — it only has to be
// statistically flat and cheap enough to live inside the resolve phase's
// per-candidate loop.

// smGamma is the splitmix64 Weyl-sequence increment (the golden ratio in
// 0.64 fixed point).
const smGamma = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 output finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// lossStream is one (listener, round) coin stream. The zero value is not a
// valid stream; build one with newLossStream.
type lossStream struct {
	s uint64
}

// newLossStream keys the stream. Node and round enter through separate
// mixing stages (not a plain xor of the raw values) so that nearby
// (node, round) pairs — the common case: every node, every round — land in
// unrelated parts of the sequence space.
func newLossStream(seed uint64, node graph.NodeID, round int) lossStream {
	s := mix64(seed + smGamma)
	s = mix64(s ^ (uint64(int64(node))*0xA24BAED4963EE407 + smGamma))
	s = mix64(s ^ (uint64(int64(round))*0x9FB21C651E98DF25 + smGamma))
	return lossStream{s: s}
}

// next returns the stream's next coin, uniform in [0, 1). The k-th call
// for a given key is the same value in every engine — the candidate index
// is the counter.
func (l *lossStream) next() float64 {
	l.s += smGamma
	return float64(mix64(l.s)>>11) / (1 << 53)
}
