package rounds

import (
	"testing"

	"dynsens/internal/graph"
)

// oldMix64 and oldStream replicate the pre-extraction coin scheme from
// internal/radio/rng.go verbatim: moving the stream into this package must
// not change a single coin, or every seeded recording in the wild silently
// re-rolls its losses.
func oldMix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func oldStream(seed uint64, node graph.NodeID, round int) uint64 {
	const gamma = 0x9E3779B97F4A7C15
	s := oldMix64(seed + gamma)
	s = oldMix64(s ^ (uint64(int64(node))*0xA24BAED4963EE407 + gamma))
	s = oldMix64(s ^ (uint64(int64(round))*0x9FB21C651E98DF25 + gamma))
	return s
}

func TestLossStreamMatchesLegacyScheme(t *testing.T) {
	const gamma = 0x9E3779B97F4A7C15
	for _, tc := range []struct {
		seed  uint64
		node  graph.NodeID
		round int
	}{
		{0, 0, 0},
		{1, 2, 3},
		{0xDEADBEEF, 41, 17},
		{^uint64(0), -1, 1 << 20},
	} {
		st := NewLossStream(tc.seed, tc.node, tc.round)
		s := oldStream(tc.seed, tc.node, tc.round)
		for k := 0; k < 16; k++ {
			s += gamma
			want := float64(oldMix64(s)>>11) / (1 << 53)
			if got := st.Next(); got != want {
				t.Fatalf("seed=%d node=%d round=%d draw %d: got %v, want %v",
					tc.seed, tc.node, tc.round, k, got, want)
			}
		}
	}
}

func TestLossStreamRange(t *testing.T) {
	st := NewLossStream(7, 3, 9)
	for i := 0; i < 1000; i++ {
		if v := st.Next(); v < 0 || v >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, v)
		}
	}
}

func TestResolveNoLoss(t *testing.T) {
	var st LossStream // never read when lossRate == 0
	v, w, lost := Resolve(0, 0, &st, nil)
	if v != Silence || w != -1 || len(lost) != 0 {
		t.Fatalf("0 candidates: got (%v, %d, %v)", v, w, lost)
	}
	v, w, lost = Resolve(1, 0, &st, nil)
	if v != Delivered || w != 0 || len(lost) != 0 {
		t.Fatalf("1 candidate: got (%v, %d, %v)", v, w, lost)
	}
	v, w, lost = Resolve(3, 0, &st, nil)
	if v != Collided || w != -1 || len(lost) != 0 {
		t.Fatalf("3 candidates: got (%v, %d, %v)", v, w, lost)
	}
}

func TestResolveAllLost(t *testing.T) {
	st := NewLossStream(1, 1, 1)
	v, w, lost := Resolve(4, 1-1e-12, &st, nil)
	if v != Silence || w != -1 {
		t.Fatalf("got (%v, %d), want all frames lost", v, w)
	}
	if len(lost) != 4 {
		t.Fatalf("lost %v, want all 4 candidates", lost)
	}
	for i, c := range lost {
		if c != int32(i) {
			t.Fatalf("lost indices %v not in candidate order", lost)
		}
	}
}

// TestResolveCoinOrder pins the coin-order contract: Resolve draws exactly
// one coin per candidate, in candidate order, so the k-th candidate's fate
// depends only on the stream's k-th draw.
func TestResolveCoinOrder(t *testing.T) {
	const seed, node, round = 42, 5, 7
	const rate = 0.5
	ref := NewLossStream(seed, node, round)
	var wantLost []int32
	survivors := 0
	firstSurvivor := int32(-1)
	for c := int32(0); c < 8; c++ {
		if ref.Next() < rate {
			wantLost = append(wantLost, c)
			continue
		}
		if survivors == 0 {
			firstSurvivor = c
		}
		survivors++
	}
	st := NewLossStream(seed, node, round)
	v, w, lost := Resolve(8, rate, &st, nil)
	if len(lost) != len(wantLost) {
		t.Fatalf("lost %v, want %v", lost, wantLost)
	}
	for i := range lost {
		if lost[i] != wantLost[i] {
			t.Fatalf("lost %v, want %v", lost, wantLost)
		}
	}
	switch {
	case survivors == 1 && (v != Delivered || w != firstSurvivor):
		t.Fatalf("got (%v, %d), want (Delivered, %d)", v, w, firstSurvivor)
	case survivors > 1 && v != Collided:
		t.Fatalf("got %v, want Collided", v)
	case survivors == 0 && v != Silence:
		t.Fatalf("got %v, want Silence", v)
	}
}

func TestResolveReusesBuffer(t *testing.T) {
	buf := make([]int32, 0, 8)
	st := NewLossStream(1, 2, 3)
	_, _, lost := Resolve(4, 1-1e-12, &st, buf)
	if len(lost) == 0 || &lost[0] != &buf[:1][0] {
		t.Fatalf("Resolve did not append into the caller's buffer")
	}
}

func TestScheduleBuckets(t *testing.T) {
	s := NewSchedule(
		map[graph.NodeID]int{4: 3, 2: 3, 9: 5, 7: 0},
		map[Link]int{MkLink(3, 1): 2, MkLink(1, 2): 2, MkLink(5, 6): -1},
	)
	if got := s.NodeFails(3); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("NodeFails(3) = %v, want [2 4]", got)
	}
	if got := s.NodeFails(1); len(got) != 0 {
		t.Fatalf("NodeFails(1) = %v, want empty", got)
	}
	// Round 0 deaths are dead-from-start: no bucket, but not alive either.
	if got := s.NodeFails(0); len(got) != 0 {
		t.Fatalf("NodeFails(0) = %v, want empty (no event for pre-run deaths)", got)
	}
	if s.NodeAlive(7, 1) {
		t.Fatal("node 7 (dead at round 0) reported alive in round 1")
	}
	if !s.NodeAlive(4, 2) || s.NodeAlive(4, 3) {
		t.Fatal("node 4 aliveness wrong around its round-3 death")
	}
	if !s.NodeAlive(100, 1000) {
		t.Fatal("unscheduled node reported dead")
	}
	if got := s.LinkFails(2); len(got) != 2 || got[0] != MkLink(1, 2) || got[1] != MkLink(1, 3) {
		t.Fatalf("LinkFails(2) = %v, want [{1 2} {1 3}]", got)
	}
	if !s.LinkAlive(3, 1, 1) || s.LinkAlive(1, 3, 2) {
		t.Fatal("link {1,3} aliveness wrong around its round-2 cut")
	}
	if s.LinkAlive(6, 5, 1) {
		t.Fatal("link {5,6} (cut before the run) reported alive")
	}
	if !s.HasLinkFails() {
		t.Fatal("HasLinkFails false with cuts scheduled")
	}
	if !NewSchedule(nil, nil).NodeAlive(1, 1) || NewSchedule(nil, nil).HasLinkFails() {
		t.Fatal("empty schedule misbehaves")
	}
	if r, ok := s.DeathRound(9); !ok || r != 5 {
		t.Fatalf("DeathRound(9) = %d, %v", r, ok)
	}
	if _, ok := s.DeathRound(100); ok {
		t.Fatal("DeathRound invented a death")
	}
}

func TestScheduleKill(t *testing.T) {
	s := NewSchedule(map[graph.NodeID]int{5: 8}, nil)
	// New death lands sorted in its bucket.
	s.Kill(3, 4)
	s.Kill(1, 4)
	s.Kill(2, 4)
	if got := s.NodeFails(4); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("NodeFails(4) = %v, want [1 2 3]", got)
	}
	// Earlier death wins and leaves the old bucket.
	s.Kill(5, 6)
	if got := s.NodeFails(8); len(got) != 0 {
		t.Fatalf("node 5 still in its old bucket: %v", got)
	}
	if r, _ := s.DeathRound(5); r != 6 {
		t.Fatalf("DeathRound(5) = %d, want 6", r)
	}
	// Later death is a no-op.
	s.Kill(5, 9)
	if r, _ := s.DeathRound(5); r != 6 {
		t.Fatalf("Kill moved a death later: DeathRound(5) = %d", r)
	}
	if s.NodeAlive(5, 6) || !s.NodeAlive(5, 5) {
		t.Fatal("node 5 aliveness wrong after Kill")
	}
}
