// Package rounds is the transport-agnostic core of the radio model's round
// semantics: the counter-based loss coins, the single-listener collision
// resolution rule, and the failure schedule. Both round drivers consume it —
// the in-process three-phase kernel (internal/radio, kernel.go) and the
// distributed coordinator (internal/dist) — so a kernel run and a
// message-passing run of the same seed and scenario resolve every round
// identically, coin for coin and event for event. The package deliberately
// depends only on internal/graph: it must be linkable into a node host or a
// coordinator without dragging in the engine, the trace sinks, or any
// transport.
package rounds

import "dynsens/internal/graph"

// Counter-based loss streams.
//
// The loss model needs one coin per (listener, transmitter, round) frame,
// drawn identically by every round driver: the reference loop, the kernel at
// any worker count, and the distributed coordinator. A single shared
// *rand.Rand forces a global draw order — that was the kernel's serial merge
// wall — so coins instead come from splitmix64 counter streams keyed by
// (lossSeed, listener, round): any shard (or any coordinator) can compute
// any listener's coins locally, with zero cross-shard ordering dependency,
// and every driver consumes each stream in the same in-stream order
// (ascending candidate-transmitter order, the reference loop's order).
// Streams for different (listener, round) pairs never interact, so the
// scheme is deterministic per seed by construction rather than by
// serialization.
//
// splitmix64 (Steele, Lea & Flood; the seeding generator of
// java.util.SplittableRandom and xoshiro) is used both as the key mixer
// and the per-draw generator: a 64-bit Weyl sequence with increment
// smGamma, finalized by mix64. It is not cryptographic — it only has to be
// statistically flat and cheap enough to live inside the resolve phase's
// per-candidate loop.

// smGamma is the splitmix64 Weyl-sequence increment (the golden ratio in
// 0.64 fixed point).
const smGamma = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 output finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// LossStream is one (listener, round) coin stream. The zero value is not a
// valid stream; build one with NewLossStream.
type LossStream struct {
	s uint64
}

// NewLossStream keys the stream. Node and round enter through separate
// mixing stages (not a plain xor of the raw values) so that nearby
// (node, round) pairs — the common case: every node, every round — land in
// unrelated parts of the sequence space.
func NewLossStream(seed uint64, node graph.NodeID, round int) LossStream {
	s := mix64(seed + smGamma)
	s = mix64(s ^ (uint64(int64(node))*0xA24BAED4963EE407 + smGamma))
	s = mix64(s ^ (uint64(int64(round))*0x9FB21C651E98DF25 + smGamma))
	return LossStream{s: s}
}

// Next returns the stream's next coin, uniform in [0, 1). The k-th call
// for a given key is the same value in every round driver — the candidate
// index is the counter.
func (l *LossStream) Next() float64 {
	l.s += smGamma
	return float64(mix64(l.s)>>11) / (1 << 53)
}

// Verdict classifies what one listener hears in one round after the loss
// coins fall: nothing, exactly one frame (a delivery), or two or more
// simultaneous frames (a collision — the model has no collision detection,
// the listener just gets noise).
type Verdict int

const (
	// Silence: no frame survived; the listener hears nothing.
	Silence Verdict = iota
	// Delivered: exactly one frame survived; the listener receives it.
	Delivered
	// Collided: two or more frames survived and jam each other.
	Collided
)

// Resolve applies the radio model's reception rule to one listener: draw
// one loss coin per candidate frame, in candidate order, from the
// listener's (seed, listener, round) stream, then classify the survivors.
// candidates is the number of audible transmitting neighbors (already
// filtered for adjacency and live links, in ascending transmitter order —
// the coin-order contract every driver shares). Indices of candidates the
// loss model dropped are appended to lost (pass a reused buffer; losses
// precede the outcome in the event order). winner is the index of the
// surviving candidate when the verdict is Delivered, -1 otherwise. With
// lossRate == 0 the stream is never read, so a zero-value LossStream is
// fine.
func Resolve(candidates int, lossRate float64, st *LossStream, lost []int32) (verdict Verdict, winner int32, lostOut []int32) {
	heard := 0
	winner = -1
	for c := int32(0); c < int32(candidates); c++ {
		if lossRate > 0 && st.Next() < lossRate {
			lost = append(lost, c)
			continue
		}
		if heard == 0 {
			winner = c
		}
		heard++
	}
	switch {
	case heard == 1:
		return Delivered, winner, lost
	case heard > 1:
		return Collided, -1, lost
	}
	return Silence, -1, lost
}
