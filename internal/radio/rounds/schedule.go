package rounds

import (
	"sort"

	"dynsens/internal/graph"
)

// Link is an undirected link, normalized so U <= V.
type Link struct{ U, V graph.NodeID }

// MkLink normalizes an endpoint pair into a Link.
func MkLink(u, v graph.NodeID) Link {
	if u > v {
		u, v = v, u
	}
	return Link{U: u, V: v}
}

// Schedule is the failure schedule of a run — which nodes die and which
// links are cut, at the start of which round — bucketed by round so a round
// with no failures costs one map lookup instead of a rescan, with the
// per-round buckets sorted for deterministic event emission. Both round
// drivers build one from the same FailNodeAt/FailLinkAt inputs; the
// distributed coordinator additionally grows it at run time via Kill when a
// node misses a round barrier (timeout or transport death), which keeps
// nemesis-induced crashes on exactly the kernel's failure-schedule
// semantics.
type Schedule struct {
	nodeFail map[graph.NodeID]int
	linkFail map[Link]int
	nodeAt   map[int][]graph.NodeID
	linkAt   map[int][]Link
}

// NewSchedule copies the failure maps (round values are 1-based and
// inclusive: the node is dead during its failure round) into a bucketed
// schedule. Failure rounds < 1 mean dead/cut from the start: no event is
// ever emitted for them, matching the engines' emission rule.
func NewSchedule(nodeFail map[graph.NodeID]int, linkFail map[Link]int) *Schedule {
	s := &Schedule{
		nodeFail: make(map[graph.NodeID]int, len(nodeFail)),
		linkFail: make(map[Link]int, len(linkFail)),
		nodeAt:   make(map[int][]graph.NodeID, len(nodeFail)),
		linkAt:   make(map[int][]Link, len(linkFail)),
	}
	for id, r := range nodeFail {
		s.nodeFail[id] = r
		if r >= 1 {
			s.nodeAt[r] = append(s.nodeAt[r], id)
		}
	}
	for lk, r := range linkFail {
		s.linkFail[lk] = r
		if r >= 1 {
			s.linkAt[r] = append(s.linkAt[r], lk)
		}
	}
	for _, ids := range s.nodeAt {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	for _, lks := range s.linkAt {
		sort.Slice(lks, func(i, j int) bool {
			if lks[i].U != lks[j].U {
				return lks[i].U < lks[j].U
			}
			return lks[i].V < lks[j].V
		})
	}
	return s
}

// NodeFails returns the nodes that die at the start of round r, ascending.
func (s *Schedule) NodeFails(r int) []graph.NodeID { return s.nodeAt[r] }

// LinkFails returns the links cut at the start of round r, sorted by
// (U, V).
func (s *Schedule) LinkFails(r int) []Link { return s.linkAt[r] }

// NodeAlive reports whether id is alive during round r (alive iff r
// precedes its failure round).
func (s *Schedule) NodeAlive(id graph.NodeID, r int) bool {
	fr, ok := s.nodeFail[id]
	return !ok || r < fr
}

// LinkAlive reports whether the link {u, v} is intact during round r.
func (s *Schedule) LinkAlive(u, v graph.NodeID, r int) bool {
	fr, ok := s.linkFail[MkLink(u, v)]
	return !ok || r < fr
}

// HasLinkFails reports whether any link cut is scheduled at all, so hot
// resolve loops can skip the per-candidate LinkAlive lookup entirely on the
// common cut-free run.
func (s *Schedule) HasLinkFails() bool { return len(s.linkFail) > 0 }

// DeathRound returns the round id dies, if a death is scheduled.
func (s *Schedule) DeathRound(id graph.NodeID) (int, bool) {
	r, ok := s.nodeFail[id]
	return r, ok
}

// Kill schedules id to die at the start of round r, unless an earlier (or
// equal) death is already on record — the earliest death wins, like the
// engine's FailNodeAt overwritten by a smaller round. Used by the
// distributed coordinator to fold barrier timeouts and transport deaths
// into the same schedule the scripted failures live in.
func (s *Schedule) Kill(id graph.NodeID, r int) {
	if old, ok := s.nodeFail[id]; ok {
		if old <= r {
			return
		}
		if old >= 1 {
			bucket := s.nodeAt[old]
			for i, b := range bucket {
				if b == id {
					s.nodeAt[old] = append(bucket[:i], bucket[i+1:]...)
					break
				}
			}
		}
	}
	s.nodeFail[id] = r
	if r >= 1 {
		bucket := s.nodeAt[r]
		i := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= id })
		bucket = append(bucket, 0)
		copy(bucket[i+1:], bucket[i:])
		bucket[i] = id
		s.nodeAt[r] = bucket
	}
}
