package radio

import (
	"math/rand"
	"testing"

	"dynsens/internal/graph"
)

// chaosProg takes pseudo-random actions every round, recording what it did.
type chaosProg struct {
	rng       *rand.Rand
	horizon   int
	listens   int
	transmits int
	delivered int
	cur       int
}

func (p *chaosProg) Act(round int) Action {
	p.cur = round
	switch p.rng.Intn(3) {
	case 0:
		return SleepAction()
	case 1:
		p.listens++
		return ListenOn(Channel(p.rng.Intn(2)))
	default:
		p.transmits++
		return TransmitOn(Channel(p.rng.Intn(2)), Message{Seq: round})
	}
}

func (p *chaosProg) Deliver(int, Message) { p.delivered++ }
func (p *chaosProg) Done() bool           { return p.cur >= p.horizon }

// FuzzEngineAccounting drives random programs over a random connected graph
// and checks the engine's bookkeeping invariants: awake = listens +
// transmits per node, deliveries bounded by total listens, and trace event
// counts matching the result counters.
func FuzzEngineAccounting(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(10))
	f.Add(int64(42), uint8(20), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, roundsRaw uint8) {
		n := int(nRaw%20) + 2
		horizon := int(roundsRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		g.AddNode(0)
		for i := 1; i < n; i++ {
			_ = g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
		}
		progs := make(map[graph.NodeID]Program, n)
		chaos := make(map[graph.NodeID]*chaosProg, n)
		for _, id := range g.Nodes() {
			c := &chaosProg{rng: rand.New(rand.NewSource(rng.Int63())), horizon: horizon}
			chaos[id] = c
			progs[id] = c
		}
		eng, err := NewEngine(g, progs)
		if err != nil {
			t.Fatal(err)
		}
		var txEvents, rxEvents, collEvents int
		eng.SetTrace(func(ev Event) {
			switch ev.Kind {
			case EvTransmit:
				txEvents++
			case EvDeliver:
				rxEvents++
			case EvCollision:
				collEvents++
			}
		})
		res := eng.Run(horizon)

		totalListens, totalTransmits, totalDelivered := 0, 0, 0
		for id, c := range chaos {
			if res.Awake[id] != c.listens+c.transmits {
				t.Fatalf("node %d awake %d != listens %d + transmits %d",
					id, res.Awake[id], c.listens, c.transmits)
			}
			if res.Listens[id] != c.listens || res.Transmits[id] != c.transmits {
				t.Fatalf("node %d split counts diverge", id)
			}
			totalListens += c.listens
			totalTransmits += c.transmits
			totalDelivered += c.delivered
		}
		if res.Transmissions != totalTransmits || res.Transmissions != txEvents {
			t.Fatalf("transmissions %d vs program %d vs events %d",
				res.Transmissions, totalTransmits, txEvents)
		}
		if res.Deliveries != totalDelivered || res.Deliveries != rxEvents {
			t.Fatalf("deliveries %d vs program %d vs events %d",
				res.Deliveries, totalDelivered, rxEvents)
		}
		if res.Collisions != collEvents {
			t.Fatalf("collisions %d vs events %d", res.Collisions, collEvents)
		}
		if res.Deliveries+res.Collisions > totalListens {
			t.Fatalf("more receptions+collisions (%d) than listens (%d)",
				res.Deliveries+res.Collisions, totalListens)
		}
		if res.Rounds > horizon {
			t.Fatalf("ran %d rounds past horizon %d", res.Rounds, horizon)
		}
	})
}
