package radio

import "testing"

// TestPerfSnapshotMath pins the derived-metric arithmetic on synthetic
// snapshots, where the expected values can be computed by hand.
func TestPerfSnapshotMath(t *testing.T) {
	cases := []struct {
		name          string
		snap          PerfSnapshot
		wantImbalance float64
		wantEvPerRnd  float64
	}{
		{
			name:          "empty",
			snap:          PerfSnapshot{},
			wantImbalance: 1, wantEvPerRnd: 0,
		},
		{
			name:          "single shard is balanced by definition",
			snap:          PerfSnapshot{Rounds: 4, Events: 10, ShardBusyNs: []int64{900}},
			wantImbalance: 1, wantEvPerRnd: 2.5,
		},
		{
			name:          "all idle shards report balanced",
			snap:          PerfSnapshot{Rounds: 1, ShardBusyNs: []int64{0, 0, 0}},
			wantImbalance: 1, wantEvPerRnd: 0,
		},
		{
			name: "skewed pair: max 3 over mean 2",
			snap: PerfSnapshot{Rounds: 2, Events: 7, ShardBusyNs: []int64{3, 1}},
			// max=3, mean=(3+1)/2=2 -> 1.5
			wantImbalance: 1.5, wantEvPerRnd: 3.5,
		},
		{
			name:          "perfectly balanced quad",
			snap:          PerfSnapshot{Rounds: 5, Events: 5, ShardBusyNs: []int64{10, 10, 10, 10}},
			wantImbalance: 1, wantEvPerRnd: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.snap.Imbalance(); got != tc.wantImbalance {
				t.Errorf("Imbalance() = %v, want %v", got, tc.wantImbalance)
			}
			if got := tc.snap.EventsPerRound(); got != tc.wantEvPerRnd {
				t.Errorf("EventsPerRound() = %v, want %v", got, tc.wantEvPerRnd)
			}
		})
	}
}

// TestPerfSnapshotPhaseNs pins the name-indexed phase lookup, including the
// unknown-name zero.
func TestPerfSnapshotPhaseNs(t *testing.T) {
	s := PerfSnapshot{Phases: []PhaseTime{
		{Name: "act", Ns: 100},
		{Name: "resolve", Ns: 200},
		{Name: "barrier-wait", Ns: 7},
	}}
	if got := s.PhaseNs("resolve"); got != 200 {
		t.Errorf("PhaseNs(resolve) = %d, want 200", got)
	}
	if got := s.PhaseNs("barrier-wait"); got != 7 {
		t.Errorf("PhaseNs(barrier-wait) = %d, want 7", got)
	}
	if got := s.PhaseNs("no-such-phase"); got != 0 {
		t.Errorf("PhaseNs(no-such-phase) = %d, want 0", got)
	}
}

// TestPerfAccumulatesAcrossRuns shares one collector between a single-shard
// run (inline path) and a four-shard run (worker-pool path) and checks the
// folded totals: runs count up, the shard axis widens to the largest worker
// count seen, and every phase timer is non-negative with the snapshot
// exposing all five phases in kernel order.
func TestPerfAccumulatesAcrossRuns(t *testing.T) {
	s := scenario{seed: 3, n: 25, extraEdge: 30, horizon: 20, rounds: 20}
	p := NewPerf()

	eng := s.build(t)
	eng.SetWorkers(1)
	eng.SetPerf(p)
	res1 := eng.Run(s.rounds)

	snap := p.Snapshot()
	if snap.Runs != 1 {
		t.Fatalf("after first run: Runs = %d, want 1", snap.Runs)
	}
	if snap.Rounds != int64(res1.Rounds) {
		t.Fatalf("after first run: Rounds = %d, want %d", snap.Rounds, res1.Rounds)
	}
	if snap.Events <= 0 || snap.WallNs <= 0 {
		t.Fatalf("after first run: empty snapshot: %+v", snap)
	}
	if len(snap.ShardBusyNs) != 1 {
		t.Fatalf("after first run: %d shard slots, want 1", len(snap.ShardBusyNs))
	}

	eng = s.build(t)
	eng.SetWorkers(4)
	eng.SetPerf(p)
	res2 := eng.Run(s.rounds)

	snap = p.Snapshot()
	if snap.Runs != 2 {
		t.Fatalf("after second run: Runs = %d, want 2", snap.Runs)
	}
	if want := int64(res1.Rounds + res2.Rounds); snap.Rounds != want {
		t.Fatalf("after second run: Rounds = %d, want %d", snap.Rounds, want)
	}
	if len(snap.ShardBusyNs) != 4 {
		t.Fatalf("after second run: %d shard slots, want 4 (max worker count folded)", len(snap.ShardBusyNs))
	}
	wantPhases := []string{"act", "resolve", "deliver", "seq-stitch", "barrier-wait"}
	if len(snap.Phases) != len(wantPhases) {
		t.Fatalf("snapshot has %d phases, want %d", len(snap.Phases), len(wantPhases))
	}
	for i, name := range wantPhases {
		if snap.Phases[i].Name != name {
			t.Errorf("phase %d = %q, want %q", i, snap.Phases[i].Name, name)
		}
		if snap.Phases[i].Ns < 0 {
			t.Errorf("phase %q accumulated negative time %d", name, snap.Phases[i].Ns)
		}
	}
	if imb := snap.Imbalance(); imb < 1 {
		t.Errorf("Imbalance() = %v, want >= 1", imb)
	}
}

// TestPerfClockDisabled checks the off-path contract: a disabled clock
// never touches its accumulator, so uninstrumented runs take no clock
// reads.
func TestPerfClockDisabled(t *testing.T) {
	var acc int64
	clk := perfClock{on: false}
	clk.start()
	clk.lap(&acc)
	clk.lap(&acc)
	if acc != 0 {
		t.Fatalf("disabled perfClock accumulated %d ns", acc)
	}
}
