package radio

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dynsens/internal/graph"
)

// The three-phase kernel.
//
// Run restructures the reference loop (RunReference) into explicit phases
// per round:
//
//	act     — collect each live node's Action; node-local, fans out over
//	          ID-range shards.
//	resolve — per listener, enumerate candidate frames from its *neighbors*
//	          (via the cached adjacency translated to dense indices) instead
//	          of scanning every transmitter on the channel; node-local, fans
//	          out over the same shards.
//	deliver — draw loss coins, emit events, count, and invoke Deliver. The
//	          coin draws, counter updates, Seq stamping and trace-hook calls
//	          happen in a single sequential merge on the Run goroutine;
//	          Deliver and the Done re-evaluation then fan out again.
//
// Determinism by merge: workers only produce per-shard buffers. The merge
// concatenates them in shard order, which — because shards are contiguous
// ascending ID ranges and every per-shard buffer is filled in ascending
// node order — visits nodes in exactly the reference loop's order. Loss
// coins are therefore consumed from the engine's RNG in the reference
// order, Event.Seq is stamped by the same single goroutine that invokes
// the trace hook, and traces, obs counters and flight recordings come out
// byte-identical at any worker count.
//
// Quiescence is a live/not-done counter maintained from Done transitions
// and scheduled deaths instead of an O(n) rescan per round; the per-round
// transmitter/listener maps of the reference loop are replaced by reusable
// per-shard scratch buffers, so a steady-state round allocates nothing.

// minParallelNodes is the graph size below which the default worker count
// stays at 1 (phases run inline on the Run goroutine): shard bookkeeping
// costs more than it saves on small graphs, and the paper's own sweep sizes
// (≤ 720 nodes) are well inside that regime. An explicit SetWorkers call
// overrides the heuristic — the equivalence tests use that to force
// multi-shard execution on tiny graphs.
const minParallelNodes = 1024

// SetWorkers fixes the number of shard workers for Run's act, resolve and
// deliver phases. w <= 0 restores the default: GOMAXPROCS, except that
// graphs smaller than minParallelNodes run inline. An explicit w >= 1 is
// honored exactly (capped at the node count). Results, traces and flight
// recordings are byte-identical at any worker count; SetWorkers only moves
// wall-clock time. Not safe to call while Run is in flight.
func (e *Engine) SetWorkers(w int) { e.workers = w }

func (e *Engine) effectiveWorkers(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if n < minParallelNodes {
			w = 1
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shard is one contiguous ascending range [lo, hi) of node indices plus the
// scratch its worker fills each round. Buffers are truncated, never freed,
// so steady-state rounds are allocation-free.
type shard struct {
	lo, hi int

	evAct []Event     // EvTransmit events, ascending node order
	lis   []listenRec // this shard's listeners, ascending node order
	cands []int32     // flat candidate-transmitter indices, see listenRec

	// dLo/dHi delimit this shard's slice of kernel.deliv after the merge.
	dLo, dHi int
	// newlyDone counts Done false→true transitions seen this round.
	newlyDone int
}

// listenRec records one listener and its candidate frames: the transmitting
// live neighbors on its channel over live links, as cands[lo:hi], in
// ascending transmitter order — the reference loop's coin order.
type listenRec struct {
	node   int32
	ch     Channel
	lo, hi int32
}

// deliverRec is one successful reception, decided in the merge and applied
// by the deliver phase.
type deliverRec struct {
	node int32
	msg  Message
}

// kernel is the per-Run state of the three-phase engine: dense node
// indexing, precomputed index-space adjacency, failure schedules bucketed
// by round, and the per-shard scratch.
type kernel struct {
	e     *Engine
	nodes []graph.NodeID
	idx   map[graph.NodeID]int32
	progs []Program
	skews []int
	nbrs  [][]int32 // index-space adjacency, ascending (shares one backing array)

	// deadAt is the round the node dies (alive during round r iff
	// r < deadAt); neverDies for unscheduled nodes.
	deadAt []int
	// doneF caches each program's last Done() value; valid because Done is
	// pure and monotone (Program contract).
	doneF []bool
	// notDone counts nodes that are alive and not done — the quiescence
	// counter replacing the reference loop's per-round rescan.
	notDone int

	// nodeFailAt / linkFailAt bucket the failure schedules by round, sorted
	// within each round, so a round with no failures costs one map lookup
	// instead of a rescan of the full sorted schedule.
	nodeFailAt map[int][]graph.NodeID
	linkFailAt map[int][]linkKey

	actions                   []Action // this round's action per node index
	awake, listens, transmits []int    // per-node counters, owned by the node's shard

	shards []shard
	deliv  []deliverRec // merged receptions, ascending node order
}

const neverDies = int(^uint(0) >> 1)

// Run executes up to maxRounds rounds (1-based round numbers) and returns
// the observed result, stopping early once every live program is Done. It
// is the three-phase shard-parallel kernel; its Result, trace event stream
// (including Event.Seq), obs counters and flight recordings are
// byte-identical to RunReference for any Program set honoring the Program
// contract, at any SetWorkers value.
func (e *Engine) Run(maxRounds int) Result {
	return e.newKernel().run(maxRounds)
}

func (e *Engine) newKernel() *kernel {
	nodes := e.g.Nodes()
	n := len(nodes)
	k := &kernel{
		e:         e,
		nodes:     nodes,
		idx:       make(map[graph.NodeID]int32, n),
		progs:     make([]Program, n),
		skews:     make([]int, n),
		deadAt:    make([]int, n),
		doneF:     make([]bool, n),
		actions:   make([]Action, n),
		awake:     make([]int, n),
		listens:   make([]int, n),
		transmits: make([]int, n),
	}
	for i, id := range nodes {
		k.idx[id] = int32(i)
		k.progs[i] = e.programs[id]
		k.skews[i] = e.skew[id]
		k.deadAt[i] = neverDies
	}

	// Translate the cached adjacency into dense index space once, so the
	// resolve phase does no map lookups and never touches the graph's lazy
	// caches from worker goroutines. One flat backing array holds all rows.
	e.g.WarmAdjacency()
	flat := make([]int32, 0, 2*e.g.NumEdges())
	k.nbrs = make([][]int32, n)
	for i, id := range nodes {
		start := len(flat)
		for _, v := range e.g.Neighbors(id) {
			flat = append(flat, k.idx[v])
		}
		k.nbrs[i] = flat[start:len(flat):len(flat)]
	}

	// Bucket the failure schedules by round (satellite bugfix: the
	// reference loop rescans the full sorted schedules every round). The
	// sorted flat slices are built first so each bucket inherits the
	// deterministic emission order.
	nodeFails := make([]graph.NodeID, 0, len(e.nodeFail))
	for id := range e.nodeFail {
		nodeFails = append(nodeFails, id)
	}
	sort.Slice(nodeFails, func(i, j int) bool { return nodeFails[i] < nodeFails[j] })
	k.nodeFailAt = make(map[int][]graph.NodeID, len(nodeFails))
	for _, id := range nodeFails {
		if r := e.nodeFail[id]; r >= 1 {
			k.nodeFailAt[r] = append(k.nodeFailAt[r], id)
		}
		if i, ok := k.idx[id]; ok {
			k.deadAt[i] = e.nodeFail[id]
		}
	}
	linkFails := make([]linkKey, 0, len(e.linkFail))
	for lk := range e.linkFail {
		linkFails = append(linkFails, lk)
	}
	sort.Slice(linkFails, func(i, j int) bool {
		if linkFails[i].a != linkFails[j].a {
			return linkFails[i].a < linkFails[j].a
		}
		return linkFails[i].b < linkFails[j].b
	})
	k.linkFailAt = make(map[int][]linkKey, len(linkFails))
	for _, lk := range linkFails {
		if r := e.linkFail[lk]; r >= 1 {
			k.linkFailAt[r] = append(k.linkFailAt[r], lk)
		}
	}

	// Seed the quiescence counter: nodes dead before round 1 never count;
	// everyone else counts until their program reports Done.
	for i := range k.progs {
		k.doneF[i] = k.progs[i].Done()
		if !k.doneF[i] && k.deadAt[i] >= 1 {
			k.notDone++
		}
	}

	w := e.effectiveWorkers(n)
	k.shards = make([]shard, w)
	for s := 0; s < w; s++ {
		k.shards[s] = shard{lo: s * n / w, hi: (s + 1) * n / w}
	}
	return k
}

func (k *kernel) run(maxRounds int) Result {
	e := k.e
	res := Result{
		Awake:     make(map[graph.NodeID]int, len(k.nodes)),
		Listens:   make(map[graph.NodeID]int, len(k.nodes)),
		Transmits: make(map[graph.NodeID]int, len(k.nodes)),
	}
	for round := 1; round <= maxRounds; round++ {
		// Scheduled failures fire first and are traced even if this very
		// round quiesces (reference semantics).
		for _, id := range k.nodeFailAt[round] {
			e.emit(Event{Round: round, Kind: EvNodeFail, Node: id})
			if i, ok := k.idx[id]; ok && !k.doneF[i] {
				k.notDone--
			}
		}
		for _, lk := range k.linkFailAt[round] {
			e.emit(Event{Round: round, Kind: EvLinkFail, Node: lk.a, Peer: lk.b})
		}
		if k.notDone == 0 {
			res.Rounds = round - 1
			res.Quiesced = true
			k.fill(&res)
			return res
		}

		// Act: node-local, sharded. Merge the per-shard transmit events in
		// shard order = ascending node order.
		k.phase(func(sh *shard) { k.act(sh, round) })
		for s := range k.shards {
			sh := &k.shards[s]
			res.Transmissions += len(sh.evAct)
			for i := range sh.evAct {
				e.emit(sh.evAct[i])
			}
		}

		// Resolve: node-local, sharded; no RNG, no events yet.
		k.phase(func(sh *shard) { k.resolve(sh, round) })
		k.mergeResolve(round, &res)

		// Deliver receptions and re-evaluate Done where it could have
		// flipped: node-local again.
		k.phase(func(sh *shard) { k.deliverAndDone(sh, round) })
		for s := range k.shards {
			k.notDone -= k.shards[s].newlyDone
		}
		res.Rounds = round
	}
	// Deaths scheduled for round maxRounds+1 precede the final quiescence
	// check but fall outside the loop, so they emit no events (reference
	// semantics: nodeAlive(id, maxRounds+1)).
	for _, id := range k.nodeFailAt[maxRounds+1] {
		if i, ok := k.idx[id]; ok && !k.doneF[i] {
			k.notDone--
		}
	}
	res.Quiesced = k.notDone == 0
	k.fill(&res)
	return res
}

// phase runs fn over every shard — inline for one shard, on worker
// goroutines otherwise. The WaitGroup gives every phase boundary a
// happens-before edge, which is what lets workers read the full actions
// slice during resolve and lets the merge read all scratch buffers.
func (k *kernel) phase(fn func(*shard)) {
	if len(k.shards) == 1 {
		fn(&k.shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(k.shards))
	for s := range k.shards {
		go func(sh *shard) {
			defer wg.Done()
			fn(sh)
		}(&k.shards[s])
	}
	wg.Wait()
}

// act is the first shard phase: collect every live node's action for the
// round and stage transmit events in the shard's buffer for the merge.
//
//dynlint:shardsafe act runs concurrently per shard
//dynlint:hotpath per node per round
func (k *kernel) act(sh *shard, round int) {
	sh.evAct = sh.evAct[:0]
	for i := sh.lo; i < sh.hi; i++ {
		if round >= k.deadAt[i] {
			k.actions[i] = Action{}
			continue
		}
		id := k.nodes[i]
		a := k.progs[i].Act(round + k.skews[i])
		switch a.Kind {
		case Sleep:
			// no cost
		case Listen:
			k.awake[i]++
			k.listens[i]++
		case Transmit:
			k.awake[i]++
			k.transmits[i]++
			a.Msg.From = id
			sh.evAct = append(sh.evAct, Event{Round: round, Kind: EvTransmit, Node: id, Channel: a.Channel, Msg: a.Msg})
		default:
			//lint:ignore dynlint/panics a Program returning an undefined ActionKind is a protocol bug, not an input; failing loud beats mis-accounting energy
			panic(fmt.Sprintf("radio: node %d returned invalid action kind %d", id, a.Kind))
		}
		k.actions[i] = a
	}
}

// resolve is the second shard phase: for each listener in the shard, record
// the candidate transmitters on its channel; no coins, no events — the merge
// draws losses so the RNG order matches the reference loop.
//
//dynlint:shardsafe resolve runs concurrently per shard
//dynlint:hotpath per listener per round
func (k *kernel) resolve(sh *shard, round int) {
	sh.lis = sh.lis[:0]
	sh.cands = sh.cands[:0]
	hasLinkFails := len(k.e.linkFail) > 0
	for i := sh.lo; i < sh.hi; i++ {
		a := &k.actions[i]
		if a.Kind != Listen {
			continue
		}
		lo := int32(len(sh.cands))
		for _, j := range k.nbrs[i] {
			t := &k.actions[j]
			// Dead nodes carry a zeroed (Sleep) action, so neighbor
			// enumeration needs no extra liveness check; a node is never
			// its own neighbor, so the reference loop's self-skip is
			// structural here.
			if t.Kind != Transmit || t.Channel != a.Channel {
				continue
			}
			if hasLinkFails && !k.e.linkAlive(k.nodes[i], k.nodes[j], round) {
				continue
			}
			sh.cands = append(sh.cands, j)
		}
		sh.lis = append(sh.lis, listenRec{node: int32(i), ch: a.Channel, lo: lo, hi: int32(len(sh.cands))})
	}
}

// mergeResolve is the sequential heart of the determinism argument: walking
// shards in order visits listeners in ascending node order and candidates
// in ascending transmitter order — exactly the reference loop's order — so
// loss coins come off the engine RNG in the same sequence and events get
// the same Seq numbers. It is also the only place the trace hook runs, so
// hook consumers (trace sinks, obs collectors, flight writers) stay
// single-goroutine.
//
//dynlint:hotpath per candidate per round
func (k *kernel) mergeResolve(round int, res *Result) {
	e := k.e
	k.deliv = k.deliv[:0]
	for s := range k.shards {
		sh := &k.shards[s]
		sh.dLo = len(k.deliv)
		for _, lr := range sh.lis {
			id := k.nodes[lr.node]
			heard := 0
			first := int32(-1)
			for _, j := range sh.cands[lr.lo:lr.hi] {
				if e.frameLost() {
					res.Losses++
					e.emit(Event{Round: round, Kind: EvLoss, Node: id, Peer: k.nodes[j], Channel: lr.ch, Msg: k.actions[j].Msg})
					continue
				}
				if heard == 0 {
					first = j
				}
				heard++
			}
			switch {
			case heard == 1:
				res.Deliveries++
				msg := k.actions[first].Msg
				e.emit(Event{Round: round, Kind: EvDeliver, Node: id, Peer: k.nodes[first], Channel: lr.ch, Msg: msg})
				k.deliv = append(k.deliv, deliverRec{node: lr.node, msg: msg})
			case heard > 1:
				res.Collisions++
				e.emit(Event{Round: round, Kind: EvCollision, Node: id, Channel: lr.ch})
			}
		}
		sh.dHi = len(k.deliv)
	}
}

// deliverAndDone is the third shard phase: hand the merge's deliveries to
// the shard's Programs and refresh the quiescence counter.
//
//dynlint:shardsafe deliverAndDone runs concurrently per shard
//dynlint:hotpath per node per round
func (k *kernel) deliverAndDone(sh *shard, round int) {
	for _, d := range k.deliv[sh.dLo:sh.dHi] {
		k.progs[d.node].Deliver(round+k.skews[d.node], d.msg)
	}
	sh.newlyDone = 0
	for i := sh.lo; i < sh.hi; i++ {
		if k.doneF[i] || round >= k.deadAt[i] {
			continue
		}
		if k.progs[i].Done() {
			k.doneF[i] = true
			sh.newlyDone++
		}
	}
}

// fill converts the dense per-node counters into the Result maps with the
// reference loop's shape: an Awake entry (possibly zero) for every node,
// Listens/Transmits entries only for nodes that listened or transmitted.
func (k *kernel) fill(res *Result) {
	for i, id := range k.nodes {
		res.Awake[id] = k.awake[i]
		if k.listens[i] > 0 {
			res.Listens[id] = k.listens[i]
		}
		if k.transmits[i] > 0 {
			res.Transmits[id] = k.transmits[i]
		}
	}
}
