package radio

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"dynsens/internal/graph"
	"dynsens/internal/radio/rounds"
)

// The three-phase kernel.
//
// Run restructures the reference loop (RunReference) into explicit phases
// per round:
//
//	act     — collect each live node's Action; node-local, fans out over
//	          ID-range shards.
//	resolve — per listener, enumerate candidate frames from its *neighbors*
//	          (word-wise against per-channel transmitter bitsets, or via the
//	          dense index-space adjacency), draw that listener's loss coins
//	          from its own counter stream, and stage rx events in the
//	          shard's buffer; node-local, fans out over the same shards.
//	deliver — stamp the staged events' Seq numbers from precomputed
//	          per-shard bases, hand receptions to the shard's Programs, and
//	          re-evaluate Done; node-local, fans out again.
//
// Determinism by construction: loss coins come from splitmix64 counter
// streams keyed (lossSeed, listener, round) — see rng.go — so any shard can
// draw any of its listeners' coins with zero cross-shard ordering
// dependency; no phase touches a shared RNG. Event.Seq is stamped by an
// ordered stitch: short serial steps between phases prefix-sum the
// per-shard event counts into per-shard bases (transmit events of every
// shard precede rx-phase events of every shard, matching the reference
// loop's emission order), and the next parallel phase renumbers each
// shard's buffer from its base. Because shards are contiguous ascending ID
// ranges filled in ascending node order, concatenating the buffers in shard
// order reproduces the reference event stream exactly — same order, same
// Seq — and the serial steps hand each stamped buffer to the trace hooks on
// the Run goroutine. Traces, obs counters and flight recordings come out
// byte-identical at any worker count.
//
// Quiescence is a live/not-done counter maintained from Done transitions
// and scheduled deaths instead of an O(n) rescan per round. All per-round
// state lives in reusable per-shard scratch, phases are dispatched to a
// persistent worker pool over buffered channels, and untraced runs skip
// materializing Event values entirely (counters and the Seq cursor still
// advance identically), so a steady-state round allocates nothing.

// minParallelNodes is the graph size below which the default worker count
// stays at 1 (phases run inline on the Run goroutine): shard bookkeeping
// costs more than it saves on small graphs, and the paper's own sweep sizes
// (≤ 720 nodes) are well inside that regime. An explicit SetWorkers call
// overrides the heuristic — the equivalence tests use that to force
// multi-shard execution on tiny graphs.
const minParallelNodes = 1024

// maxBitsetChannels bounds the per-channel transmitter bitset table.
// Channels outside [0, maxBitsetChannels) — legal, just unindexed — fall
// back to the action-walk candidate path. The protocols in this repo use
// single-digit channel numbers; 1024 costs one slice header each.
const maxBitsetChannels = 1024

// denseRowsMaxBytes caps the memory spent on full per-node neighbor bitset
// rows (n² bits). Past this the bit-test walk over txBits still gives the
// cache win without the quadratic footprint.
const denseRowsMaxBytes = 256 << 20

// SetWorkers fixes the number of shard workers for Run's act, resolve and
// deliver phases. w <= 0 restores the default: GOMAXPROCS, except that
// graphs smaller than minParallelNodes run inline. An explicit w >= 1 is
// honored exactly (capped at the node count). Results, traces and flight
// recordings are byte-identical at any worker count; SetWorkers only moves
// wall-clock time. Not safe to call while Run is in flight.
func (e *Engine) SetWorkers(w int) { e.workers = w }

func (e *Engine) effectiveWorkers(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if n < minParallelNodes {
			w = 1
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shard is one contiguous ascending range [lo, hi) of node indices plus the
// scratch its worker fills each round. Buffers are truncated, never freed,
// so steady-state rounds are allocation-free.
type shard struct {
	lo, hi int

	txIdx []int32      // this round's transmitter indices, ascending
	evAct []Event      // EvTransmit events, ascending node order (traced runs only)
	evRx  []Event      // rx-phase events: per listener losses then outcome (traced runs only)
	cand  []int32      // per-listener candidate scratch, reset for each listener
	lost  []int32      // per-listener lost-candidate scratch (rounds.Resolve output)
	deliv []deliverRec // successful receptions, ascending listener order

	// st is the current listener's loss-coin stream, kept in the shard so
	// taking its address for rounds.Resolve never escapes to the heap.
	st rounds.LossStream

	// busyNs accumulates wall-clock time spent inside this shard's phase
	// bodies (perf runs only). Written by the shard's worker goroutine
	// between barriers, read by flushPerf after the final barrier.
	busyNs int64

	// Event tallies for the round; when traced, nRx == len(evRx).
	nRx, nLoss, nDel, nCol int

	// actBase/rxBase are the Seq values just before this shard's first
	// transmit / rx-phase event, prefix-summed by the serial stitch steps;
	// the next parallel phase renumbers the buffers from them.
	actBase, rxBase uint64

	// newlyDone counts Done false→true transitions seen this round.
	newlyDone int
}

// deliverRec is one successful reception, decided in resolve and applied by
// the deliver phase. node is always inside its shard's [lo, hi).
type deliverRec struct {
	node int32
	msg  Message
}

// phaseOp selects which shard phase a pool worker runs.
type phaseOp int

const (
	opAct phaseOp = iota
	opResolve
	opDeliver
)

// phaseReq is one round-barrier message to a pool worker: run op for round.
// Sent by value on a buffered channel so phase dispatch allocates nothing.
type phaseReq struct {
	op    phaseOp
	round int
}

// kernel is the per-Run state of the three-phase engine: dense node
// indexing, precomputed index-space adjacency, transmitter bitsets, failure
// schedules bucketed by round, the per-shard scratch, and the worker pool.
type kernel struct {
	e      *Engine
	nodes  []graph.NodeID
	idx    map[graph.NodeID]int32
	progs  []Program
	skews  []int
	nbrs   [][]int32 // index-space adjacency, ascending (shares one backing array)
	traced bool      // any trace hook installed; untraced runs skip Event staging

	// txWords is the per-bitset word count, (n+63)/64. txBits[ch] is the
	// round's transmitter bitset for channel ch (bit i set iff node index i
	// transmits on ch this round), allocated lazily per channel and zeroed
	// between rounds via the chUsed/chDirty ledger. denseRows, when
	// non-nil, is a flat n×txWords neighbor-row matrix for word-wise
	// row∩txBits intersection on very dense graphs.
	txWords   int
	txBits    [][]uint64
	chUsed    []Channel
	chDirty   []bool
	denseRows []uint64

	// deadAt is the round the node dies (alive during round r iff
	// r < deadAt); neverDies for unscheduled nodes.
	deadAt []int
	// doneF caches each program's last Done() value; valid because Done is
	// pure and monotone (Program contract).
	doneF []bool
	// notDone counts nodes that are alive and not done — the quiescence
	// counter replacing the reference loop's per-round rescan.
	notDone int

	// sched buckets the failure schedules by round, sorted within each
	// round, so a round with no failures costs one map lookup instead of a
	// rescan of the full sorted schedule. It is the shared
	// rounds.Schedule the distributed coordinator also runs on.
	sched *rounds.Schedule

	actions                   []Action // this round's action per node index
	awake, listens, transmits []int    // per-node counters, owned by the node's shard

	shards []shard

	// Worker pool: one goroutine per shard, fed phaseReq values over its
	// own buffered channel and joined through wg — a persistent round
	// barrier instead of per-round goroutine spawns. reqs is nil when the
	// kernel runs single-shard inline.
	reqs []chan phaseReq
	wg   sync.WaitGroup

	// Perf instrumentation (see perf.go). perfOn gates every clock read so
	// uninstrumented runs pay only predictable branches; the accumulators
	// are goroutine-local until flushPerf folds them into e.perf.
	perfOn      bool
	perfStart   int64 // nanotime at run start
	perfSeq0    uint64
	perfPhaseNs [numPerfPhases]int64
	roundsDone  int
}

const neverDies = int(^uint(0) >> 1)

// Run executes up to maxRounds rounds (1-based round numbers) and returns
// the observed result, stopping early once every live program is Done. It
// is the three-phase shard-parallel kernel; its Result, trace event stream
// (including Event.Seq), obs counters and flight recordings are
// byte-identical to RunReference for any Program set honoring the Program
// contract, at any SetWorkers value.
func (e *Engine) Run(maxRounds int) Result {
	return e.newKernel().run(maxRounds)
}

func (e *Engine) newKernel() *kernel {
	nodes := e.g.Nodes()
	n := len(nodes)
	k := &kernel{
		e:         e,
		nodes:     nodes,
		idx:       make(map[graph.NodeID]int32, n),
		progs:     make([]Program, n),
		skews:     make([]int, n),
		deadAt:    make([]int, n),
		doneF:     make([]bool, n),
		actions:   make([]Action, n),
		awake:     make([]int, n),
		listens:   make([]int, n),
		transmits: make([]int, n),
		traced:    e.trace != nil || e.traceBatch != nil,
		perfOn:    e.perf != nil,
	}
	for i, id := range nodes {
		k.idx[id] = int32(i)
		k.progs[i] = e.programs[id]
		k.skews[i] = e.skew[id]
		k.deadAt[i] = neverDies
	}

	// Translate the cached adjacency into dense index space once, so the
	// resolve phase does no map lookups and never touches the graph's lazy
	// caches from worker goroutines. One flat backing array holds all rows.
	e.g.WarmAdjacency()
	flat := make([]int32, 0, 2*e.g.NumEdges())
	k.nbrs = make([][]int32, n)
	maxDeg := 0
	for i, id := range nodes {
		start := len(flat)
		for _, v := range e.g.Neighbors(id) {
			flat = append(flat, k.idx[v])
		}
		k.nbrs[i] = flat[start:len(flat):len(flat)]
		if d := len(k.nbrs[i]); d > maxDeg {
			maxDeg = d
		}
	}

	// Transmitter bitsets (resolve's fast candidate paths). Full neighbor
	// rows only pay when some listener's degree reaches the per-row word
	// count — below that the bit-test walk over its neighbor list touches
	// fewer words — and when the n×n/64-byte matrix stays affordable.
	k.txWords = (n + 63) / 64
	k.txBits = make([][]uint64, maxBitsetChannels)
	k.chDirty = make([]bool, maxBitsetChannels)
	if maxDeg >= k.txWords && n*k.txWords*8 <= denseRowsMaxBytes {
		k.denseRows = make([]uint64, n*k.txWords)
		for i := range k.nbrs {
			row := k.denseRows[i*k.txWords : (i+1)*k.txWords]
			for _, j := range k.nbrs[i] {
				row[j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}

	// Bucket the failure schedules by round (satellite bugfix: the
	// reference loop rescans the full sorted schedules every round). The
	// shared rounds.Schedule sorts each bucket, so every bucket inherits
	// the deterministic emission order.
	k.sched = rounds.NewSchedule(e.nodeFail, e.linkFail)
	for id := range e.nodeFail {
		if i, ok := k.idx[id]; ok {
			k.deadAt[i] = e.nodeFail[id]
		}
	}

	// Seed the quiescence counter: nodes dead before round 1 never count;
	// everyone else counts until their program reports Done.
	for i := range k.progs {
		k.doneF[i] = k.progs[i].Done()
		if !k.doneF[i] && k.deadAt[i] >= 1 {
			k.notDone++
		}
	}

	w := e.effectiveWorkers(n)
	k.shards = make([]shard, w)
	for s := 0; s < w; s++ {
		k.shards[s] = shard{lo: s * n / w, hi: (s + 1) * n / w}
	}
	return k
}

// startPool launches one persistent goroutine per shard; each consumes
// phaseReq barriers from its own buffered channel until stopPool closes it.
func (k *kernel) startPool() {
	k.reqs = make([]chan phaseReq, len(k.shards))
	for s := range k.shards {
		k.reqs[s] = make(chan phaseReq, 1)
		go k.worker(s)
	}
}

func (k *kernel) stopPool() {
	for s := range k.reqs {
		close(k.reqs[s])
	}
}

func (k *kernel) worker(s int) {
	sh := &k.shards[s]
	if !k.perfOn {
		for req := range k.reqs[s] {
			k.runPhase(sh, req.op, req.round)
			k.wg.Done()
		}
		return
	}
	// Perf runs: label the goroutine per (shard, phase) so CPU profiles
	// attribute samples to kernel phases, and accumulate shard busy time
	// around each phase body. Labels are precomputed contexts — applying
	// one is a pointer swap, not an allocation.
	labels := workerLabels(s)
	defer clearWorkerLabels()
	for req := range k.reqs[s] {
		setWorkerLabels(labels[req.op])
		t0 := nanotime()
		k.runPhase(sh, req.op, req.round)
		sh.busyNs += nanotime() - t0
		k.wg.Done()
	}
}

func (k *kernel) runPhase(sh *shard, op phaseOp, round int) {
	switch op {
	case opAct:
		k.act(sh, round)
	case opResolve:
		k.resolve(sh, round)
	case opDeliver:
		k.deliverAndDone(sh, round)
	}
}

// phase runs op over every shard — inline for one shard, on the pool
// otherwise. The channel sends and the WaitGroup give every phase boundary
// a happens-before edge in each direction, which is what lets workers read
// the full actions slice (and the serial steps' prefix-summed bases) during
// later phases and lets the serial steps read all shard scratch.
func (k *kernel) phase(op phaseOp, round int) {
	if k.reqs == nil {
		if k.perfOn {
			t0 := nanotime()
			k.runPhase(&k.shards[0], op, round)
			k.shards[0].busyNs += nanotime() - t0
			return
		}
		k.runPhase(&k.shards[0], op, round)
		return
	}
	k.wg.Add(len(k.shards))
	for s := range k.reqs {
		k.reqs[s] <- phaseReq{op: op, round: round}
	}
	if k.perfOn {
		t0 := nanotime()
		k.wg.Wait()
		k.perfPhaseNs[perfBarrier] += nanotime() - t0
	} else {
		k.wg.Wait()
	}
}

func (k *kernel) run(maxRounds int) Result {
	e := k.e
	if k.perfOn {
		k.perfStart = nanotime()
		k.perfSeq0 = e.seq
		defer k.flushPerf()
	}
	if len(k.shards) > 1 {
		k.startPool()
		defer k.stopPool()
	}
	clk := perfClock{on: k.perfOn}
	res := Result{
		Awake:     make(map[graph.NodeID]int, len(k.nodes)),
		Listens:   make(map[graph.NodeID]int, len(k.nodes)),
		Transmits: make(map[graph.NodeID]int, len(k.nodes)),
	}
	clk.start()
	for round := 1; round <= maxRounds; round++ {
		// Scheduled failures fire first and are traced even if this very
		// round quiesces (reference semantics).
		for _, id := range k.sched.NodeFails(round) {
			e.emit(Event{Round: round, Kind: EvNodeFail, Node: id})
			if i, ok := k.idx[id]; ok && !k.doneF[i] {
				k.notDone--
			}
		}
		for _, lk := range k.sched.LinkFails(round) {
			e.emit(Event{Round: round, Kind: EvLinkFail, Node: lk.U, Peer: lk.V})
		}
		if k.notDone == 0 {
			res.Rounds = round - 1
			res.Quiesced = true
			clk.lap(&k.perfPhaseNs[perfStitch])
			k.fill(&res)
			return res
		}

		// Act: node-local, sharded. The perfClock laps attribute the Run
		// goroutine's time: each phase dispatch (including its barrier wait,
		// tracked separately inside phase) vs the serial stitch segments.
		clk.lap(&k.perfPhaseNs[perfStitch])
		k.phase(opAct, round)
		clk.lap(&k.perfPhaseNs[perfAct])

		// Serial stitch A: prefix-sum the transmit-event counts into
		// per-shard Seq bases (shard order = ascending node order = the
		// reference emission order), advance the Seq cursor past them, and
		// build this round's transmitter bitsets.
		txTotal := 0
		for s := range k.shards {
			sh := &k.shards[s]
			sh.actBase = e.seq + uint64(txTotal)
			txTotal += len(sh.txIdx)
		}
		e.seq += uint64(txTotal)
		res.Transmissions += txTotal
		k.buildTxBits()

		// Resolve: node-local, sharded; stamps the act buffers, draws each
		// listener's coins in-shard, stages rx events.
		clk.lap(&k.perfPhaseNs[perfStitch])
		k.phase(opResolve, round)
		clk.lap(&k.perfPhaseNs[perfResolve])

		// Serial stitch B: hand the stamped transmit buffers to the trace
		// hooks in shard order, prefix-sum the rx-event counts into bases,
		// and fold the shard tallies into the Result.
		rxTotal := 0
		for s := range k.shards {
			sh := &k.shards[s]
			e.sinkBatch(sh.evAct)
			sh.rxBase = e.seq + uint64(rxTotal)
			rxTotal += sh.nRx
			res.Losses += sh.nLoss
			res.Deliveries += sh.nDel
			res.Collisions += sh.nCol
		}
		e.seq += uint64(rxTotal)

		// Deliver: node-local, sharded; stamps the rx buffers, applies
		// receptions, re-evaluates Done where it could have flipped.
		clk.lap(&k.perfPhaseNs[perfStitch])
		k.phase(opDeliver, round)
		clk.lap(&k.perfPhaseNs[perfDeliver])

		// Serial stitch C: sink the stamped rx buffers, refresh quiescence.
		for s := range k.shards {
			sh := &k.shards[s]
			e.sinkBatch(sh.evRx)
			k.notDone -= sh.newlyDone
		}
		res.Rounds = round
		k.roundsDone = round
	}
	clk.lap(&k.perfPhaseNs[perfStitch])
	// Deaths scheduled for round maxRounds+1 precede the final quiescence
	// check but fall outside the loop, so they emit no events (reference
	// semantics: nodeAlive(id, maxRounds+1)).
	for _, id := range k.sched.NodeFails(maxRounds + 1) {
		if i, ok := k.idx[id]; ok && !k.doneF[i] {
			k.notDone--
		}
	}
	res.Quiesced = k.notDone == 0
	k.fill(&res)
	return res
}

// stampSeq renumbers one shard's staged events from its prefix-summed base:
// evs[i].Seq = base+1+i. Together with the serial stitch steps this is the
// only sanctioned Event.Seq writer in the parallel phases — the stitch
// guarantees the bases partition the same contiguous Seq range the serial
// merge would have assigned.
//
//dynlint:seqstitch renumbering from prefix-summed bases is the sanctioned parallel Seq write
func stampSeq(evs []Event, base uint64) {
	for i := range evs {
		evs[i].Seq = base + 1 + uint64(i)
	}
}

// buildTxBits zeroes the channels dirtied last round and sets one bit per
// transmitter in its channel's bitset. Runs on the Run goroutine between
// the act and resolve phases; out-of-range channels stay unindexed (their
// listeners take resolve's action-walk path).
func (k *kernel) buildTxBits() {
	for _, ch := range k.chUsed {
		b := k.txBits[ch]
		for w := range b {
			b[w] = 0
		}
		k.chDirty[ch] = false
	}
	k.chUsed = k.chUsed[:0]
	for s := range k.shards {
		sh := &k.shards[s]
		for _, t := range sh.txIdx {
			ch := k.actions[t].Channel
			if ch < 0 || ch >= maxBitsetChannels {
				continue
			}
			b := k.txBits[ch]
			if b == nil {
				b = make([]uint64, k.txWords)
				k.txBits[ch] = b
			}
			if !k.chDirty[ch] {
				k.chDirty[ch] = true
				k.chUsed = append(k.chUsed, ch)
			}
			b[t>>6] |= 1 << (uint(t) & 63)
		}
	}
}

// act is the first shard phase: collect every live node's action for the
// round, record transmitter indices for the bitset build, and (traced runs)
// stage transmit events for the stitch.
//
//dynlint:shardsafe act runs concurrently per shard
//dynlint:hotpath per node per round
func (k *kernel) act(sh *shard, round int) {
	sh.txIdx = sh.txIdx[:0]
	sh.evAct = sh.evAct[:0]
	for i := sh.lo; i < sh.hi; i++ {
		if round >= k.deadAt[i] {
			k.actions[i] = Action{}
			continue
		}
		id := k.nodes[i]
		a := k.progs[i].Act(round + k.skews[i])
		switch a.Kind {
		case Sleep:
			// no cost
		case Listen:
			k.awake[i]++
			k.listens[i]++
		case Transmit:
			k.awake[i]++
			k.transmits[i]++
			a.Msg.From = id
			sh.txIdx = append(sh.txIdx, int32(i))
			if k.traced {
				sh.evAct = append(sh.evAct, Event{Round: round, Kind: EvTransmit, Node: id, Channel: a.Channel, Msg: a.Msg})
			}
		default:
			//lint:ignore dynlint/panics a Program returning an undefined ActionKind is a protocol bug, not an input; failing loud beats mis-accounting energy
			panic(fmt.Sprintf("radio: node %d returned invalid action kind %d", id, a.Kind))
		}
		k.actions[i] = a
	}
}

// resolve is the second shard phase: stamp the shard's transmit events from
// their stitched base, then for each listener enumerate candidate
// transmitters in ascending order (one of three paths, all order-identical
// to the reference loop), draw the listener's loss coins from its
// (seed, listener, round) counter stream, and stage rx events and
// deliveries. Coins are in-shard because the streams of distinct listeners
// never interact (rng.go); no cross-shard state is written.
//
//dynlint:shardsafe resolve runs concurrently per shard
//dynlint:hotpath per listener per round
func (k *kernel) resolve(sh *shard, round int) {
	stampSeq(sh.evAct, sh.actBase)
	sh.evRx = sh.evRx[:0]
	sh.deliv = sh.deliv[:0]
	sh.nRx, sh.nLoss, sh.nDel, sh.nCol = 0, 0, 0, 0
	e := k.e
	hasLinkFails := len(e.linkFail) > 0
	lossy := e.lossRate > 0
	for i := sh.lo; i < sh.hi; i++ {
		a := &k.actions[i]
		if a.Kind != Listen {
			continue
		}
		ch := a.Channel
		id := k.nodes[i]

		// Candidate enumeration. All three paths yield the transmitting
		// live-link neighbors on ch in ascending index order — the coin
		// order the reference loop commits to. Dead nodes carry a zeroed
		// (Sleep) action and no bitset bit, so neighbor enumeration needs
		// no extra liveness check; a node is never its own neighbor, so
		// the reference loop's self-skip is structural here.
		sh.cand = sh.cand[:0]
		if ch >= 0 && ch < maxBitsetChannels {
			bits64 := k.txBits[ch]
			if bits64 == nil {
				// No transmitter anywhere used ch this round: the bitset
				// was never allocated, and there are no candidates.
				continue
			}
			if k.denseRows != nil && len(k.nbrs[i]) >= k.txWords {
				// Dense path: word-wise neighbor-row ∩ transmitter-bitset.
				row := k.denseRows[i*k.txWords : (i+1)*k.txWords]
				for w := 0; w < k.txWords; w++ {
					m := row[w] & bits64[w]
					for m != 0 {
						j := int32(w<<6 + bits.TrailingZeros64(m))
						m &= m - 1
						if hasLinkFails && !e.linkAlive(id, k.nodes[j], round) {
							continue
						}
						sh.cand = append(sh.cand, j)
					}
				}
			} else {
				// Sparse path: bit-test the transmitter bitset per
				// neighbor — one bit load instead of an Action struct.
				for _, j := range k.nbrs[i] {
					if bits64[j>>6]&(1<<(uint(j)&63)) == 0 {
						continue
					}
					if hasLinkFails && !e.linkAlive(id, k.nodes[j], round) {
						continue
					}
					sh.cand = append(sh.cand, j)
				}
			}
		} else {
			// Out-of-range channel: walk the neighbor actions directly.
			for _, j := range k.nbrs[i] {
				t := &k.actions[j]
				if t.Kind != Transmit || t.Channel != ch {
					continue
				}
				if hasLinkFails && !e.linkAlive(id, k.nodes[j], round) {
					continue
				}
				sh.cand = append(sh.cand, j)
			}
		}
		if len(sh.cand) == 0 {
			continue
		}

		// Coins and outcome: rounds.Resolve draws one coin per candidate
		// in candidate order from the listener's stream; losses are staged
		// in that same order, then exactly one outcome event. The stream
		// and lost-index buffers live in the shard so the per-listener call
		// allocates nothing.
		if lossy {
			sh.st = rounds.NewLossStream(e.lossSeed, id, round)
		}
		verdict, win, lost := rounds.Resolve(len(sh.cand), e.lossRate, &sh.st, sh.lost[:0])
		sh.lost = lost
		for _, c := range lost {
			j := sh.cand[c]
			sh.nLoss++
			sh.nRx++
			if k.traced {
				sh.evRx = append(sh.evRx, Event{Round: round, Kind: EvLoss, Node: id, Peer: k.nodes[j], Channel: ch, Msg: k.actions[j].Msg})
			}
		}
		switch verdict {
		case rounds.Delivered:
			first := sh.cand[win]
			sh.nDel++
			sh.nRx++
			msg := k.actions[first].Msg
			if k.traced {
				sh.evRx = append(sh.evRx, Event{Round: round, Kind: EvDeliver, Node: id, Peer: k.nodes[first], Channel: ch, Msg: msg})
			}
			sh.deliv = append(sh.deliv, deliverRec{node: int32(i), msg: msg})
		case rounds.Collided:
			sh.nCol++
			sh.nRx++
			if k.traced {
				sh.evRx = append(sh.evRx, Event{Round: round, Kind: EvCollision, Node: id, Channel: ch})
			}
		}
	}
}

// deliverAndDone is the third shard phase: stamp the shard's rx events from
// their stitched base, hand resolve's deliveries to the shard's Programs
// (every delivery's listener is inside the shard by construction), and
// refresh the quiescence counter.
//
//dynlint:shardsafe deliverAndDone runs concurrently per shard
//dynlint:hotpath per node per round
func (k *kernel) deliverAndDone(sh *shard, round int) {
	stampSeq(sh.evRx, sh.rxBase)
	for _, d := range sh.deliv {
		k.progs[d.node].Deliver(round+k.skews[d.node], d.msg)
	}
	sh.newlyDone = 0
	for i := sh.lo; i < sh.hi; i++ {
		if k.doneF[i] || round >= k.deadAt[i] {
			continue
		}
		if k.progs[i].Done() {
			k.doneF[i] = true
			sh.newlyDone++
		}
	}
}

// fill converts the dense per-node counters into the Result maps with the
// reference loop's shape: an Awake entry (possibly zero) for every node,
// Listens/Transmits entries only for nodes that listened or transmitted.
func (k *kernel) fill(res *Result) {
	for i, id := range k.nodes {
		res.Awake[id] = k.awake[i]
		if k.listens[i] > 0 {
			res.Listens[id] = k.listens[i]
		}
		if k.transmits[i] > 0 {
			res.Transmits[id] = k.transmits[i]
		}
	}
}
