package radio

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"dynsens/internal/graph"
)

// TestStampSeqStitchProperty is the Seq-stitch property test: for random
// event streams cut at random shard boundaries, prefix-summing the chunk
// lengths into bases and renumbering each chunk with stampSeq must yield —
// on the concatenation, in chunk order — exactly the contiguous sequence a
// serial stamper would have assigned, from any starting cursor.
func TestStampSeqStitchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		total := rng.Intn(400)
		start := uint64(rng.Intn(1000))
		// Events ordered as the kernel stages them: ascending transmitter
		// node within the stream (the stitch must preserve, not sort).
		evs := make([]Event, total)
		for i := range evs {
			evs[i] = Event{Kind: EvTransmit, Node: graph.NodeID(i), Round: 1}
		}
		// Random shard split: random cut points, empty chunks included.
		nChunks := rng.Intn(8) + 1
		cuts := make([]int, 0, nChunks+1)
		cuts = append(cuts, 0)
		for i := 1; i < nChunks; i++ {
			cuts = append(cuts, rng.Intn(total+1))
		}
		cuts = append(cuts, total)
		// Chunks must partition in order; sort the interior cut points.
		for i := 1; i < len(cuts); i++ {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
		cursor := start
		for c := 0; c+1 < len(cuts); c++ {
			chunk := evs[cuts[c]:cuts[c+1]]
			stampSeq(chunk, cursor)
			cursor += uint64(len(chunk))
		}
		if cursor != start+uint64(total) {
			t.Fatalf("trial %d: cursor advanced to %d, want %d", trial, cursor, start+uint64(total))
		}
		for i := range evs {
			if want := start + 1 + uint64(i); evs[i].Seq != want {
				t.Fatalf("trial %d: event %d (node %d) got Seq %d, want %d (chunks %v)",
					trial, i, evs[i].Node, evs[i].Seq, want, cuts)
			}
		}
	}
}

// TestEngineEquivalenceDenseBitset drives a graph big enough for real
// multi-word bitsets (n=150 → 3 words) with a hub star plus random chords,
// so listeners split between the dense neighbor-row path (degree ≥ words)
// and the sparse bit-test walk — both under loss, both of which must match
// the reference loop byte for byte.
func TestEngineEquivalenceDenseBitset(t *testing.T) {
	s := scenario{seed: 31, n: 150, extraEdge: 600, horizon: 12, rounds: 14, lossRate: 0.3}
	eng := s.build(t)
	k := eng.newKernel()
	if k.denseRows == nil {
		t.Fatalf("scenario does not trigger dense neighbor rows (txWords=%d)", k.txWords)
	}
	checkEquivalence(t, s, equivalenceWorkers())
}

// chanProg exercises resolve's channel dispatch: it cycles transmissions
// and listens through an in-range channel, a channel past the bitset table
// (maxBitsetChannels), and a negative channel, so the action-walk fallback
// runs alongside the bitset paths in one trace.
type chanProg struct {
	id     graph.NodeID
	budget int
}

func (p *chanProg) Act(round int) Action {
	if round > p.budget {
		return Action{Kind: Sleep}
	}
	chans := [3]Channel{1, maxBitsetChannels + 7, -4}
	ch := chans[round%3]
	if (int(p.id)+round)%2 == 0 {
		return Action{Kind: Transmit, Channel: ch, Msg: Message{Seq: round, Src: p.id}}
	}
	return Action{Kind: Listen, Channel: ch}
}

func (p *chanProg) Deliver(round int, m Message) {}

func (p *chanProg) Done() bool { return false }

// TestEngineEquivalenceOutOfRangeChannels pins the unindexed-channel
// fallback: channels outside [0, maxBitsetChannels) never enter the bitset
// table, and their listeners must still hear exactly what the reference
// loop says, loss coins included.
func TestEngineEquivalenceOutOfRangeChannels(t *testing.T) {
	build := func() *Engine {
		rng := rand.New(rand.NewSource(91))
		g := graph.New()
		g.AddNode(0)
		for i := 1; i < 60; i++ {
			_ = g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
		}
		for i := 0; i < 120; i++ {
			u, v := rng.Intn(60), rng.Intn(60)
			if u != v {
				_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
		progs := make(map[graph.NodeID]Program, 60)
		for _, id := range g.Nodes() {
			progs[id] = &chanProg{id: id, budget: 12}
		}
		eng, err := NewEngine(g, progs)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.SetLoss(0.25, 433); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	wantRes, wantTrace := runTraced(build(), 12, true)
	if wantRes.Deliveries == 0 {
		t.Fatal("scenario delivers nothing; fallback path not exercised")
	}
	for _, w := range equivalenceWorkers() {
		eng := build()
		eng.SetWorkers(w)
		gotRes, gotTrace := runTraced(eng, 12, false)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Fatalf("workers=%d: result diverges\n got %+v\nwant %+v", w, gotRes, wantRes)
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("workers=%d: trace diverges", w)
		}
	}
}

// TestEngineWorkersLargeSmoke is the fast large-n smoke the CI race matrix
// runs (its name matches the EngineWorkers pattern): a 200k-node sparse
// graph for a few rounds, asserting the kernel at NumCPU workers matches
// workers=1 exactly — Result and FNV-hashed trace. -short skips it.
func TestEngineWorkersLargeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n smoke skipped in -short")
	}
	const n = 200_000
	// One shared topology: engines only read the graph, and the runs are
	// sequential. Programs are rebuilt per run (they carry state).
	rng := rand.New(rand.NewSource(5))
	g := graph.New()
	g.AddNode(0)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
	}
	build := func() *Engine {
		progs := make(map[graph.NodeID]Program, n)
		for _, id := range g.Nodes() {
			progs[id] = &chanProg{id: id, budget: 3}
		}
		eng, err := NewEngine(g, progs)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.SetLoss(0.1, 99); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	run := func(workers int) (Result, uint64) {
		eng := build()
		eng.SetWorkers(workers)
		h := fnv.New64a()
		var rec [10]uint64
		var buf [80]byte
		eng.SetTrace(func(ev Event) {
			rec = [10]uint64{ev.Seq, uint64(ev.Round), uint64(ev.Kind),
				uint64(ev.Node), uint64(ev.Peer), uint64(ev.Channel),
				uint64(ev.Msg.Seq), uint64(ev.Msg.Src), uint64(ev.Msg.From), uint64(ev.Msg.Slot)}
			for i, v := range rec {
				binary.LittleEndian.PutUint64(buf[i*8:], v)
			}
			h.Write(buf[:])
		})
		res := eng.Run(3)
		return res, h.Sum64()
	}
	wantRes, wantHash := run(1)
	wN := runtime.NumCPU()
	if wN < 4 {
		wN = 4
	}
	gotRes, gotHash := run(wN)
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("workers=%d result diverges from workers=1", wN)
	}
	if gotHash != wantHash {
		t.Fatalf("workers=%d trace hash %x, workers=1 %x", wN, gotHash, wantHash)
	}
}
