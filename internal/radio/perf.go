package radio

// Kernel performance introspection.
//
// Perf is a strictly read-only observer of the three-phase kernel: it
// accumulates where wall-clock time goes (per phase, per shard) and how
// much work flows through (rounds, events), and it never feeds anything
// back into the simulation. The hard invariant — enforced by
// TestPerfDoesNotPerturb in internal/broadcast — is that a run with a Perf
// attached produces byte-identical traces, results and flight recordings
// to the same run without one, at every worker count:
//
//   - timers live outside the //dynlint:shardsafe phase bodies: phase wall
//     times are taken on the Run goroutine around each phase dispatch, and
//     per-shard busy times in the worker loop around runPhase, so the
//     annotated act/resolve/deliverAndDone functions stay clean of
//     trace/obs/RNG/Seq effects;
//   - every accumulator is either goroutine-local during the run (shard
//     busy ns in the shard struct, phase ns on the Run goroutine) or
//     folded with atomic adds at run end, so one Perf can be shared by
//     concurrent engines (the experiment harness does);
//   - reading the monotonic clock is the single sanctioned wall-clock use
//     in this package (see nanotime below); clock readings are never
//     compared against simulation state.
//
// The obs side — rolling a PerfSnapshot up into registry metrics, the
// human-readable summary table, and the background runtime sampler —
// lives in internal/obs/perf, keeping this package free of obs imports
// (the kernel phases must stay shardsafe-clean, and radio never imports
// the observability layer).

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"
)

// perfEpoch anchors the monotonic clock: nanotime readings are durations
// since process-start-ish, compared only against each other.
//
//lint:ignore dynlint/nondeterminism perf timers measure real elapsed time by design; readings only ever feed perf accumulators, never simulation state
var perfEpoch = time.Now()

// nanotime returns monotonic nanoseconds since perfEpoch. time.Since uses
// the monotonic clock reading captured in perfEpoch, so the difference of
// two nanotime calls is immune to wall-clock steps.
func nanotime() int64 { return int64(time.Since(perfEpoch)) }

// perfMaxShards bounds the per-shard busy-time accumulators. Worker counts
// live well below this (effectiveWorkers defaults to GOMAXPROCS); an
// explicit SetWorkers beyond it folds the excess shards into the last
// slot rather than dropping them.
const perfMaxShards = 256

// Phase indices of the kernel timers. act/resolve/deliver are the three
// parallel phases; seq-stitch covers the serial sections between them
// (prefix sums, bitset build, trace/obs/flight sinks, failure emission and
// quiescence checks); barrier-wait is the Run goroutine's time blocked on
// the phase barrier, a subset of the three phase walls.
const (
	perfAct = iota
	perfResolve
	perfDeliver
	perfStitch
	perfBarrier
	numPerfPhases
)

// perfPhaseNames are the phase labels, indexed by the perf* constants.
// They appear in snapshots, obs metrics and pprof labels.
var perfPhaseNames = [numPerfPhases]string{"act", "resolve", "deliver", "seq-stitch", "barrier-wait"}

// Perf accumulates kernel performance measurements across one or more
// engine runs. All methods are safe for concurrent use; one Perf may be
// attached to several engines at once (each run folds its goroutine-local
// accumulators in with atomic adds when it finishes). The zero value is
// ready to use.
type Perf struct {
	runs    atomic.Int64
	rounds  atomic.Int64
	events  atomic.Int64
	wallNs  atomic.Int64
	phaseNs [numPerfPhases]atomic.Int64
	shardNs [perfMaxShards]atomic.Int64
	shards  atomic.Int64 // max shard count folded in so far
}

// NewPerf returns an empty collector, ready to attach with
// Engine.SetPerf.
func NewPerf() *Perf { return &Perf{} }

// SetPerf attaches a performance collector to the engine's Run (nil
// detaches). Attaching one never changes what Run computes: results,
// traces and flight recordings stay byte-identical — the collector only
// observes wall-clock time and event volume. RunReference is not
// instrumented (it is the executable spec, kept boring on purpose). Not
// safe to call while Run is in flight.
func (e *Engine) SetPerf(p *Perf) { e.perf = p }

// PhaseTime is one named phase timer in a snapshot.
type PhaseTime struct {
	// Name is the phase label: act, resolve, deliver, seq-stitch or
	// barrier-wait.
	Name string
	// Ns is the accumulated wall-clock nanoseconds.
	Ns int64
}

// PerfSnapshot is a point-in-time copy of a Perf. Snapshots taken after
// every attached engine has returned are exact; concurrent snapshots are
// merely self-consistent per accumulator.
type PerfSnapshot struct {
	// Runs is the number of engine runs folded in.
	Runs int64
	// Rounds is the total rounds executed across those runs.
	Rounds int64
	// Events is the total trace-event volume (transmit + rx-phase events,
	// counted whether or not a trace hook was installed).
	Events int64
	// WallNs is the total wall-clock time spent inside Engine.Run.
	WallNs int64
	// Phases holds the per-phase wall-clock accumulators in kernel order:
	// act, resolve, deliver, seq-stitch, barrier-wait. The three phase
	// walls are measured on the Run goroutine around each dispatch and so
	// include barrier-wait, which is also reported separately to expose
	// idle waiting; seq-stitch covers the serial sections between phases.
	Phases []PhaseTime
	// ShardBusyNs is each shard worker's accumulated busy time (time spent
	// actually executing phase bodies), indexed by shard. Length is the
	// largest worker count any folded run used.
	ShardBusyNs []int64
}

// Snapshot copies the current accumulator values.
func (p *Perf) Snapshot() PerfSnapshot {
	s := PerfSnapshot{
		Runs:   p.runs.Load(),
		Rounds: p.rounds.Load(),
		Events: p.events.Load(),
		WallNs: p.wallNs.Load(),
		Phases: make([]PhaseTime, numPerfPhases),
	}
	for i := range s.Phases {
		s.Phases[i] = PhaseTime{Name: perfPhaseNames[i], Ns: p.phaseNs[i].Load()}
	}
	n := int(p.shards.Load())
	if n > perfMaxShards {
		n = perfMaxShards
	}
	s.ShardBusyNs = make([]int64, n)
	for i := 0; i < n; i++ {
		s.ShardBusyNs[i] = p.shardNs[i].Load()
	}
	return s
}

// PhaseNs returns the accumulated nanoseconds of the named phase (one of
// act, resolve, deliver, seq-stitch, barrier-wait), or 0 for an unknown
// name.
func (s PerfSnapshot) PhaseNs(name string) int64 {
	for _, ph := range s.Phases {
		if ph.Name == name {
			return ph.Ns
		}
	}
	return 0
}

// Imbalance is the load-imbalance gauge: max over mean of the per-shard
// busy times. 1.0 means perfectly balanced shards; k means the slowest
// shard carried k times the average load (its excess is pure barrier wait
// for everyone else). Runs with fewer than two shards report 1.0, and so
// does an all-idle snapshot.
func (s PerfSnapshot) Imbalance() float64 {
	if len(s.ShardBusyNs) < 2 {
		return 1
	}
	var sum, max int64
	for _, ns := range s.ShardBusyNs {
		sum += ns
		if ns > max {
			max = ns
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.ShardBusyNs))
	return float64(max) / mean
}

// EventsPerRound is the mean event throughput per executed round (0 for
// an empty snapshot).
func (s PerfSnapshot) EventsPerRound() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return float64(s.Events) / float64(s.Rounds)
}

// flushPerf folds the kernel's goroutine-local accumulators into the
// shared collector. Called once per run (deferred from kernel.run) on the
// Run goroutine; the final phase barrier's happens-before edge makes every
// shard's busyNs visible here.
func (k *kernel) flushPerf() {
	p := k.e.perf
	p.runs.Add(1)
	p.rounds.Add(int64(k.roundsDone))
	p.events.Add(int64(k.e.seq - k.perfSeq0))
	p.wallNs.Add(nanotime() - k.perfStart)
	for i := range k.perfPhaseNs {
		p.phaseNs[i].Add(k.perfPhaseNs[i])
	}
	ns := len(k.shards)
	if ns > perfMaxShards {
		ns = perfMaxShards
	}
	for {
		cur := p.shards.Load()
		if int64(ns) <= cur || p.shards.CompareAndSwap(cur, int64(ns)) {
			break
		}
	}
	for s := range k.shards {
		slot := s
		if slot >= perfMaxShards {
			slot = perfMaxShards - 1
		}
		p.shardNs[slot].Add(k.shards[s].busyNs)
	}
}

// workerLabels precomputes one pprof label set per parallel phase for shard
// s, indexed by phaseOp. Applying a precomputed context is a cheap pointer
// swap in the scheduler, so labeling costs nothing on the per-phase path.
// CPU profiles taken during a perf run then attribute worker samples to
// kernel_phase ∈ {act, resolve, deliver} and kernel_shard = s. The inline
// single-shard path shares the Run goroutine and is left unlabeled (its
// samples show up under Engine.Run directly).
func workerLabels(s int) [3]context.Context {
	shard := strconv.Itoa(s)
	var out [3]context.Context
	for op := 0; op < 3; op++ {
		out[op] = pprof.WithLabels(context.Background(),
			pprof.Labels("kernel_phase", perfPhaseNames[op], "kernel_shard", shard))
	}
	return out
}

// setWorkerLabels applies a precomputed label set to the calling goroutine.
func setWorkerLabels(ctx context.Context) { pprof.SetGoroutineLabels(ctx) }

// clearWorkerLabels restores the unlabeled state before a worker exits.
func clearWorkerLabels() { pprof.SetGoroutineLabels(context.Background()) }

// perfClock measures consecutive segments of the Run goroutine's round
// loop. All methods are no-ops when disabled, so the uninstrumented run
// pays two predictable branches per segment and no clock reads.
type perfClock struct {
	on   bool
	last int64
}

// start begins a segment.
func (c *perfClock) start() {
	if c.on {
		c.last = nanotime()
	}
}

// lap ends the current segment into acc and starts the next one.
func (c *perfClock) lap(acc *int64) {
	if !c.on {
		return
	}
	now := nanotime()
	*acc += now - c.last
	c.last = now
}
