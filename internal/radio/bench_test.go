package radio

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"dynsens/internal/graph"
)

// benchGraph builds a connected graph of n nodes: a random tree plus
// chordsPerNode*n random chords (sparse ≈ degree 4, dense ≈ degree 30).
func benchGraph(n, chordsPerNode int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	g.AddNode(0)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
	}
	for i := 0; i < chordsPerNode*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g
}

// benchEngine builds a fresh engine over g whose chaos programs stay busy
// for horizon rounds. Fresh programs per call keep iterations independent.
func benchEngine(b *testing.B, g *graph.Graph, horizon int, seed int64) *Engine {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	progs := make(map[graph.NodeID]Program, g.NumNodes())
	for _, id := range g.Nodes() {
		progs[id] = &chaosProg{rng: rand.New(rand.NewSource(rng.Int63())), horizon: horizon}
	}
	eng, err := NewEngine(g, progs)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// engineModes is the worker sweep both engine benchmarks share: the
// reference loop (workers=0) against the kernel at 1, 2 and 4 workers.
// The sweep is fixed rather than GOMAXPROCS-derived so BENCH json keys are
// stable across hosts; on a single-CPU box the w2/w4 legs measure pure
// coordination overhead, which scripts/bench.sh reports as-is.
type engineMode struct {
	name    string
	workers int // 0 = reference loop
}

func engineModes(includeReference bool) []engineMode {
	modes := []engineMode{}
	if includeReference {
		modes = append(modes, engineMode{"reference", 0})
	}
	for _, w := range []int{1, 2, 4} {
		modes = append(modes, engineMode{fmt.Sprintf("workers=%d", w), w})
	}
	return modes
}

func runEngineMode(b *testing.B, g *graph.Graph, mode engineMode, horizon int, seed int64) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := benchEngine(b, g, horizon, seed+int64(i))
		if mode.workers > 0 {
			eng.SetWorkers(mode.workers)
		}
		b.StartTimer()
		var res Result
		if mode.workers == 0 {
			res = eng.RunReference(horizon)
		} else {
			res = eng.Run(horizon)
		}
		if res.Rounds != horizon {
			b.Fatalf("run stopped at round %d of %d", res.Rounds, horizon)
		}
	}
}

// BenchmarkEngineRun measures a full engine run (20 rounds of mixed
// listen/transmit load over 2 channels) across graph sizes and densities,
// comparing the reference loop against the kernel worker sweep.
// scripts/bench.sh runs this with GOMAXPROCS=4 and turns the ratios into
// BENCH_PR5.json (kernel vs reference) and BENCH_PR7.json (wN vs w1).
func BenchmarkEngineRun(b *testing.B) {
	const horizon = 20
	for _, n := range []int{2000, 10000, 50000} {
		for _, topo := range []struct {
			name   string
			chords int
		}{{"sparse", 1}, {"dense", 15}} {
			if testing.Short() && (n > 2000 || topo.name == "dense") {
				continue // CI bench smoke: one small leg keeps it compiling
			}
			g := benchGraph(n, topo.chords, int64(n))
			for _, mode := range engineModes(true) {
				b.Run(fmt.Sprintf("n=%d/%s/%s", n, topo.name, mode.name), func(b *testing.B) {
					runEngineMode(b, g, mode, horizon, int64(n)*31)
				})
			}
		}
	}
}

// BenchmarkEngineScale pushes the kernel worker sweep to n ∈ {200k, 1M}
// sparse — the sizes the parallel-deliver kernel targets. The reference
// loop is excluded (its O(listeners × transmitters) resolve would take
// hours at 10⁶), and -short skips the whole benchmark so the CI bench
// smoke stays fast. GOMAXPROCS is left to the harness; scripts/bench.sh
// pins it to 4 for the recorded BENCH_PR7.json legs.
func BenchmarkEngineScale(b *testing.B) {
	if testing.Short() {
		b.Skip("large-n scale benchmark skipped in -short")
	}
	const horizon = 10
	for _, n := range []int{200_000, 1_000_000} {
		g := benchGraph(n, 1, int64(n))
		for _, mode := range engineModes(false) {
			b.Run(fmt.Sprintf("n=%d/sparse/%s", n, mode.name), func(b *testing.B) {
				runEngineMode(b, g, mode, horizon, int64(n)*31)
			})
		}
		// Drop the graph (and its adjacency caches) before building the
		// next size; at n=10⁶ the two together are worth reclaiming.
		g = nil
		runtime.GC()
	}
}
