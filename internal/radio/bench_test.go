package radio

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"dynsens/internal/graph"
)

// benchGraph builds a connected graph of n nodes: a random tree plus
// chordsPerNode*n random chords (sparse ≈ degree 4, dense ≈ degree 30).
func benchGraph(n, chordsPerNode int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	g.AddNode(0)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
	}
	for i := 0; i < chordsPerNode*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g
}

// benchEngine builds a fresh engine over g whose chaos programs stay busy
// for horizon rounds. Fresh programs per call keep iterations independent.
func benchEngine(b *testing.B, g *graph.Graph, horizon int, seed int64) *Engine {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	progs := make(map[graph.NodeID]Program, g.NumNodes())
	for _, id := range g.Nodes() {
		progs[id] = &chaosProg{rng: rand.New(rand.NewSource(rng.Int63())), horizon: horizon}
	}
	eng, err := NewEngine(g, progs)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkEngineRun measures a full engine run (20 rounds of mixed
// listen/transmit load over 2 channels) across graph sizes and densities,
// comparing the reference loop against the kernel at 1 and GOMAXPROCS
// workers. scripts/bench.sh runs this with GOMAXPROCS=4 and turns the
// reference-vs-kernel ratio into BENCH_PR5.json.
func BenchmarkEngineRun(b *testing.B) {
	const horizon = 20
	for _, n := range []int{2000, 10000, 50000} {
		for _, topo := range []struct {
			name   string
			chords int
		}{{"sparse", 1}, {"dense", 15}} {
			if testing.Short() && (n > 2000 || topo.name == "dense") {
				continue // CI bench smoke: one small leg keeps it compiling
			}
			g := benchGraph(n, topo.chords, int64(n))
			modes := []struct {
				name    string
				workers int // 0 = reference loop
			}{
				{"reference", 0},
				{"workers=1", 1},
			}
			if p := runtime.GOMAXPROCS(0); p > 1 {
				modes = append(modes, struct {
					name    string
					workers int
				}{fmt.Sprintf("workers=%d", p), p})
			}
			for _, mode := range modes {
				b.Run(fmt.Sprintf("n=%d/%s/%s", n, topo.name, mode.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						eng := benchEngine(b, g, horizon, int64(n)*31+int64(i))
						if mode.workers > 0 {
							eng.SetWorkers(mode.workers)
						}
						b.StartTimer()
						var res Result
						if mode.workers == 0 {
							res = eng.RunReference(horizon)
						} else {
							res = eng.Run(horizon)
						}
						if res.Rounds != horizon {
							b.Fatalf("run stopped at round %d of %d", res.Rounds, horizon)
						}
					}
				})
			}
		}
	}
}
