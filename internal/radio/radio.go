// Package radio implements the paper's sensor-network model (Section 3.1)
// as a round-synchronous radio simulator:
//
//   - all nodes share a round clock; in each round a node is a transmitter,
//     a receiver, or asleep;
//   - nodes have no collision detection: a receiver gets a message in a
//     round iff exactly one of its neighbors transmits in that round on the
//     channel it is tuned to;
//   - k radio channels are supported (the paper's multi-channel extension);
//   - energy is accounted as awake rounds (listen + transmit), matching the
//     paper's energy metric;
//   - node and link failures can be injected at chosen rounds for the
//     robustness experiments.
//
// Protocols are written as per-node Programs; the engine drives them and
// measures what actually happened, so broadcast completion times, awake
// counts and collision counts in the experiment harness are observations,
// not formulas.
package radio

import (
	"fmt"
	"math/rand"
	"sort"

	"dynsens/internal/graph"
	"dynsens/internal/radio/rounds"
)

// Channel identifies a radio channel, 0-based.
type Channel int

// NoNode is a sentinel for "no designated node" in Message fields.
const NoNode graph.NodeID = -1

// Message is the over-the-air packet. Its fields are a union of what the
// paper's protocols carry: the broadcast payload identity, the
// transmitter's time-slot and depth (CFF packages (m, t, Delta, i)), the
// largest slot and tree height (improved CFF), a designated-receiver ID
// (the DFO token), and a multicast group.
type Message struct {
	Seq     int          // payload identity; all copies of one broadcast share it
	Src     graph.NodeID // original source of the payload
	From    graph.NodeID // transmitter; stamped by the engine on delivery
	Dst     graph.NodeID // designated receiver (DFO token target), NoNode if none
	Slot    int          // transmitter's time-slot t
	Depth   int          // transmitter's depth i
	MaxSlot int          // Delta or delta carried in the package
	Height  int          // CNet height h carried by improved CFF
	Group   int          // multicast group ID; 0 means plain broadcast
	Value   int64        // aggregated payload for data gathering
}

// ActionKind says what a node does in a round.
type ActionKind int

const (
	// Sleep: radio off; costs no energy.
	Sleep ActionKind = iota
	// Listen: receive on Action.Channel; costs one awake round.
	Listen
	// Transmit: send Action.Msg on Action.Channel; costs one awake round.
	Transmit
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case Sleep:
		return "sleep"
	case Listen:
		return "listen"
	case Transmit:
		return "transmit"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is a node's choice for one round.
type Action struct {
	Kind    ActionKind
	Channel Channel
	Msg     Message // for Transmit
}

// SleepAction is the zero-cost action.
func SleepAction() Action { return Action{Kind: Sleep} }

// ListenOn tunes the radio to ch for one round.
func ListenOn(ch Channel) Action { return Action{Kind: Listen, Channel: ch} }

// TransmitOn sends msg on ch.
func TransmitOn(ch Channel, msg Message) Action {
	return Action{Kind: Transmit, Channel: ch, Msg: msg}
}

// Program is a per-node protocol state machine. The engine calls Act at the
// start of each round; if the node listened and reception succeeded it calls
// Deliver with the message before the next round's Act. Done lets the engine
// stop early once every live node reports local termination.
//
// Contract (node-local state): a Program owns only its node's private
// state. Act and Deliver must not read or write anything shared with
// another node's Program or with the engine — no shared counters, no
// peeking at neighbor state, no package-level RNGs (a per-node rand.Rand
// seeded at build time is fine). Shared read-only schedule data built
// before the run (slot tables, tour maps) is allowed as long as no Program
// writes it. Under this contract the engine may call Act (and Deliver) for
// *different* nodes concurrently from different goroutines; calls for one
// node are always sequenced Act(r), Deliver(r)…, Done(), Act(r+1) with
// happens-before edges between phases, so a Program never needs locks.
//
// Done must be pure (it mutates nothing, so the engine may skip or repeat
// calls) and monotone (once it returns true it keeps returning true for
// the rest of the run). The engine tracks quiescence with a live/not-done
// counter instead of rescanning every node every round, so a Program that
// "un-finishes" would be missed. Every protocol in this repository keeps
// Done as a pure threshold on monotone local state.
//
// The node-locality and Done-purity halves of this contract are enforced
// statically: dynlint/progpurity checks every type with a compile-time
// `var _ radio.Program = ...` assertion (see docs/static-analysis.md).
type Program interface {
	Act(round int) Action
	Deliver(round int, msg Message)
	Done() bool
}

// EventKind classifies trace events.
type EventKind int

const (
	// EvTransmit: a node transmitted.
	EvTransmit EventKind = iota
	// EvDeliver: a listening node received a message.
	EvDeliver
	// EvCollision: a listening node heard >= 2 transmitters on its channel.
	EvCollision
	// EvNodeFail: a node died.
	EvNodeFail
	// EvLinkFail: a link was cut.
	EvLinkFail
	// EvLoss: a frame a listener would have heard was dropped by the loss
	// model (Node is the listener, Peer the transmitter).
	EvLoss
)

// String returns the short label used by trace renderings and event sinks.
func (k EventKind) String() string {
	switch k {
	case EvTransmit:
		return "tx"
	case EvDeliver:
		return "rx"
	case EvCollision:
		return "collision"
	case EvNodeFail:
		return "node-fail"
	case EvLinkFail:
		return "link-fail"
	case EvLoss:
		return "loss"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a trace record.
type Event struct {
	// Seq is the engine's monotonic event sequence number, starting at 1
	// per engine. Hook consumers use it to detect gaps (a bounded recorder
	// dropped events) and to order events without relying on callback
	// order.
	Seq     uint64
	Round   int
	Kind    EventKind
	Node    graph.NodeID
	Peer    graph.NodeID // EvLinkFail: other endpoint; EvDeliver: transmitter
	Channel Channel
	Msg     Message
}

// Result summarizes a run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Quiesced is true if every live program reported Done before the
	// round limit.
	Quiesced bool
	// Awake maps each node to its awake-round count (listen + transmit).
	Awake map[graph.NodeID]int
	// Listens and Transmits split Awake by activity, for energy models
	// that price reception and transmission differently.
	Listens   map[graph.NodeID]int
	Transmits map[graph.NodeID]int
	// Deliveries is the number of successful receptions.
	Deliveries int
	// Collisions is the number of (listener, round) pairs that heard two
	// or more simultaneous transmitters on their channel.
	Collisions int
	// Transmissions is the total number of transmit actions.
	Transmissions int
	// Losses is the number of (listener, transmitter, round) frames the
	// loss model dropped before collision resolution.
	Losses int
}

// MaxAwake returns the largest per-node awake count.
func (r Result) MaxAwake() int {
	m := 0
	for _, a := range r.Awake {
		if a > m {
			m = a
		}
	}
	return m
}

// MeanAwake returns the mean per-node awake count (0 for empty runs).
func (r Result) MeanAwake() float64 {
	if len(r.Awake) == 0 {
		return 0
	}
	sum := 0
	for _, a := range r.Awake {
		sum += a
	}
	return float64(sum) / float64(len(r.Awake))
}

// linkKey is the normalized undirected link key; it is the rounds package's
// Link so the engine's failure maps feed rounds.NewSchedule without
// conversion (the schedule is the shared failure semantics of the kernel
// and the distributed coordinator).
type linkKey = rounds.Link

func mkLink(u, v graph.NodeID) linkKey { return rounds.MkLink(u, v) }

// Engine drives a set of Programs over a graph.
type Engine struct {
	g          *graph.Graph
	programs   map[graph.NodeID]Program
	nodeFail   map[graph.NodeID]int // node -> round it dies (inclusive)
	linkFail   map[linkKey]int      // link -> round it is cut (inclusive)
	skew       map[graph.NodeID]int // node -> local clock offset in rounds
	trace      func(Event)
	traceBatch func([]Event)
	one        [1]Event // reusable single-event batch for emit
	seq        uint64   // monotonic Event.Seq counter
	workers    int      // shard workers for Run's parallel phases; 0 = default
	perf       *Perf    // optional performance collector (see perf.go); nil = off

	// lossRate drops each (transmitter, listener, round) frame
	// independently with this probability; lossSeed keys the per-(listener,
	// round) counter streams (see rng.go) that draw the coins.
	lossRate float64
	lossSeed uint64
}

// NewEngine builds an engine over g. programs must contain an entry for
// every node of g.
func NewEngine(g *graph.Graph, programs map[graph.NodeID]Program) (*Engine, error) {
	for _, id := range g.Nodes() {
		if programs[id] == nil {
			return nil, fmt.Errorf("radio: no program for node %d", id)
		}
	}
	if len(programs) != g.NumNodes() {
		return nil, fmt.Errorf("radio: %d programs for %d nodes", len(programs), g.NumNodes())
	}
	return &Engine{
		g:        g,
		programs: programs,
		nodeFail: make(map[graph.NodeID]int),
		linkFail: make(map[linkKey]int),
		skew:     make(map[graph.NodeID]int),
	}, nil
}

// SetTrace installs a per-event trace callback (nil disables it). The
// callback runs on the engine's run goroutine, in the deterministic event
// order, at any worker count.
func (e *Engine) SetTrace(fn func(Event)) { e.trace = fn }

// SetTraceBatch installs a batched trace callback (nil disables it): the
// engine hands over contiguous runs of events — one call per shard buffer
// per phase per round — instead of one call per event, which keeps
// instrumentation off the per-event hot path. Batches arrive on the run
// goroutine, already Seq-stamped, in the same deterministic global order
// SetTrace observes; concatenating them reproduces the per-event stream
// exactly. The slice is reused by the engine: consumers must copy events
// they retain past the callback's return. Both hooks may be installed at
// once; each sees every event exactly once.
func (e *Engine) SetTraceBatch(fn func([]Event)) { e.traceBatch = fn }

// FailNodeAt schedules node id to die at the start of round r (1-based);
// from round r on it neither transmits nor listens.
func (e *Engine) FailNodeAt(id graph.NodeID, r int) { e.nodeFail[id] = r }

// FailLinkAt schedules the link {u, v} to be cut at the start of round r.
func (e *Engine) FailLinkAt(u, v graph.NodeID, r int) { e.linkFail[mkLink(u, v)] = r }

// SetClockSkew gives node id a local clock offset: at global round r the
// node believes the round is r+offset and acts accordingly. This models
// the imperfect synchronization Section 3.3 discusses — TDM schedules
// tolerate skew only up to their guard margins, which the skew experiment
// measures.
func (e *Engine) SetClockSkew(id graph.NodeID, offset int) { e.skew[id] = offset }

func (e *Engine) localRound(id graph.NodeID, round int) int { return round + e.skew[id] }

// SetLoss makes every frame be lost independently with probability rate on
// each listener (fading, interference from outside the model). Lost frames
// are neither delivered nor do they jam: the listener simply never hears
// them. Deterministic per seed: coins come from counter-based splitmix64
// streams keyed by (seed, listener, round) — see internal/radio/rounds —
// so the coin for a given frame does not depend on what any other listener
// heard, and the kernel can draw it in-shard. The scheme changed in the stream-RNG
// revision: runs with the same seed draw different coins than the old
// serial-*rand.Rand engine did (flight recordings carry the scheme name in
// their header so old recordings stay interpretable).
func (e *Engine) SetLoss(rate float64, seed int64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("radio: loss rate %v out of [0,1)", rate)
	}
	e.lossRate = rate
	e.lossSeed = uint64(seed)
	return nil
}

// SetLossRand is SetLoss for callers that thread one seeded *rand.Rand
// through several randomized components: it consumes a single Uint64 from
// rng to key the engine's counter streams, leaving the rest of the caller's
// stream untouched.
func (e *Engine) SetLossRand(rate float64, rng *rand.Rand) error {
	if rng == nil {
		return fmt.Errorf("radio: nil rand source")
	}
	return e.SetLoss(rate, int64(rng.Uint64()))
}

func (e *Engine) nodeAlive(id graph.NodeID, round int) bool {
	r, ok := e.nodeFail[id]
	return !ok || round < r
}

func (e *Engine) linkAlive(u, v graph.NodeID, round int) bool {
	r, ok := e.linkFail[mkLink(u, v)]
	return !ok || round < r
}

func (e *Engine) emit(ev Event) {
	e.seq++
	ev.Seq = e.seq
	if e.trace != nil {
		e.trace(ev)
	}
	if e.traceBatch != nil {
		e.one[0] = ev
		e.traceBatch(e.one[:])
	}
}

// sinkBatch forwards one deterministic run of Seq-stamped events to the
// installed hooks: the batch hook sees the whole slice once, the per-event
// hook sees each event in order. The kernel calls this once per shard
// buffer per phase per round from its serial stitch.
func (e *Engine) sinkBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	if e.trace != nil {
		for i := range evs {
			e.trace(evs[i])
		}
	}
	if e.traceBatch != nil {
		e.traceBatch(evs)
	}
}

// RunReference executes up to maxRounds rounds (1-based round numbers) with
// the original single-loop engine and returns the observed result. It stops
// early once every live program is Done.
//
// It is retained as the executable specification of the engine's semantics:
// Run (the three-phase kernel in kernel.go) must produce a byte-identical
// event stream and an identical Result for any Program set that honors the
// Program contract, at any worker count. The equivalence suite and
// FuzzEngineEquivalence diff the two; keep this loop boring and obviously
// correct rather than fast.
func (e *Engine) RunReference(maxRounds int) Result {
	res := Result{
		Awake:     make(map[graph.NodeID]int, e.g.NumNodes()),
		Listens:   make(map[graph.NodeID]int, e.g.NumNodes()),
		Transmits: make(map[graph.NodeID]int, e.g.NumNodes()),
	}
	nodes := e.g.Nodes()
	for _, id := range nodes {
		res.Awake[id] = 0
	}
	type tx struct {
		from graph.NodeID
		msg  Message
	}
	// Failure events are emitted exactly once, at the failing round, in
	// sorted order: trace output must be byte-identical across runs, and
	// map iteration would shuffle simultaneous failures.
	nodeFails := make([]graph.NodeID, 0, len(e.nodeFail))
	for id := range e.nodeFail {
		nodeFails = append(nodeFails, id)
	}
	sort.Slice(nodeFails, func(i, j int) bool { return nodeFails[i] < nodeFails[j] })
	linkFails := make([]linkKey, 0, len(e.linkFail))
	for lk := range e.linkFail {
		linkFails = append(linkFails, lk)
	}
	sort.Slice(linkFails, func(i, j int) bool {
		if linkFails[i].U != linkFails[j].U {
			return linkFails[i].U < linkFails[j].U
		}
		return linkFails[i].V < linkFails[j].V
	})
	for round := 1; round <= maxRounds; round++ {
		for _, id := range nodeFails {
			if e.nodeFail[id] == round {
				e.emit(Event{Round: round, Kind: EvNodeFail, Node: id})
			}
		}
		for _, lk := range linkFails {
			if e.linkFail[lk] == round {
				e.emit(Event{Round: round, Kind: EvLinkFail, Node: lk.U, Peer: lk.V})
			}
		}

		// Check global quiescence among live nodes.
		allDone := true
		for _, id := range nodes {
			if e.nodeAlive(id, round) && !e.programs[id].Done() {
				allDone = false
				break
			}
		}
		if allDone {
			res.Rounds = round - 1
			res.Quiesced = true
			return res
		}

		// Gather actions.
		transmitters := make(map[Channel][]tx)
		listeners := make(map[graph.NodeID]Channel)
		for _, id := range nodes {
			if !e.nodeAlive(id, round) {
				continue
			}
			a := e.programs[id].Act(e.localRound(id, round))
			switch a.Kind {
			case Sleep:
				// no cost
			case Listen:
				res.Awake[id]++
				res.Listens[id]++
				listeners[id] = a.Channel
			case Transmit:
				res.Awake[id]++
				res.Transmits[id]++
				res.Transmissions++
				m := a.Msg
				m.From = id
				transmitters[a.Channel] = append(transmitters[a.Channel], tx{from: id, msg: m})
				e.emit(Event{Round: round, Kind: EvTransmit, Node: id, Channel: a.Channel, Msg: m})
			default:
				//lint:ignore dynlint/panics a Program returning an undefined ActionKind is a protocol bug, not an input; failing loud beats mis-accounting energy
				panic(fmt.Sprintf("radio: node %d returned invalid action kind %d", id, a.Kind))
			}
		}

		// Resolve receptions: exactly one transmitting neighbor on the
		// listened channel, over live links.
		for _, id := range nodes {
			ch, ok := listeners[id]
			if !ok {
				continue
			}
			// Loss coins come from the listener's (seed, id, round) counter
			// stream, one draw per reachable candidate in ascending
			// transmitter order. That order — not the draw site — is the
			// contract every round driver reproduces (see
			// internal/radio/rounds).
			var st rounds.LossStream
			if e.lossRate > 0 {
				st = rounds.NewLossStream(e.lossSeed, id, round)
			}
			var heard []tx
			for _, t := range transmitters[ch] {
				if t.from == id {
					continue
				}
				if !e.g.HasEdge(id, t.from) {
					continue
				}
				if !e.linkAlive(id, t.from, round) {
					continue
				}
				if e.lossRate > 0 && st.Next() < e.lossRate {
					res.Losses++
					e.emit(Event{Round: round, Kind: EvLoss, Node: id, Peer: t.from, Channel: ch, Msg: t.msg})
					continue
				}
				heard = append(heard, t)
			}
			switch {
			case len(heard) == 1:
				res.Deliveries++
				e.emit(Event{Round: round, Kind: EvDeliver, Node: id, Peer: heard[0].from, Channel: ch, Msg: heard[0].msg})
				e.programs[id].Deliver(e.localRound(id, round), heard[0].msg)
			case len(heard) > 1:
				res.Collisions++
				e.emit(Event{Round: round, Kind: EvCollision, Node: id, Channel: ch})
			}
		}
		res.Rounds = round
	}
	// Final quiescence check after the last round.
	res.Quiesced = true
	for _, id := range nodes {
		if e.nodeAlive(id, maxRounds+1) && !e.programs[id].Done() {
			res.Quiesced = false
			break
		}
	}
	return res
}
