package radio

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"dynsens/internal/graph"
)

// scenario describes one randomized engine workload, fully determined by
// its fields, so the reference engine and the kernel can each be handed an
// independent but identically-constructed instance.
type scenario struct {
	seed      int64
	n         int
	extraEdge int     // random chords beyond the connecting tree
	horizon   int     // chaos program horizon and round budget
	rounds    int     // round budget handed to Run
	lossRate  float64 // 0 disables the loss model
	nodeFails int     // scheduled node deaths (rounds may be <=0 or past the budget)
	linkFails int     // scheduled link cuts
	skewed    int     // nodes given a clock offset
}

// build constructs a fresh engine for the scenario. Every random choice is
// drawn from streams derived only from s, so repeated calls produce
// byte-identical engines with independent program state.
func (s scenario) build(t testing.TB) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(s.seed))
	g := graph.New()
	g.AddNode(0)
	for i := 1; i < s.n; i++ {
		_ = g.AddEdge(graph.NodeID(i), graph.NodeID(rng.Intn(i)))
	}
	for i := 0; i < s.extraEdge; i++ {
		u, v := rng.Intn(s.n), rng.Intn(s.n)
		if u != v {
			_ = g.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	progs := make(map[graph.NodeID]Program, s.n)
	for _, id := range g.Nodes() {
		progs[id] = &chaosProg{rng: rand.New(rand.NewSource(rng.Int63())), horizon: s.horizon}
	}
	eng, err := NewEngine(g, progs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.nodeFails; i++ {
		// Rounds from -1 to rounds+2 cover pre-dead nodes, mid-run deaths,
		// the final maxRounds+1 check, and never-reached schedules.
		eng.FailNodeAt(graph.NodeID(rng.Intn(s.n)), rng.Intn(s.rounds+4)-1)
	}
	for i := 0; i < s.linkFails; i++ {
		u, v := rng.Intn(s.n), rng.Intn(s.n)
		if u != v {
			eng.FailLinkAt(graph.NodeID(u), graph.NodeID(v), rng.Intn(s.rounds+2))
		}
	}
	for i := 0; i < s.skewed; i++ {
		eng.SetClockSkew(graph.NodeID(rng.Intn(s.n)), rng.Intn(5)-2)
	}
	if s.lossRate > 0 {
		if err := eng.SetLoss(s.lossRate, s.seed*7919+1); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// runTraced executes the engine with a trace sink that serializes every
// event — Seq included — into a byte stream.
func runTraced(eng *Engine, rounds int, reference bool) (Result, []byte) {
	var buf bytes.Buffer
	eng.SetTrace(func(ev Event) {
		fmt.Fprintf(&buf, "%+v\n", ev)
	})
	if reference {
		return eng.RunReference(rounds), buf.Bytes()
	}
	return eng.Run(rounds), buf.Bytes()
}

// checkEquivalence asserts that the kernel at each worker count reproduces
// the reference engine's Result and trace byte stream for the scenario.
func checkEquivalence(t *testing.T, s scenario, workers []int) {
	t.Helper()
	wantRes, wantTrace := runTraced(s.build(t), s.rounds, true)
	for _, w := range workers {
		eng := s.build(t)
		eng.SetWorkers(w)
		gotRes, gotTrace := runTraced(eng, s.rounds, false)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Fatalf("workers=%d: result diverges\n got %+v\nwant %+v", w, gotRes, wantRes)
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("workers=%d: trace diverges\n got:\n%s\nwant:\n%s", w, gotTrace, wantTrace)
		}
	}
}

// equivalenceWorkers is the worker matrix the acceptance criteria name:
// 1, 2, and GOMAXPROCS (plus 4 to exercise empty shards on tiny graphs).
func equivalenceWorkers() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}
}

// TestEngineEquivalenceSuite is the deterministic determinism proof: for a
// spread of seeded scenarios — plain, lossy, failing, skewed, and all at
// once — the kernel must match the reference engine byte for byte at every
// worker count. CI runs this under -race with GOMAXPROCS 1 and 4.
func TestEngineEquivalenceSuite(t *testing.T) {
	cases := []scenario{
		{seed: 1, n: 2, horizon: 4, rounds: 6},
		{seed: 2, n: 9, extraEdge: 6, horizon: 12, rounds: 15},
		{seed: 3, n: 25, extraEdge: 30, horizon: 20, rounds: 20},
		{seed: 4, n: 40, extraEdge: 10, horizon: 18, rounds: 25, nodeFails: 8, linkFails: 6},
		{seed: 5, n: 30, extraEdge: 25, horizon: 16, rounds: 16, lossRate: 0.35},
		{seed: 6, n: 33, extraEdge: 20, horizon: 14, rounds: 18, skewed: 10},
		{seed: 7, n: 50, extraEdge: 40, horizon: 22, rounds: 24, nodeFails: 10, linkFails: 8, lossRate: 0.2, skewed: 12},
		{seed: 8, n: 3, horizon: 30, rounds: 5, nodeFails: 3}, // budget exhausted, final-check deaths
		{seed: 9, n: 64, extraEdge: 200, horizon: 10, rounds: 12, lossRate: 0.5},
	}
	for _, s := range cases {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s.seed), func(t *testing.T) {
			checkEquivalence(t, s, equivalenceWorkers())
		})
	}
}

// TestEngineEquivalenceZeroRounds pins the maxRounds=0 edge: no rounds run,
// no events fire, and quiescence is judged by the final check alone.
func TestEngineEquivalenceZeroRounds(t *testing.T) {
	s := scenario{seed: 11, n: 8, extraEdge: 4, horizon: 5, rounds: 0, nodeFails: 4}
	checkEquivalence(t, s, equivalenceWorkers())
}

// TestEngineEquivalenceImmediateQuiescence pins the quiesce-at-round-1
// path: failure events scheduled for round 1 still appear in the trace even
// though no round executes.
func TestEngineEquivalenceImmediateQuiescence(t *testing.T) {
	build := func() *Engine {
		g := graph.New()
		_ = g.AddEdge(0, 1)
		_ = g.AddEdge(1, 2)
		progs := map[graph.NodeID]Program{
			0: &chaosProg{rng: rand.New(rand.NewSource(1)), horizon: 0},
			1: &chaosProg{rng: rand.New(rand.NewSource(2)), horizon: 0},
			2: &chaosProg{rng: rand.New(rand.NewSource(3)), horizon: 0},
		}
		eng, err := NewEngine(g, progs)
		if err != nil {
			t.Fatal(err)
		}
		eng.FailNodeAt(2, 1)
		eng.FailLinkAt(0, 1, 1)
		return eng
	}
	// chaosProg with horizon 0 starts Done (cur=0 >= 0), so round 1
	// quiesces immediately — after its failure events.
	wantRes, wantTrace := runTraced(build(), 10, true)
	if !wantRes.Quiesced || wantRes.Rounds != 0 {
		t.Fatalf("scenario not quiescing as intended: %+v", wantRes)
	}
	if len(wantTrace) == 0 {
		t.Fatal("expected round-1 failure events in the trace")
	}
	for _, w := range equivalenceWorkers() {
		eng := build()
		eng.SetWorkers(w)
		gotRes, gotTrace := runTraced(eng, 10, false)
		if !reflect.DeepEqual(gotRes, wantRes) || !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("workers=%d diverges: %+v vs %+v", w, gotRes, wantRes)
		}
	}
}

// TestEngineWorkersExceedNodes forces more shards than nodes: excess
// workers get empty ranges and the run must still match.
func TestEngineWorkersExceedNodes(t *testing.T) {
	s := scenario{seed: 21, n: 3, horizon: 6, rounds: 8}
	checkEquivalence(t, s, []int{7, 100})
}

// FuzzEngineEquivalence drives random graphs, programs, loss seeds and
// failure schedules through both engines and fails on any divergence in
// Result or serialized trace — the fuzzing arm of the determinism proof.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(12), uint8(0), uint8(0))
	f.Add(int64(42), uint8(30), uint8(20), uint8(3), uint8(9))
	f.Add(int64(7), uint8(50), uint8(8), uint8(7), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, roundsRaw, failRaw, lossRaw uint8) {
		s := scenario{
			seed:      seed,
			n:         int(nRaw%40) + 2,
			extraEdge: int(nRaw),
			horizon:   int(roundsRaw%30) + 1,
			rounds:    int(roundsRaw%30) + 3,
			lossRate:  float64(lossRaw%100) / 100 * 0.9,
			nodeFails: int(failRaw % 8),
			linkFails: int(failRaw % 5),
			skewed:    int(failRaw % 7),
		}
		checkEquivalence(t, s, []int{1, 2, 4})
	})
}
