package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// APIHygiene keeps the exported surface of library packages navigable:
// every exported declaration carries a doc comment, and every fmt.Errorf
// message starts with a lowercase component tag ("cnet: ...", "tree: ...")
// so an error bubbling out of a deep experiment run can be attributed to
// the subsystem that produced it. Pure wrapping formats that start with a
// verb ("%s"/"%w"-first) are exempt.
var APIHygiene = &Analyzer{
	Name: "apihygiene",
	Doc: "flags exported declarations without doc comments and fmt.Errorf " +
		"messages without a lowercase component-tag prefix",
	Run: runAPIHygiene,
}

func runAPIHygiene(p *Package) []Finding {
	if !p.IsLibrary() {
		return nil
	}
	var out []Finding
	report := func(pos token.Pos, format string, args ...interface{}) {
		out = append(out, Finding{
			Analyzer: "apihygiene",
			Pos:      p.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if !ast.IsExported(decl.Name.Name) {
					continue
				}
				if decl.Recv != nil && !ast.IsExported(recvTypeName(decl)) {
					continue
				}
				if decl.Doc == nil {
					report(decl.Pos(), "exported %s %s has no doc comment", funcKind(decl), declName(decl))
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if ast.IsExported(s.Name.Name) && decl.Doc == nil && s.Doc == nil {
							report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if ast.IsExported(name.Name) && decl.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(name.Pos(), "exported %s %s has no doc comment", declTok(decl.Tok), name.Name)
							}
						}
					}
				}
			}
		}
		if p.Info != nil {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if path, name := pkgFunc(p, call); path != "fmt" || name != "Errorf" {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				msg, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if !taggedMessage(msg) {
					report(lit.Pos(), "fmt.Errorf message %q lacks a lowercase component tag (want e.g. %q)",
						msg, p.Name+": "+msg)
				}
				return true
			})
		}
	}
	return out
}

// taggedMessage accepts "tag: ..." where tag is lowercase (possibly with
// %-verbs, as in "policy %s:"), and pure wrapping formats starting with a
// %-verb.
func taggedMessage(msg string) bool {
	if strings.HasPrefix(msg, "%") {
		return true
	}
	tag, _, ok := strings.Cut(msg, ":")
	if !ok || tag == "" {
		return false
	}
	for _, r := range tag {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == ' ' || r == '-' || r == '_' || r == '%' || r == '.' || r == '/':
		default:
			return false
		}
	}
	return true
}

// funcKind distinguishes methods from functions in messages.
func funcKind(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method"
	}
	return "function"
}

// declName renders Func or (*Recv).Func.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "(*" + recvTypeName(fd) + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// declTok names a var/const declaration in messages.
func declTok(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
