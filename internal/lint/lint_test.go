package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantMarker precedes the analyzer names expected on a fixture line:
//
//	rand.Intn(6) // want dynlint/nondeterminism
const wantMarker = "// want "

// fixtureWants scans a fixture directory for want markers and returns the
// expected findings as "file:line" -> sorted analyzer names.
func fixtureWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, wantMarker)
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, tok := range strings.Fields(rest) {
				if name, ok := strings.CutPrefix(tok, "dynlint/"); ok {
					out[key] = append(out[key], name)
				}
			}
			sort.Strings(out[key])
		}
	}
	return out
}

// findingsByLine groups findings the same way fixtureWants does.
func findingsByLine(fs []Finding) map[string][]string {
	out := make(map[string][]string)
	for _, f := range fs {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		out[key] = append(out[key], f.Analyzer)
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}

// TestAnalyzersOnFixtures runs every analyzer over one fixture package per
// analyzer and requires the findings to match the // want markers exactly —
// no misses, no extras (the extras check is what keeps the heuristics from
// drifting into noise).
func TestAnalyzersOnFixtures(t *testing.T) {
	for _, name := range []string{"nondet", "uncheckederr", "mutverify", "panicfix", "apihygiene", "progpurity", "shardsafe", "hotalloc"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			p, err := LoadDir(dir, "internal/"+name)
			if err != nil {
				t.Fatal(err)
			}
			want := fixtureWants(t, dir)
			got := findingsByLine(Run([]*Package{p}, All))
			for key, analyzers := range want {
				if strings.Join(got[key], ",") != strings.Join(analyzers, ",") {
					t.Errorf("%s: want findings %v, got %v", key, analyzers, got[key])
				}
			}
			for key, analyzers := range got {
				if len(want[key]) == 0 {
					t.Errorf("%s: unexpected findings %v", key, analyzers)
				}
			}
		})
	}
}

// TestBareSuppressionIsReported checks that a //lint:ignore directive
// without a justification both fails to suppress and is itself reported.
func TestBareSuppressionIsReported(t *testing.T) {
	p, err := LoadDir(filepath.Join("testdata", "src", "directive"), "internal/directive")
	if err != nil {
		t.Fatal(err)
	}
	fs := Run([]*Package{p}, All)
	var analyzers []string
	for _, f := range fs {
		analyzers = append(analyzers, f.Analyzer)
	}
	sort.Strings(analyzers)
	if strings.Join(analyzers, ",") != "lintdirective,panics" {
		t.Fatalf("want [lintdirective panics], got %v (findings: %v)", analyzers, fs)
	}
	for _, f := range fs {
		if f.Analyzer == "panics" && fs[0].Pos.Line+1 != f.Pos.Line {
			t.Errorf("panic finding at line %d, directive at %d; bare directive must not suppress", f.Pos.Line, fs[0].Pos.Line)
		}
	}
}

// TestShardsafeModuleFixture loads the testdata mini-module with its own
// go.mod and real package structure (kernel importing its own
// internal/trace) and checks that the shardsafe walk flags the trace call
// two hops below the annotated phase, with forbidden packages matched by
// import-path suffix rather than by the repo's module path.
func TestShardsafeModuleFixture(t *testing.T) {
	root := filepath.Join("testdata", "src", "shardsafemod")
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	want := fixtureWants(t, filepath.Join(root, "kernel"))
	for key, analyzers := range fixtureWants(t, filepath.Join(root, "internal", "trace")) {
		want[key] = analyzers
	}
	if len(want) == 0 {
		t.Fatal("no want markers in shardsafemod fixture")
	}
	got := findingsByLine(Run(pkgs, All))
	for key, analyzers := range want {
		if strings.Join(got[key], ",") != strings.Join(analyzers, ",") {
			t.Errorf("%s: want findings %v, got %v", key, analyzers, got[key])
		}
	}
	for key, analyzers := range got {
		if len(want[key]) == 0 {
			t.Errorf("%s: unexpected findings %v", key, analyzers)
		}
	}
}

// TestDistNodeFixture loads the distributed-node mini-module: a
// ServeNode-shaped host loop annotated //dynlint:shardsafe that reaches a
// trace sink and the global math/rand stream, plus a Program leaking
// state into the host. The distributed runtime's hosts carry the same
// determinism obligations as kernel shard phases, and this fixture is
// what keeps the analyzers enforcing that on the dist node loop shape.
func TestDistNodeFixture(t *testing.T) {
	root := filepath.Join("testdata", "src", "distnode")
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	want := fixtureWants(t, filepath.Join(root, "internal", "node"))
	for key, analyzers := range fixtureWants(t, filepath.Join(root, "internal", "trace")) {
		want[key] = analyzers
	}
	if len(want) == 0 {
		t.Fatal("no want markers in distnode fixture")
	}
	got := findingsByLine(Run(pkgs, All))
	for key, analyzers := range want {
		if strings.Join(got[key], ",") != strings.Join(analyzers, ",") {
			t.Errorf("%s: want findings %v, got %v", key, analyzers, got[key])
		}
	}
	for key, analyzers := range got {
		if len(want[key]) == 0 {
			t.Errorf("%s: unexpected findings %v", key, analyzers)
		}
	}
}

// TestFixturesLoad parses and type-checks every fixture directory under
// testdata/src, so fixtures cannot bit-rot uncompiled: the go tool ignores
// testdata, making this test (also run by the CI fuzz-smoke step) the only
// thing that keeps them buildable.
func TestFixturesLoad(t *testing.T) {
	src := filepath.Join("testdata", "src")
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(src, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			if _, err := Load(dir); err != nil {
				t.Errorf("Load(%s): %v", dir, err)
			}
			continue
		}
		if _, err := LoadDir(dir, "internal/"+e.Name()); err != nil {
			t.Errorf("LoadDir(%s): %v", dir, err)
		}
	}
}

// TestSuppressionCountMatchesDocs pins docs/static-analysis.md to the
// tree's actual //lint:ignore directives: the doc must state the exact
// count and name every suppressed file, so the list regenerated with
// `dynlint -suppressions` cannot drift silently again.
func TestSuppressionCountMatchesDocs(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	recs := SuppressionsIn(pkgs)
	doc, err := os.ReadFile(filepath.Join(root, "docs", "static-analysis.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	claim := fmt.Sprintf("carries %d suppressions", len(recs))
	if !strings.Contains(text, claim) {
		t.Errorf("docs/static-analysis.md does not state %q; regenerate the list with `go run ./cmd/dynlint -suppressions ./...`", claim)
	}
	for _, r := range recs {
		rel, err := filepath.Rel(root, r.File)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		if !strings.Contains(text, rel) {
			t.Errorf("suppression in %s (line %d, dynlint/%s) is not listed in docs/static-analysis.md", rel, r.Line, r.Analyzer)
		}
	}
}

// TestRepoIsClean loads the whole module and requires zero findings: the
// linter gates CI, so the repository must stay clean against its own rules.
func TestRepoIsClean(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, f := range Run(pkgs, All) {
		t.Errorf("%s", f)
	}
}
