package lint

import (
	"go/ast"
	"go/types"
)

// Panics forbids panic() in library packages. A simulator library that
// panics takes down the whole experiment sweep, including the unrelated
// (size, seed) points running in parallel; invalid inputs must surface as
// errors the harness can attribute to one point. The narrow exception —
// asserting a provably-unreachable post-condition violation (a bug, never
// an input) — must be claimed explicitly with a justified
// //lint:ignore dynlint/panics suppression so each case is reviewable.
var Panics = &Analyzer{
	Name: "panics",
	Doc:  "flags panic() in internal/ packages; unreachable-bug assertions need a justified suppression",
	Run:  runPanics,
}

func runPanics(p *Package) []Finding {
	if !p.IsLibrary() || p.Info == nil {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			out = append(out, Finding{
				Analyzer: "panics",
				Pos:      p.Fset.Position(call.Pos()),
				Message: "panic in library package; return an error, or suppress with a justification " +
					"if this asserts a provably-unreachable bug state",
			})
			return true
		})
	}
	return out
}
