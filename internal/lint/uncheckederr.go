package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErr flags dropped error returns. The repo's invariants surface
// as errors from Verify()/Validate()-style calls; dropping one turns a
// machine-checked guarantee into a hope. Two shapes are flagged:
//
//   - a call used as a bare statement whose (last) result is an error;
//   - an explicit discard `_ = x.Verify()` of a verification call —
//     blank-assigning other errors is treated as a deliberate, visible
//     choice, but silencing a verifier is never acceptable.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc: "flags call statements that drop an error result, and blank " +
		"assignments that discard Verify*/Validate*/Check* results",
	Run: runUncheckedErr,
}

// verifierName reports whether a callee name is an invariant check.
func verifierName(name string) bool {
	return strings.HasPrefix(name, "Verify") ||
		strings.HasPrefix(name, "Validate") ||
		strings.HasPrefix(name, "Check")
}

// errIgnoredCallees never meaningfully fail here and may be used as bare
// statements: terminal output on a dev machine has no error recovery.
var errIgnoredCallees = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// infallibleWriter reports types whose Write* methods are documented to
// always return a nil error (strings.Builder, bytes.Buffer), so dropping
// their error is noise, not risk.
func infallibleWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// stdStream reports whether e is os.Stdout or os.Stderr; print errors on
// the developer's terminal have no recovery path.
func stdStream(p *Package, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os" &&
		(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

func runUncheckedErr(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	errType := types.Universe.Lookup("error").Type()
	returnsError := func(call *ast.CallExpr) bool {
		tv, ok := p.Info.Types[call]
		if !ok || tv.Type == nil {
			return false
		}
		switch t := tv.Type.(type) {
		case *types.Tuple:
			return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType)
		default:
			return types.Identical(t, errType)
		}
	}
	calleeName := func(call *ast.CallExpr) string {
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			return fn.Name
		case *ast.SelectorExpr:
			if path, name := pkgFunc(p, call); path != "" {
				// Abbreviate stdlib callees as pkg.Func for the ignore list.
				if i := strings.LastIndex(path, "/"); i >= 0 {
					path = path[i+1:]
				}
				return path + "." + name
			}
			return fn.Sel.Name
		default:
			return ""
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok || !returnsError(call) {
					return true
				}
				name := calleeName(call)
				if errIgnoredCallees[name] {
					return true
				}
				// fmt.Fprint* into an infallible or terminal writer.
				if strings.HasPrefix(name, "fmt.Fprint") && len(call.Args) > 0 {
					if tv, ok := p.Info.Types[call.Args[0]]; ok && infallibleWriter(tv.Type) {
						return true
					}
					if stdStream(p, call.Args[0]) {
						return true
					}
				}
				// Methods on strings.Builder / bytes.Buffer.
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if s, ok := p.Info.Selections[sel]; ok && infallibleWriter(s.Recv()) {
						return true
					}
				}
				out = append(out, Finding{
					Analyzer: "uncheckederr",
					Pos:      p.Fset.Position(stmt.Pos()),
					Message:  fmt.Sprintf("error returned by %s is dropped; handle it or assign it explicitly", name),
				})
			case *ast.AssignStmt:
				if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
					return true
				}
				id, ok := stmt.Lhs[0].(*ast.Ident)
				if !ok || id.Name != "_" {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok || !returnsError(call) {
					return true
				}
				name := calleeName(call)
				short := name
				if i := strings.LastIndex(short, "."); i >= 0 {
					short = short[i+1:]
				}
				if verifierName(short) {
					out = append(out, Finding{
						Analyzer: "uncheckederr",
						Pos:      p.Fset.Position(stmt.Pos()),
						Message:  fmt.Sprintf("invariant check %s is silenced with _ =; its error must be handled", name),
					})
				}
			}
			return true
		})
	}
	return out
}
