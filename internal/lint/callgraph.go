package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// callGraph is the package-local static call graph: an edge from a
// declaration to every same-package function or method it calls directly.
// Calls through interfaces (e.g. Program.Act) and into other packages have
// no local declaration and terminate the walk — shardsafe flags the
// dangerous cross-package calls at the call site instead, and progpurity
// dispatches over every Program implementation explicitly.
type callGraph struct {
	p *Package
	// decls maps each declared function object to its syntax.
	decls map[*types.Func]*ast.FuncDecl
	// callees lists, per declaration, the same-package declarations it
	// calls, in source order of the call sites.
	callees map[*ast.FuncDecl][]*ast.FuncDecl
}

// newCallGraph builds the call graph for a type-checked package.
func newCallGraph(p *Package) *callGraph {
	g := &callGraph{
		p:       p,
		decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*ast.FuncDecl][]*ast.FuncDecl),
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				g.decls[obj] = fd
			}
		}
	}
	for _, fd := range g.sortedDecls() {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee, ok := g.decls[calleeFunc(p, call)]; ok {
				g.callees[fd] = append(g.callees[fd], callee)
			}
			return true
		})
	}
	return g
}

// sortedDecls returns every declaration in source-position order, so walks
// that aggregate over the graph stay deterministic.
func (g *callGraph) sortedDecls() []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(g.decls))
	for _, fd := range g.decls {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// reachable returns the declarations reachable from the roots through
// same-package calls, including the roots themselves.
func (g *callGraph) reachable(roots ...*ast.FuncDecl) map[*ast.FuncDecl]bool {
	seen := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || seen[fd] {
			return
		}
		seen[fd] = true
		for _, c := range g.callees[fd] {
			visit(c)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// sortReachable flattens a reachable set into source-position order.
func sortReachable(set map[*ast.FuncDecl]bool) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(set))
	for fd := range set {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// calleeFunc resolves a call expression to the function or method object it
// invokes, nil when the callee is not a statically known *types.Func (a
// builtin, a conversion, a function-typed variable, ...).
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
