// Package lint is a self-contained static-analysis pass over this
// repository's own source, in the spirit of go/analysis but built only on
// the stdlib go/parser, go/ast and go/types (go.mod stays dependency-free).
//
// The paper's guarantees are conditional: Lemma 2/3 collision-freedom and
// the Definition 1 / Property 1 CNet invariants only hold if the simulator
// is deterministic (seed-reproducible) and every mutation path
// re-establishes the invariants. The runtime checks in internal/cnet and
// internal/timeslot catch violations when they execute; the analyzers here
// enforce statically that the code cannot drift into the classes of bug
// that would silently void them: hidden nondeterminism, dropped
// verification errors, mutating APIs without invariant-checked tests,
// panics in library code, and unattributable error messages.
//
// Findings can be suppressed with a justification:
//
//	//lint:ignore dynlint/<analyzer> <reason>
//
// placed at the end of the offending line or on the line directly above
// it. The reason is mandatory; a bare ignore is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String formats the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: dynlint/%s: %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named pass over a loaded package.
type Analyzer struct {
	// Name identifies the analyzer in findings and suppressions
	// (dynlint/<Name>).
	Name string
	// Doc is a one-paragraph description for documentation and -help.
	Doc string
	// Run inspects one package and returns its findings.
	Run func(p *Package) []Finding
}

// All lists every analyzer in the order findings are grouped.
var All = []*Analyzer{
	Nondeterminism,
	UncheckedErr,
	MutVerify,
	Panics,
	APIHygiene,
	ProgPurity,
	ShardSafe,
	HotAlloc,
}

// ignorePrefix starts a suppression comment.
const ignorePrefix = "//lint:ignore dynlint/"

// suppression records one //lint:ignore comment.
type suppression struct {
	analyzer string
	line     int
	reason   string
}

// suppressions scans a file's comments for //lint:ignore directives.
// Malformed directives (no reason) are returned as findings so that
// suppressions can never silently rot into blanket ignores.
func suppressions(fset *token.FileSet, file *ast.File) ([]suppression, []Finding) {
	var sups []suppression
	var bad []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			if strings.TrimSpace(reason) == "" {
				bad = append(bad, Finding{
					Analyzer: "lintdirective",
					Pos:      pos,
					Message:  fmt.Sprintf("suppression of dynlint/%s has no justification; write //lint:ignore dynlint/%s <reason>", name, name),
				})
				continue
			}
			sups = append(sups, suppression{analyzer: name, line: pos.Line, reason: reason})
		}
	}
	return sups, bad
}

// Run executes the analyzers over the packages, drops suppressed findings,
// and returns the remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		var sups []suppression
		for _, f := range append(append([]*ast.File{}, p.Files...), p.TestFiles...) {
			s, bad := suppressions(p.Fset, f)
			sups = append(sups, s...)
			out = append(out, bad...)
			out = append(out, annotationFindings(p.Fset, f)...)
		}
		suppressed := func(f Finding) bool {
			for _, s := range sups {
				if s.analyzer != f.Analyzer {
					continue
				}
				if s.line == f.Pos.Line || s.line == f.Pos.Line-1 {
					return true
				}
			}
			return false
		}
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				if !suppressed(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
