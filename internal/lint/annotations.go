package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Function annotations mark code that opts into extra obligations. They are
// written as directive comments in a function's doc block:
//
//	//dynlint:hotpath
//	func (g *Grid) appendUnsorted(dst []int, p Point, exclude int) []int {
//
// Three annotations exist:
//
//	//dynlint:shardsafe — the function runs inside a shard phase of the
//	radio kernel's parallel engine; it and everything it reaches in its
//	package must not emit traces/obs/flight events, draw from a
//	*rand.Rand or global math/rand, or stamp Event.Seq. In-shard
//	counter-based stream draws (plain arithmetic keyed off the run seed,
//	see internal/radio/rng.go) are legal: they have no draw-order
//	dependency for the analyzer to protect.
//
//	//dynlint:seqstitch — the function is a sanctioned parallel
//	Event.Seq writer: it renumbers a shard's staged events from a base
//	that the kernel's serial stitch prefix-summed. Seq writes inside it
//	are exempt from the shardsafe rule; every other shardsafe obligation
//	still applies to it.
//
//	//dynlint:hotpath — the function is on a per-round/per-node hot path;
//	loops inside it must not heap-allocate per iteration.
//
// Anything after the annotation name on the same line is a free-form note.
// Unknown names and annotations placed anywhere but a function's doc block
// are reported (dynlint/lintdirective), so annotations cannot silently rot.

// annotationPrefix starts a function annotation comment.
const annotationPrefix = "//dynlint:"

// knownAnnotations lists the valid annotation names.
var knownAnnotations = map[string]bool{
	"hotpath":   true,
	"seqstitch": true,
	"shardsafe": true,
}

// funcAnnotations returns the annotation names present in fd's doc block.
func funcAnnotations(fd *ast.FuncDecl) map[string]bool {
	if fd.Doc == nil {
		return nil
	}
	var out map[string]bool
	for _, c := range fd.Doc.List {
		name, ok := annotationName(c)
		if !ok || !knownAnnotations[name] {
			continue
		}
		if out == nil {
			out = make(map[string]bool, 1)
		}
		out[name] = true
	}
	return out
}

// annotated returns the function declarations in p (non-test files) whose
// doc block carries the named annotation, in source order.
func annotated(p *Package, name string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && funcAnnotations(fd)[name] {
				out = append(out, fd)
			}
		}
	}
	return out
}

// annotationName parses a //dynlint:<name> comment, reporting ok=false for
// comments that are not annotations at all.
func annotationName(c *ast.Comment) (string, bool) {
	rest, ok := strings.CutPrefix(c.Text, annotationPrefix)
	if !ok {
		return "", false
	}
	name, _, _ := strings.Cut(rest, " ")
	return strings.TrimSpace(name), true
}

// annotationFindings validates every //dynlint: directive in the file:
// unknown names are typos that would silently annotate nothing, and known
// names outside a function's doc block silently bind to nothing; both are
// reported so the annotation layer stays trustworthy.
func annotationFindings(fset *token.FileSet, file *ast.File) []Finding {
	attached := make(map[*ast.Comment]bool)
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			attached[c] = true
		}
	}
	var out []Finding
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name, ok := annotationName(c)
			if !ok {
				continue
			}
			switch {
			case !knownAnnotations[name]:
				out = append(out, Finding{
					Analyzer: "lintdirective",
					Pos:      fset.Position(c.Pos()),
					Message:  fmt.Sprintf("unknown annotation %s%s (have hotpath, seqstitch, shardsafe)", annotationPrefix, name),
				})
			case !attached[c]:
				out = append(out, Finding{
					Analyzer: "lintdirective",
					Pos:      fset.Position(c.Pos()),
					Message:  fmt.Sprintf("%s%s is not in a function's doc block and annotates nothing", annotationPrefix, name),
				})
			}
		}
	}
	return out
}
