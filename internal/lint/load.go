package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one directory of the module, parsed and type-checked.
type Package struct {
	// Name is the package clause name.
	Name string
	// ImportPath is the module-qualified import path.
	ImportPath string
	// Dir is the absolute directory.
	Dir string
	// RelDir is the directory relative to the module root, "." for the
	// root itself. Analyzers scope themselves with it (e.g. library rules
	// apply under internal/).
	RelDir string
	// Fset positions all files of all packages in one load.
	Fset *token.FileSet
	// Files are the non-test files, type-checked.
	Files []*ast.File
	// TestFiles are the _test.go files (in-package and external). They are
	// parsed but not type-checked; analyzers use them syntactically.
	TestFiles []*ast.File
	// Types is the checked package, nil when the directory holds only
	// test files.
	Types *types.Package
	// Info carries the type-checker's results for Files.
	Info *types.Info
}

// IsLibrary reports whether the package is library code whose determinism
// and invariants the paper's guarantees depend on (everything under
// internal/; cmd/ and examples/ are exempt from the library-only rules).
func (p *Package) IsLibrary() bool {
	return p.RelDir == "internal" || strings.HasPrefix(p.RelDir, "internal"+string(filepath.Separator)) ||
		strings.HasPrefix(p.RelDir, "internal/")
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// moduleImporter resolves imports during type-checking: module-local paths
// come from the packages already checked in dependency order, everything
// else (the stdlib) from the source importer, so the whole load works with
// the stdlib alone.
type moduleImporter struct {
	module string
	std    types.Importer
	local  map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.module || strings.HasPrefix(path, m.module+"/") {
		if p, ok := m.local[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("lint: module package %s not yet checked (import cycle?)", path)
	}
	return m.std.Import(path)
}

// Load parses and type-checks every package of the module rooted at root.
// Directories named testdata and hidden directories are skipped. Packages
// are returned sorted by RelDir.
func Load(root string) ([]*Package, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	sort.Strings(dirs)

	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := parseDir(fset, root, module, dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}

	imp := &moduleImporter{
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		local:  make(map[string]*types.Package, len(pkgs)),
	}
	order, err := topoSort(pkgs, module)
	if err != nil {
		return nil, err
	}
	for _, p := range order {
		if err := check(p, imp); err != nil {
			return nil, err
		}
		if p.Types != nil {
			imp.local[p.ImportPath] = p.Types
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].RelDir < pkgs[j].RelDir })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, presenting it
// under relAs (so tests can load fixtures as if they lived at a chosen
// spot in the module, e.g. "internal/fixture"). Fixture files may import
// the stdlib only.
func LoadDir(dir, relAs string) (*Package, error) {
	fset := token.NewFileSet()
	p, err := parseDir(fset, filepath.Dir(dir), "lintfixture", dir)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	p.RelDir = relAs
	imp := &moduleImporter{
		module: "lintfixture",
		std:    importer.ForCompiler(fset, "source", nil),
		local:  map[string]*types.Package{},
	}
	if err := check(p, imp); err != nil {
		return nil, err
	}
	return p, nil
}

// parseDir parses one directory into a Package (nil when it has no
// buildable Go files). Exactly one non-test package clause is expected per
// directory, plus optionally its _test packages.
func parseDir(fset *token.FileSet, root, module, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	ipath := module
	if rel != "." {
		ipath = module + "/" + filepath.ToSlash(rel)
	}
	p := &Package{ImportPath: ipath, Dir: dir, RelDir: filepath.ToSlash(rel), Fset: fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			p.TestFiles = append(p.TestFiles, f)
			continue
		}
		p.Files = append(p.Files, f)
		if p.Name == "" {
			p.Name = f.Name.Name
		} else if p.Name != f.Name.Name {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, p.Name, f.Name.Name)
		}
	}
	if len(p.Files) == 0 && len(p.TestFiles) == 0 {
		return nil, nil
	}
	if p.Name == "" { // test-only directory: name it after its tests
		p.Name = strings.TrimSuffix(p.TestFiles[0].Name.Name, "_test")
	}
	return p, nil
}

// topoSort orders packages so every module-local import precedes its
// importer, as the type-checker requires.
func topoSort(pkgs []*Package, module string) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var order []*Package
	state := make(map[string]int, len(pkgs)) // 0 new, 1 visiting, 2 done
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, f := range p.Files {
			for _, im := range f.Imports {
				path, err := strconv.Unquote(im.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byPath[path]; ok && dep != p {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks the package's non-test files. Test-only directories
// are left with nil Types; analyzers must tolerate that.
func check(p *Package, imp types.Importer) error {
	if len(p.Files) == 0 {
		return nil
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(p.ImportPath, p.Fset, p.Files, p.Info)
	if len(errs) > 0 {
		return fmt.Errorf("lint: type errors in %s (run go build first): %v", p.ImportPath, errs[0])
	}
	if err != nil {
		return fmt.Errorf("lint: %s: %w", p.ImportPath, err)
	}
	p.Types = tpkg
	return nil
}
