package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ShardSafe enforces the kernel's determinism contract: functions annotated
// //dynlint:shardsafe run concurrently across shards inside the radio
// kernel's phase engine, so every effect whose order could depend on shard
// interleaving must stay in the serial stitch steps between phases. The
// analyzer walks the same-package call graph from each annotated function
// and flags, anywhere in the reachable set:
//
//   - calls into internal/trace, internal/obs or internal/flight (their
//     output order would depend on shard interleaving);
//   - any *rand.Rand method call or package-global math/rand draw (a
//     shared generator's draw order is a cross-shard ordering dependency;
//     in-shard counter-based stream draws — plain arithmetic keyed off the
//     run seed, internal/radio/rng.go — are legal precisely because they
//     have none, and the analyzer does not flag them);
//   - writes to an Event's Seq field, except inside functions annotated
//     //dynlint:seqstitch — the sanctioned parallel renumbering from
//     prefix-summed per-shard bases. A seqstitch function keeps every
//     other shardsafe obligation.
//
// Calls that leave the package through an interface or into a third package
// are not followed; the forbidden packages are matched at the call site, so
// an indirect escape through a helper package would need that package's own
// annotations — keep shard-phase logic in the kernel's package.
var ShardSafe = &Analyzer{
	Name: "shardsafe",
	Doc: "forbids trace/obs/flight calls, shared-RNG use and Event.Seq writes " +
		"(outside //dynlint:seqstitch renumberers) in code reachable from " +
		"//dynlint:shardsafe functions (stitch-only effects)",
	Run: runShardSafe,
}

// shardForbiddenPkgs are the import-path suffixes whose calls must stay in
// the merge. Suffix matching keeps the analyzer exercisable from fixture
// modules with their own module paths.
var shardForbiddenPkgs = []string{"internal/trace", "internal/obs", "internal/flight"}

func runShardSafe(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	roots := annotated(p, "shardsafe")
	if len(roots) == 0 {
		return nil
	}
	cg := newCallGraph(p)
	var out []Finding
	seen := make(map[string]bool) // shared helpers reachable from several roots report once
	report := func(n ast.Node, format string, args ...interface{}) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d/%s", n.Pos(), msg)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Finding{
			Analyzer: "shardsafe",
			Pos:      p.Fset.Position(n.Pos()),
			Message:  msg,
		})
	}
	for _, fd := range sortReachable(cg.reachable(roots...)) {
		checkShardSafe(p, fd, report)
	}
	return out
}

func checkShardSafe(p *Package, fd *ast.FuncDecl, report func(ast.Node, string, ...interface{})) {
	if fd.Body == nil {
		return
	}
	// A //dynlint:seqstitch function is the sanctioned parallel Seq
	// renumberer: its Seq writes are by-construction deterministic (bases
	// come from the serial stitch's prefix sums), so only the Seq-write
	// check is waived for it.
	seqExempt := funcAnnotations(fd)["seqstitch"]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkShardCall(p, fd, x, report)
		case *ast.AssignStmt:
			if !seqExempt {
				for _, lhs := range x.Lhs {
					checkSeqWrite(p, fd, lhs, report)
				}
			}
		case *ast.IncDecStmt:
			if !seqExempt {
				checkSeqWrite(p, fd, x.X, report)
			}
		}
		return true
	})
}

// checkShardCall flags forbidden callees at a shard-phase call site.
func checkShardCall(p *Package, fd *ast.FuncDecl, call *ast.CallExpr,
	report func(ast.Node, string, ...interface{})) {
	callee := calleeFunc(p, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	path := callee.Pkg().Path()
	for _, sfx := range shardForbiddenPkgs {
		if path == sfx || strings.HasSuffix(path, "/"+sfx) {
			report(call, "%s runs in a shard phase (reachable from //dynlint:shardsafe) but calls %s.%s; "+
				"trace/obs/flight effects belong to the sequential merge (determinism-by-merge)",
				fd.Name.Name, callee.Pkg().Name(), callee.Name())
			return
		}
	}
	if path != "math/rand" {
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		report(call, "%s runs in a shard phase (reachable from //dynlint:shardsafe) but draws from a "+
			"*rand.Rand; coin order is merge-owned (determinism-by-merge)", fd.Name.Name)
		return
	}
	if !randConstructors[callee.Name()] {
		report(call, "%s runs in a shard phase (reachable from //dynlint:shardsafe) but calls global "+
			"math/rand.%s; coin order is merge-owned (determinism-by-merge)", fd.Name.Name, callee.Name())
	}
}

// checkSeqWrite flags assignments to an Event's Seq field.
func checkSeqWrite(p *Package, fd *ast.FuncDecl, lhs ast.Expr,
	report func(ast.Node, string, ...interface{})) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Seq" {
		return
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return
	}
	if named := namedOf(tv.Type); named != nil && named.Obj().Name() == "Event" {
		report(lhs, "%s runs in a shard phase (reachable from //dynlint:shardsafe) but writes Event.Seq; "+
			"sequence numbers come from the serial stitch's prefix sums, applied only by "+
			"//dynlint:seqstitch renumberers", fd.Name.Name)
	}
}
