package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ShardSafe enforces the determinism-by-merge rule: functions annotated
// //dynlint:shardsafe run concurrently across shards inside the radio
// kernel's phase engine, so every observable side effect — trace/obs/flight
// emission, RNG draws, Event.Seq stamping — must stay in the sequential
// merge. The analyzer walks the same-package call graph from each annotated
// function and flags, anywhere in the reachable set:
//
//   - calls into internal/trace, internal/obs or internal/flight (their
//     output order would depend on shard interleaving);
//   - any *rand.Rand method call or package-global math/rand draw (coin
//     order is part of the deterministic replay contract; the merge owns
//     the loss RNG);
//   - writes to an Event's Seq field (sequence numbers are stamped by the
//     merge's emit path, once, in merge order).
//
// Calls that leave the package through an interface or into a third package
// are not followed; the forbidden packages are matched at the call site, so
// an indirect escape through a helper package would need that package's own
// annotations — keep shard-phase logic in the kernel's package.
var ShardSafe = &Analyzer{
	Name: "shardsafe",
	Doc: "forbids trace/obs/flight calls, RNG use and Event.Seq writes in code " +
		"reachable from //dynlint:shardsafe functions (merge-only effects)",
	Run: runShardSafe,
}

// shardForbiddenPkgs are the import-path suffixes whose calls must stay in
// the merge. Suffix matching keeps the analyzer exercisable from fixture
// modules with their own module paths.
var shardForbiddenPkgs = []string{"internal/trace", "internal/obs", "internal/flight"}

func runShardSafe(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	roots := annotated(p, "shardsafe")
	if len(roots) == 0 {
		return nil
	}
	cg := newCallGraph(p)
	var out []Finding
	seen := make(map[string]bool) // shared helpers reachable from several roots report once
	report := func(n ast.Node, format string, args ...interface{}) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d/%s", n.Pos(), msg)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Finding{
			Analyzer: "shardsafe",
			Pos:      p.Fset.Position(n.Pos()),
			Message:  msg,
		})
	}
	for _, fd := range sortReachable(cg.reachable(roots...)) {
		checkShardSafe(p, fd, report)
	}
	return out
}

func checkShardSafe(p *Package, fd *ast.FuncDecl, report func(ast.Node, string, ...interface{})) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkShardCall(p, fd, x, report)
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkSeqWrite(p, fd, lhs, report)
			}
		case *ast.IncDecStmt:
			checkSeqWrite(p, fd, x.X, report)
		}
		return true
	})
}

// checkShardCall flags forbidden callees at a shard-phase call site.
func checkShardCall(p *Package, fd *ast.FuncDecl, call *ast.CallExpr,
	report func(ast.Node, string, ...interface{})) {
	callee := calleeFunc(p, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	path := callee.Pkg().Path()
	for _, sfx := range shardForbiddenPkgs {
		if path == sfx || strings.HasSuffix(path, "/"+sfx) {
			report(call, "%s runs in a shard phase (reachable from //dynlint:shardsafe) but calls %s.%s; "+
				"trace/obs/flight effects belong to the sequential merge (determinism-by-merge)",
				fd.Name.Name, callee.Pkg().Name(), callee.Name())
			return
		}
	}
	if path != "math/rand" {
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		report(call, "%s runs in a shard phase (reachable from //dynlint:shardsafe) but draws from a "+
			"*rand.Rand; coin order is merge-owned (determinism-by-merge)", fd.Name.Name)
		return
	}
	if !randConstructors[callee.Name()] {
		report(call, "%s runs in a shard phase (reachable from //dynlint:shardsafe) but calls global "+
			"math/rand.%s; coin order is merge-owned (determinism-by-merge)", fd.Name.Name, callee.Name())
	}
}

// checkSeqWrite flags assignments to an Event's Seq field.
func checkSeqWrite(p *Package, fd *ast.FuncDecl, lhs ast.Expr,
	report func(ast.Node, string, ...interface{})) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Seq" {
		return
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return
	}
	if named := namedOf(tv.Type); named != nil && named.Obj().Name() == "Event" {
		report(lhs, "%s runs in a shard phase (reachable from //dynlint:shardsafe) but writes Event.Seq; "+
			"sequence numbers are stamped exclusively by the merge's emit path (determinism-by-merge)",
			fd.Name.Name)
	}
}
