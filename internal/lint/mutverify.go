package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// MutVerify closes the gap between the repo's runtime invariant checks and
// its tests: a library package that declares a Verify* method (cnet,
// timeslot, core, multicast, multinet, gather) promises machine-checkable
// invariants, so every exported method that mutates that state must be
// exercised by at least one test file that also calls a Verify* check.
// Otherwise a mutation path can silently stop re-establishing Definition 1
// / Property 1 / the Time-Slot Conditions and no test would notice.
//
// Mutation is detected syntactically: an assignment, ++/--, delete or
// append rooted at the receiver, directly or via a same-receiver method
// call (transitively, within the package).
var MutVerify = &Analyzer{
	Name: "mutverify",
	Doc: "flags exported mutating methods, in packages that define Verify* " +
		"checks, that no test file covers together with a Verify* call",
	Run: runMutVerify,
}

func runMutVerify(p *Package) []Finding {
	if !p.IsLibrary() {
		return nil
	}
	// The rule only binds packages that promise verifiable invariants.
	declaresVerifier := false
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv != nil && strings.HasPrefix(fd.Name.Name, "Verify") {
				declaresVerifier = true
			}
		}
	}
	if !declaresVerifier {
		return nil
	}

	type methodKey struct{ typ, name string }
	methods := make(map[methodKey]*ast.FuncDecl)
	mutates := make(map[methodKey]bool)
	calls := make(map[methodKey][]methodKey) // same-receiver method calls
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			typ := recvTypeName(fd)
			key := methodKey{typ: typ, name: fd.Name.Name}
			methods[key] = fd
			recv := recvIdentName(fd)
			if recv == "" || recv == "_" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						if exprRoot(lhs) == recv {
							mutates[key] = true
						}
					}
				case *ast.IncDecStmt:
					if exprRoot(x.X) == recv {
						mutates[key] = true
					}
				case *ast.CallExpr:
					if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
						if exprRoot(x.Args[0]) == recv {
							mutates[key] = true
						}
					}
					if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
						if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
							calls[key] = append(calls[key], methodKey{typ: typ, name: sel.Sel.Name})
						}
					}
				}
				return true
			})
		}
	}
	// Propagate mutation through same-receiver calls to a fixpoint.
	for changed := true; changed; {
		changed = false
		for key, callees := range calls {
			if mutates[key] {
				continue
			}
			for _, c := range callees {
				if mutates[c] {
					mutates[key] = true
					changed = true
					break
				}
			}
		}
	}

	// A test file covers method M when it calls M and some Verify* check.
	type fileCalls struct {
		names    map[string]bool
		verifies bool
	}
	var tests []fileCalls
	for _, f := range p.TestFiles {
		fc := fileCalls{names: make(map[string]bool)}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				name = fn.Name
			case *ast.SelectorExpr:
				name = fn.Sel.Name
			}
			if name != "" {
				fc.names[name] = true
				if strings.HasPrefix(name, "Verify") {
					fc.verifies = true
				}
			}
			return true
		})
		tests = append(tests, fc)
	}
	covered := func(name string) bool {
		for _, fc := range tests {
			if fc.verifies && fc.names[name] {
				return true
			}
		}
		return false
	}

	keys := make([]methodKey, 0, len(methods))
	for key := range methods {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].typ != keys[j].typ {
			return keys[i].typ < keys[j].typ
		}
		return keys[i].name < keys[j].name
	})
	var out []Finding
	for _, key := range keys {
		fd := methods[key]
		if !mutates[key] || !ast.IsExported(key.name) || !ast.IsExported(key.typ) {
			continue
		}
		if covered(key.name) {
			continue
		}
		out = append(out, Finding{
			Analyzer: "mutverify",
			Pos:      p.Fset.Position(fd.Pos()),
			Message: fmt.Sprintf("exported method (*%s).%s mutates receiver state but no test in this package "+
				"calls it alongside a Verify* invariant check", key.typ, key.name),
		})
	}
	return out
}

// recvTypeName returns the receiver's base type name.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvIdentName returns the receiver variable name, "" when anonymous.
func recvIdentName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// exprRoot returns the leftmost identifier of a selector/index/star chain,
// so `a.slot[k][y] = s` roots at "a".
func exprRoot(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return ""
		}
	}
}
