package directive

func bad(x int) int {
	if x < 0 {
		//lint:ignore dynlint/panics
		panic("negative")
	}
	return x
}
