package progpurity

import (
	"math/rand"
	"time"
)

// Program mirrors the radio engine's per-node contract interface; the
// compile-time assertions below are what opt a type into the analyzer.
type Program interface {
	Act(round int) int
	Deliver(round int, msg int)
	Done() bool
}

// counters is package-level mutable state: Reset writes it, so any Program
// touching it is flagged.
var counters = map[string]int{}

// table is package-level read-only schedule data; nothing writes it after
// its declaration, so Programs may read it freely.
var table = [4]int{1, 2, 3, 4}

// Reset rewinds the counters between experiment runs (and is what marks
// them mutable to the analyzer).
func Reset() { counters["acts"] = 0 }

// badNode breaks the contract in every checked way: mutable package state,
// global RNG, wall clock, a reference to another Program, a mutating Done.
type badNode struct {
	id     int
	peer   *goodNode
	rounds int
	done   bool
}

var _ Program = (*badNode)(nil)

func (b *badNode) Act(round int) int {
	counters["acts"]++          // want dynlint/progpurity
	return rand.Intn(round + 1) // want dynlint/nondeterminism dynlint/progpurity
}

func (b *badNode) Deliver(round int, msg int) {
	_ = time.Now().Unix() // want dynlint/nondeterminism dynlint/progpurity
	if b.peer.finished {  // want dynlint/progpurity
		b.done = true
	}
}

func (b *badNode) Done() bool { // want dynlint/progpurity
	b.tick()
	return b.done
}

func (b *badNode) tick() { b.rounds++ }

// goodNode honors the contract: a private seeded RNG, a receiver-owned map
// keyed by the delivered message, reads of the read-only table, and a pure
// monotone Done. Nothing here is flagged.
type goodNode struct {
	id       int
	rng      *rand.Rand
	heard    map[int]bool
	finished bool
}

var _ Program = (*goodNode)(nil)

func (g *goodNode) Act(round int) int {
	return g.rng.Intn(table[round%len(table)] + 1)
}

func (g *goodNode) Deliver(round int, msg int) {
	g.heard[msg] = true
	if len(g.heard) >= 2 {
		g.finished = true
	}
}

func (g *goodNode) Done() bool { return g.finished }

// auditNode shows a justified suppression: the shared audit counter is a
// deliberate, documented contract exception in this fixture.
type auditNode struct{ done bool }

var _ Program = (*auditNode)(nil)

func (a *auditNode) Act(round int) int {
	//lint:ignore dynlint/progpurity fixture: deliberate shared audit counter with a documented reason
	counters["audit"]++
	return round
}

func (a *auditNode) Deliver(round int, msg int) {}

func (a *auditNode) Done() bool { return a.done }
