// Package kernel mimics the radio kernel's shard phases: phase is
// annotated //dynlint:shardsafe and reaches trace.Emit only transitively,
// through record — the case the reachability walk exists for.
package kernel

import "shardsafemod/internal/trace"

// state is a stand-in shard.
type state struct {
	buf []int
}

// phase fills the shard buffer; the trace call hides one hop down.
//
//dynlint:shardsafe
func (s *state) phase(round int) {
	for i := 0; i < round; i++ {
		s.record(i)
	}
}

// record forwards to the trace package; the finding lands on the call site
// here, inside the reachable set, not on the annotated root.
func (s *state) record(v int) {
	s.buf = append(s.buf, v)
	trace.Emit(v) // want dynlint/shardsafe
}
