module shardsafemod

go 1.22
