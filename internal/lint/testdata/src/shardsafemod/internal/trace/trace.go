// Package trace is a stand-in for the repo's internal/trace: reaching it
// from shard-phase code must be flagged wherever the module lives, which is
// why the analyzer matches forbidden packages by import-path suffix.
package trace

// Emit records one value.
func Emit(v int) {}
