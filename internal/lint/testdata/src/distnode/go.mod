module distnode

go 1.22
