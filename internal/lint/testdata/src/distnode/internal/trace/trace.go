// Package trace is a stand-in for the repo's internal/trace event sink:
// a distributed node host reaching it must be flagged exactly as a kernel
// shard phase would be (the analyzer matches forbidden packages by
// import-path suffix, so the fixture module's own path works).
package trace

// Emit records one value.
func Emit(v int) {}
