// Package node mimics internal/dist's node host loop: ServeNode-shaped
// hosts run one goroutine or process per node and carry the same
// determinism obligations as the kernel's shard phases — a host may touch
// only its frames and its own Program. The fixture pins that an annotated
// host loop reaching an event sink (internal/trace) or the global
// math/rand stream fails the build, and that a Program leaking state into
// the host fails progpurity.
package node

import (
	"math/rand"

	"distnode/internal/trace"
)

// Program mirrors the radio per-node contract; the compile-time
// assertions below are what opt the implementations into progpurity.
type Program interface {
	Act(round int) int
	Deliver(round int, msg int)
	Done() bool
}

// frame is a stand-in wire frame.
type frame struct {
	Round int
	Value int
}

// stats is host-global mutable state; a Program touching it is impure.
var stats = map[string]int{}

// badServe leaks observability into the actor loop: it emits to the trace
// sink and draws jitter from the global rand stream — both host-contract
// violations the distributed runtime's build gate must catch.
//
//dynlint:shardsafe node hosts run concurrently; a host may touch only its frames and its own Program
func badServe(p Program, in <-chan frame) {
	for f := range in {
		trace.Emit(f.Round)       // want dynlint/shardsafe
		if rand.Float64() < 0.5 { // want dynlint/nondeterminism dynlint/shardsafe
			continue
		}
		_ = p.Act(f.Round)
	}
}

// goodServe honors the contract: frames in, program calls, frames out.
// Nothing here is flagged.
//
//dynlint:shardsafe node hosts run concurrently; a host may touch only its frames and its own Program
func goodServe(p Program, in <-chan frame, out chan<- frame) {
	for f := range in {
		p.Deliver(f.Round, f.Value)
		out <- frame{Round: f.Round, Value: p.Act(f.Round)}
	}
}

// chattyProg reports into the host's stats map from Deliver — the
// host/program boundary violation progpurity exists to catch: with
// out-of-process fleets that state silently diverges between the
// coordinator's copy and the child's.
type chattyProg struct{ done bool }

var _ Program = (*chattyProg)(nil)

func (c *chattyProg) Act(round int) int          { return round }
func (c *chattyProg) Deliver(round int, msg int) { stats["rx"]++ } // want dynlint/progpurity
func (c *chattyProg) Done() bool                 { return c.done }

// quietProg keeps everything receiver-owned. Nothing here is flagged.
type quietProg struct {
	heard int
	done  bool
}

var _ Program = (*quietProg)(nil)

func (q *quietProg) Act(round int) int { return round + q.heard }
func (q *quietProg) Deliver(round int, msg int) {
	q.heard++
	if q.heard >= 2 {
		q.done = true
	}
}
func (q *quietProg) Done() bool { return q.done }
