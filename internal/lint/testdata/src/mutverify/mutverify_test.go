package mutverify

import "testing"

func TestAdd(t *testing.T) {
	c := &Counter{n: make(map[string]int)}
	c.Add("x")
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}
