package mutverify

// Counter counts keys.
type Counter struct {
	n map[string]int
}

// Verify checks the counts are non-negative.
func (c *Counter) Verify() error { return nil }

// Add increments a key. Covered by a test that also calls Verify.
func (c *Counter) Add(k string) { c.n[k]++ }

// Reset clears all counts.
func (c *Counter) Reset() { // want dynlint/mutverify
	c.n = make(map[string]int)
}

// Clear clears all counts via an unexported helper.
func (c *Counter) Clear() { // want dynlint/mutverify
	c.reset()
}

func (c *Counter) reset() {
	c.n = make(map[string]int)
}

// Len reads without mutating; never flagged.
func (c *Counter) Len() int { return len(c.n) }
