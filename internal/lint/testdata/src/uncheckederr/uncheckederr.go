package uncheckederr

import (
	"fmt"
	"os"
	"strings"
)

type thing struct{}

func (t *thing) Verify() error { return nil }

func fallible() error { return nil }

func bad() {
	fallible() // want dynlint/uncheckederr
	t := &thing{}
	_ = t.Verify() // want dynlint/uncheckederr
}

func good() error {
	var b strings.Builder
	fmt.Fprintf(&b, "x")
	fmt.Fprintln(os.Stderr, "y")
	fmt.Println("z")
	_ = fallible() // deliberate discard of a non-verifier: allowed
	if err := fallible(); err != nil {
		return err
	}
	return nil
}
