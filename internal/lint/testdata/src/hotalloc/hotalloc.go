package hotalloc

import "fmt"

// pair is a tiny record used to demonstrate pointer escapes.
type pair struct {
	a, b int
}

// sink keeps loop results alive so the fixture type-checks; the misplaced
// annotation below must be reported, not silently ignored.
func sink(n int) {
	//dynlint:hotpath // want dynlint/lintdirective
	_ = n
}

// bad allocates in every flagged way inside its loops.
//
//dynlint:hotpath
func bad(vals []int) int {
	total := 0
	for i, v := range vals {
		m := map[int]bool{v: true}   // want dynlint/hotalloc
		s := []int{v, v}             // want dynlint/hotalloc
		buf := make([]byte, 8)       // want dynlint/hotalloc
		str := fmt.Sprintf("%d", v)  // want dynlint/hotalloc
		f := func() int { return v } // want dynlint/hotalloc
		ptr := &pair{a: i}           // want dynlint/hotalloc
		q := new(pair)               // want dynlint/hotalloc
		var tmp []int
		tmp = append(tmp, v) // want dynlint/hotalloc
		total += len(m) + len(s) + len(buf) + len(str) + f() + ptr.a + q.b + len(tmp)
	}
	return total
}

// crash shows the panic exemption: formatting a fatal message does not
// count as per-iteration cost, but the panic itself is still panics-flagged
// like everywhere else in library code.
//
//dynlint:hotpath
func crash(vals []int) {
	for i, v := range vals {
		if v < 0 {
			panic(fmt.Sprintf("hotalloc: negative value %d at %d", v, i)) // want dynlint/panics
		}
	}
}

// justified carries a suppressed allocation with a documented reason.
//
//dynlint:hotpath
func justified(vals []int) int {
	total := 0
	for _, v := range vals {
		//lint:ignore dynlint/hotalloc fixture: demonstrates a justified, documented allocation
		str := fmt.Sprintf("%d", v)
		total += len(str)
	}
	return total
}

// clean follows the scratch-buffer idiom: the caller provides dst, struct
// values stay on the stack, and nothing allocates per iteration.
//
//dynlint:hotpath
func clean(dst []int, vals []int) []int {
	for _, v := range vals {
		e := pair{a: v, b: v * 2}
		dst = append(dst, e.a+e.b)
	}
	return dst
}

// unannotated allocates freely: without //dynlint:hotpath nothing here is
// checked. The bogus annotation name is reported as a typo.
//
//dynlint:bogus // want dynlint/lintdirective
func unannotated(vals []int) []string {
	out := make([]string, 0, len(vals))
	for _, v := range vals {
		out = append(out, fmt.Sprintf("%d", v))
	}
	return out
}
