package nondet

import (
	"math/rand"
	"sort"
	"time"
)

func coins() int {
	return rand.Intn(6) // want dynlint/nondeterminism
}

func stamp() int64 {
	return time.Now().UnixNano() // want dynlint/nondeterminism
}

func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

func leak(m map[string]int) []string {
	var out []string
	for k := range m { // want dynlint/nondeterminism
		out = append(out, k)
	}
	return out
}

func sortedLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func buckets(m map[string][]int) map[string][]int {
	out := make(map[string][]int)
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}
