package panicfix

func boom(x int) int {
	if x < 0 {
		panic("negative") // want dynlint/panics
	}
	return x
}

func justifiedAbove(x int) int {
	if x < 0 {
		//lint:ignore dynlint/panics unreachable: every caller validates x first
		panic("negative")
	}
	return x
}

func justifiedInline(x int) int {
	if x < 0 {
		panic("negative") //lint:ignore dynlint/panics unreachable: every caller validates x first
	}
	return x
}
