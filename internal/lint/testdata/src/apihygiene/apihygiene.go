package apihygiene

import "fmt"

// Documented has a doc comment.
type Documented struct{}

type Undocumented struct{} // want dynlint/apihygiene

// Do is documented.
func Do() {}

func Missing() {} // want dynlint/apihygiene

// Errs exercises the error-message convention.
func Errs(name string) error {
	if name == "" {
		return fmt.Errorf("apihygiene: empty name")
	}
	if name == "w" {
		return fmt.Errorf("%w: while wrapping", errBase)
	}
	return fmt.Errorf("Untagged message %s", name) // want dynlint/apihygiene
}

var errBase = fmt.Errorf("apihygiene: base")
