package shardsafe

import "math/rand"

// Event mirrors the radio event record; Seq is the merge-stamped field the
// analyzer guards.
type Event struct {
	Round int
	Seq   uint64
}

// engine carries the merge-owned RNG and the emitted events.
type engine struct {
	rng    *rand.Rand
	events []Event
	seq    uint64
}

// emit is merge-only code: it stamps Seq. It is flagged below only because
// badPhase reaches it through indirect — the reachability walk, not the
// annotation, is what drags it into the checked set.
func (e *engine) emit(ev Event) {
	e.seq++
	ev.Seq = e.seq // want dynlint/shardsafe
	e.events = append(e.events, ev)
}

// badPhase draws a coin, stamps Seq and reaches emit through a helper, all
// from shard-parallel code.
//
//dynlint:shardsafe
func (e *engine) badPhase(round int) {
	if e.rng.Float64() < 0.5 { // want dynlint/shardsafe
		return
	}
	var ev Event
	ev.Round = round
	ev.Seq = 7 // want dynlint/shardsafe
	e.indirect(ev)
}

// indirect only forwards to emit; it exists so the fixture proves the
// transitive walk (badPhase -> indirect -> emit) works.
func (e *engine) indirect(ev Event) {
	e.emit(ev)
}

// goodPhase only fills its shard-local buffer; the merge does the rest.
// Nothing here is flagged.
//
//dynlint:shardsafe
func (e *engine) goodPhase(round int, scratch []Event) []Event {
	for i := 0; i < round; i++ {
		scratch = append(scratch, Event{Round: round})
	}
	return scratch
}

// justifiedPhase carries a suppressed coin draw with a documented reason.
//
//dynlint:shardsafe
func (e *engine) justifiedPhase() float64 {
	//lint:ignore dynlint/shardsafe fixture: demonstrates a justified, documented exception
	return e.rng.Float64()
}

// mixStream is a counter-based in-shard draw: plain arithmetic keyed off a
// seed, no shared generator, no draw-order dependency. Legal in shard
// phases — the analyzer must not flag it.
func mixStream(s uint64) uint64 {
	s += 0x9E3779B97F4A7C15
	s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9
	return s ^ (s >> 31)
}

// streamPhase draws coins from a counter stream inside a shard phase and
// renumbers its buffer through the sanctioned stitch helper. Clean.
//
//dynlint:shardsafe
func (e *engine) streamPhase(seed uint64, evs []Event) int {
	heard := 0
	for i := range evs {
		if mixStream(seed+uint64(i))&1 == 0 {
			heard++
		}
	}
	stitchSeq(evs, 41)
	return heard
}

// stitchSeq is the sanctioned parallel Seq renumberer: the seqstitch
// annotation waives the Seq-write rule for it (and only that rule).
//
//dynlint:seqstitch fixture: renumbering from a prefix-summed base
func stitchSeq(evs []Event, base uint64) {
	for i := range evs {
		evs[i].Seq = base + 1 + uint64(i)
	}
}

// stitchAbuse shows the exemption is narrow: a seqstitch function that
// draws from the shared RNG is still flagged when reached from a shard
// phase — only Seq writes are waived.
//
//dynlint:seqstitch fixture: annotation does not waive the RNG rule
func (e *engine) stitchAbuse(evs []Event) {
	for i := range evs {
		evs[i].Seq = e.rng.Uint64() // want dynlint/shardsafe
	}
}

// abusePhase reaches stitchAbuse from a shard phase.
//
//dynlint:shardsafe
func (e *engine) abusePhase(evs []Event) {
	e.stitchAbuse(evs)
}
