package shardsafe

import "math/rand"

// Event mirrors the radio event record; Seq is the merge-stamped field the
// analyzer guards.
type Event struct {
	Round int
	Seq   uint64
}

// engine carries the merge-owned RNG and the emitted events.
type engine struct {
	rng    *rand.Rand
	events []Event
	seq    uint64
}

// emit is merge-only code: it stamps Seq. It is flagged below only because
// badPhase reaches it through indirect — the reachability walk, not the
// annotation, is what drags it into the checked set.
func (e *engine) emit(ev Event) {
	e.seq++
	ev.Seq = e.seq // want dynlint/shardsafe
	e.events = append(e.events, ev)
}

// badPhase draws a coin, stamps Seq and reaches emit through a helper, all
// from shard-parallel code.
//
//dynlint:shardsafe
func (e *engine) badPhase(round int) {
	if e.rng.Float64() < 0.5 { // want dynlint/shardsafe
		return
	}
	var ev Event
	ev.Round = round
	ev.Seq = 7 // want dynlint/shardsafe
	e.indirect(ev)
}

// indirect only forwards to emit; it exists so the fixture proves the
// transitive walk (badPhase -> indirect -> emit) works.
func (e *engine) indirect(ev Event) {
	e.emit(ev)
}

// goodPhase only fills its shard-local buffer; the merge does the rest.
// Nothing here is flagged.
//
//dynlint:shardsafe
func (e *engine) goodPhase(round int, scratch []Event) []Event {
	for i := 0; i < round; i++ {
		scratch = append(scratch, Event{Round: round})
	}
	return scratch
}

// justifiedPhase carries a suppressed coin draw with a documented reason.
//
//dynlint:shardsafe
func (e *engine) justifiedPhase() float64 {
	//lint:ignore dynlint/shardsafe fixture: demonstrates a justified, documented exception
	return e.rng.Float64()
}
