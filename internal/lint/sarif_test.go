package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestSARIFEncoding checks the SARIF log is valid JSON with the shape
// GitHub code scanning requires: schema/version, a dynlint driver whose
// rules cover every analyzer plus lintdirective, and results carrying
// rule IDs, messages and 1-based forward-slash locations.
func TestSARIFEncoding(t *testing.T) {
	findings := []Finding{
		{
			Analyzer: "shardsafe",
			Pos:      token.Position{Filename: "internal/radio/kernel.go", Line: 42, Column: 3},
			Message:  "coin drawn in shard phase",
		},
		{
			Analyzer: "lintdirective",
			Pos:      token.Position{Filename: "internal/obs/obs.go"}, // zero line/col must clamp to 1
			Message:  "bare suppression",
		},
	}
	data, err := SARIF(findings, All)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					Physical struct {
						Artifact struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version %q schema %q; want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dynlint" {
		t.Errorf("driver name %q, want dynlint", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool, len(run.Tool.Driver.Rules))
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range All {
		if !ruleIDs["dynlint/"+a.Name] {
			t.Errorf("rule dynlint/%s missing from driver rules", a.Name)
		}
	}
	if !ruleIDs["dynlint/lintdirective"] {
		t.Error("rule dynlint/lintdirective missing from driver rules")
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "dynlint/shardsafe" || first.Level != "error" || first.Message.Text != "coin drawn in shard phase" {
		t.Errorf("unexpected first result: %+v", first)
	}
	loc := first.Locations[0].Physical
	if loc.Artifact.URI != "internal/radio/kernel.go" || loc.Region.StartLine != 42 || loc.Region.StartColumn != 3 {
		t.Errorf("unexpected first location: %+v", loc)
	}
	clamped := run.Results[1].Locations[0].Physical.Region
	if clamped.StartLine != 1 || clamped.StartColumn != 1 {
		t.Errorf("zero position must clamp to 1:1, got %d:%d", clamped.StartLine, clamped.StartColumn)
	}
}

// TestSuppressionsIn checks the listing finds the known fixture directive
// with its analyzer, line and reason intact.
func TestSuppressionsIn(t *testing.T) {
	p, err := LoadDir("testdata/src/progpurity", "internal/progpurity")
	if err != nil {
		t.Fatal(err)
	}
	recs := SuppressionsIn([]*Package{p})
	if len(recs) != 1 {
		t.Fatalf("got %d suppressions, want 1: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Analyzer != "progpurity" || !strings.HasSuffix(r.File, "progpurity.go") || !strings.Contains(r.Reason, "audit counter") {
		t.Errorf("unexpected record: %+v", r)
	}
}
