package lint

import (
	"encoding/json"
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// sarifLog is a minimal SARIF 2.1.0 document.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

// sarifRun is the single run of the log.
type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

// sarifTool names the driver and its rule catalogue.
type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

// sarifDriver describes dynlint itself.
type sarifDriver struct {
	Name  string      `json:"name"`
	URI   string      `json:"informationUri"`
	Rules []sarifRule `json:"rules"`
}

// sarifRule is one analyzer in the catalogue.
type sarifRule struct {
	ID   string    `json:"id"`
	Name string    `json:"name"`
	Desc sarifText `json:"shortDescription"`
}

// sarifText wraps a plain-text message.
type sarifText struct {
	Text string `json:"text"`
}

// sarifResult is one finding.
type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

// sarifLocation pins a result to file:line:col.
type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

// sarifPhysical is the artifact+region pair of a location.
type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

// sarifArtifact is the file a result points into.
type sarifArtifact struct {
	URI string `json:"uri"`
}

// sarifRegion is the 1-based position inside the artifact.
type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF encodes findings as a minimal SARIF 2.1.0 log, the format GitHub
// code scanning ingests, so dynlint findings annotate pull requests inline.
// Rules come from the analyzer catalogue plus the implicit lintdirective
// rule for malformed suppressions/annotations; result locations use
// forward-slash paths (expected relative to the repository root — rewrite
// Finding.Pos.Filename before calling, as cmd/dynlint does).
func SARIF(findings []Finding, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID: "dynlint/" + a.Name, Name: a.Name, Desc: sarifText{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID: "dynlint/lintdirective", Name: "lintdirective",
		Desc: sarifText{Text: "reports malformed //lint:ignore suppressions and //dynlint: annotations"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  "dynlint/" + f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: filepath.ToSlash(f.Pos.Filename)},
				Region:   sarifRegion{StartLine: max(f.Pos.Line, 1), StartColumn: max(f.Pos.Column, 1)},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dynlint", URI: "docs/static-analysis.md", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// SuppressionRecord is one //lint:ignore directive found in the tree, for
// the -suppressions listing that keeps docs/static-analysis.md honest.
type SuppressionRecord struct {
	// Analyzer is the suppressed analyzer name (after dynlint/).
	Analyzer string `json:"analyzer"`
	// File is the file path as loaded (absolute until the caller rewrites).
	File string `json:"file"`
	// Line is the directive's own line.
	Line int `json:"line"`
	// Reason is the mandatory justification text.
	Reason string `json:"reason"`
}

// SuppressionsIn lists every well-formed suppression in the packages
// (test files included), sorted by file and line. Malformed (reason-less)
// directives are excluded here — Run reports those as lintdirective
// findings instead.
func SuppressionsIn(pkgs []*Package) []SuppressionRecord {
	var out []SuppressionRecord
	for _, p := range pkgs {
		for _, f := range append(append([]*ast.File{}, p.Files...), p.TestFiles...) {
			sups, _ := suppressions(p.Fset, f)
			name := p.Fset.Position(f.Pos()).Filename
			for _, s := range sups {
				out = append(out, SuppressionRecord{
					Analyzer: s.analyzer,
					File:     name,
					Line:     s.line,
					Reason:   strings.TrimSpace(s.reason),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
