package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ProgPurity enforces the radio.Program contract statically for every type
// with a compile-time assertion `var _ ...Program = ...`. The shard-parallel
// kernel calls Act and Deliver for different nodes concurrently and tracks
// quiescence with a counter fed by cached Done values, so the contract
// (node-local state, pure monotone Done) is load-bearing for both memory
// safety and the determinism-by-merge guarantee. The analyzer checks, over
// each Program method and every same-package function it reaches:
//
//   - Act/Deliver touch no mutable package-level variable (one written
//     anywhere in function bodies of the package). Shared *read-only*
//     schedule tables built before the run are what the contract permits,
//     so package variables that are never assigned outside declarations
//     stay usable.
//   - Act/Deliver consult no wall clock and no package-global math/rand
//     stream (a per-node seeded *rand.Rand field is fine).
//   - Act/Deliver/Done never reference another Program value (a field or
//     variable of a Program-asserted type other than the method's own
//     receiver) — peeking at a neighbor's state voids node-locality.
//   - Done mutates nothing through the receiver, directly or via
//     same-receiver helpers: the engine may skip or repeat Done calls.
var ProgPurity = &Analyzer{
	Name: "progpurity",
	Doc: "verifies Program-contract compliance: Act/Deliver touch no mutable " +
		"package state, wall clock or global RNG; no method reaches another " +
		"Program's state; Done is read-only",
	Run: runProgPurity,
}

func runProgPurity(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	progs := programTypes(p)
	if len(progs) == 0 {
		return nil
	}
	cg := newCallGraph(p)
	mutated := mutatedPackageVars(p)

	// Collect each Program type's declared methods.
	type typeMethods struct {
		named *types.Named
		byNm  map[string]*ast.FuncDecl
	}
	var tms []typeMethods
	for _, named := range sortedNamed(progs) {
		tm := typeMethods{named: named, byNm: make(map[string]*ast.FuncDecl)}
		for _, fd := range cg.sortedDecls() {
			if fd.Recv == nil {
				continue
			}
			if recvNamed(p, fd) == named {
				tm.byNm[fd.Name.Name] = fd
			}
		}
		tms = append(tms, tm)
	}

	var out []Finding
	reported := make(map[token.Pos]bool) // helper nodes shared by several Programs report once
	report := func(n ast.Node, format string, args ...interface{}) {
		if reported[n.Pos()] {
			return
		}
		reported[n.Pos()] = true
		out = append(out, Finding{
			Analyzer: "progpurity",
			Pos:      p.Fset.Position(n.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	for _, tm := range tms {
		tname := tm.named.Obj().Name()
		var roots []*ast.FuncDecl
		for _, name := range []string{"Act", "Deliver"} {
			if fd := tm.byNm[name]; fd != nil {
				roots = append(roots, fd)
			}
		}
		for _, fd := range sortReachable(cg.reachable(roots...)) {
			checkNodeLocal(p, fd, tname, mutated, report)
		}
		for _, name := range []string{"Act", "Deliver", "Done"} {
			if fd := tm.byNm[name]; fd != nil {
				checkNoProgramRefs(p, fd, progs, tname, report)
			}
		}
		if done := tm.byNm["Done"]; done != nil {
			if via := mutatesViaReceiver(p, tm.byNm, "Done"); via != "" {
				msg := "(%s).Done mutates receiver state%s; the Program contract requires Done " +
					"to be pure (the engine caches it and may skip or repeat calls) — move the " +
					"mutation into Act or Deliver"
				report(done, msg, tname, via)
			}
		}
	}
	return out
}

// checkNodeLocal flags mutable-package-state, wall-clock and global-RNG use
// inside one function reached from a Program's Act or Deliver.
func checkNodeLocal(p *Package, fd *ast.FuncDecl, tname string, mutated map[*types.Var]bool,
	report func(ast.Node, string, ...interface{})) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			pkg, name := pkgFunc(p, x)
			switch {
			case pkg == "math/rand" && !randConstructors[name]:
				report(x, "%s's Act/Deliver reaches package-global math/rand.%s; draw from a per-node "+
					"seeded *rand.Rand built before the run (Program contract)", tname, name)
			case pkg == "time" && timeBanned[name]:
				report(x, "%s's Act/Deliver reaches wall-clock time.%s; Programs see only the round "+
					"number the engine passes them (Program contract)", tname, name)
			}
		case *ast.Ident:
			v, ok := p.Info.Uses[x].(*types.Var)
			if !ok || !mutated[v] {
				return true
			}
			report(x, "%s's Act/Deliver touches mutable package-level state %s; Program state must be "+
				"node-local (shared data is allowed only if nothing writes it after build time)", tname, v.Name())
		}
		return true
	})
}

// checkNoProgramRefs flags expressions whose type is (a pointer to) a
// Program-asserted type, other than the method's own receiver: holding a
// reference to another node's Program is exactly the neighbor-state peeking
// the contract forbids.
func checkNoProgramRefs(p *Package, fd *ast.FuncDecl, progs map[*types.Named]bool, tname string,
	report func(ast.Node, string, ...interface{})) {
	if fd.Body == nil {
		return
	}
	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = p.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if id, ok := e.(*ast.Ident); ok && recvObj != nil && p.Info.Uses[id] == recvObj {
			return true
		}
		tv, ok := p.Info.Types[e]
		if !ok {
			return true
		}
		if named := namedOf(tv.Type); named != nil && progs[named] {
			report(e, "%s's %s references a %s value that is not the method's receiver; a Program owns "+
				"only its node's private state (Program contract)", tname, fd.Name.Name, named.Obj().Name())
			return false
		}
		return true
	})
}

// mutatesViaReceiver reports how the named method of a Program type mutates
// receiver state: "" when it does not, " directly" for mutations in its own
// body, or " via (...)" naming the same-receiver helper chain's first hop.
func mutatesViaReceiver(p *Package, methods map[string]*ast.FuncDecl, root string) string {
	direct := make(map[string]bool, len(methods))
	calls := make(map[string][]string, len(methods))
	names := make([]string, 0, len(methods))
	for name := range methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fd := methods[name]
		recv := recvIdentName(fd)
		if recv == "" || recv == "_" || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if exprRoot(lhs) == recv {
						direct[name] = true
					}
				}
			case *ast.IncDecStmt:
				if exprRoot(x.X) == recv {
					direct[name] = true
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
					if exprRoot(x.Args[0]) == recv {
						direct[name] = true
					}
				}
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
						calls[name] = append(calls[name], sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	if direct[root] {
		return " directly"
	}
	seen := map[string]bool{root: true}
	frontier := append([]string{}, calls[root]...)
	for len(frontier) > 0 {
		name := frontier[0]
		frontier = frontier[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		if direct[name] {
			return fmt.Sprintf(" via %s", name)
		}
		frontier = append(frontier, calls[name]...)
	}
	return ""
}

// programTypes finds the package's Program implementations: the RHS types
// of compile-time assertions `var _ <pkg.>Program = <expr>` whose asserted
// interface is named Program and whose implementation is declared locally.
func programTypes(p *Package) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "_" ||
					vs.Type == nil || len(vs.Values) != 1 {
					continue
				}
				if !isProgramTypeExpr(vs.Type) {
					continue
				}
				tv, ok := p.Info.Types[vs.Values[0]]
				if !ok {
					continue
				}
				if named := namedOf(tv.Type); named != nil && named.Obj().Pkg() == p.Types {
					out[named] = true
				}
			}
		}
	}
	return out
}

// isProgramTypeExpr matches the asserted interface: `Program` or
// `pkg.Program`.
func isProgramTypeExpr(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "Program"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Program"
	}
	return false
}

// namedOf unwraps pointers down to a named type, nil otherwise.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// recvNamed resolves a method's receiver base type.
func recvNamed(p *Package, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := p.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return namedOf(tv.Type)
}

// sortedNamed orders a named-type set by source position.
func sortedNamed(set map[*types.Named]bool) []*types.Named {
	out := make([]*types.Named, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj().Pos() < out[j].Obj().Pos() })
	return out
}

// mutatedPackageVars collects the package-level variables assigned anywhere
// in a function body: those are the package's mutable state. Variables only
// initialized in their declarations are shared read-only data, which the
// Program contract permits.
func mutatedPackageVars(p *Package) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	pkgScope := p.Types.Scope()
	mark := func(e ast.Expr) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		if v, ok := p.Info.Uses[root].(*types.Var); ok && v.Parent() == pkgScope {
			out[v] = true
		}
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						mark(lhs)
					}
				case *ast.IncDecStmt:
					mark(x.X)
				case *ast.CallExpr:
					if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
						mark(x.Args[0])
					}
				}
				return true
			})
		}
	}
	return out
}

// rootIdent returns the leftmost identifier of a selector/index/star chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
