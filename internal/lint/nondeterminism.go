package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Nondeterminism enforces seed-reproducibility in library packages. The
// experiment tables (EXPERIMENTS.md) and every Lemma-level check are only
// trustworthy if the same seed replays the same run, so library code under
// internal/ must not consult ambient entropy or wall-clock time, and must
// not let Go's randomized map iteration order leak into outputs.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "forbids global math/rand functions, wall-clock time, and " +
		"map-iteration order leaking into appended results in internal/ packages",
	Run: runNondeterminism,
}

// randConstructors are the math/rand functions that build an explicit
// generator rather than consulting the package-global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// timeBanned are the time functions that read the wall clock or real
// timers; a round-synchronous simulator has no business calling them.
var timeBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runNondeterminism(p *Package) []Finding {
	if !p.IsLibrary() || p.Info == nil {
		return nil
	}
	var out []Finding
	report := func(n ast.Node, format string, args ...interface{}) {
		out = append(out, Finding{
			Analyzer: "nondeterminism",
			Pos:      p.Fset.Position(n.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(p, call)
			switch {
			case pkg == "math/rand" && !randConstructors[name]:
				report(call, "call to package-global math/rand.%s; plumb a seeded *rand.Rand through the caller instead", name)
			case pkg == "time" && timeBanned[name]:
				report(call, "wall-clock time.%s in simulation library; rounds, not real time, drive this code", name)
			}
			return true
		})
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, mapOrderLeaks(p, fd)...)
			}
		}
	}
	return out
}

// pkgFunc resolves a call of the form pkgname.Func and returns the
// imported package path and function name, or "","" when the call is
// anything else (method call, local function, conversion).
func pkgFunc(p *Package, call *ast.CallExpr) (path, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// mapOrderLeaks flags `for ... range m` over a map whose body appends to a
// slice that the function never hands to a sorting call: the append order
// is then Go's randomized map order, and anything built from the slice
// (reports, failure traces, protocol inputs) differs run to run. The sort
// may happen anywhere in the same function; helpers whose name contains
// "sort" (sortIDs, sortedKeys, sort.Slice, ...) all count.
func mapOrderLeaks(p *Package, fd *ast.FuncDecl) []Finding {
	type leak struct {
		stmt    *ast.RangeStmt
		targets map[string]bool
	}
	var leaks []leak
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		// Appends whose destination is selected by the range variables
		// (out[k] = append(out[k], v)) land each iteration in its own
		// bucket, so iteration order cannot leak; only shared targets do.
		rangeVars := map[string]bool{}
		if n := identName(rs.Key); n != "" && n != "_" {
			rangeVars[n] = true
		}
		if n := identName(rs.Value); n != "" && n != "_" {
			rangeVars[n] = true
		}
		targets := make(map[string]bool)
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				return true
			}
			lhs := as.Lhs[0]
			if exprKey(lhs) == "" || exprKey(lhs) != exprKey(call.Args[0]) {
				return true
			}
			if rangeVars[exprRoot(lhs)] || indexedBy(lhs, rangeVars) {
				return true
			}
			targets[exprKey(lhs)] = true
			return true
		})
		if len(targets) > 0 {
			leaks = append(leaks, leak{stmt: rs, targets: targets})
		}
		return true
	})
	if len(leaks) == 0 {
		return nil
	}
	// A target is safe if the function later feeds it to a sorting call.
	sorted := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := ""
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			callee = fn.Name
		case *ast.SelectorExpr:
			callee = fn.Sel.Name
			if id, ok := fn.X.(*ast.Ident); ok && id.Name == "sort" {
				callee = "sort" + callee
			}
		}
		if !strings.Contains(strings.ToLower(callee), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if k := exprKey(arg); k != "" {
				sorted[k] = true
			}
		}
		return true
	})
	var out []Finding
	for _, l := range leaks {
		ts := make([]string, 0, len(l.targets))
		for t := range l.targets {
			ts = append(ts, t)
		}
		sort.Strings(ts)
		for _, t := range ts {
			if sorted[t] {
				continue
			}
			out = append(out, Finding{
				Analyzer: "nondeterminism",
				Pos:      p.Fset.Position(l.stmt.Pos()),
				Message: fmt.Sprintf("map iteration order leaks into %s, which is never sorted in this function; "+
					"iterate a sorted key slice or sort the result", t),
			})
		}
	}
	return out
}

// identName returns an expression's identifier name, "" otherwise.
func identName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// indexedBy reports whether any index position inside e references one of
// the given identifiers.
func indexedBy(e ast.Expr, names map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		ast.Inspect(idx.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && names[id.Name] {
				found = true
			}
			return true
		})
		return true
	})
	return found
}

// exprKey renders a (possibly selector/index) expression to a stable
// string for matching append targets against sort arguments.
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := exprKey(x.X)
		idx := exprKey(x.Index)
		if base == "" {
			return ""
		}
		return base + "[" + idx + "]"
	default:
		return ""
	}
}
