package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags per-iteration heap allocations inside loops of functions
// annotated //dynlint:hotpath — kernel phases, cached-adjacency and grid
// queries, timeslot scratch paths. These run once per node per round, so a
// single allocating expression in a loop turns into millions of allocations
// at the roadmap's n=10⁶ target. Flagged inside any loop of a hotpath
// function:
//
//   - map, slice and &struct composite literals, make(...) and new(...);
//   - fmt.Sprintf/Sprint/Sprintln/Errorf (allocate their result);
//   - function literals (closures allocate their capture environment);
//   - append to a slice declared inside the loop (grows a fresh backing
//     array every iteration instead of reusing a caller-provided buffer).
//
// Arguments of a panic call are exempt: a crash formats once, not per
// iteration. The fix is the repo's established scratch-buffer idiom —
// append-to-dst APIs and per-worker reusable buffers (see geom.Grid and
// timeslot's setBuf).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags per-iteration heap allocations (composite literals, make, " +
		"Sprintf, closures, append to fresh slices) in loops of //dynlint:hotpath functions",
	Run: runHotAlloc,
}

// sprintLike are the fmt functions that allocate their formatted result.
var sprintLike = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func runHotAlloc(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	seen := make(map[token.Pos]bool) // nested loops scan overlapping bodies; report once
	report := func(n ast.Node, format string, args ...interface{}) {
		if seen[n.Pos()] {
			return
		}
		seen[n.Pos()] = true
		out = append(out, Finding{
			Analyzer: "hotalloc",
			Pos:      p.Fset.Position(n.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, fd := range annotated(p, "hotpath") {
		if fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			checkLoopBody(p, name, body, report)
			return true
		})
	}
	return out
}

// checkLoopBody walks one loop body flagging allocating expressions.
func checkLoopBody(p *Package, fn string, body *ast.BlockStmt,
	report func(ast.Node, string, ...interface{})) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			switch p.Info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				report(x, "map literal allocates every iteration of a loop in //dynlint:hotpath %s; "+
					"hoist it or reuse a cleared scratch map", fn)
			case *types.Slice:
				report(x, "slice literal allocates every iteration of a loop in //dynlint:hotpath %s; "+
					"hoist it or use a caller-provided buffer", fn)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x, "&composite literal escapes to the heap every iteration of a loop in "+
						"//dynlint:hotpath %s; hoist the value or reuse one", fn)
					return false
				}
			}
		case *ast.FuncLit:
			report(x, "function literal allocates its capture environment every iteration of a loop in "+
				"//dynlint:hotpath %s; hoist the closure or pass state explicitly", fn)
			return false
		case *ast.CallExpr:
			return checkLoopCall(p, fn, x, report)
		}
		return true
	})
}

// checkLoopCall flags allocating calls; it returns false to skip the
// argument subtree of panic (crash formatting is not per-iteration cost).
func checkLoopCall(p *Package, fn string, call *ast.CallExpr,
	report func(ast.Node, string, ...interface{})) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "panic":
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				return false
			}
		case "make":
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				report(call, "make allocates every iteration of a loop in //dynlint:hotpath %s; "+
					"hoist it or reuse a scratch buffer", fn)
				return true
			}
		case "new":
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				report(call, "new allocates every iteration of a loop in //dynlint:hotpath %s; "+
					"hoist the value", fn)
				return true
			}
		case "append":
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				checkFreshAppend(p, fn, call, report)
				return true
			}
		}
	}
	if pkg, name := pkgFunc(p, call); pkg == "fmt" && sprintLike[name] {
		report(call, "fmt.%s allocates its result every iteration of a loop in //dynlint:hotpath %s; "+
			"format outside the loop or use an append-style API", name, fn)
	}
	return true
}

// checkFreshAppend flags append whose destination slice is declared inside
// the enclosing loop body: its backing array is reallocated every iteration,
// where the repo idiom is a caller-provided dst (see geom.Grid.appendUnsorted).
func checkFreshAppend(p *Package, fn string, call *ast.CallExpr,
	report func(ast.Node, string, ...interface{})) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	// The destination is loop-local when its declaration sits between the
	// call's enclosing loop start and the call itself; a conservative
	// approximation that needs no scope walk: declared after the function's
	// first loop token yet before this use, and not a parameter.
	if v.Pos() > call.Pos() || v.Pos() == token.NoPos {
		return
	}
	if declaredInLoop(p, v, call) {
		report(call, "append to %s grows a slice declared inside the loop every iteration in "+
			"//dynlint:hotpath %s; take a caller-provided dst or hoist the slice", id.Name, fn)
	}
}

// declaredInLoop reports whether v's declaration lies inside the innermost
// loop body that also contains the call.
func declaredInLoop(p *Package, v *types.Var, call *ast.CallExpr) bool {
	for _, f := range p.Files {
		if f.Pos() > call.Pos() || f.End() < call.End() {
			continue
		}
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if body.Pos() <= call.Pos() && call.End() <= body.End() &&
				body.Pos() <= v.Pos() && v.Pos() <= body.End() {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
