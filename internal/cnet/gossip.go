package cnet

import "dynsens/internal/graph"

// BuildByGossip constructs CNet(G) by the second method of Section 5: the
// nodes first gossip so that every node learns the whole topology — O(n)
// rounds on a known-topology gossip schedule [7] — and then each node
// computes its part of the cluster-net locally with zero further
// communication. The resulting structure is identical to the incremental
// construction (both deterministically insert in BFS order from the root);
// only the round cost differs, which is what the returned OpCost models:
// 2n gossip rounds and no per-node move-in traffic.
//
// Use this when bulk-deploying a field at once; use BuildFromGraph (or
// repeated MoveIn) when nodes trickle in.
func BuildByGossip(g *graph.Graph, root graph.NodeID, policy Policy) (*CNet, OpCost, error) {
	c, _, err := BuildFromGraph(g, root, policy)
	if err != nil {
		return nil, OpCost{}, err
	}
	return c, OpCost{Discovery: 2 * g.NumNodes()}, nil
}
