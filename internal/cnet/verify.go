package cnet

import (
	"fmt"

	"dynsens/internal/graph"
)

// Verify machine-checks every structural invariant of Definition 1 and
// Property 1 of the paper:
//
//  1. CNet(G) is a valid spanning tree of G whose edges are G-edges;
//  2. the root is a cluster head;
//  3. members are leaves whose parent is a head; heads' parents are
//     gateways; gateways' parents are heads (so BT(G) is a subtree);
//  4. depth parity: heads at even depth, gateways and members at odd depth;
//  5. no two heads are adjacent in G (Property 1(2));
//  6. |BT(G)| = 2*#clusters - 1 is NOT required (the paper's bound is
//     |BT| <= 2p-1), but #heads <= any clique-cover size is, since heads
//     are an independent set; Verify checks independence directly and
//     VerifyCliqueBound checks the cover bound;
//  7. every gateway is adjacent in G to the heads of both clusters it
//     joins (its tree parent and every tree child).
func (c *CNet) Verify() error {
	if err := c.tree.Validate(); err != nil {
		return fmt.Errorf("cnet: tree invalid: %w", err)
	}
	if c.tree.Size() != c.g.NumNodes() || c.tree.Size() != len(c.status) {
		return fmt.Errorf("cnet: tree/graph/status sizes differ: %d/%d/%d",
			c.tree.Size(), c.g.NumNodes(), len(c.status))
	}
	for _, id := range c.tree.Nodes() {
		if !c.g.HasNode(id) {
			return fmt.Errorf("cnet: tree node %d missing from G", id)
		}
		if p, ok := c.tree.Parent(id); ok && !c.g.HasEdge(id, p) {
			return fmt.Errorf("cnet: tree edge %d-%d not a G edge", id, p)
		}
	}

	root := c.tree.Root()
	if c.status[root] != Head {
		return fmt.Errorf("cnet: root %d is %v, not a head", root, c.status[root])
	}

	depth := c.tree.DepthMap()
	for _, id := range c.tree.Nodes() {
		s := c.status[id]
		d := depth[id]
		switch s {
		case Head:
			if d%2 != 0 {
				return fmt.Errorf("cnet: head %d at odd depth %d", id, d)
			}
			if p, ok := c.tree.Parent(id); ok && c.status[p] != Gateway {
				return fmt.Errorf("cnet: head %d has non-gateway parent %d (%v)", id, p, c.status[p])
			}
		case Gateway:
			if d%2 != 1 {
				return fmt.Errorf("cnet: gateway %d at even depth %d", id, d)
			}
			p, ok := c.tree.Parent(id)
			if !ok || c.status[p] != Head {
				return fmt.Errorf("cnet: gateway %d parent is not a head", id)
			}
			for _, ch := range c.tree.Children(id) {
				if c.status[ch] != Head {
					return fmt.Errorf("cnet: gateway %d has non-head child %d (%v)", id, ch, c.status[ch])
				}
				if !c.g.HasEdge(id, ch) {
					return fmt.Errorf("cnet: gateway %d not adjacent to child head %d", id, ch)
				}
			}
		case Member:
			if d%2 != 1 {
				return fmt.Errorf("cnet: member %d at even depth %d", id, d)
			}
			if !c.tree.IsLeaf(id) {
				return fmt.Errorf("cnet: member %d is not a leaf", id)
			}
			p, ok := c.tree.Parent(id)
			if !ok || c.status[p] != Head {
				return fmt.Errorf("cnet: member %d parent is not a head", id)
			}
		default:
			return fmt.Errorf("cnet: node %d has unknown status %v", id, s)
		}
	}

	// Property 1(2): heads form an independent set of G.
	heads := c.Heads()
	if !graph.IsIndependentSet(c.g, heads) {
		return fmt.Errorf("cnet: cluster heads are not independent in G")
	}
	return nil
}

// VerifyCliqueBound checks the consequence of Property 1(1): the number of
// clusters (= heads, an independent set) can never exceed the size of any
// clique cover of G; we compare against a greedy cover, which upper-bounds
// nothing but is itself >= p, so #heads <= greedy must hold.
func (c *CNet) VerifyCliqueBound() error {
	heads := len(c.Heads())
	cover := len(graph.CliqueCoverGreedy(c.g))
	if heads > cover {
		return fmt.Errorf("cnet: %d clusters exceed greedy clique cover of %d", heads, cover)
	}
	return nil
}

// Stats summarizes the structure for the paper's Figures 10 and 11.
type Stats struct {
	Nodes          int
	Clusters       int // number of cluster heads
	Gateways       int
	Members        int
	Height         int // height of CNet(G)
	BackboneSize   int // |BT(G)|, Figure 10 "size of backbone"
	BackboneHeight int // height of BT(G), Figure 10 "height of backbone"
	DegreeG        int // D: max degree of G (Figure 11)
	DegreeBT       int // d: max degree of G(V_BT) (Figure 11)
}

// ComputeStats gathers structural statistics.
func (c *CNet) ComputeStats() Stats {
	bt := c.Backbone()
	return Stats{
		Nodes:          c.Size(),
		Clusters:       len(c.Heads()),
		Gateways:       len(c.Gateways()),
		Members:        len(c.Members()),
		Height:         c.tree.Height(),
		BackboneSize:   bt.Size(),
		BackboneHeight: bt.Height(),
		DegreeG:        c.g.MaxDegree(),
		DegreeBT:       c.InducedBackboneGraph().MaxDegree(),
	}
}
