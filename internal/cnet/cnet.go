// Package cnet implements the paper's reconfigurable cluster-based network
// structure (Section 2 and Section 5): the cluster-net CNet(G) — a spanning
// tree in which every node is a cluster-head, gateway, or pure member — its
// backbone tree BT(G) of heads and gateways, and the two topology-management
// operations node-move-in and node-move-out that keep the structure correct
// as nodes join and leave.
//
// The structure follows Definition 1 exactly: a joining node attaches to a
// head (becoming a member), else to a gateway (becoming a head), else to a
// member (which is promoted to gateway, the joiner becoming a head). The
// resulting invariants (Property 1: head independence, backbone size, depth
// parity) are machine-checked by Verify.
package cnet

import (
	"fmt"

	"dynsens/internal/graph"
)

// Status is a node's role in CNet(G).
type Status int

const (
	// Head is a cluster head. Heads sit at even depths and form an
	// independent set of G.
	Head Status = iota
	// Gateway relays between two adjacent clusters; gateways sit at odd
	// depths. A gateway's parent and children are heads.
	Gateway
	// Member is a pure cluster member; members are always leaves whose
	// parent is their cluster head.
	Member
)

// String names the status as in the paper.
func (s Status) String() string {
	switch s {
	case Head:
		return "cluster-head"
	case Gateway:
		return "gateway"
	case Member:
		return "pure-member"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Policy selects the parent among eligible candidates during node-move-in
// ("based on the criteria an application needs, such as on energy level").
// Candidates are non-empty and sorted ascending.
type Policy func(candidates []graph.NodeID) graph.NodeID

// LowestID is the default deterministic policy.
func LowestID(candidates []graph.NodeID) graph.NodeID { return candidates[0] }

// MaxValue returns a policy preferring the candidate with the largest value
// (e.g. remaining energy), ties broken by lowest ID. Missing entries count
// as zero.
func MaxValue(value map[graph.NodeID]float64) Policy {
	return func(candidates []graph.NodeID) graph.NodeID {
		best := candidates[0]
		for _, c := range candidates[1:] {
			if value[c] > value[best] {
				best = c
			}
		}
		return best
	}
}

// OpCost records the round cost of one topology operation, split per the
// paper's accounting (Theorems 2 and 3). The structural layer fills the
// discovery and height parts; the time-slot layer adds its 2d+D part.
type OpCost struct {
	// Discovery is the O(d_new) expected part of node-move-in (knowledge
	// I), or the Euler-tour part of node-move-out.
	Discovery int
	// HeightUpdate is the 2h part: propagating heights and the largest
	// updated b-time-slot along the path to the root.
	HeightUpdate int
	// SlotUpdate is the 2d+D part added by the time-slot layer.
	SlotUpdate int
	// Moves counts node-move-in sub-operations (1 for a plain move-in,
	// |T| for a move-out re-inserting subtree T).
	Moves int
}

// Total returns the summed rounds.
func (c OpCost) Total() int { return c.Discovery + c.HeightUpdate + c.SlotUpdate + c.Moves }

// Add accumulates another cost.
func (c *OpCost) Add(o OpCost) {
	c.Discovery += o.Discovery
	c.HeightUpdate += o.HeightUpdate
	c.SlotUpdate += o.SlotUpdate
	c.Moves += o.Moves
}

// CNet is the cluster-based structure over the evolving network graph G.
type CNet struct {
	g         *graph.Graph
	tree      *graph.Tree
	status    map[graph.NodeID]Status
	policy    Policy
	instr     *topoCounters // nil unless Instrument was called
	deltaHook func(Delta)   // nil unless SetDeltaHook was called
}

// New creates a CNet containing only the root (a cluster head, Definition
// 1(1)). The root models the sink.
func New(root graph.NodeID, policy Policy) *CNet {
	if policy == nil {
		policy = LowestID
	}
	g := graph.New()
	g.AddNode(root)
	return &CNet{
		g:      g,
		tree:   graph.NewTree(root),
		status: map[graph.NodeID]Status{root: Head},
		policy: policy,
	}
}

// Graph returns the current network graph G (shared, do not mutate).
func (c *CNet) Graph() *graph.Graph { return c.g }

// Tree returns the cluster-net spanning tree (shared, do not mutate).
func (c *CNet) Tree() *graph.Tree { return c.tree }

// Root returns the root (sink).
func (c *CNet) Root() graph.NodeID { return c.tree.Root() }

// Status returns the role of id.
func (c *CNet) Status(id graph.NodeID) (Status, bool) {
	s, ok := c.status[id]
	return s, ok
}

// Contains reports whether id is in the network.
func (c *CNet) Contains(id graph.NodeID) bool {
	_, ok := c.status[id]
	return ok
}

// Size returns the number of nodes.
func (c *CNet) Size() int { return len(c.status) }

// Heads returns all cluster heads, ascending.
func (c *CNet) Heads() []graph.NodeID { return c.withStatus(Head) }

// Gateways returns all gateways, ascending.
func (c *CNet) Gateways() []graph.NodeID { return c.withStatus(Gateway) }

// Members returns all pure members, ascending.
func (c *CNet) Members() []graph.NodeID { return c.withStatus(Member) }

func (c *CNet) withStatus(want Status) []graph.NodeID {
	var out []graph.NodeID
	for _, id := range c.tree.Nodes() {
		if c.status[id] == want {
			out = append(out, id)
		}
	}
	return out
}

// MoveIn performs node-move-in (Section 5.1): node id joins with the given
// neighbor set U (the existing nodes within transmission range). It applies
// Definition 1's rules, updates G and CNet(G), and returns the parent chosen
// and the structural round cost (Theorem 2: O(d_new) expected for knowledge
// I, plus 2h for propagating heights to the root).
func (c *CNet) MoveIn(id graph.NodeID, neighbors []graph.NodeID) (graph.NodeID, OpCost, error) {
	if c.Contains(id) {
		return 0, OpCost{}, fmt.Errorf("cnet: node %d already present", id)
	}
	if len(neighbors) == 0 {
		return 0, OpCost{}, fmt.Errorf("cnet: node %d has no neighbors in the network", id)
	}
	seen := make(map[graph.NodeID]struct{}, len(neighbors))
	var heads, gateways, members []graph.NodeID
	for _, n := range neighbors {
		if n == id {
			return 0, OpCost{}, fmt.Errorf("cnet: node %d lists itself as neighbor", id)
		}
		if _, dup := seen[n]; dup {
			return 0, OpCost{}, fmt.Errorf("cnet: duplicate neighbor %d", n)
		}
		seen[n] = struct{}{}
		s, ok := c.status[n]
		if !ok {
			return 0, OpCost{}, fmt.Errorf("cnet: neighbor %d not in network", n)
		}
		switch s {
		case Head:
			heads = append(heads, n)
		case Gateway:
			gateways = append(gateways, n)
		case Member:
			members = append(members, n)
		}
	}

	var parent graph.NodeID
	switch {
	case len(heads) > 0:
		// Rule (ii) case 1: attach to a head as a pure member.
		parent = c.policy(heads)
		c.status[id] = Member
	case len(gateways) > 0:
		// Case 2: attach to a gateway as the head of a new cluster.
		parent = c.policy(gateways)
		c.status[id] = Head
	default:
		// Case 3: attach to a member, which is promoted to gateway; the
		// joiner heads a new cluster.
		parent = c.policy(members)
		c.status[parent] = Gateway
		c.status[id] = Head
	}

	c.g.AddNode(id)
	for n := range seen {
		if err := c.g.AddEdge(id, n); err != nil {
			// Unreachable: id != n checked above.
			return 0, OpCost{}, err
		}
	}
	if err := c.tree.AddChild(id, parent); err != nil {
		return 0, OpCost{}, err
	}

	cost := OpCost{
		Discovery:    len(neighbors),
		HeightUpdate: 2 * c.tree.Height(),
		Moves:        1,
	}
	c.countMoveIn(id)
	return parent, cost, nil
}

// BuildFromGraph constructs a CNet for a connected graph g by inserting
// nodes in BFS order from root via repeated MoveIn. This is the
// "add nodes one by one" construction of Section 5; the alternative
// gossip-based construction yields the same structure class. The total
// structural cost is returned.
func BuildFromGraph(g *graph.Graph, root graph.NodeID, policy Policy) (*CNet, OpCost, error) {
	return BuildFromGraphObserved(g, root, policy, nil)
}

// BuildFromGraphObserved is BuildFromGraph with a delta hook installed
// before the first insertion, so the construction-time move-ins stream
// through it too (the flight recorder uses this to capture the full
// topology history). The hook stays installed on the returned CNet.
func BuildFromGraphObserved(g *graph.Graph, root graph.NodeID, policy Policy, hook func(Delta)) (*CNet, OpCost, error) {
	if !g.HasNode(root) {
		return nil, OpCost{}, fmt.Errorf("cnet: root %d not in graph", root)
	}
	if !g.Connected() {
		return nil, OpCost{}, fmt.Errorf("cnet: graph is not connected")
	}
	c := New(root, policy)
	c.deltaHook = hook
	var total OpCost
	order := g.BFS(root).Order
	for _, id := range order[1:] {
		var nbrs []graph.NodeID
		for _, n := range g.Neighbors(id) {
			if c.Contains(n) {
				nbrs = append(nbrs, n)
			}
		}
		if _, cost, err := c.MoveIn(id, nbrs); err != nil {
			return nil, OpCost{}, fmt.Errorf("cnet: inserting %d: %w", id, err)
		} else {
			total.Add(cost)
		}
	}
	return c, total, nil
}

// Backbone returns BT(G): the subtree of CNet(G) formed by heads and
// gateways, rooted at the same root (Definition 2).
func (c *CNet) Backbone() *graph.Tree {
	bt := graph.NewTree(c.tree.Root())
	// Preorder so parents are added before children.
	for _, id := range c.tree.Subtree(c.tree.Root()) {
		if id == c.tree.Root() {
			continue
		}
		if c.status[id] == Member {
			continue
		}
		p, _ := c.tree.Parent(id)
		// Parent of a backbone node is always a backbone node (heads hang
		// off gateways and vice versa), so this cannot fail.
		if err := bt.AddChild(id, p); err != nil {
			//lint:ignore dynlint/panics unreachable while Verify holds: preorder guarantees the backbone parent was added first
			panic(fmt.Sprintf("cnet: backbone parent of %d missing: %v", id, err))
		}
	}
	return bt
}

// BackboneNodes returns the IDs of heads and gateways, ascending.
func (c *CNet) BackboneNodes() []graph.NodeID {
	var out []graph.NodeID
	for _, id := range c.tree.Nodes() {
		if c.status[id] != Member {
			out = append(out, id)
		}
	}
	return out
}

// InducedBackboneGraph returns G(V_BT), the subgraph of G induced by the
// backbone node set; its max degree is the paper's d.
func (c *CNet) InducedBackboneGraph() *graph.Graph {
	return c.g.InducedSubgraph(c.BackboneNodes())
}

// Clone returns a deep copy (sharing the policy function). Instrumentation
// and delta hooks are not carried over: a clone counts nothing until its
// own Instrument/SetDeltaHook call.
func (c *CNet) Clone() *CNet {
	st := make(map[graph.NodeID]Status, len(c.status))
	for k, v := range c.status {
		st[k] = v
	}
	return &CNet{g: c.g.Clone(), tree: c.tree.Clone(), status: st, policy: c.policy}
}
