package cnet

import (
	"testing"

	"dynsens/internal/graph"
	"dynsens/internal/obs"
	"dynsens/internal/workload"
)

// counterVal reads a plain (unlabeled) counter from a snapshot, failing the
// test when the series was never registered.
func counterVal(t *testing.T, snap obs.Snapshot, name string) int64 {
	t.Helper()
	v, ok := snap.CounterValue(name)
	if !ok {
		t.Fatalf("counter %s not in snapshot", name)
	}
	return v
}

func TestInstrumentCountsTopologyEvents(t *testing.T) {
	reg := obs.NewRegistry()
	c := buildPaperNet(t, 7, 40)
	c.Instrument(reg)

	// Joins: two fresh nodes hanging off existing ones.
	next := graph.NodeID(1000)
	for i := 0; i < 2; i++ {
		if _, _, err := c.MoveIn(next, []graph.NodeID{c.Root()}); err != nil {
			t.Fatal(err)
		}
		next++
	}

	// Leaves: remove non-root nodes until two move-outs succeed, summing
	// the re-insertions their records report.
	moveOuts, reinserts, rootRebuilds := 0, 0, 0
	for _, id := range c.Tree().Nodes() {
		if moveOuts == 2 {
			break
		}
		if id == c.Root() {
			continue
		}
		rec, _, err := c.MoveOut(id)
		if err != nil {
			continue // disconnecting removal; skip
		}
		moveOuts++
		reinserts += len(rec.Reinserted)
		if rec.RootChanged {
			rootRebuilds++
		}
	}
	if moveOuts != 2 {
		t.Fatalf("only %d move-outs succeeded", moveOuts)
	}

	// A crash repair.
	var crashTarget graph.NodeID
	found := false
	for _, id := range c.Tree().Nodes() {
		if id != c.Root() && len(c.Tree().Children(id)) == 0 {
			crashTarget = id
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no leaf to crash")
	}
	crec, _, err := c.RemoveCrashed([]graph.NodeID{crashTarget})
	if err != nil {
		t.Fatal(err)
	}
	reinsertsCrash := len(crec.Reinserted)
	dropped := len(crec.Dropped)

	if err := c.Verify(); err != nil {
		t.Fatalf("structure invalid after instrumented churn: %v", err)
	}

	snap := reg.Snapshot()
	// Every reinsertion and the two explicit joins flow through MoveIn, so
	// move_ins >= their sum; the exact total also includes nothing else
	// because buildPaperNet ran before Instrument.
	wantMoveIns := int64(2 + reinserts + reinsertsCrash)
	if got := counterVal(t, snap, MetricMoveIns); got != wantMoveIns {
		t.Errorf("%s = %d, want %d", MetricMoveIns, got, wantMoveIns)
	}
	if got := counterVal(t, snap, MetricMoveOuts); got != int64(moveOuts) {
		t.Errorf("%s = %d, want %d", MetricMoveOuts, got, moveOuts)
	}
	if got := counterVal(t, snap, MetricCrashRepairs); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCrashRepairs, got)
	}
	if got := counterVal(t, snap, MetricReinsertions); got != int64(reinserts+reinsertsCrash) {
		t.Errorf("%s = %d, want %d", MetricReinsertions, got, reinserts+reinsertsCrash)
	}
	if got := counterVal(t, snap, MetricDrops); got != int64(dropped) {
		t.Errorf("%s = %d, want %d", MetricDrops, got, dropped)
	}
	if got := counterVal(t, snap, MetricRootRebuilds); got != int64(rootRebuilds) {
		t.Errorf("%s = %d, want %d", MetricRootRebuilds, got, rootRebuilds)
	}
}

// completeNet builds a CNet over a complete graph on n nodes, where every
// removal keeps the residual connected (so root departures always succeed).
func completeNet(t *testing.T, n int) *CNet {
	t.Helper()
	c := New(0, nil)
	for id := graph.NodeID(1); int(id) < n; id++ {
		nbrs := make([]graph.NodeID, id)
		for j := range nbrs {
			nbrs[j] = graph.NodeID(j)
		}
		if _, _, err := c.MoveIn(id, nbrs); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestInstrumentRootRebuilds(t *testing.T) {
	reg := obs.NewRegistry()
	c := completeNet(t, 6)
	c.Instrument(reg)

	// Graceful root departure: rebuild path, move-ins must still count
	// through the rebuilt structure.
	rec, _, err := c.MoveOut(c.Root())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.RootChanged {
		t.Fatal("root move-out did not change the root")
	}
	reinserts := len(rec.Reinserted)

	// Sink crash: the crash-rebuild path.
	crec, _, err := c.RemoveCrashed([]graph.NodeID{c.Root()})
	if err != nil {
		t.Fatal(err)
	}
	if !crec.RootReplaced {
		t.Fatal("sink crash did not replace the root")
	}
	reinserts += len(crec.Reinserted)

	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := counterVal(t, snap, MetricRootRebuilds); got != 2 {
		t.Errorf("%s = %d, want 2", MetricRootRebuilds, got)
	}
	if got := counterVal(t, snap, MetricMoveIns); got != int64(reinserts) {
		t.Errorf("%s = %d, want %d (rebuild move-ins must count)", MetricMoveIns, got, reinserts)
	}
	if got := counterVal(t, snap, MetricReinsertions); got != int64(reinserts) {
		t.Errorf("%s = %d, want %d", MetricReinsertions, got, reinserts)
	}
}

func TestCloneDropsInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(0, nil)
	c.Instrument(reg)
	if _, _, err := c.MoveIn(1, []graph.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	clone := c.Clone()
	if _, _, err := clone.MoveIn(2, []graph.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	if err := clone.Verify(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := counterVal(t, snap, MetricMoveIns); got != 1 {
		t.Errorf("clone mutations leaked into registry: move_ins = %d, want 1", got)
	}
}

// TestDeltaHookStreamsChurn drives every mutation path with a delta hook
// installed and checks the streamed deltas against the records, with the
// structure re-verified after the churn.
func TestDeltaHookStreamsChurn(t *testing.T) {
	c := completeNet(t, 6)
	var deltas []Delta
	c.SetDeltaHook(func(d Delta) { deltas = append(deltas, d) })

	if _, _, err := c.MoveIn(100, []graph.NodeID{c.Root()}); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Kind != DeltaMoveIn || deltas[0].Node != 100 {
		t.Fatalf("after move-in, deltas = %+v", deltas)
	}

	rec, _, err := c.MoveOut(100)
	if err != nil {
		t.Fatal(err)
	}
	last := deltas[len(deltas)-1]
	if last.Kind != DeltaMoveOut || last.Node != 100 || len(last.Reinserted) != len(rec.Reinserted) {
		t.Fatalf("after move-out, last delta = %+v (record %+v)", last, rec)
	}

	// Root move-out: the rebuilt structure must keep streaming (the hook is
	// copied onto the rebuild), and every rebuild insertion is a move-in.
	before := len(deltas)
	orec, _, err := c.MoveOut(c.Root())
	if err != nil {
		t.Fatal(err)
	}
	if !orec.RootChanged {
		t.Fatal("root move-out did not change the root")
	}
	moveIns := 0
	var sawOut bool
	for _, d := range deltas[before:] {
		switch d.Kind {
		case DeltaMoveIn:
			moveIns++
		case DeltaMoveOut:
			sawOut = true
			if !d.RootChanged {
				t.Fatal("move-out delta does not flag the root change")
			}
		}
	}
	if !sawOut || moveIns != len(orec.Reinserted) {
		t.Fatalf("root move-out streamed %d move-ins (want %d), move-out seen: %v",
			moveIns, len(orec.Reinserted), sawOut)
	}

	// Crash repair: one summary delta carrying reinserted/dropped.
	before = len(deltas)
	crec, _, err := c.RemoveCrashed([]graph.NodeID{c.Root()})
	if err != nil {
		t.Fatal(err)
	}
	var crash *Delta
	for i := range deltas[before:] {
		if deltas[before+i].Kind == DeltaCrash {
			crash = &deltas[before+i]
		}
	}
	if crash == nil {
		t.Fatalf("no crash delta streamed (deltas %+v)", deltas[before:])
	}
	if len(crash.Reinserted) != len(crec.Reinserted) || len(crash.Dropped) != len(crec.Dropped) ||
		crash.RootChanged != crec.RootReplaced {
		t.Fatalf("crash delta %+v does not match record %+v", crash, crec)
	}

	if err := c.Verify(); err != nil {
		t.Fatalf("structure invalid after hooked churn: %v", err)
	}

	// Clones do not inherit the hook.
	n := len(deltas)
	clone := c.Clone()
	if _, _, err := clone.MoveIn(200, []graph.NodeID{clone.Root()}); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != n {
		t.Fatalf("clone mutation leaked into the hook stream (%d -> %d)", n, len(deltas))
	}
}

// TestBuildFromGraphObservedStreamsConstruction checks that the observed
// build fires one move-in per non-root node and leaves the hook installed.
func TestBuildFromGraphObservedStreamsConstruction(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(3, 8, 30))
	if err != nil {
		t.Fatal(err)
	}
	var deltas []Delta
	c, _, err := BuildFromGraphObserved(d.Graph(), 0, nil, func(d Delta) { deltas = append(deltas, d) })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != c.Size()-1 {
		t.Fatalf("construction streamed %d deltas, want %d", len(deltas), c.Size()-1)
	}
	seen := map[graph.NodeID]bool{}
	for _, dl := range deltas {
		if dl.Kind != DeltaMoveIn {
			t.Fatalf("construction delta of kind %v", dl.Kind)
		}
		seen[dl.Node] = true
	}
	if len(seen) != len(deltas) {
		t.Fatal("duplicate move-in deltas")
	}
	n := len(deltas)
	if _, _, err := c.MoveIn(500, []graph.NodeID{c.Root()}); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != n+1 {
		t.Fatal("hook not retained after observed build")
	}
}
