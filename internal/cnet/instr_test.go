package cnet

import (
	"testing"

	"dynsens/internal/graph"
	"dynsens/internal/obs"
)

// counterVal reads a plain (unlabeled) counter from a snapshot, failing the
// test when the series was never registered.
func counterVal(t *testing.T, snap obs.Snapshot, name string) int64 {
	t.Helper()
	v, ok := snap.CounterValue(name)
	if !ok {
		t.Fatalf("counter %s not in snapshot", name)
	}
	return v
}

func TestInstrumentCountsTopologyEvents(t *testing.T) {
	reg := obs.NewRegistry()
	c := buildPaperNet(t, 7, 40)
	c.Instrument(reg)

	// Joins: two fresh nodes hanging off existing ones.
	next := graph.NodeID(1000)
	for i := 0; i < 2; i++ {
		if _, _, err := c.MoveIn(next, []graph.NodeID{c.Root()}); err != nil {
			t.Fatal(err)
		}
		next++
	}

	// Leaves: remove non-root nodes until two move-outs succeed, summing
	// the re-insertions their records report.
	moveOuts, reinserts, rootRebuilds := 0, 0, 0
	for _, id := range c.Tree().Nodes() {
		if moveOuts == 2 {
			break
		}
		if id == c.Root() {
			continue
		}
		rec, _, err := c.MoveOut(id)
		if err != nil {
			continue // disconnecting removal; skip
		}
		moveOuts++
		reinserts += len(rec.Reinserted)
		if rec.RootChanged {
			rootRebuilds++
		}
	}
	if moveOuts != 2 {
		t.Fatalf("only %d move-outs succeeded", moveOuts)
	}

	// A crash repair.
	var crashTarget graph.NodeID
	found := false
	for _, id := range c.Tree().Nodes() {
		if id != c.Root() && len(c.Tree().Children(id)) == 0 {
			crashTarget = id
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no leaf to crash")
	}
	crec, _, err := c.RemoveCrashed([]graph.NodeID{crashTarget})
	if err != nil {
		t.Fatal(err)
	}
	reinsertsCrash := len(crec.Reinserted)
	dropped := len(crec.Dropped)

	if err := c.Verify(); err != nil {
		t.Fatalf("structure invalid after instrumented churn: %v", err)
	}

	snap := reg.Snapshot()
	// Every reinsertion and the two explicit joins flow through MoveIn, so
	// move_ins >= their sum; the exact total also includes nothing else
	// because buildPaperNet ran before Instrument.
	wantMoveIns := int64(2 + reinserts + reinsertsCrash)
	if got := counterVal(t, snap, MetricMoveIns); got != wantMoveIns {
		t.Errorf("%s = %d, want %d", MetricMoveIns, got, wantMoveIns)
	}
	if got := counterVal(t, snap, MetricMoveOuts); got != int64(moveOuts) {
		t.Errorf("%s = %d, want %d", MetricMoveOuts, got, moveOuts)
	}
	if got := counterVal(t, snap, MetricCrashRepairs); got != 1 {
		t.Errorf("%s = %d, want 1", MetricCrashRepairs, got)
	}
	if got := counterVal(t, snap, MetricReinsertions); got != int64(reinserts+reinsertsCrash) {
		t.Errorf("%s = %d, want %d", MetricReinsertions, got, reinserts+reinsertsCrash)
	}
	if got := counterVal(t, snap, MetricDrops); got != int64(dropped) {
		t.Errorf("%s = %d, want %d", MetricDrops, got, dropped)
	}
	if got := counterVal(t, snap, MetricRootRebuilds); got != int64(rootRebuilds) {
		t.Errorf("%s = %d, want %d", MetricRootRebuilds, got, rootRebuilds)
	}
}

// completeNet builds a CNet over a complete graph on n nodes, where every
// removal keeps the residual connected (so root departures always succeed).
func completeNet(t *testing.T, n int) *CNet {
	t.Helper()
	c := New(0, nil)
	for id := graph.NodeID(1); int(id) < n; id++ {
		nbrs := make([]graph.NodeID, id)
		for j := range nbrs {
			nbrs[j] = graph.NodeID(j)
		}
		if _, _, err := c.MoveIn(id, nbrs); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestInstrumentRootRebuilds(t *testing.T) {
	reg := obs.NewRegistry()
	c := completeNet(t, 6)
	c.Instrument(reg)

	// Graceful root departure: rebuild path, move-ins must still count
	// through the rebuilt structure.
	rec, _, err := c.MoveOut(c.Root())
	if err != nil {
		t.Fatal(err)
	}
	if !rec.RootChanged {
		t.Fatal("root move-out did not change the root")
	}
	reinserts := len(rec.Reinserted)

	// Sink crash: the crash-rebuild path.
	crec, _, err := c.RemoveCrashed([]graph.NodeID{c.Root()})
	if err != nil {
		t.Fatal(err)
	}
	if !crec.RootReplaced {
		t.Fatal("sink crash did not replace the root")
	}
	reinserts += len(crec.Reinserted)

	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := counterVal(t, snap, MetricRootRebuilds); got != 2 {
		t.Errorf("%s = %d, want 2", MetricRootRebuilds, got)
	}
	if got := counterVal(t, snap, MetricMoveIns); got != int64(reinserts) {
		t.Errorf("%s = %d, want %d (rebuild move-ins must count)", MetricMoveIns, got, reinserts)
	}
	if got := counterVal(t, snap, MetricReinsertions); got != int64(reinserts) {
		t.Errorf("%s = %d, want %d", MetricReinsertions, got, reinserts)
	}
}

func TestCloneDropsInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(0, nil)
	c.Instrument(reg)
	if _, _, err := c.MoveIn(1, []graph.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	clone := c.Clone()
	if _, _, err := clone.MoveIn(2, []graph.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	if err := clone.Verify(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := counterVal(t, snap, MetricMoveIns); got != 1 {
		t.Errorf("clone mutations leaked into registry: move_ins = %d, want 1", got)
	}
}
