package cnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func TestRemoveCrashedLeaf(t *testing.T) {
	c := buildPaperNet(t, 51, 40)
	leaf := c.Tree().Leaves()[0]
	if leaf == c.Root() {
		t.Skip("degenerate")
	}
	rec, cost, err := c.RemoveCrashed([]graph.NodeID{leaf})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Dead) != 1 || rec.Dead[0] != leaf {
		t.Fatalf("rec = %+v", rec)
	}
	if len(rec.Reinserted) != 0 && len(rec.Dropped) != 0 {
		t.Fatalf("leaf crash should strand nobody: %+v", rec)
	}
	if c.Contains(leaf) {
		t.Fatal("dead node still present")
	}
	if cost.Total() <= 0 {
		t.Fatalf("cost = %+v", cost)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveCrashedInternal(t *testing.T) {
	c := buildPaperNet(t, 52, 80)
	// Crash an internal node with a subtree.
	var victim graph.NodeID
	found := false
	for _, id := range c.Tree().Nodes() {
		if id != c.Root() && len(c.Tree().Subtree(id)) >= 3 {
			victim, found = id, true
			break
		}
	}
	if !found {
		t.Skip("no internal node with subtree")
	}
	before := c.Size()
	sub := len(c.Tree().Subtree(victim))
	rec, _, err := c.RemoveCrashed([]graph.NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != before-1-len(rec.Dropped) {
		t.Fatalf("size %d, want %d minus %d dropped", c.Size(), before-1, len(rec.Dropped))
	}
	if len(rec.Reinserted)+len(rec.Dropped) != sub-1 {
		t.Fatalf("orphans %d+%d, want %d", len(rec.Reinserted), len(rec.Dropped), sub-1)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveCrashedRoot(t *testing.T) {
	c := buildPaperNet(t, 53, 50)
	oldRoot := c.Root()
	rec, _, err := c.RemoveCrashed([]graph.NodeID{oldRoot})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.RootReplaced || c.Root() == oldRoot || c.Contains(oldRoot) {
		t.Fatalf("root not replaced: %+v", rec)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveCrashedMultiple(t *testing.T) {
	c := buildPaperNet(t, 54, 100)
	rng := rand.New(rand.NewSource(54))
	var dead []graph.NodeID
	nodes := c.Tree().Nodes()
	for len(dead) < 8 {
		cand := nodes[rng.Intn(len(nodes))]
		if cand == c.Root() {
			continue
		}
		dup := false
		for _, d := range dead {
			if d == cand {
				dup = true
			}
		}
		if !dup {
			dead = append(dead, cand)
		}
	}
	rec, _, err := c.RemoveCrashed(dead)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dead {
		if c.Contains(d) {
			t.Fatalf("dead node %d survived", d)
		}
	}
	if len(rec.Dead) != 8 {
		t.Fatalf("dead = %v", rec.Dead)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// The survivors form a connected structure reaching the root.
	if !c.Graph().Connected() {
		t.Fatal("surviving membership graph disconnected")
	}
}

func TestRemoveCrashedErrors(t *testing.T) {
	c := New(0, nil)
	if _, _, err := c.RemoveCrashed(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, _, err := c.RemoveCrashed([]graph.NodeID{99}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, _, err := c.RemoveCrashed([]graph.NodeID{0}); err == nil {
		t.Fatal("total wipeout accepted")
	}
}

// Property: random crash sets always leave a valid structure whose
// membership graph is connected, with dead nodes gone.
func TestRemoveCrashedProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 10
		k := int(kRaw%5) + 1
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
		if err != nil {
			return false
		}
		c, _, err := BuildFromGraph(d.Graph(), 0, nil)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		deadSet := make(map[graph.NodeID]bool)
		nodes := c.Tree().Nodes()
		for len(deadSet) < k {
			deadSet[nodes[rng.Intn(len(nodes))]] = true
		}
		var dead []graph.NodeID
		for id := range deadSet {
			dead = append(dead, id)
		}
		rec, _, err := c.RemoveCrashed(dead)
		if err != nil {
			return false
		}
		_ = rec
		return c.Verify() == nil && c.Graph().Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
