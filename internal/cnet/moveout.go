package cnet

import (
	"fmt"
	"sort"

	"dynsens/internal/graph"
)

// MoveOutRecord describes what a node-move-out did, so higher layers (time
// slots, multicast lists) can update their knowledge.
type MoveOutRecord struct {
	// Removed is the departed node (the paper's lev).
	Removed graph.NodeID
	// Neighbors are the g-neighbors lev had at departure.
	Neighbors []graph.NodeID
	// Reinserted lists the nodes of the detached subtree T \ {lev} in the
	// order they were moved back into H via node-move-in.
	Reinserted []graph.NodeID
	// RootChanged is true when lev was the root; NewRoot is then the
	// replacement sink.
	RootChanged bool
	NewRoot     graph.NodeID
}

// MoveOut performs node-move-out (Section 5.2): node lev leaves the network.
// The subtree T rooted at lev is detached and its nodes are re-inserted into
// the remaining structure H one at a time via node-move-in, each at a moment
// when it has a neighbor already in the network (the paper finds such an
// order with an Eulerian tour on T). The residual graph must be connected,
// matching the paper's assumption.
//
// When lev is the root — the case the paper defers to its full version — the
// policy picks a replacement root among lev's neighbors and the whole
// structure is rebuilt from it (see DESIGN.md).
//
// The returned cost follows Theorem 3: the Euler-tour/bookkeeping part plus
// one node-move-in cost per re-inserted node.
func (c *CNet) MoveOut(lev graph.NodeID) (MoveOutRecord, OpCost, error) {
	if !c.Contains(lev) {
		return MoveOutRecord{}, OpCost{}, fmt.Errorf("cnet: node %d not present", lev)
	}
	if c.Size() == 1 {
		return MoveOutRecord{}, OpCost{}, fmt.Errorf("cnet: refusing to remove the last node %d", lev)
	}
	residual := c.g.Clone()
	residual.RemoveNode(lev)
	if !residual.Connected() {
		return MoveOutRecord{}, OpCost{}, fmt.Errorf("cnet: removing %d disconnects the network", lev)
	}

	// Copy the adjacency out of the graph's shared neighbor cache: the
	// record outlives the removal below.
	rec := MoveOutRecord{Removed: lev, Neighbors: append([]graph.NodeID(nil), c.g.Neighbors(lev)...)}
	var cost OpCost

	if lev == c.tree.Root() {
		rec, cost, err := c.moveOutRoot(lev, rec)
		if err == nil {
			c.countMoveOut(rec)
		}
		return rec, cost, err
	}

	// Detach subtree T and forget its nodes' statuses; keep their edges in
	// G (they have not physically moved).
	subtree, err := c.tree.RemoveSubtree(lev)
	if err != nil {
		return MoveOutRecord{}, OpCost{}, err
	}
	pending := make(map[graph.NodeID]struct{}, len(subtree)-1)
	for _, x := range subtree {
		delete(c.status, x)
		if x != lev {
			pending[x] = struct{}{}
		}
	}
	c.g.RemoveNode(lev)

	// Step 0/1 bookkeeping: lev announces departure along the path to the
	// root (height updates) and an Euler tour over T finds the re-entry
	// edge and drives deletions; charge 2h + 2|T| rounds.
	cost.HeightUpdate = 2 * c.tree.Height()
	cost.Discovery = 2 * len(subtree)

	// Step 2: move the nodes of T back in, each when it can hear the
	// current network. Deterministic: lowest-ID eligible node first.
	for len(pending) > 0 {
		moved := false
		for _, x := range sortedKeys(pending) {
			nbrs := c.currentNeighbors(x)
			if len(nbrs) == 0 {
				continue
			}
			if _, mcost, err := c.MoveIn(x, nbrs); err != nil {
				return MoveOutRecord{}, OpCost{}, fmt.Errorf("cnet: re-inserting %d: %w", x, err)
			} else {
				cost.Add(mcost)
			}
			rec.Reinserted = append(rec.Reinserted, x)
			delete(pending, x)
			moved = true
			break
		}
		if !moved {
			// Unreachable given residual connectivity.
			return MoveOutRecord{}, OpCost{}, fmt.Errorf("cnet: stranded subtree nodes %v after removing %d", sortedKeys(pending), lev)
		}
	}
	c.countMoveOut(rec)
	return rec, cost, nil
}

// moveOutRoot handles departure of the sink: a replacement root is elected
// among its neighbors and the entire structure is rebuilt from it by
// incremental insertion over the residual graph.
func (c *CNet) moveOutRoot(lev graph.NodeID, rec MoveOutRecord) (MoveOutRecord, OpCost, error) {
	newRoot := c.policy(c.g.Neighbors(lev))
	c.g.RemoveNode(lev)

	rebuilt := New(newRoot, c.policy)
	rebuilt.instr = c.instr // rebuild move-ins count like any other
	rebuilt.deltaHook = c.deltaHook
	// Preserve G: copy all residual nodes/edges as they join.
	order := c.g.BFS(newRoot).Order
	var cost OpCost
	for _, x := range order[1:] {
		var nbrs []graph.NodeID
		for _, n := range c.g.Neighbors(x) {
			if rebuilt.Contains(n) {
				nbrs = append(nbrs, n)
			}
		}
		if _, mcost, err := rebuilt.MoveIn(x, nbrs); err != nil {
			return MoveOutRecord{}, OpCost{}, fmt.Errorf("cnet: rebuilding after root departure, node %d: %w", x, err)
		} else {
			cost.Add(mcost)
		}
		rec.Reinserted = append(rec.Reinserted, x)
	}
	cost.Discovery += 2 * (len(order) + 1) // tour + election bookkeeping

	c.g = rebuilt.g
	c.tree = rebuilt.tree
	c.status = rebuilt.status
	rec.RootChanged = true
	rec.NewRoot = newRoot
	return rec, cost, nil
}

// currentNeighbors returns x's g-neighbors that are currently members of
// the CNet (i.e. have a status).
func (c *CNet) currentNeighbors(x graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, n := range c.g.Neighbors(x) {
		if c.Contains(n) {
			out = append(out, n)
		}
	}
	return out
}

func sortedKeys(m map[graph.NodeID]struct{}) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
