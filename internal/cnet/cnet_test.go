package cnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

// buildPaperNet constructs a CNet over a paper-style deployment.
func buildPaperNet(t testing.TB, seed int64, n int) *CNet {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewSingleNode(t *testing.T) {
	c := New(5, nil)
	if c.Size() != 1 || c.Root() != 5 {
		t.Fatalf("size=%d root=%d", c.Size(), c.Root())
	}
	if s, _ := c.Status(5); s != Head {
		t.Fatalf("root status = %v", s)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveInCaseHead(t *testing.T) {
	// Fig. 2(a): joining next to a head makes you its member.
	c := New(0, nil)
	p, cost, err := c.MoveIn(1, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("parent = %d", p)
	}
	if s, _ := c.Status(1); s != Member {
		t.Fatalf("status = %v", s)
	}
	if cost.Discovery != 1 || cost.Moves != 1 {
		t.Fatalf("cost = %+v", cost)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveInCaseMemberPromotion(t *testing.T) {
	// Fig. 2(c): joining next to only a member promotes it to gateway and
	// the joiner heads a new cluster.
	c := New(0, nil)
	_, _, _ = c.MoveIn(1, []graph.NodeID{0}) // member of 0
	p, _, err := c.MoveIn(2, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("parent = %d", p)
	}
	if s, _ := c.Status(1); s != Gateway {
		t.Fatalf("old member status = %v", s)
	}
	if s, _ := c.Status(2); s != Head {
		t.Fatalf("joiner status = %v", s)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveInCaseGateway(t *testing.T) {
	// Fig. 2(b): joining next to a gateway (and no head) makes you a head.
	c := New(0, nil)
	_, _, _ = c.MoveIn(1, []graph.NodeID{0})
	_, _, _ = c.MoveIn(2, []graph.NodeID{1}) // 1 is now gateway
	p, _, err := c.MoveIn(3, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("parent = %d", p)
	}
	if s, _ := c.Status(3); s != Head {
		t.Fatalf("status = %v", s)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveInPrefersHeadOverGateway(t *testing.T) {
	c := New(0, nil)
	_, _, _ = c.MoveIn(1, []graph.NodeID{0})
	_, _, _ = c.MoveIn(2, []graph.NodeID{1}) // gateway 1, head 2
	// Node 4 hears gateway 1 and head 2: must become member of 2.
	p, _, err := c.MoveIn(4, []graph.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p != 2 {
		t.Fatalf("parent = %d, want head 2", p)
	}
	if s, _ := c.Status(4); s != Member {
		t.Fatalf("status = %v", s)
	}
}

func TestMoveInErrors(t *testing.T) {
	c := New(0, nil)
	if _, _, err := c.MoveIn(0, []graph.NodeID{0}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, _, err := c.MoveIn(1, nil); err == nil {
		t.Fatal("empty neighbor set accepted")
	}
	if _, _, err := c.MoveIn(1, []graph.NodeID{9}); err == nil {
		t.Fatal("unknown neighbor accepted")
	}
	if _, _, err := c.MoveIn(1, []graph.NodeID{1}); err == nil {
		t.Fatal("self neighbor accepted")
	}
	if _, _, err := c.MoveIn(1, []graph.NodeID{0, 0}); err == nil {
		t.Fatal("duplicate neighbor accepted")
	}
}

func TestStatusString(t *testing.T) {
	if Head.String() != "cluster-head" || Gateway.String() != "gateway" || Member.String() != "pure-member" {
		t.Fatal("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status should format")
	}
}

func TestBuildFromGraphRequiresConnectivity(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	g.AddNode(1)
	if _, _, err := BuildFromGraph(g, 0, nil); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	if _, _, err := BuildFromGraph(g, 7, nil); err == nil {
		t.Fatal("absent root accepted")
	}
}

func TestBuildFromGraphVerifies(t *testing.T) {
	c := buildPaperNet(t, 42, 120)
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyCliqueBound(); err != nil {
		t.Fatal(err)
	}
	st := c.ComputeStats()
	if st.Nodes != 120 {
		t.Fatalf("nodes = %d", st.Nodes)
	}
	if st.Clusters+st.Gateways+st.Members != 120 {
		t.Fatalf("statuses do not partition: %+v", st)
	}
	if st.BackboneSize != st.Clusters+st.Gateways {
		t.Fatalf("backbone size mismatch: %+v", st)
	}
	// Property 1(1): |BT| <= 2*#clusters - 1 after pure construction.
	if st.BackboneSize > 2*st.Clusters-1 {
		t.Fatalf("backbone %d exceeds 2p-1 with p=%d", st.BackboneSize, st.Clusters)
	}
	if st.BackboneHeight > st.Height {
		t.Fatalf("backbone taller than CNet: %+v", st)
	}
	if st.DegreeBT > st.DegreeG {
		t.Fatalf("d > D: %+v", st)
	}
}

func TestBackboneStructure(t *testing.T) {
	c := buildPaperNet(t, 7, 80)
	bt := c.Backbone()
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	if bt.Root() != c.Root() {
		t.Fatal("backbone root differs")
	}
	depth := bt.DepthMap()
	for _, id := range bt.Nodes() {
		s, _ := c.Status(id)
		if s == Member {
			t.Fatalf("member %d in backbone", id)
		}
		// Depth alternation: heads even, gateways odd (Property 1(2)).
		if s == Head && depth[id]%2 != 0 {
			t.Fatalf("head %d at odd backbone depth", id)
		}
		if s == Gateway && depth[id]%2 != 1 {
			t.Fatalf("gateway %d at even backbone depth", id)
		}
	}
	// Backbone depth must agree with CNet depth (it is a prefix-closed
	// subtree).
	for _, id := range bt.Nodes() {
		if depth[id] != c.Tree().Depth(id) {
			t.Fatalf("depth mismatch for %d", id)
		}
	}
}

func TestMoveOutLeaf(t *testing.T) {
	c := New(0, nil)
	_, _, _ = c.MoveIn(1, []graph.NodeID{0})
	_, _, _ = c.MoveIn(2, []graph.NodeID{0, 1})
	rec, _, err := c.MoveOut(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Removed != 2 || len(rec.Reinserted) != 0 {
		t.Fatalf("rec = %+v", rec)
	}
	if c.Contains(2) || c.Size() != 2 {
		t.Fatal("node not removed")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveOutInternalReinserts(t *testing.T) {
	// G: 0-1, 0-2, 1-2, 1-3, 2-3. A policy favoring node 2 makes 2 the
	// parent of 3, so 3 sits in the subtree detached when 2 leaves, yet
	// stays connected via 1 afterwards.
	c := New(0, MaxValue(map[graph.NodeID]float64{2: 1}))
	_, _, _ = c.MoveIn(1, []graph.NodeID{0})
	_, _, _ = c.MoveIn(2, []graph.NodeID{0, 1})
	_, _, _ = c.MoveIn(3, []graph.NodeID{1, 2})
	if p, _ := c.Tree().Parent(3); p != 2 {
		t.Fatalf("setup: parent of 3 = %d, want 2", p)
	}
	rec, cost, err := c.MoveOut(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Removed != 2 {
		t.Fatalf("rec = %+v", rec)
	}
	// 3 was in the detached subtree and must be re-inserted.
	found := false
	for _, x := range rec.Reinserted {
		if x == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("3 not reinserted: %+v", rec)
	}
	if !c.Contains(3) || c.Contains(2) {
		t.Fatal("membership wrong after move-out")
	}
	if cost.Total() <= 0 {
		t.Fatalf("cost = %+v", cost)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveOutErrors(t *testing.T) {
	c := New(0, nil)
	if _, _, err := c.MoveOut(0); err == nil {
		t.Fatal("removed last node")
	}
	_, _, _ = c.MoveIn(1, []graph.NodeID{0})
	_, _, _ = c.MoveIn(2, []graph.NodeID{1})
	// Removing 1 disconnects 0 from 2.
	if _, _, err := c.MoveOut(1); err == nil {
		t.Fatal("disconnecting removal accepted")
	}
	if _, _, err := c.MoveOut(77); err == nil {
		t.Fatal("absent node accepted")
	}
}

func TestMoveOutRoot(t *testing.T) {
	c := buildPaperNet(t, 3, 40)
	// Ensure root removal keeps connectivity; if not, pick another seed.
	res := c.Graph().Clone()
	res.RemoveNode(c.Root())
	if !res.Connected() {
		t.Skip("seed yields cut-vertex root")
	}
	oldRoot := c.Root()
	rec, _, err := c.MoveOut(oldRoot)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.RootChanged {
		t.Fatal("RootChanged not set")
	}
	if c.Root() == oldRoot || c.Contains(oldRoot) {
		t.Fatal("old root still present")
	}
	if c.Size() != 39 {
		t.Fatalf("size = %d", c.Size())
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxValuePolicy(t *testing.T) {
	energy := map[graph.NodeID]float64{1: 0.5, 2: 0.9}
	pol := MaxValue(energy)
	if got := pol([]graph.NodeID{1, 2}); got != 2 {
		t.Fatalf("policy chose %d", got)
	}
	if got := pol([]graph.NodeID{3, 4}); got != 3 {
		t.Fatalf("missing-entry tie-break chose %d", got)
	}
	// Policy actually steers parent choice.
	c := New(0, MaxValue(map[graph.NodeID]float64{0: 1}))
	if p, _, err := c.MoveIn(1, []graph.NodeID{0}); err != nil || p != 0 {
		t.Fatalf("p=%d err=%v", p, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := buildPaperNet(t, 5, 30)
	cl := c.Clone()
	if cl.Size() != c.Size() {
		t.Fatal("clone size differs")
	}
	if _, _, err := cl.MoveIn(1000, []graph.NodeID{cl.Root()}); err != nil {
		t.Fatal(err)
	}
	if c.Contains(1000) {
		t.Fatal("clone aliased original")
	}
	if err := cl.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildByGossipMatchesIncremental(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(17, 8, 70))
	if err != nil {
		t.Fatal(err)
	}
	inc, _, err := BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	gos, cost, err := BuildByGossip(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Discovery != 2*70 {
		t.Fatalf("gossip cost = %+v", cost)
	}
	// Identical structure: same statuses and same tree edges.
	for _, id := range inc.Tree().Nodes() {
		si, _ := inc.Status(id)
		sg, ok := gos.Status(id)
		if !ok || si != sg {
			t.Fatalf("status of %d differs: %v vs %v", id, si, sg)
		}
		pi, oki := inc.Tree().Parent(id)
		pg, okg := gos.Tree().Parent(id)
		if oki != okg || pi != pg {
			t.Fatalf("parent of %d differs", id)
		}
	}
	if err := gos.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildByGossipErrors(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	g.AddNode(1)
	if _, _, err := BuildByGossip(g, 0, nil); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestOpCostTotalAndAdd(t *testing.T) {
	a := OpCost{Discovery: 1, HeightUpdate: 2, SlotUpdate: 3, Moves: 4}
	if a.Total() != 10 {
		t.Fatalf("Total = %d", a.Total())
	}
	var b OpCost
	b.Add(a)
	b.Add(a)
	if b.Total() != 20 {
		t.Fatalf("accumulated = %+v", b)
	}
}

// Property: construction over random connected deployments always verifies,
// and the key Property-1 facts hold.
func TestConstructionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 2
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
		if err != nil {
			return false
		}
		c, _, err := BuildFromGraph(d.Graph(), 0, nil)
		if err != nil {
			return false
		}
		if c.Verify() != nil || c.VerifyCliqueBound() != nil {
			return false
		}
		st := c.ComputeStats()
		return st.BackboneSize <= 2*st.Clusters-1 && st.DegreeBT <= st.DegreeG
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random sequence of safe move-outs keeps the structure valid.
func TestMoveOutProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := buildPaperNet(t, seed, 40)
		for k := 0; k < 8 && c.Size() > 3; k++ {
			nodes := c.Tree().Nodes()
			victim := nodes[rng.Intn(len(nodes))]
			res := c.Graph().Clone()
			res.RemoveNode(victim)
			if !res.Connected() {
				continue
			}
			if _, _, err := c.MoveOut(victim); err != nil {
				return false
			}
			if c.Verify() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
