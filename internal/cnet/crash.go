package cnet

import (
	"fmt"
	"sort"

	"dynsens/internal/graph"
)

// CrashRecord describes a non-graceful repair after node crashes.
type CrashRecord struct {
	// Dead lists the crashed nodes that were removed, ascending.
	Dead []graph.NodeID
	// Reinserted lists surviving orphans re-attached via node-move-in, in
	// re-insertion order.
	Reinserted []graph.NodeID
	// Dropped lists survivors that could no longer reach the sink and
	// were removed from the network (they would re-join on their own once
	// connectivity returns).
	Dropped []graph.NodeID
	// RootReplaced is set when the sink itself crashed; NewRoot is its
	// elected replacement.
	RootReplaced bool
	NewRoot      graph.NodeID
}

// RemoveCrashed repairs the structure after the given nodes crashed
// without running node-move-out: the subtrees under the topmost crashed
// nodes are detached, surviving orphans re-join through node-move-in when
// they can still hear the network, and unreachable survivors are dropped.
// If the sink crashed, a replacement is elected among its surviving
// neighbors (falling back to the lowest surviving ID) and the structure is
// rebuilt from it. The paper only covers graceful departure; this is the
// crash-failure counterpart its robustness discussion implies.
func (c *CNet) RemoveCrashed(dead []graph.NodeID) (CrashRecord, OpCost, error) {
	if len(dead) == 0 {
		return CrashRecord{}, OpCost{}, fmt.Errorf("cnet: empty crash set")
	}
	deadSet := make(map[graph.NodeID]bool, len(dead))
	for _, id := range dead {
		if !c.Contains(id) {
			return CrashRecord{}, OpCost{}, fmt.Errorf("cnet: crashed node %d not present", id)
		}
		deadSet[id] = true
	}
	if len(deadSet) >= c.Size() {
		return CrashRecord{}, OpCost{}, fmt.Errorf("cnet: all nodes crashed")
	}

	rec := CrashRecord{Dead: sortedSet(deadSet)}
	var cost OpCost

	if deadSet[c.tree.Root()] {
		rec, cost, err := c.crashRebuild(deadSet, rec)
		if err == nil {
			c.countCrash(rec)
		}
		return rec, cost, err
	}

	// Detach the subtree of every topmost crashed node.
	pending := make(map[graph.NodeID]struct{})
	for id := range deadSet {
		if !c.tree.Contains(id) {
			continue // already detached under another crashed ancestor
		}
		isTopmost := true
		for cur := id; ; {
			p, ok := c.tree.Parent(cur)
			if !ok {
				break
			}
			if deadSet[p] {
				isTopmost = false
				break
			}
			cur = p
		}
		if !isTopmost {
			continue
		}
		sub, err := c.tree.RemoveSubtree(id)
		if err != nil {
			return CrashRecord{}, OpCost{}, err
		}
		for _, x := range sub {
			delete(c.status, x)
			if !deadSet[x] {
				pending[x] = struct{}{}
			}
		}
	}
	for id := range deadSet {
		delete(c.status, id)
		c.g.RemoveNode(id)
	}
	cost.Discovery = 2 * (len(pending) + len(deadSet)) // detection + tour bookkeeping

	// Re-insert reachable orphans; drop the rest.
	for len(pending) > 0 {
		moved := false
		for _, x := range sortedKeys(pending) {
			nbrs := c.currentNeighbors(x)
			if len(nbrs) == 0 {
				continue
			}
			if _, mcost, err := c.MoveIn(x, nbrs); err != nil {
				return CrashRecord{}, OpCost{}, fmt.Errorf("cnet: re-attaching orphan %d: %w", x, err)
			} else {
				cost.Add(mcost)
			}
			rec.Reinserted = append(rec.Reinserted, x)
			delete(pending, x)
			moved = true
			break
		}
		if !moved {
			// Remaining orphans cannot reach the sink: drop them.
			for _, x := range sortedKeys(pending) {
				rec.Dropped = append(rec.Dropped, x)
				c.g.RemoveNode(x)
				delete(pending, x)
			}
		}
	}
	c.countCrash(rec)
	return rec, cost, nil
}

// crashRebuild handles a crashed sink: elect a replacement and rebuild
// over the surviving reachable component.
func (c *CNet) crashRebuild(deadSet map[graph.NodeID]bool, rec CrashRecord) (CrashRecord, OpCost, error) {
	oldRoot := c.tree.Root()
	// Prefer a surviving neighbor of the dead sink.
	var candidates []graph.NodeID
	for _, n := range c.g.Neighbors(oldRoot) {
		if !deadSet[n] {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		for _, n := range c.g.Nodes() {
			if !deadSet[n] {
				candidates = append(candidates, n)
				break
			}
		}
	}
	newRoot := c.policy(candidates)

	// Residual graph of survivors.
	residual := c.g.Clone()
	for id := range deadSet {
		residual.RemoveNode(id)
	}
	reach := make(map[graph.NodeID]bool)
	for _, id := range residual.BFS(newRoot).Order {
		reach[id] = true
	}

	rebuilt := New(newRoot, c.policy)
	rebuilt.instr = c.instr // rebuild move-ins count like any other
	rebuilt.deltaHook = c.deltaHook
	var cost OpCost
	for _, x := range residual.BFS(newRoot).Order[1:] {
		var nbrs []graph.NodeID
		for _, n := range residual.Neighbors(x) {
			if rebuilt.Contains(n) {
				nbrs = append(nbrs, n)
			}
		}
		if _, mcost, err := rebuilt.MoveIn(x, nbrs); err != nil {
			return CrashRecord{}, OpCost{}, fmt.Errorf("cnet: rebuilding after sink crash, node %d: %w", x, err)
		} else {
			cost.Add(mcost)
		}
		rec.Reinserted = append(rec.Reinserted, x)
	}
	for _, id := range residual.Nodes() {
		if !reach[id] {
			rec.Dropped = append(rec.Dropped, id)
		}
	}
	cost.Discovery = 2 * (c.Size() + 1)

	c.g = rebuilt.g
	c.tree = rebuilt.tree
	c.status = rebuilt.status
	rec.RootReplaced = true
	rec.NewRoot = newRoot
	return rec, cost, nil
}

func sortedSet(m map[graph.NodeID]bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
