package cnet

import (
	"dynsens/internal/graph"
	"dynsens/internal/obs"
)

// Metric names recorded by an instrumented CNet.
const (
	// MetricMoveIns counts node-move-in operations, including the
	// re-insertions performed internally by move-out and crash repair
	// (each re-insertion is a node-move-in per Section 5.2).
	MetricMoveIns = "dynsens_cnet_move_ins_total"
	// MetricMoveOuts counts node-move-out operations.
	MetricMoveOuts = "dynsens_cnet_move_outs_total"
	// MetricCrashRepairs counts RemoveCrashed repairs.
	MetricCrashRepairs = "dynsens_cnet_crash_repairs_total"
	// MetricReinsertions counts nodes replayed through node-move-in by
	// move-out or crash repair.
	MetricReinsertions = "dynsens_cnet_reinsertions_total"
	// MetricDrops counts survivors dropped because they could no longer
	// reach the sink after a crash.
	MetricDrops = "dynsens_cnet_drops_total"
	// MetricRootRebuilds counts full rebuilds triggered by a departed or
	// crashed sink.
	MetricRootRebuilds = "dynsens_cnet_root_rebuilds_total"
)

// topoCounters holds the registered handles so the mutation hot paths pay
// one nil check plus atomic increments, never a registry lookup.
type topoCounters struct {
	moveIns      *obs.Counter
	moveOuts     *obs.Counter
	crashRepairs *obs.Counter
	reinserts    *obs.Counter
	drops        *obs.Counter
	rootRebuilds *obs.Counter
}

// Instrument starts counting topology events (join/leave/repair) into reg.
// Call once before driving churn; counting stops when the structure is
// cloned (clones are not instrumented).
func (c *CNet) Instrument(reg *obs.Registry) {
	c.instr = &topoCounters{
		moveIns:      reg.Counter(MetricMoveIns, "Node-move-in operations (including re-insertions)."),
		moveOuts:     reg.Counter(MetricMoveOuts, "Node-move-out operations."),
		crashRepairs: reg.Counter(MetricCrashRepairs, "Non-graceful crash repairs."),
		reinserts:    reg.Counter(MetricReinsertions, "Nodes replayed through node-move-in by move-out or crash repair."),
		drops:        reg.Counter(MetricDrops, "Survivors dropped for being unreachable after a crash."),
		rootRebuilds: reg.Counter(MetricRootRebuilds, "Full rebuilds after a departed or crashed sink."),
	}
}

// DeltaKind classifies observed topology mutations.
type DeltaKind int

const (
	// DeltaMoveIn: a node joined via node-move-in (construction insertions
	// and the re-insertions done by move-out/crash repair included).
	DeltaMoveIn DeltaKind = iota
	// DeltaMoveOut: a node departed gracefully.
	DeltaMoveOut
	// DeltaCrash: a non-graceful repair completed.
	DeltaCrash
)

// Delta is one observed topology mutation, delivered to the hook installed
// with SetDeltaHook. Where Instrument aggregates mutations into counters,
// the delta hook streams them individually — the flight recorder's view of
// churn.
type Delta struct {
	Kind DeltaKind
	// Node is the joining node (move-in), the departed node (move-out), or
	// the first crashed node (crash).
	Node        graph.NodeID
	Reinserted  []graph.NodeID
	Dropped     []graph.NodeID
	RootChanged bool
}

// SetDeltaHook streams every subsequent topology mutation to fn (nil
// disables). The slices in a delivered Delta are shared with the records
// they came from; hooks must not mutate them.
func (c *CNet) SetDeltaHook(fn func(Delta)) { c.deltaHook = fn }

// countMoveIn records one successful node-move-in.
func (c *CNet) countMoveIn(id graph.NodeID) {
	if c.instr != nil {
		c.instr.moveIns.Inc()
	}
	if c.deltaHook != nil {
		c.deltaHook(Delta{Kind: DeltaMoveIn, Node: id})
	}
}

// countMoveOut records one successful node-move-out.
func (c *CNet) countMoveOut(rec MoveOutRecord) {
	if c.instr != nil {
		c.instr.moveOuts.Inc()
		c.instr.reinserts.Add(int64(len(rec.Reinserted)))
		if rec.RootChanged {
			c.instr.rootRebuilds.Inc()
		}
	}
	if c.deltaHook != nil {
		c.deltaHook(Delta{
			Kind: DeltaMoveOut, Node: rec.Removed,
			Reinserted: rec.Reinserted, RootChanged: rec.RootChanged,
		})
	}
}

// countCrash records one successful crash repair.
func (c *CNet) countCrash(rec CrashRecord) {
	if c.instr != nil {
		c.instr.crashRepairs.Inc()
		c.instr.reinserts.Add(int64(len(rec.Reinserted)))
		c.instr.drops.Add(int64(len(rec.Dropped)))
		if rec.RootReplaced {
			c.instr.rootRebuilds.Inc()
		}
	}
	if c.deltaHook != nil {
		var first graph.NodeID
		if len(rec.Dead) > 0 {
			first = rec.Dead[0]
		}
		c.deltaHook(Delta{
			Kind: DeltaCrash, Node: first,
			Reinserted: rec.Reinserted, Dropped: rec.Dropped,
			RootChanged: rec.RootReplaced,
		})
	}
}
