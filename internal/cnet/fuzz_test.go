package cnet_test

import (
	"testing"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
)

// FuzzChurn drives a CNet (with live slot assignment) through an arbitrary
// op sequence decoded from fuzz bytes: each byte either joins a new node
// next to an existing anchor or removes a safe node. Every invariant is
// re-checked after every operation.
func FuzzChurn(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0x80, 4, 0x81, 5})
	f.Add([]byte{10, 20, 30, 0x90, 0x91, 40, 50, 0x92, 0x93, 0x94})
	f.Add([]byte{1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		c := cnet.New(0, nil)
		a := timeslot.New(c, timeslot.ConditionStrict)
		next := graph.NodeID(1)
		for _, op := range ops {
			if len(ops) > 64 {
				ops = ops[:64]
			}
			if op < 0x80 || c.Size() <= 2 {
				// Join: anchor selected by op among current nodes, plus
				// every neighbor of the anchor to keep degrees growing.
				nodes := c.Tree().Nodes()
				anchor := nodes[int(op)%len(nodes)]
				nbrs := []graph.NodeID{anchor}
				for i, nb := range c.Graph().Neighbors(anchor) {
					if i%2 == int(op)%2 {
						nbrs = append(nbrs, nb)
					}
				}
				if _, _, err := c.MoveIn(next, nbrs); err != nil {
					t.Fatalf("join %d: %v", next, err)
				}
				if err := a.OnJoin(next); err != nil {
					t.Fatalf("slots after join %d: %v", next, err)
				}
				next++
			} else {
				// Leave: pick a safe victim deterministically from op.
				nodes := c.Tree().Nodes()
				removed := false
				for k := 0; k < len(nodes); k++ {
					cand := nodes[(int(op)+k)%len(nodes)]
					if cand == c.Root() {
						continue
					}
					res := c.Graph().Clone()
					res.RemoveNode(cand)
					if !res.Connected() {
						continue
					}
					rec, _, err := c.MoveOut(cand)
					if err != nil {
						t.Fatalf("leave %d: %v", cand, err)
					}
					if err := a.OnMoveOut(rec); err != nil {
						t.Fatalf("slots after leave %d: %v", cand, err)
					}
					removed = true
					break
				}
				if !removed {
					continue
				}
			}
			if err := c.Verify(); err != nil {
				t.Fatalf("structure: %v", err)
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("slots: %v", err)
			}
			if err := a.CheckBounds(); err != nil {
				t.Fatalf("bounds: %v", err)
			}
		}
	})
}
