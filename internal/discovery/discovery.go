// Package discovery implements the randomized neighbor-discovery handshake
// that node-move-in builds on. The paper inherits from [19] that "a
// node-move-in operation can be done in O(d_new) expected rounds" starting
// from zero knowledge: the joining node does not know who its neighbors
// are, the radio has no collision detection, and several neighbors
// answering at once silently destroy each other.
//
// The protocol here is the classic estimate-free decay scheme (Bar-Yehuda
// et al. style, as used by randomized initialization protocols): time is
// organized in probe/response round pairs; in response round i of an
// epoch, every still-unacknowledged neighbor answers with probability
// 2^-(i mod E). Whenever exactly one neighbor answers, the joiner hears it
// and acknowledges it in the next probe, silencing it. The joiner stops
// after a configurable number of consecutive epochs without a new
// discovery — a Monte Carlo termination rule, which is exactly why the
// guarantee is "expected rounds" and "with high probability".
//
// The protocol runs on the real radio engine, so the measured round counts
// in the discovery experiment include every collision it actually caused.
package discovery

import (
	"fmt"
	"math/rand"

	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// Message kinds carried in radio.Message.Depth (the field is free here).
const (
	msgProbe    = 1
	msgResponse = 2
)

// Options tune a discovery run.
type Options struct {
	// Seed drives all coin flips.
	Seed int64
	// Rand, when non-nil, supplies the coin flips instead of Seed. Inject
	// a shared seeded source when a caller interleaves several randomized
	// stages and wants one reproducible stream across all of them.
	Rand *rand.Rand
	// EpochLength is the number of probability levels per decay epoch
	// (response probability is 2^-i for i = 0..EpochLength-1). Default 8.
	EpochLength int
	// SilentEpochs is how many consecutive epochs without a discovery end
	// the protocol. Default 6, which pushes the miss probability per
	// remaining neighbor below ~1e-3 (each barren epoch has probability
	// roughly 0.2-0.4 while neighbors remain undiscovered).
	SilentEpochs int
	// MaxRounds hard-bounds the run. Default 4096.
	MaxRounds int
	// Workers sets the radio engine's shard-worker count (see
	// radio.Engine.SetWorkers); 0 keeps the engine default.
	Workers int
}

func (o Options) epochLength() int {
	if o.EpochLength <= 0 {
		return 8
	}
	return o.EpochLength
}

func (o Options) silentEpochs() int {
	if o.SilentEpochs <= 0 {
		return 6
	}
	return o.SilentEpochs
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 4096
	}
	return o.MaxRounds
}

// Result reports a discovery run.
type Result struct {
	// Discovered lists the neighbors the joiner heard, ascending.
	Discovered []graph.NodeID
	// Complete is true when Discovered equals the joiner's true
	// neighborhood (ground truth from the graph; the protocol itself only
	// knows it w.h.p.).
	Complete bool
	// Rounds is the number of rounds the engine executed.
	Rounds int
	// Collisions counts response rounds lost to simultaneous answers.
	Collisions int
	// Transmissions counts every frame sent by anyone.
	Transmissions int
}

// joinerProg alternates probe and listen rounds and tracks discoveries.
//
// Contract compliance (radio.Program): all state is node-private; Done is
// a pure read of the done flag, which is set once and never cleared.
// Enforced statically by dynlint/progpurity via the assertion below.
type joinerProg struct {
	id   graph.NodeID
	opts Options

	discovered   map[graph.NodeID]bool
	lastHeard    graph.NodeID
	haveAck      bool
	epochRound   int
	silentEpochs int
	newInEpoch   bool
	done         bool
	cur          int
}

func (p *joinerProg) Act(round int) radio.Action {
	p.cur = round
	if p.done {
		return radio.SleepAction()
	}
	if round%2 == 1 {
		// Probe round: announce presence; piggyback the latest ACK.
		msg := radio.Message{Seq: msgProbe, Src: p.id, Dst: radio.NoNode, Depth: msgProbe}
		if p.haveAck {
			msg.Dst = p.lastHeard
			p.haveAck = false
		}
		// Advance the decay schedule; close epochs on wraparound.
		p.epochRound++
		if p.epochRound >= p.opts.epochLength() {
			p.epochRound = 0
			if p.newInEpoch {
				p.silentEpochs = 0
			} else {
				p.silentEpochs++
				if p.silentEpochs >= p.opts.silentEpochs() {
					p.done = true
				}
			}
			p.newInEpoch = false
		}
		msg.Slot = p.epochRound // current probability level, for responders
		return radio.TransmitOn(0, msg)
	}
	return radio.ListenOn(0)
}

func (p *joinerProg) Deliver(_ int, msg radio.Message) {
	if msg.Depth != msgResponse {
		return
	}
	if !p.discovered[msg.Src] {
		p.discovered[msg.Src] = true
		p.newInEpoch = true
	}
	p.lastHeard = msg.Src
	p.haveAck = true
}

func (p *joinerProg) Done() bool { return p.done }

// responderProg answers probes with decaying probability until ACKed, and
// gives up once probes stop arriving (the joiner finished without hearing
// it — the Monte Carlo miss case) so the simulation quiesces.
//
// Contract compliance (radio.Program): each responder owns a private
// rand.Rand split off the run's stream at build time, so concurrent Act
// calls across nodes never share a coin source; acked is set once and
// never cleared, keeping Done pure and monotone. Enforced statically by
// dynlint/progpurity via the assertion below.
type responderProg struct {
	id        graph.NodeID
	rng       *rand.Rand
	level     int // probability level received in the last probe
	probed    bool
	acked     bool
	lastProbe int
	timeout   int
	cur       int
}

func (p *responderProg) Act(round int) radio.Action {
	p.cur = round
	if p.acked {
		return radio.SleepAction()
	}
	if p.lastProbe > 0 && round-p.lastProbe > p.timeout {
		p.acked = true // give up; treated as done
		return radio.SleepAction()
	}
	if round%2 == 1 {
		return radio.ListenOn(0)
	}
	if !p.probed {
		return radio.ListenOn(0)
	}
	p.probed = false
	if p.rng.Float64() < prob(p.level) {
		return radio.TransmitOn(0, radio.Message{Seq: msgResponse, Src: p.id, Depth: msgResponse})
	}
	return radio.ListenOn(0)
}

func prob(level int) float64 {
	p := 1.0
	for i := 0; i < level; i++ {
		p /= 2
	}
	return p
}

func (p *responderProg) Deliver(round int, msg radio.Message) {
	if msg.Depth != msgProbe {
		return
	}
	p.lastProbe = round
	if msg.Dst == p.id {
		p.acked = true
		return
	}
	p.probed = true
	p.level = msg.Slot
}

func (p *responderProg) Done() bool { return p.acked }

// Run executes neighbor discovery for joiner over the ground-truth graph
// g (which must already contain joiner and its edges). Non-neighbors stay
// silent; the engine enforces who can actually hear whom.
func Run(g *graph.Graph, joiner graph.NodeID, opts Options) (Result, error) {
	if !g.HasNode(joiner) {
		return Result{}, fmt.Errorf("discovery: joiner %d not in graph", joiner)
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	jp := &joinerProg{id: joiner, opts: opts, discovered: make(map[graph.NodeID]bool)}
	progs := map[graph.NodeID]radio.Program{joiner: jp}
	for _, id := range g.Nodes() {
		if id == joiner {
			continue
		}
		if g.HasEdge(id, joiner) {
			progs[id] = &responderProg{
				id:      id,
				rng:     rand.New(rand.NewSource(rng.Int63())),
				timeout: 4 * opts.epochLength(),
			}
		} else {
			progs[id] = silent{}
		}
	}
	eng, err := radio.NewEngine(g, progs)
	if err != nil {
		return Result{}, err
	}
	eng.SetWorkers(opts.Workers)
	res := eng.Run(opts.maxRounds())

	out := Result{
		Rounds:        res.Rounds,
		Collisions:    res.Collisions,
		Transmissions: res.Transmissions,
	}
	for id := range jp.discovered {
		out.Discovered = append(out.Discovered, id)
	}
	sortIDs(out.Discovered)
	truth := g.Neighbors(joiner)
	out.Complete = len(out.Discovered) == len(truth)
	for i := range truth {
		if !out.Complete {
			break
		}
		if out.Discovered[i] != truth[i] {
			out.Complete = false
		}
	}
	return out, nil
}

var (
	_ radio.Program = (*joinerProg)(nil)
	_ radio.Program = (*responderProg)(nil)
	_ radio.Program = silent{}
)

// silent is a non-participant.
type silent struct{}

func (silent) Act(int) radio.Action       { return radio.SleepAction() }
func (silent) Deliver(int, radio.Message) {}
func (silent) Done() bool                 { return true }

func sortIDs(ids []graph.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
