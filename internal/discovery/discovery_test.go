package discovery

import (
	"testing"
	"testing/quick"

	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func star(n int) *graph.Graph {
	g := graph.New()
	g.AddNode(0)
	for i := 1; i <= n; i++ {
		_ = g.AddEdge(0, graph.NodeID(i))
	}
	return g
}

func TestDiscoverSingleNeighbor(t *testing.T) {
	g := star(1)
	res, err := Run(g, 0, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Discovered) != 1 || res.Discovered[0] != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestDiscoverNoNeighbors(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	g.AddNode(1) // not adjacent
	res, err := Run(g, 0, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Discovered) != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestDiscoverManyNeighbors(t *testing.T) {
	for _, d := range []int{2, 5, 10, 20} {
		g := star(d)
		res, err := Run(g, 0, Options{Seed: int64(d)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("d=%d: discovered only %d (%+v)", d, len(res.Discovered), res)
		}
		if res.Collisions == 0 && d > 3 {
			t.Fatalf("d=%d: no collisions at all is implausible for the decay protocol", d)
		}
	}
}

func TestDiscoveryRoundsGrowWithDegree(t *testing.T) {
	avg := func(d int) float64 {
		total := 0
		const reps = 10
		for s := int64(0); s < reps; s++ {
			res, err := Run(star(d), 0, Options{Seed: s})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Rounds
		}
		return float64(total) / reps
	}
	small, large := avg(2), avg(30)
	if large <= small {
		t.Fatalf("rounds did not grow with degree: d=2 %.1f vs d=30 %.1f", small, large)
	}
}

func TestDiscoveryOnRealDeployment(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(3, 8, 60))
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph()
	// The joiner is an existing node; everyone else responds only if
	// adjacent, and distant nodes must not appear.
	res, err := Run(g, 30, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete on deployment: %+v (truth %v)", res, g.Neighbors(30))
	}
	for _, id := range res.Discovered {
		if !g.HasEdge(id, 30) {
			t.Fatalf("non-neighbor %d discovered", id)
		}
	}
}

func TestRunErrors(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	if _, err := Run(g, 5, Options{}); err == nil {
		t.Fatal("absent joiner accepted")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := star(8)
	a, err := Run(g, 0, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, 0, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || len(a.Discovered) != len(b.Discovered) {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// Property: across random stars and seeds, discovery completes with high
// probability and never invents neighbors.
func TestDiscoveryProperty(t *testing.T) {
	misses := 0
	runs := 0
	f := func(seed int64, dRaw uint8) bool {
		d := int(dRaw%25) + 1
		g := star(d)
		res, err := Run(g, 0, Options{Seed: seed})
		if err != nil {
			return false
		}
		runs++
		if !res.Complete {
			misses++ // Monte Carlo: rare misses are tolerated below
		}
		for _, id := range res.Discovered {
			if !g.HasEdge(id, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if runs > 0 && misses*10 > runs {
		t.Fatalf("too many incomplete discoveries: %d/%d", misses, runs)
	}
}
