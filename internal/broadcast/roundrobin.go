package broadcast

import (
	"fmt"

	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// rrNode implements deterministic round-robin broadcast on a flat network
// (the classic O(n)-per-layer deterministic scheme behind results like
// Chlebus et al. [9]): rounds are organized in phases of N slots, one per
// node ID; a node transmits in its slot once it holds the payload and
// keeps doing so every phase (it cannot know when its neighbors are done),
// and listens until the payload arrives.
//
// Contract compliance (radio.Program): slot index and phase length are
// fixed at build time; run-time state is node-private and Done is a pure
// monotone horizon threshold. Enforced statically by dynlint/progpurity
// via the assertion below.
type rrNode struct {
	id       graph.NodeID
	index    int // position of id in the sorted ID list
	n        int // number of nodes = phase length
	horizon  int
	startHas bool

	received      bool
	receivedRound int
	cur           int
}

var _ radio.Program = (*rrNode)(nil)

func (p *rrNode) Received() (bool, int) {
	if p.startHas {
		return true, 0
	}
	return p.received, p.receivedRound
}

func (p *rrNode) Act(round int) radio.Action {
	p.cur = round
	if round > p.horizon {
		return radio.SleepAction()
	}
	if (round-1)%p.n == p.index && (p.startHas || p.received) {
		return radio.TransmitOn(0, radio.Message{Seq: payloadSeq, Src: p.id, Dst: radio.NoNode})
	}
	if !p.startHas && !p.received {
		return radio.ListenOn(0)
	}
	return radio.SleepAction()
}

func (p *rrNode) Deliver(round int, msg radio.Message) {
	if msg.Seq == payloadSeq && !p.received {
		p.received = true
		p.receivedRound = round
	}
}

func (p *rrNode) Done() bool { return p.cur >= p.horizon }

// RoundRobinPlan builds the deterministic flat baseline. The horizon is
// phases*N rounds; pass phases <= 0 to size it from the source's
// eccentricity plus one slack phase (ground truth the protocol itself
// would not have — the cost of deterministic flat broadcast is exactly
// that nodes cannot tell when to stop). The schedule is collision-free by
// construction: exactly one node may transmit per round.
func RoundRobinPlan(g *graph.Graph, source graph.NodeID, phases int) (*Plan, error) {
	if !g.HasNode(source) {
		return nil, fmt.Errorf("broadcast: source %d not in graph", source)
	}
	nodes := g.Nodes()
	n := len(nodes)
	if phases <= 0 {
		ecc, _ := g.Eccentricity(source)
		phases = ecc + 2
	}
	horizon := phases * n
	progs := make(map[graph.NodeID]radio.Program, n)
	for i, id := range nodes {
		progs[id] = &rrNode{
			id:       id,
			index:    i,
			n:        n,
			horizon:  horizon,
			startHas: id == source,
		}
	}
	return &Plan{
		Protocol:    "RR",
		ScheduleLen: horizon,
		Programs:    progs,
		Audience:    nodes,
	}, nil
}

// RunRoundRobin builds and runs the baseline.
func RunRoundRobin(g *graph.Graph, source graph.NodeID, phases int, opts Options) (Metrics, error) {
	plan, err := RoundRobinPlan(g, source, phases)
	if err != nil {
		return Metrics{}, err
	}
	return plan.Run(g, opts)
}
