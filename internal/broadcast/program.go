// Package broadcast implements the paper's broadcast protocols as per-node
// programs executed on the radio engine:
//
//   - CFF (Algorithm 1 "CollisionFreeFlooding"): floods CNet(G) depth by
//     depth using u-time-slots; Delta_u * h rounds, each node awake O(Delta_u).
//   - ICFF (Algorithm 2 "ImprovedCollisionFreeFlooding"): floods the small
//     backbone BT(G) with b-time-slots, then delivers to all leaves in one
//     l-slot window; delta*h + Delta rounds, each node awake O(delta + Delta).
//   - DFO (depth-first-order, the baseline of [19]): a single token walks
//     an Eulerian tour of BT(G); at most 4p-2 rounds with every node awake
//     for the whole tour.
//
// All three support k radio channels (slot s maps to window round
// ceil(s/k) on channel (s-1) mod k), failure injection, and produce
// measured metrics: completion round, delivery ratio, per-node awake
// rounds, collisions.
package broadcast

import (
	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// payloadSeq is the Message.Seq used for the broadcast payload.
const payloadSeq = 1

// listenPlan is a half-open listening assignment: the node listens on Ch
// during rounds [Lo, Hi] until it has the payload (early stop unless
// Sticky).
type listenPlan struct {
	Lo, Hi int
	Ch     radio.Channel
	// Sticky listening continues even after the payload is received
	// (used by DFO token bookkeeping, not by flooding).
	Sticky bool
}

// txPlan transmits Msg on Ch at Round, provided the node holds the payload.
type txPlan struct {
	Round int
	Ch    radio.Channel
	Msg   radio.Message
}

// floodNode is the generic flooding program: listen in windows until the
// payload arrives, then fire the scheduled transmissions. It backs CFF,
// ICFF, multicast and the reliable repetitions.
//
// Contract compliance (radio.Program): all state is node-private; the
// listen/tx plans are written only at build time. Done is pure and
// monotone — once the remaining plan (txs when holding the payload,
// listen windows otherwise) is exhausted it can never regrow, and a node
// that finishes without the payload has no listen window left through
// which has() could flip.
type floodNode struct {
	id       graph.NodeID
	startHas bool
	listens  []listenPlan
	txs      []txPlan

	received      bool
	receivedRound int
	curRound      int // last round passed to Act
}

var _ radio.Program = (*floodNode)(nil)

func (p *floodNode) has() bool { return p.startHas || p.received }

// Received reports whether the node obtained the payload, and in which
// round (0 for sources that started with it).
func (p *floodNode) Received() (bool, int) {
	if p.startHas {
		return true, 0
	}
	return p.received, p.receivedRound
}

func (p *floodNode) Act(round int) radio.Action {
	p.curRound = round
	if p.has() {
		for _, tx := range p.txs {
			if tx.Round == round {
				return radio.TransmitOn(tx.Ch, tx.Msg)
			}
		}
	}
	for _, l := range p.listens {
		if round >= l.Lo && round <= l.Hi && (!p.has() || l.Sticky) {
			return radio.ListenOn(l.Ch)
		}
	}
	return radio.SleepAction()
}

func (p *floodNode) Deliver(round int, msg radio.Message) {
	if msg.Seq == payloadSeq && !p.has() {
		p.received = true
		p.receivedRound = round
	}
}

func (p *floodNode) Done() bool {
	next := p.curRound + 1
	if p.has() {
		for _, tx := range p.txs {
			if tx.Round >= next {
				return false
			}
		}
		return true
	}
	// Without the payload the node can still be obligated to listen.
	for _, l := range p.listens {
		if l.Hi >= next {
			return false
		}
	}
	return true
}

// slotting maps 1-based time-slots to (round offset, channel) within a
// window, supporting k channels and guard slots. With guard factor G each
// logical slot occupies G rounds (the transmitter fires in the middle) and
// the window gains G/2 margin rounds on each side, so schedules tolerate
// per-node clock skew up to G/2 rounds (Section 3.3's synchronization
// relaxation, quantified).
type slotting struct {
	k     int
	guard int
}

func newSlotting(k, guard int) slotting {
	if k < 1 {
		k = 1
	}
	if guard < 1 {
		guard = 1
	}
	return slotting{k: k, guard: guard}
}

func (s slotting) margin() int { return s.guard / 2 }

// width returns the window length in rounds for a window of maxSlot slots.
func (s slotting) width(maxSlot int) int {
	w := windowWidth(maxSlot, s.k)
	if w == 0 {
		return 0
	}
	return w*s.guard + 2*s.margin()
}

// txOffset returns the 1-based round offset within the window at which a
// holder of slot fires.
func (s slotting) txOffset(slot int) int {
	return s.margin() + (slotRound(slot, s.k)-1)*s.guard + (s.guard+1)/2
}

func (s slotting) channel(slot int) radio.Channel { return slotChannel(slot, s.k) }

// slotRound maps a 1-based slot to its round offset within a window of
// width ceil(maxSlot/k) when k channels are available.
func slotRound(slot, k int) int { return (slot-1)/k + 1 }

// slotChannel maps a 1-based slot to its channel.
func slotChannel(slot, k int) radio.Channel { return radio.Channel((slot - 1) % k) }

// windowWidth is ceil(maxSlot/k), the round length of a slot window.
func windowWidth(maxSlot, k int) int {
	if maxSlot <= 0 {
		return 0
	}
	return (maxSlot + k - 1) / k
}
