package broadcast_test

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
)

// line builds the path 0-1-2-3-4 and its cluster structure.
func line() (*cnet.CNet, *timeslot.Assignment) {
	g := graph.New()
	for i := 1; i < 5; i++ {
		if err := g.AddEdge(graph.NodeID(i-1), graph.NodeID(i)); err != nil {
			panic(err)
		}
	}
	c, _, err := cnet.BuildFromGraph(g, 0, nil)
	if err != nil {
		panic(err)
	}
	return c, timeslot.New(c, timeslot.ConditionStrict)
}

// ExampleRunICFF broadcasts over a 5-node chain with Algorithm 2.
func ExampleRunICFF() {
	_, a := line()
	m, err := broadcast.RunICFF(a, 0, broadcast.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d/%d, completed=%v\n", m.Received, m.Audience, m.Completed)
	// Output:
	// delivered 5/5, completed=true
}

// ExampleRunDFO runs the depth-first-order baseline on the same chain: a
// chain's backbone is almost the whole graph, so the tour is long and every
// node stays awake throughout.
func ExampleRunDFO() {
	c, _ := line()
	m, err := broadcast.RunDFO(c, 0, broadcast.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed=%v maxAwake=%d\n", m.Completed, m.MaxAwake)
	// Output:
	// completed=true maxAwake=8
}
