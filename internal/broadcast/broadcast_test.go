package broadcast

import (
	"testing"
	"testing/quick"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
	"dynsens/internal/workload"
)

func buildAssigned(t testing.TB, seed int64, n int, cond timeslot.Condition) *timeslot.Assignment {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return timeslot.New(c, cond)
}

func TestICFFCompletesFromRoot(t *testing.T) {
	a := buildAssigned(t, 1, 120, timeslot.ConditionStrict)
	m, err := RunICFF(a, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("ICFF incomplete: %s", m)
	}
	if m.CompletionRound > m.ScheduleLen {
		t.Fatalf("completion %d after schedule %d", m.CompletionRound, m.ScheduleLen)
	}
	// Theorem 1: schedule length is delta*h + Delta (plus empty preamble).
	hBT := a.Net().Backbone().Height()
	want := a.SmallDelta()*hBT + a.Delta()
	if m.ScheduleLen > want {
		t.Fatalf("schedule %d exceeds delta*h+Delta = %d", m.ScheduleLen, want)
	}
}

func TestICFFAwakeBound(t *testing.T) {
	// Theorem 1(2): each node awake at most 2*delta + Delta rounds (plus
	// the preamble hop for the source path, absent here).
	a := buildAssigned(t, 2, 150, timeslot.ConditionStrict)
	m, err := RunICFF(a, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := 2*a.SmallDelta() + a.Delta()
	if m.MaxAwake > bound {
		t.Fatalf("max awake %d exceeds 2delta+Delta = %d", m.MaxAwake, bound)
	}
}

func TestICFFFromNonRootSource(t *testing.T) {
	a := buildAssigned(t, 3, 80, timeslot.ConditionStrict)
	// Pick a deep node as source.
	tr := a.Net().Tree()
	var source graph.NodeID
	best := -1
	for _, id := range tr.Nodes() {
		if d := tr.Depth(id); d > best {
			best, source = d, id
		}
	}
	m, err := RunICFF(a, source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("ICFF from %d incomplete: %s", source, m)
	}
}

func TestICFFUnknownSource(t *testing.T) {
	a := buildAssigned(t, 3, 20, timeslot.ConditionStrict)
	if _, err := RunICFF(a, 9999, Options{}); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestCFFCompletes(t *testing.T) {
	a := buildAssigned(t, 4, 120, timeslot.ConditionStrict)
	m, err := RunCFF(a, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("CFF incomplete: %s", m)
	}
	// Lemma 1: at most Delta_u * h rounds.
	h := a.Net().Tree().Height()
	if m.ScheduleLen > a.Max(timeslot.U)*h {
		t.Fatalf("schedule %d exceeds Delta*h = %d", m.ScheduleLen, a.Max(timeslot.U)*h)
	}
}

func TestDFOCompletesAndIsCollisionFree(t *testing.T) {
	a := buildAssigned(t, 5, 120, timeslot.ConditionStrict)
	m, err := RunDFO(a.Net(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("DFO incomplete: %s", m)
	}
	if m.Collisions != 0 {
		t.Fatalf("DFO had %d collisions", m.Collisions)
	}
	// One transmitter per round: tour of 2(|BT|-1) transmissions.
	btSize := a.Net().Backbone().Size()
	if m.ScheduleLen != 2*(btSize-1) {
		t.Fatalf("DFO schedule %d, want %d", m.ScheduleLen, 2*(btSize-1))
	}
	// Every node is awake for the entire tour (the paper's energy
	// criticism of the baseline).
	for id, aw := range m.Awake {
		if aw != m.ScheduleLen {
			t.Fatalf("node %d awake %d of %d rounds", id, aw, m.ScheduleLen)
		}
	}
}

func TestDFOFromMemberSource(t *testing.T) {
	a := buildAssigned(t, 6, 80, timeslot.ConditionStrict)
	members := a.Net().Members()
	if len(members) == 0 {
		t.Skip("no members in this seed")
	}
	m, err := RunDFO(a.Net(), members[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("DFO from member incomplete: %s", m)
	}
}

func TestICFFFasterAndLighterThanDFO(t *testing.T) {
	// The paper's headline comparison (Figs. 8 and 9).
	a := buildAssigned(t, 7, 300, timeslot.ConditionStrict)
	icff, err := RunICFF(a, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dfo, err := RunDFO(a.Net(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !icff.Completed || !dfo.Completed {
		t.Fatalf("incomplete: %s / %s", icff, dfo)
	}
	if icff.ScheduleLen >= dfo.ScheduleLen {
		t.Fatalf("ICFF (%d) not faster than DFO (%d)", icff.ScheduleLen, dfo.ScheduleLen)
	}
	if icff.MaxAwake >= dfo.MaxAwake {
		t.Fatalf("ICFF awake (%d) not below DFO (%d)", icff.MaxAwake, dfo.MaxAwake)
	}
}

func TestMultiChannelSpeedup(t *testing.T) {
	a := buildAssigned(t, 8, 200, timeslot.ConditionStrict)
	m1, err := RunICFF(a, 0, Options{Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := RunICFF(a, 0, Options{Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Completed || !m4.Completed {
		t.Fatalf("incomplete: %s / %s", m1, m4)
	}
	if m4.ScheduleLen >= m1.ScheduleLen {
		t.Fatalf("k=4 schedule %d not shorter than k=1 %d", m4.ScheduleLen, m1.ScheduleLen)
	}
	if m4.MaxAwake > m1.MaxAwake {
		t.Fatalf("k=4 awake %d worse than k=1 %d", m4.MaxAwake, m1.MaxAwake)
	}
}

func TestDFOStallsOnFailure(t *testing.T) {
	// Kill the second tour node right before it relays: the token is lost
	// and the remaining backbone never hears the payload (Section 3.3,
	// Robustness).
	a := buildAssigned(t, 9, 150, timeslot.ConditionStrict)
	bt := a.Net().Backbone()
	tour := bt.EulerTour(bt.Root())
	if len(tour) < 4 {
		t.Skip("backbone too small")
	}
	victim := tour[1]
	m, err := RunDFO(a.Net(), 0, Options{
		Failures:  []NodeFailure{{Node: victim, Round: 2}},
		MaxRounds: 4 * len(tour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed {
		t.Fatal("DFO completed despite token loss")
	}
}

func TestICFFSurvivesSameFailureBetter(t *testing.T) {
	a := buildAssigned(t, 9, 150, timeslot.ConditionStrict)
	bt := a.Net().Backbone()
	tour := bt.EulerTour(bt.Root())
	victim := tour[1]
	fail := []NodeFailure{{Node: victim, Round: 2}}
	icff, err := RunICFF(a, 0, Options{Failures: fail})
	if err != nil {
		t.Fatal(err)
	}
	dfo, err := RunDFO(a.Net(), 0, Options{Failures: fail, MaxRounds: 4 * len(tour)})
	if err != nil {
		t.Fatal(err)
	}
	if icff.Received < dfo.Received {
		t.Fatalf("ICFF delivered %d < DFO %d under identical failure", icff.Received, dfo.Received)
	}
	if icff.Received <= 1 {
		t.Fatalf("ICFF delivered almost nothing: %s", icff)
	}
}

func TestGuardedPlanMatchesUnguarded(t *testing.T) {
	a := buildAssigned(t, 14, 100, timeslot.ConditionStrict)
	g1, err := ICFFPlanGuarded(a, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ICFFPlan(a, 0, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g1.ScheduleLen != plain.ScheduleLen {
		t.Fatalf("guard=1 schedule %d != plain %d", g1.ScheduleLen, plain.ScheduleLen)
	}
	m, err := g1.Run(a.Net().Graph(), Options{})
	if err != nil || !m.Completed {
		t.Fatalf("guard=1 run: %v %s", err, m)
	}
}

func TestGuardToleratesSkew(t *testing.T) {
	a := buildAssigned(t, 15, 120, timeslot.ConditionStrict)
	g := a.Net().Graph()
	// Alternate +1/-1 offsets across nodes.
	skew := make(map[graph.NodeID]int)
	for i, id := range a.Net().Tree().Nodes() {
		skew[id] = (i%3 - 1) // -1, 0, +1
	}
	guarded, err := ICFFPlanGuarded(a, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := guarded.Run(g, Options{Skew: skew})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("guard=3 failed under skew 1: %s", m)
	}
	// Unguarded schedule under the same skew must lose nodes.
	plain, err := ICFFPlan(a, 0, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := plain.Run(g, Options{Skew: skew})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Completed {
		t.Fatalf("unguarded schedule survived skew: %s", mp)
	}
}

func TestGuardScheduleCost(t *testing.T) {
	a := buildAssigned(t, 16, 80, timeslot.ConditionStrict)
	p1, err := ICFFPlanGuarded(a, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := ICFFPlanGuarded(a, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p5.ScheduleLen <= p1.ScheduleLen {
		t.Fatalf("guard=5 schedule %d not above guard=1 %d", p5.ScheduleLen, p1.ScheduleLen)
	}
	// Cost is bounded by roughly (G+2) x the unguarded windows.
	if p5.ScheduleLen > 7*p1.ScheduleLen+10 {
		t.Fatalf("guard=5 schedule %d unreasonably large vs %d", p5.ScheduleLen, p1.ScheduleLen)
	}
}

func TestLinkFailureDegradesNotCrashes(t *testing.T) {
	a := buildAssigned(t, 17, 100, timeslot.ConditionStrict)
	tr := a.Net().Tree()
	// Cut the root's first child link before flooding starts.
	children := tr.Children(tr.Root())
	if len(children) == 0 {
		t.Skip("root has no children")
	}
	m, err := RunICFF(a, 0, Options{
		LinkFailures: []LinkFailure{{A: tr.Root(), B: children[0], Round: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Received == 0 {
		t.Fatal("nothing delivered at all")
	}
}

func TestSingleNodeBroadcasts(t *testing.T) {
	c := cnet.New(0, nil)
	a := timeslot.New(c, timeslot.ConditionStrict)
	for name, run := range map[string]func() (Metrics, error){
		"icff": func() (Metrics, error) { return RunICFF(a, 0, Options{}) },
		"cff":  func() (Metrics, error) { return RunCFF(a, 0, Options{}) },
		"dfo":  func() (Metrics, error) { return RunDFO(c, 0, Options{}) },
	} {
		m, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !m.Completed || m.Received != 1 {
			t.Fatalf("%s on singleton: %s", name, m)
		}
	}
}

func TestTwoNodeBroadcasts(t *testing.T) {
	c := cnet.New(0, nil)
	if _, _, err := c.MoveIn(1, []graph.NodeID{0}); err != nil {
		t.Fatal(err)
	}
	a := timeslot.New(c, timeslot.ConditionStrict)
	for _, src := range []graph.NodeID{0, 1} {
		for name, run := range map[string]func() (Metrics, error){
			"icff": func() (Metrics, error) { return RunICFF(a, src, Options{}) },
			"cff":  func() (Metrics, error) { return RunCFF(a, src, Options{}) },
			"dfo":  func() (Metrics, error) { return RunDFO(c, src, Options{}) },
		} {
			m, err := run()
			if err != nil {
				t.Fatalf("%s src=%d: %v", name, src, err)
			}
			if !m.Completed {
				t.Fatalf("%s src=%d incomplete: %s", name, src, m)
			}
		}
	}
}

func TestDeliveryRatio(t *testing.T) {
	m := Metrics{Audience: 4, Received: 3}
	if m.DeliveryRatio() != 0.75 {
		t.Fatalf("ratio = %v", m.DeliveryRatio())
	}
	if (Metrics{}).DeliveryRatio() != 1 {
		t.Fatal("empty audience ratio should be 1")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Protocol: "ICFF", Audience: 2, Received: 2}
	if m.String() == "" {
		t.Fatal("empty summary")
	}
}

// Property: on random paper deployments, ICFF, CFF (k in {1,2,3}) and DFO
// all complete, and ICFF's schedule never exceeds the Theorem 1 bound.
func TestProtocolsCompleteProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw uint8) bool {
		n := int(nRaw%80) + 2
		k := int(kRaw%3) + 1
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
		if err != nil {
			return false
		}
		c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
		if err != nil {
			return false
		}
		a := timeslot.New(c, timeslot.ConditionStrict)
		icff, err := RunICFF(a, 0, Options{Channels: k})
		if err != nil || !icff.Completed {
			return false
		}
		cff, err := RunCFF(a, 0, Options{Channels: k})
		if err != nil || !cff.Completed {
			return false
		}
		dfo, err := RunDFO(c, 0, Options{})
		if err != nil || !dfo.Completed {
			return false
		}
		hBT := c.Backbone().Height()
		bW := (a.SmallDelta() + k - 1) / k
		lW := (a.Delta() + k - 1) / k
		return icff.ScheduleLen <= hBT*bW+lW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
