package broadcast

import (
	"math/rand"
	"testing"

	"dynsens/internal/timeslot"
)

// boundInstances is how many randomized (size, seed) deployments each
// property below is checked on.
const boundInstances = 50

// ceilDiv is ceil(a/b) for positive ints.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// forEachInstance runs check on boundInstances randomized deployments. The
// instance stream itself is seeded, so failures reproduce exactly.
func forEachInstance(t *testing.T, check func(t *testing.T, a *timeslot.Assignment, n int, seed int64)) {
	t.Helper()
	rng := rand.New(rand.NewSource(0xb0))
	for i := 0; i < boundInstances; i++ {
		n := 30 + rng.Intn(110)
		seed := int64(1 + rng.Intn(10_000))
		a := buildAssigned(t, seed, n, timeslot.ConditionStrict)
		check(t, a, n, seed)
		if t.Failed() {
			t.Fatalf("bound violated on instance %d (n=%d seed=%d)", i, n, seed)
		}
	}
}

// TestCFFLemma1Bounds checks Lemma 1 on real instances: plain collision-free
// flooding from the root finishes within Delta_u*(h+1) rounds and keeps
// every node awake at most 2*Delta_u rounds, where Delta_u is the maximum
// unified time-slot and h the tree height.
func TestCFFLemma1Bounds(t *testing.T) {
	forEachInstance(t, func(t *testing.T, a *timeslot.Assignment, n int, seed int64) {
		m, err := RunCFF(a, a.Net().Root(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		deltaU := a.Max(timeslot.U)
		h := a.Net().Tree().Height()
		if !m.Completed {
			t.Errorf("CFF incomplete: %s", m)
		}
		if roundBound := deltaU * (h + 1); m.Rounds > roundBound {
			t.Errorf("CFF rounds %d > Delta_u*(h+1) = %d (Delta_u=%d h=%d)", m.Rounds, roundBound, deltaU, h)
		}
		if awakeBound := 2 * deltaU; m.MaxAwake > awakeBound {
			t.Errorf("CFF max awake %d > 2*Delta_u = %d", m.MaxAwake, awakeBound)
		}
	})
}

// TestICFFTheorem1Bounds checks Theorem 1 on real instances: the improved
// protocol finishes within delta*h_BT + Delta rounds with every node awake
// at most 2*delta + Delta rounds, where delta/Delta are the maximum b- and
// l-slots and h_BT the backbone height.
func TestICFFTheorem1Bounds(t *testing.T) {
	forEachInstance(t, func(t *testing.T, a *timeslot.Assignment, n int, seed int64) {
		m, err := RunICFF(a, a.Net().Root(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		delta, bigDelta := a.SmallDelta(), a.Delta()
		hBT := a.Net().Backbone().Height()
		if !m.Completed {
			t.Errorf("ICFF incomplete: %s", m)
		}
		if roundBound := delta*hBT + bigDelta; m.Rounds > roundBound {
			t.Errorf("ICFF rounds %d > delta*h+Delta = %d (delta=%d Delta=%d h=%d)",
				m.Rounds, roundBound, delta, bigDelta, hBT)
		}
		if awakeBound := 2*delta + bigDelta; m.MaxAwake > awakeBound {
			t.Errorf("ICFF max awake %d > 2delta+Delta = %d", m.MaxAwake, awakeBound)
		}
	})
}

// TestICFFMultiChannelBounds checks the k-channel refinement of Theorem 1:
// with k channels the windows shrink to ceil(delta/k) and ceil(Delta/k), so
// rounds stay within ceil(delta/k)*h_BT + ceil(Delta/k) and awake rounds
// within 2*ceil(delta/k) + ceil(Delta/k).
func TestICFFMultiChannelBounds(t *testing.T) {
	for _, k := range []int{2, 3} {
		forEachInstance(t, func(t *testing.T, a *timeslot.Assignment, n int, seed int64) {
			m, err := RunICFF(a, a.Net().Root(), Options{Channels: k})
			if err != nil {
				t.Fatal(err)
			}
			bW, lW := ceilDiv(a.SmallDelta(), k), ceilDiv(a.Delta(), k)
			hBT := a.Net().Backbone().Height()
			if !m.Completed {
				t.Errorf("ICFF/k=%d incomplete: %s", k, m)
			}
			if roundBound := bW*hBT + lW; m.Rounds > roundBound {
				t.Errorf("ICFF/k=%d rounds %d > ceil(delta/k)*h+ceil(Delta/k) = %d", k, m.Rounds, roundBound)
			}
			if awakeBound := 2*bW + lW; m.MaxAwake > awakeBound {
				t.Errorf("ICFF/k=%d max awake %d > 2*ceil(delta/k)+ceil(Delta/k) = %d", k, m.MaxAwake, awakeBound)
			}
		})
	}
}

// TestDFOBounds checks the comparison protocol's bound from [19]: the
// depth-first token tour from the root finishes within 4p-2 rounds, where p
// is the number of cluster heads.
func TestDFOBounds(t *testing.T) {
	forEachInstance(t, func(t *testing.T, a *timeslot.Assignment, n int, seed int64) {
		m, err := RunDFO(a.Net(), a.Net().Root(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := len(a.Net().Heads())
		if !m.Completed {
			t.Errorf("DFO incomplete: %s", m)
		}
		if roundBound := 4*p - 2; m.Rounds > roundBound {
			t.Errorf("DFO rounds %d > 4p-2 = %d (p=%d)", m.Rounds, roundBound, p)
		}
	})
}
