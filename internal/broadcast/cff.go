package broadcast

import (
	"fmt"

	"dynsens/internal/flight"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
	"dynsens/internal/timeslot"
)

// CFFPlan builds the plain Collision-Free Flooding schedule (Algorithm 1):
// after the source-to-root preamble, the payload floods CNet(G) one depth
// per window; internal nodes at depth i transmit in window i at their
// u-time-slot, and every node at depth j listens in window j-1 until it
// receives. The schedule is Delta_u * h rounds after the preamble.
func CFFPlan(a *timeslot.Assignment, source graph.NodeID, k int) (*Plan, error) {
	net := a.Net()
	tr := net.Tree()
	if !tr.Contains(source) {
		return nil, fmt.Errorf("broadcast: source %d not in network", source)
	}
	depth := tr.DepthMap()
	h := tr.Height()
	uW := windowWidth(a.Max(timeslot.U), k)

	progs := make(map[graph.NodeID]radio.Program, tr.Size())
	for _, id := range tr.Nodes() {
		progs[id] = &floodNode{id: id, startHas: id == source}
	}
	node := func(id graph.NodeID) *floodNode { return progs[id].(*floodNode) }

	path := tr.PathToRoot(source)
	pre := len(path) - 1
	for j, id := range path {
		if j >= 1 {
			node(id).listens = append(node(id).listens, listenPlan{Lo: j, Hi: j, Ch: 0})
		}
		if j < pre {
			node(id).txs = append(node(id).txs, txPlan{
				Round: j + 1, Ch: 0,
				Msg: radio.Message{Seq: payloadSeq, Src: source, Dst: path[j+1], Depth: depth[id]},
			})
		}
	}

	for _, id := range tr.Nodes() {
		d := depth[id]
		if a.IsTransmitter(timeslot.U, id) {
			slot, _ := a.Slot(timeslot.U, id)
			node(id).txs = append(node(id).txs, txPlan{
				Round: pre + d*uW + slotRound(slot, k),
				Ch:    slotChannel(slot, k),
				Msg: radio.Message{Seq: payloadSeq, Src: source, Dst: radio.NoNode,
					Slot: slot, Depth: d, MaxSlot: a.Max(timeslot.U), Height: h},
			})
		}
		if a.IsReceiver(timeslot.U, id) {
			ch := radio.Channel(0)
			if _, slot, ok := a.Designated(timeslot.U, id); ok {
				ch = slotChannel(slot, k)
			}
			node(id).listens = append(node(id).listens, listenPlan{
				Lo: pre + (d-1)*uW + 1, Hi: pre + d*uW, Ch: ch,
			})
		}
	}

	aud := tr.Nodes()
	sched := pre + h*uW
	var phases []flight.Phase
	if pre > 0 {
		phases = append(phases, flight.Phase{Name: "preamble", Lo: 1, Hi: pre})
	}
	if sched > pre {
		phases = append(phases, flight.Phase{Name: "cnet-flood", Lo: pre + 1, Hi: sched})
	}
	return &Plan{Protocol: "CFF", ScheduleLen: sched, Programs: progs, Audience: aud, Phases: phases}, nil
}

// RunCFF builds and runs Algorithm 1.
func RunCFF(a *timeslot.Assignment, source graph.NodeID, opts Options) (Metrics, error) {
	plan, err := CFFPlan(a, source, opts.channels())
	if err != nil {
		return Metrics{}, err
	}
	return plan.Run(a.Net().Graph(), opts)
}
