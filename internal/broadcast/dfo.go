package broadcast

import (
	"fmt"

	"dynsens/internal/cnet"
	"dynsens/internal/flight"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// dfoNode runs the depth-first-order baseline of [19]: a single token walks
// the Eulerian tour of BT(G); the token holder is the only transmitter in
// its round. Every node stays awake (listening) for the whole tour — it has
// no way to know when the broadcast ends, which is exactly the energy
// weakness the paper attacks — and pure members pick the payload up when
// their head transmits.
//
// Contract compliance (radio.Program): the tour tables are written only at
// build time; run-time state (payload, token arrivals, curRound) is
// node-private. Done is pure and monotone: curRound only grows. Enforced
// statically by dynlint/progpurity via the assertion below.
type dfoNode struct {
	id      graph.NodeID
	tourEnd int
	// txRounds maps a scheduled transmission round to the token target.
	txRounds map[int]graph.NodeID
	// starts marks rounds in which this node may transmit without having
	// received a token (the source's first move).
	starts map[int]bool

	hasPayload    bool
	receivedRound int
	startHas      bool
	tokenAt       map[int]bool // rounds in which a token addressed to us arrived
	curRound      int
}

var _ radio.Program = (*dfoNode)(nil)

func (p *dfoNode) Received() (bool, int) {
	if p.startHas {
		return true, 0
	}
	return p.hasPayload, p.receivedRound
}

func (p *dfoNode) Act(round int) radio.Action {
	p.curRound = round
	if round > p.tourEnd {
		return radio.SleepAction()
	}
	if dst, ok := p.txRounds[round]; ok {
		authorized := p.starts[round] || p.tokenAt[round-1]
		if authorized && (p.hasPayload || p.startHas) {
			return radio.TransmitOn(0, radio.Message{Seq: payloadSeq, Dst: dst})
		}
	}
	return radio.ListenOn(0)
}

func (p *dfoNode) Deliver(round int, msg radio.Message) {
	if msg.Seq == payloadSeq && !p.hasPayload && !p.startHas {
		p.hasPayload = true
		p.receivedRound = round
	}
	if msg.Dst == p.id {
		p.tokenAt[round] = true
	}
}

func (p *dfoNode) Done() bool { return p.curRound >= p.tourEnd }

// DFOPlan builds the depth-first-order broadcast of [19]. The payload
// travels an Eulerian tour of the backbone starting at the source (a member
// source first hands the payload to its cluster head). Exactly one node
// transmits per round, so the tour takes 2(|BT|-1) rounds (at most 4p-2)
// plus the member hop, and a single node or link failure stalls the token.
func DFOPlan(net *cnet.CNet, source graph.NodeID) (*Plan, error) {
	tr := net.Tree()
	if !tr.Contains(source) {
		return nil, fmt.Errorf("broadcast: source %d not in network", source)
	}
	bt := net.Backbone()

	progs := make(map[graph.NodeID]radio.Program, tr.Size())
	mk := func(id graph.NodeID) *dfoNode {
		return &dfoNode{
			id:       id,
			txRounds: make(map[int]graph.NodeID),
			starts:   make(map[int]bool),
			tokenAt:  make(map[int]bool),
		}
	}
	for _, id := range tr.Nodes() {
		progs[id] = mk(id)
	}
	node := func(id graph.NodeID) *dfoNode { return progs[id].(*dfoNode) }
	node(source).startHas = true

	tourStart := 1
	tourNode := source
	if st, _ := net.Status(source); st == cnet.Member {
		// Hand the payload to the head first.
		head, _ := tr.Parent(source)
		node(source).txRounds[1] = head
		node(source).starts[1] = true
		tourStart = 2
		tourNode = head
	}
	tour := bt.EulerTour(tourNode)
	for p := 0; p+1 < len(tour); p++ {
		r := tourStart + p
		n := node(tour[p])
		n.txRounds[r] = tour[p+1]
		if p == 0 {
			// The tour head is authorized by holding the payload: either
			// it is the source itself or it receives the member's hop in
			// round 1 (tokenAt covers that case).
			n.starts[r] = tour[p] == source
		}
	}
	tourEnd := tourStart + len(tour) - 2
	if len(tour) <= 1 {
		// Backbone of one node: only the member hop (if any) matters.
		tourEnd = tourStart - 1
		if tourEnd < 1 && tr.Size() > 1 {
			// Root-only backbone with members but source == root: the root
			// must still transmit once so members hear the payload.
			n := node(tourNode)
			n.txRounds[1] = radio.NoNode
			n.starts[1] = true
			tourEnd = 1
		}
	}
	if tourStart == 2 && len(tour) <= 1 && tr.Size() > 1 {
		// Member source whose head is the whole backbone: the head
		// rebroadcasts once for the other members.
		n := node(tourNode)
		n.txRounds[2] = radio.NoNode
		tourEnd = 2
	}
	for _, id := range tr.Nodes() {
		node(id).tourEnd = tourEnd
	}

	var phases []flight.Phase
	if tourEnd >= 1 {
		phases = append(phases, flight.Phase{Name: "token-tour", Lo: 1, Hi: tourEnd})
	}
	return &Plan{
		Protocol:    "DFO",
		ScheduleLen: tourEnd,
		Programs:    progs,
		Audience:    tr.Nodes(),
		Phases:      phases,
	}, nil
}

// RunDFO builds and runs the baseline.
func RunDFO(net *cnet.CNet, source graph.NodeID, opts Options) (Metrics, error) {
	plan, err := DFOPlan(net, source)
	if err != nil {
		return Metrics{}, err
	}
	return plan.Run(net.Graph(), opts)
}
