package broadcast

import (
	"bytes"
	"testing"

	"dynsens/internal/graph"
	"dynsens/internal/radio"
	"dynsens/internal/timeslot"
)

// TestPerfDoesNotPerturb is the hard constraint of the perf introspection
// layer, enforced end to end: attaching a radio.Perf collector must not
// change anything the simulation produces. A full ICFF run — with loss,
// failures, link cuts and skew in the mix — must yield byte-identical
// trace streams, byte-identical .dsfr flight recordings and identical
// metrics with perf enabled and disabled, at workers 1 (inline path) and
// 4 (worker-pool path with pprof labels).
func TestPerfDoesNotPerturb(t *testing.T) {
	a := buildAssigned(t, 5, 140, timeslot.ConditionStrict)
	g := a.Net().Graph()
	nodes := g.Nodes()
	build := func() (*Plan, *graph.Graph) {
		plan, err := ICFFPlan(a, 0, 2, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return plan, g
	}
	base := Options{
		Channels: 2,
		LossRate: 0.25, LossSeed: 99,
		Failures:     []NodeFailure{{Node: nodes[len(nodes)/2], Round: 3}, {Node: nodes[len(nodes)/3], Round: 5}},
		LinkFailures: []LinkFailure{{A: nodes[1], B: nodes[2], Round: 2}},
		Skew:         map[graph.NodeID]int{nodes[4]: 1, nodes[7]: -1},
	}
	for _, workers := range []int{1, 4} {
		off := base
		wantM, wantTrace, wantFlight := runRecorded(t, build, off, workers)

		on := base
		perf := radio.NewPerf()
		on.Perf = perf
		gotM, gotTrace, gotFlight := runRecorded(t, build, on, workers)

		if gotM.String() != wantM.String() {
			t.Fatalf("workers=%d: perf on/off metrics diverge:\n got %s\nwant %s", workers, gotM, wantM)
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("workers=%d: perf on/off trace streams diverge", workers)
		}
		if !bytes.Equal(gotFlight, wantFlight) {
			t.Fatalf("workers=%d: perf on/off flight recordings diverge (%d vs %d bytes)",
				workers, len(gotFlight), len(wantFlight))
		}

		// The collector must actually have observed the run it rode along.
		snap := perf.Snapshot()
		if snap.Runs != 1 {
			t.Fatalf("workers=%d: perf runs = %d, want 1", workers, snap.Runs)
		}
		if snap.Rounds <= 0 || snap.Events <= 0 || snap.WallNs <= 0 {
			t.Fatalf("workers=%d: empty perf snapshot: %+v", workers, snap)
		}
		if len(snap.ShardBusyNs) != workers {
			t.Fatalf("workers=%d: %d shard accumulators", workers, len(snap.ShardBusyNs))
		}
	}
}
