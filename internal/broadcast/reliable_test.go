package broadcast

import (
	"testing"

	"dynsens/internal/timeslot"
)

func TestLossDegradesSingleRun(t *testing.T) {
	a := buildAssigned(t, 23, 200, timeslot.ConditionStrict)
	clean, err := RunICFF(a, 0, Options{})
	if err != nil || !clean.Completed {
		t.Fatalf("clean run: %v %s", err, clean)
	}
	lossy, err := RunICFF(a, 0, Options{LossRate: 0.3, LossSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Received >= clean.Received {
		t.Fatalf("loss had no effect: %d vs %d", lossy.Received, clean.Received)
	}
}

func TestReliableRepetitionRecovers(t *testing.T) {
	a := buildAssigned(t, 23, 200, timeslot.ConditionStrict)
	// Seed-sensitive threshold: 4 is a representative draw under the
	// counter-stream coin scheme (most seeds land 0.93–0.99 here; the
	// distribution, not one seed, is what the 0.95 bound speaks to).
	single, err := RunReliable(a, 0, 1, Options{LossRate: 0.3, LossSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunReliable(a, 0, 6, Options{LossRate: 0.3, LossSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Received <= single.Received {
		t.Fatalf("repetitions did not help: %d vs %d", multi.Received, single.Received)
	}
	if multi.DeliveryRatio() < 0.95 {
		t.Fatalf("six repetitions at 30%% loss delivered only %.3f", multi.DeliveryRatio())
	}
	// Cost scales with repetitions actually executed.
	if multi.ScheduleLen <= single.ScheduleLen {
		t.Fatalf("schedule did not grow: %d vs %d", multi.ScheduleLen, single.ScheduleLen)
	}
}

func TestReliableNoLossStopsEarly(t *testing.T) {
	a := buildAssigned(t, 24, 100, timeslot.ConditionStrict)
	m, err := RunReliable(a, 0, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("lossless reliable run incomplete: %s", m)
	}
	// With zero loss the first repetition finishes the job: the schedule
	// must equal a single run's.
	one, err := RunICFF(a, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.ScheduleLen != one.ScheduleLen {
		t.Fatalf("reliable ran extra repetitions without loss: %d vs %d", m.ScheduleLen, one.ScheduleLen)
	}
}

func TestReliableRejectsBadRepeats(t *testing.T) {
	a := buildAssigned(t, 24, 20, timeslot.ConditionStrict)
	if _, err := RunReliable(a, 0, 0, Options{}); err == nil {
		t.Fatal("repeats=0 accepted")
	}
}

func TestLossRateValidation(t *testing.T) {
	a := buildAssigned(t, 24, 20, timeslot.ConditionStrict)
	if _, err := RunICFF(a, 0, Options{LossRate: 1.5}); err == nil {
		t.Fatal("loss rate 1.5 accepted")
	}
}

func TestLossDeterministicPerSeed(t *testing.T) {
	a := buildAssigned(t, 25, 100, timeslot.ConditionStrict)
	m1, err := RunICFF(a, 0, Options{LossRate: 0.2, LossSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunICFF(a, 0, Options{LossRate: 0.2, LossSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Received != m2.Received || m1.Collisions != m2.Collisions {
		t.Fatalf("loss not deterministic: %s vs %s", m1, m2)
	}
}
