package broadcast

import (
	"testing"

	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
	"dynsens/internal/workload"
)

func TestPFloodOnPath(t *testing.T) {
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.AddNode(graph.NodeID(i))
	}
	for i := 1; i < 5; i++ {
		_ = g.AddEdge(graph.NodeID(i-1), graph.NodeID(i))
	}
	// Forward=1 on a path: no two forwarders share a receiver except
	// consecutive ones; with backoff it usually completes.
	m, err := RunPFlood(g, 0, PFloodOptions{Seed: 3, Forward: 1, MaxDelay: 3, Horizon: 60})
	if err != nil {
		t.Fatal(err)
	}
	if m.Received < 3 {
		t.Fatalf("path flood reached only %d/5: %s", m.Received, m)
	}
}

func TestPFloodErrors(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	if _, err := RunPFlood(g, 7, PFloodOptions{Forward: 0.5}); err == nil {
		t.Fatal("absent source accepted")
	}
	if _, err := RunPFlood(g, 0, PFloodOptions{Forward: 1.5}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestPFloodZeroForwardOnlySourceNeighborhood(t *testing.T) {
	a := buildAssigned(t, 11, 80, timeslot.ConditionStrict)
	g := a.Net().Graph()
	m, err := RunPFlood(g, 0, PFloodOptions{Seed: 1, Forward: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Only the source's neighbors (and the source) can have the payload.
	want := g.Degree(0) + 1
	if m.Received > want {
		t.Fatalf("received %d with forwarding disabled (max %d)", m.Received, want)
	}
}

func TestPFloodBroadcastStorm(t *testing.T) {
	// Dense deployment, blind flooding with tiny backoff: collisions
	// must appear in bulk, and delivery typically stays incomplete —
	// the broadcast-storm problem the paper's clustering avoids.
	a := buildAssigned(t, 13, 250, timeslot.ConditionStrict)
	g := a.Net().Graph()
	m, err := RunPFlood(g, 0, PFloodOptions{Seed: 1, Forward: 1, MaxDelay: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Collisions == 0 {
		t.Fatalf("blind flooding produced no collisions: %s", m)
	}
	// Structured CFF on the same graph delivers everyone.
	cff, err := RunICFF(a, 0, Options{})
	if err != nil || !cff.Completed {
		t.Fatalf("CFF failed: %v %s", err, cff)
	}
	if m.Received > cff.Received {
		t.Fatalf("flooding outdelivered CFF: %d vs %d", m.Received, cff.Received)
	}
	// Unstructured nodes listen for the whole horizon: awake cost far
	// above CFF's.
	if m.MaxAwake <= cff.MaxAwake {
		t.Fatalf("flood awake %d not above CFF %d", m.MaxAwake, cff.MaxAwake)
	}
}

func TestRoundRobinCompletes(t *testing.T) {
	a := buildAssigned(t, 19, 120, timeslot.ConditionStrict)
	g := a.Net().Graph()
	m, err := RunRoundRobin(g, 0, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatalf("round robin incomplete: %s", m)
	}
	if m.Collisions != 0 {
		t.Fatalf("round robin collided %d times", m.Collisions)
	}
	// It is far slower than structured CFF.
	cff, err := RunICFF(a, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.CompletionRound <= cff.CompletionRound {
		t.Fatalf("RR completion %d not above CFF %d", m.CompletionRound, cff.CompletionRound)
	}
}

func TestRoundRobinErrors(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	if _, err := RunRoundRobin(g, 9, 0, Options{}); err == nil {
		t.Fatal("absent source accepted")
	}
}

func TestRoundRobinSingleNode(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	m, err := RunRoundRobin(g, 0, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed || m.Received != 1 {
		t.Fatalf("singleton RR: %s", m)
	}
}

func TestPFloodDeterministicPerSeed(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(5, 8, 60))
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph()
	m1, err := RunPFlood(g, 0, PFloodOptions{Seed: 9, Forward: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunPFlood(g, 0, PFloodOptions{Seed: 9, Forward: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Received != m2.Received || m1.Collisions != m2.Collisions {
		t.Fatalf("non-deterministic: %s vs %s", m1, m2)
	}
}
