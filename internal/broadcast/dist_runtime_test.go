package broadcast

import (
	"bytes"
	"testing"

	"dynsens/internal/dist"
	"dynsens/internal/flight"
	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
)

// TestDistRuntimeByteIdentical is the cross-runtime arm of the determinism
// proof: the same plan under Runtime: dist must produce the same metrics,
// byte-identical trace streams and byte-identical .dsfr recordings as the
// in-process kernel — including with failures, link cuts, loss and skew in
// the mix.
func TestDistRuntimeByteIdentical(t *testing.T) {
	a := buildAssigned(t, 5, 140, timeslot.ConditionStrict)
	g := a.Net().Graph()
	nodes := g.Nodes()
	cases := []struct {
		name  string
		build func() (*Plan, *graph.Graph)
		opts  Options
	}{
		{
			name: "icff",
			build: func() (*Plan, *graph.Graph) {
				plan, err := ICFFPlan(a, 0, 1, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{},
		},
		{
			name: "icff-loss-failures-skew",
			build: func() (*Plan, *graph.Graph) {
				plan, err := ICFFPlan(a, 0, 2, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{
				Channels: 2,
				LossRate: 0.25, LossSeed: 99,
				Failures:     []NodeFailure{{Node: nodes[len(nodes)/2], Round: 3}, {Node: nodes[len(nodes)/3], Round: 5}},
				LinkFailures: []LinkFailure{{A: nodes[1], B: nodes[2], Round: 2}},
				Skew:         map[graph.NodeID]int{nodes[4]: 1, nodes[7]: -1},
			},
		},
		{
			name: "dfo-loss",
			build: func() (*Plan, *graph.Graph) {
				plan, err := DFOPlan(a.Net(), 0)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{LossRate: 0.1, LossSeed: 7},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kOpts := tc.opts
			kOpts.Runtime = RuntimeKernel
			wantM, wantTrace, wantFlight := runRecorded(t, tc.build, kOpts, 0)

			dOpts := tc.opts
			dOpts.Runtime = RuntimeDist
			gotM, gotTrace, gotFlight := runRecorded(t, tc.build, dOpts, 0)

			if gotM.String() != wantM.String() {
				t.Fatalf("metrics diverge:\n dist   %s\n kernel %s", gotM, wantM)
			}
			if !bytes.Equal(gotTrace, wantTrace) {
				t.Fatalf("trace stream diverges between runtimes")
			}
			if !bytes.Equal(gotFlight, wantFlight) {
				t.Fatalf("flight recording diverges between runtimes (%d vs %d bytes)",
					len(gotFlight), len(wantFlight))
			}
		})
	}
}

// TestDistRuntimeNemesisVerifies runs the loss/partition/churn nemesis
// suite under the distributed runtime and checks that every recording
// still passes the offline flight verifier: scripted faults must leave a
// verifiable event trail (partition drops as losses, crashes as node
// failures), not silent divergence.
func TestDistRuntimeNemesisVerifies(t *testing.T) {
	a := buildAssigned(t, 5, 140, timeslot.ConditionStrict)
	g := a.Net().Graph()
	nodes := g.Nodes()
	side := append([]graph.NodeID(nil), nodes[:len(nodes)/3]...)
	cases := []struct {
		name    string
		opts    Options
		nemesis dist.Nemesis
	}{
		{
			name: "loss",
			opts: Options{LossRate: 0.3, LossSeed: 5},
		},
		{
			name:    "partition-heals",
			nemesis: dist.Nemesis{Partitions: []dist.Partition{{From: 3, To: 6, Side: side}}},
		},
		{
			name: "churn-crashes",
			nemesis: dist.Nemesis{Crashes: []dist.Crash{
				{Node: nodes[len(nodes)/4], Round: 4},
				{Node: nodes[len(nodes)/2], Round: 7},
			}},
		},
		{
			name: "all-at-once",
			opts: Options{LossRate: 0.15, LossSeed: 11},
			nemesis: dist.Nemesis{
				Partitions: []dist.Partition{{From: 2, To: 4, Side: side}},
				Crashes:    []dist.Crash{{Node: nodes[len(nodes)-2], Round: 5}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.Runtime = RuntimeDist
			opts.Nemesis = &tc.nemesis
			build := func() (*Plan, *graph.Graph) {
				plan, err := ICFFPlan(a, 0, 1, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			}
			_, _, recording := runRecorded(t, build, opts, 0)
			rec, err := flight.DecodeBytes(recording)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range flight.Verify(rec).Checks {
				if c.Err != nil {
					t.Errorf("flight verifier check %s failed on nemesis recording: %v", c.Name, c.Err)
				}
			}
		})
	}
}
