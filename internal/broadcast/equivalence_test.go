package broadcast

import (
	"bytes"
	"fmt"
	"testing"

	"dynsens/internal/flight"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
	"dynsens/internal/timeslot"
)

// runRecorded executes one protocol run at the given engine worker count,
// capturing both the serialized trace stream and the complete .dsfr flight
// recording. The plan is rebuilt per call so program state never leaks
// between runs.
func runRecorded(t *testing.T, build func() (*Plan, *graph.Graph), opts Options, workers int) (Metrics, []byte, []byte) {
	t.Helper()
	plan, g := build()
	var traceBuf, flightBuf bytes.Buffer
	fw := flight.NewWriter(&flightBuf)
	fw.WriteHeader(flight.Header{Seed: 1, N: g.NumNodes(), Protocol: plan.Protocol,
		LossRate: opts.LossRate, LossSeed: opts.LossSeed})
	opts.Workers = workers
	opts.Trace = func(ev radio.Event) { fmt.Fprintf(&traceBuf, "%+v\n", ev) }
	opts.Flight = fw
	m, err := plan.Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return m, traceBuf.Bytes(), flightBuf.Bytes()
}

// TestRunByteIdenticalAcrossWorkers is the protocol-level arm of the
// determinism proof: a full ICFF, CFF and DFO run — with failures, loss
// and skew in the mix — must produce byte-identical trace streams and
// byte-identical .dsfr flight recordings at every engine worker count.
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	a := buildAssigned(t, 5, 140, timeslot.ConditionStrict)
	g := a.Net().Graph()
	nodes := g.Nodes()
	cases := []struct {
		name  string
		build func() (*Plan, *graph.Graph)
		opts  Options
	}{
		{
			name: "icff",
			build: func() (*Plan, *graph.Graph) {
				plan, err := ICFFPlan(a, 0, 1, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{},
		},
		{
			name: "icff-loss-failures",
			build: func() (*Plan, *graph.Graph) {
				plan, err := ICFFPlan(a, 0, 2, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{
				Channels: 2,
				LossRate: 0.25, LossSeed: 99,
				Failures:     []NodeFailure{{Node: nodes[len(nodes)/2], Round: 3}, {Node: nodes[len(nodes)/3], Round: 5}},
				LinkFailures: []LinkFailure{{A: nodes[1], B: nodes[2], Round: 2}},
				Skew:         map[graph.NodeID]int{nodes[4]: 1, nodes[7]: -1},
			},
		},
		{
			name: "cff",
			build: func() (*Plan, *graph.Graph) {
				plan, err := CFFPlan(a, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{},
		},
		{
			name: "dfo",
			build: func() (*Plan, *graph.Graph) {
				plan, err := DFOPlan(a.Net(), 0)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{LossRate: 0.1, LossSeed: 7},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantM, wantTrace, wantFlight := runRecorded(t, tc.build, tc.opts, 1)
			for _, w := range []int{2, 4, 9} {
				gotM, gotTrace, gotFlight := runRecorded(t, tc.build, tc.opts, w)
				if gotM.String() != wantM.String() {
					t.Fatalf("workers=%d metrics diverge:\n got %s\nwant %s", w, gotM, wantM)
				}
				if !bytes.Equal(gotTrace, wantTrace) {
					t.Fatalf("workers=%d trace stream diverges", w)
				}
				if !bytes.Equal(gotFlight, wantFlight) {
					t.Fatalf("workers=%d flight recording diverges (%d vs %d bytes)",
						w, len(gotFlight), len(wantFlight))
				}
			}
		})
	}
}
