package broadcast

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"dynsens/internal/flight"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
	"dynsens/internal/timeslot"
	"dynsens/internal/trace"
)

// runRecorded executes one protocol run at the given engine worker count,
// capturing both the serialized trace stream and the complete .dsfr flight
// recording. The plan is rebuilt per call so program state never leaks
// between runs.
func runRecorded(t *testing.T, build func() (*Plan, *graph.Graph), opts Options, workers int) (Metrics, []byte, []byte) {
	t.Helper()
	plan, g := build()
	var traceBuf, flightBuf bytes.Buffer
	fw := flight.NewWriter(&flightBuf)
	fw.WriteHeader(flight.Header{Seed: 1, N: g.NumNodes(), Protocol: plan.Protocol,
		LossRate: opts.LossRate, LossSeed: opts.LossSeed})
	opts.Workers = workers
	opts.Trace = func(ev radio.Event) { fmt.Fprintf(&traceBuf, "%+v\n", ev) }
	opts.Flight = fw
	m, err := plan.Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return m, traceBuf.Bytes(), flightBuf.Bytes()
}

// TestRunByteIdenticalAcrossWorkers is the protocol-level arm of the
// determinism proof: a full ICFF, CFF and DFO run — with failures, loss
// and skew in the mix — must produce byte-identical trace streams and
// byte-identical .dsfr flight recordings at every engine worker count.
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	a := buildAssigned(t, 5, 140, timeslot.ConditionStrict)
	g := a.Net().Graph()
	nodes := g.Nodes()
	cases := []struct {
		name  string
		build func() (*Plan, *graph.Graph)
		opts  Options
	}{
		{
			name: "icff",
			build: func() (*Plan, *graph.Graph) {
				plan, err := ICFFPlan(a, 0, 1, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{},
		},
		{
			name: "icff-loss-failures",
			build: func() (*Plan, *graph.Graph) {
				plan, err := ICFFPlan(a, 0, 2, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{
				Channels: 2,
				LossRate: 0.25, LossSeed: 99,
				Failures:     []NodeFailure{{Node: nodes[len(nodes)/2], Round: 3}, {Node: nodes[len(nodes)/3], Round: 5}},
				LinkFailures: []LinkFailure{{A: nodes[1], B: nodes[2], Round: 2}},
				Skew:         map[graph.NodeID]int{nodes[4]: 1, nodes[7]: -1},
			},
		},
		{
			name: "cff",
			build: func() (*Plan, *graph.Graph) {
				plan, err := CFFPlan(a, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{},
		},
		{
			name: "dfo",
			build: func() (*Plan, *graph.Graph) {
				plan, err := DFOPlan(a.Net(), 0)
				if err != nil {
					t.Fatal(err)
				}
				return plan, g
			},
			opts: Options{LossRate: 0.1, LossSeed: 7},
		},
	}
	workerSet := []int{2, 3, 8, runtime.NumCPU()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantM, wantTrace, wantFlight := runRecorded(t, tc.build, tc.opts, 1)
			for _, w := range workerSet {
				gotM, gotTrace, gotFlight := runRecorded(t, tc.build, tc.opts, w)
				if gotM.String() != wantM.String() {
					t.Fatalf("workers=%d metrics diverge:\n got %s\nwant %s", w, gotM, wantM)
				}
				if !bytes.Equal(gotTrace, wantTrace) {
					t.Fatalf("workers=%d trace stream diverges", w)
				}
				if !bytes.Equal(gotFlight, wantFlight) {
					t.Fatalf("workers=%d flight recording diverges (%d vs %d bytes)",
						w, len(gotFlight), len(wantFlight))
				}
			}
		})
	}
}

// TestRunByteIdenticalRingRecorder repeats the byte-identity check with a
// bounded ring flight writer and a batch-hooked trace recorder in the
// loop: eviction order and the batched sink path must themselves be
// deterministic across worker counts.
func TestRunByteIdenticalRingRecorder(t *testing.T) {
	a := buildAssigned(t, 5, 140, timeslot.ConditionStrict)
	g := a.Net().Graph()
	opts := Options{LossRate: 0.2, LossSeed: 17}
	run := func(workers int) ([]byte, []radio.Event, int) {
		plan, err := ICFFPlan(a, 0, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var flightBuf bytes.Buffer
		fw := flight.NewRingWriter(&flightBuf, 24)
		fw.WriteHeader(flight.Header{Seed: 1, N: g.NumNodes(), Protocol: plan.Protocol,
			LossRate: opts.LossRate, LossSeed: opts.LossSeed})
		rec := trace.NewRecorder(40)
		o := opts
		o.Workers = workers
		o.TraceBatch = rec.BatchHook()
		o.Flight = fw
		if _, err := plan.Run(g, o); err != nil {
			t.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		evs := make([]radio.Event, len(rec.Events()))
		copy(evs, rec.Events())
		return flightBuf.Bytes(), evs, rec.Dropped()
	}
	wantFlight, wantEvs, wantDropped := run(1)
	if wantDropped == 0 {
		t.Fatal("recorder limit never hit; ring/drop paths not exercised")
	}
	for _, w := range []int{2, 3, 8, runtime.NumCPU()} {
		gotFlight, gotEvs, gotDropped := run(w)
		if !bytes.Equal(gotFlight, wantFlight) {
			t.Fatalf("workers=%d ring recording diverges", w)
		}
		if !reflect.DeepEqual(gotEvs, wantEvs) || gotDropped != wantDropped {
			t.Fatalf("workers=%d recorder diverges (%d events, %d dropped vs %d, %d)",
				w, len(gotEvs), gotDropped, len(wantEvs), wantDropped)
		}
	}
}
