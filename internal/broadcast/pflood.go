package broadcast

import (
	"fmt"
	"math/rand"

	"dynsens/internal/graph"
	"dynsens/internal/obs"
	"dynsens/internal/radio"
)

// PFloodOptions tune the unstructured probabilistic flooding baseline.
type PFloodOptions struct {
	// Seed drives the per-node coin flips.
	Seed int64
	// Rand, when non-nil, supplies the coin flips instead of Seed.
	Rand *rand.Rand
	// Forward is the rebroadcast probability (1 = blind flooding, the
	// "broadcast storm" regime of Ni et al. [16]).
	Forward float64
	// MaxDelay is the random backoff: a forwarding node retransmits
	// uniformly within [1, MaxDelay] rounds after first reception.
	// Default 4.
	MaxDelay int
	// Horizon is how many rounds nodes keep listening; unstructured
	// nodes cannot know when the broadcast ends. Default 4*diameter-ish:
	// 6*sqrt(n)+20.
	Horizon int
	// Failures are node deaths to inject.
	Failures []NodeFailure
	// Obs, when non-nil, receives run instrumentation under
	// protocol="PFLOOD" (see broadcast.Options.Obs).
	Obs *obs.Registry
}

// pfloodNode implements reactive probabilistic flooding on a flat network:
// listen until the payload arrives, maybe rebroadcast once after a random
// backoff, and keep listening until the horizon (there is no structure to
// say when it is safe to sleep — the energy cost the paper's clustering
// removes).
//
// Contract compliance (radio.Program): the forwarding coin and backoff are
// drawn at build time, so run-time state is node-private; Done is a pure
// monotone horizon threshold. Enforced statically by dynlint/progpurity
// via the assertion below.
type pfloodNode struct {
	id       graph.NodeID
	src      graph.NodeID
	startHas bool
	horizon  int
	forward  bool
	delay    int

	received      bool
	receivedRound int
	txRound       int
	cur           int
}

var _ radio.Program = (*pfloodNode)(nil)

func (p *pfloodNode) Received() (bool, int) {
	if p.startHas {
		return true, 0
	}
	return p.received, p.receivedRound
}

func (p *pfloodNode) Act(round int) radio.Action {
	p.cur = round
	if round > p.horizon {
		return radio.SleepAction()
	}
	if p.txRound == round {
		// Src carries the payload's origin (not the rebroadcaster): every
		// copy of one payload must share its (Seq, Src) identity so causal
		// tooling (flight span traces) can stitch the relay DAG together.
		return radio.TransmitOn(0, radio.Message{Seq: payloadSeq, Src: p.src, Dst: radio.NoNode})
	}
	return radio.ListenOn(0)
}

func (p *pfloodNode) Deliver(round int, msg radio.Message) {
	if msg.Seq != payloadSeq || p.received || p.startHas {
		return
	}
	p.received = true
	p.receivedRound = round
	if p.forward {
		p.txRound = round + p.delay
	}
}

func (p *pfloodNode) Done() bool { return p.cur >= p.horizon }

// PFloodPlan builds the unstructured baseline over a flat graph: no
// clusters, no slots, no schedule — just probabilistic re-flooding. It is
// the comparison point for the broadcast-storm problem the introduction
// cites: at Forward=1 with small MaxDelay, dense networks collide so much
// that delivery collapses.
func PFloodPlan(g *graph.Graph, source graph.NodeID, opts PFloodOptions) (*Plan, error) {
	if !g.HasNode(source) {
		return nil, fmt.Errorf("broadcast: source %d not in graph", source)
	}
	if opts.Forward < 0 || opts.Forward > 1 {
		return nil, fmt.Errorf("broadcast: forward probability %v out of [0,1]", opts.Forward)
	}
	maxDelay := opts.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 4
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		n := g.NumNodes()
		horizon = 20
		for s := 1; s*s < n; s++ {
			horizon = 6*s + 20
		}
	}
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	progs := make(map[graph.NodeID]radio.Program, g.NumNodes())
	for _, id := range g.Nodes() {
		p := &pfloodNode{
			id:       id,
			src:      source,
			horizon:  horizon,
			startHas: id == source,
			forward:  rng.Float64() < opts.Forward,
			delay:    1 + rng.Intn(maxDelay),
		}
		if p.startHas {
			p.txRound = 1 // the source always transmits immediately
		}
		progs[id] = p
	}
	return &Plan{
		Protocol:    "PFLOOD",
		ScheduleLen: horizon,
		Programs:    progs,
		Audience:    g.Nodes(),
	}, nil
}

// RunPFlood builds and runs the baseline.
func RunPFlood(g *graph.Graph, source graph.NodeID, opts PFloodOptions) (Metrics, error) {
	plan, err := PFloodPlan(g, source, opts)
	if err != nil {
		return Metrics{}, err
	}
	return plan.Run(g, Options{Failures: opts.Failures, Obs: opts.Obs})
}
