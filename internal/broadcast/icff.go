package broadcast

import (
	"fmt"

	"dynsens/internal/cnet"
	"dynsens/internal/flight"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
	"dynsens/internal/timeslot"
)

// ICFFPlan builds the Improved Collision-Free Flooding schedule (Algorithm
// 2) for a broadcast from source with k channels:
//
//	preamble:  the source relays the payload up the tree to the root
//	           (at most h rounds, one hop per round);
//	step 1:    the backbone floods depth by depth; backbone depth-i
//	           transmitters fire in window i at their b-time-slot;
//	step 2:    every head with members transmits once at its l-time-slot
//	           inside one shared window; members listen there.
//
// relay gates which backbone nodes forward in steps 1-2 (multicast pruning;
// pass nil for a full broadcast) and audience marks the nodes expected to
// receive (nil means everyone). Backbone nodes listen when they relay or are
// themselves audience; the preamble is never pruned. Listening channels are
// chosen against the *relaying* subset of each interference set, so
// multicast pruning cannot silently retune a receiver to a muted head.
func ICFFPlan(a *timeslot.Assignment, source graph.NodeID, k int,
	relay func(graph.NodeID) bool, audience func(graph.NodeID) bool) (*Plan, error) {
	return icffPlan(a, source, newSlotting(k, 1), relay, audience)
}

// ICFFPlanGuarded is ICFFPlan with guard slots: each time-slot occupies
// guard rounds (transmitting in the middle) and windows gain guard/2
// margin rounds, so the schedule tolerates per-node clock skew up to
// guard/2 rounds at a proportional cost in schedule length.
func ICFFPlanGuarded(a *timeslot.Assignment, source graph.NodeID, k, guard int) (*Plan, error) {
	return icffPlan(a, source, newSlotting(k, guard), nil, nil)
}

func icffPlan(a *timeslot.Assignment, source graph.NodeID, sl slotting,
	relay func(graph.NodeID) bool, audience func(graph.NodeID) bool) (*Plan, error) {

	net := a.Net()
	tr := net.Tree()
	if !tr.Contains(source) {
		return nil, fmt.Errorf("broadcast: source %d not in network", source)
	}
	if relay == nil {
		relay = func(graph.NodeID) bool { return true }
	}
	if audience == nil {
		audience = func(graph.NodeID) bool { return true }
	}

	// listenChannel picks the channel of the unique-slot transmitter within
	// the relaying part of v's interference set (smallest such slot), falling
	// back to v's parent's slot channel when pruning destroyed uniqueness.
	// The interference set lands in a buffer reused across receivers and
	// uniqueness is a quadratic scan over the degree-bounded set, so plan
	// construction allocates nothing per receiver.
	var setBuf []graph.NodeID
	listenChannel := func(kind timeslot.Kind, v graph.NodeID) radio.Channel {
		setBuf = a.AppendInterferenceSet(setBuf[:0], kind, v)
		best := -1
		for i, u := range setBuf {
			if !relay(u) {
				continue
			}
			s, ok := a.Slot(kind, u)
			if !ok {
				continue
			}
			unique := true
			for j, w := range setBuf {
				if j == i || !relay(w) {
					continue
				}
				if s2, ok := a.Slot(kind, w); ok && s2 == s {
					unique = false
					break
				}
			}
			if unique && (best == -1 || s < best) {
				best = s
			}
		}
		if best != -1 {
			return sl.channel(best)
		}
		if p, ok := tr.Parent(v); ok {
			if s, ok := a.Slot(kind, p); ok {
				return sl.channel(s)
			}
		}
		return 0
	}
	depth := tr.DepthMap()
	bt := net.Backbone()
	hBT := bt.Height()
	bW := sl.width(a.SmallDelta())
	lW := sl.width(a.Delta())

	progs := make(map[graph.NodeID]radio.Program, tr.Size())
	for _, id := range tr.Nodes() {
		progs[id] = &floodNode{id: id, startHas: id == source}
	}
	node := func(id graph.NodeID) *floodNode { return progs[id].(*floodNode) }

	// Preamble: source -> root, one hop per round on channel 0.
	path := tr.PathToRoot(source)
	pre := len(path) - 1
	for j, id := range path {
		if j >= 1 {
			node(id).listens = append(node(id).listens, listenPlan{Lo: j, Hi: j, Ch: 0})
		}
		if j < pre {
			node(id).txs = append(node(id).txs, txPlan{
				Round: j + 1, Ch: 0,
				Msg: radio.Message{Seq: payloadSeq, Src: source, Dst: path[j+1], Depth: depth[id]},
			})
		}
	}

	// Step 1: backbone flooding with b-slots.
	for _, id := range bt.Nodes() {
		d := depth[id]
		if a.IsTransmitter(timeslot.B, id) && relay(id) && d < hBT {
			slot, _ := a.Slot(timeslot.B, id)
			node(id).txs = append(node(id).txs, txPlan{
				Round: pre + d*bW + sl.txOffset(slot),
				Ch:    sl.channel(slot),
				Msg: radio.Message{Seq: payloadSeq, Src: source, Dst: radio.NoNode,
					Slot: slot, Depth: d, MaxSlot: a.SmallDelta(), Height: hBT},
			})
		}
		if a.IsReceiver(timeslot.B, id) && (relay(id) || audience(id)) {
			node(id).listens = append(node(id).listens, listenPlan{
				Lo: pre + (d-1)*bW + 1, Hi: pre + d*bW,
				Ch: listenChannel(timeslot.B, id),
			})
		}
	}

	// Step 2: heads deliver to members inside one shared l-window.
	base := pre + hBT*bW
	anyMember := false
	for _, id := range tr.Nodes() {
		st, _ := net.Status(id)
		if st == cnet.Member {
			anyMember = true
			if audience(id) {
				node(id).listens = append(node(id).listens, listenPlan{
					Lo: base + 1, Hi: base + lW,
					Ch: listenChannel(timeslot.L, id),
				})
			}
			continue
		}
		if a.IsTransmitter(timeslot.L, id) && relay(id) {
			slot, _ := a.Slot(timeslot.L, id)
			node(id).txs = append(node(id).txs, txPlan{
				Round: base + sl.txOffset(slot),
				Ch:    sl.channel(slot),
				Msg: radio.Message{Seq: payloadSeq, Src: source, Dst: radio.NoNode,
					Slot: slot, Depth: depth[id], MaxSlot: a.Delta(), Height: hBT},
			})
		}
	}

	sched := base
	if anyMember {
		sched = base + lW
	}
	var aud []graph.NodeID
	for _, id := range tr.Nodes() {
		if audience(id) {
			aud = append(aud, id)
		}
	}
	var phases []flight.Phase
	if pre > 0 {
		phases = append(phases, flight.Phase{Name: "preamble", Lo: 1, Hi: pre})
	}
	if base > pre {
		phases = append(phases, flight.Phase{Name: "backbone-flood", Lo: pre + 1, Hi: base})
	}
	if anyMember {
		phases = append(phases, flight.Phase{Name: "leaf-delivery", Lo: base + 1, Hi: sched})
	}
	return &Plan{Protocol: "ICFF", ScheduleLen: sched, Programs: progs, Audience: aud, Phases: phases}, nil
}

// RunICFF builds and runs Algorithm 2 as a full broadcast.
func RunICFF(a *timeslot.Assignment, source graph.NodeID, opts Options) (Metrics, error) {
	plan, err := ICFFPlan(a, source, opts.channels(), nil, nil)
	if err != nil {
		return Metrics{}, err
	}
	return plan.Run(a.Net().Graph(), opts)
}
