package broadcast

import (
	"fmt"

	"dynsens/internal/dist"
	"dynsens/internal/flight"
	"dynsens/internal/graph"
	"dynsens/internal/obs"
	"dynsens/internal/radio"
)

// Runtimes a plan can execute on.
const (
	// RuntimeKernel is the in-process shard-parallel kernel (the default).
	RuntimeKernel = "kernel"
	// RuntimeDist is the distributed actor runtime (internal/dist): every
	// program becomes an isolated message-passing node behind a framed
	// connection, driven round by round by a coordinator. Byte-identical
	// results and recordings for the same seed and scenario.
	RuntimeDist = "dist"
)

// NodeFailure kills a node at the start of a round during the run.
type NodeFailure struct {
	Node  graph.NodeID
	Round int
}

// LinkFailure cuts a link at the start of a round during the run.
type LinkFailure struct {
	A, B  graph.NodeID
	Round int
}

// Options tune a protocol run.
type Options struct {
	// Channels is the number of radio channels k (default 1).
	Channels int
	// Failures are node deaths to inject.
	Failures []NodeFailure
	// LinkFailures are link cuts to inject.
	LinkFailures []LinkFailure
	// MaxRounds overrides the engine round budget (default: the schedule
	// length).
	MaxRounds int
	// Skew assigns per-node clock offsets in rounds (Section 3.3's
	// imperfect synchronization); combine with guard slots to tolerate it.
	Skew map[graph.NodeID]int
	// LossRate drops each frame independently with this probability
	// (fading model); LossSeed drives the coins.
	LossRate float64
	LossSeed int64
	// Workers sets the radio engine's shard-worker count
	// (radio.Engine.SetWorkers): 0 keeps the engine default (GOMAXPROCS,
	// inline below the engine's small-graph threshold). Results and
	// recordings are byte-identical at any value; this only trades
	// wall-clock time.
	Workers int
	// Trace receives engine events when non-nil.
	Trace func(radio.Event)
	// TraceBatch receives engine events in per-shard batches when non-nil
	// (radio.Engine.SetTraceBatch): one call per shard buffer per phase
	// per round, same events in the same deterministic order as Trace.
	// The engine reuses the batch slice — copy events to retain them. May
	// coexist with Trace; both see every event once.
	TraceBatch func([]radio.Event)
	// Obs, when non-nil, receives the run's instrumentation: radio event
	// counters and awake histograms under a protocol label, plus the
	// run-level broadcast metrics (see docs/observability.md). Safe to
	// share across concurrent runs.
	Obs *obs.Registry
	// Flight, when non-nil, records the run into a flight recording: all
	// radio events, the plan's protocol phase markers, and a footer
	// summarizing the outcome. The caller owns the writer (header,
	// topology and Close); see internal/flight.
	Flight *flight.Writer
	// Perf, when non-nil, collects kernel performance introspection for
	// the run (radio.Engine.SetPerf): per-phase wall times, per-shard busy
	// times, round/event throughput. Strictly read-only — results, traces
	// and recordings are byte-identical with or without it. Safe to share
	// across concurrent runs; see internal/obs/perf for rendering.
	// Kernel-runtime only; the distributed runtime ignores it.
	Perf *radio.Perf
	// Runtime selects the execution substrate: RuntimeKernel (default) or
	// RuntimeDist. Both produce byte-identical metrics, traces and
	// recordings for the same plan and options — the distributed runtime's
	// equivalence obligation (see internal/dist).
	Runtime string
	// Fleet overrides the distributed runtime's transport; nil hosts each
	// program on its own goroutine behind an in-memory pipe (LocalFleet).
	// Supply a dist.ProcFleet of cmd/dnode children or a dist.TCPFleet for
	// process or network isolation. RuntimeDist only.
	Fleet dist.Fleet
	// Nemesis schedules distributed-runtime fault injection — crashes and
	// healing partitions — on top of Failures/LinkFailures/LossRate.
	// RuntimeDist only.
	Nemesis *dist.Nemesis
}

func (o Options) channels() int {
	if o.Channels <= 0 {
		return 1
	}
	return o.Channels
}

// Metrics reports what a protocol run actually did.
type Metrics struct {
	Protocol string
	// ScheduleLen is the planned duration in rounds.
	ScheduleLen int
	// Rounds is what the engine executed (early quiescence possible).
	Rounds int
	// Audience is the number of nodes expected to hold the payload.
	Audience int
	// Received is how many of them actually got it.
	Received int
	// Completed is Received == Audience.
	Completed bool
	// CompletionRound is the round in which the last audience node first
	// received the payload (0 when the audience is only the source).
	CompletionRound int
	// MaxAwake / MeanAwake summarize per-node awake rounds.
	MaxAwake  int
	MeanAwake float64
	// Collisions and Transmissions are engine counters.
	Collisions    int
	Transmissions int
	// Quiesced is true when every live program reported Done before the
	// round budget ran out (the network went back to sleep on its own).
	Quiesced bool
	// Awake is the per-node breakdown; Listens and Transmits split it by
	// activity for energy models.
	Awake     map[graph.NodeID]int
	Listens   map[graph.NodeID]int
	Transmits map[graph.NodeID]int
}

// DeliveryRatio returns Received/Audience (1 for an empty audience).
func (m Metrics) DeliveryRatio() float64 {
	if m.Audience == 0 {
		return 1
	}
	return float64(m.Received) / float64(m.Audience)
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: rounds=%d (sched %d) delivered=%d/%d completion=%d maxAwake=%d meanAwake=%.1f collisions=%d tx=%d",
		m.Protocol, m.Rounds, m.ScheduleLen, m.Received, m.Audience,
		m.CompletionRound, m.MaxAwake, m.MeanAwake, m.Collisions, m.Transmissions)
}

// Metric names recorded by Metrics.Record, all labeled by protocol.
const (
	// MetricBroadcastRuns counts protocol runs.
	MetricBroadcastRuns = "dynsens_broadcast_runs_total"
	// MetricBroadcastCompletions counts runs that delivered to the whole
	// audience.
	MetricBroadcastCompletions = "dynsens_broadcast_completions_total"
	// MetricBroadcastDelivered counts audience nodes that received the
	// payload, MetricBroadcastAudience the nodes expected to.
	MetricBroadcastDelivered = "dynsens_broadcast_delivered_nodes_total"
	// MetricBroadcastAudience counts nodes expected to receive.
	MetricBroadcastAudience = "dynsens_broadcast_audience_nodes_total"
	// MetricBroadcastCompletionRound is the histogram of rounds until the
	// last audience node first held the payload — the round-latency
	// distribution (percentiles, not just means, matter at scale).
	MetricBroadcastCompletionRound = "dynsens_broadcast_completion_round"
	// MetricBroadcastScheduleRounds is the histogram of planned schedule
	// lengths.
	MetricBroadcastScheduleRounds = "dynsens_broadcast_schedule_rounds"
	// MetricBroadcastMaxAwake is the histogram of per-run maximum awake
	// rounds — the energy headline the paper optimizes.
	MetricBroadcastMaxAwake = "dynsens_broadcast_max_awake_rounds"
)

// Record exports the run's measured outcome into reg under a
// protocol=<name> label. Counters aggregate across runs sharing a
// registry; histograms collect per-run distributions.
func (m Metrics) Record(reg *obs.Registry) {
	lbl := obs.L("protocol", m.Protocol)
	reg.Counter(MetricBroadcastRuns, "Broadcast/multicast protocol runs.", lbl).Inc()
	if m.Completed {
		reg.Counter(MetricBroadcastCompletions, "Runs that reached the whole audience.", lbl).Inc()
	}
	reg.Counter(MetricBroadcastDelivered, "Audience nodes that received the payload.", lbl).Add(int64(m.Received))
	reg.Counter(MetricBroadcastAudience, "Nodes expected to receive the payload.", lbl).Add(int64(m.Audience))
	reg.Histogram(MetricBroadcastCompletionRound, "Round in which the last audience node first received.", obs.RoundBuckets(), lbl).Observe(float64(m.CompletionRound))
	reg.Histogram(MetricBroadcastScheduleRounds, "Planned schedule length in rounds.", obs.RoundBuckets(), lbl).Observe(float64(m.ScheduleLen))
	reg.Histogram(MetricBroadcastMaxAwake, "Per-run maximum awake rounds over all nodes.", obs.AwakeBuckets(), lbl).Observe(float64(m.MaxAwake))
}

// Plan is a fully-scheduled protocol instance ready to run.
type Plan struct {
	Protocol    string
	Programs    map[graph.NodeID]radio.Program
	ScheduleLen int
	// Audience lists the nodes expected to receive (or already hold) the
	// payload.
	Audience []graph.NodeID
	// Phases marks the protocol's round ranges (preamble, backbone flood,
	// leaf delivery, …) for flight recordings and trace viewers.
	Phases []flight.Phase
}

// StampGroup sets the multicast group ID carried in every scheduled
// transmission of the plan (the paper transmits the group ID with the
// broadcast message).
func (p *Plan) StampGroup(group int) {
	for _, prog := range p.Programs {
		if fn, ok := prog.(*floodNode); ok {
			for i := range fn.txs {
				fn.txs[i].Msg.Group = group
			}
		}
	}
}

// Preload marks nodes as already holding the payload (e.g. from an earlier
// repetition); they skip listening for it and relay at their scheduled
// slots immediately.
func (p *Plan) Preload(has map[graph.NodeID]bool) {
	for id, prog := range p.Programs {
		if fn, ok := prog.(*floodNode); ok && has[id] {
			fn.startHas = true
		}
	}
}

// roundEngine is the round-driver surface Plan.Run needs; both the
// in-process kernel (*radio.Engine) and the distributed coordinator
// (*dist.Coordinator) provide it, so every sink, failure and skew knob is
// plumbed identically — which is what makes the two runtimes' recordings
// byte-comparable.
type roundEngine interface {
	SetTrace(func(radio.Event))
	SetTraceBatch(func([]radio.Event))
	FailNodeAt(id graph.NodeID, r int)
	FailLinkAt(u, v graph.NodeID, r int)
	SetClockSkew(id graph.NodeID, offset int)
	SetLoss(rate float64, seed int64) error
	Run(maxRounds int) radio.Result
}

// newEngine builds the runtime opts.Runtime selects.
func (p *Plan) newEngine(g *graph.Graph, opts Options) (roundEngine, func(), error) {
	switch opts.Runtime {
	case "", RuntimeKernel:
		eng, err := radio.NewEngine(g, p.Programs)
		if err != nil {
			return nil, nil, err
		}
		eng.SetWorkers(opts.Workers)
		eng.SetPerf(opts.Perf)
		return eng, func() {}, nil
	case RuntimeDist:
		fleet := opts.Fleet
		external := fleet != nil
		if fleet == nil {
			fleet = dist.NewLocalFleet(p.Programs)
		}
		coord, err := dist.NewCoordinator(g, fleet)
		if err != nil {
			return nil, nil, err
		}
		if external {
			// An external fleet (ProcFleet, TCPFleet) hosts its own
			// reconstructions of the Programs; mirror deliveries into the
			// local copies so the post-run Received() metrics fill sees
			// them. The default LocalFleet serves these very objects, so
			// mirroring there would double-deliver.
			coord.MirrorDeliveries(p.Programs)
		}
		if opts.Nemesis != nil {
			coord.SetNemesis(*opts.Nemesis)
		}
		return coord, func() { _ = coord.Close() }, nil
	}
	return nil, nil, fmt.Errorf("broadcast: unknown runtime %q (kernel|dist)", opts.Runtime)
}

// Run executes the plan on the given graph.
func (p *Plan) Run(g *graph.Graph, opts Options) (Metrics, error) {
	eng, done, err := p.newEngine(g, opts)
	if err != nil {
		return Metrics{}, err
	}
	defer done()
	var col *obs.RadioCollector
	if opts.Obs != nil {
		col = obs.NewRadioCollector(opts.Obs, obs.L("protocol", p.Protocol))
	}
	// Built-in consumers (obs collector, flight writer) ride the batched
	// hook — one sink call per shard buffer per phase per round — so
	// instrumentation stays off the per-event path; a caller's per-event
	// Trace keeps its own slot and sees the same events in the same order.
	if opts.Trace != nil {
		eng.SetTrace(opts.Trace)
	}
	batch := opts.TraceBatch
	if col != nil {
		batch = obs.ChainBatchHooks(batch, col.BatchHook())
	}
	if opts.Flight != nil {
		batch = obs.ChainBatchHooks(batch, opts.Flight.BatchHook())
	}
	if batch != nil {
		eng.SetTraceBatch(batch)
	}
	for _, f := range opts.Failures {
		eng.FailNodeAt(f.Node, f.Round)
	}
	for _, f := range opts.LinkFailures {
		eng.FailLinkAt(f.A, f.B, f.Round)
	}
	if opts.LossRate > 0 {
		if err := eng.SetLoss(opts.LossRate, opts.LossSeed); err != nil {
			return Metrics{}, err
		}
	}
	maxSkew := 0
	for id, off := range opts.Skew {
		eng.SetClockSkew(id, off)
		if off > maxSkew {
			maxSkew = off
		}
		if -off > maxSkew {
			maxSkew = -off
		}
	}
	budget := p.ScheduleLen + maxSkew
	if opts.MaxRounds > 0 {
		budget = opts.MaxRounds
	}
	res := eng.Run(budget)

	m := Metrics{
		Protocol:      p.Protocol,
		ScheduleLen:   p.ScheduleLen,
		Rounds:        res.Rounds,
		Quiesced:      res.Quiesced,
		Audience:      len(p.Audience),
		MaxAwake:      res.MaxAwake(),
		MeanAwake:     res.MeanAwake(),
		Collisions:    res.Collisions,
		Transmissions: res.Transmissions,
		Awake:         res.Awake,
		Listens:       res.Listens,
		Transmits:     res.Transmits,
	}
	for _, id := range p.Audience {
		fn, ok := p.Programs[id].(receiver)
		if !ok {
			return Metrics{}, fmt.Errorf("broadcast: program of %d does not expose reception", id)
		}
		got, round := fn.Received()
		if got {
			m.Received++
			if round > m.CompletionRound {
				m.CompletionRound = round
			}
		}
	}
	m.Completed = m.Received == m.Audience
	if col != nil {
		col.ObserveResult(res)
		m.Record(opts.Obs)
	}
	if opts.Flight != nil {
		for _, ph := range p.Phases {
			opts.Flight.WritePhase(ph)
		}
		opts.Flight.SetFooter(flight.Footer{
			ScheduleLen:     p.ScheduleLen,
			Rounds:          res.Rounds,
			Deliveries:      res.Deliveries,
			Collisions:      res.Collisions,
			Transmissions:   res.Transmissions,
			Losses:          res.Losses,
			Received:        m.Received,
			Audience:        m.Audience,
			CompletionRound: m.CompletionRound,
		})
	}
	return m, nil
}

// receiver is implemented by all protocol programs.
type receiver interface {
	Received() (bool, int)
}
