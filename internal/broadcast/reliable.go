package broadcast

import (
	"fmt"

	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
)

// RunReliable repeats the ICFF broadcast back-to-back — the simplest
// reliability mechanism available without acknowledgements in the paper's
// model — and reports the union of deliveries. Under independent per-frame
// loss p, R repetitions push the per-node miss probability toward p^R at a
// linear cost in rounds and awake time. Each repetition draws fresh loss
// coins (LossSeed + repetition index).
func RunReliable(a *timeslot.Assignment, source graph.NodeID, repeats int, opts Options) (Metrics, error) {
	if repeats < 1 {
		return Metrics{}, fmt.Errorf("broadcast: repeats must be >= 1, got %d", repeats)
	}
	var agg Metrics
	got := make(map[graph.NodeID]bool)
	offset := 0
	for r := 0; r < repeats; r++ {
		runOpts := opts
		runOpts.LossSeed = opts.LossSeed + int64(r)
		plan, err := ICFFPlan(a, source, runOpts.channels(), nil, nil)
		if err != nil {
			return Metrics{}, err
		}
		// Nodes keep the payload across repetitions and relay immediately.
		plan.Preload(got)
		m, err := plan.Run(a.Net().Graph(), runOpts)
		if err != nil {
			return Metrics{}, err
		}
		if r == 0 {
			agg = m
			agg.Protocol = fmt.Sprintf("ICFFx%d", repeats)
			agg.Awake = cloneCounts(m.Awake)
			agg.Listens = cloneCounts(m.Listens)
			agg.Transmits = cloneCounts(m.Transmits)
			agg.Received = 0
			agg.CompletionRound = 0
		} else {
			agg.ScheduleLen += m.ScheduleLen
			agg.Rounds += m.Rounds
			agg.Collisions += m.Collisions
			agg.Transmissions += m.Transmissions
			addCounts(agg.Awake, m.Awake)
			addCounts(agg.Listens, m.Listens)
			addCounts(agg.Transmits, m.Transmits)
		}
		// Union of deliveries, completion measured on the global clock.
		for _, id := range plan.Audience {
			rcvr, ok := plan.Programs[id].(receiver)
			if !ok {
				continue
			}
			okRecv, round := rcvr.Received()
			if okRecv && !got[id] {
				got[id] = true
				if offset+round > agg.CompletionRound {
					agg.CompletionRound = offset + round
				}
			}
		}
		offset += m.ScheduleLen
		if len(got) == agg.Audience {
			break
		}
	}
	agg.Received = len(got)
	agg.Completed = agg.Received == agg.Audience
	agg.MaxAwake = 0
	for _, v := range agg.Awake {
		if v > agg.MaxAwake {
			agg.MaxAwake = v
		}
	}
	sum := 0
	for _, v := range agg.Awake {
		sum += v
	}
	if len(agg.Awake) > 0 {
		agg.MeanAwake = float64(sum) / float64(len(agg.Awake))
	}
	return agg, nil
}

func cloneCounts(m map[graph.NodeID]int) map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func addCounts(dst, src map[graph.NodeID]int) {
	for k, v := range src {
		dst[k] += v
	}
}
