// run.go is the single scenario runner behind all three entry points (go
// test corpus walker, dynsim/nettool CLI, flight record→replay): it builds
// the deployment a spec names, applies the script, executes the protocol
// on the radio engine, and evaluates every assertion into structured
// outcomes. With recording enabled the same run is captured as a .dsfr
// flight recording and re-verified offline, and the offline verdicts must
// agree with the live ones.
package scenario

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/core"
	"dynsens/internal/discovery"
	"dynsens/internal/dist"
	"dynsens/internal/energy"
	"dynsens/internal/expt"
	"dynsens/internal/flight"
	"dynsens/internal/gather"
	"dynsens/internal/geom"
	"dynsens/internal/graph"
	"dynsens/internal/netio"
	"dynsens/internal/radio"
	"dynsens/internal/timeslot"
	"dynsens/internal/workload"
)

// RunOptions tune one runner invocation.
type RunOptions struct {
	// Workers overrides the spec's engine worker count when > 0. Purely a
	// wall-clock knob: outcomes and recordings are byte-identical.
	Workers int
	// Record captures the run as a .dsfr flight recording in
	// Result.Recording (broadcast-family protocols only).
	Record bool
	// Verify implies Record: the captured recording is decoded, checked
	// with flight.Verify, and the scenario's assertions are re-evaluated
	// offline from it — every offline-decidable verdict must agree with
	// the live one.
	Verify bool
	// Update refreshes the golden metrics/timeline sections instead of
	// comparing them; Result.Updated then holds the re-formatted file.
	Update bool
	// Runtime overrides the spec's runtime when non-empty ("kernel" or
	// "dist") — the dynsim -runtime flag — so the existing corpus runs
	// head-to-head on both runtimes without editing files.
	Runtime string
	// Fleet overrides the distributed runtime's transport (nil = one
	// goroutine per node behind an in-memory pipe). dynsim -dnode wires a
	// dist.ProcFleet of cmd/dnode child processes here. Dist runtime only.
	Fleet dist.Fleet
}

// Result is one evaluated scenario run.
type Result struct {
	Scenario *Scenario
	Measured Measured
	Bounds   Bounds
	// Outcomes holds one entry per assertion, plus golden comparisons and
	// (with RunOptions.Verify) the flight verifier and replay-agreement
	// outcomes.
	Outcomes []Outcome
	// Recording is the captured .dsfr (nil unless requested).
	Recording []byte
	// MetricsText / TimelineText are the rendered golden candidates.
	MetricsText  string
	TimelineText string
	// Updated is the re-formatted scenario file after a golden refresh
	// (nil unless RunOptions.Update changed anything).
	Updated []byte
}

// Passed reports whether every outcome held.
func (r *Result) Passed() bool {
	for _, o := range r.Outcomes {
		if !o.OK {
			return false
		}
	}
	return true
}

// Failures returns the outcomes that did not hold.
func (r *Result) Failures() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if !o.OK {
			out = append(out, o)
		}
	}
	return out
}

// Write renders the report: a summary line, one line per outcome, and the
// verdict.
func (r *Result) Write(w io.Writer) error {
	m := r.Measured
	if _, err := fmt.Fprintf(w, "scenario %s: %s rounds=%d/%d delivered=%d/%d collisions=%d tx=%d\n",
		r.Scenario.Name(), m.Protocol, m.Rounds, m.ScheduleLen, m.Received, m.Audience, m.Collisions, m.Transmissions); err != nil {
		return err
	}
	failed := 0
	for _, o := range r.Outcomes {
		if !o.OK {
			failed++
		}
		if _, err := fmt.Fprintf(w, "  %s\n", o); err != nil {
			return err
		}
	}
	verdict := fmt.Sprintf("scenario %s: PASS (%d checks)", r.Scenario.Name(), len(r.Outcomes))
	if failed > 0 {
		verdict = fmt.Sprintf("scenario %s: FAIL (%d of %d checks)", r.Scenario.Name(), failed, len(r.Outcomes))
	}
	_, err := fmt.Fprintln(w, verdict)
	return err
}

// FlightCapable reports whether the protocol's run can be captured as a
// flight recording; "" means the spec default (icff). Gather and
// discovery use bespoke engines/metrics the .dsfr footer does not model.
func FlightCapable(proto string) bool {
	switch proto {
	case "", "icff", "cff", "dfo", "multicast", "pflood":
		return true
	}
	return false
}

// traceStep returns the scenario's churn/mobility step, if any.
func traceStep(s *Scenario) (Step, bool) {
	for _, st := range s.Script {
		if st.Verb == VerbChurn || st.Verb == VerbMobility {
			return st, true
		}
	}
	return Step{}, false
}

// flightDelta converts a live churn delta to its recorded form.
func flightDelta(d cnet.Delta) flight.Delta {
	kind := flight.DeltaMoveIn
	switch d.Kind {
	case cnet.DeltaMoveOut:
		kind = flight.DeltaMoveOut
	case cnet.DeltaCrash:
		kind = flight.DeltaCrash
	}
	return flight.Delta{
		Kind: kind, Node: d.Node, Peer: flight.NoParent,
		Reinserted: d.Reinserted, Dropped: d.Dropped, RootChanged: d.RootChanged,
	}
}

// applyEvents replays a churn/mobility trace against the live network:
// joins discover their neighbors by range over the tracked positions,
// leaves retire the node. The live ID set is kept sorted so neighbor
// discovery is deterministic.
func applyEvents(net *core.Network, base *geom.Deployment, rng float64, events []workload.Event) error {
	pos := make(map[graph.NodeID]geom.Point, len(base.Pos))
	ids := make([]graph.NodeID, 0, len(base.Pos))
	for i, p := range base.Pos {
		pos[graph.NodeID(i)] = p
		ids = append(ids, graph.NodeID(i))
	}
	for step, ev := range events {
		switch ev.Kind {
		case workload.Join:
			var nbrs []graph.NodeID
			for _, id := range ids {
				if ev.Pos.InRange(pos[id], rng) {
					nbrs = append(nbrs, id)
				}
			}
			if err := net.Join(ev.Node, nbrs); err != nil {
				return fmt.Errorf("scenario: trace step %d: join %d: %w", step, ev.Node, err)
			}
			pos[ev.Node] = ev.Pos
			i := sort.Search(len(ids), func(i int) bool { return ids[i] >= ev.Node })
			ids = append(ids, 0)
			copy(ids[i+1:], ids[i:])
			ids[i] = ev.Node
		case workload.Leave:
			if err := net.Leave(ev.Node); err != nil {
				return fmt.Errorf("scenario: trace step %d: leave %d: %w", step, ev.Node, err)
			}
			delete(pos, ev.Node)
			i := sort.Search(len(ids), func(i int) bool { return ids[i] >= ev.Node })
			if i < len(ids) && ids[i] == ev.Node {
				ids = append(ids[:i], ids[i+1:]...)
			}
		}
	}
	return nil
}

// buildNet realizes the spec's deployment and runs the script's
// churn/mobility trace against it, returning the self-organized network
// every runtime executes on. Both the live runner and the dnode worker go
// through here, so a distributed worker reconstructs bit-for-bit the same
// network (and hence the same Programs) as the coordinator.
func buildNet(s *Scenario, coreCfg core.Config) (*core.Network, error) {
	sp := s.Spec
	cfg := workload.PaperConfig(sp.Seed, sp.Side, sp.N)
	var net *core.Network
	if st, ok := traceStep(s); ok {
		var base *geom.Deployment
		var events []workload.Event
		var err error
		if st.Verb == VerbChurn {
			base, events, err = workload.ChurnTrace(cfg, st.Steps, st.Frac)
		} else {
			base, events, err = workload.MobilityTrace(cfg, st.Steps, st.Frac)
		}
		if err != nil {
			return nil, err
		}
		if net, err = core.Build(base.Graph(), coreCfg); err != nil {
			return nil, err
		}
		if err = applyEvents(net, base, cfg.Range, events); err != nil {
			return nil, err
		}
		if err = net.Verify(); err != nil {
			return nil, fmt.Errorf("scenario %s: invariant violation after trace: %w", s.Name(), err)
		}
	} else if sp.deploy() == "grid" {
		base, err := workload.GridDeployment(cfg)
		if err != nil {
			return nil, err
		}
		if net, err = core.Build(base.Graph(), coreCfg); err != nil {
			return nil, err
		}
		if err = net.Verify(); err != nil {
			return nil, fmt.Errorf("scenario %s: invariant violation: %w", s.Name(), err)
		}
	} else {
		var err error
		if net, _, err = expt.BuildNetwork(sp.Side, sp.N, sp.Seed, coreCfg); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// joinGroups seeds the multicast group membership from the spec: a
// deterministic fraction of the tree's nodes joins, with the root as a
// fallback so the group is never empty. Shared by the live runner and
// BuildPlan so coordinator and workers agree on the relay set.
func joinGroups(net *core.Network, sp Spec) error {
	rng := rand.New(rand.NewSource(sp.Seed * 31))
	joined := 0
	for _, id := range net.CNet().Tree().Nodes() {
		if rng.Float64() < sp.groupFrac() {
			if err := net.JoinGroup(id, sp.group()); err != nil {
				return err
			}
			joined++
		}
	}
	if joined == 0 {
		return net.JoinGroup(net.Root(), sp.group())
	}
	return nil
}

// BuildPlan reconstructs the scenario's broadcast plan and graph without
// running it — the dnode worker entry point: a child process loads the
// same .dsn file, rebuilds the identical deployment and plan, and serves
// its assigned Program over stdio/TCP. Only the plan-family protocols
// (the FlightCapable set) have a Program-per-node shape to distribute.
func BuildPlan(s *Scenario) (*broadcast.Plan, *graph.Graph, error) {
	sp := s.Spec
	net, err := buildNet(s, core.Config{})
	if err != nil {
		return nil, nil, err
	}
	if !net.Contains(sp.Source) {
		return nil, nil, fmt.Errorf("scenario %s: source %d not in the network after the script", s.Name(), sp.Source)
	}
	var plan *broadcast.Plan
	switch proto := sp.protocol(); proto {
	case "icff":
		plan, err = broadcast.ICFFPlan(net.Slots(), sp.Source, sp.channels(), nil, nil)
	case "cff":
		plan, err = broadcast.CFFPlan(net.Slots(), sp.Source, sp.channels())
	case "dfo":
		plan, err = broadcast.DFOPlan(net.CNet(), sp.Source)
	case "multicast":
		if err = joinGroups(net, sp); err != nil {
			return nil, nil, err
		}
		plan, err = net.Groups().Plan(net.Slots(), sp.group(), sp.Source, sp.channels())
	case "pflood":
		plan, err = broadcast.PFloodPlan(net.Graph(), sp.Source, broadcast.PFloodOptions{
			Seed: sp.Seed * 13, Forward: sp.Forward, MaxDelay: sp.MaxDelay,
		})
	default:
		return nil, nil, fmt.Errorf("scenario %s: no distributed plan for protocol %q", s.Name(), proto)
	}
	if err != nil {
		return nil, nil, err
	}
	return plan, net.Graph(), nil
}

// Run executes the scenario through the live stack and evaluates its
// assertions. The error return covers setup problems (bad spec, broken
// deployment); assertion failures land in Result.Outcomes.
func Run(s *Scenario, opts RunOptions) (*Result, error) {
	sp := s.Spec
	proto := sp.protocol()
	record := opts.Record || opts.Verify
	if record && !FlightCapable(proto) {
		return nil, fmt.Errorf("scenario %s: recording supports icff|cff|dfo|multicast|pflood, not %s", s.Name(), proto)
	}
	workers := sp.Workers
	if opts.Workers > 0 {
		workers = opts.Workers
	}
	runtime := sp.Runtime
	if opts.Runtime != "" {
		runtime = opts.Runtime
	}
	switch runtime {
	case "", broadcast.RuntimeKernel:
	case broadcast.RuntimeDist:
		if !FlightCapable(proto) {
			return nil, fmt.Errorf("scenario %s: runtime dist supports icff|cff|dfo|multicast|pflood, not %s", s.Name(), proto)
		}
	default:
		return nil, fmt.Errorf("scenario %s: unknown runtime %q (kernel|dist)", s.Name(), runtime)
	}

	// Flight capture: header and construction deltas first, so the
	// recording carries the full churn history of the build.
	var fw *flight.Writer
	var buf bytes.Buffer
	coreCfg := core.Config{}
	if record {
		fw = flight.NewWriter(&buf)
		fw.WriteHeader(flight.Header{
			Seed: sp.Seed, N: sp.N, Side: sp.Side, Channels: sp.channels(),
			Source: sp.Source, Protocol: strings.ToUpper(proto),
			LossRate: sp.LossRate, LossSeed: sp.LossSeed,
		})
		coreCfg.DeltaHook = func(d cnet.Delta) { fw.WriteDelta(flightDelta(d)) }
	}

	// Deployment + self-organization.
	net, err := buildNet(s, coreCfg)
	if err != nil {
		return nil, err
	}
	if !net.Contains(sp.Source) {
		return nil, fmt.Errorf("scenario %s: source %d not in the network after the script", s.Name(), sp.Source)
	}

	// Script-driven failure injection.
	o := broadcast.Options{
		Channels: sp.Channels, Workers: workers,
		LossRate: sp.LossRate, LossSeed: sp.LossSeed,
		Runtime: runtime, Fleet: opts.Fleet,
	}
	for _, st := range s.Script {
		switch st.Verb {
		case VerbFail:
			o.Failures = append(o.Failures, broadcast.NodeFailure{Node: st.Node, Round: st.Round})
		case VerbCut:
			o.LinkFailures = append(o.LinkFailures, broadcast.LinkFailure{A: st.Node, B: st.Peer, Round: st.Round})
		case VerbFailFrac:
			horizon := 2 * (net.Stats().BackboneSize - 1)
			if horizon < 1 {
				horizon = 1
			}
			for _, f := range workload.FailureTrace(net.Graph(), net.Root(), st.Frac, horizon, sp.Seed*17) {
				o.Failures = append(o.Failures, broadcast.NodeFailure{Node: f.Node, Round: f.Round})
			}
		}
	}
	if fw != nil {
		netio.RecordTopology(fw, net)
		for _, f := range o.Failures {
			fw.WriteDelta(flight.Delta{Kind: flight.DeltaNodeFail, Node: f.Node, Peer: flight.NoParent, Round: f.Round})
		}
		for _, lf := range o.LinkFailures {
			fw.WriteDelta(flight.Delta{Kind: flight.DeltaLinkFail, Node: lf.A, Peer: lf.B, Round: lf.Round})
		}
		o.Flight = fw
	}

	// Timeline capture, when the scenario pins a golden timeline.
	var events []radio.Event
	if s.GoldenTimeline != "" {
		o.Trace = func(ev radio.Event) { events = append(events, ev) }
	}

	res := &Result{Scenario: s}
	m, err := runProtocol(net, s, o, workers, &events)
	if err != nil {
		return nil, err
	}
	res.Measured = m
	res.Bounds = liveBounds(net, sp)
	if fw != nil {
		if err := fw.Close(); err != nil {
			return nil, fmt.Errorf("scenario %s: flight recording: %w", s.Name(), err)
		}
		res.Recording = append([]byte(nil), buf.Bytes()...)
	}

	for _, a := range s.Asserts {
		res.Outcomes = append(res.Outcomes, a.Eval(res.Measured, res.Bounds))
	}

	// Goldens: compare, or refresh under -update.
	res.MetricsText = renderMetrics(res.Measured)
	res.TimelineText = renderTimeline(events)
	updated := false
	if s.GoldenMetrics != "" {
		if opts.Update {
			updated = updated || s.GoldenMetrics != res.MetricsText
			s.GoldenMetrics = res.MetricsText
		} else {
			res.Outcomes = append(res.Outcomes, goldenOutcome("golden metrics", s.GoldenMetrics, res.MetricsText))
		}
	}
	if s.GoldenTimeline != "" {
		if opts.Update {
			updated = updated || s.GoldenTimeline != res.TimelineText
			s.GoldenTimeline = res.TimelineText
		} else {
			res.Outcomes = append(res.Outcomes, goldenOutcome("golden timeline", s.GoldenTimeline, res.TimelineText))
		}
	}
	if updated {
		res.Updated = s.Format()
	}

	// Offline replay: the recording must verify, and its verdicts must
	// agree with the live ones.
	if opts.Verify {
		rec, err := flight.DecodeBytes(res.Recording)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: decoding own recording: %w", s.Name(), err)
		}
		offline := EvalRecording(s, rec)
		res.Outcomes = append(res.Outcomes, verifyOutcome(flight.Verify(rec)))
		res.Outcomes = append(res.Outcomes, agreementOutcome(res, offline))
	}
	return res, nil
}

// runProtocol dispatches on the protocol family and maps its metrics into
// the shared Measured shape.
func runProtocol(net *core.Network, s *Scenario, o broadcast.Options, workers int, events *[]radio.Event) (Measured, error) {
	sp := s.Spec
	var bm broadcast.Metrics
	var err error
	switch sp.protocol() {
	case "icff":
		bm, err = net.Broadcast(sp.Source, o)
	case "cff":
		bm, err = net.BroadcastCFF(sp.Source, o)
	case "dfo":
		bm, err = net.BroadcastDFO(sp.Source, o)
	case "multicast":
		if err := joinGroups(net, sp); err != nil {
			return Measured{}, err
		}
		bm, err = net.Multicast(sp.group(), sp.Source, o)
	case "pflood":
		plan, perr := broadcast.PFloodPlan(net.Graph(), sp.Source, broadcast.PFloodOptions{
			Seed: sp.Seed * 13, Forward: sp.Forward, MaxDelay: sp.MaxDelay,
		})
		if perr != nil {
			return Measured{}, perr
		}
		bm, err = plan.Run(net.Graph(), o)
	case "gather":
		values := make(map[graph.NodeID]int64)
		for _, id := range net.CNet().Tree().Nodes() {
			values[id] = int64(id) + 1
		}
		var gfails []gather.Failure
		for _, f := range o.Failures {
			gfails = append(gfails, gather.Failure{Node: f.Node, Round: f.Round})
		}
		gm, gerr := net.Gather(values, gather.Options{Failures: gfails, Workers: workers, Trace: o.Trace})
		if gerr != nil {
			return Measured{}, gerr
		}
		return Measured{
			Protocol:    "GATHER",
			ScheduleLen: gm.ScheduleLen, Rounds: gm.Rounds, Quiesced: gm.Quiesced,
			Audience: gm.Nodes, Received: gm.Reporting, Completed: gm.Complete(),
			CompletionRound: gm.Rounds,
			MaxAwake:        gm.MaxAwake, MeanAwake: gm.MeanAwake,
			Collisions: gm.Collisions, Transmissions: gm.Transmissions,
			HasAwake: true, HasQuiesced: true,
		}, nil
	case "discovery":
		joiner := sp.Joiner
		if joiner < 0 {
			nodes := net.Graph().Nodes()
			joiner = nodes[len(nodes)-1]
		}
		if !net.Contains(joiner) {
			return Measured{}, fmt.Errorf("scenario %s: joiner %d not in the network", s.Name(), joiner)
		}
		dr, derr := discovery.Run(net.Graph(), joiner, discovery.Options{Seed: sp.Seed * 19, Workers: workers})
		if derr != nil {
			return Measured{}, derr
		}
		audience := len(net.Graph().Neighbors(joiner))
		return Measured{
			Protocol: "DISCOVERY",
			Rounds:   dr.Rounds, Audience: audience, Received: len(dr.Discovered),
			Completed: dr.Complete, CompletionRound: dr.Rounds,
			Collisions: dr.Collisions, Transmissions: dr.Transmissions,
		}, nil
	default:
		return Measured{}, fmt.Errorf("scenario %s: unknown protocol %q", s.Name(), sp.Protocol)
	}
	if err != nil {
		return Measured{}, err
	}
	return measureBroadcast(bm), nil
}

// measureBroadcast maps broadcast metrics (plus the per-node energy
// maximum under the default model) into the shared Measured shape.
func measureBroadcast(bm broadcast.Metrics) Measured {
	m := Measured{
		Protocol:    bm.Protocol,
		ScheduleLen: bm.ScheduleLen, Rounds: bm.Rounds, Quiesced: bm.Quiesced,
		Audience: bm.Audience, Received: bm.Received, Completed: bm.Completed,
		CompletionRound: bm.CompletionRound,
		MaxAwake:        bm.MaxAwake, MeanAwake: bm.MeanAwake,
		Collisions: bm.Collisions, Transmissions: bm.Transmissions,
		HasAwake: true, HasEnergy: true, HasQuiesced: true,
	}
	model := energy.DefaultModel()
	for _, id := range sortedNodeKeys(bm.Awake) {
		if c := model.EpochCost(bm.Listens[id], bm.Transmits[id], bm.Rounds); c > m.Energy {
			m.Energy = c
		}
	}
	return m
}

func sortedNodeKeys(m map[graph.NodeID]int) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// liveBounds captures the paper-bound quantities from the live structure.
func liveBounds(net *core.Network, sp Spec) Bounds {
	slots := net.Slots()
	return Bounds{
		K:      sp.channels(),
		DeltaU: slots.Max(timeslot.U), SmallDelta: slots.SmallDelta(), Delta: slots.Delta(),
		H: net.CNet().Tree().Height(), HBT: net.CNet().Backbone().Height(),
		Heads: len(net.CNet().Heads()),
		Pre:   net.CNet().Tree().Depth(sp.Source),
	}
}

// goldenOutcome diffs a pinned section against the rendered candidate.
func goldenOutcome(what, want, got string) Outcome {
	o := Outcome{Assertion: what}
	if want == got {
		o.OK = true
		o.Detail = "matches"
		return o
	}
	o.Detail = fmt.Sprintf("differs from the recorded golden (run with -update to refresh):\n%s", diffBlocks(want, got))
	return o
}

// diffBlocks renders a minimal first-divergence diff of two text blocks.
func diffBlocks(want, got string) string {
	w := strings.Split(strings.TrimRight(want, "\n"), "\n")
	g := strings.Split(strings.TrimRight(got, "\n"), "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		wl, gl := "", ""
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("    line %d:\n    - %s\n    + %s", i+1, wl, gl)
		}
	}
	return "    (whitespace-only difference)"
}

// verifyOutcome condenses a flight.Verify report into one outcome.
func verifyOutcome(rep *flight.Report) Outcome {
	o := Outcome{Assertion: "flight-verify"}
	var failed []string
	evaluated := 0
	for _, c := range rep.Checks {
		if c.Err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", c.Name, c.Err))
		} else if !c.Skipped {
			evaluated++
		}
	}
	if len(failed) == 0 {
		o.OK = true
		o.Detail = fmt.Sprintf("recording passes the offline verifier (%d checks)", evaluated)
		return o
	}
	o.Detail = "offline verifier failed: " + strings.Join(failed, "; ")
	return o
}

// agreementOutcome checks that every offline-decidable assertion verdict
// matches the live one — the record/replay contract.
func agreementOutcome(live, offline *Result) Outcome {
	o := Outcome{Assertion: "replay-agrees"}
	verdicts := make(map[string]bool, len(live.Outcomes))
	for _, lo := range live.Outcomes {
		verdicts[lo.Assertion] = lo.OK
	}
	var mismatched []string
	compared := 0
	for _, oo := range offline.Outcomes {
		if oo.Skipped {
			continue
		}
		lv, ok := verdicts[oo.Assertion]
		if !ok {
			continue
		}
		compared++
		if lv != oo.OK {
			mismatched = append(mismatched, fmt.Sprintf("%q live=%v offline=%v", oo.Assertion, lv, oo.OK))
		}
	}
	if len(mismatched) == 0 {
		o.OK = true
		o.Detail = fmt.Sprintf("offline replay agrees with the live run on %d assertions", compared)
		return o
	}
	o.Detail = "offline replay disagrees: " + strings.Join(mismatched, "; ")
	return o
}

// EvalRecording evaluates the scenario's assertions offline, against a
// flight recording alone: measured values come from the footer, bound
// quantities are recomputed from the recorded slots, depths and roles.
// Assertions needing unrecorded evidence (awake split, quiescence) come
// back Skipped. A header cross-check guards against verifying a recording
// of a different scenario.
func EvalRecording(s *Scenario, rec *flight.Recording) *Result {
	res := &Result{Scenario: s}
	res.Outcomes = append(res.Outcomes, headerOutcome(s.Spec, rec.Header))
	m := Measured{Protocol: rec.Header.Protocol}
	if f := rec.Footer; f != nil {
		m.ScheduleLen, m.Rounds = f.ScheduleLen, f.Rounds
		m.Audience, m.Received = f.Audience, f.Received
		m.Completed = f.Received == f.Audience && f.Audience > 0
		m.CompletionRound = f.CompletionRound
		m.Collisions, m.Transmissions = f.Collisions, f.Transmissions
	} else {
		res.Outcomes = append(res.Outcomes, Outcome{
			Assertion: "recording-complete",
			Detail:    "recording has no footer (truncated before Close); cannot evaluate assertions offline",
		})
		return res
	}
	res.Measured = m
	res.Bounds = recordingBounds(rec)
	for _, a := range s.Asserts {
		res.Outcomes = append(res.Outcomes, a.Eval(m, res.Bounds))
	}
	return res
}

// headerOutcome cross-checks the recording header against the spec.
func headerOutcome(sp Spec, h flight.Header) Outcome {
	o := Outcome{Assertion: "recording-matches-spec"}
	var bad []string
	if !strings.EqualFold(h.Protocol, sp.protocol()) {
		bad = append(bad, fmt.Sprintf("protocol %q != %q", h.Protocol, strings.ToUpper(sp.protocol())))
	}
	if h.N != sp.N {
		bad = append(bad, fmt.Sprintf("n %d != %d", h.N, sp.N))
	}
	if h.Seed != sp.Seed {
		bad = append(bad, fmt.Sprintf("seed %d != %d", h.Seed, sp.Seed))
	}
	if h.Channels != sp.channels() {
		bad = append(bad, fmt.Sprintf("channels %d != %d", h.Channels, sp.channels()))
	}
	if h.Source != sp.Source {
		bad = append(bad, fmt.Sprintf("source %d != %d", h.Source, sp.Source))
	}
	if h.LossRate != sp.LossRate {
		bad = append(bad, fmt.Sprintf("loss %v != %v", h.LossRate, sp.LossRate))
	}
	if len(bad) == 0 {
		o.OK = true
		o.Detail = "recording header matches the scenario spec"
		return o
	}
	o.Detail = "recording is not of this scenario: " + strings.Join(bad, ", ")
	return o
}

// recordingBounds recomputes the Bounds quantities from recorded topology
// (mirroring the flight verifier's round-bound inputs).
func recordingBounds(rec *flight.Recording) Bounds {
	b := Bounds{K: rec.Header.Channels}
	for _, n := range rec.Nodes {
		if n.BSlot > b.SmallDelta {
			b.SmallDelta = n.BSlot
		}
		if n.LSlot > b.Delta {
			b.Delta = n.LSlot
		}
		if n.USlot > b.DeltaU {
			b.DeltaU = n.USlot
		}
		if n.Depth > b.H {
			b.H = n.Depth
		}
		switch n.Role {
		case flight.RoleHead:
			b.Heads++
			fallthrough
		case flight.RoleGateway:
			if n.Depth > b.HBT {
				b.HBT = n.Depth
			}
		}
		if n.ID == rec.Header.Source {
			b.Pre = n.Depth
		}
	}
	return b
}

// renderMetrics is the golden "metrics" section: the measured outcome in
// canonical key = value lines (awake/energy lines only when measured).
func renderMetrics(m Measured) string {
	var b strings.Builder
	put := func(k, v string) { fmt.Fprintf(&b, "%s = %s\n", k, v) }
	put("protocol", m.Protocol)
	put("schedule-len", fmt.Sprint(m.ScheduleLen))
	put("rounds", fmt.Sprint(m.Rounds))
	put("audience", fmt.Sprint(m.Audience))
	put("received", fmt.Sprint(m.Received))
	put("completed", fmt.Sprint(m.Completed))
	put("completion-round", fmt.Sprint(m.CompletionRound))
	if m.HasQuiesced {
		put("quiesced", fmt.Sprint(m.Quiesced))
	}
	put("collisions", fmt.Sprint(m.Collisions))
	put("transmissions", fmt.Sprint(m.Transmissions))
	if m.HasAwake {
		put("max-awake", fmt.Sprint(m.MaxAwake))
		put("mean-awake", fmt.Sprintf("%.2f", m.MeanAwake))
	}
	if m.HasEnergy {
		put("max-energy", fmt.Sprintf("%.2f", m.Energy))
	}
	return b.String()
}

// renderTimeline is the golden "timeline" section: per-round event counts,
// one line per round with activity.
func renderTimeline(events []radio.Event) string {
	type counts struct{ tx, rx, coll, loss, nodeFail, linkFail int }
	perRound := map[int]*counts{}
	last := 0
	for _, ev := range events {
		c := perRound[ev.Round]
		if c == nil {
			c = &counts{}
			perRound[ev.Round] = c
		}
		if ev.Round > last {
			last = ev.Round
		}
		switch ev.Kind {
		case radio.EvTransmit:
			c.tx++
		case radio.EvDeliver:
			c.rx++
		case radio.EvCollision:
			c.coll++
		case radio.EvLoss:
			c.loss++
		case radio.EvNodeFail:
			c.nodeFail++
		case radio.EvLinkFail:
			c.linkFail++
		}
	}
	var b strings.Builder
	for r := 0; r <= last; r++ {
		c := perRound[r]
		if c == nil {
			continue
		}
		fmt.Fprintf(&b, "r%d", r)
		for _, f := range []struct {
			name string
			n    int
		}{{"tx", c.tx}, {"rx", c.rx}, {"coll", c.coll}, {"loss", c.loss}, {"node-fail", c.nodeFail}, {"link-fail", c.linkFail}} {
			if f.n > 0 {
				fmt.Fprintf(&b, " %s=%d", f.name, f.n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
