package scenario

import (
	"bytes"
	"testing"
)

// FuzzScenarioParse asserts the parser's two safety contracts on arbitrary
// input: it never panics, and accepted input reaches a formatting fixpoint —
// Format(Parse(x)) parses back to something that formats identically
// (canonical form is stable, so fmt/update tooling cannot oscillate).
func FuzzScenarioParse(f *testing.F) {
	f.Add([]byte("-- spec --\nn = 40\nside = 8\n"))
	f.Add([]byte("-- spec --\nn = 10\nside = 8\nprotocol = pflood\nforward = 0.5\n-- assert --\ncompleted\nrounds <= theorem1\n"))
	f.Add([]byte("comment\n-- spec --\nn = 1\nside = 1\n-- script --\nchurn 3 0.5\n-- metrics --\nrounds = 1\n"))
	f.Add([]byte("-- spec --\nn = 5\nside = 8\nseed = -3\nloss = 0.25\n-- script --\nfail 2 4\ncut 1 3 2\nfailfrac 0.1\n"))
	f.Add([]byte("-- spec --\nname = x\nn = 2\nside = 2\njoiner = 1\nprotocol = discovery\n"))
	f.Add([]byte("-- --")) // regression: marker prefix/suffix overlap panicked

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		canon := s.Format()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, canon)
		}
		canon2 := s2.Format()
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("format is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", canon, canon2)
		}
	})
}
