// txtar.go implements the minimal txtar container format the scenario
// files ride in: free comment text, then sections opened by "-- name --"
// marker lines whose bodies run to the next marker. It mirrors
// golang.org/x/tools/txtar (the testscript container) without taking the
// dependency; only what .dsn files need is implemented.
package scenario

import (
	"bytes"
	"fmt"
	"strings"
)

// section is one named txtar section.
type section struct {
	Name string
	Data string
}

// archive is a parsed txtar container.
type archive struct {
	Comment  string
	Sections []section
}

// marker returns the section name if line is a "-- name --" marker.
func marker(line string) (string, bool) {
	line = strings.TrimSuffix(line, "\r")
	// len >= 6 keeps the prefix and suffix from overlapping ("-- --" is
	// not a marker, it has no room for a name).
	if len(line) < 6 || !strings.HasPrefix(line, "-- ") || !strings.HasSuffix(line, " --") {
		return "", false
	}
	name := strings.TrimSpace(line[3 : len(line)-3])
	if name == "" {
		return "", false
	}
	return name, true
}

// parseArchive splits data into the leading comment and its sections.
// Section bodies are normalized to end in exactly one trailing newline
// (empty bodies stay empty), so formatting a parsed archive is a fixpoint.
func parseArchive(data []byte) archive {
	var a archive
	var cur *section
	var buf bytes.Buffer
	flush := func() {
		text := buf.String()
		if cur == nil {
			a.Comment = text
		} else {
			cur.Data = text
			a.Sections = append(a.Sections, *cur)
		}
		buf.Reset()
	}
	rest := string(data)
	for len(rest) > 0 {
		line := rest
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i+1], rest[i+1:]
		} else {
			rest = ""
		}
		if name, ok := marker(strings.TrimSuffix(line, "\n")); ok {
			flush()
			cur = &section{Name: name}
			continue
		}
		buf.WriteString(line)
	}
	flush()
	return a
}

// formatArchive renders the archive back to txtar bytes, normalizing every
// non-empty block (comment and section bodies) to end in one newline.
func formatArchive(a archive) []byte {
	var buf bytes.Buffer
	buf.WriteString(normalizeBlock(a.Comment))
	for _, s := range a.Sections {
		fmt.Fprintf(&buf, "-- %s --\n", s.Name)
		buf.WriteString(normalizeBlock(s.Data))
	}
	return buf.Bytes()
}

// normalizeBlock trims trailing blank space and re-adds a single final
// newline (empty input stays empty).
func normalizeBlock(s string) string {
	s = strings.TrimRight(s, " \t\n\r")
	if s == "" {
		return ""
	}
	return s + "\n"
}
