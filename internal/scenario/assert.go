// assert.go is the scenario assertion vocabulary: parsed assertion lines,
// the paper-bound symbols they may reference (Lemma 1, Theorem 1, the DFO
// baseline bound), and the evaluator that turns a measured run into
// structured pass/fail outcomes.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Assertion keywords (bare lines in the assert section).
const (
	// KeyCompleted: every audience node received the payload.
	KeyCompleted = "completed"
	// KeyQuiescent: every live program reported Done before the round
	// budget ran out (the network went back to sleep on its own).
	KeyQuiescent = "quiescent"
	// KeyCollisionFree: the run had zero collision events — the paper's
	// collision-freedom guarantee for CFF/ICFF schedules.
	KeyCollisionFree = "collision-free"
)

// Comparable metrics (left-hand side of "<metric> <op> <bound>").
var metrics = map[string]bool{
	"delivery-ratio": true, "rounds": true, "completion-round": true,
	"max-awake": true, "mean-awake": true, "collisions": true,
	"transmissions": true, "received": true, "energy": true,
}

// Bound symbols (right-hand side alternatives to a number).
const (
	SymLemma1        = "lemma1"
	SymLemma1Awake   = "lemma1-awake"
	SymTheorem1      = "theorem1"
	SymTheorem1Awake = "theorem1-awake"
	SymDFO           = "dfo"
)

var symbols = map[string]bool{
	SymLemma1: true, SymLemma1Awake: true,
	SymTheorem1: true, SymTheorem1Awake: true,
	SymDFO: true,
}

var ops = map[string]bool{"<=": true, ">=": true, "<": true, ">": true, "==": true, "!=": true}

// Assertion is one parsed assert line: either a bare keyword or a
// comparison of a measured metric against a number or bound symbol.
type Assertion struct {
	// Metric is a comparable metric name or (with empty Op) a keyword.
	Metric string
	// Op is one of <= >= < > == != ("" for keywords).
	Op string
	// Symbol names a paper bound when non-empty; otherwise Value is the
	// numeric bound.
	Symbol string
	Value  float64
}

// ParseAssertion parses one assert-section line.
func ParseAssertion(line string) (Assertion, error) {
	f := strings.Fields(line)
	switch len(f) {
	case 1:
		switch f[0] {
		case KeyCompleted, KeyQuiescent, KeyCollisionFree:
			return Assertion{Metric: f[0]}, nil
		}
		return Assertion{}, fmt.Errorf("scenario: unknown assertion keyword %q", f[0])
	case 3:
		a := Assertion{Metric: f[0], Op: f[1]}
		if !metrics[a.Metric] {
			return Assertion{}, fmt.Errorf("scenario: unknown metric %q in %q", a.Metric, line)
		}
		if !ops[a.Op] {
			return Assertion{}, fmt.Errorf("scenario: unknown operator %q in %q", a.Op, line)
		}
		if symbols[f[2]] {
			a.Symbol = f[2]
			return a, nil
		}
		v, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return Assertion{}, fmt.Errorf("scenario: bound %q is neither a number nor a known symbol", f[2])
		}
		a.Value = v
		return a, nil
	}
	return Assertion{}, fmt.Errorf("scenario: assertion %q wants <metric> <op> <bound> or a keyword", line)
}

// String renders the assertion in canonical form.
func (a Assertion) String() string {
	if a.Op == "" {
		return a.Metric
	}
	bound := a.Symbol
	if bound == "" {
		bound = formatFloat(a.Value)
	}
	return fmt.Sprintf("%s %s %s", a.Metric, a.Op, bound)
}

// Bounds carries the structural quantities the paper's bounds are stated
// in, captured from the live assignment or recomputed from a recording.
type Bounds struct {
	// K is the channel count the run used.
	K int
	// DeltaU is the largest u-slot (Lemma 1), SmallDelta the largest
	// b-slot and Delta the largest l-slot (Theorem 1).
	DeltaU, SmallDelta, Delta int
	// H is the CNet tree height, HBT the backbone height.
	H, HBT int
	// Heads is the cluster-head count p (the DFO 4p-2 bound).
	Heads int
	// Pre is the source's tree depth: a non-root source pays a preamble
	// relay of that many rounds before the scheduled flood starts.
	Pre int
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func (b Bounds) k() int {
	if b.K < 1 {
		return 1
	}
	return b.K
}

// Value resolves a bound symbol to its numeric value and the formula it
// was computed with.
func (b Bounds) Value(sym string) (int, string, error) {
	k := b.k()
	switch sym {
	case SymLemma1:
		v := b.Pre + ceilDiv(b.DeltaU, k)*(b.H+1)
		return v, fmt.Sprintf("pre + ceil(Delta_u/k)*(h+1) = %d + %d*%d", b.Pre, ceilDiv(b.DeltaU, k), b.H+1), nil
	case SymLemma1Awake:
		v := 2 * ceilDiv(b.DeltaU, k)
		return v, fmt.Sprintf("2*ceil(Delta_u/k) = 2*%d", ceilDiv(b.DeltaU, k)), nil
	case SymTheorem1:
		v := b.Pre + ceilDiv(b.SmallDelta, k)*b.HBT + ceilDiv(b.Delta, k)
		return v, fmt.Sprintf("pre + ceil(delta/k)*h_BT + ceil(Delta/k) = %d + %d*%d + %d",
			b.Pre, ceilDiv(b.SmallDelta, k), b.HBT, ceilDiv(b.Delta, k)), nil
	case SymTheorem1Awake:
		v := 2*ceilDiv(b.SmallDelta, k) + ceilDiv(b.Delta, k)
		return v, fmt.Sprintf("2*ceil(delta/k) + ceil(Delta/k) = 2*%d + %d",
			ceilDiv(b.SmallDelta, k), ceilDiv(b.Delta, k)), nil
	case SymDFO:
		v := 4*b.Heads - 2
		if v < 2 {
			v = 2
		}
		return v, fmt.Sprintf("4p-2 with p=%d", b.Heads), nil
	}
	return 0, "", fmt.Errorf("scenario: unknown bound symbol %q", sym)
}

// Measured is the protocol-independent view of what a run did — the
// evaluator's input, filled from broadcast/gather/discovery metrics live
// or from a flight recording offline.
type Measured struct {
	Protocol        string
	ScheduleLen     int
	Rounds          int
	Audience        int
	Received        int
	Completed       bool
	CompletionRound int
	MaxAwake        int
	MeanAwake       float64
	Collisions      int
	Transmissions   int
	Quiesced        bool
	// Energy is the maximum per-node energy cost of the run under
	// energy.DefaultModel (awake-round charging over the executed rounds).
	Energy float64

	// HasAwake gates max-awake/mean-awake, HasEnergy the energy budget
	// (it needs the per-node listen/transmit split), HasQuiesced the
	// quiescent keyword: recordings carry no listen events and no
	// quiescence flag, so those cannot be reconstructed offline, and
	// discovery/gather runs expose only a subset live.
	HasAwake    bool
	HasEnergy   bool
	HasQuiesced bool
}

// DeliveryRatio is Received/Audience (1 for an empty audience).
func (m Measured) DeliveryRatio() float64 {
	if m.Audience == 0 {
		return 1
	}
	return float64(m.Received) / float64(m.Audience)
}

// value returns the metric's measured value and whether it is available
// in this evaluation mode.
func (m Measured) value(metric string) (v float64, available bool, err error) {
	switch metric {
	case "delivery-ratio":
		return m.DeliveryRatio(), true, nil
	case "rounds":
		return float64(m.Rounds), true, nil
	case "completion-round":
		return float64(m.CompletionRound), true, nil
	case "max-awake":
		return float64(m.MaxAwake), m.HasAwake, nil
	case "mean-awake":
		return m.MeanAwake, m.HasAwake, nil
	case "collisions":
		return float64(m.Collisions), true, nil
	case "transmissions":
		return float64(m.Transmissions), true, nil
	case "received":
		return float64(m.Received), true, nil
	case "energy":
		return m.Energy, m.HasEnergy, nil
	}
	return 0, false, fmt.Errorf("scenario: unknown metric %q", metric)
}

func compare(v float64, op string, bound float64) bool {
	switch op {
	case "<=":
		return v <= bound
	case ">=":
		return v >= bound
	case "<":
		return v < bound
	case ">":
		return v > bound
	case "==":
		return v == bound
	case "!=":
		return v != bound
	}
	return false
}

// Outcome is the structured result of evaluating one assertion.
type Outcome struct {
	// Assertion is the canonical source text.
	Assertion string
	// OK is the verdict (true for skipped outcomes, which do not fail a
	// scenario but are reported as skipped).
	OK bool
	// Skipped marks assertions the evaluation mode cannot decide (e.g.
	// awake-based metrics offline).
	Skipped bool
	// Detail explains the verdict: measured value, bound, and for
	// symbolic bounds the resolved formula.
	Detail string
}

// String renders "ok|FAIL|skip assert <text>: <detail>".
func (o Outcome) String() string {
	verdict := "ok  "
	if o.Skipped {
		verdict = "skip"
	} else if !o.OK {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s assert %q: %s", verdict, o.Assertion, o.Detail)
}

// Eval decides one assertion against a measured run and its bounds.
func (a Assertion) Eval(m Measured, b Bounds) Outcome {
	out := Outcome{Assertion: a.String()}
	if a.Op == "" {
		switch a.Metric {
		case KeyCompleted:
			out.OK = m.Completed
			out.Detail = fmt.Sprintf("received %d/%d", m.Received, m.Audience)
		case KeyQuiescent:
			if !m.HasQuiesced {
				out.OK, out.Skipped = true, true
				out.Detail = "quiescence is not recorded; not evaluable offline"
				return out
			}
			out.OK = m.Quiesced
			out.Detail = fmt.Sprintf("quiesced=%v after %d rounds (schedule %d)", m.Quiesced, m.Rounds, m.ScheduleLen)
		case KeyCollisionFree:
			out.OK = m.Collisions == 0
			out.Detail = fmt.Sprintf("collisions = %d", m.Collisions)
		default:
			out.Detail = fmt.Sprintf("unknown keyword %q", a.Metric)
		}
		return out
	}

	v, available, err := m.value(a.Metric)
	if err != nil {
		out.Detail = err.Error()
		return out
	}
	if !available {
		out.OK, out.Skipped = true, true
		out.Detail = fmt.Sprintf("%s is not recorded; not evaluable offline", a.Metric)
		return out
	}
	bound := a.Value
	boundText := formatFloat(a.Value)
	if a.Symbol != "" {
		bv, formula, err := b.Value(a.Symbol)
		if err != nil {
			out.Detail = err.Error()
			return out
		}
		bound = float64(bv)
		boundText = fmt.Sprintf("%s = %d (%s)", a.Symbol, bv, formula)
	}
	out.OK = compare(v, a.Op, bound)
	verb := "satisfies"
	if !out.OK {
		verb = "violates"
	}
	out.Detail = fmt.Sprintf("%s = %s %s %s %s", a.Metric, formatFloat(v), verb, a.Op, boundText)
	return out
}
