// Package scenario implements the declarative end-to-end scenario DSL: a
// .dsn file is a txtar archive whose "spec" section names a deployment,
// protocol and seeds, whose optional "script" section injects churn,
// mobility and failures, and whose "assert" section states the expected
// outcome — delivery ratio, round bounds against the paper's Lemma 1 and
// Theorem 1, energy budgets, quiescence, collision freedom. Optional
// "metrics" and "timeline" sections pin golden outputs.
//
// One Runner executes a scenario through the existing workload → core →
// broadcast → radio stack and evaluates the assertions with structured
// failure messages. The same runner backs three entry points: the go test
// corpus walker (internal/scenario/corpus_test.go, with -update for
// goldens), the dynsim -scenario / nettool scenario run|verify CLI paths,
// and flight integration — every run can emit a .dsfr recording whose
// offline re-verification (flight.Verify plus recording-based assertion
// evaluation) must agree with the live run. See docs/scenarios.md.
package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dynsens/internal/graph"
)

// Section names a .dsn file may contain.
const (
	secSpec     = "spec"
	secScript   = "script"
	secAssert   = "assert"
	secMetrics  = "metrics"
	secTimeline = "timeline"
)

// Protocols a spec may name.
var protocols = map[string]bool{
	"icff": true, "cff": true, "dfo": true, "pflood": true,
	"multicast": true, "gather": true, "discovery": true,
}

// Deployment kinds a spec may name.
var deployments = map[string]bool{"rgg": true, "grid": true}

// Spec is the parsed "spec" section: everything needed to rebuild the
// deployment and run the protocol. Zero values mean "use the default";
// Format omits them, so parse→format→parse is a fixpoint.
type Spec struct {
	// Name identifies the scenario in reports (default: the file base).
	Name string
	// Deploy picks the deployment generator: "rgg" (incremental random
	// geometric, the paper's self-constructing placement; default) or
	// "grid" (deterministic lattice).
	Deploy string
	// N is the node count; Side the region side in 100 m units.
	N, Side int
	// Seed drives deployment placement and every derived stream.
	Seed int64
	// Protocol is one of icff|cff|dfo|pflood|multicast|gather|discovery
	// (default icff).
	Protocol string
	// Channels is the radio channel count k (default 1).
	Channels int
	// Workers is the radio engine shard-worker count (0 = engine
	// default). Purely a wall-clock knob: results are byte-identical.
	Workers int
	// Runtime selects the execution substrate: "kernel" (default, the
	// in-process shard-parallel engine) or "dist" (the distributed actor
	// runtime of internal/dist, plan-family protocols only). Results and
	// recordings are byte-identical across runtimes for the same spec.
	Runtime string
	// Source is the broadcast source node (default 0, the sink).
	Source graph.NodeID
	// LossRate drops each frame independently; LossSeed drives the coins.
	LossRate float64
	LossSeed int64
	// Forward is the pflood rebroadcast probability; MaxDelay its backoff
	// bound.
	Forward  float64
	MaxDelay int
	// Group is the multicast group ID (default 1); GroupFrac the random
	// membership probability (default 0.3).
	Group     int
	GroupFrac float64
	// Joiner is the discovery protagonist (default -1 = the highest node
	// ID, i.e. the most recent arrival).
	Joiner graph.NodeID
}

func (s Spec) protocol() string {
	if s.Protocol == "" {
		return "icff"
	}
	return s.Protocol
}

func (s Spec) deploy() string {
	if s.Deploy == "" {
		return "rgg"
	}
	return s.Deploy
}

func (s Spec) channels() int {
	if s.Channels <= 0 {
		return 1
	}
	return s.Channels
}

func (s Spec) group() int {
	if s.Group <= 0 {
		return 1
	}
	return s.Group
}

func (s Spec) groupFrac() float64 {
	if s.GroupFrac <= 0 {
		return 0.3
	}
	return s.GroupFrac
}

// Script verbs.
const (
	// VerbChurn generates a seeded join/leave trace before the run:
	// "churn <steps> <leave-frac>".
	VerbChurn = "churn"
	// VerbMobility generates a seeded movement trace before the run:
	// "mobility <moves> <wander>".
	VerbMobility = "mobility"
	// VerbFailFrac kills a random fraction of nodes mid-run:
	// "failfrac <frac>".
	VerbFailFrac = "failfrac"
	// VerbFail kills one node at a round: "fail <node> <round>".
	VerbFail = "fail"
	// VerbCut cuts one link at a round: "cut <a> <b> <round>".
	VerbCut = "cut"
)

// Step is one parsed script line.
type Step struct {
	Verb  string
	Node  graph.NodeID // fail: victim; cut: endpoint A
	Peer  graph.NodeID // cut: endpoint B
	Round int          // fail, cut
	Steps int          // churn: steps; mobility: moves
	Frac  float64      // churn: leave-frac; mobility: wander; failfrac: frac
}

func (st Step) format() string {
	switch st.Verb {
	case VerbChurn, VerbMobility:
		return fmt.Sprintf("%s %d %s", st.Verb, st.Steps, formatFloat(st.Frac))
	case VerbFailFrac:
		return fmt.Sprintf("%s %s", st.Verb, formatFloat(st.Frac))
	case VerbFail:
		return fmt.Sprintf("%s %d %d", st.Verb, st.Node, st.Round)
	case VerbCut:
		return fmt.Sprintf("%s %d %d %d", st.Verb, st.Node, st.Peer, st.Round)
	}
	return st.Verb
}

// Scenario is one fully parsed .dsn file.
type Scenario struct {
	// Path is where the scenario was loaded from ("" when parsed from
	// memory); reports use it as the failure prefix.
	Path string
	// Comment is the free text above the first section marker.
	Comment string
	Spec    Spec
	Script  []Step
	Asserts []Assertion
	// GoldenMetrics / GoldenTimeline hold the optional pinned sections
	// ("" = section absent; compare with Result outputs, refresh with
	// Runner.Update).
	GoldenMetrics  string
	GoldenTimeline string
}

// Name returns the spec name, falling back to the file base.
func (s *Scenario) Name() string {
	if s.Spec.Name != "" {
		return s.Spec.Name
	}
	if s.Path != "" {
		base := s.Path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		return strings.TrimSuffix(base, ".dsn")
	}
	return "scenario"
}

// Load reads and parses a .dsn file.
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.Path = path
	return s, nil
}

// Parse decodes a .dsn txtar archive and validates it.
func Parse(data []byte) (*Scenario, error) {
	a := parseArchive(data)
	s := &Scenario{Comment: a.Comment, Spec: Spec{Joiner: -1}}
	seen := map[string]bool{}
	for _, sec := range a.Sections {
		if seen[sec.Name] {
			return nil, fmt.Errorf("scenario: duplicate section %q", sec.Name)
		}
		seen[sec.Name] = true
		var err error
		switch sec.Name {
		case secSpec:
			err = s.parseSpec(sec.Data)
		case secScript:
			err = s.parseScript(sec.Data)
		case secAssert:
			err = s.parseAsserts(sec.Data)
		case secMetrics:
			s.GoldenMetrics = normalizeBlock(sec.Data)
		case secTimeline:
			s.GoldenTimeline = normalizeBlock(sec.Data)
		default:
			err = fmt.Errorf("scenario: unknown section %q", sec.Name)
		}
		if err != nil {
			return nil, err
		}
	}
	if !seen[secSpec] {
		return nil, fmt.Errorf("scenario: missing required %q section", secSpec)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// specLines splits a section into trimmed, comment-stripped lines.
func specLines(data string) []string {
	var out []string
	for _, line := range strings.Split(data, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}

func (s *Scenario) parseSpec(data string) error {
	for _, line := range specLines(data) {
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return fmt.Errorf("scenario: spec line %q is not key = value", line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "name":
			s.Spec.Name = val
		case "deploy":
			s.Spec.Deploy = val
		case "n":
			s.Spec.N, err = parseInt(val)
		case "side":
			s.Spec.Side, err = parseInt(val)
		case "seed":
			s.Spec.Seed, err = strconv.ParseInt(val, 10, 64)
		case "protocol":
			s.Spec.Protocol = val
		case "channels":
			s.Spec.Channels, err = parseInt(val)
		case "workers":
			s.Spec.Workers, err = parseInt(val)
		case "runtime":
			s.Spec.Runtime = val
		case "source":
			s.Spec.Source, err = parseNodeID(val)
		case "loss":
			s.Spec.LossRate, err = strconv.ParseFloat(val, 64)
		case "loss-seed":
			s.Spec.LossSeed, err = strconv.ParseInt(val, 10, 64)
		case "forward":
			s.Spec.Forward, err = strconv.ParseFloat(val, 64)
		case "max-delay":
			s.Spec.MaxDelay, err = parseInt(val)
		case "group":
			s.Spec.Group, err = parseInt(val)
		case "group-frac":
			s.Spec.GroupFrac, err = strconv.ParseFloat(val, 64)
		case "joiner":
			s.Spec.Joiner, err = parseNodeID(val)
		default:
			return fmt.Errorf("scenario: unknown spec key %q", key)
		}
		if err != nil {
			return fmt.Errorf("scenario: spec %s: %v", key, err)
		}
	}
	return nil
}

func (s *Scenario) parseScript(data string) error {
	for _, line := range specLines(data) {
		f := strings.Fields(line)
		st := Step{Verb: f[0]}
		var err error
		switch st.Verb {
		case VerbChurn, VerbMobility:
			if len(f) != 3 {
				return fmt.Errorf("scenario: %s wants <steps> <frac>, got %q", st.Verb, line)
			}
			if st.Steps, err = parseInt(f[1]); err == nil {
				st.Frac, err = strconv.ParseFloat(f[2], 64)
			}
		case VerbFailFrac:
			if len(f) != 2 {
				return fmt.Errorf("scenario: failfrac wants <frac>, got %q", line)
			}
			st.Frac, err = strconv.ParseFloat(f[1], 64)
		case VerbFail:
			if len(f) != 3 {
				return fmt.Errorf("scenario: fail wants <node> <round>, got %q", line)
			}
			if st.Node, err = parseNodeID(f[1]); err == nil {
				st.Round, err = parseInt(f[2])
			}
		case VerbCut:
			if len(f) != 4 {
				return fmt.Errorf("scenario: cut wants <a> <b> <round>, got %q", line)
			}
			if st.Node, err = parseNodeID(f[1]); err == nil {
				if st.Peer, err = parseNodeID(f[2]); err == nil {
					st.Round, err = parseInt(f[3])
				}
			}
		default:
			return fmt.Errorf("scenario: unknown script verb %q", st.Verb)
		}
		if err != nil {
			return fmt.Errorf("scenario: script %q: %v", line, err)
		}
		s.Script = append(s.Script, st)
	}
	return nil
}

func (s *Scenario) parseAsserts(data string) error {
	for _, line := range specLines(data) {
		a, err := ParseAssertion(line)
		if err != nil {
			return err
		}
		s.Asserts = append(s.Asserts, a)
	}
	return nil
}

// validate cross-checks the parsed scenario.
func (s *Scenario) validate() error {
	sp := &s.Spec
	if sp.N <= 0 {
		return fmt.Errorf("scenario: spec needs n > 0")
	}
	if sp.Side <= 0 {
		return fmt.Errorf("scenario: spec needs side > 0")
	}
	if !protocols[sp.protocol()] {
		return fmt.Errorf("scenario: unknown protocol %q", sp.Protocol)
	}
	if !deployments[sp.deploy()] {
		return fmt.Errorf("scenario: unknown deploy %q (rgg|grid)", sp.Deploy)
	}
	switch sp.Runtime {
	case "", "kernel":
	case "dist":
		if !FlightCapable(sp.protocol()) {
			return fmt.Errorf("scenario: runtime = dist supports icff|cff|dfo|multicast|pflood, not %s", sp.protocol())
		}
	default:
		return fmt.Errorf("scenario: unknown runtime %q (kernel|dist)", sp.Runtime)
	}
	if !(sp.LossRate >= 0 && sp.LossRate <= 1) {
		return fmt.Errorf("scenario: loss %v out of [0,1]", sp.LossRate)
	}
	if !(sp.Forward >= 0 && sp.Forward <= 1) {
		return fmt.Errorf("scenario: forward %v out of [0,1]", sp.Forward)
	}
	if !(sp.GroupFrac >= 0 && sp.GroupFrac <= 1) {
		return fmt.Errorf("scenario: group-frac %v out of [0,1]", sp.GroupFrac)
	}
	traces := 0
	for _, st := range s.Script {
		switch st.Verb {
		case VerbChurn, VerbMobility:
			traces++
			if st.Steps <= 0 || !(st.Frac >= 0 && st.Frac <= 1) {
				return fmt.Errorf("scenario: %s %d %v out of range", st.Verb, st.Steps, st.Frac)
			}
			if sp.deploy() != "rgg" {
				return fmt.Errorf("scenario: %s traces need deploy = rgg", st.Verb)
			}
		case VerbFailFrac:
			if !(st.Frac >= 0 && st.Frac <= 1) {
				return fmt.Errorf("scenario: failfrac %v out of [0,1]", st.Frac)
			}
		case VerbFail, VerbCut:
			if st.Round <= 0 {
				return fmt.Errorf("scenario: %s round must be >= 1", st.Verb)
			}
		}
	}
	if traces > 1 {
		return fmt.Errorf("scenario: at most one churn/mobility trace per scenario")
	}
	// Protocol-specific rules: reject spec/script combinations the target
	// engine would silently ignore.
	switch sp.protocol() {
	case "pflood":
		if !(sp.Forward > 0) {
			return fmt.Errorf("scenario: pflood needs forward > 0")
		}
	case "gather":
		if sp.LossRate != 0 {
			return fmt.Errorf("scenario: gather does not model frame loss")
		}
		if s.hasVerb(VerbCut) {
			return fmt.Errorf("scenario: gather does not model link cuts")
		}
	case "discovery":
		if sp.LossRate != 0 || s.hasVerb(VerbCut) || s.hasVerb(VerbFail) || s.hasVerb(VerbFailFrac) {
			return fmt.Errorf("scenario: discovery supports churn/mobility scripts only")
		}
		if s.GoldenTimeline != "" {
			return fmt.Errorf("scenario: discovery runs are not traced; timeline goldens unsupported")
		}
	}
	return nil
}

func (s *Scenario) hasVerb(verb string) bool {
	for _, st := range s.Script {
		if st.Verb == verb {
			return true
		}
	}
	return false
}

// Format renders the scenario in canonical form: spec keys in fixed order
// with defaults omitted, one script step and assertion per line, golden
// sections verbatim. Parse(Format(s)) is equivalent to s, and
// Format(Parse(Format(s))) is byte-identical (see FuzzScenarioParse).
func (s *Scenario) Format() []byte {
	var spec strings.Builder
	sp := s.Spec
	put := func(key, val string) { fmt.Fprintf(&spec, "%s = %s\n", key, val) }
	if sp.Name != "" {
		put("name", sp.Name)
	}
	if sp.Deploy != "" {
		put("deploy", sp.Deploy)
	}
	put("n", strconv.Itoa(sp.N))
	put("side", strconv.Itoa(sp.Side))
	if sp.Seed != 0 {
		put("seed", strconv.FormatInt(sp.Seed, 10))
	}
	if sp.Protocol != "" {
		put("protocol", sp.Protocol)
	}
	if sp.Channels != 0 {
		put("channels", strconv.Itoa(sp.Channels))
	}
	if sp.Workers != 0 {
		put("workers", strconv.Itoa(sp.Workers))
	}
	if sp.Runtime != "" {
		put("runtime", sp.Runtime)
	}
	if sp.Source != 0 {
		put("source", strconv.Itoa(int(sp.Source)))
	}
	if sp.LossRate != 0 {
		put("loss", formatFloat(sp.LossRate))
	}
	if sp.LossSeed != 0 {
		put("loss-seed", strconv.FormatInt(sp.LossSeed, 10))
	}
	if sp.Forward != 0 {
		put("forward", formatFloat(sp.Forward))
	}
	if sp.MaxDelay != 0 {
		put("max-delay", strconv.Itoa(sp.MaxDelay))
	}
	if sp.Group != 0 {
		put("group", strconv.Itoa(sp.Group))
	}
	if sp.GroupFrac != 0 {
		put("group-frac", formatFloat(sp.GroupFrac))
	}
	if sp.Joiner != -1 {
		put("joiner", strconv.Itoa(int(sp.Joiner)))
	}

	a := archive{Comment: s.Comment}
	a.Sections = append(a.Sections, section{Name: secSpec, Data: spec.String()})
	if len(s.Script) > 0 {
		var b strings.Builder
		for _, st := range s.Script {
			b.WriteString(st.format())
			b.WriteByte('\n')
		}
		a.Sections = append(a.Sections, section{Name: secScript, Data: b.String()})
	}
	if len(s.Asserts) > 0 {
		var b strings.Builder
		for _, as := range s.Asserts {
			b.WriteString(as.String())
			b.WriteByte('\n')
		}
		a.Sections = append(a.Sections, section{Name: secAssert, Data: b.String()})
	}
	if s.GoldenMetrics != "" {
		a.Sections = append(a.Sections, section{Name: secMetrics, Data: s.GoldenMetrics})
	}
	if s.GoldenTimeline != "" {
		a.Sections = append(a.Sections, section{Name: secTimeline, Data: s.GoldenTimeline})
	}
	return formatArchive(a)
}

func parseInt(s string) (int, error) { return strconv.Atoi(s) }

func parseNodeID(s string) (graph.NodeID, error) {
	v, err := strconv.Atoi(s)
	return graph.NodeID(v), err
}

// formatFloat renders floats in the shortest round-tripping form.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// sortedKeys returns the sorted keys of a string-keyed map (report
// rendering helper).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
