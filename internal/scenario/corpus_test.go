package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "refresh golden metrics/timeline sections in place")

// corpusFiles returns every .dsn under the repo-level corpus and the
// examples tree, relative to this package.
func corpusFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".dsn") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("no .dsn files under %s", dir)
	}
	return files
}

// TestScenarioCorpus runs every positive scenario through the live stack
// with record/replay verification on: all assertions must hold, the
// recording must pass the offline verifier, and the offline re-evaluation
// must agree with the live run. -update refreshes goldens in place.
func TestScenarioCorpus(t *testing.T) {
	var files []string
	files = append(files, corpusFiles(t, filepath.Join("..", "..", "testdata", "scenarios", "positive"))...)
	for _, dir := range []string{"quickstart", "churn"} {
		files = append(files, corpusFiles(t, filepath.Join("..", "..", "examples", dir))...)
	}
	for _, path := range files {
		path := path
		t.Run(strings.TrimSuffix(filepath.Base(path), ".dsn"), func(t *testing.T) {
			t.Parallel()
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			opts := RunOptions{Update: *update}
			if FlightCapable(s.Spec.protocol()) {
				opts.Verify = true
			}
			res, err := Run(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			var report bytes.Buffer
			if werr := res.Write(&report); werr != nil {
				t.Fatal(werr)
			}
			if !res.Passed() {
				t.Fatalf("scenario failed:\n%s", report.String())
			}
			if *update && res.Updated != nil {
				if werr := os.WriteFile(path, res.Updated, 0o644); werr != nil {
					t.Fatal(werr)
				}
				t.Logf("updated goldens in %s", path)
			}
			// Round-trip: the on-disk file must already be canonical, so
			// CLI- and editor-authored files stay diff-stable.
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := Parse(raw)
			if err != nil {
				t.Fatal(err)
			}
			if got := s2.Format(); !bytes.Equal(raw, got) {
				t.Errorf("%s is not in canonical form; re-save it as:\n%s", path, got)
			}
		})
	}
}

// TestScenarioCorpusNegative runs the intentionally-violated fixtures:
// each must load fine but fail at least one assertion with a structured
// message naming the violated bound.
func TestScenarioCorpusNegative(t *testing.T) {
	for _, path := range corpusFiles(t, filepath.Join("..", "..", "testdata", "scenarios", "negative")) {
		path := path
		t.Run(strings.TrimSuffix(filepath.Base(path), ".dsn"), func(t *testing.T) {
			t.Parallel()
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(s, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Passed() {
				t.Fatalf("negative fixture %s unexpectedly passed", path)
			}
			for _, o := range res.Failures() {
				if o.Detail == "" {
					t.Errorf("failure outcome %q has no detail", o.Assertion)
				}
				if !strings.Contains(o.String(), "FAIL") {
					t.Errorf("failure outcome %q does not render FAIL: %s", o.Assertion, o)
				}
			}
		})
	}
}
