package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// measuredFixture is a fully-populated live measurement for evaluator tests.
func measuredFixture() Measured {
	return Measured{
		Protocol:    "ICFF",
		ScheduleLen: 20, Rounds: 18, Audience: 100, Received: 100,
		Completed: true, CompletionRound: 18,
		MaxAwake: 4, MeanAwake: 1.5, Collisions: 0, Transmissions: 60,
		Quiesced: true, Energy: 3.25,
		HasAwake: true, HasEnergy: true, HasQuiesced: true,
	}
}

func boundsFixture() Bounds {
	// lemma1 = 1 + ceil(6/2)*(5+1) = 19; theorem1 = 1 + ceil(2/2)*4 + ceil(4/2) = 7
	// lemma1-awake = 2*3 = 6; theorem1-awake = 2*1 + 2 = 4; dfo = 4*3-2 = 10
	return Bounds{K: 2, DeltaU: 6, SmallDelta: 2, Delta: 4, H: 5, HBT: 4, Heads: 3, Pre: 1}
}

// TestAssertionEval is the table-driven pass/fail/boundary matrix over the
// assertion vocabulary.
func TestAssertionEval(t *testing.T) {
	m := measuredFixture()
	b := boundsFixture()
	cases := []struct {
		line    string
		mutate  func(*Measured)
		ok      bool
		skipped bool
		detail  string // substring the outcome detail must contain
	}{
		// Keywords.
		{line: "completed", ok: true, detail: "received 100/100"},
		{line: "completed", mutate: func(m *Measured) { m.Received = 99; m.Completed = false }, ok: false, detail: "received 99/100"},
		{line: "quiescent", ok: true, detail: "quiesced=true"},
		{line: "quiescent", mutate: func(m *Measured) { m.Quiesced = false }, ok: false, detail: "quiesced=false"},
		{line: "quiescent", mutate: func(m *Measured) { m.HasQuiesced = false }, ok: true, skipped: true, detail: "not evaluable offline"},
		{line: "collision-free", ok: true, detail: "collisions = 0"},
		{line: "collision-free", mutate: func(m *Measured) { m.Collisions = 3 }, ok: false, detail: "collisions = 3"},

		// Numeric comparisons, including exact boundaries.
		{line: "delivery-ratio >= 1", ok: true},
		{line: "delivery-ratio >= 1", mutate: func(m *Measured) { m.Received = 80 }, ok: false, detail: "0.8 violates >= 1"},
		{line: "rounds <= 18", ok: true, detail: "18 satisfies <= 18"},
		{line: "rounds < 18", ok: false, detail: "18 violates < 18"},
		{line: "rounds == 18", ok: true},
		{line: "rounds != 18", ok: false},
		{line: "completion-round <= 17", ok: false, detail: "18 violates <= 17"},
		{line: "transmissions <= 60", ok: true},
		{line: "received >= 100", ok: true},
		{line: "energy <= 3.25", ok: true},
		{line: "energy <= 3.2", ok: false, detail: "3.25 violates <= 3.2"},
		{line: "energy <= 3.25", mutate: func(m *Measured) { m.HasEnergy = false }, ok: true, skipped: true, detail: "not recorded"},
		{line: "max-awake <= 4", ok: true},
		{line: "max-awake <= 4", mutate: func(m *Measured) { m.HasAwake = false }, ok: true, skipped: true, detail: "not recorded"},
		{line: "mean-awake < 2", ok: true},

		// Symbolic paper bounds (values derived in boundsFixture).
		{line: "rounds <= lemma1", ok: true, detail: "lemma1 = 19"},
		{line: "rounds <= theorem1", ok: false, detail: "theorem1 = 7"},
		{line: "max-awake <= lemma1-awake", ok: true, detail: "lemma1-awake = 6"},
		{line: "max-awake <= theorem1-awake", ok: true, detail: "theorem1-awake = 4"},
		{line: "rounds <= dfo", ok: false, detail: "dfo = 10 (4p-2 with p=3)"},
	}
	for _, tc := range cases {
		name := tc.line
		if tc.mutate != nil {
			name += " (mutated)"
		}
		t.Run(name, func(t *testing.T) {
			a, err := ParseAssertion(tc.line)
			if err != nil {
				t.Fatal(err)
			}
			mm := m
			if tc.mutate != nil {
				tc.mutate(&mm)
			}
			o := a.Eval(mm, b)
			if o.OK != tc.ok || o.Skipped != tc.skipped {
				t.Fatalf("Eval(%q) = ok=%v skipped=%v, want ok=%v skipped=%v (%s)",
					tc.line, o.OK, o.Skipped, tc.ok, tc.skipped, o.Detail)
			}
			if tc.detail != "" && !strings.Contains(o.Detail, tc.detail) {
				t.Fatalf("Eval(%q) detail %q does not contain %q", tc.line, o.Detail, tc.detail)
			}
		})
	}
}

func TestAssertionParseErrors(t *testing.T) {
	for _, line := range []string{
		"bogus",                // unknown keyword
		"rounds <= ",           // missing bound
		"rounds ~= 3",          // unknown operator
		"warp-factor <= 9",     // unknown metric
		"rounds <= warpfactor", // unknown symbol / non-number
		"rounds <= 1 2",        // too many fields
	} {
		if _, err := ParseAssertion(line); err == nil {
			t.Errorf("ParseAssertion(%q) accepted invalid input", line)
		}
	}
}

func TestDFOBoundFloor(t *testing.T) {
	// p=0 and p=1 both clamp to the 2-round floor instead of going <= 0.
	for heads, want := 0, 2; heads <= 1; heads++ {
		v, _, err := (Bounds{Heads: heads}).Value(SymDFO)
		if err != nil || v != want {
			t.Fatalf("dfo bound with p=%d = %d (%v), want %d", heads, v, err, want)
		}
	}
}

func TestDeliveryRatioEmptyAudience(t *testing.T) {
	if r := (Measured{}).DeliveryRatio(); r != 1 {
		t.Fatalf("empty-audience delivery ratio = %v, want 1", r)
	}
}

func TestParseRejectsInvalidSpecs(t *testing.T) {
	for name, body := range map[string]string{
		"missing spec":       "-- assert --\ncompleted\n",
		"zero n":             "-- spec --\nside = 8\n",
		"unknown protocol":   "-- spec --\nn = 4\nside = 8\nprotocol = warp\n",
		"unknown deploy":     "-- spec --\nn = 4\nside = 8\ndeploy = torus\n",
		"unknown key":        "-- spec --\nn = 4\nside = 8\nwarp = 9\n",
		"unknown section":    "-- spec --\nn = 4\nside = 8\n-- extra --\nx\n",
		"duplicate section":  "-- spec --\nn = 4\nside = 8\n-- spec --\nn = 5\n",
		"NaN loss":           "-- spec --\nn = 4\nside = 8\nloss = NaN\n",
		"loss out of range":  "-- spec --\nn = 4\nside = 8\nloss = 1.5\n",
		"grid churn":         "-- spec --\nn = 4\nside = 8\ndeploy = grid\n-- script --\nchurn 3 0.5\n",
		"two traces":         "-- spec --\nn = 4\nside = 8\n-- script --\nchurn 3 0.5\nmobility 2 0.1\n",
		"fail round zero":    "-- spec --\nn = 4\nside = 8\n-- script --\nfail 1 0\n",
		"pflood no forward":  "-- spec --\nn = 4\nside = 8\nprotocol = pflood\n",
		"gather with loss":   "-- spec --\nn = 4\nside = 8\nprotocol = gather\nloss = 0.1\n",
		"discovery failfrac": "-- spec --\nn = 4\nside = 8\nprotocol = discovery\n-- script --\nfailfrac 0.1\n",
		"discovery timeline": "-- spec --\nn = 4\nside = 8\nprotocol = discovery\n-- timeline --\nr1 tx=1\n",
		"bad script verb":    "-- spec --\nn = 4\nside = 8\n-- script --\nwarp 1\n",
		"bad assertion":      "-- spec --\nn = 4\nside = 8\n-- assert --\nwarp <= 9\n",
		"NaN churn frac":     "-- spec --\nn = 4\nside = 8\n-- script --\nchurn 3 NaN\n",
		"spec not key=value": "-- spec --\nn 4\n",
		"unknown runtime":    "-- spec --\nn = 4\nside = 8\nruntime = warp\n",
		"dist gather":        "-- spec --\nn = 4\nside = 8\nprotocol = gather\nruntime = dist\n",
		"dist discovery":     "-- spec --\nn = 4\nside = 8\nprotocol = discovery\nruntime = dist\n",
	} {
		if _, err := Parse([]byte(body)); err == nil {
			t.Errorf("%s: Parse accepted invalid scenario", name)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte("-- spec --\nn = 4\nside = 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	sp := s.Spec
	if sp.protocol() != "icff" || sp.deploy() != "rgg" || sp.channels() != 1 ||
		sp.group() != 1 || sp.groupFrac() != 0.3 || sp.Joiner != -1 {
		t.Fatalf("unexpected defaults: %+v", sp)
	}
	if s.Name() != "scenario" {
		t.Fatalf("fallback name = %q", s.Name())
	}
}

func TestFormatRoundTrip(t *testing.T) {
	const src = `Why not both comment lines
and a second one.
-- spec --
name = round-trip
n = 40
side = 8
seed = -7
protocol = pflood
channels = 2
workers = 4
source = 3
loss = 0.125
loss-seed = 9
forward = 0.5
max-delay = 3
-- script --
fail 2 4
cut 1 3 2
failfrac 0.1
-- assert --
completed
rounds <= theorem1
delivery-ratio >= 0.9
-- metrics --
rounds = 12
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	got := s.Format()
	if string(got) != src {
		t.Fatalf("canonical input did not round-trip:\n%s", got)
	}
}

// TestRuntimeKeyRoundTrip pins the runtime spec key: canonical placement
// (after workers), dist accepted for every plan-family protocol, and
// structured rejection of unknown values.
func TestRuntimeKeyRoundTrip(t *testing.T) {
	const src = `-- spec --
name = runtime-round-trip
n = 40
side = 8
protocol = icff
workers = 2
runtime = dist
-- assert --
completed
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Spec.Runtime != "dist" {
		t.Fatalf("parsed runtime = %q, want dist", s.Spec.Runtime)
	}
	if got := s.Format(); string(got) != src {
		t.Fatalf("runtime key did not round-trip:\n%s", got)
	}

	if _, err := Parse([]byte("-- spec --\nn = 4\nside = 8\nruntime = warp\n")); err == nil ||
		!strings.Contains(err.Error(), "kernel|dist") {
		t.Fatalf("unknown runtime error = %v, want mention of kernel|dist", err)
	}
}

// TestRunRuntimeOverride pins the -runtime flag path: the override wins
// over the spec, bogus values and dist-incapable protocols fail fast.
func TestRunRuntimeOverride(t *testing.T) {
	parse := func(body string) *Scenario {
		s, err := Parse([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	icff := "-- spec --\nn = 4\nside = 8\n-- assert --\ncompleted\n"
	if _, err := Run(parse(icff), RunOptions{Runtime: "warp"}); err == nil ||
		!strings.Contains(err.Error(), "kernel|dist") {
		t.Fatalf("bogus -runtime error = %v, want mention of kernel|dist", err)
	}
	gather := "-- spec --\nn = 4\nside = 8\nprotocol = gather\n-- assert --\ncompleted\n"
	if _, err := Run(parse(gather), RunOptions{Runtime: "dist"}); err == nil ||
		!strings.Contains(err.Error(), "runtime dist") {
		t.Fatalf("dist gather error = %v, want runtime dist rejection", err)
	}
}

// TestScenarioRuntimeDeterminism is the scenario-level arm of the
// cross-runtime equivalence proof: the same spec under -runtime dist must
// reproduce the kernel's outcomes, measured values and flight recording
// byte for byte.
func TestScenarioRuntimeDeterminism(t *testing.T) {
	src := []byte(`-- spec --
name = runtime-determinism
n = 100
side = 10
seed = 21
protocol = icff
channels = 2
loss = 0.1
loss-seed = 5
-- script --
fail 7 3
cut 2 5 4
-- assert --
delivery-ratio >= 0.8
`)
	var base *Result
	for _, rt := range []string{"kernel", "dist"} {
		s, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s, RunOptions{Runtime: rt, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Fatalf("runtime %s failed: %+v", rt, res.Failures())
		}
		if base == nil {
			base = res
			continue
		}
		if res.Measured != base.Measured {
			t.Errorf("measured differs under dist:\n%+v\nvs\n%+v", res.Measured, base.Measured)
		}
		if !bytes.Equal(res.Recording, base.Recording) {
			t.Errorf("recording differs under dist: %d vs %d bytes", len(res.Recording), len(base.Recording))
		}
	}
}

func TestFormatFloatShortest(t *testing.T) {
	for v, want := range map[float64]string{0.3: "0.3", 0.125: "0.125", 1: "1"} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if s := formatFloat(math.Pi); s != "3.141592653589793" {
		t.Errorf("formatFloat(pi) = %q", s)
	}
}

// TestScenarioWorkerDeterminism runs the same recorded scenario at 1 and 4
// engine workers: every assertion outcome must match and the flight
// recordings must be byte-identical — the worker count is purely a
// wall-clock knob.
func TestScenarioWorkerDeterminism(t *testing.T) {
	src := []byte(`-- spec --
name = determinism
n = 120
side = 10
seed = 33
protocol = icff
channels = 2
-- script --
fail 7 3
-- assert --
delivery-ratio >= 0.9
rounds <= theorem1
`)
	var base *Result
	for _, workers := range []int{1, 4} {
		s, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s, RunOptions{Workers: workers, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if len(res.Outcomes) != len(base.Outcomes) {
			t.Fatalf("outcome count differs: %d vs %d", len(res.Outcomes), len(base.Outcomes))
		}
		for i := range res.Outcomes {
			if res.Outcomes[i] != base.Outcomes[i] {
				t.Errorf("outcome %d differs at workers=%d:\n%s\nvs\n%s",
					i, workers, res.Outcomes[i], base.Outcomes[i])
			}
		}
		if res.Measured != base.Measured {
			t.Errorf("measured differs at workers=%d:\n%+v\nvs\n%+v", workers, res.Measured, base.Measured)
		}
		if !bytes.Equal(res.Recording, base.Recording) {
			t.Errorf("recording differs at workers=%d: %d vs %d bytes", workers, len(res.Recording), len(base.Recording))
		}
	}
}
