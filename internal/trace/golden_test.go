package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/timeslot"
	"dynsens/internal/trace"
	"dynsens/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// compareGolden checks got against testdata/<name>, rewriting the file
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestTimelineGolden locks down the human-readable timeline rendering for
// a deterministic ICFF run that exercises every event kind: transmissions,
// receptions, a mid-run node failure, and frame losses.
func TestTimelineGolden(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(5, 8, 24))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := timeslot.New(c, timeslot.ConditionStrict)

	rec := trace.NewRecorder(0)
	var victim = c.Tree().Nodes()[len(c.Tree().Nodes())-1]
	_, err = broadcast.RunICFF(a, c.Root(), broadcast.Options{
		Trace:    rec.Hook(),
		Failures: []broadcast.NodeFailure{{Node: victim, Round: 2}},
		LossRate: 0.15,
		LossSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}

	var buf bytes.Buffer
	if err := rec.Render(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "timeline.golden", buf.Bytes())
}

// TestTimelineDroppedGolden locks down the truncation footer.
func TestTimelineDroppedGolden(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(3, 8, 20))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := timeslot.New(c, timeslot.ConditionStrict)

	rec := trace.NewRecorder(10)
	if _, err := broadcast.RunICFF(a, c.Root(), broadcast.Options{Trace: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() == 0 {
		t.Fatal("limit did not drop anything")
	}
	var buf bytes.Buffer
	if err := rec.Render(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "timeline_dropped.golden", buf.Bytes())
}
