package trace

import (
	"strings"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/radio"
	"dynsens/internal/workload"
)

func TestRecorderCollectsBroadcast(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(1, 8, 50))
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	m, err := net.Broadcast(net.Root(), broadcast.Options{Trace: rec.Hook()})
	if err != nil || !m.Completed {
		t.Fatalf("broadcast: %v %s", err, m)
	}
	counts := rec.Counts()
	if counts[radio.EvTransmit] != m.Transmissions {
		t.Fatalf("tx events %d != metric %d", counts[radio.EvTransmit], m.Transmissions)
	}
	if counts[radio.EvDeliver] == 0 {
		t.Fatal("no delivery events recorded")
	}
	if rec.LastRound() == 0 || rec.LastRound() > m.Rounds {
		t.Fatalf("last round %d vs %d", rec.LastRound(), m.Rounds)
	}
	var b strings.Builder
	if err := rec.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "round 1:") || !strings.Contains(out, "tx") {
		t.Fatalf("render malformed:\n%s", out[:min(400, len(out))])
	}
	if rec.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestRecorderLimitAndReset(t *testing.T) {
	rec := NewRecorder(2)
	hook := rec.Hook()
	for i := 0; i < 5; i++ {
		hook(radio.Event{Round: i + 1, Kind: radio.EvTransmit})
	}
	if rec.Len() != 2 || rec.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", rec.Len(), rec.Dropped())
	}
	var b strings.Builder
	if err := rec.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dropped") {
		t.Fatal("dropped note missing")
	}
	rec.Reset()
	if rec.Len() != 0 || rec.Dropped() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestChannelLoad(t *testing.T) {
	rec := NewRecorder(0)
	hook := rec.Hook()
	hook(radio.Event{Round: 1, Kind: radio.EvTransmit, Channel: 0})
	hook(radio.Event{Round: 1, Kind: radio.EvTransmit, Channel: 1})
	hook(radio.Event{Round: 2, Kind: radio.EvTransmit, Channel: 1})
	hook(radio.Event{Round: 2, Kind: radio.EvDeliver, Channel: 1})
	load := rec.ChannelLoad()
	if load[0] != 1 || load[1] != 2 {
		t.Fatalf("load = %v", load)
	}
}

func TestRenderAllKinds(t *testing.T) {
	rec := NewRecorder(0)
	hook := rec.Hook()
	hook(radio.Event{Round: 1, Kind: radio.EvTransmit, Node: 1})
	hook(radio.Event{Round: 1, Kind: radio.EvDeliver, Node: 2, Peer: 1})
	hook(radio.Event{Round: 2, Kind: radio.EvCollision, Node: 3})
	hook(radio.Event{Round: 2, Kind: radio.EvNodeFail, Node: 4})
	hook(radio.Event{Round: 3, Kind: radio.EvLinkFail, Node: 5, Peer: 6})
	var b strings.Builder
	if err := rec.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"tx", "rx", "COLL", "DEAD", "CUT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestKindName(t *testing.T) {
	if KindName(radio.EvTransmit) != "tx" || KindName(radio.EvLinkFail) != "link-fail" {
		t.Fatal("kind names wrong")
	}
	if KindName(radio.EventKind(99)) == "" {
		t.Fatal("unknown kind should format")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
