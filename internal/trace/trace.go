// Package trace records radio-engine events and renders round-by-round
// protocol timelines — the debugging view of what a broadcast actually did
// on the air: who transmitted on which channel, who received from whom,
// where collisions happened, and which nodes died.
//
// Recorders need no locking: the radio engine invokes its trace hooks —
// per-event and batched alike — from a single goroutine (the kernel's
// serial stitch steps between phases) regardless of its worker count, and
// the event stream — Seq numbers included — is byte-identical at any
// radio.Engine.SetWorkers value.
package trace

import (
	"fmt"
	"io"
	"sort"

	"dynsens/internal/obs"
	"dynsens/internal/radio"
)

// KindName returns a short label for an event kind. It is the same label
// radio.EventKind.String produces; the alias predates that method.
func KindName(k radio.EventKind) string { return k.String() }

// MetricTraceEventsDropped counts events a bounded Recorder refused to
// keep — the observability of the recorder's own blind spot. Emitted only
// by instrumented recorders (see Instrument).
const MetricTraceEventsDropped = "dynsens_trace_events_dropped_total"

// Recorder collects events up to a limit (0 = unlimited). Events beyond
// the limit are not silently gone: Dropped reports the count, Render
// appends it as a footer, and Instrument exports it as an obs counter.
type Recorder struct {
	limit   int
	events  []radio.Event
	dropped int
	dropCtr *obs.Counter // nil unless Instrument was called
}

// NewRecorder creates a recorder keeping at most limit events (0 keeps
// everything).
func NewRecorder(limit int) *Recorder { return &Recorder{limit: limit} }

// Instrument makes the recorder count dropped events into reg under
// MetricTraceEventsDropped, so a truncated recording is visible on the
// metrics plane, not only in the timeline footer.
func (r *Recorder) Instrument(reg *obs.Registry) {
	r.dropCtr = reg.Counter(MetricTraceEventsDropped,
		"Radio events dropped by a bounded trace recorder.")
}

// Hook returns the callback to install with Engine.SetTrace or
// broadcast.Options.Trace.
func (r *Recorder) Hook() func(radio.Event) {
	return func(ev radio.Event) {
		if r.limit > 0 && len(r.events) >= r.limit {
			r.dropped++
			if r.dropCtr != nil {
				r.dropCtr.Inc()
			}
			return
		}
		r.events = append(r.events, ev)
	}
}

// BatchHook returns the callback to install with Engine.SetTraceBatch or
// broadcast.Options.TraceBatch: one call per shard buffer per phase per
// round instead of one per event, same events in the same order. The
// engine reuses the batch slice between calls, so the events are copied
// into the recorder's own storage here.
func (r *Recorder) BatchHook() func([]radio.Event) {
	return func(evs []radio.Event) {
		if r.limit > 0 {
			if room := r.limit - len(r.events); room < len(evs) {
				d := len(evs) - room
				r.dropped += d
				if r.dropCtr != nil {
					r.dropCtr.Add(int64(d))
				}
				evs = evs[:room]
			}
		}
		r.events = append(r.events, evs...)
	}
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns how many events exceeded the limit.
func (r *Recorder) Dropped() int { return r.dropped }

// Events returns the recorded events (shared slice; do not modify).
func (r *Recorder) Events() []radio.Event { return r.events }

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.dropped = 0
}

// Counts tallies events per kind.
func (r *Recorder) Counts() map[radio.EventKind]int {
	out := make(map[radio.EventKind]int)
	for _, ev := range r.events {
		out[ev.Kind]++
	}
	return out
}

// ChannelLoad counts transmissions per channel.
func (r *Recorder) ChannelLoad() map[radio.Channel]int {
	out := make(map[radio.Channel]int)
	for _, ev := range r.events {
		if ev.Kind == radio.EvTransmit {
			out[ev.Channel]++
		}
	}
	return out
}

// LastRound returns the highest round seen (0 when empty).
func (r *Recorder) LastRound() int {
	max := 0
	for _, ev := range r.events {
		if ev.Round > max {
			max = ev.Round
		}
	}
	return max
}

// Render writes a per-round timeline. Rounds with no events are skipped;
// a bounded recorder that dropped events says so in a footer line.
func (r *Recorder) Render(w io.Writer) error {
	return RenderEvents(w, r.events, r.dropped)
}

// RenderEvents writes the per-round timeline for an arbitrary event slice
// (the same rendering Recorder.Render uses; the flight replayer shares
// it). dropped > 0 appends the truncation footer.
func RenderEvents(w io.Writer, events []radio.Event, dropped int) error {
	byRound := make(map[int][]radio.Event)
	for _, ev := range events {
		byRound[ev.Round] = append(byRound[ev.Round], ev)
	}
	rounds := make([]int, 0, len(byRound))
	for round := range byRound {
		rounds = append(rounds, round)
	}
	sort.Ints(rounds)
	for _, round := range rounds {
		if _, err := fmt.Fprintf(w, "round %d:\n", round); err != nil {
			return err
		}
		evs := byRound[round]
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Kind != evs[j].Kind {
				return evs[i].Kind < evs[j].Kind
			}
			return evs[i].Node < evs[j].Node
		})
		for _, ev := range evs {
			var line string
			switch ev.Kind {
			case radio.EvTransmit:
				line = fmt.Sprintf("  tx    node %-4d ch %d slot %d", ev.Node, ev.Channel, ev.Msg.Slot)
			case radio.EvDeliver:
				line = fmt.Sprintf("  rx    node %-4d <- %-4d ch %d", ev.Node, ev.Peer, ev.Channel)
			case radio.EvCollision:
				line = fmt.Sprintf("  COLL  node %-4d ch %d", ev.Node, ev.Channel)
			case radio.EvNodeFail:
				line = fmt.Sprintf("  DEAD  node %-4d", ev.Node)
			case radio.EvLinkFail:
				line = fmt.Sprintf("  CUT   link %d-%d", ev.Node, ev.Peer)
			case radio.EvLoss:
				line = fmt.Sprintf("  LOST  node %-4d <- %-4d ch %d", ev.Node, ev.Peer, ev.Channel)
			default:
				line = fmt.Sprintf("  %s node %d", KindName(ev.Kind), ev.Node)
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d events dropped beyond limit)\n", dropped); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders one line of per-kind counts; a bounded recorder that
// overflowed reports its drop count too.
func (r *Recorder) Summary() string {
	c := r.Counts()
	s := fmt.Sprintf("events=%d tx=%d rx=%d collisions=%d node-fails=%d link-fails=%d (last round %d)",
		len(r.events), c[radio.EvTransmit], c[radio.EvDeliver], c[radio.EvCollision],
		c[radio.EvNodeFail], c[radio.EvLinkFail], r.LastRound())
	if r.dropped > 0 {
		s += fmt.Sprintf(" [%d dropped]", r.dropped)
	}
	return s
}
