package dist

import "dynsens/internal/graph"

// Nemesis is the scripted fault injector of the distributed runtime. It
// speaks the radio model's own vocabulary, so every fault it injects leaves
// a verifiable trail in the recording:
//
//   - Crashes kill a node at the start of a round, exactly like the
//     engine's FailNodeAt (an EvNodeFail event, then silence) — churn is a
//     crash list.
//   - Partitions silence the links crossing a node-set boundary for a round
//     window and then heal. A frame swallowed by a partition is recorded as
//     an EvLoss for that (listener, transmitter) pair — the radio model's
//     "the listener never hears it" — which keeps flight.Verify's
//     delivery-consistency replay exact while the partition is up and after
//     it heals. (EvLinkFail would be wrong: recorded link cuts are
//     permanent, and a healed link would make later deliveries look
//     inconsistent.)
//   - Frame loss is the engine's own loss model; script it with
//     Coordinator.SetLoss.
//
// On top of the script, the coordinator folds *unscripted* faults — a node
// process dying mid-round, a node never answering a barrier — into the same
// schedule: the node is marked crashed and dies at the start of the next
// round, matching the kernel's failure-schedule semantics.
type Nemesis struct {
	Partitions []Partition
	Crashes    []Crash
}

// Partition silences every link between Side and the rest of the network
// during rounds [From, To] (inclusive, 1-based), then heals.
type Partition struct {
	From, To int
	Side     []graph.NodeID
}

// Crash kills a node at the start of Round, like Engine.FailNodeAt.
type Crash struct {
	Node  graph.NodeID
	Round int
}

// partitions is the run-time form: one membership set per scripted
// partition.
type partitions struct {
	spans []Partition
	side  []map[graph.NodeID]bool
}

func newPartitions(spans []Partition) *partitions {
	if len(spans) == 0 {
		return nil
	}
	p := &partitions{spans: spans, side: make([]map[graph.NodeID]bool, len(spans))}
	for i, s := range spans {
		p.side[i] = make(map[graph.NodeID]bool, len(s.Side))
		for _, id := range s.Side {
			p.side[i][id] = true
		}
	}
	return p
}

// cuts reports whether any partition active in round separates u from v.
func (p *partitions) cuts(round int, u, v graph.NodeID) bool {
	if p == nil {
		return false
	}
	for i, s := range p.spans {
		if round < s.From || round > s.To {
			continue
		}
		if p.side[i][u] != p.side[i][v] {
			return true
		}
	}
	return false
}
