package dist_test

import (
	"io"
	"net"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"testing"
	"time"

	"dynsens/internal/dist"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// tdmaProg is a deterministic test program: the source starts with the
// payload; every holder transmits in its slots (round r is node id's slot
// when (r-1)%mod == id%mod) until it has spent its quota, and listens
// otherwise. mod < number of nodes makes holders share slots and collide —
// the model's central hazard — while mod == number of nodes is a clean TDMA
// round-robin.
type tdmaProg struct {
	id    graph.NodeID
	mod   int
	quota int
	have  bool
	sent  int
}

func newTDMA(id graph.NodeID, mod, quota int, source bool) *tdmaProg {
	return &tdmaProg{id: id, mod: mod, quota: quota, have: source}
}

func (p *tdmaProg) Act(round int) radio.Action {
	if p.have && p.sent < p.quota && (round-1)%p.mod == int(p.id)%p.mod {
		p.sent++
		return radio.TransmitOn(0, radio.Message{Seq: 1, Src: 0, Slot: round, Value: int64(p.id)})
	}
	return radio.ListenOn(0)
}

func (p *tdmaProg) Deliver(round int, msg radio.Message) { p.have = true }

func (p *tdmaProg) Done() bool { return p.have && p.sent >= p.quota }

// hangProg relays to an inner program until round hangAt, where Act blocks
// forever — a node that stops answering its round barrier.
type hangProg struct {
	inner  radio.Program
	hangAt int
}

func (p *hangProg) Act(round int) radio.Action {
	if round >= p.hangAt {
		select {} // wedge the node host
	}
	return p.inner.Act(round)
}

func (p *hangProg) Deliver(round int, msg radio.Message) { p.inner.Deliver(round, msg) }
func (p *hangProg) Done() bool                           { return p.inner.Done() }

// sleepFromProg relays to an inner program until round sleepAt, then sleeps
// forever — the kernel-side twin of a node whose host crashed mid-round:
// the crashed node contributes a Sleep to its final round.
type sleepFromProg struct {
	inner   radio.Program
	sleepAt int
}

func (p *sleepFromProg) Act(round int) radio.Action {
	if round >= p.sleepAt {
		return radio.SleepAction()
	}
	return p.inner.Act(round)
}

func (p *sleepFromProg) Deliver(round int, msg radio.Message) { p.inner.Deliver(round, msg) }
func (p *sleepFromProg) Done() bool                           { return p.inner.Done() }

// listenProg listens forever and is never done; it records deliveries.
type listenProg struct {
	got []int // rounds a delivery arrived
}

func (p *listenProg) Act(round int) radio.Action           { return radio.ListenOn(0) }
func (p *listenProg) Deliver(round int, msg radio.Message) { p.got = append(p.got, round) }
func (p *listenProg) Done() bool                           { return false }

// lineGraph builds the path 0-1-...-(n-1).
func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// collect captures both the per-event and the batched trace streams and
// cross-checks them: concatenated batches must equal the per-event stream.
type collect struct {
	events  []radio.Event
	batched []radio.Event
}

func (c *collect) hook(ev radio.Event)     { c.events = append(c.events, ev) }
func (c *collect) batch(evs []radio.Event) { c.batched = append(c.batched, evs...) }
func (c *collect) check(t *testing.T) {
	t.Helper()
	if !reflect.DeepEqual(c.events, c.batched) {
		t.Fatalf("batched trace diverges from per-event trace")
	}
}

// scenario configures one equivalence case; apply runs the same schedule
// into the kernel engine and the distributed coordinator.
type scenario struct {
	n         int
	extra     [][2]graph.NodeID // edges beyond the line
	mod       int
	quota     int
	maxRounds int
	lossRate  float64
	lossSeed  int64
	nodeFail  map[graph.NodeID]int
	linkFail  map[[2]graph.NodeID]int
	skew      map[graph.NodeID]int
}

func (sc *scenario) graph(t *testing.T) *graph.Graph {
	g := lineGraph(t, sc.n)
	for _, e := range sc.extra {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func (sc *scenario) programs() map[graph.NodeID]radio.Program {
	progs := make(map[graph.NodeID]radio.Program, sc.n)
	for i := 0; i < sc.n; i++ {
		id := graph.NodeID(i)
		progs[id] = newTDMA(id, sc.mod, sc.quota, id == 0)
	}
	return progs
}

func (sc *scenario) runKernel(t *testing.T, progs map[graph.NodeID]radio.Program) (radio.Result, *collect) {
	t.Helper()
	eng, err := radio.NewEngine(sc.graph(t), progs)
	if err != nil {
		t.Fatal(err)
	}
	var c collect
	eng.SetTrace(c.hook)
	eng.SetTraceBatch(c.batch)
	for id, r := range sc.nodeFail {
		eng.FailNodeAt(id, r)
	}
	for lk, r := range sc.linkFail {
		eng.FailLinkAt(lk[0], lk[1], r)
	}
	for id, off := range sc.skew {
		eng.SetClockSkew(id, off)
	}
	if sc.lossRate > 0 {
		if err := eng.SetLoss(sc.lossRate, sc.lossSeed); err != nil {
			t.Fatal(err)
		}
	}
	res := eng.Run(sc.maxRounds)
	c.check(t)
	return res, &c
}

func (sc *scenario) runDist(t *testing.T, progs map[graph.NodeID]radio.Program) (radio.Result, *collect) {
	t.Helper()
	coord, err := dist.NewCoordinator(sc.graph(t), dist.NewLocalFleet(progs))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var c collect
	coord.SetTrace(c.hook)
	coord.SetTraceBatch(c.batch)
	for id, r := range sc.nodeFail {
		coord.FailNodeAt(id, r)
	}
	for lk, r := range sc.linkFail {
		coord.FailLinkAt(lk[0], lk[1], r)
	}
	for id, off := range sc.skew {
		coord.SetClockSkew(id, off)
	}
	if sc.lossRate > 0 {
		if err := coord.SetLoss(sc.lossRate, sc.lossSeed); err != nil {
			t.Fatal(err)
		}
	}
	res := coord.Run(sc.maxRounds)
	if err := coord.Err(); err != nil {
		t.Fatalf("coordinator absorbed a fault on an undisturbed run: %v", err)
	}
	c.check(t)
	return res, &c
}

// assertEqualRuns is the equivalence oracle: the distributed run must match
// the kernel run event for event (Seq included) and in its Result.
func assertEqualRuns(t *testing.T, sc *scenario) {
	t.Helper()
	kRes, kTrace := sc.runKernel(t, sc.programs())
	dRes, dTrace := sc.runDist(t, sc.programs())
	if !reflect.DeepEqual(kRes, dRes) {
		t.Errorf("results diverge:\nkernel: %+v\ndist:   %+v", kRes, dRes)
	}
	if len(kTrace.events) != len(dTrace.events) {
		t.Fatalf("event counts diverge: kernel %d, dist %d", len(kTrace.events), len(dTrace.events))
	}
	for i := range kTrace.events {
		if kTrace.events[i] != dTrace.events[i] {
			t.Fatalf("event %d diverges:\nkernel: %+v\ndist:   %+v", i, kTrace.events[i], dTrace.events[i])
		}
	}
}

func TestDistMatchesKernelTDMA(t *testing.T) {
	// Clean round-robin: quiesces before the round budget.
	assertEqualRuns(t, &scenario{n: 5, mod: 5, quota: 2, maxRounds: 40})
}

func TestDistMatchesKernelCollisions(t *testing.T) {
	// Shared slots (mod 2 on a 6-node line with chords) force collisions.
	assertEqualRuns(t, &scenario{
		n:         6,
		extra:     [][2]graph.NodeID{{0, 2}, {1, 4}, {3, 5}},
		mod:       2,
		quota:     3,
		maxRounds: 25,
	})
}

func TestDistMatchesKernelFaultsLossSkew(t *testing.T) {
	// The whole engine surface at once: scheduled node death, a link cut,
	// clock skew, and the counter-stream loss model.
	assertEqualRuns(t, &scenario{
		n:         6,
		extra:     [][2]graph.NodeID{{1, 3}, {2, 5}},
		mod:       3,
		quota:     3,
		maxRounds: 30,
		lossRate:  0.3,
		lossSeed:  42,
		nodeFail:  map[graph.NodeID]int{5: 7},
		linkFail:  map[[2]graph.NodeID]int{{1, 2}: 5},
		skew:      map[graph.NodeID]int{2: 1, 4: -1},
	})
}

func TestBarrierTimeoutMatchesKernelCrash(t *testing.T) {
	// A node that never answers its round-3 act barrier sleeps through
	// round 3 and dies at round 4 — byte-equal to a kernel run where the
	// same node's program sleeps from round 3 and FailNodeAt(node, 4).
	const hangAt, victim = 3, graph.NodeID(2)
	sc := &scenario{n: 4, mod: 4, quota: 2, maxRounds: 12}

	kProgs := sc.programs()
	kProgs[victim] = &sleepFromProg{inner: kProgs[victim], sleepAt: hangAt}
	kSc := *sc
	kSc.nodeFail = map[graph.NodeID]int{victim: hangAt + 1}
	kRes, kTrace := kSc.runKernel(t, kProgs)

	dProgs := sc.programs()
	dProgs[victim] = &hangProg{inner: dProgs[victim], hangAt: hangAt}
	coord, err := dist.NewCoordinator(sc.graph(t), dist.NewLocalFleet(dProgs))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.SetRoundTimeout(200 * time.Millisecond)
	var c collect
	coord.SetTrace(c.hook)
	dRes := coord.Run(sc.maxRounds)
	if coord.Err() == nil {
		t.Fatal("coordinator did not record the barrier timeout")
	}
	if !reflect.DeepEqual(kRes, dRes) {
		t.Errorf("results diverge:\nkernel: %+v\ndist:   %+v", kRes, dRes)
	}
	if !reflect.DeepEqual(kTrace.events, c.events) {
		t.Fatalf("crash trace diverges from kernel failure-schedule twin:\nkernel: %+v\ndist:   %+v", kTrace.events, c.events)
	}
}

func TestNemesisPartitionHeals(t *testing.T) {
	// 0-1-2 line; node 0 transmits every round. A partition isolates node 0
	// during rounds 2-3: node 1 records losses in the window and deliveries
	// on both sides of it.
	g := lineGraph(t, 3)
	mid, far := &listenProg{}, &listenProg{}
	progs := map[graph.NodeID]radio.Program{
		0: newTDMA(0, 1, 6, true),
		1: mid,
		2: far,
	}
	coord, err := dist.NewCoordinator(g, dist.NewLocalFleet(progs))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var c collect
	coord.SetTrace(c.hook)
	coord.SetNemesis(dist.Nemesis{
		Partitions: []dist.Partition{{From: 2, To: 3, Side: []graph.NodeID{0}}},
	})
	res := coord.Run(6)
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 6 || res.Quiesced {
		t.Fatalf("unexpected result %+v", res)
	}
	wantDeliver := []int{1, 4, 5, 6}
	if !reflect.DeepEqual(mid.got, wantDeliver) {
		t.Errorf("node 1 deliveries in rounds %v, want %v", mid.got, wantDeliver)
	}
	var lossRounds []int
	for _, ev := range c.events {
		if ev.Kind == radio.EvLoss {
			if ev.Node != 1 || ev.Peer != 0 {
				t.Errorf("unexpected loss pair %+v", ev)
			}
			lossRounds = append(lossRounds, ev.Round)
		}
	}
	if want := []int{2, 3}; !reflect.DeepEqual(lossRounds, want) {
		t.Errorf("partition losses in rounds %v, want %v", lossRounds, want)
	}
	if res.Losses != 2 || res.Deliveries != len(wantDeliver) {
		t.Errorf("counters diverge: %+v", res)
	}
}

func TestNemesisCrashMatchesFailNodeAt(t *testing.T) {
	// A scripted nemesis crash is the same thing as FailNodeAt.
	sc := &scenario{n: 4, mod: 4, quota: 2, maxRounds: 15}
	kSc := *sc
	kSc.nodeFail = map[graph.NodeID]int{3: 5}
	kRes, kTrace := kSc.runKernel(t, kSc.programs())

	coord, err := dist.NewCoordinator(sc.graph(t), dist.NewLocalFleet(sc.programs()))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.SetNemesis(dist.Nemesis{Crashes: []dist.Crash{{Node: 3, Round: 5}}})
	var c collect
	coord.SetTrace(c.hook)
	dRes := coord.Run(sc.maxRounds)
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kRes, dRes) {
		t.Errorf("results diverge:\nkernel: %+v\ndist:   %+v", kRes, dRes)
	}
	if !reflect.DeepEqual(kTrace.events, c.events) {
		t.Fatalf("trace diverges from FailNodeAt twin")
	}
}

func TestTCPFleetMatchesKernel(t *testing.T) {
	sc := &scenario{n: 4, mod: 4, quota: 2, maxRounds: 20}
	kRes, kTrace := sc.runKernel(t, sc.programs())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	progs := sc.programs()
	for id, prog := range progs {
		id, prog := id, prog
		go func() {
			if err := dist.DialNode(addr, id, prog); err != nil {
				t.Errorf("node %d: %v", id, err)
			}
		}()
	}
	coord, err := dist.NewCoordinator(sc.graph(t), dist.NewTCPFleet(ln))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var c collect
	coord.SetTrace(c.hook)
	dRes := coord.Run(sc.maxRounds)
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kRes, dRes) {
		t.Errorf("results diverge:\nkernel: %+v\ndist:   %+v", kRes, dRes)
	}
	if !reflect.DeepEqual(kTrace.events, c.events) {
		t.Fatalf("TCP trace diverges from kernel trace")
	}
}

// Process-transport tests: the test binary re-execs itself as the node
// process (TestMain short-circuits into nodeHelperMain when the marker env
// var is set), so cmd-building stays inside the test.

const (
	helperEnv   = "DIST_NODE_HELPER"
	helperID    = "DIST_NODE_ID"
	helperDieAt = "DIST_NODE_DIE_AT"
	helperN     = "DIST_NODE_N"
	helperMod   = "DIST_NODE_MOD"
	helperQuota = "DIST_NODE_QUOTA"
)

func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		nodeHelperMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// exitProg relays to an inner program until round dieAt, where the whole
// node process exits — death mid-round.
type exitProg struct {
	inner radio.Program
	dieAt int
}

func (p *exitProg) Act(round int) radio.Action {
	if p.dieAt > 0 && round >= p.dieAt {
		os.Exit(3)
	}
	return p.inner.Act(round)
}

func (p *exitProg) Deliver(round int, msg radio.Message) { p.inner.Deliver(round, msg) }
func (p *exitProg) Done() bool                           { return p.inner.Done() }

func nodeHelperMain() {
	atoi := func(k string) int {
		v, err := strconv.Atoi(os.Getenv(k))
		if err != nil {
			os.Exit(2)
		}
		return v
	}
	id := graph.NodeID(atoi(helperID))
	var prog radio.Program = newTDMA(id, atoi(helperMod), atoi(helperQuota), id == 0)
	if dieAt := atoi(helperDieAt); dieAt > 0 {
		prog = &exitProg{inner: prog, dieAt: dieAt}
	}
	stdio := struct {
		io.Reader
		io.Writer
	}{os.Stdin, os.Stdout}
	if err := dist.ServeNode(stdio, id, prog); err != nil {
		os.Exit(1)
	}
}

func procFleet(sc *scenario, dieAt map[graph.NodeID]int) *dist.ProcFleet {
	return &dist.ProcFleet{Command: func(id graph.NodeID) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			helperEnv+"=1",
			helperID+"="+strconv.Itoa(int(id)),
			helperDieAt+"="+strconv.Itoa(dieAt[id]),
			helperN+"="+strconv.Itoa(sc.n),
			helperMod+"="+strconv.Itoa(sc.mod),
			helperQuota+"="+strconv.Itoa(sc.quota),
		)
		cmd.Stderr = io.Discard
		return cmd
	}}
}

func TestProcFleetMatchesKernel(t *testing.T) {
	sc := &scenario{n: 3, mod: 3, quota: 2, maxRounds: 15}
	kRes, kTrace := sc.runKernel(t, sc.programs())

	coord, err := dist.NewCoordinator(sc.graph(t), procFleet(sc, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// Out-of-process nodes keep their reception state in the children;
	// mirror copies on the coordinator side must see the exact same
	// Deliver(round, msg) calls (broadcast's metrics fill depends on it).
	mirror := make(map[graph.NodeID]*listenProg, sc.n)
	progs := make(map[graph.NodeID]radio.Program, sc.n)
	for i := 0; i < sc.n; i++ {
		lp := &listenProg{}
		mirror[graph.NodeID(i)] = lp
		progs[graph.NodeID(i)] = lp
	}
	coord.MirrorDeliveries(progs)
	var c collect
	coord.SetTrace(c.hook)
	dRes := coord.Run(sc.maxRounds)
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kRes, dRes) {
		t.Errorf("results diverge:\nkernel: %+v\ndist:   %+v", kRes, dRes)
	}
	if !reflect.DeepEqual(kTrace.events, c.events) {
		t.Fatalf("process-transport trace diverges from kernel trace")
	}
	want := make(map[graph.NodeID][]int)
	for _, ev := range kTrace.events {
		if ev.Kind == radio.EvDeliver {
			want[ev.Node] = append(want[ev.Node], ev.Round)
		}
	}
	for id, lp := range mirror {
		if !reflect.DeepEqual(lp.got, want[id]) {
			t.Errorf("mirror of node %d saw deliveries at rounds %v, kernel delivered at %v", id, lp.got, want[id])
		}
	}
}

func TestProcFleetNodeDeathMidRound(t *testing.T) {
	// Node 1's process exits inside its round-3 act barrier. The
	// coordinator must absorb it — sleep for round 3, EvNodeFail at round
	// 4 — and finish the run, byte-equal to the kernel twin.
	const dieAt, victim = 3, graph.NodeID(1)
	sc := &scenario{n: 3, mod: 3, quota: 2, maxRounds: 12}

	kProgs := sc.programs()
	kProgs[victim] = &sleepFromProg{inner: kProgs[victim], sleepAt: dieAt}
	kSc := *sc
	kSc.nodeFail = map[graph.NodeID]int{victim: dieAt + 1}
	kRes, kTrace := kSc.runKernel(t, kProgs)

	coord, err := dist.NewCoordinator(sc.graph(t), procFleet(sc, map[graph.NodeID]int{victim: dieAt}))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.SetRoundTimeout(5 * time.Second)
	var c collect
	coord.SetTrace(c.hook)
	dRes := coord.Run(sc.maxRounds)
	if coord.Err() == nil {
		t.Fatal("coordinator did not record the process death")
	}
	if !reflect.DeepEqual(kRes, dRes) {
		t.Errorf("results diverge:\nkernel: %+v\ndist:   %+v", kRes, dRes)
	}
	if !reflect.DeepEqual(kTrace.events, c.events) {
		t.Fatalf("death trace diverges from kernel failure-schedule twin:\nkernel: %+v\ndist:   %+v", kTrace.events, c.events)
	}
}
