// Package dist is the distributed actor runtime: it hosts the repository's
// unmodified radio.Program implementations as isolated message-passing
// nodes — goroutines behind in-memory pipes by default, separate OS
// processes (cmd/dnode) or TCP peers when asked — and drives them through
// the paper's round/slot structure with a coordinator that speaks the
// length-prefixed frame protocol of internal/netio/frame.
//
// The coordinator consumes the same transport-agnostic round core
// (internal/radio/rounds: loss-coin streams, single-listener resolution,
// failure schedule) and the same graph adjacency as the in-process kernel,
// and emits events into the same trace/obs/flight sinks. For a fixed seed
// and scenario, a distributed run's trace, recording and Result are
// byte-identical to the kernel's — equivalence is the proof obligation,
// exactly as RunReference is for the kernel. On top of that, a scripted
// nemesis injects what only a distributed runtime can make honest: crashes
// (a node that dies or stops answering its round barrier), temporary
// partitions that heal, and frame loss.
package dist

import (
	"fmt"
	"io"

	"dynsens/internal/graph"
	"dynsens/internal/netio/frame"
	"dynsens/internal/radio"
)

// ServeNode hosts prog as the actor for node id over rw: it introduces
// itself with a Hello (node ID plus the program's initial Done bit), then
// answers the coordinator's round barriers — Act with the program's action,
// Finish (applying the optional delivery) with the program's Done bit —
// until a Halt frame or EOF ends the run. The loop is the distributed twin
// of the kernel's shard phases and carries the same determinism
// obligations, statically enforced by dynlint: no event sinks, no global
// rand, nothing but the program's own node-local state.
//
//dynlint:shardsafe node hosts run concurrently; a host may touch only its frames and its own Program
func ServeNode(rw io.ReadWriter, id graph.NodeID, prog radio.Program) error {
	enc := frame.NewEncoder(rw)
	dec := frame.NewDecoder(rw)
	if err := enc.Encode(&frame.Frame{Kind: frame.KindHello, Node: id, Done: prog.Done()}); err != nil {
		return fmt.Errorf("dist: node %d: sending hello: %w", id, err)
	}
	var f frame.Frame
	for {
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("dist: node %d: %w", id, err)
		}
		switch f.Kind {
		case frame.KindAct:
			a := prog.Act(f.Round)
			if err := enc.Encode(&frame.Frame{Kind: frame.KindAction, Round: f.Round, Action: a}); err != nil {
				return fmt.Errorf("dist: node %d: sending action: %w", id, err)
			}
		case frame.KindFinish:
			if f.HasMsg {
				prog.Deliver(f.Round, f.Msg)
			}
			if err := enc.Encode(&frame.Frame{Kind: frame.KindStatus, Round: f.Round, Done: prog.Done()}); err != nil {
				return fmt.Errorf("dist: node %d: sending status: %w", id, err)
			}
		case frame.KindHalt:
			return nil
		default:
			return fmt.Errorf("dist: node %d: unexpected %v frame from coordinator", id, f.Kind)
		}
	}
}
