package dist

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"dynsens/internal/graph"
	"dynsens/internal/netio/frame"
	"dynsens/internal/radio"
)

// Conn is one node's framed byte stream: in-memory pipe, child-process
// stdio, or TCP. Implementations should support write deadlines (see
// deadlineWriter) so a stalled node cannot wedge the coordinator's send
// path; all three built-in fleets do.
type Conn interface {
	io.ReadWriteCloser
}

// deadlineWriter is the optional Conn facet the coordinator uses to bound
// sends. net.Conn and *os.File pipes both provide it.
type deadlineWriter interface {
	SetWriteDeadline(t time.Time) error
}

// Peer is the coordinator's handle on one connected node: the framed
// connection plus the node's Hello, which the fleet has already consumed
// from the stream (the Hello carries the node ID — TCP fleets need it to
// route an inbound dial to the right slot — and the program's initial Done
// bit, which seeds the quiescence counter exactly as the kernel's pre-run
// Done poll does).
type Peer struct {
	conn  Conn
	dec   *frame.Decoder
	enc   *frame.Encoder
	hello frame.Frame
}

// newPeer wraps conn with the frame codec and consumes the node's Hello.
func newPeer(conn Conn) (*Peer, error) {
	p := &Peer{conn: conn, dec: frame.NewDecoder(conn), enc: frame.NewEncoder(conn)}
	if err := p.dec.Decode(&p.hello); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("dist: reading hello: %w", err)
	}
	if p.hello.Kind != frame.KindHello {
		_ = conn.Close()
		return nil, fmt.Errorf("dist: first frame is %v, want hello", p.hello.Kind)
	}
	return p, nil
}

// Node returns the node ID the peer introduced itself as.
func (p *Peer) Node() graph.NodeID { return p.hello.Node }

// Fleet connects the coordinator to its actor nodes, one Conn per node.
// Connect is called once per node, in ascending node-ID order, by
// NewCoordinator; Close tears down whatever the fleet started (goroutines,
// processes, listeners). Fleets are single-use: one fleet per run.
type Fleet interface {
	Connect(id graph.NodeID) (*Peer, error)
	Close() error
}

// LocalFleet hosts each Program on its own goroutine behind a synchronous
// in-memory pipe — the default, zero-setup transport: full actor isolation
// (nodes interact with the run only through frames) without process
// overhead.
type LocalFleet struct {
	programs map[graph.NodeID]radio.Program
	conns    []net.Conn
	wg       sync.WaitGroup
}

// NewLocalFleet serves the given programs. The map is also the node set
// check: NewCoordinator fails if a graph node has no program.
func NewLocalFleet(programs map[graph.NodeID]radio.Program) *LocalFleet {
	return &LocalFleet{programs: programs}
}

// Connect starts id's node host goroutine and returns the coordinator end.
func (f *LocalFleet) Connect(id graph.NodeID) (*Peer, error) {
	prog := f.programs[id]
	if prog == nil {
		return nil, fmt.Errorf("dist: no program for node %d", id)
	}
	local, remote := net.Pipe()
	f.conns = append(f.conns, local)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		_ = ServeNode(remote, id, prog)
		_ = remote.Close()
	}()
	return newPeer(local)
}

// Close closes the coordinator ends; node goroutines exit on the resulting
// read error (goroutines stuck inside a hung Program — the barrier-timeout
// fault being simulated — are left behind; only tests do that, on purpose).
func (f *LocalFleet) Close() error {
	for _, c := range f.conns {
		_ = c.Close()
	}
	return nil
}

// procConn adapts a child process's stdio pipes to Conn. Reads come from
// the child's stdout, writes go to its stdin; Close closes stdin (the
// child's serve loop exits on EOF), kills the process if it lingers, and
// reaps it.
type procConn struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser
	once   sync.Once
	waited chan struct{}
}

func (c *procConn) Read(p []byte) (int, error)  { return c.stdout.Read(p) }
func (c *procConn) Write(p []byte) (int, error) { return c.stdin.Write(p) }

func (c *procConn) SetWriteDeadline(t time.Time) error {
	if f, ok := c.stdin.(*os.File); ok {
		return f.SetWriteDeadline(t)
	}
	return nil
}

func (c *procConn) Close() error {
	c.once.Do(func() {
		_ = c.stdin.Close()
		done := make(chan error, 1)
		go func() { done <- c.cmd.Wait() }()
		select {
		case <-done:
		//lint:ignore dynlint/nondeterminism process reaping is wall-clock by nature: the grace period only bounds teardown of an external child, after the simulation's result is already final
		case <-time.After(2 * time.Second):
			_ = c.cmd.Process.Kill()
			<-done
		}
		close(c.waited)
	})
	<-c.waited
	return nil
}

// ProcFleet launches one OS process per node. Command builds the unstarted
// child for a node — typically `dnode -scenario run.dsn -node <id>` — whose
// stdin/stdout speak the frame protocol (cmd/dnode wires ServeNode to
// them). Stderr passes through to the parent's for diagnostics.
type ProcFleet struct {
	Command func(id graph.NodeID) *exec.Cmd
	conns   []*procConn
}

// Connect starts id's process.
func (f *ProcFleet) Connect(id graph.NodeID) (*Peer, error) {
	cmd := f.Command(id)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: starting node %d: %w", id, err)
	}
	conn := &procConn{cmd: cmd, stdin: stdin, stdout: stdout, waited: make(chan struct{})}
	f.conns = append(f.conns, conn)
	peer, err := newPeer(conn)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("dist: node %d process: %w", id, err)
	}
	return peer, nil
}

// Close tears down every child process.
func (f *ProcFleet) Close() error {
	for _, c := range f.conns {
		_ = c.Close()
	}
	return nil
}

// TCPFleet accepts node connections on a listener: each node dials in and
// introduces itself with its Hello, and Connect hands out peers by node ID
// in whatever order the coordinator asks for them, accepting further
// connections as needed. Nodes may dial in any order.
type TCPFleet struct {
	ln    net.Listener
	peers map[graph.NodeID]*Peer
}

// NewTCPFleet wraps an already-listening listener; the caller tells the
// nodes where to dial.
func NewTCPFleet(ln net.Listener) *TCPFleet {
	return &TCPFleet{ln: ln, peers: make(map[graph.NodeID]*Peer)}
}

// Connect waits for node id to dial in.
func (f *TCPFleet) Connect(id graph.NodeID) (*Peer, error) {
	for {
		if p, ok := f.peers[id]; ok {
			delete(f.peers, id)
			return p, nil
		}
		conn, err := f.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("dist: waiting for node %d: %w", id, err)
		}
		p, err := newPeer(conn)
		if err != nil {
			return nil, err
		}
		if _, dup := f.peers[p.Node()]; dup {
			_ = conn.Close()
			return nil, fmt.Errorf("dist: node %d connected twice", p.Node())
		}
		f.peers[p.Node()] = p
	}
}

// Close stops listening and drops unclaimed peers.
func (f *TCPFleet) Close() error {
	err := f.ln.Close()
	for _, p := range f.peers {
		_ = p.conn.Close()
	}
	return err
}

// DialNode connects to a TCPFleet coordinator at addr and serves prog as
// node id over the connection — the node side of the TCP transport.
func DialNode(addr string, id graph.NodeID, prog radio.Program) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return ServeNode(conn, id, prog)
}
