package dist

import (
	"fmt"
	"time"

	"dynsens/internal/graph"
	"dynsens/internal/netio/frame"
	"dynsens/internal/radio"
	"dynsens/internal/radio/rounds"
)

// DefaultRoundTimeout bounds how long the coordinator waits for one node's
// answer to one barrier before declaring it crashed. Generous on purpose:
// it only fires for genuinely wedged nodes, and a healthy barrier exchange
// is microseconds.
const DefaultRoundTimeout = 10 * time.Second

// Coordinator drives a fleet of actor nodes through the radio model's
// round structure, one barrier pair per round per node: Act (collect the
// node's action) and Finish (apply the resolved delivery, collect the Done
// bit). Audibility, collision resolution and loss coins come from the same
// internal/radio/rounds core and the same graph adjacency the in-process
// kernel uses, and events flow into the same trace hooks, so Run's Result,
// event stream (Event.Seq included) and any recording hung off the hooks
// are byte-identical to radio.Engine.Run for the same seed and scenario —
// the distributed runtime's equivalence obligation. A scripted Nemesis
// (crashes, healing partitions; loss via SetLoss) and the unscripted faults
// of real transports (process death, barrier timeout) disturb runs beyond
// what the kernel can express; those runs keep the verifiable-event
// contract (flight.Verify passes) but not byte-equality.
type Coordinator struct {
	g     *graph.Graph
	fleet Fleet
	nodes []graph.NodeID
	idx   map[graph.NodeID]int32
	links []*nodeLink

	nodeFail map[graph.NodeID]int
	linkFail map[rounds.Link]int
	skew     map[graph.NodeID]int
	lossRate float64
	lossSeed uint64
	nemesis  Nemesis
	timeout  time.Duration

	trace      func(radio.Event)
	traceBatch func([]radio.Event)
	one        [1]radio.Event
	seq        uint64
	mirror     map[graph.NodeID]radio.Program

	firstErr error
}

// nodeLink is the coordinator's per-node run state: the peer, its reader
// goroutine's channel, and the fault flags.
type nodeLink struct {
	id   graph.NodeID
	peer *Peer
	in   chan frame.Frame
	// crashed: the node violated the protocol or missed a barrier; it is
	// skipped for the rest of the current round and dies (EvNodeFail) at
	// the start of the next.
	crashed bool
	// halted: the connection is finished with (halt sent and/or closed).
	halted bool
}

// NewCoordinator connects one peer per node of g (in ascending node order)
// through the fleet. The fleet's Hellos must introduce exactly the nodes of
// g. The coordinator takes ownership of the fleet: Close tears it down.
func NewCoordinator(g *graph.Graph, fleet Fleet) (*Coordinator, error) {
	c := &Coordinator{
		g:        g,
		fleet:    fleet,
		nodes:    g.Nodes(),
		idx:      make(map[graph.NodeID]int32, g.NumNodes()),
		nodeFail: make(map[graph.NodeID]int),
		linkFail: make(map[rounds.Link]int),
		skew:     make(map[graph.NodeID]int),
		timeout:  DefaultRoundTimeout,
	}
	for i, id := range c.nodes {
		c.idx[id] = int32(i)
	}
	c.links = make([]*nodeLink, len(c.nodes))
	for i, id := range c.nodes {
		peer, err := fleet.Connect(id)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		if peer.Node() != id {
			_ = c.Close()
			return nil, fmt.Errorf("dist: fleet connected node %d where %d was asked for", peer.Node(), id)
		}
		l := &nodeLink{id: id, peer: peer, in: make(chan frame.Frame, 4)}
		c.links[i] = l
		go pump(l)
	}
	return c, nil
}

// pump is l's reader goroutine: it decodes frames off the connection into
// l.in until the stream errors (halt-close, process death, garbage), then
// closes the channel so a pending recv sees the failure immediately.
func pump(l *nodeLink) {
	for {
		var f frame.Frame
		if err := l.peer.dec.Decode(&f); err != nil {
			close(l.in)
			return
		}
		l.in <- f
	}
}

// SetTrace installs a per-event trace callback (nil disables it), with the
// engine's contract: called on the Run goroutine, in the deterministic
// event order.
func (c *Coordinator) SetTrace(fn func(radio.Event)) { c.trace = fn }

// SetTraceBatch installs a batched trace callback with the engine's
// contract; the coordinator hands over single-event batches.
func (c *Coordinator) SetTraceBatch(fn func([]radio.Event)) { c.traceBatch = fn }

// FailNodeAt schedules node id to die at the start of round r, exactly as
// radio.Engine.FailNodeAt does.
func (c *Coordinator) FailNodeAt(id graph.NodeID, r int) { c.nodeFail[id] = r }

// FailLinkAt schedules the link {u, v} to be cut at the start of round r.
func (c *Coordinator) FailLinkAt(u, v graph.NodeID, r int) { c.linkFail[rounds.MkLink(u, v)] = r }

// SetClockSkew gives node id a local clock offset; the coordinator sends
// pre-skewed local rounds in its barriers, so node hosts stay
// skew-ignorant.
func (c *Coordinator) SetClockSkew(id graph.NodeID, offset int) { c.skew[id] = offset }

// SetLoss enables the engine's loss model with the same counter-stream
// coins (internal/radio/rounds): identical seed, identical losses.
func (c *Coordinator) SetLoss(rate float64, seed int64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("dist: loss rate %v out of [0,1)", rate)
	}
	c.lossRate = rate
	c.lossSeed = uint64(seed)
	return nil
}

// MirrorDeliveries replays every delivery the coordinator hands out into
// the given local Program copies. Out-of-process fleets (ProcFleet,
// TCPFleet) execute their own reconstructions of the plan's Programs, so
// reception state interrogated after the run — broadcast's Received()
// metrics fill — would otherwise stay empty on the coordinator side. The
// mirror copies see the exact Deliver(localRound, msg) calls the remote
// nodes do, nothing else; do not set this for fleets that share memory
// with these Programs (LocalFleet), which would deliver twice.
func (c *Coordinator) MirrorDeliveries(programs map[graph.NodeID]radio.Program) {
	c.mirror = programs
}

// SetNemesis installs the scripted fault injector for the next Run.
func (c *Coordinator) SetNemesis(nm Nemesis) { c.nemesis = nm }

// SetRoundTimeout overrides DefaultRoundTimeout; d <= 0 waits forever
// (barrier faults then only surface through transport errors).
func (c *Coordinator) SetRoundTimeout(d time.Duration) { c.timeout = d }

// Err returns the first transport or protocol anomaly the run absorbed as
// a crash (nil on an undisturbed run). The Result stays valid either way —
// faults are part of the simulation, not of its bookkeeping.
func (c *Coordinator) Err() error { return c.firstErr }

// Close tears the fleet down. Idempotent; Run's normal exit already halts
// every node.
func (c *Coordinator) Close() error {
	for _, l := range c.links {
		if l != nil {
			c.haltLink(l, false)
		}
	}
	return c.fleet.Close()
}

func (c *Coordinator) emit(ev radio.Event) {
	c.seq++
	ev.Seq = c.seq
	if c.trace != nil {
		c.trace(ev)
	}
	if c.traceBatch != nil {
		c.one[0] = ev
		c.traceBatch(c.one[:])
	}
}

func (c *Coordinator) noteErr(err error) {
	if c.firstErr == nil {
		c.firstErr = err
	}
}

// send writes one frame to l, bounded by the round timeout so a node that
// stopped reading cannot wedge the barrier.
func (c *Coordinator) send(l *nodeLink, f *frame.Frame) error {
	if c.timeout > 0 {
		if dw, ok := l.peer.conn.(deadlineWriter); ok {
			//lint:ignore dynlint/nondeterminism the barrier timeout bounds a remote peer's I/O, not simulation state; an undisturbed run never hits it, and a hit becomes a deterministic scheduled failure
			_ = dw.SetWriteDeadline(time.Now().Add(c.timeout))
		}
	}
	return l.peer.enc.Encode(f)
}

// recv waits for l's next frame, bounded by the round timeout.
func (c *Coordinator) recv(l *nodeLink) (frame.Frame, error) {
	if c.timeout <= 0 {
		f, ok := <-l.in
		if !ok {
			return frame.Frame{}, fmt.Errorf("dist: node %d: connection lost", l.id)
		}
		return f, nil
	}
	//lint:ignore dynlint/nondeterminism the barrier timeout bounds a remote peer's answer, not simulation state; an undisturbed run never hits it, and a hit becomes a deterministic scheduled failure
	t := time.NewTimer(c.timeout)
	defer t.Stop()
	select {
	case f, ok := <-l.in:
		if !ok {
			return frame.Frame{}, fmt.Errorf("dist: node %d: connection lost", l.id)
		}
		return f, nil
	case <-t.C:
		return frame.Frame{}, fmt.Errorf("dist: node %d: no answer within %v", l.id, c.timeout)
	}
}

// haltLink finishes with a node's connection: optionally a best-effort Halt
// frame (so a healthy remote process exits cleanly), then close.
func (c *Coordinator) haltLink(l *nodeLink, sendHalt bool) {
	if l.halted {
		return
	}
	l.halted = true
	if sendHalt && !l.crashed {
		_ = c.send(l, &frame.Frame{Kind: frame.KindHalt})
	}
	_ = l.peer.conn.Close()
}

// crash marks l crashed mid-round r: it is skipped for the rest of the
// round and scheduled to die — EvNodeFail and all — at the start of round
// r+1, the kernel's failure-schedule semantics for a node that stops
// participating.
func (c *Coordinator) crash(l *nodeLink, r int, sched *rounds.Schedule, deadAt []int, err error) {
	c.noteErr(err)
	l.crashed = true
	i := c.idx[l.id]
	sched.Kill(l.id, r+1)
	if r+1 < deadAt[i] {
		deadAt[i] = r + 1
	}
	c.haltLink(l, false)
}

const neverDies = int(^uint(0) >> 1)

// Run executes up to maxRounds rounds (1-based) and returns the observed
// result, stopping early once every live program is Done — the
// message-passing twin of radio.Engine.Run. Call it once per coordinator.
func (c *Coordinator) Run(maxRounds int) radio.Result {
	n := len(c.nodes)
	res := radio.Result{
		Awake:     make(map[graph.NodeID]int, n),
		Listens:   make(map[graph.NodeID]int, n),
		Transmits: make(map[graph.NodeID]int, n),
	}

	sched := rounds.NewSchedule(c.nodeFail, c.linkFail)
	for _, cr := range c.nemesis.Crashes {
		sched.Kill(cr.Node, cr.Round)
	}
	parts := newPartitions(c.nemesis.Partitions)

	deadAt := make([]int, n)
	doneF := make([]bool, n)
	notDone := 0
	for i, id := range c.nodes {
		deadAt[i] = neverDies
		if r, ok := sched.DeathRound(id); ok {
			deadAt[i] = r
		}
		doneF[i] = c.links[i].peer.hello.Done
		if !doneF[i] && deadAt[i] >= 1 {
			notDone++
		}
	}

	actions := make([]radio.Action, n)
	awake := make([]int, n)
	listens := make([]int, n)
	transmits := make([]int, n)
	var cand []int32
	var lost []int32
	var st rounds.LossStream

	alive := func(i int, round int) bool { return round < deadAt[i] }

	finish := func() radio.Result {
		for i, id := range c.nodes {
			res.Awake[id] = awake[i]
			if listens[i] > 0 {
				res.Listens[id] = listens[i]
			}
			if transmits[i] > 0 {
				res.Transmits[id] = transmits[i]
			}
		}
		for _, l := range c.links {
			c.haltLink(l, true)
		}
		return res
	}

	for round := 1; round <= maxRounds; round++ {
		// Scheduled deaths and cuts fire first and are traced even if this
		// very round quiesces (kernel semantics). The schedule already
		// contains the nemesis crashes and any barrier-fault kills from
		// earlier rounds, sorted into the same deterministic order the
		// kernel emits.
		for _, id := range sched.NodeFails(round) {
			c.emit(radio.Event{Round: round, Kind: radio.EvNodeFail, Node: id})
			i := c.idx[id]
			if !doneF[i] {
				notDone--
			}
			c.haltLink(c.links[i], true)
		}
		for _, lk := range sched.LinkFails(round) {
			c.emit(radio.Event{Round: round, Kind: radio.EvLinkFail, Node: lk.U, Peer: lk.V})
		}
		if notDone == 0 {
			res.Rounds = round - 1
			res.Quiesced = true
			return finish()
		}

		// Act barrier: ask every live node for its action, then collect the
		// answers in ascending node order, emitting transmit events inline —
		// the reference loop's emission order. A node that cannot be asked
		// or does not answer simply sleeps this round and is crashed.
		for i, l := range c.links {
			if !alive(i, round) || l.crashed {
				continue
			}
			lr := round + c.skew[l.id]
			if err := c.send(l, &frame.Frame{Kind: frame.KindAct, Round: lr}); err != nil {
				c.crash(l, round, sched, deadAt, fmt.Errorf("dist: node %d: act send: %w", l.id, err))
			}
		}
		for i, l := range c.links {
			actions[i] = radio.Action{}
			if !alive(i, round) || l.crashed {
				continue
			}
			lr := round + c.skew[l.id]
			f, err := c.recv(l)
			if err != nil {
				c.crash(l, round, sched, deadAt, err)
				continue
			}
			if f.Kind != frame.KindAction || f.Round != lr {
				c.crash(l, round, sched, deadAt,
					fmt.Errorf("dist: node %d: got %v(round %d) at act barrier of round %d", l.id, f.Kind, f.Round, lr))
				continue
			}
			a := f.Action
			switch a.Kind {
			case radio.Sleep:
				// no cost
			case radio.Listen:
				awake[i]++
				listens[i]++
			case radio.Transmit:
				awake[i]++
				transmits[i]++
				res.Transmissions++
				a.Msg.From = l.id
				c.emit(radio.Event{Round: round, Kind: radio.EvTransmit, Node: l.id, Channel: a.Channel, Msg: a.Msg})
			}
			actions[i] = a
		}

		// Resolve: per listener in ascending node order, enumerate the
		// transmitting live-link neighbors on its channel in ascending order
		// (the shared coin-order contract), spend the nemesis partition's
		// frame drops as loss events, then draw the listener's loss coins
		// and classify with the shared rounds core.
		for i, id := range c.nodes {
			a := &actions[i]
			if a.Kind != radio.Listen {
				continue
			}
			ch := a.Channel
			cand = cand[:0]
			for _, nb := range c.g.Neighbors(id) {
				j := c.idx[nb]
				t := &actions[j]
				if t.Kind != radio.Transmit || t.Channel != ch {
					continue
				}
				if !sched.LinkAlive(id, nb, round) {
					continue
				}
				if parts.cuts(round, id, nb) {
					res.Losses++
					c.emit(radio.Event{Round: round, Kind: radio.EvLoss, Node: id, Peer: nb, Channel: ch, Msg: t.Msg})
					continue
				}
				cand = append(cand, j)
			}
			if len(cand) == 0 {
				continue
			}
			if c.lossRate > 0 {
				st = rounds.NewLossStream(c.lossSeed, id, round)
			}
			verdict, win, lostOut := rounds.Resolve(len(cand), c.lossRate, &st, lost[:0])
			lost = lostOut
			for _, ci := range lost {
				j := cand[ci]
				res.Losses++
				c.emit(radio.Event{Round: round, Kind: radio.EvLoss, Node: id, Peer: c.nodes[j], Channel: ch, Msg: actions[j].Msg})
			}
			switch verdict {
			case rounds.Delivered:
				j := cand[win]
				res.Deliveries++
				c.emit(radio.Event{Round: round, Kind: radio.EvDeliver, Node: id, Peer: c.nodes[j], Channel: ch, Msg: actions[j].Msg})
				// Carry the pending delivery to the finish barrier in the
				// listener's own action slot; deliverPending is not Transmit,
				// so later listeners' candidate scans are unaffected.
				actions[i] = radio.Action{Kind: deliverPending, Channel: ch, Msg: actions[j].Msg}
			case rounds.Collided:
				res.Collisions++
				c.emit(radio.Event{Round: round, Kind: radio.EvCollision, Node: id, Channel: ch})
			}
		}

		// Finish barrier: close every live node's round — deliver what it
		// heard, collect its Done bit — in ascending order, mirroring the
		// kernel's deliver phase and its Done re-evaluation.
		for i, l := range c.links {
			if !alive(i, round) || l.crashed {
				continue
			}
			lr := round + c.skew[l.id]
			f := frame.Frame{Kind: frame.KindFinish, Round: lr}
			if actions[i].Kind == deliverPending {
				f.HasMsg = true
				f.Msg = actions[i].Msg
				// The delivery happened this round regardless of what the
				// node does next (kernel semantics), so the mirror copy
				// records it even if the finish send below crashes the link.
				if prog := c.mirror[l.id]; prog != nil {
					prog.Deliver(lr, f.Msg)
				}
			}
			if err := c.send(l, &f); err != nil {
				c.crash(l, round, sched, deadAt, fmt.Errorf("dist: node %d: finish send: %w", l.id, err))
			}
		}
		for i, l := range c.links {
			if !alive(i, round) || l.crashed {
				continue
			}
			lr := round + c.skew[l.id]
			f, err := c.recv(l)
			if err != nil {
				c.crash(l, round, sched, deadAt, err)
				continue
			}
			if f.Kind != frame.KindStatus || f.Round != lr {
				c.crash(l, round, sched, deadAt,
					fmt.Errorf("dist: node %d: got %v(round %d) at finish barrier of round %d", l.id, f.Kind, f.Round, lr))
				continue
			}
			if !doneF[i] && f.Done {
				doneF[i] = true
				notDone--
			}
		}
		res.Rounds = round
	}

	// Deaths scheduled for round maxRounds+1 precede the final quiescence
	// check but fall outside the loop, so they emit no events (kernel
	// semantics).
	for _, id := range sched.NodeFails(maxRounds + 1) {
		if i := c.idx[id]; !doneF[i] {
			notDone--
		}
	}
	res.Quiesced = notDone == 0
	return finish()
}

// deliverPending is a private ActionKind value the resolve loop uses to
// carry "this listener received Msg" to the finish barrier inside the
// actions slice. It never crosses the wire and never reaches a Program.
const deliverPending radio.ActionKind = -1
