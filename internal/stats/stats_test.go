package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.String() == "" {
		t.Fatal("empty string render")
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig X", "n", "rounds")
	tb.AddRow("100", "42")
	tb.AddRow("200", "84")
	out := tb.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "rounds") {
		t.Fatalf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Short rows padded.
	tb.AddRow("300")
	if !strings.Contains(tb.String(), "300") {
		t.Fatal("short row lost")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", `x,"y`)
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,\"\"y\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "n", "v")
	tb.AddRowf("%d %.1f", 5, 2.5)
	if tb.Rows[0][0] != "5" || tb.Rows[0][1] != "2.5" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestF(t *testing.T) {
	if F(3) != "3" {
		t.Fatalf("F(3) = %s", F(3))
	}
	if F(3.14) != "3.1" {
		t.Fatalf("F(3.14) = %s", F(3.14))
	}
	if F(-2) != "-2" {
		t.Fatalf("F(-2) = %s", F(-2))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {80, 4}, {100, 5}, {95, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
	if PercentileInts([]int{9, 7, 8}, 50) != 8 {
		t.Fatal("PercentileInts wrong")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw) / 2.55 // 0..100
		v := Percentile(xs, p)
		s := Summarize(xs)
		if v < s.Min || v > s.Max {
			return false
		}
		return Percentile(xs, p) <= Percentile(xs, p+10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Min <= Mean <= Max, and Std >= 0; constant series have Std 0.
func TestSummaryProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 || s.Std < 0 {
			return false
		}
		c := Summarize([]float64{xs[0], xs[0], xs[0]})
		return c.Std == 0 && c.Mean == xs[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
