// Package stats provides the small statistics and reporting toolkit used by
// the experiment harness: per-series summaries (mean/std/min/max over
// repeated seeded runs) and fixed-width text tables matching the rows the
// paper's figures plot.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // population standard deviation
	Min  float64
	Max  float64
}

// Summarize computes a Summary; an empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(len(xs)))
	return s
}

// SummarizeInts converts and summarizes integer samples.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders "mean±std [min,max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f±%.1f [%.0f,%.0f] (n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// PercentileInts is Percentile over integer samples.
func PercentileInts(xs []int, p float64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Percentile(fs, p)
}

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(cell))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float compactly: integers without decimals, otherwise one
// decimal place.
func F(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}
