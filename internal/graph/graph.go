// Package graph provides the undirected-graph and rooted-tree machinery the
// cluster-based network structure is built on: adjacency bookkeeping,
// traversals, connectivity, tree utilities (including Euler tours, used by
// the depth-first-order broadcast baseline and by node-move-out), and the
// dominating-set / independent-set helpers used to verify Property 1 of the
// paper.
//
// All iteration orders are deterministic (ascending node ID) so that
// simulations are reproducible run to run.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are application-chosen and need not be dense.
type NodeID int

// Graph is a simple undirected graph without self-loops or parallel edges.
// The zero value is not usable; call New.
//
// Sorted adjacency and node listings are cached between mutations so that
// the traversal and protocol hot loops pay no per-call sort or allocation;
// see Neighbors and Nodes for the sharing contract.
type Graph struct {
	adj   map[NodeID]map[NodeID]struct{}
	edges int

	// nbrCache holds the sorted adjacency slice of each node, built lazily
	// by Neighbors and dropped per-node whenever that node's adjacency
	// mutates. Cached slices are exactly sized (len == cap) so a caller
	// append always reallocates instead of writing into the cache.
	nbrCache map[NodeID][]NodeID
	// nodeCache holds the sorted node listing, dropped on any node-set
	// mutation.
	nodeCache []NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID]map[NodeID]struct{})}
}

// AddNode inserts an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(id NodeID) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[NodeID]struct{})
		g.nodeCache = nil
	}
}

// HasNode reports whether id is present.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.adj[id]
	return ok
}

// RemoveNode deletes a node and all incident edges. Removing an absent node
// is a no-op.
func (g *Graph) RemoveNode(id NodeID) {
	nbrs, ok := g.adj[id]
	if !ok {
		return
	}
	for n := range nbrs {
		delete(g.adj[n], id)
		delete(g.nbrCache, n)
		g.edges--
	}
	delete(g.adj, id)
	delete(g.nbrCache, id)
	g.nodeCache = nil
}

// AddEdge inserts the undirected edge {u, v}, adding endpoints as needed.
// Self-loops are rejected with an error; duplicate edges are no-ops.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.adj[u][v]; ok {
		return nil
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	delete(g.nbrCache, u)
	delete(g.nbrCache, v)
	return nil
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v NodeID) {
	if _, ok := g.adj[u][v]; !ok {
		return
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
	delete(g.nbrCache, u)
	delete(g.nbrCache, v)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.adj[u][v]
	return ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all node IDs in ascending order. The result is cached and
// shared until the node set mutates: callers must not modify it. Appending
// to it is safe (the cache is exactly sized, so append reallocates).
//
//dynlint:hotpath cached adjacency feeds the kernel every round
func (g *Graph) Nodes() []NodeID {
	if g.nodeCache != nil {
		return g.nodeCache
	}
	out := make([]NodeID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.nodeCache = out
	return out
}

// Neighbors returns the neighbors of id in ascending order. Absent nodes
// yield nil. The result is cached and shared until id's adjacency mutates:
// callers must not modify it (appending is safe — the cache is exactly
// sized, so append reallocates). On an unmutated graph repeated calls are
// allocation-free.
//
//dynlint:hotpath cached adjacency feeds the kernel every round
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if out, ok := g.nbrCache[id]; ok {
		return out
	}
	nbrs, ok := g.adj[id]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, len(nbrs))
	for n := range nbrs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if g.nbrCache == nil {
		g.nbrCache = make(map[NodeID][]NodeID, len(g.adj))
	}
	g.nbrCache[id] = out
	return out
}

// WarmAdjacency materializes the sorted node listing and every node's
// sorted adjacency slice in the caches. Neighbors and Nodes build their
// caches lazily — a map write on first call — so concurrent readers of an
// otherwise-immutable graph must warm the caches first; after
// WarmAdjacency returns (and until the next mutation), Nodes, Neighbors,
// HasEdge, Degree and NumEdges are safe to call from multiple goroutines.
// The radio engine's parallel kernel relies on this.
func (g *Graph) WarmAdjacency() {
	for _, id := range g.Nodes() {
		g.Neighbors(id)
	}
}

// Degree returns the degree of id (0 for absent nodes).
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
// This is the quantity the paper calls D when applied to the whole network.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.edges = g.edges
	for id, nbrs := range g.adj {
		m := make(map[NodeID]struct{}, len(nbrs))
		for n := range nbrs {
			m[n] = struct{}{}
		}
		c.adj[id] = m
	}
	return c
}

// InducedSubgraph returns the subgraph induced by keep: its node set is the
// intersection of keep with the graph's nodes, and its edges are all edges
// of g with both endpoints in keep. The paper writes G(V_BT) for the
// subgraph induced by the backbone node set.
func (g *Graph) InducedSubgraph(keep []NodeID) *Graph {
	in := make(map[NodeID]struct{}, len(keep))
	for _, id := range keep {
		if g.HasNode(id) {
			in[id] = struct{}{}
		}
	}
	sub := New()
	for id := range in {
		sub.AddNode(id)
		for n := range g.adj[id] {
			if _, ok := in[n]; ok && n > id {
				// AddEdge cannot fail here: id != n.
				_ = sub.AddEdge(id, n)
			}
		}
	}
	return sub
}

// BFSResult carries the outcome of a breadth-first traversal.
type BFSResult struct {
	// Order lists reached nodes in visit order, starting with the root.
	Order []NodeID
	// Parent maps each reached node (except the root) to its BFS parent.
	Parent map[NodeID]NodeID
	// Depth maps each reached node to its hop distance from the root.
	Depth map[NodeID]int
}

// BFS runs a breadth-first traversal from root. Neighbor expansion is in
// ascending ID order, so the result is deterministic. If root is absent the
// result is empty. Order doubles as the work queue and all buffers are
// preallocated to the reachable-set bound, so a traversal performs a
// constant number of allocations.
func (g *Graph) BFS(root NodeID) BFSResult {
	if !g.HasNode(root) {
		return BFSResult{Parent: make(map[NodeID]NodeID), Depth: make(map[NodeID]int)}
	}
	n := len(g.adj)
	res := BFSResult{
		Order:  make([]NodeID, 0, n),
		Parent: make(map[NodeID]NodeID, n),
		Depth:  make(map[NodeID]int, n),
	}
	res.Depth[root] = 0
	res.Order = append(res.Order, root)
	for head := 0; head < len(res.Order); head++ {
		u := res.Order[head]
		du := res.Depth[u]
		for _, v := range g.Neighbors(u) {
			if _, seen := res.Depth[v]; seen {
				continue
			}
			res.Depth[v] = du + 1
			res.Parent[v] = u
			res.Order = append(res.Order, v)
		}
	}
	return res
}

// Connected reports whether the graph is connected. Empty graphs and
// single-node graphs are connected.
func (g *Graph) Connected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	var root NodeID
	for id := range g.adj {
		root = id
		break
	}
	return len(g.BFS(root).Order) == len(g.adj)
}

// Components returns the connected components, each sorted ascending, and
// the list of components sorted by their smallest member.
func (g *Graph) Components() [][]NodeID {
	seen := make(map[NodeID]struct{}, len(g.adj))
	var comps [][]NodeID
	for _, id := range g.Nodes() {
		if _, ok := seen[id]; ok {
			continue
		}
		res := g.BFS(id)
		comp := append([]NodeID(nil), res.Order...)
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		for _, n := range comp {
			seen[n] = struct{}{}
		}
		comps = append(comps, comp)
	}
	return comps
}

// ArticulationPoints returns the cut vertices of the graph: the nodes
// whose removal increases the number of connected components. For a
// connected graph this is exactly the set of nodes that are NOT safe to
// remove while keeping the remainder connected, which makes one O(n+m)
// pass replace a per-candidate connectivity probe in the churn generators.
// The traversal expands neighbors in ascending order, so the computation
// is deterministic; the result is a set (iterate g.Nodes() for order).
func (g *Graph) ArticulationPoints() map[NodeID]bool {
	n := len(g.adj)
	disc := make(map[NodeID]int, n)
	low := make(map[NodeID]int, n)
	parent := make(map[NodeID]NodeID, n)
	art := make(map[NodeID]bool)
	timer := 0
	type frame struct {
		u    NodeID
		next int
	}
	stack := make([]frame, 0, n)
	for _, root := range g.Nodes() {
		if _, seen := disc[root]; seen {
			continue
		}
		disc[root] = timer
		low[root] = timer
		timer++
		rootChildren := 0
		stack = append(stack[:0], frame{u: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nbrs := g.Neighbors(f.u)
			if f.next < len(nbrs) {
				v := nbrs[f.next]
				f.next++
				if _, seen := disc[v]; !seen {
					parent[v] = f.u
					if f.u == root {
						rootChildren++
					}
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{u: v})
				} else if p, ok := parent[f.u]; (!ok || v != p) && disc[v] < low[f.u] {
					low[f.u] = disc[v]
				}
			} else {
				stack = stack[:len(stack)-1]
				if p, ok := parent[f.u]; ok {
					if low[f.u] < low[p] {
						low[p] = low[f.u]
					}
					if p != root && low[f.u] >= disc[p] {
						art[p] = true
					}
				}
			}
		}
		if rootChildren > 1 {
			art[root] = true
		}
	}
	return art
}

// Eccentricity returns the maximum BFS distance from id to any reachable
// node, and the number of reachable nodes (including id).
func (g *Graph) Eccentricity(id NodeID) (ecc, reached int) {
	res := g.BFS(id)
	for _, d := range res.Depth {
		if d > ecc {
			ecc = d
		}
	}
	return ecc, len(res.Order)
}

// Diameter returns the exact diameter of a connected graph via all-pairs
// BFS, or -1 if the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if len(g.adj) == 0 {
		return -1
	}
	n := len(g.adj)
	diam := 0
	for _, id := range g.Nodes() {
		ecc, reached := g.Eccentricity(id)
		if reached != n {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.NumNodes() != o.NumNodes() || g.NumEdges() != o.NumEdges() {
		return false
	}
	for id, nbrs := range g.adj {
		onbrs, ok := o.adj[id]
		if !ok || len(nbrs) != len(onbrs) {
			return false
		}
		for n := range nbrs {
			if _, ok := onbrs[n]; !ok {
				return false
			}
		}
	}
	return true
}
