package graph

import (
	"fmt"
	"sort"
)

// Tree is a rooted tree maintained incrementally: leaves may be attached and
// detached, and whole subtrees enumerated. CNet(G) and BT(G) are Trees.
type Tree struct {
	root     NodeID
	parent   map[NodeID]NodeID
	children map[NodeID]map[NodeID]struct{}

	// depthCache memoizes DepthMap between mutations; nil means stale.
	depthCache map[NodeID]int
	// childCache memoizes each node's sorted child slice, dropped per-node
	// on mutation; traversals (Subtree, EulerTour, broadcast schedules)
	// read it allocation-free.
	childCache map[NodeID][]NodeID
}

// NewTree returns a tree containing only root.
func NewTree(root NodeID) *Tree {
	t := &Tree{
		root:     root,
		parent:   make(map[NodeID]NodeID),
		children: make(map[NodeID]map[NodeID]struct{}),
	}
	t.children[root] = make(map[NodeID]struct{})
	return t
}

// Root returns the root node.
func (t *Tree) Root() NodeID { return t.root }

// Contains reports whether id is in the tree.
func (t *Tree) Contains(id NodeID) bool {
	_, ok := t.children[id]
	return ok
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return len(t.children) }

// AddChild attaches a new node under parent. It fails if parent is absent or
// the node already exists.
func (t *Tree) AddChild(id, parent NodeID) error {
	if t.Contains(id) {
		return fmt.Errorf("tree: node %d already present", id)
	}
	if !t.Contains(parent) {
		return fmt.Errorf("tree: parent %d not present", parent)
	}
	t.parent[id] = parent
	t.children[id] = make(map[NodeID]struct{})
	t.children[parent][id] = struct{}{}
	t.depthCache = nil
	delete(t.childCache, parent)
	return nil
}

// RemoveLeaf detaches a childless non-root node. It fails otherwise.
func (t *Tree) RemoveLeaf(id NodeID) error {
	if !t.Contains(id) {
		return fmt.Errorf("tree: node %d not present", id)
	}
	if id == t.root {
		return fmt.Errorf("tree: cannot remove root %d as leaf", id)
	}
	if len(t.children[id]) != 0 {
		return fmt.Errorf("tree: node %d has children", id)
	}
	p := t.parent[id]
	delete(t.children[p], id)
	delete(t.parent, id)
	delete(t.children, id)
	t.depthCache = nil
	delete(t.childCache, p)
	delete(t.childCache, id)
	return nil
}

// RemoveSubtree detaches the whole subtree rooted at id (including id) and
// returns the removed nodes in preorder. Removing the root empties the tree
// except that the tree becomes unusable; callers re-rooting should build a
// fresh Tree instead.
func (t *Tree) RemoveSubtree(id NodeID) ([]NodeID, error) {
	if !t.Contains(id) {
		return nil, fmt.Errorf("tree: node %d not present", id)
	}
	if id == t.root {
		return nil, fmt.Errorf("tree: refusing to remove subtree at root; rebuild instead")
	}
	nodes := t.Subtree(id)
	p := t.parent[id]
	delete(t.children[p], id)
	for _, n := range nodes {
		delete(t.parent, n)
		delete(t.children, n)
		delete(t.childCache, n)
	}
	t.depthCache = nil
	delete(t.childCache, p)
	return nodes, nil
}

// Parent returns the parent of id, with ok=false for the root or absent
// nodes.
func (t *Tree) Parent(id NodeID) (NodeID, bool) {
	p, ok := t.parent[id]
	return p, ok
}

// Children returns the children of id in ascending order. The result is
// cached and shared until id's child set mutates: callers must not modify
// it (appending is safe — the cache is exactly sized, so append
// reallocates).
func (t *Tree) Children(id NodeID) []NodeID {
	if out, ok := t.childCache[id]; ok {
		return out
	}
	ch, ok := t.children[id]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, len(ch))
	for c := range ch {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if t.childCache == nil {
		t.childCache = make(map[NodeID][]NodeID, len(t.children))
	}
	t.childCache[id] = out
	return out
}

// IsLeaf reports whether id is present and has no children.
func (t *Tree) IsLeaf(id NodeID) bool {
	ch, ok := t.children[id]
	return ok && len(ch) == 0
}

// Nodes returns all nodes in ascending order.
func (t *Tree) Nodes() []NodeID {
	out := make([]NodeID, 0, len(t.children))
	for id := range t.children {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns all childless nodes in ascending order.
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	for id, ch := range t.children {
		if len(ch) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Depth returns the number of edges from the root to id, or -1 if absent.
// The root has depth 0 (the paper's "null" depth).
func (t *Tree) Depth(id NodeID) int {
	if !t.Contains(id) {
		return -1
	}
	d := 0
	for id != t.root {
		id = t.parent[id]
		d++
	}
	return d
}

// DepthMap returns the depth of every node. The result is memoized between
// mutations; callers must not modify it.
func (t *Tree) DepthMap() map[NodeID]int {
	if t.depthCache != nil {
		return t.depthCache
	}
	depth := make(map[NodeID]int, len(t.children))
	// Preorder from root, children ascending, so traversal is deterministic.
	stack := []NodeID{t.root}
	depth[t.root] = 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Children(u) {
			depth[c] = depth[u] + 1
			stack = append(stack, c)
		}
	}
	t.depthCache = depth
	return depth
}

// Height returns the maximum depth over all nodes (0 for a single node).
// This is the paper's h when applied to CNet(G) or BT(G).
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.DepthMap() {
		if d > h {
			h = d
		}
	}
	return h
}

// SubtreeHeight returns the height of the subtree rooted at id (0 if id is
// a leaf), or -1 if id is absent.
func (t *Tree) SubtreeHeight(id NodeID) int {
	if !t.Contains(id) {
		return -1
	}
	h := 0
	depth := map[NodeID]int{id: 0}
	stack := []NodeID{id}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if depth[u] > h {
			h = depth[u]
		}
		for _, c := range t.Children(u) {
			depth[c] = depth[u] + 1
			stack = append(stack, c)
		}
	}
	return h
}

// Subtree returns the nodes of the subtree rooted at id in deterministic
// preorder (children visited in ascending order), or nil if absent.
func (t *Tree) Subtree(id NodeID) []NodeID {
	if !t.Contains(id) {
		return nil
	}
	out := make([]NodeID, 0, t.Size())
	var walk func(NodeID)
	walk = func(u NodeID) {
		out = append(out, u)
		for _, c := range t.Children(u) {
			walk(c)
		}
	}
	walk(id)
	return out
}

// PathToRoot returns the node sequence id, parent(id), ..., root, or nil if
// id is absent.
func (t *Tree) PathToRoot(id NodeID) []NodeID {
	if !t.Contains(id) {
		return nil
	}
	var out []NodeID
	for {
		out = append(out, id)
		if id == t.root {
			return out
		}
		id = t.parent[id]
	}
}

// EulerTour returns the Eulerian tour of the tree starting and ending at
// start: the sequence of token holders where every tree edge is traversed
// exactly twice (once in each direction). For a tree with m edges reachable
// from start the tour has 2m+1 entries. This is the transmission schedule of
// the depth-first-order broadcast of [19] and of node-move-out.
func (t *Tree) EulerTour(start NodeID) []NodeID {
	if !t.Contains(start) {
		return nil
	}
	tour := make([]NodeID, 0, 2*t.Size()-1)
	var walk func(u NodeID, from NodeID, hasFrom bool)
	walk = func(u NodeID, from NodeID, hasFrom bool) {
		tour = append(tour, u)
		// Visit all tree-neighbors except the one we came from. Tree
		// neighbors are children plus parent so that tours may start at any
		// node, as node-move-out requires.
		for _, c := range t.Children(u) {
			if hasFrom && c == from {
				continue
			}
			walk(c, u, true)
			tour = append(tour, u)
		}
		if p, ok := t.Parent(u); ok && (!hasFrom || p != from) {
			walk(p, u, true)
			tour = append(tour, u)
		}
	}
	walk(start, 0, false)
	return tour
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		root:     t.root,
		parent:   make(map[NodeID]NodeID, len(t.parent)),
		children: make(map[NodeID]map[NodeID]struct{}, len(t.children)),
	}
	for k, v := range t.parent {
		c.parent[k] = v
	}
	for k, v := range t.children {
		m := make(map[NodeID]struct{}, len(v))
		for n := range v {
			m[n] = struct{}{}
		}
		c.children[k] = m
	}
	return c
}

// AsGraph returns the tree's node/edge set as an undirected Graph.
func (t *Tree) AsGraph() *Graph {
	g := New()
	g.AddNode(t.root)
	for id, p := range t.parent {
		_ = g.AddEdge(id, p)
	}
	return g
}

// Validate checks structural consistency: parent/children agreement, a
// single root, and acyclicity (every node reaches the root).
func (t *Tree) Validate() error {
	if !t.Contains(t.root) {
		return fmt.Errorf("tree: root %d missing", t.root)
	}
	if _, ok := t.parent[t.root]; ok {
		return fmt.Errorf("tree: root %d has a parent", t.root)
	}
	for id := range t.children {
		if id == t.root {
			continue
		}
		p, ok := t.parent[id]
		if !ok {
			return fmt.Errorf("tree: non-root %d has no parent", id)
		}
		if _, ok := t.children[p][id]; !ok {
			return fmt.Errorf("tree: %d not registered as child of %d", id, p)
		}
	}
	for p, ch := range t.children {
		for c := range ch {
			if got, ok := t.parent[c]; !ok || got != p {
				return fmt.Errorf("tree: child %d of %d has parent %v", c, p, got)
			}
		}
	}
	// Reachability: every node's path to root must terminate.
	for id := range t.children {
		seen := make(map[NodeID]struct{})
		cur := id
		for cur != t.root {
			if _, dup := seen[cur]; dup {
				return fmt.Errorf("tree: cycle through %d", cur)
			}
			seen[cur] = struct{}{}
			p, ok := t.parent[cur]
			if !ok {
				return fmt.Errorf("tree: %d does not reach root", id)
			}
			cur = p
		}
	}
	return nil
}
