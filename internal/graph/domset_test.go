package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyDominatingSetOnStar(t *testing.T) {
	g := New()
	for i := 1; i <= 6; i++ {
		mustEdge(t, g, 0, NodeID(i))
	}
	ds := GreedyDominatingSet(g)
	if len(ds) != 1 || ds[0] != 0 {
		t.Fatalf("star dominating set = %v", ds)
	}
	if !IsDominatingSet(g, ds) {
		t.Fatal("greedy set not dominating")
	}
}

func TestIsDominatingSetRejects(t *testing.T) {
	g := path(t, 5)
	if IsDominatingSet(g, []NodeID{0}) {
		t.Fatal("single endpoint dominates a P5?")
	}
	if !IsDominatingSet(g, []NodeID{1, 3}) {
		t.Fatal("{1,3} should dominate P5")
	}
	if IsDominatingSet(g, []NodeID{1, 99}) {
		t.Fatal("set containing absent node accepted")
	}
}

func TestMISOnTriangle(t *testing.T) {
	g := New()
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 0, 2)
	mis := MaximalIndependentSet(g)
	if len(mis) != 1 {
		t.Fatalf("triangle MIS = %v", mis)
	}
	if !IsIndependentSet(g, mis) {
		t.Fatal("MIS not independent")
	}
}

func TestIsIndependentSet(t *testing.T) {
	g := path(t, 4)
	if !IsIndependentSet(g, []NodeID{0, 2}) {
		t.Fatal("{0,2} independent in P4")
	}
	if IsIndependentSet(g, []NodeID{0, 1}) {
		t.Fatal("{0,1} is an edge")
	}
	if IsIndependentSet(g, []NodeID{0, 77}) {
		t.Fatal("absent member accepted")
	}
}

func TestCliqueCoverOnCompleteGraph(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			mustEdge(t, g, NodeID(i), NodeID(j))
		}
	}
	cover := CliqueCoverGreedy(g)
	if len(cover) != 1 || len(cover[0]) != 5 {
		t.Fatalf("K5 clique cover = %v", cover)
	}
}

// Property: greedy dominating set always dominates; MIS is independent and
// dominating; clique cover partitions the nodes into genuine cliques.
func TestSetCoverProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(n, n, rng)
		ds := GreedyDominatingSet(g)
		if !IsDominatingSet(g, ds) {
			return false
		}
		mis := MaximalIndependentSet(g)
		if !IsIndependentSet(g, mis) || !IsDominatingSet(g, mis) {
			return false
		}
		cover := CliqueCoverGreedy(g)
		seen := make(map[NodeID]struct{})
		for _, clique := range cover {
			for i, u := range clique {
				if _, dup := seen[u]; dup {
					return false
				}
				seen[u] = struct{}{}
				for _, v := range clique[i+1:] {
					if !g.HasEdge(u, v) {
						return false
					}
				}
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
