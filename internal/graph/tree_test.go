package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTree attaches nodes 1..n-1 each under a random earlier node.
func buildTree(n int, rng *rand.Rand) *Tree {
	t := NewTree(0)
	for i := 1; i < n; i++ {
		_ = t.AddChild(NodeID(i), NodeID(rng.Intn(i)))
	}
	return t
}

func TestTreeBasics(t *testing.T) {
	tr := NewTree(5)
	if tr.Root() != 5 || tr.Size() != 1 || !tr.IsLeaf(5) {
		t.Fatal("fresh tree malformed")
	}
	if err := tr.AddChild(7, 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddChild(9, 7); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 3 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if p, ok := tr.Parent(9); !ok || p != 7 {
		t.Fatalf("Parent(9) = %d,%v", p, ok)
	}
	if _, ok := tr.Parent(5); ok {
		t.Fatal("root has parent")
	}
	if tr.Depth(9) != 2 || tr.Depth(5) != 0 {
		t.Fatalf("depths: %d %d", tr.Depth(9), tr.Depth(5))
	}
	if tr.Depth(1234) != -1 {
		t.Fatal("absent depth should be -1")
	}
	if tr.Height() != 2 {
		t.Fatalf("Height = %d", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeAddChildErrors(t *testing.T) {
	tr := NewTree(0)
	if err := tr.AddChild(0, 0); err == nil {
		t.Fatal("re-adding root accepted")
	}
	if err := tr.AddChild(1, 99); err == nil {
		t.Fatal("absent parent accepted")
	}
	if err := tr.AddChild(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddChild(1, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestRemoveLeaf(t *testing.T) {
	tr := NewTree(0)
	_ = tr.AddChild(1, 0)
	_ = tr.AddChild(2, 1)
	if err := tr.RemoveLeaf(1); err == nil {
		t.Fatal("removed internal node as leaf")
	}
	if err := tr.RemoveLeaf(0); err == nil {
		t.Fatal("removed root as leaf")
	}
	if err := tr.RemoveLeaf(2); err != nil {
		t.Fatal(err)
	}
	if tr.Contains(2) || tr.Size() != 2 {
		t.Fatal("leaf not removed")
	}
	if !tr.IsLeaf(1) {
		t.Fatal("parent should become leaf")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSubtree(t *testing.T) {
	tr := NewTree(0)
	_ = tr.AddChild(1, 0)
	_ = tr.AddChild(2, 1)
	_ = tr.AddChild(3, 1)
	_ = tr.AddChild(4, 0)
	got, err := tr.RemoveSubtree(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("RemoveSubtree returned %v", got)
	}
	if tr.Size() != 2 || tr.Contains(2) {
		t.Fatal("subtree not removed")
	}
	if _, err := tr.RemoveSubtree(0); err == nil {
		t.Fatal("removing root subtree should fail")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreePreorder(t *testing.T) {
	tr := NewTree(0)
	_ = tr.AddChild(2, 0)
	_ = tr.AddChild(1, 0)
	_ = tr.AddChild(3, 2)
	got := tr.Subtree(0)
	want := []NodeID{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subtree = %v, want %v", got, want)
		}
	}
}

func TestPathToRoot(t *testing.T) {
	tr := NewTree(0)
	_ = tr.AddChild(1, 0)
	_ = tr.AddChild(2, 1)
	p := tr.PathToRoot(2)
	want := []NodeID{2, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PathToRoot = %v", p)
		}
	}
	if tr.PathToRoot(99) != nil {
		t.Fatal("path for absent node")
	}
}

func TestEulerTourFromRoot(t *testing.T) {
	tr := NewTree(0)
	_ = tr.AddChild(1, 0)
	_ = tr.AddChild(2, 0)
	_ = tr.AddChild(3, 1)
	tour := tr.EulerTour(0)
	// 3 edges -> 7 entries, starts and ends at 0.
	if len(tour) != 7 {
		t.Fatalf("tour length = %d (%v)", len(tour), tour)
	}
	if tour[0] != 0 || tour[len(tour)-1] != 0 {
		t.Fatalf("tour endpoints: %v", tour)
	}
	// Every consecutive pair must be a tree edge.
	g := tr.AsGraph()
	for i := 1; i < len(tour); i++ {
		if !g.HasEdge(tour[i-1], tour[i]) {
			t.Fatalf("tour step %d-%d not an edge", tour[i-1], tour[i])
		}
	}
}

func TestEulerTourFromNonRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := buildTree(12, rng)
	tour := tr.EulerTour(7)
	if len(tour) != 2*(tr.Size()-1)+1 {
		t.Fatalf("tour length = %d", len(tour))
	}
	if tour[0] != 7 || tour[len(tour)-1] != 7 {
		t.Fatalf("tour endpoints: %v", tour)
	}
	// Each edge used exactly twice.
	used := make(map[[2]NodeID]int)
	for i := 1; i < len(tour); i++ {
		a, b := tour[i-1], tour[i]
		if a > b {
			a, b = b, a
		}
		used[[2]NodeID{a, b}]++
	}
	for e, c := range used {
		if c != 2 {
			t.Fatalf("edge %v used %d times", e, c)
		}
	}
}

func TestSubtreeHeight(t *testing.T) {
	tr := NewTree(0)
	_ = tr.AddChild(1, 0)
	_ = tr.AddChild(2, 1)
	_ = tr.AddChild(3, 2)
	if h := tr.SubtreeHeight(1); h != 2 {
		t.Fatalf("SubtreeHeight(1) = %d", h)
	}
	if h := tr.SubtreeHeight(3); h != 0 {
		t.Fatalf("SubtreeHeight(leaf) = %d", h)
	}
	if h := tr.SubtreeHeight(9); h != -1 {
		t.Fatalf("SubtreeHeight(absent) = %d", h)
	}
}

func TestTreeCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := buildTree(20, rng)
	c := tr.Clone()
	if c.Size() != tr.Size() || c.Height() != tr.Height() {
		t.Fatal("clone differs")
	}
	leaf := c.Leaves()[0]
	if err := c.RemoveLeaf(leaf); err != nil {
		t.Fatal(err)
	}
	if !tr.Contains(leaf) {
		t.Fatal("clone aliased original")
	}
}

func TestLeaves(t *testing.T) {
	tr := NewTree(0)
	_ = tr.AddChild(1, 0)
	_ = tr.AddChild(2, 0)
	_ = tr.AddChild(3, 1)
	leaves := tr.Leaves()
	want := []NodeID{2, 3}
	if len(leaves) != 2 || leaves[0] != want[0] || leaves[1] != want[1] {
		t.Fatalf("Leaves = %v", leaves)
	}
}

// Property: for random trees, DepthMap agrees with Depth, the Euler tour
// from the root covers every node, and Validate passes.
func TestTreeProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		rng := rand.New(rand.NewSource(seed))
		tr := buildTree(n, rng)
		if err := tr.Validate(); err != nil {
			return false
		}
		dm := tr.DepthMap()
		for _, id := range tr.Nodes() {
			if dm[id] != tr.Depth(id) {
				return false
			}
		}
		tour := tr.EulerTour(tr.Root())
		seen := make(map[NodeID]struct{})
		for _, id := range tour {
			seen[id] = struct{}{}
		}
		if len(seen) != n || len(tour) != 2*(n-1)+1 {
			return false
		}
		// Height equals max depth.
		maxD := 0
		for _, d := range dm {
			if d > maxD {
				maxD = d
			}
		}
		return tr.Height() == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AsGraph yields a connected acyclic graph with n-1 edges.
func TestAsGraphIsTree(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		tr := buildTree(n, rng)
		g := tr.AsGraph()
		return g.NumNodes() == n && g.NumEdges() == n-1 && g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
