package graph

import "sort"

// IsDominatingSet reports whether set dominates g: every node is in set or
// adjacent to a member of set.
func IsDominatingSet(g *Graph, set []NodeID) bool {
	in := make(map[NodeID]struct{}, len(set))
	for _, id := range set {
		if !g.HasNode(id) {
			return false
		}
		in[id] = struct{}{}
	}
	for _, id := range g.Nodes() {
		if _, ok := in[id]; ok {
			continue
		}
		dominated := false
		for _, n := range g.Neighbors(id) {
			if _, ok := in[n]; ok {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// GreedyDominatingSet returns a dominating set via the standard greedy
// heuristic (repeatedly pick the node covering the most uncovered nodes,
// ties broken by smallest ID). Its size upper-bounds |MDS| within a
// logarithmic factor; it is used to sanity-check the paper's Property 1(3)
// bound #clusters <= 5*|MDS| on unit-disk graphs.
func GreedyDominatingSet(g *Graph) []NodeID {
	uncovered := make(map[NodeID]struct{}, g.NumNodes())
	for _, id := range g.Nodes() {
		uncovered[id] = struct{}{}
	}
	var set []NodeID
	for len(uncovered) > 0 {
		best := NodeID(0)
		bestGain := -1
		for _, id := range g.Nodes() {
			gain := 0
			if _, ok := uncovered[id]; ok {
				gain++
			}
			for _, n := range g.Neighbors(id) {
				if _, ok := uncovered[n]; ok {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && id < best) {
				best, bestGain = id, gain
			}
		}
		if bestGain <= 0 {
			break // isolated leftovers are impossible: each covers itself
		}
		set = append(set, best)
		delete(uncovered, best)
		for _, n := range g.Neighbors(best) {
			delete(uncovered, n)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// IsIndependentSet reports whether no two members of set are adjacent.
func IsIndependentSet(g *Graph, set []NodeID) bool {
	for i, u := range set {
		if !g.HasNode(u) {
			return false
		}
		for _, v := range set[i+1:] {
			if g.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// MaximalIndependentSet returns the lexicographically greedy maximal
// independent set (scan nodes in ascending ID; take a node if no smaller
// taken node is adjacent). On any graph an MIS is also a dominating set.
func MaximalIndependentSet(g *Graph) []NodeID {
	taken := make(map[NodeID]struct{})
	var set []NodeID
	for _, id := range g.Nodes() {
		ok := true
		for _, n := range g.Neighbors(id) {
			if _, t := taken[n]; t {
				ok = false
				break
			}
		}
		if ok {
			taken[id] = struct{}{}
			set = append(set, id)
		}
	}
	return set
}

// CliqueCoverGreedy returns a greedy partition of the nodes into cliques
// (each returned group is a complete subgraph of g) and hence an upper
// bound on the paper's p, "the smallest number of complete sub-graphs in
// G". Groups and members are deterministic.
func CliqueCoverGreedy(g *Graph) [][]NodeID {
	assigned := make(map[NodeID]struct{}, g.NumNodes())
	var cover [][]NodeID
	for _, seed := range g.Nodes() {
		if _, ok := assigned[seed]; ok {
			continue
		}
		clique := []NodeID{seed}
		assigned[seed] = struct{}{}
		for _, cand := range g.Neighbors(seed) {
			if _, ok := assigned[cand]; ok {
				continue
			}
			compatible := true
			for _, m := range clique {
				if !g.HasEdge(cand, m) {
					compatible = false
					break
				}
			}
			if compatible {
				clique = append(clique, cand)
				assigned[cand] = struct{}{}
			}
		}
		cover = append(cover, clique)
	}
	return cover
}
