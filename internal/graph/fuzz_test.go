package graph

import "testing"

// FuzzTreeOps drives a Tree through arbitrary add-leaf / remove-leaf /
// remove-subtree sequences decoded from fuzz bytes, validating structure
// after every mutation and checking Euler-tour and depth invariants.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0xF0, 3, 0xE0})
	f.Add([]byte{5, 5, 5, 5, 0xF1, 0xF2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		tr := NewTree(0)
		next := NodeID(1)
		for _, op := range ops {
			switch {
			case op < 0xE0:
				nodes := tr.Nodes()
				parent := nodes[int(op)%len(nodes)]
				if err := tr.AddChild(next, parent); err != nil {
					t.Fatalf("AddChild: %v", err)
				}
				next++
			case op < 0xF0:
				leaves := tr.Leaves()
				if len(leaves) == 0 || (len(leaves) == 1 && leaves[0] == tr.Root()) {
					continue
				}
				victim := leaves[int(op)%len(leaves)]
				if victim == tr.Root() {
					continue
				}
				if err := tr.RemoveLeaf(victim); err != nil {
					t.Fatalf("RemoveLeaf: %v", err)
				}
			default:
				nodes := tr.Nodes()
				victim := nodes[int(op)%len(nodes)]
				if victim == tr.Root() {
					continue
				}
				if _, err := tr.RemoveSubtree(victim); err != nil {
					t.Fatalf("RemoveSubtree: %v", err)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			// Euler tour covers the tree with 2(n-1)+1 steps.
			tour := tr.EulerTour(tr.Root())
			if len(tour) != 2*(tr.Size()-1)+1 {
				t.Fatalf("tour length %d for size %d", len(tour), tr.Size())
			}
			// DepthMap consistent with Height.
			maxD := 0
			for _, d := range tr.DepthMap() {
				if d > maxD {
					maxD = d
				}
			}
			if maxD != tr.Height() {
				t.Fatalf("height %d vs max depth %d", tr.Height(), maxD)
			}
		}
	})
}
