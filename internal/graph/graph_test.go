package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, u, v NodeID) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

// path returns the path graph 0-1-...-(n-1).
func path(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	g.AddNode(0)
	for i := 1; i < n; i++ {
		mustEdge(t, g, NodeID(i-1), NodeID(i))
	}
	return g
}

// randomConnected builds a random connected graph on n nodes: a random tree
// plus extra random edges.
func randomConnected(n int, extra int, rng *rand.Rand) *Graph {
	g := New()
	g.AddNode(0)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(NodeID(i), NodeID(rng.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if d := g.Diameter(); d != -1 {
		t.Fatalf("Diameter of empty graph = %d, want -1", d)
	}
	if nbrs := g.Neighbors(7); nbrs != nil {
		t.Fatalf("Neighbors of absent node = %v", nbrs)
	}
}

func TestAddRemoveEdge(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge not symmetric")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	// Duplicate add is a no-op.
	mustEdge(t, g, 2, 1)
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge counted: %d", g.NumEdges())
	}
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || g.NumEdges() != 0 {
		t.Fatal("edge not removed")
	}
	// Removing an absent edge is a no-op.
	g.RemoveEdge(1, 2)
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges after double remove = %d", g.NumEdges())
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge(3, 3); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	g.RemoveNode(1)
	if g.HasNode(1) {
		t.Fatal("node 1 still present")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.HasEdge(1, 2) || g.HasEdge(1, 3) {
		t.Fatal("stale incident edge")
	}
	if !g.HasEdge(2, 3) {
		t.Fatal("unrelated edge lost")
	}
	g.RemoveNode(42) // absent: no-op
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
}

func TestNeighborsSortedAndCached(t *testing.T) {
	g := New()
	mustEdge(t, g, 5, 9)
	mustEdge(t, g, 5, 1)
	mustEdge(t, g, 5, 4)
	nbrs := g.Neighbors(5)
	want := []NodeID{1, 4, 9}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors(5) = %v, want %v", nbrs, want)
	}
	for i, n := range nbrs {
		if n != want[i] {
			t.Fatalf("Neighbors(5) = %v, want %v", nbrs, want)
		}
	}
	// The cached slice is exactly sized, so appending to the shared result
	// must reallocate rather than scribble past the cache.
	if len(nbrs) != cap(nbrs) {
		t.Fatalf("cached slice not exactly sized: len %d cap %d", len(nbrs), cap(nbrs))
	}
	grown := append(nbrs, 77)
	again := g.Neighbors(5)
	if len(again) != 3 {
		t.Fatalf("append to returned slice corrupted cache: %v", again)
	}
	_ = grown
}

func TestNeighborsCacheInvalidation(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	if got := g.Neighbors(1); len(got) != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	mustEdge(t, g, 1, 4)
	if got := g.Neighbors(1); len(got) != 3 || got[2] != 4 {
		t.Fatalf("cache stale after AddEdge: %v", got)
	}
	g.RemoveEdge(1, 2)
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 3 {
		t.Fatalf("cache stale after RemoveEdge: %v", got)
	}
	g.RemoveNode(3)
	if got := g.Neighbors(1); len(got) != 1 || got[0] != 4 {
		t.Fatalf("cache stale after RemoveNode of neighbor: %v", got)
	}
	if got := g.Nodes(); len(got) != 3 {
		t.Fatalf("Nodes after RemoveNode = %v", got)
	}
	g.AddNode(9)
	if got := g.Nodes(); len(got) != 4 || got[3] != 9 {
		t.Fatalf("node cache stale after AddNode: %v", got)
	}
}

func TestNeighborsAndNodesAllocationFree(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	// Warm the caches.
	_ = g.Nodes()
	for _, id := range []NodeID{1, 2, 3} {
		_ = g.Neighbors(id)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, id := range []NodeID{1, 2, 3} {
			if len(g.Neighbors(id)) != 2 {
				t.Fatal("wrong neighbor count")
			}
		}
		if len(g.Nodes()) != 3 {
			t.Fatal("wrong node count")
		}
	})
	if allocs != 0 {
		t.Fatalf("Neighbors/Nodes on unmutated graph allocated %.1f per run, want 0", allocs)
	}
}

func TestArticulationPoints(t *testing.T) {
	// Path 0-1-2-3: interior nodes are cut vertices.
	g := path(t, 4)
	art := g.ArticulationPoints()
	for _, tc := range []struct {
		id   NodeID
		want bool
	}{{0, false}, {1, true}, {2, true}, {3, false}} {
		if art[tc.id] != tc.want {
			t.Fatalf("ArticulationPoints()[%d] = %v, want %v (got %v)", tc.id, art[tc.id], tc.want, art)
		}
	}
	// Cycle: no cut vertices.
	mustEdge(t, g, 3, 0)
	if art := g.ArticulationPoints(); len(art) != 0 {
		t.Fatalf("cycle has articulation points %v", art)
	}
	// Two triangles sharing node 2: only 2 is a cut vertex.
	h := New()
	mustEdge(t, h, 0, 1)
	mustEdge(t, h, 1, 2)
	mustEdge(t, h, 2, 0)
	mustEdge(t, h, 2, 3)
	mustEdge(t, h, 3, 4)
	mustEdge(t, h, 4, 2)
	art = h.ArticulationPoints()
	if len(art) != 1 || !art[2] {
		t.Fatalf("bowtie articulation points = %v, want {2}", art)
	}
}

// Property: a node of a connected graph is an articulation point exactly
// when deleting it disconnects the remainder — the equivalence the churn
// generators rely on.
func TestArticulationPointsMatchRemoval(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%25) + 3
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(n, n/3, rng)
		art := g.ArticulationPoints()
		for _, id := range g.Nodes() {
			h := g.Clone()
			h.RemoveNode(id)
			if art[id] == h.Connected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDepths(t *testing.T) {
	g := path(t, 5)
	res := g.BFS(0)
	if len(res.Order) != 5 {
		t.Fatalf("reached %d nodes", len(res.Order))
	}
	for i := 0; i < 5; i++ {
		if res.Depth[NodeID(i)] != i {
			t.Fatalf("depth of %d = %d", i, res.Depth[NodeID(i)])
		}
	}
	if res.Order[0] != 0 {
		t.Fatalf("BFS order starts at %d", res.Order[0])
	}
	if _, ok := res.Parent[0]; ok {
		t.Fatal("root has a parent")
	}
}

func TestBFSAbsentRoot(t *testing.T) {
	g := New()
	res := g.BFS(1)
	if len(res.Order) != 0 {
		t.Fatalf("BFS from absent root reached %d nodes", len(res.Order))
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := path(t, 4)
	if !g.Connected() {
		t.Fatal("path should be connected")
	}
	g.AddNode(10)
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	if len(comps[0]) != 4 || len(comps[1]) != 1 || comps[1][0] != 10 {
		t.Fatalf("unexpected components %v", comps)
	}
}

func TestDiameter(t *testing.T) {
	g := path(t, 6)
	if d := g.Diameter(); d != 5 {
		t.Fatalf("path diameter = %d, want 5", d)
	}
	// Cycle of 6: diameter 3.
	mustEdge(t, g, 5, 0)
	if d := g.Diameter(); d != 3 {
		t.Fatalf("cycle diameter = %d, want 3", d)
	}
	g.AddNode(99)
	if d := g.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	mustEdge(t, g, 4, 1)
	sub := g.InducedSubgraph([]NodeID{1, 2, 3, 42})
	if sub.NumNodes() != 3 {
		t.Fatalf("induced nodes = %d", sub.NumNodes())
	}
	if !sub.HasEdge(1, 2) || !sub.HasEdge(2, 3) {
		t.Fatal("induced edges missing")
	}
	if sub.HasEdge(4, 1) || sub.HasNode(4) {
		t.Fatal("excluded node leaked into induced subgraph")
	}
	// Original untouched.
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatal("InducedSubgraph mutated receiver")
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(30, 40, rng)
	c := g.Clone()
	if !g.Equal(c) || !c.Equal(g) {
		t.Fatal("clone not equal")
	}
	c.RemoveNode(3)
	if g.Equal(c) {
		t.Fatal("mutation of clone affected equality")
	}
	if !g.HasNode(3) {
		t.Fatal("clone aliased original")
	}
}

func TestEqualDetectsEdgeDifference(t *testing.T) {
	a, b := New(), New()
	_ = a.AddEdge(1, 2)
	_ = a.AddEdge(3, 4)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(1, 3)
	b.AddNode(4)
	if a.Equal(b) {
		t.Fatal("graphs with same counts but different edges reported equal")
	}
}

func TestEccentricity(t *testing.T) {
	g := path(t, 5)
	ecc, reached := g.Eccentricity(2)
	if ecc != 2 || reached != 5 {
		t.Fatalf("Eccentricity(2) = %d,%d", ecc, reached)
	}
	ecc, reached = g.Eccentricity(0)
	if ecc != 4 || reached != 5 {
		t.Fatalf("Eccentricity(0) = %d,%d", ecc, reached)
	}
}

// Property: for random connected graphs, BFS from any node reaches all
// nodes, depths differ by at most 1 across any edge, and the BFS tree has
// n-1 parent entries.
func TestBFSProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(n, n/2, rng)
		root := NodeID(rng.Intn(n))
		res := g.BFS(root)
		if len(res.Order) != n || len(res.Parent) != n-1 {
			return false
		}
		for _, u := range g.Nodes() {
			for _, v := range g.Neighbors(u) {
				du, dv := res.Depth[u], res.Depth[v]
				if du-dv > 1 || dv-du > 1 {
					return false
				}
			}
		}
		for child, par := range res.Parent {
			if !g.HasEdge(child, par) {
				return false
			}
			if res.Depth[child] != res.Depth[par]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing a random node removes exactly its degree from the edge
// count.
func TestRemoveNodeEdgeAccounting(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 3
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(n, n, rng)
		victim := NodeID(rng.Intn(n))
		deg := g.Degree(victim)
		before := g.NumEdges()
		g.RemoveNode(victim)
		return g.NumEdges() == before-deg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is Equal and independent.
func TestCloneProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(n, n, rng)
		c := g.Clone()
		if !g.Equal(c) {
			return false
		}
		c.RemoveNode(NodeID(rng.Intn(n)))
		return g.NumNodes() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
