package energy

import (
	"math"
	"testing"
	"testing/quick"

	"dynsens/internal/graph"
)

func TestModelValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Model{TransmitCost: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
	inverted := Model{TransmitCost: 0.1, ListenCost: 0.1, SleepCost: 1}
	if err := inverted.Validate(); err == nil {
		t.Fatal("sleep costlier than activity accepted")
	}
}

func TestEpochCost(t *testing.T) {
	m := Model{TransmitCost: 2, ListenCost: 1, SleepCost: 0.5}
	// 3 tx + 4 listen + 3 sleep in a 10-round epoch.
	got := m.EpochCost(4, 3, 10)
	want := 3*2.0 + 4*1.0 + 3*0.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	// Activity exceeding the epoch clamps sleep at zero.
	got = m.EpochCost(8, 8, 10)
	want = 8*2.0 + 8*1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("clamped cost = %v, want %v", got, want)
	}
}

func TestTrackerChargeAndDepletion(t *testing.T) {
	nodes := []graph.NodeID{1, 2, 3}
	tr, err := NewTracker(Model{TransmitCost: 1, ListenCost: 1, SleepCost: 0}, nodes, 10)
	if err != nil {
		t.Fatal(err)
	}
	listens := map[graph.NodeID]int{1: 5, 2: 1}
	transmits := map[graph.NodeID]int{1: 5}
	tr.Charge(listens, transmits, 20)
	if tr.Remaining(1) != 0 {
		t.Fatalf("node 1 remaining = %v", tr.Remaining(1))
	}
	if tr.Remaining(2) != 9 || tr.Remaining(3) != 10 {
		t.Fatalf("remaining: %v %v", tr.Remaining(2), tr.Remaining(3))
	}
	dep := tr.Depleted()
	if len(dep) != 1 || dep[0] != 1 {
		t.Fatalf("depleted = %v", dep)
	}
	id, v := tr.MinRemaining()
	if id != 1 || v != 0 {
		t.Fatalf("min = %d %v", id, v)
	}
}

func TestNewTrackerErrors(t *testing.T) {
	if _, err := NewTracker(DefaultModel(), nil, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewTracker(Model{TransmitCost: -1}, nil, 1); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestLifetimeExact(t *testing.T) {
	m := Model{TransmitCost: 1, ListenCost: 1, SleepCost: 0}
	listens := map[graph.NodeID]int{1: 3, 2: 1}
	transmits := map[graph.NodeID]int{1: 2}
	// Worst node is 1 with cost 5/epoch; budget 27 -> 5 epochs.
	epochs, bottleneck := Lifetime(m, 27, listens, transmits, 100, 1<<20)
	if epochs != 5 || bottleneck != 1 {
		t.Fatalf("lifetime = %d via %d", epochs, bottleneck)
	}
}

func TestLifetimeAllSleepCaps(t *testing.T) {
	m := Model{TransmitCost: 1, ListenCost: 1, SleepCost: 0}
	epochs, _ := Lifetime(m, 10, nil, nil, 100, 999)
	if epochs != 999 {
		t.Fatalf("all-sleep lifetime = %d", epochs)
	}
	epochs, _ = Lifetime(m, 10, nil, nil, 0, 999)
	if epochs != 999 {
		t.Fatalf("zero-epoch lifetime = %d", epochs)
	}
}

// Property: lifetime decreases (weakly) as activity increases, and the
// bottleneck is always the costliest node.
func TestLifetimeMonotone(t *testing.T) {
	f := func(l1, t1, extra uint8) bool {
		m := DefaultModel()
		a := map[graph.NodeID]int{1: int(l1 % 50)}
		b := map[graph.NodeID]int{1: int(t1 % 50)}
		e1, _ := Lifetime(m, 1000, a, b, 200, 1<<20)
		a2 := map[graph.NodeID]int{1: int(l1%50) + int(extra%10) + 1}
		e2, _ := Lifetime(m, 1000, a2, b, 200, 1<<20)
		return e2 <= e1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
