// Package energy models per-node batteries over the paper's awake-round
// energy metric. The paper's claim is qualitative — CFF is "energy saving"
// because each node is awake only O(Delta) rounds per broadcast instead of
// the whole depth-first tour — and this package makes it quantitative: it
// prices listen/transmit/sleep rounds, drains batteries across repeated
// broadcasts, and computes the classic WSN lifetime metric (number of
// dissemination epochs until the first node dies).
package energy

import (
	"fmt"
	"math"

	"dynsens/internal/graph"
)

// Model prices one round of each activity in abstract energy units.
// Defaults follow the usual sensor-radio ordering: transmitting is the most
// expensive, idle listening costs nearly as much, sleeping is orders of
// magnitude cheaper.
type Model struct {
	TransmitCost float64
	ListenCost   float64
	SleepCost    float64
}

// DefaultModel mirrors typical low-power radio ratios (tx : rx : sleep
// roughly 1 : 0.8 : 0.001).
func DefaultModel() Model {
	return Model{TransmitCost: 1.0, ListenCost: 0.8, SleepCost: 0.001}
}

// Validate rejects negative or inverted cost orderings.
func (m Model) Validate() error {
	if m.TransmitCost < 0 || m.ListenCost < 0 || m.SleepCost < 0 {
		return fmt.Errorf("energy: negative cost in %+v", m)
	}
	if m.SleepCost > m.ListenCost || m.SleepCost > m.TransmitCost {
		return fmt.Errorf("energy: sleep costlier than activity in %+v", m)
	}
	return nil
}

// EpochCost returns the energy one node spends in a dissemination epoch of
// the given total length, with the given listen and transmit round counts.
func (m Model) EpochCost(listens, transmits, epochRounds int) float64 {
	sleeps := epochRounds - listens - transmits
	if sleeps < 0 {
		sleeps = 0
	}
	return float64(transmits)*m.TransmitCost +
		float64(listens)*m.ListenCost +
		float64(sleeps)*m.SleepCost
}

// Tracker drains per-node budgets across epochs.
type Tracker struct {
	model     Model
	remaining map[graph.NodeID]float64
	initial   float64
}

// NewTracker gives every node the same initial budget.
func NewTracker(model Model, nodes []graph.NodeID, budget float64) (*Tracker, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		return nil, fmt.Errorf("energy: non-positive budget %v", budget)
	}
	t := &Tracker{model: model, remaining: make(map[graph.NodeID]float64, len(nodes)), initial: budget}
	for _, id := range nodes {
		t.remaining[id] = budget
	}
	return t, nil
}

// Remaining returns a node's budget (0 for unknown nodes).
func (t *Tracker) Remaining(id graph.NodeID) float64 { return t.remaining[id] }

// Charge applies one epoch: every tracked node pays for its listens,
// transmits and the implied sleep rounds of an epoch of epochRounds.
// Unlisted nodes slept throughout.
func (t *Tracker) Charge(listens, transmits map[graph.NodeID]int, epochRounds int) {
	for id := range t.remaining {
		t.remaining[id] -= t.model.EpochCost(listens[id], transmits[id], epochRounds)
	}
}

// Depleted lists nodes at or below zero, ascending.
func (t *Tracker) Depleted() []graph.NodeID {
	var out []graph.NodeID
	for id, r := range t.remaining {
		if r <= 0 {
			out = append(out, id)
		}
	}
	sortNodeIDs(out)
	return out
}

// MinRemaining returns the lowest budget and its node (ties to lowest ID).
func (t *Tracker) MinRemaining() (graph.NodeID, float64) {
	first := true
	var minID graph.NodeID
	minV := 0.0
	for id, r := range t.remaining {
		if first || r < minV || (r == minV && id < minID) {
			minID, minV = id, r
			first = false
		}
	}
	return minID, minV
}

// Lifetime computes how many identical epochs the network survives before
// the first node depletes, given the per-epoch activity of each node. It
// is exact (no simulation loop needed because epochs are identical):
// floor(budget / maxPerEpochCost). Returns math.MaxInt-safe large values
// capped at cap for all-sleep epochs.
func Lifetime(model Model, budget float64, listens, transmits map[graph.NodeID]int, epochRounds int, cap int) (epochs int, bottleneck graph.NodeID) {
	if epochRounds <= 0 {
		return cap, 0
	}
	worst := 0.0
	first := true
	ids := make([]graph.NodeID, 0, len(listens)+len(transmits))
	seen := make(map[graph.NodeID]bool)
	for id := range listens {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for id := range transmits {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sortNodeIDs(ids)
	for _, id := range ids {
		c := model.EpochCost(listens[id], transmits[id], epochRounds)
		if first || c > worst {
			worst, bottleneck = c, id
			first = false
		}
	}
	if worst <= 0 {
		return cap, bottleneck
	}
	e := int(math.Floor(budget / worst))
	if e > cap {
		return cap, bottleneck
	}
	return e, bottleneck
}

func sortNodeIDs(ids []graph.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
