// Package multicast implements Section 3.4 of the paper: MCNet(G), the
// cluster-based structure extended with per-node group-lists and
// relay-lists, and the collision-free multicast that runs Algorithm 2 with
// subtree pruning — an internal node forwards the payload only when the
// target group appears in its relay-list (it has a descendant in the
// group), so subtrees without group members drop out of the multicast.
//
// Relay-lists are maintained incrementally: a membership change walks the
// path to the root (h rounds), and topology changes replay the affected
// nodes, matching the paper's Section 5 list-maintenance sketch.
package multicast

import (
	"fmt"
	"sort"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
)

// MCNet augments a CNet with group and relay lists.
type MCNet struct {
	net *cnet.CNet
	// member[id][g] marks id as a member of group g (the group-list).
	member map[graph.NodeID]map[int]bool
	// relay[id][g] counts id's proper descendants belonging to g; the
	// relay-list is the set of groups with positive count.
	relay map[graph.NodeID]map[int]int
	// rounds accumulates list-maintenance cost (one round per hop of each
	// root-ward update walk).
	rounds int
}

// New wraps net with empty group state.
func New(net *cnet.CNet) *MCNet {
	return &MCNet{
		net:    net,
		member: make(map[graph.NodeID]map[int]bool),
		relay:  make(map[graph.NodeID]map[int]int),
	}
}

// Net returns the underlying CNet.
func (m *MCNet) Net() *cnet.CNet { return m.net }

// Rounds returns the accumulated list-maintenance round cost.
func (m *MCNet) Rounds() int { return m.rounds }

// InGroup reports whether id belongs to group g.
func (m *MCNet) InGroup(id graph.NodeID, g int) bool { return m.member[id][g] }

// HasRelay reports whether g is in id's relay-list (a proper descendant of
// id belongs to g).
func (m *MCNet) HasRelay(id graph.NodeID, g int) bool { return m.relay[id][g] > 0 }

// GroupList returns id's groups, ascending.
func (m *MCNet) GroupList(id graph.NodeID) []int {
	var out []int
	for g := range m.member[id] {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// RelayList returns id's relay-list, ascending.
func (m *MCNet) RelayList(id graph.NodeID) []int {
	var out []int
	for g, n := range m.relay[id] {
		if n > 0 {
			out = append(out, g)
		}
	}
	sort.Ints(out)
	return out
}

// GroupMembers returns the members of g, ascending.
func (m *MCNet) GroupMembers(g int) []graph.NodeID {
	var out []graph.NodeID
	for _, id := range m.net.Tree().Nodes() {
		if m.member[id][g] {
			out = append(out, id)
		}
	}
	return out
}

// JoinGroup adds id to group g and pushes the relay update up the tree.
func (m *MCNet) JoinGroup(id graph.NodeID, g int) error {
	if !m.net.Contains(id) {
		return fmt.Errorf("multicast: node %d not in network", id)
	}
	if g <= 0 {
		return fmt.Errorf("multicast: group IDs are positive, got %d", g)
	}
	if m.member[id][g] {
		return nil
	}
	if m.member[id] == nil {
		m.member[id] = make(map[int]bool)
	}
	m.member[id][g] = true
	m.bumpAncestors(id, g, +1)
	return nil
}

// LeaveGroup removes id from group g.
func (m *MCNet) LeaveGroup(id graph.NodeID, g int) error {
	if !m.member[id][g] {
		return fmt.Errorf("multicast: node %d not in group %d", id, g)
	}
	delete(m.member[id], g)
	m.bumpAncestors(id, g, -1)
	return nil
}

// SetGroups bulk-loads memberships (replacing existing state) and rebuilds
// relay lists.
func (m *MCNet) SetGroups(groups map[graph.NodeID][]int) error {
	m.member = make(map[graph.NodeID]map[int]bool)
	for id, gs := range groups {
		if !m.net.Contains(id) {
			return fmt.Errorf("multicast: node %d not in network", id)
		}
		set := make(map[int]bool, len(gs))
		for _, g := range gs {
			if g <= 0 {
				return fmt.Errorf("multicast: group IDs are positive, got %d", g)
			}
			set[g] = true
		}
		m.member[id] = set
	}
	m.Rebuild()
	return nil
}

func (m *MCNet) bumpAncestors(id graph.NodeID, g int, delta int) {
	tr := m.net.Tree()
	cur := id
	for {
		p, ok := tr.Parent(cur)
		if !ok {
			break
		}
		if m.relay[p] == nil {
			m.relay[p] = make(map[int]int)
		}
		m.relay[p][g] += delta
		m.rounds++
		cur = p
	}
}

// Rebuild recomputes all relay counts from the current tree and
// memberships, pruning memberships of nodes that left the network.
func (m *MCNet) Rebuild() {
	m.relay = make(map[graph.NodeID]map[int]int)
	for id, gs := range m.member {
		if !m.net.Contains(id) {
			delete(m.member, id)
			continue
		}
		for g := range gs {
			m.bumpAncestors(id, g, +1)
		}
	}
}

// OnCrash updates lists after a non-graceful repair: dead and dropped
// nodes lose their memberships, survivors keep theirs, relay counts are
// rebuilt.
func (m *MCNet) OnCrash(rec cnet.CrashRecord) {
	for _, id := range rec.Dead {
		delete(m.member, id)
	}
	for _, id := range rec.Dropped {
		delete(m.member, id)
	}
	m.Rebuild()
}

// OnMoveOut updates lists after a node-move-out: the departed node's
// memberships vanish, re-inserted nodes keep theirs, and relay counts are
// rebuilt over the new tree (the paper updates them along the move-out
// tour; the result is identical).
func (m *MCNet) OnMoveOut(rec cnet.MoveOutRecord) {
	delete(m.member, rec.Removed)
	m.Rebuild()
}

// Verify checks that relay counts equal the true descendant-membership
// counts.
func (m *MCNet) Verify() error {
	tr := m.net.Tree()
	want := make(map[graph.NodeID]map[int]int)
	for id, gs := range m.member {
		if !tr.Contains(id) {
			return fmt.Errorf("multicast: member %d not in tree", id)
		}
		cur := id
		for {
			p, ok := tr.Parent(cur)
			if !ok {
				break
			}
			if want[p] == nil {
				want[p] = make(map[int]int)
			}
			for g := range gs {
				want[p][g]++
			}
			cur = p
		}
	}
	for _, id := range tr.Nodes() {
		for g, n := range m.relay[id] {
			if n < 0 {
				return fmt.Errorf("multicast: negative relay count at %d group %d", id, g)
			}
			if n != want[id][g] {
				return fmt.Errorf("multicast: relay[%d][%d]=%d, want %d", id, g, n, want[id][g])
			}
		}
		for g, n := range want[id] {
			if m.relay[id][g] != n {
				return fmt.Errorf("multicast: relay[%d][%d]=%d, want %d", id, g, m.relay[id][g], n)
			}
		}
	}
	return nil
}

// RelaySet computes the effective forwarding set for group g: the nodes
// whose relay-lists contain g, closed under a uniqueness repair. Pruning
// can strip a receiver's interference set of its unique-slot transmitter
// (the time-slot conditions were established for the full broadcast), so
// whenever a receiver would be left without one, the full-set designated
// transmitter and its ancestors are forced to relay too. The closure
// terminates because the set only grows, and at the full backbone the
// verified slot conditions hold. ForcedRelays in the returned count tells
// how many nodes the repair added beyond the paper's relay-list rule.
func (m *MCNet) RelaySet(a *timeslot.Assignment, g int) (set map[graph.NodeID]bool, forced int) {
	tr := m.net.Tree()
	set = make(map[graph.NodeID]bool)
	for _, id := range tr.Nodes() {
		if m.HasRelay(id, g) {
			set[id] = true
		}
	}
	addWithAncestors := func(id graph.NodeID) {
		cur := id
		for {
			if !set[cur] {
				set[cur] = true
				forced++
			}
			p, ok := tr.Parent(cur)
			if !ok {
				return
			}
			cur = p
		}
	}
	hasUniqueIn := func(kind timeslot.Kind, v graph.NodeID) bool {
		count := make(map[int]int)
		for _, u := range a.InterferenceSet(kind, v) {
			if !set[u] {
				continue
			}
			if s, ok := a.Slot(kind, u); ok {
				count[s]++
			}
		}
		for _, c := range count {
			if c == 1 {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, v := range tr.Nodes() {
			var kind timeslot.Kind
			switch st, _ := m.net.Status(v); st {
			case cnet.Member:
				if !m.InGroup(v, g) {
					continue
				}
				kind = timeslot.L
			default:
				if !set[v] && !m.InGroup(v, g) {
					continue
				}
				if v == m.net.Root() {
					continue
				}
				kind = timeslot.B
			}
			if hasUniqueIn(kind, v) {
				continue
			}
			if u, _, ok := a.Designated(kind, v); ok && !set[u] {
				addWithAncestors(u)
				changed = true
			}
		}
	}
	return set, forced
}

// Plan builds the multicast schedule for group g from source: Algorithm 2
// with relaying restricted to the group's relay set (plus the
// source-to-root preamble, which is never pruned). The audience — the
// plan's completion criterion — is the group membership.
func (m *MCNet) Plan(a *timeslot.Assignment, g int, source graph.NodeID, k int) (*broadcast.Plan, error) {
	if a.Net() != m.net {
		return nil, fmt.Errorf("multicast: assignment bound to a different network")
	}
	members := m.GroupMembers(g)
	if len(members) == 0 {
		return nil, fmt.Errorf("multicast: group %d has no members", g)
	}
	set, _ := m.RelaySet(a, g)
	relay := func(id graph.NodeID) bool { return set[id] }
	want := func(id graph.NodeID) bool { return m.InGroup(id, g) }
	plan, err := broadcast.ICFFPlan(a, source, k, relay, want)
	if err != nil {
		return nil, err
	}
	plan.Protocol = "MCAST"
	plan.StampGroup(g)
	return plan, nil
}

// Run executes a multicast for group g from source.
func (m *MCNet) Run(a *timeslot.Assignment, g int, source graph.NodeID, opts broadcast.Options) (broadcast.Metrics, error) {
	k := opts.Channels
	if k <= 0 {
		k = 1
	}
	plan, err := m.Plan(a, g, source, k)
	if err != nil {
		return broadcast.Metrics{}, err
	}
	return plan.Run(m.net.Graph(), opts)
}
