package multicast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/timeslot"
	"dynsens/internal/workload"
)

func buildNet(t testing.TB, seed int64, n int) (*cnet.CNet, *timeslot.Assignment) {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, timeslot.New(c, timeslot.ConditionStrict)
}

func TestGroupListMaintenance(t *testing.T) {
	c, _ := buildNet(t, 1, 40)
	m := New(c)
	nodes := c.Tree().Nodes()
	leafish := nodes[len(nodes)-1]
	if err := m.JoinGroup(leafish, 2); err != nil {
		t.Fatal(err)
	}
	if !m.InGroup(leafish, 2) {
		t.Fatal("membership not recorded")
	}
	// Every proper ancestor must have 2 in its relay-list.
	cur := leafish
	for {
		p, ok := c.Tree().Parent(cur)
		if !ok {
			break
		}
		if !m.HasRelay(p, 2) {
			t.Fatalf("ancestor %d missing relay entry", p)
		}
		cur = p
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.LeaveGroup(leafish, 2); err != nil {
		t.Fatal(err)
	}
	if m.HasRelay(c.Root(), 2) && c.Root() != leafish {
		t.Fatal("relay entry not cleared")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinGroupErrors(t *testing.T) {
	c, _ := buildNet(t, 1, 10)
	m := New(c)
	if err := m.JoinGroup(999, 1); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := m.JoinGroup(c.Root(), 0); err == nil {
		t.Fatal("group 0 accepted")
	}
	if err := m.JoinGroup(c.Root(), 1); err != nil {
		t.Fatal(err)
	}
	// Idempotent join.
	if err := m.JoinGroup(c.Root(), 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.LeaveGroup(c.Root(), 7); err == nil {
		t.Fatal("leaving absent group accepted")
	}
}

func TestSetGroupsBulk(t *testing.T) {
	c, _ := buildNet(t, 2, 60)
	m := New(c)
	groups := workload.Groups(c.Graph(), 3, 0.4, 11)
	asLists := make(map[graph.NodeID][]int, len(groups))
	for id, gs := range groups {
		asLists[id] = gs
	}
	if err := m.SetGroups(asLists); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// GroupList round-trips.
	for id, gs := range asLists {
		got := m.GroupList(id)
		if len(got) != len(gs) {
			t.Fatalf("group list of %d = %v, want %v", id, got, gs)
		}
	}
	if err := m.SetGroups(map[graph.NodeID][]int{1: {-1}}); err == nil {
		t.Fatal("negative group accepted")
	}
	if err := m.SetGroups(map[graph.NodeID][]int{9999: {1}}); err == nil {
		t.Fatal("unknown node accepted in bulk load")
	}
}

func TestMulticastDeliversToGroup(t *testing.T) {
	c, a := buildNet(t, 3, 150)
	m := New(c)
	rng := rand.New(rand.NewSource(3))
	nodes := c.Tree().Nodes()
	for i := 0; i < 30; i++ {
		_ = m.JoinGroup(nodes[rng.Intn(len(nodes))], 1)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(a, 1, c.Root(), broadcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("multicast incomplete: %s", res)
	}
	if res.Audience != len(m.GroupMembers(1)) {
		t.Fatalf("audience %d, members %d", res.Audience, len(m.GroupMembers(1)))
	}
}

func TestMulticastPrunesTransmissions(t *testing.T) {
	// A multicast to a small group must transmit less and finish its last
	// delivery no later than the full broadcast (Section 3.4's claim).
	c, a := buildNet(t, 4, 200)
	m := New(c)
	members := c.Members()
	if len(members) < 3 {
		t.Skip("too few members")
	}
	_ = m.JoinGroup(members[0], 1)
	_ = m.JoinGroup(members[1], 1)
	mc, err := m.Run(a, 1, c.Root(), broadcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := broadcast.RunICFF(a, c.Root(), broadcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Completed || !bc.Completed {
		t.Fatalf("incomplete: %s / %s", mc, bc)
	}
	if mc.Transmissions >= bc.Transmissions {
		t.Fatalf("multicast tx %d not below broadcast %d", mc.Transmissions, bc.Transmissions)
	}
	if mc.CompletionRound > bc.ScheduleLen {
		t.Fatalf("multicast completion %d beyond broadcast schedule %d", mc.CompletionRound, bc.ScheduleLen)
	}
}

func TestMulticastFromGroupMemberSource(t *testing.T) {
	c, a := buildNet(t, 5, 100)
	m := New(c)
	members := c.Members()
	if len(members) < 2 {
		t.Skip("too few members")
	}
	src := members[0]
	_ = m.JoinGroup(src, 2)
	_ = m.JoinGroup(members[len(members)-1], 2)
	res, err := m.Run(a, 2, src, broadcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("multicast from member incomplete: %s", res)
	}
}

func TestMulticastEmptyGroup(t *testing.T) {
	c, a := buildNet(t, 6, 20)
	m := New(c)
	if _, err := m.Run(a, 5, c.Root(), broadcast.Options{}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestPlanRejectsForeignAssignment(t *testing.T) {
	c, _ := buildNet(t, 7, 20)
	other, aOther := buildNet(t, 8, 20)
	_ = other
	m := New(c)
	_ = m.JoinGroup(c.Root(), 1)
	if _, err := m.Plan(aOther, 1, c.Root(), 1); err == nil {
		t.Fatal("foreign assignment accepted")
	}
}

func TestOnMoveOutKeepsListsConsistent(t *testing.T) {
	c, _ := buildNet(t, 9, 60)
	m := New(c)
	rng := rand.New(rand.NewSource(9))
	nodes := c.Tree().Nodes()
	for i := 0; i < 20; i++ {
		_ = m.JoinGroup(nodes[rng.Intn(len(nodes))], 1+rng.Intn(3))
	}
	removed := 0
	for k := 0; k < 6 && c.Size() > 5; k++ {
		cand := c.Tree().Nodes()
		victim := cand[rng.Intn(len(cand))]
		if victim == c.Root() {
			continue
		}
		res := c.Graph().Clone()
		res.RemoveNode(victim)
		if !res.Connected() {
			continue
		}
		rec, _, err := c.MoveOut(victim)
		if err != nil {
			t.Fatal(err)
		}
		m.OnMoveOut(rec)
		if err := m.Verify(); err != nil {
			t.Fatalf("after move-out of %d: %v", victim, err)
		}
		if m.InGroup(victim, 1) || m.InGroup(victim, 2) || m.InGroup(victim, 3) {
			t.Fatal("departed node retains membership")
		}
		removed++
	}
	if removed == 0 {
		t.Skip("no removable nodes in this seed")
	}
}

func TestOnCrashPrunesMemberships(t *testing.T) {
	c, _ := buildNet(t, 15, 60)
	m := New(c)
	var dead []graph.NodeID
	for _, id := range c.Tree().Nodes() {
		if id != c.Root() && len(dead) < 2 {
			dead = append(dead, id)
		}
	}
	_ = m.JoinGroup(dead[0], 1)
	survivors := c.Tree().Nodes()
	_ = m.JoinGroup(survivors[len(survivors)-1], 1)
	rec, _, err := c.RemoveCrashed(dead)
	if err != nil {
		t.Fatal(err)
	}
	m.OnCrash(rec)
	if err := m.Verify(); err != nil {
		t.Fatalf("lists after crash: %v", err)
	}
	if m.InGroup(dead[0], 1) {
		t.Fatal("dead node retains membership")
	}
}

func TestRelayListMatchesFigure4Semantics(t *testing.T) {
	// Build a small explicit structure: root head 0, member 1, gateway 1
	// promoted by head 2, member 3 of 2.
	c := cnet.New(0, nil)
	_, _, _ = c.MoveIn(1, []graph.NodeID{0})
	_, _, _ = c.MoveIn(2, []graph.NodeID{1})
	_, _, _ = c.MoveIn(3, []graph.NodeID{2})
	m := New(c)
	_ = m.JoinGroup(3, 1)
	// Path 0 -> 1 -> 2 -> 3: all proper ancestors of 3 relay group 1.
	for _, id := range []graph.NodeID{0, 1, 2} {
		if !m.HasRelay(id, 1) {
			t.Fatalf("node %d should relay group 1", id)
		}
	}
	// Node 3 itself does not relay (no descendants).
	if m.HasRelay(3, 1) {
		t.Fatal("leaf relays its own membership")
	}
	got := m.RelayList(0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("RelayList(0) = %v", got)
	}
}

// Property: random memberships on random networks always verify, and a
// multicast from the root delivers to every group member.
func TestMulticastProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 5
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
		if err != nil {
			return false
		}
		c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
		if err != nil {
			return false
		}
		a := timeslot.New(c, timeslot.ConditionStrict)
		m := New(c)
		rng := rand.New(rand.NewSource(seed))
		nodes := c.Tree().Nodes()
		joined := 0
		for i := 0; i < n/3+1; i++ {
			if err := m.JoinGroup(nodes[rng.Intn(len(nodes))], 1); err != nil {
				return false
			}
			joined++
		}
		if joined == 0 || m.Verify() != nil {
			return false
		}
		res, err := m.Run(a, 1, c.Root(), broadcast.Options{})
		if err != nil {
			return false
		}
		return res.Completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildRecomputesRelayCounts(t *testing.T) {
	c, _ := buildNet(t, 5, 60)
	m := New(c)
	nodes := c.Tree().Nodes()
	for i, id := range nodes {
		if err := m.JoinGroup(id, 1+i%3); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}

	// Rebuild on a consistent state must be a no-op for every relay list.
	before := make(map[graph.NodeID][]int, len(nodes))
	for _, id := range nodes {
		before[id] = m.RelayList(id)
	}
	m.Rebuild()
	if err := m.Verify(); err != nil {
		t.Fatalf("after Rebuild: %v", err)
	}
	for _, id := range nodes {
		after := m.RelayList(id)
		if len(after) != len(before[id]) {
			t.Fatalf("node %d relay list changed: %v vs %v", id, before[id], after)
		}
		for i := range after {
			if after[i] != before[id][i] {
				t.Fatalf("node %d relay list changed: %v vs %v", id, before[id], after)
			}
		}
	}

	// Rebuild must prune memberships of nodes no longer in the network.
	victim := nodes[len(nodes)-1]
	res := c.Graph().Clone()
	res.RemoveNode(victim)
	if !res.Connected() {
		t.Skipf("victim %d is a cut vertex in this seed", victim)
	}
	if _, _, err := c.MoveOut(victim); err != nil {
		t.Fatal(err)
	}
	m.Rebuild()
	if m.InGroup(victim, 1) || m.InGroup(victim, 2) || m.InGroup(victim, 3) {
		t.Fatalf("departed node %d kept a membership", victim)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("after prune: %v", err)
	}
}
