// Package obs is the observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms) safe under the
// experiment harness's worker-pool parallelism, with deterministic
// snapshots, Prometheus-text and JSON exposition writers, and event
// collectors that subscribe to the radio engine's trace stream.
//
// Design constraints, in order:
//
//   - hot-path updates are single atomic operations (no locks after a
//     metric handle is obtained), so instrumenting the radio engine does
//     not perturb what it measures;
//   - Snapshot output is deterministically ordered (by metric name, then
//     canonical label string), so exposition dumps are byte-stable and
//     golden-testable;
//   - the package imports only the stdlib plus internal/radio and
//     internal/graph, and nothing in the protocol stack depends on it
//     being enabled: every instrumentation point is gated on a nil check.
//
// See docs/observability.md for the metric catalog.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bucket semantics match
// Prometheus: bucket i counts observations v <= bounds[i], with an
// implicit +Inf overflow bucket. All methods are safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // smallest i with bounds[i] >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n exponential bucket bounds: start, start*factor,
// start*factor^2, ... — the usual shape for latencies and awake counts.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Pow2Buckets returns power-of-two bucket bounds 2^lo, 2^(lo+1), ..., 2^hi
// (inclusive on both ends) — the natural shape for nanosecond timer data,
// where interesting values span many orders of magnitude and exact
// power-of-two edges make bucket membership predictable in tests.
// Arguments are clamped rather than rejected: lo below 0 becomes 0
// (sub-nanosecond bounds are meaningless for integer timers), hi below lo
// yields the single bucket 2^lo, and hi above 62 becomes 62 (the largest
// power of two exactly representable in an int64 nanosecond count).
func Pow2Buckets(lo, hi int) []float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > 62 {
		hi = 62
	}
	if hi < lo {
		hi = lo
	}
	out := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, float64(uint64(1)<<uint(e)))
	}
	return out
}

// TimerBuckets returns the standard nanosecond histogram bounds used by the
// kernel perf metrics: 2^10 ns (~1 µs) through 2^34 ns (~17 s). Anything
// under a microsecond lands in the first bucket; anything over 17 seconds
// lands in the implicit +Inf overflow bucket.
func TimerBuckets() []float64 { return Pow2Buckets(10, 34) }

// metricKind discriminates the series types in the registry.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// series is one registered (name, labels) time series.
type series struct {
	name   string
	help   string
	kind   metricKind
	labels []Label // sorted by key
	id     string  // canonical "name{k=v,...}" identity

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds metric series. Registration methods are idempotent: asking
// for an existing (name, labels) series of the same type returns the same
// handle, which is how per-run instrumentation merges across the experiment
// harness's workers. Registration takes a lock; the returned handles update
// lock-free.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// canonical returns the sorted-label identity string for a series and the
// sorted label copy. Names and label keys come from instrumentation code,
// not input, so they are not validated beyond being non-empty.
func canonical(name string, labels []Label) (string, []Label) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String(), ls
}

// lookup returns the series for (name, labels), creating it with mk when
// absent. A kind mismatch on an existing name is a programming bug in the
// instrumentation, not an input condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, mk func(s *series)) *series {
	if name == "" {
		//lint:ignore dynlint/panics an unnamed metric is an instrumentation-site bug; there is no caller that can meaningfully handle it
		panic("obs: empty metric name")
	}
	id, ls := canonical(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[id]; ok {
		if s.kind != kind {
			//lint:ignore dynlint/panics re-registering a metric name as a different type is an instrumentation-site bug; failing loud beats silently splitting the series
			panic(fmt.Sprintf("obs: metric %s already registered as %v, requested %v", id, s.kind, kind))
		}
		return s
	}
	s := &series{name: name, help: help, kind: kind, labels: ls, id: id}
	mk(s)
	r.series[id] = s
	return s
}

// Counter returns the counter for (name, labels), registering it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, counterKind, labels, func(s *series) {
		s.counter = &Counter{}
	}).counter
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, gaugeKind, labels, func(s *series) {
		s.gauge = &Gauge{}
	}).gauge
}

// Histogram returns the histogram for (name, labels), registering it on
// first use with the given ascending bucket upper bounds (+Inf is implicit;
// buckets of an already-registered histogram are kept).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.lookup(name, help, histogramKind, labels, func(s *series) {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}).hist
}

// NumSeries returns the number of registered series.
func (r *Registry) NumSeries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.series)
}
