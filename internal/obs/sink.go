package obs

import (
	"encoding/json"
	"io"
	"sync"

	"dynsens/internal/radio"
)

// EventRecord is the JSONL form of one radio event. Message fields are
// only populated for kinds that carry a message (tx, rx, loss).
type EventRecord struct {
	// ESeq is the engine's monotonic event sequence number; consumers use
	// it to detect gaps and order events across merged streams.
	ESeq    uint64 `json:"eseq"`
	Round   int    `json:"round"`
	Kind    string `json:"kind"`
	Node    int    `json:"node"`
	Peer    *int   `json:"peer,omitempty"`
	Channel int    `json:"ch"`
	Seq     int    `json:"seq,omitempty"`
	Src     int    `json:"src,omitempty"`
	Slot    int    `json:"slot,omitempty"`
	Depth   int    `json:"depth,omitempty"`
	Group   int    `json:"group,omitempty"`
}

// EventSink writes radio events as one JSON object per line — the
// structured counterpart of trace.Recorder's human timeline, meant for
// offline analysis pipelines. Events arrive in the engine's deterministic
// order, so sink output is byte-stable per seed. The sink is safe for
// concurrent hooks (distinct engines may share one sink) and latches the
// first write error instead of failing mid-run.
type EventSink struct {
	mu     sync.Mutex
	w      io.Writer
	events int
	err    error
}

// NewEventSink creates a sink writing JSONL to w.
func NewEventSink(w io.Writer) *EventSink {
	return &EventSink{w: w}
}

// Hook returns the callback to install with radio.Engine.SetTrace or
// broadcast.Options.Trace.
func (s *EventSink) Hook() func(radio.Event) {
	return func(ev radio.Event) {
		rec := EventRecord{
			ESeq:    ev.Seq,
			Round:   ev.Round,
			Kind:    ev.Kind.String(),
			Node:    int(ev.Node),
			Channel: int(ev.Channel),
		}
		switch ev.Kind {
		case radio.EvDeliver, radio.EvLinkFail, radio.EvLoss:
			p := int(ev.Peer)
			rec.Peer = &p
		}
		switch ev.Kind {
		case radio.EvTransmit, radio.EvDeliver, radio.EvLoss:
			rec.Seq = ev.Msg.Seq
			rec.Src = int(ev.Msg.Src)
			rec.Slot = ev.Msg.Slot
			rec.Depth = ev.Msg.Depth
			rec.Group = ev.Msg.Group
		}
		b, err := json.Marshal(rec)
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.err != nil {
			return
		}
		if err != nil {
			s.err = err
			return
		}
		if _, err := s.w.Write(append(b, '\n')); err != nil {
			s.err = err
			return
		}
		s.events++
	}
}

// BatchHook returns the batched callback for radio.Engine.SetTraceBatch:
// one shard buffer is marshaled into a single buffer and written under one
// lock acquisition and one Write call, instead of one of each per event.
// Output bytes are identical to feeding Hook every event.
func (s *EventSink) BatchHook() func([]radio.Event) {
	var buf []byte
	return func(evs []radio.Event) {
		if len(evs) == 0 {
			return
		}
		buf = buf[:0]
		var mErr error
		for i := range evs {
			ev := &evs[i]
			rec := EventRecord{
				ESeq:    ev.Seq,
				Round:   ev.Round,
				Kind:    ev.Kind.String(),
				Node:    int(ev.Node),
				Channel: int(ev.Channel),
			}
			switch ev.Kind {
			case radio.EvDeliver, radio.EvLinkFail, radio.EvLoss:
				p := int(ev.Peer)
				rec.Peer = &p
			}
			switch ev.Kind {
			case radio.EvTransmit, radio.EvDeliver, radio.EvLoss:
				rec.Seq = ev.Msg.Seq
				rec.Src = int(ev.Msg.Src)
				rec.Slot = ev.Msg.Slot
				rec.Depth = ev.Msg.Depth
				rec.Group = ev.Msg.Group
			}
			b, err := json.Marshal(rec)
			if err != nil {
				mErr = err
				break
			}
			buf = append(buf, b...)
			buf = append(buf, '\n')
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.err != nil {
			return
		}
		if mErr != nil {
			s.err = mErr
			return
		}
		if _, err := s.w.Write(buf); err != nil {
			s.err = err
			return
		}
		s.events += len(evs)
	}
}

// Events returns the number of events written so far.
func (s *EventSink) Events() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Err returns the first write or encode error, if any.
func (s *EventSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
