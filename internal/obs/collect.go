package obs

import (
	"dynsens/internal/radio"
)

// Metric names exported by the radio collector. They are variables of the
// package, not magic strings at call sites, so the reconciliation tests and
// the docs/observability.md catalog reference one definition.
const (
	// MetricRadioTransmissions counts transmit actions.
	MetricRadioTransmissions = "dynsens_radio_transmissions_total"
	// MetricRadioDeliveries counts successful receptions.
	MetricRadioDeliveries = "dynsens_radio_deliveries_total"
	// MetricRadioCollisions counts (listener, round) collision pairs.
	MetricRadioCollisions = "dynsens_radio_collisions_total"
	// MetricRadioLosses counts frames dropped by the loss model.
	MetricRadioLosses = "dynsens_radio_losses_total"
	// MetricRadioNodeFailures counts injected node deaths.
	MetricRadioNodeFailures = "dynsens_radio_node_failures_total"
	// MetricRadioLinkFailures counts injected link cuts.
	MetricRadioLinkFailures = "dynsens_radio_link_failures_total"
	// MetricRadioAwakeRounds is the per-node awake-round histogram — the
	// paper's energy metric, and the distribution that makes the DFO
	// awake-time gap of [19] visible per node rather than as a mean.
	MetricRadioAwakeRounds = "dynsens_radio_awake_rounds"
	// MetricRadioRounds is the histogram of executed rounds per run.
	MetricRadioRounds = "dynsens_radio_rounds"
)

// AwakeBuckets are the awake-round histogram bounds: power-of-two rounds
// up to 4096, covering everything from a one-slot member to a DFO node
// awake for a whole tour on the largest sweeps.
func AwakeBuckets() []float64 { return ExpBuckets(1, 2, 13) }

// RoundBuckets are the round-latency histogram bounds used for schedule
// and completion metrics.
func RoundBuckets() []float64 { return ExpBuckets(1, 2, 13) }

// RadioCollector counts radio-engine events into a registry. Install its
// Hook with radio.Engine.SetTrace (or broadcast.Options.Trace) and call
// ObserveResult once the run finishes. The same collector labels (for
// example protocol="ICFF") aggregate across repeated runs. The engine
// calls both hooks from a single goroutine (its serial stitch steps)
// even when running with multiple shard workers, so the counters need no
// coordination beyond the registry's own atomics and come out identical
// at any worker count.
type RadioCollector struct {
	transmissions *Counter
	deliveries    *Counter
	collisions    *Counter
	losses        *Counter
	nodeFailures  *Counter
	linkFailures  *Counter
	awake         *Histogram
	rounds        *Histogram
}

// NewRadioCollector registers the radio metric family under the given
// labels and returns the collector feeding it.
func NewRadioCollector(reg *Registry, labels ...Label) *RadioCollector {
	return &RadioCollector{
		transmissions: reg.Counter(MetricRadioTransmissions, "Transmit actions executed by the radio engine.", labels...),
		deliveries:    reg.Counter(MetricRadioDeliveries, "Successful single-transmitter receptions.", labels...),
		collisions:    reg.Counter(MetricRadioCollisions, "Listener-rounds that heard two or more transmitters.", labels...),
		losses:        reg.Counter(MetricRadioLosses, "Frames dropped by the loss model.", labels...),
		nodeFailures:  reg.Counter(MetricRadioNodeFailures, "Injected node deaths.", labels...),
		linkFailures:  reg.Counter(MetricRadioLinkFailures, "Injected link cuts.", labels...),
		awake:         reg.Histogram(MetricRadioAwakeRounds, "Per-node awake rounds (listen + transmit) per run.", AwakeBuckets(), labels...),
		rounds:        reg.Histogram(MetricRadioRounds, "Rounds executed per engine run.", RoundBuckets(), labels...),
	}
}

// Hook returns the trace callback that feeds the event counters.
func (c *RadioCollector) Hook() func(radio.Event) {
	return func(ev radio.Event) {
		switch ev.Kind {
		case radio.EvTransmit:
			c.transmissions.Inc()
		case radio.EvDeliver:
			c.deliveries.Inc()
		case radio.EvCollision:
			c.collisions.Inc()
		case radio.EvLoss:
			c.losses.Inc()
		case radio.EvNodeFail:
			c.nodeFailures.Inc()
		case radio.EvLinkFail:
			c.linkFailures.Inc()
		}
	}
}

// BatchHook returns the batched trace callback for
// radio.Engine.SetTraceBatch: it tallies one shard buffer locally and then
// touches each counter's atomic once per batch instead of once per event.
// Totals are identical to feeding Hook every event.
func (c *RadioCollector) BatchHook() func([]radio.Event) {
	return func(evs []radio.Event) {
		var tx, del, col, loss, nf, lf int64
		for i := range evs {
			switch evs[i].Kind {
			case radio.EvTransmit:
				tx++
			case radio.EvDeliver:
				del++
			case radio.EvCollision:
				col++
			case radio.EvLoss:
				loss++
			case radio.EvNodeFail:
				nf++
			case radio.EvLinkFail:
				lf++
			}
		}
		if tx > 0 {
			c.transmissions.Add(tx)
		}
		if del > 0 {
			c.deliveries.Add(del)
		}
		if col > 0 {
			c.collisions.Add(col)
		}
		if loss > 0 {
			c.losses.Add(loss)
		}
		if nf > 0 {
			c.nodeFailures.Add(nf)
		}
		if lf > 0 {
			c.linkFailures.Add(lf)
		}
	}
}

// ObserveResult records the run-level distributions: one awake-round
// observation per node and the executed round count. Node order does not
// affect the histogram, so iterating the result map directly is safe.
func (c *RadioCollector) ObserveResult(res radio.Result) {
	for _, a := range res.Awake {
		c.awake.Observe(float64(a))
	}
	c.rounds.Observe(float64(res.Rounds))
}

// ChainHooks composes trace callbacks left to right, skipping nils, so a
// metrics collector can ride alongside a recorder or JSONL sink on the
// engine's single trace slot.
func ChainHooks(hooks ...func(radio.Event)) func(radio.Event) {
	var live []func(radio.Event)
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev radio.Event) {
		for _, h := range live {
			h(ev)
		}
	}
}

// ChainBatchHooks is ChainHooks for batched callbacks: it composes
// func([]radio.Event) hooks left to right, skipping nils. Consumers that
// retain events must copy them — the engine reuses the batch slice.
func ChainBatchHooks(hooks ...func([]radio.Event)) func([]radio.Event) {
	var live []func([]radio.Event)
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(evs []radio.Event) {
		for _, h := range live {
			h(evs)
		}
	}
}
