package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/obs"
	"dynsens/internal/timeslot"
	"dynsens/internal/workload"
)

// build constructs an assigned paper-style network (external package: this
// test reconciles obs against the protocol stack, which internal obs tests
// cannot import without a cycle).
func build(t *testing.T, seed int64, n int) *timeslot.Assignment {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return timeslot.New(c, timeslot.ConditionStrict)
}

// TestCollectorReconcilesWithMetrics runs one lossy ICFF broadcast with the
// registry attached and checks every radio counter against the engine
// totals the run itself reported.
func TestCollectorReconcilesWithMetrics(t *testing.T) {
	a := build(t, 11, 80)
	reg := obs.NewRegistry()
	m, err := broadcast.RunICFF(a, a.Net().Root(), broadcast.Options{
		Obs:      reg,
		LossRate: 0.1,
		LossSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	lbl := obs.L("protocol", "ICFF")

	mustCounter := func(name string) int64 {
		t.Helper()
		v, ok := snap.CounterValue(name, lbl)
		if !ok {
			t.Fatalf("counter %s missing", name)
		}
		return v
	}
	if got := mustCounter(obs.MetricRadioTransmissions); got != int64(m.Transmissions) {
		t.Errorf("transmissions: registry %d vs metrics %d", got, m.Transmissions)
	}
	if got := mustCounter(obs.MetricRadioCollisions); got != int64(m.Collisions) {
		t.Errorf("collisions: registry %d vs metrics %d", got, m.Collisions)
	}
	// Deliveries and awake totals reconcile against the per-node maps.
	var listens int64
	for _, id := range a.Net().Tree().Nodes() {
		listens += int64(m.Listens[id])
	}
	hp, ok := snap.HistogramPoint(obs.MetricRadioAwakeRounds, lbl)
	if !ok {
		t.Fatal("awake histogram missing")
	}
	if hp.Count != int64(len(m.Awake)) {
		t.Errorf("awake observations %d vs %d engine nodes", hp.Count, len(m.Awake))
	}
	var awakeSum int64
	for _, v := range m.Awake {
		awakeSum += int64(v)
	}
	if int64(hp.Sum) != awakeSum {
		t.Errorf("awake sum %v vs %d", hp.Sum, awakeSum)
	}
	// Broadcast-level series.
	if got, _ := snap.CounterValue(broadcast.MetricBroadcastDelivered, lbl); got != int64(m.Received) {
		t.Errorf("delivered: registry %d vs metrics %d", got, m.Received)
	}
	if got, _ := snap.CounterValue(broadcast.MetricBroadcastAudience, lbl); got != int64(m.Audience) {
		t.Errorf("audience: registry %d vs metrics %d", got, m.Audience)
	}
}

// TestEventSinkJSONLMatchesCounters streams one run into the sink and
// cross-checks the JSONL against the same run's registry counters.
func TestEventSinkJSONLMatchesCounters(t *testing.T) {
	a := build(t, 4, 50)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	sink := obs.NewEventSink(&buf)
	_, err := broadcast.RunICFF(a, a.Net().Root(), broadcast.Options{
		Obs:      reg,
		Trace:    sink.Hook(),
		LossRate: 0.05,
		LossSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	kinds := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec obs.EventRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		kinds[rec.Kind]++
	}
	if int64(sink.Events()) != int64(strings.Count(buf.String(), "\n")) {
		t.Errorf("sink reports %d events, file has %d lines", sink.Events(), strings.Count(buf.String(), "\n"))
	}

	snap := reg.Snapshot()
	lbl := obs.L("protocol", "ICFF")
	for name, kind := range map[string]string{
		obs.MetricRadioTransmissions: "tx",
		obs.MetricRadioDeliveries:    "rx",
		obs.MetricRadioCollisions:    "collision",
		obs.MetricRadioLosses:        "loss",
	} {
		want, ok := snap.CounterValue(name, lbl)
		if !ok {
			t.Fatalf("counter %s missing", name)
		}
		if kinds[kind] != want {
			t.Errorf("%s: sink saw %d %q events, registry %d", name, kinds[kind], kind, want)
		}
	}
}
