package obs

import "sort"

// CounterPoint is one counter series in a snapshot.
type CounterPoint struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugePoint is one gauge series in a snapshot.
type GaugePoint struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// BucketCount is one cumulative histogram bucket: the count of
// observations <= UpperBound.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramPoint is one histogram series in a snapshot. Buckets are
// cumulative in Prometheus style and do not include the +Inf bucket, whose
// cumulative count equals Count.
type HistogramPoint struct {
	Name    string        `json:"name"`
	Help    string        `json:"help,omitempty"`
	Labels  []Label       `json:"labels,omitempty"`
	Buckets []BucketCount `json:"buckets"`
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry, with every slice sorted
// by (name, canonical labels) so two snapshots of equal state are
// deep-equal and exposition output is byte-stable.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot captures the registry. It is safe to call concurrently with
// updates; the result is only guaranteed self-consistent (and hence
// deterministic for a fixed workload) once writers have quiesced.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	var snap Snapshot
	for _, s := range all {
		switch s.kind {
		case counterKind:
			snap.Counters = append(snap.Counters, CounterPoint{
				Name: s.name, Help: s.help, Labels: s.labels, Value: s.counter.Value(),
			})
		case gaugeKind:
			snap.Gauges = append(snap.Gauges, GaugePoint{
				Name: s.name, Help: s.help, Labels: s.labels, Value: s.gauge.Value(),
			})
		case histogramKind:
			h := s.hist
			pt := HistogramPoint{Name: s.name, Help: s.help, Labels: s.labels}
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				pt.Buckets = append(pt.Buckets, BucketCount{UpperBound: b, Count: cum})
			}
			pt.Count = h.Count()
			pt.Sum = h.Sum()
			snap.Histograms = append(snap.Histograms, pt)
		}
	}
	return snap
}

// CounterValue returns the snapshot value of the counter with the given
// name and labels (ok=false when absent) — the lookup tests use to
// reconcile exposition output against protocol metrics.
func (s Snapshot) CounterValue(name string, labels ...Label) (int64, bool) {
	id, _ := canonical(name, labels)
	for _, c := range s.Counters {
		if cid, _ := canonical(c.Name, c.Labels); cid == id {
			return c.Value, true
		}
	}
	return 0, false
}

// GaugeValue returns the snapshot value of the gauge with the given name
// and labels (ok=false when absent).
func (s Snapshot) GaugeValue(name string, labels ...Label) (int64, bool) {
	id, _ := canonical(name, labels)
	for _, g := range s.Gauges {
		if gid, _ := canonical(g.Name, g.Labels); gid == id {
			return g.Value, true
		}
	}
	return 0, false
}

// HistogramPoint returns the snapshot of the histogram with the given name
// and labels (ok=false when absent).
func (s Snapshot) HistogramPoint(name string, labels ...Label) (HistogramPoint, bool) {
	id, _ := canonical(name, labels)
	for _, h := range s.Histograms {
		if hid, _ := canonical(h.Name, h.Labels); hid == id {
			return h, true
		}
	}
	return HistogramPoint{}, false
}
