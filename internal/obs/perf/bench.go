package perf

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// BenchResult is one benchmark line of a BENCH_*.json file (the schema
// scripts/bench.sh emits).
type BenchResult struct {
	// Name is the full benchmark path, with go test's trailing
	// "-GOMAXPROCS" suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the measured nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when the run used -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
}

// BenchFile is a parsed BENCH_*.json (or raw `go test -bench` output).
// The host honesty fields — CPUs, GOMAXPROCS, LoadAvg — qualify every
// ratio in the file: on a cpus==1 host a workers=N/workers=1 ratio is
// coordination overhead, not a speedup, and the renderers below refuse to
// label it one.
type BenchFile struct {
	// GeneratedBy records the producing tool (scripts/bench.sh or
	// nettool perf import).
	GeneratedBy string `json:"generated_by,omitempty"`
	// Go is the toolchain version string.
	Go string `json:"go,omitempty"`
	// CPU is the benchmark host's CPU model line.
	CPU string `json:"cpu,omitempty"`
	// CPUs is the host's online CPU count; 0 means unrecorded. Ratio
	// renderers only use the word "speedup" when CPUs > 1.
	CPUs int `json:"cpus,omitempty"`
	// GOMAXPROCS is the pinned scheduler width of the run; 0 = unrecorded.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// LoadAvg is the host's 1-minute load average when the run started;
	// 0 = unrecorded (or a genuinely idle host).
	LoadAvg float64 `json:"loadavg,omitempty"`
	// Benchtime echoes the -benchtime used.
	Benchtime string `json:"benchtime,omitempty"`
	// Benchmarks are the individual results.
	Benchmarks []BenchResult `json:"benchmarks"`
	// Speedups are the derived ratios bench.sh computes (old/new ns) —
	// despite the JSON key's historical name, they are only speedups on a
	// multi-CPU host.
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

// Result returns the named benchmark's result, if present.
func (f *BenchFile) Result(name string) (BenchResult, bool) {
	for _, b := range f.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return BenchResult{}, false
}

// benchLine matches one `go test -bench` result line: name, iterations,
// ns/op, then optional -benchmem columns.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// gomaxprocsSuffix is go test's "-N" name suffix when GOMAXPROCS != 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseGoBench parses raw `go test -bench` output. Host fields beyond the
// cpu: line stay zero — raw output does not carry them; `nettool perf
// import` fills them from the running host.
func ParseGoBench(r io.Reader) (BenchFile, error) {
	var f BenchFile
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			f.CPU = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var b BenchResult
		b.Name = gomaxprocsSuffix.ReplaceAllString(m[1], "")
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return f, fmt.Errorf("perf: reading bench output: %w", err)
	}
	if len(f.Benchmarks) == 0 {
		return f, fmt.Errorf("perf: no benchmark result lines found")
	}
	return f, nil
}

// LoadBenchFile reads path as either a BENCH_*.json file or raw
// `go test -bench` output (sniffed by the first non-space byte).
func LoadBenchFile(path string) (BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, fmt.Errorf("perf: %w", err)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var f BenchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return BenchFile{}, fmt.Errorf("perf: parsing %s: %w", path, err)
		}
		return f, nil
	}
	f, err := ParseGoBench(bytes.NewReader(data))
	if err != nil {
		return BenchFile{}, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	return f, nil
}

// DiffRow is one benchmark present in both sides of a diff.
type DiffRow struct {
	// Name is the benchmark path.
	Name string
	// OldNs and NewNs are the two ns/op values.
	OldNs, NewNs float64
	// DeltaPct is the ns/op change in percent: positive = regression
	// (new slower than old).
	DeltaPct float64
}

// BenchDiff is the outcome of comparing two bench files.
type BenchDiff struct {
	// Rows covers benchmarks present on both sides, in old-file order.
	Rows []DiffRow
	// OnlyOld and OnlyNew list benchmarks present on one side only.
	OnlyOld, OnlyNew []string
}

// MaxDeltaPct returns the largest (worst) regression percentage across
// rows, or 0 when there are no rows.
func (d BenchDiff) MaxDeltaPct() float64 {
	worst := 0.0
	for _, r := range d.Rows {
		if r.DeltaPct > worst {
			worst = r.DeltaPct
		}
	}
	return worst
}

// DiffBench compares two bench files by benchmark name.
func DiffBench(old, new BenchFile) BenchDiff {
	var d BenchDiff
	newByName := make(map[string]BenchResult, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		newByName[b.Name] = b
	}
	seen := make(map[string]bool, len(old.Benchmarks))
	for _, ob := range old.Benchmarks {
		seen[ob.Name] = true
		nb, ok := newByName[ob.Name]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, ob.Name)
			continue
		}
		row := DiffRow{Name: ob.Name, OldNs: ob.NsPerOp, NewNs: nb.NsPerOp}
		if ob.NsPerOp > 0 {
			row.DeltaPct = 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		d.Rows = append(d.Rows, row)
	}
	for _, nb := range new.Benchmarks {
		if !seen[nb.Name] {
			d.OnlyNew = append(d.OnlyNew, nb.Name)
		}
	}
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d
}

// WriteDiff renders the comparison of two bench files and returns whether
// any benchmark regressed past failPct. Rows regressed past warnPct are
// marked WARN, past failPct FAIL; improvements and small noise are ok.
// When either side ran on a cpus==1 host, a note flags that worker-count
// ratios in the underlying files are coordination overhead — this
// renderer never calls anything a speedup.
func WriteDiff(w io.Writer, old, new BenchFile, warnPct, failPct float64) (bool, error) {
	d := DiffBench(old, new)
	failed := false
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, "BENCHMARK\tOLD ns/op\tNEW ns/op\tDELTA\tSTATUS"); err != nil {
		return false, err
	}
	for _, r := range d.Rows {
		status := "ok"
		switch {
		case r.DeltaPct > failPct:
			status = "FAIL"
			failed = true
		case r.DeltaPct > warnPct:
			status = "WARN"
		}
		if _, err := fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\n",
			r.Name, r.OldNs, r.NewNs, r.DeltaPct, status); err != nil {
			return false, err
		}
	}
	if err := tw.Flush(); err != nil {
		return false, err
	}
	for _, n := range d.OnlyOld {
		if _, err := fmt.Fprintf(w, "only in old: %s\n", n); err != nil {
			return false, err
		}
	}
	for _, n := range d.OnlyNew {
		if _, err := fmt.Fprintf(w, "only in new: %s\n", n); err != nil {
			return false, err
		}
	}
	if old.CPUs == 1 || new.CPUs == 1 {
		if _, err := fmt.Fprintln(w, "note: cpus=1 host — worker-count ratios in these files measure coordination overhead, not parallel speedup"); err != nil {
			return false, err
		}
	}
	if _, err := fmt.Fprintf(w, "worst regression: %+.1f%% (warn >%.0f%%, fail >%.0f%%)\n",
		d.MaxDeltaPct(), warnPct, failPct); err != nil {
		return false, err
	}
	return failed, nil
}

// WriteReport renders one bench file: host metadata, the benchmark table,
// and the derived ratio section. The ratio section obeys the honesty
// rule: on a multi-CPU host ratios print as "Nx speedup"; on a cpus==1
// host (or when the CPU count went unrecorded) the word speedup never
// appears — the same numbers print as overhead ratios, because pinning
// GOMAXPROCS>1 onto one CPU can only measure coordination cost.
func WriteReport(w io.Writer, f BenchFile) error {
	if _, err := fmt.Fprintf(w, "source: %s  go: %s\ncpu: %s (cpus=%s, gomaxprocs=%s, loadavg=%s)  benchtime: %s\n",
		orUnknown(f.GeneratedBy), orUnknown(f.Go), orUnknown(f.CPU),
		intOrUnknown(f.CPUs), intOrUnknown(f.GOMAXPROCS), loadOrUnknown(f.LoadAvg), orUnknown(f.Benchtime)); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, "BENCHMARK\tITERS\tns/op\tB/op\tallocs/op"); err != nil {
		return err
	}
	for _, b := range f.Benchmarks {
		if _, err := fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%d\n",
			b.Name, b.Iterations, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(f.Speedups) == 0 {
		return nil
	}
	keys := make([]string, 0, len(f.Speedups))
	for k := range f.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if f.CPUs > 1 {
		if _, err := fmt.Fprintln(w, "speedups:"); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "  %s: %.2fx speedup\n", k, f.Speedups[k]); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := fmt.Fprintln(w, "ratios (cpus<=1 or unrecorded — read as coordination overhead, not speedup):"); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "  %s: %.2f overhead ratio\n", k, f.Speedups[k]); err != nil {
			return err
		}
	}
	return nil
}

// orUnknown substitutes "unknown" for empty metadata strings.
func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// intOrUnknown renders a host-metadata int, with 0 meaning unrecorded.
func intOrUnknown(v int) string {
	if v == 0 {
		return "unknown"
	}
	return strconv.Itoa(v)
}

// loadOrUnknown renders a load average, with 0 meaning unrecorded/idle.
func loadOrUnknown(v float64) string {
	if v == 0 {
		return "unknown"
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
