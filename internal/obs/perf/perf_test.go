package perf

import (
	"strings"
	"testing"
	"time"

	"dynsens/internal/obs"
	"dynsens/internal/radio"
)

// testSnapshot is a hand-built kernel snapshot with easily checkable
// derived values: imbalance 1.5x (max 300 over mean 200), 3 events/round.
func testSnapshot() radio.PerfSnapshot {
	return radio.PerfSnapshot{
		Runs:   2,
		Rounds: 10,
		Events: 30,
		WallNs: 1000,
		Phases: []radio.PhaseTime{
			{Name: "act", Ns: 400},
			{Name: "resolve", Ns: 250},
			{Name: "deliver", Ns: 250},
			{Name: "seq-stitch", Ns: 100},
			{Name: "barrier-wait", Ns: 50},
		},
		ShardBusyNs: []int64{300, 100},
	}
}

func TestPublish(t *testing.T) {
	reg := obs.NewRegistry()
	Publish(reg, testSnapshot())
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dynsens_kernel_runs 2",
		"dynsens_kernel_rounds_total 10",
		"dynsens_kernel_events_total 30",
		"dynsens_kernel_wall_ns_total 1000",
		`dynsens_kernel_phase_ns_total{phase="act"} 400`,
		`dynsens_kernel_phase_ns_total{phase="barrier-wait"} 50`,
		"dynsens_kernel_load_imbalance_permille 1500",
		"dynsens_kernel_events_per_round_permille 3000",
		"dynsens_kernel_shard_busy_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPublishReplaces checks the Set semantics: re-publishing a later
// snapshot of the same collector replaces gauge values instead of
// double-counting them.
func TestPublishReplaces(t *testing.T) {
	reg := obs.NewRegistry()
	s := testSnapshot()
	Publish(reg, s)
	s.Rounds = 25
	Publish(reg, s)
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dynsens_kernel_rounds_total 25") {
		t.Errorf("re-publish did not replace the gauge:\n%s", sb.String())
	}
}

func TestWriteSummary(t *testing.T) {
	var sb strings.Builder
	if err := WriteSummary(&sb, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"2 run(s), 10 rounds, 30 events (3.0 events/round)",
		"act", "resolve", "deliver", "seq-stitch",
		"barrier-wait",
		"(subset of the three phase walls)",
		"40.0%", // act 400 of 1000
		"total wall",
		"1.50x", // imbalance: max 300 / mean 200
		"max/mean shard busy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestWriteSummaryEmpty pins the zero-value snapshot path: no shards, no
// wall time, and the share math must not divide by zero.
func TestWriteSummaryEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteSummary(&sb, radio.PerfSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 run(s)") {
		t.Errorf("empty summary:\n%s", sb.String())
	}
}

func TestFmtNs(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{999, "999ns"},
		{1500, "1.5µs"},
		{2500000, "2.50ms"},
		{3210000000, "3.210s"},
	}
	for _, tc := range cases {
		if got := fmtNs(tc.ns); got != tc.want {
			t.Errorf("fmtNs(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestSamplerSample(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(reg)
	s.Sample()
	if got := s.Samples(); got != 1 {
		t.Fatalf("Samples() = %d, want 1", got)
	}
	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"dynsens_runtime_heap_alloc_bytes",
		"dynsens_runtime_heap_sys_bytes",
		"dynsens_runtime_goroutines",
		"dynsens_runtime_gc_cycles_total",
		"dynsens_runtime_gc_pause_ns_total",
		"dynsens_runtime_gc_pause_ns_bucket",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
	// A live process always has a heap and at least this goroutine.
	if strings.Contains(out, "dynsens_runtime_heap_alloc_bytes 0\n") {
		t.Error("heap_alloc sampled as 0")
	}
	if strings.Contains(out, "dynsens_runtime_goroutines 0\n") {
		t.Error("goroutines sampled as 0")
	}
}

// TestSamplerStartStop checks the lifecycle contract without depending on
// ticker timing: Start is idempotent, Stop takes a final sample and waits
// for the loop to exit, and a second Stop (or one without Start) is a
// no-op.
func TestSamplerStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(reg)
	s.Stop() // never started: must not panic or sample
	if got := s.Samples(); got != 0 {
		t.Fatalf("Stop without Start took %d samples", got)
	}
	s.Start(time.Hour) // interval long enough that only Stop's final sample fires
	s.Start(time.Hour) // second Start is a no-op
	s.Stop()
	if got := s.Samples(); got != 1 {
		t.Fatalf("Samples() after Start/Stop = %d, want 1 (Stop's final sample)", got)
	}
	s.Stop() // idempotent
	if got := s.Samples(); got != 1 {
		t.Fatalf("second Stop changed sample count to %d", got)
	}
	// The sampler can be restarted after a Stop.
	s.Start(time.Hour)
	s.Stop()
	if got := s.Samples(); got != 2 {
		t.Fatalf("Samples() after restart = %d, want 2", got)
	}
}
