package perf

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// rawBench is representative `go test -bench` output: a cpu: line, names
// carrying go test's "-N" GOMAXPROCS suffix, -benchmem columns on some
// lines but not others, and non-result noise that must be skipped.
const rawBench = `goos: linux
goarch: amd64
pkg: dynsens/internal/radio
cpu: Intel(R) Xeon(R) CPU
BenchmarkEngineRun/n=2000/sparse/workers=1-4         	      10	  52000000 ns/op	 1200000 B/op	    3000 allocs/op
BenchmarkEngineRun/n=2000/sparse/workers=4-4         	      10	  61000000 ns/op
BenchmarkSeqStitch-4                                 	  100000	      1200 ns/op	      64 B/op	       2 allocs/op
PASS
ok  	dynsens/internal/radio	3.1s
`

func TestParseGoBench(t *testing.T) {
	f, err := ParseGoBench(strings.NewReader(rawBench))
	if err != nil {
		t.Fatal(err)
	}
	if f.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("CPU = %q", f.CPU)
	}
	if f.CPUs != 0 || f.GOMAXPROCS != 0 || f.LoadAvg != 0 {
		t.Errorf("raw output must leave host fields unrecorded: cpus=%d gomaxprocs=%d loadavg=%v",
			f.CPUs, f.GOMAXPROCS, f.LoadAvg)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	// The "-4" GOMAXPROCS suffix must be stripped so diffs line up across
	// hosts pinned to different widths.
	b, ok := f.Result("BenchmarkEngineRun/n=2000/sparse/workers=1")
	if !ok {
		t.Fatalf("workers=1 benchmark missing (names: %v)", f.Benchmarks)
	}
	if b.Iterations != 10 || b.NsPerOp != 52000000 || b.BytesPerOp != 1200000 || b.AllocsPerOp != 3000 {
		t.Errorf("workers=1 parsed as %+v", b)
	}
	b, ok = f.Result("BenchmarkEngineRun/n=2000/sparse/workers=4")
	if !ok || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("workers=4 (no -benchmem columns) parsed as %+v ok=%v", b, ok)
	}
	if _, ok := f.Result("BenchmarkSeqStitch"); !ok {
		t.Error("BenchmarkSeqStitch-4 suffix not stripped")
	}
}

func TestParseGoBenchEmpty(t *testing.T) {
	_, err := ParseGoBench(strings.NewReader("PASS\nok pkg 0.1s\n"))
	if err == nil || !strings.Contains(err.Error(), "no benchmark result lines") {
		t.Fatalf("err = %v, want no-result-lines error", err)
	}
}

func TestLoadBenchFileSniffsFormat(t *testing.T) {
	dir := t.TempDir()
	rawPath := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(rawPath, []byte(rawBench), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "bench.json")
	const jsonFile = `{
  "generated_by": "scripts/bench.sh",
  "cpus": 1,
  "gomaxprocs": 4,
  "loadavg": 0.25,
  "benchmarks": [
    {"name": "BenchmarkEngineRun/n=2000/sparse/workers=1", "iterations": 10, "ns_per_op": 50000000}
  ],
  "speedups": {"n_2000_sparse_w4_vs_w1": 0.85}
}`
	if err := os.WriteFile(jsonPath, []byte(jsonFile), 0o644); err != nil {
		t.Fatal(err)
	}

	raw, err := LoadBenchFile(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Benchmarks) != 3 {
		t.Errorf("raw file: %d benchmarks, want 3", len(raw.Benchmarks))
	}
	j, err := LoadBenchFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if j.GeneratedBy != "scripts/bench.sh" || j.CPUs != 1 || j.GOMAXPROCS != 4 || j.LoadAvg != 0.25 {
		t.Errorf("json metadata round-trip: %+v", j)
	}
	if v := j.Speedups["n_2000_sparse_w4_vs_w1"]; v != 0.85 {
		t.Errorf("speedups[n_2000_sparse_w4_vs_w1] = %v", v)
	}
	if _, err := LoadBenchFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
}

// bf builds a one-benchmark file for the diff-math tests.
func bf(cpus int, name string, ns float64) BenchFile {
	return BenchFile{
		CPUs:       cpus,
		Benchmarks: []BenchResult{{Name: name, Iterations: 1, NsPerOp: ns}},
	}
}

func TestDiffBenchMath(t *testing.T) {
	old := BenchFile{Benchmarks: []BenchResult{
		{Name: "A", NsPerOp: 100},
		{Name: "B", NsPerOp: 200},
		{Name: "Gone", NsPerOp: 10},
		{Name: "Zero", NsPerOp: 0},
	}}
	new := BenchFile{Benchmarks: []BenchResult{
		{Name: "A", NsPerOp: 150}, // +50% regression
		{Name: "B", NsPerOp: 160}, // -20% improvement
		{Name: "Zero", NsPerOp: 5},
		{Name: "Added", NsPerOp: 30},
	}}
	d := DiffBench(old, new)
	if len(d.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(d.Rows))
	}
	if r := d.Rows[0]; r.Name != "A" || r.DeltaPct != 50 {
		t.Errorf("row A = %+v, want +50%%", r)
	}
	if r := d.Rows[1]; r.Name != "B" || r.DeltaPct != -20 {
		t.Errorf("row B = %+v, want -20%%", r)
	}
	// Old ns/op of zero cannot yield a finite percentage; the row stays at 0.
	if r := d.Rows[2]; r.Name != "Zero" || r.DeltaPct != 0 {
		t.Errorf("row Zero = %+v, want 0%% (guarded division)", r)
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "Gone" {
		t.Errorf("OnlyOld = %v", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "Added" {
		t.Errorf("OnlyNew = %v", d.OnlyNew)
	}
	if got := d.MaxDeltaPct(); got != 50 {
		t.Errorf("MaxDeltaPct = %v, want 50", got)
	}
	if got := (BenchDiff{}).MaxDeltaPct(); got != 0 {
		t.Errorf("empty MaxDeltaPct = %v, want 0", got)
	}
}

// speedupClaim matches an affirmative "<number>x speedup" claim. The
// honesty rule allows the *word* in a negation ("not parallel speedup") but
// never as a claim about a ratio.
var speedupClaim = regexp.MustCompile(`(?i)[0-9.]+x\s+speedup`)

func TestWriteDiffThresholds(t *testing.T) {
	cases := []struct {
		name       string
		oldNs      float64
		newNs      float64
		cpus       int
		wantFailed bool
		wantStatus string
		wantNote   bool // cpus=1 honesty note present
	}{
		{name: "within noise", oldNs: 100, newNs: 105, cpus: 4, wantStatus: "ok"},
		{name: "improvement", oldNs: 100, newNs: 60, cpus: 4, wantStatus: "ok"},
		{name: "warn band", oldNs: 100, newNs: 130, cpus: 4, wantStatus: "WARN"},
		{name: "fail band", oldNs: 100, newNs: 180, cpus: 4, wantFailed: true, wantStatus: "FAIL"},
		{name: "cpus=1 old side", oldNs: 100, newNs: 100, cpus: 1, wantStatus: "ok", wantNote: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := bf(tc.cpus, "BenchmarkEngineRun", tc.oldNs)
			new := bf(tc.cpus, "BenchmarkEngineRun", tc.newNs)
			var sb strings.Builder
			failed, err := WriteDiff(&sb, old, new, 15, 50)
			if err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if failed != tc.wantFailed {
				t.Errorf("failed = %v, want %v\n%s", failed, tc.wantFailed, out)
			}
			if !strings.Contains(out, tc.wantStatus) {
				t.Errorf("output missing status %q:\n%s", tc.wantStatus, out)
			}
			note := strings.Contains(out, "coordination overhead")
			if note != tc.wantNote {
				t.Errorf("cpus=1 note present = %v, want %v\n%s", note, tc.wantNote, out)
			}
			if speedupClaim.MatchString(out) {
				t.Errorf("diff output claims a speedup:\n%s", out)
			}
			if !strings.Contains(out, "worst regression:") {
				t.Errorf("output missing worst-regression summary:\n%s", out)
			}
		})
	}
}

func TestWriteDiffOnlySides(t *testing.T) {
	old := bf(4, "OldOnly", 10)
	new := bf(4, "NewOnly", 20)
	var sb strings.Builder
	failed, err := WriteDiff(&sb, old, new, 15, 50)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Error("disjoint files cannot fail the gate")
	}
	if !strings.Contains(sb.String(), "only in old: OldOnly") ||
		!strings.Contains(sb.String(), "only in new: NewOnly") {
		t.Errorf("missing only-in lines:\n%s", sb.String())
	}
}

// TestWriteReportHonesty pins the cpus==1 rule end to end: the same ratio
// map prints as speedups on a multi-CPU host and as overhead ratios on a
// single-CPU (or unrecorded) host, never the other way around.
func TestWriteReportHonesty(t *testing.T) {
	base := BenchFile{
		GeneratedBy: "scripts/bench.sh",
		Benchmarks:  []BenchResult{{Name: "BenchmarkEngineRun", Iterations: 10, NsPerOp: 1000}},
		Speedups:    map[string]float64{"w4_vs_w1": 1.8},
	}
	cases := []struct {
		name        string
		cpus        int
		wantSpeedup bool
	}{
		{name: "multi-cpu host may claim speedup", cpus: 8, wantSpeedup: true},
		{name: "cpus=1 host reports overhead", cpus: 1},
		{name: "unrecorded cpus reports overhead", cpus: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := base
			f.CPUs = tc.cpus
			var sb strings.Builder
			if err := WriteReport(&sb, f); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if got := speedupClaim.MatchString(out); got != tc.wantSpeedup {
				t.Errorf("speedup claim present = %v, want %v\n%s", got, tc.wantSpeedup, out)
			}
			if !tc.wantSpeedup {
				if !strings.Contains(out, "overhead ratio") {
					t.Errorf("single-cpu report missing overhead wording:\n%s", out)
				}
			}
			if !strings.Contains(out, "BenchmarkEngineRun") {
				t.Errorf("report missing benchmark table:\n%s", out)
			}
		})
	}
}

func TestWriteReportNoRatios(t *testing.T) {
	f := BenchFile{Benchmarks: []BenchResult{{Name: "B", NsPerOp: 1}}}
	var sb strings.Builder
	if err := WriteReport(&sb, f); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "speedup") || strings.Contains(out, "ratio") {
		t.Errorf("ratio section printed for a file with no ratios:\n%s", out)
	}
}
