// Package perf rolls the radio kernel's performance introspection
// (radio.Perf, see internal/radio/perf.go) up into the observability
// layer: registry metrics for scraping, a human-readable summary table
// for dynsim -perf, a background runtime sampler (heap, GC, goroutines),
// and the BENCH_*.json tooling behind `nettool perf report|diff`.
//
// It sits strictly on the consumer side of the dependency arrow: radio
// never imports obs, and nothing here can reach back into a running
// kernel — Publish and WriteSummary work from immutable PerfSnapshot
// values.
package perf

import (
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"dynsens/internal/obs"
	"dynsens/internal/radio"
)

// Publish folds a kernel perf snapshot into the registry under the
// dynsens_kernel_* names (see docs/observability.md for the catalog).
// Totals are published with gauge Set semantics so re-publishing a later
// snapshot of the same collector replaces rather than double-counts;
// the per-shard busy-time histogram, being cumulative, is only meaningful
// from the final publish of a run. Extra labels are applied to every
// series.
func Publish(reg *obs.Registry, s radio.PerfSnapshot, labels ...obs.Label) {
	reg.Gauge("dynsens_kernel_runs", "engine runs folded into the perf collector", labels...).Set(s.Runs)
	reg.Gauge("dynsens_kernel_rounds_total", "rounds executed across collected runs", labels...).Set(s.Rounds)
	reg.Gauge("dynsens_kernel_events_total", "trace events emitted across collected runs", labels...).Set(s.Events)
	reg.Gauge("dynsens_kernel_wall_ns_total", "wall-clock nanoseconds spent inside Engine.Run", labels...).Set(s.WallNs)
	for _, ph := range s.Phases {
		ls := append(append([]obs.Label(nil), labels...), obs.L("phase", ph.Name))
		reg.Gauge("dynsens_kernel_phase_ns_total",
			"wall-clock nanoseconds per kernel phase (act/resolve/deliver include barrier-wait; see docs/performance.md)",
			ls...).Set(ph.Ns)
	}
	reg.Gauge("dynsens_kernel_load_imbalance_permille",
		"max/mean per-shard busy time x1000; 1000 = perfectly balanced shards",
		labels...).Set(int64(s.Imbalance() * 1000))
	reg.Gauge("dynsens_kernel_events_per_round_permille",
		"mean trace events per executed round x1000",
		labels...).Set(int64(s.EventsPerRound() * 1000))
	hist := reg.Histogram("dynsens_kernel_shard_busy_ns",
		"per-shard busy time across collected runs (power-of-two ns buckets)",
		obs.TimerBuckets(), labels...)
	for _, ns := range s.ShardBusyNs {
		hist.Observe(float64(ns))
	}
}

// WriteSummary renders the snapshot as the aligned table behind
// `dynsim -perf`: per-phase wall time with share-of-run percentages, the
// barrier-wait subset, per-shard busy times with the imbalance gauge, and
// the run/round/event totals.
func WriteSummary(w io.Writer, s radio.PerfSnapshot) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintf(tw, "kernel perf: %d run(s), %d rounds, %d events (%.1f events/round)\n",
		s.Runs, s.Rounds, s.Events, s.EventsPerRound()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(tw, "PHASE\tTIME\tSHARE"); err != nil {
		return err
	}
	for _, ph := range s.Phases {
		share := 0.0
		if s.WallNs > 0 {
			share = 100 * float64(ph.Ns) / float64(s.WallNs)
		}
		note := ""
		if ph.Name == "barrier-wait" {
			note = "  (subset of the three phase walls)"
		}
		if _, err := fmt.Fprintf(tw, "%s\t%s\t%.1f%%%s\n", ph.Name, fmtNs(ph.Ns), share, note); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(tw, "total wall\t%s\t100.0%%\n", fmtNs(s.WallNs)); err != nil {
		return err
	}
	if len(s.ShardBusyNs) > 0 {
		if _, err := fmt.Fprintln(tw, "SHARD\tBUSY\t"); err != nil {
			return err
		}
		for i, ns := range s.ShardBusyNs {
			if _, err := fmt.Fprintf(tw, "%d\t%s\t\n", i, fmtNs(ns)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(tw, "imbalance\t%.2fx\tmax/mean shard busy (1.00x = balanced)\n", s.Imbalance()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// fmtNs renders a nanosecond count at a human scale (ns/µs/ms/s).
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return strconv.FormatFloat(float64(ns)/1e9, 'f', 3, 64) + "s"
	case ns >= 1e6:
		return strconv.FormatFloat(float64(ns)/1e6, 'f', 2, 64) + "ms"
	case ns >= 1e3:
		return strconv.FormatFloat(float64(ns)/1e3, 'f', 1, 64) + "µs"
	default:
		return strconv.FormatInt(ns, 10) + "ns"
	}
}
