package perf

import (
	"runtime"
	"sync"
	"time"

	"dynsens/internal/obs"
)

// Sampler periodically snapshots Go runtime health — heap in use, GC
// pauses, goroutine count — into registry gauges, so a long simulation's
// obs endpoint shows whether wall-clock time is going to the kernel or to
// the collector. It observes the runtime only; like radio.Perf it can
// never perturb simulation semantics (determinism is round/seq-based, not
// time-based).
type Sampler struct {
	heapAlloc  *obs.Gauge
	heapSys    *obs.Gauge
	goroutines *obs.Gauge
	numGC      *obs.Gauge
	pauseTotal *obs.Counter
	pauseHist  *obs.Histogram

	lastNumGC    uint32
	lastPauseNs  uint64
	mu           sync.Mutex
	stop         chan struct{}
	done         chan struct{}
	samplesTaken int
}

// NewSampler registers the dynsens_runtime_* series in reg and returns a
// sampler ready for Sample or Start. Extra labels are applied to every
// series.
func NewSampler(reg *obs.Registry, labels ...obs.Label) *Sampler {
	return &Sampler{
		heapAlloc:  reg.Gauge("dynsens_runtime_heap_alloc_bytes", "bytes of allocated heap objects (runtime.MemStats.HeapAlloc)", labels...),
		heapSys:    reg.Gauge("dynsens_runtime_heap_sys_bytes", "bytes of heap obtained from the OS (runtime.MemStats.HeapSys)", labels...),
		goroutines: reg.Gauge("dynsens_runtime_goroutines", "live goroutine count", labels...),
		numGC:      reg.Gauge("dynsens_runtime_gc_cycles_total", "completed GC cycles since process start", labels...),
		pauseTotal: reg.Counter("dynsens_runtime_gc_pause_ns_total", "cumulative GC stop-the-world pause nanoseconds observed by the sampler", labels...),
		pauseHist: reg.Histogram("dynsens_runtime_gc_pause_ns", "individual GC pause durations observed by the sampler (power-of-two ns buckets)",
			obs.Pow2Buckets(10, 30), labels...),
	}
}

// Sample takes one snapshot: gauges are set to current values, and GC
// pauses that completed since the previous Sample are observed into the
// pause histogram (via the MemStats.PauseNs ring buffer, so up to 256
// pauses between samples are attributed individually). Safe for
// concurrent use, though one caller — the Start loop or a manual driver —
// is the intended shape.
func (s *Sampler) Sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.heapAlloc.Set(int64(m.HeapAlloc))
	s.heapSys.Set(int64(m.HeapSys))
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.numGC.Set(int64(m.NumGC))
	s.pauseTotal.Add(int64(m.PauseTotalNs - s.lastPauseNs))
	s.lastPauseNs = m.PauseTotalNs
	newGC := m.NumGC - s.lastNumGC
	if newGC > uint32(len(m.PauseNs)) {
		// More cycles than the ring holds: the overflowed pauses are still
		// in pauseTotal, only their individual durations are lost.
		newGC = uint32(len(m.PauseNs))
	}
	for i := uint32(0); i < newGC; i++ {
		s.pauseHist.Observe(float64(m.PauseNs[(m.NumGC-i-1+uint32(len(m.PauseNs)))%uint32(len(m.PauseNs))]))
	}
	s.lastNumGC = m.NumGC
	s.samplesTaken++
}

// Samples returns how many times Sample has run (Start's loop included).
func (s *Sampler) Samples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samplesTaken
}

// Start launches a background goroutine sampling every interval until
// Stop. Starting an already-started sampler is a no-op. The wall-clock
// ticker is sanctioned here for the same reason as the kernel's perf
// timers: it reads time to describe the runtime, never to influence the
// simulation.
func (s *Sampler) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		//lint:ignore dynlint/nondeterminism the runtime sampler is wall-clock-driven by design; it only reads runtime stats into obs gauges and cannot influence simulation state
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
}

// Stop halts the Start loop and takes one final sample so short-lived
// runs still publish end-state numbers. Safe to call without Start or
// more than once.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	s.Sample()
}
