package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// compareGolden checks got against testdata/<name>, rewriting the file
// under -update.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// goldenRegistry builds a registry covering every metric kind, label
// escaping, multi-label ordering, and all three bucket situations (empty,
// mid-range, +Inf overflow). Registration order is deliberately scrambled:
// snapshots must sort it away.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("demo_runs_total", "Total runs.", L("protocol", "ICFF")).Add(42)
	reg.Counter("demo_runs_total", "Total runs.", L("protocol", "DFO")).Add(7)
	reg.Gauge("demo_height", "Tree height.").Set(-3)
	// Labels given in non-sorted order; ids must still come out sorted.
	reg.Counter("demo_events_total", "Events with tricky labels.",
		L("zone", `a"b\c`), L("area", "line1\nline2")).Inc()
	h := reg.Histogram("demo_latency_rounds", "Completion latency.", []float64{1, 2, 4, 8})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100) // lands in +Inf
	reg.Histogram("demo_empty_rounds", "Never observed.", LinearBuckets(0, 5, 3))
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "snapshot.prom.golden", buf.Bytes())
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "snapshot.json.golden", buf.Bytes())
}

func TestTableGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "snapshot.table.golden", buf.Bytes())
}

// TestSnapshotDeterminism re-renders the same registry many times; every
// byte must match (ordering comes from sorted series ids, not map order).
func TestSnapshotDeterminism(t *testing.T) {
	reg := goldenRegistry()
	var first bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		var again bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, first.String(), again.String())
		}
	}
}
