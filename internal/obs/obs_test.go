package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Add(-3) // negative adds are ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter after negative add = %d", c.Value())
	}
	g := reg.Gauge("g", "help")
	g.Set(7)
	g.Add(-10)
	if g.Value() != -3 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", L("p", "A"))
	b := reg.Counter("x_total", "other help ignored", L("p", "A"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	other := reg.Counter("x_total", "help", L("p", "B"))
	if a == other {
		t.Fatal("distinct labels shared a handle")
	}
	// Label order must not matter.
	h1 := reg.Gauge("y", "help", L("a", "1"), L("b", "2"))
	h2 := reg.Gauge("y", "help", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order changed identity")
	}
	if reg.NumSeries() != 3 {
		t.Fatalf("series = %d, want 3", reg.NumSeries())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("z", "help")
}

func TestEmptyNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("empty metric name did not panic")
		}
	}()
	reg.Counter("", "help")
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 10, 11} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	hp, ok := snap.HistogramPoint("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hp.Count != 5 {
		t.Fatalf("count = %d", hp.Count)
	}
	if hp.Sum != 27.5 {
		t.Fatalf("sum = %v", hp.Sum)
	}
	// Cumulative: le=1 -> 2 (0.5, 1), le=10 -> 4; +Inf is implicit (its
	// cumulative count is Count, here 5, rendered only by the writers).
	wantCum := []int64{2, 4}
	if len(hp.Buckets) != 2 {
		t.Fatalf("buckets = %+v", hp.Buckets)
	}
	for i, b := range hp.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%v) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if math.IsInf(hp.Buckets[1].UpperBound, 1) {
		t.Errorf("snapshot buckets must not include +Inf explicitly")
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	want = []float64{0, 5, 10}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}

func TestPow2Buckets(t *testing.T) {
	cases := []struct {
		lo, hi int
		want   []float64
	}{
		{0, 3, []float64{1, 2, 4, 8}},
		{10, 12, []float64{1024, 2048, 4096}},
		{-3, 1, []float64{1, 2}},     // lo clamps to 0
		{5, 2, []float64{32}},        // hi < lo collapses to a single bucket
		{62, 70, []float64{1 << 62}}, // hi clamps to 62
	}
	for _, c := range cases {
		got := Pow2Buckets(c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Fatalf("Pow2Buckets(%d, %d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("Pow2Buckets(%d, %d) = %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
	tb := TimerBuckets()
	if tb[0] != 1024 || tb[len(tb)-1] != float64(int64(1)<<34) || len(tb) != 25 {
		t.Fatalf("TimerBuckets = first %v last %v len %d", tb[0], tb[len(tb)-1], len(tb))
	}
}

// TestPow2BucketEdges pins the bucket-membership semantics at exact
// power-of-two values: Prometheus buckets are inclusive upper bounds, so
// an observation equal to an edge lands in that edge's bucket and edge+1
// spills into the next.
func TestPow2BucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edges", "help", Pow2Buckets(10, 12)) // 1024, 2048, 4096
	h.Observe(1023)
	h.Observe(1024) // inclusive: le=1024
	h.Observe(1025) // next bucket: le=2048
	h.Observe(4096) // last explicit bucket
	h.Observe(4097) // implicit +Inf overflow
	snap := reg.Snapshot()
	hp, ok := snap.HistogramPoint("edges")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCum := []int64{2, 3, 4} // cumulative per explicit bucket
	if len(hp.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %+v", hp.Buckets)
	}
	for i, b := range hp.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v = %d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
	if hp.Count != 5 {
		t.Fatalf("count = %d, want 5 (the +Inf overflow observation counts)", hp.Count)
	}
}

// TestConcurrentUse hammers one registry from many goroutines — both
// registration (idempotent lookups) and the atomic hot paths — so the
// -race run proves the engine-worker sharing contract.
func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("conc_total", "help", L("p", "X"))
			g := reg.Gauge("conc_gauge", "help")
			h := reg.Histogram("conc_hist", "help", ExpBuckets(1, 2, 8))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 300))
				if i%100 == 0 {
					_ = reg.Snapshot() // snapshots race against writers
				}
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if v, _ := snap.CounterValue("conc_total", L("p", "X")); v != workers*perWorker {
		t.Fatalf("counter = %d, want %d", v, workers*perWorker)
	}
	if v, _ := snap.GaugeValue("conc_gauge"); v != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", v, workers*perWorker)
	}
	hp, _ := snap.HistogramPoint("conc_hist")
	if hp.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", hp.Count, workers*perWorker)
	}
}
