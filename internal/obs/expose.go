package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric name, then one
// line per series, histograms expanded into cumulative _bucket/_sum/_count
// lines. Output order is the snapshot's deterministic order.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	headered := make(map[string]bool)
	header := func(name, help string, kind string) error {
		if headered[name] {
			return nil
		}
		headered[name] = true
		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}
	for _, c := range s.Counters {
		if err := header(c.Name, c.Help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(c.Name, c.Labels, nil), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := header(g.Name, g.Help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(g.Name, g.Labels, nil), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := header(h.Name, h.Help, "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := Label{Key: "le", Value: formatFloat(b.UpperBound)}
			if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(h.Name+"_bucket", h.Labels, &le), b.Count); err != nil {
				return err
			}
		}
		inf := Label{Key: "le", Value: "+Inf"}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(h.Name+"_bucket", h.Labels, &inf), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", promSeries(h.Name+"_sum", h.Labels, nil), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(h.Name+"_count", h.Labels, nil), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON, in the snapshot's
// deterministic order.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTable renders the snapshot as an aligned human-readable table —
// the view behind nettool's metrics subcommand. Histograms are summarized
// as count/sum/mean.
func (s Snapshot) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, "TYPE\tMETRIC\tVALUE"); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(tw, "counter\t%s\t%d\n", promSeries(c.Name, c.Labels, nil), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(tw, "gauge\t%s\t%d\n", promSeries(g.Name, g.Labels, nil), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		if _, err := fmt.Fprintf(tw, "histogram\t%s\tcount=%d sum=%s mean=%.2f\n",
			promSeries(h.Name, h.Labels, nil), h.Count, formatFloat(h.Sum), mean); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// promSeries renders name{labels} with the optional extra label appended
// (used for histogram le). Labels arrive sorted from the snapshot.
func promSeries(name string, labels []Label, extra *Label) string {
	ls := labels
	if extra != nil {
		ls = append(append([]Label(nil), labels...), *extra)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	}
	if len(ls) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips, matching
// Prometheus conventions for le bounds and sums.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
