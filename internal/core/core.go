// Package core is the public API of the library: a dynamic, self-organizing
// cluster-based sensor network (the paper's primary contribution) offering
//
//   - self-construction and self-reconfiguration via Join (node-move-in)
//     and Leave (node-move-out), with time-slot knowledge maintained
//     incrementally and every invariant machine-checkable via Verify;
//   - time- and energy-efficient broadcast: Improved Collision-Free
//     Flooding (Algorithm 2, the default), plain CFF (Algorithm 1) and the
//     depth-first-order baseline of [19], all executed on a collision-
//     accurate radio simulator with single or multiple channels;
//   - group multicast with relay-list pruning (MCNet);
//   - structural and protocol statistics matching the paper's figures.
//
// Typical use:
//
//	net, _ := core.Build(deployment.Graph(), core.Config{})
//	m, _ := net.Broadcast(net.Root(), broadcast.Options{})
//	fmt.Println(m)
package core

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/gather"
	"dynsens/internal/graph"
	"dynsens/internal/multicast"
	"dynsens/internal/timeslot"
)

// Config tunes network construction.
type Config struct {
	// Root is the sink node ID (default 0).
	Root graph.NodeID
	// Policy selects parents during node-move-in (default lowest ID).
	Policy cnet.Policy
	// SlotCondition selects the l-slot interference model (default
	// strict; see DESIGN.md §5).
	SlotCondition timeslot.Condition
	// DeltaHook, when set, receives every topology mutation — including
	// the construction-time move-ins performed by Build — and stays
	// installed for later Join/Leave/RepairCrash calls. The flight
	// recorder uses this to capture churn history.
	DeltaHook func(cnet.Delta)
}

// Network is a dynamic cluster-based sensor network.
type Network struct {
	net    *cnet.CNet
	slots  *timeslot.Assignment
	groups *multicast.MCNet

	// structural accumulates the round cost of topology operations
	// (Theorems 2 and 3's knowledge-I and height parts).
	structural cnet.OpCost
}

// New creates a network containing only the sink.
func New(cfg Config) *Network {
	c := cnet.New(cfg.Root, cfg.Policy)
	c.SetDeltaHook(cfg.DeltaHook)
	return &Network{
		net:    c,
		slots:  timeslot.New(c, cfg.SlotCondition),
		groups: multicast.New(c),
	}
}

// Build constructs a network over an existing connected graph g by
// inserting every node via node-move-in in BFS order from the root.
func Build(g *graph.Graph, cfg Config) (*Network, error) {
	c, cost, err := cnet.BuildFromGraphObserved(g, cfg.Root, cfg.Policy, cfg.DeltaHook)
	if err != nil {
		return nil, err
	}
	n := &Network{
		net:    c,
		slots:  timeslot.New(c, cfg.SlotCondition),
		groups: multicast.New(c),
	}
	n.structural = cost
	return n, nil
}

// Root returns the sink.
func (n *Network) Root() graph.NodeID { return n.net.Root() }

// Size returns the number of nodes.
func (n *Network) Size() int { return n.net.Size() }

// Contains reports membership.
func (n *Network) Contains(id graph.NodeID) bool { return n.net.Contains(id) }

// Graph exposes the current connectivity graph (do not mutate).
func (n *Network) Graph() *graph.Graph { return n.net.Graph() }

// CNet exposes the cluster structure (do not mutate).
func (n *Network) CNet() *cnet.CNet { return n.net }

// Slots exposes the time-slot assignment (do not mutate).
func (n *Network) Slots() *timeslot.Assignment { return n.slots }

// Groups exposes the multicast group state.
func (n *Network) Groups() *multicast.MCNet { return n.groups }

// Join performs node-move-in: id joins hearing the given existing nodes.
func (n *Network) Join(id graph.NodeID, neighbors []graph.NodeID) error {
	_, cost, err := n.net.MoveIn(id, neighbors)
	if err != nil {
		return err
	}
	n.structural.Add(cost)
	if err := n.slots.OnJoin(id); err != nil {
		return fmt.Errorf("core: slot update after join of %d: %w", id, err)
	}
	return nil
}

// Leave performs node-move-out: id departs; the residual network must stay
// connected. Group memberships of re-inserted nodes are preserved.
func (n *Network) Leave(id graph.NodeID) error {
	rec, cost, err := n.net.MoveOut(id)
	if err != nil {
		return err
	}
	n.structural.Add(cost)
	if err := n.slots.OnMoveOut(rec); err != nil {
		return fmt.Errorf("core: slot update after leave of %d: %w", id, err)
	}
	n.groups.OnMoveOut(rec)
	return nil
}

// RepairCrash performs non-graceful repair after the given nodes crashed
// (no node-move-out possible): crashed subtrees are detached, surviving
// orphans re-attach where they can still hear the network, unreachable
// survivors are dropped, and time-slot/relay knowledge is repaired. A
// crashed sink is replaced and the structure rebuilt.
func (n *Network) RepairCrash(dead []graph.NodeID) (cnet.CrashRecord, error) {
	rec, cost, err := n.net.RemoveCrashed(dead)
	if err != nil {
		return cnet.CrashRecord{}, err
	}
	n.structural.Add(cost)
	if err := n.slots.OnCrash(rec); err != nil {
		return cnet.CrashRecord{}, fmt.Errorf("core: slot repair after crash: %w", err)
	}
	n.groups.OnCrash(rec)
	return rec, nil
}

// JoinGroup adds id to multicast group g.
func (n *Network) JoinGroup(id graph.NodeID, g int) error { return n.groups.JoinGroup(id, g) }

// LeaveGroup removes id from multicast group g.
func (n *Network) LeaveGroup(id graph.NodeID, g int) error { return n.groups.LeaveGroup(id, g) }

// Broadcast runs the paper's primary protocol (Improved CFF, Algorithm 2)
// from source and returns measured metrics.
func (n *Network) Broadcast(source graph.NodeID, opts broadcast.Options) (broadcast.Metrics, error) {
	return broadcast.RunICFF(n.slots, source, opts)
}

// BroadcastCFF runs Algorithm 1 (flooding the whole CNet).
func (n *Network) BroadcastCFF(source graph.NodeID, opts broadcast.Options) (broadcast.Metrics, error) {
	return broadcast.RunCFF(n.slots, source, opts)
}

// BroadcastDFO runs the depth-first-order baseline of [19].
func (n *Network) BroadcastDFO(source graph.NodeID, opts broadcast.Options) (broadcast.Metrics, error) {
	return broadcast.RunDFO(n.net, source, opts)
}

// Multicast runs the group multicast (Algorithm 2 with relay pruning).
func (n *Network) Multicast(g int, source graph.NodeID, opts broadcast.Options) (broadcast.Metrics, error) {
	return n.groups.Run(n.slots, g, source, opts)
}

// Gather runs a collision-free convergecast: every node contributes
// values[id] (missing entries contribute 0) and the sink receives the
// exact aggregate sum plus a reporting count. The g-slot schedule is
// recomputed for the current structure.
func (n *Network) Gather(values map[graph.NodeID]int64, opts gather.Options) (gather.Metrics, error) {
	s := gather.NewSchedule(n.net)
	if err := s.Verify(); err != nil {
		return gather.Metrics{}, err
	}
	return gather.Run(n.net, s, values, opts)
}

// Verify machine-checks every invariant: cluster structure (Definition 1,
// Property 1), time-slot conditions and Lemma 3 bounds, and relay-list
// consistency.
func (n *Network) Verify() error {
	if err := n.net.Verify(); err != nil {
		return err
	}
	if err := n.slots.Verify(); err != nil {
		return err
	}
	if err := n.slots.CheckBounds(); err != nil {
		return err
	}
	return n.groups.Verify()
}

// Snapshot bundles structural and slot statistics (Figures 10 and 11) with
// accumulated maintenance costs.
type Snapshot struct {
	cnet.Stats
	// Delta is the largest l-time-slot; SmallDelta the largest b-time-slot.
	Delta      int
	SmallDelta int
	// BoundL and BoundB are the Lemma 3 upper bounds for them.
	BoundL int
	BoundB int
	// StructuralRounds is the accumulated cost of topology operations;
	// SlotRounds the accumulated time-slot maintenance cost.
	StructuralRounds int
	SlotRounds       int
}

// Stats computes the current snapshot.
func (n *Network) Stats() Snapshot {
	return Snapshot{
		Stats:            n.net.ComputeStats(),
		Delta:            n.slots.Delta(),
		SmallDelta:       n.slots.SmallDelta(),
		BoundL:           n.slots.BoundL(),
		BoundB:           n.slots.BoundB(),
		StructuralRounds: n.structural.Total(),
		SlotRounds:       n.slots.Rounds(),
	}
}
