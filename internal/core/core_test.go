package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsens/internal/broadcast"
	"dynsens/internal/gather"
	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func buildNetwork(t testing.TB, seed int64, n int) *Network {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(d.Graph(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewSingleton(t *testing.T) {
	n := New(Config{Root: 7})
	if n.Root() != 7 || n.Size() != 1 || !n.Contains(7) {
		t.Fatal("singleton malformed")
	}
	if err := n.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndVerify(t *testing.T) {
	n := buildNetwork(t, 1, 100)
	if n.Size() != 100 {
		t.Fatalf("size = %d", n.Size())
	}
	if err := n.Verify(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Nodes != 100 || st.Delta <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Delta > st.BoundL || st.SmallDelta > st.BoundB {
		t.Fatalf("slots exceed Lemma 3 bounds: %+v", st)
	}
	if st.StructuralRounds <= 0 || st.SlotRounds <= 0 {
		t.Fatalf("maintenance costs missing: %+v", st)
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	g := graph.New()
	g.AddNode(0)
	g.AddNode(1)
	if _, err := Build(g, Config{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestJoinLeaveCycle(t *testing.T) {
	n := buildNetwork(t, 2, 50)
	// Join a node next to the root.
	anchor := n.Root()
	nbrs := append([]graph.NodeID{anchor}, n.Graph().Neighbors(anchor)...)
	if err := n.Join(1000, nbrs); err != nil {
		t.Fatal(err)
	}
	if !n.Contains(1000) || n.Size() != 51 {
		t.Fatal("join failed")
	}
	if err := n.Verify(); err != nil {
		t.Fatalf("after join: %v", err)
	}
	if err := n.Leave(1000); err != nil {
		t.Fatal(err)
	}
	if n.Contains(1000) || n.Size() != 50 {
		t.Fatal("leave failed")
	}
	if err := n.Verify(); err != nil {
		t.Fatalf("after leave: %v", err)
	}
}

func TestJoinErrors(t *testing.T) {
	n := New(Config{})
	if err := n.Join(1, nil); err == nil {
		t.Fatal("empty neighbors accepted")
	}
	if err := n.Leave(99); err == nil {
		t.Fatal("absent leave accepted")
	}
}

func TestBroadcastProtocols(t *testing.T) {
	n := buildNetwork(t, 3, 120)
	icff, err := n.Broadcast(n.Root(), broadcast.Options{})
	if err != nil || !icff.Completed {
		t.Fatalf("ICFF: %v %s", err, icff)
	}
	cff, err := n.BroadcastCFF(n.Root(), broadcast.Options{})
	if err != nil || !cff.Completed {
		t.Fatalf("CFF: %v %s", err, cff)
	}
	dfo, err := n.BroadcastDFO(n.Root(), broadcast.Options{})
	if err != nil || !dfo.Completed {
		t.Fatalf("DFO: %v %s", err, dfo)
	}
	if icff.ScheduleLen >= dfo.ScheduleLen {
		t.Fatalf("ICFF %d not faster than DFO %d", icff.ScheduleLen, dfo.ScheduleLen)
	}
}

func TestMulticastThroughFacade(t *testing.T) {
	n := buildNetwork(t, 4, 80)
	members := n.CNet().Members()
	if len(members) < 2 {
		t.Skip("too few members")
	}
	_ = n.JoinGroup(members[0], 1)
	_ = n.JoinGroup(members[1], 1)
	m, err := n.Multicast(1, n.Root(), broadcast.Options{})
	if err != nil || !m.Completed {
		t.Fatalf("multicast: %v %s", err, m)
	}
	if m.Audience != 2 {
		t.Fatalf("audience = %d", m.Audience)
	}
	if err := n.LeaveGroup(members[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsSurviveLeave(t *testing.T) {
	n := buildNetwork(t, 5, 60)
	members := n.CNet().Members()
	if len(members) < 2 {
		t.Skip("too few members")
	}
	target := members[0]
	_ = n.JoinGroup(target, 2)
	// Remove some other safe node; target's membership must survive even
	// if target gets re-inserted.
	rng := rand.New(rand.NewSource(5))
	nodes := n.CNet().Tree().Nodes()
	for k := 0; k < 10; k++ {
		victim := nodes[rng.Intn(len(nodes))]
		if victim == n.Root() || victim == target {
			continue
		}
		res := n.Graph().Clone()
		res.RemoveNode(victim)
		if !res.Connected() {
			continue
		}
		if err := n.Leave(victim); err != nil {
			t.Fatal(err)
		}
		break
	}
	if !n.Groups().InGroup(target, 2) {
		t.Fatal("membership lost across reconfiguration")
	}
	if err := n.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGatherThroughFacade(t *testing.T) {
	n := buildNetwork(t, 6, 90)
	values := make(map[graph.NodeID]int64)
	var want int64
	for _, id := range n.CNet().Tree().Nodes() {
		values[id] = 3
		want += 3
	}
	m, err := n.Gather(values, gather.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sum != want || !m.Complete() {
		t.Fatalf("gather: %s want %d", m, want)
	}
	// Gathering after churn still works.
	victim, ok := safeVictimCore(n)
	if !ok {
		t.Skip("no safe victim")
	}
	if err := n.Leave(victim); err != nil {
		t.Fatal(err)
	}
	delete(values, victim)
	m2, err := n.Gather(values, gather.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Complete() || m2.Sum != want-3 {
		t.Fatalf("gather after churn: %s", m2)
	}
}

func safeVictimCore(n *Network) (graph.NodeID, bool) {
	for _, id := range n.CNet().Tree().Nodes() {
		if id == n.Root() {
			continue
		}
		g := n.Graph().Clone()
		g.RemoveNode(id)
		if g.Connected() {
			return id, true
		}
	}
	return 0, false
}

func TestRepairCrash(t *testing.T) {
	n := buildNetwork(t, 7, 80)
	_ = n.JoinGroup(n.CNet().Tree().Nodes()[30], 1)
	// Crash three non-root nodes.
	var dead []graph.NodeID
	for _, id := range n.CNet().Tree().Nodes() {
		if id != n.Root() && len(dead) < 3 {
			dead = append(dead, id)
		}
	}
	rec, err := n.RepairCrash(dead)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Dead) != 3 {
		t.Fatalf("rec = %+v", rec)
	}
	for _, d := range dead {
		if n.Contains(d) {
			t.Fatalf("dead node %d present", d)
		}
	}
	if err := n.Verify(); err != nil {
		t.Fatalf("after crash repair: %v", err)
	}
	m, err := n.Broadcast(n.Root(), broadcast.Options{})
	if err != nil || !m.Completed {
		t.Fatalf("broadcast after repair: %v %s", err, m)
	}
}

func TestRepairCrashOfSink(t *testing.T) {
	n := buildNetwork(t, 8, 60)
	rec, err := n.RepairCrash([]graph.NodeID{n.Root()})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.RootReplaced {
		t.Fatalf("sink not replaced: %+v", rec)
	}
	if err := n.Verify(); err != nil {
		t.Fatal(err)
	}
	m, err := n.Broadcast(n.Root(), broadcast.Options{})
	if err != nil || !m.Completed {
		t.Fatalf("broadcast after sink replacement: %v %s", err, m)
	}
}

// Property: a random churn sequence (joins and safe leaves) preserves every
// invariant and broadcast completeness.
func TestChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := workload.PaperConfig(seed, 8, 30)
		base, events, err := workload.ChurnTrace(cfg, 12, 0.35)
		if err != nil {
			return false
		}
		net, err := Build(base.Graph(), Config{})
		if err != nil {
			return false
		}
		live := make(map[graph.NodeID]struct{ X, Y float64 })
		for i, p := range base.Pos {
			live[graph.NodeID(i)] = struct{ X, Y float64 }{p.X, p.Y}
		}
		for _, ev := range events {
			switch ev.Kind {
			case workload.Join:
				var nbrs []graph.NodeID
				for id, q := range live {
					dx, dy := ev.Pos.X-q.X, ev.Pos.Y-q.Y
					if dx*dx+dy*dy <= cfg.Range*cfg.Range {
						nbrs = append(nbrs, id)
					}
				}
				// Deterministic order for reproducibility.
				for i := 1; i < len(nbrs); i++ {
					for j := i; j > 0 && nbrs[j] < nbrs[j-1]; j-- {
						nbrs[j], nbrs[j-1] = nbrs[j-1], nbrs[j]
					}
				}
				if err := net.Join(ev.Node, nbrs); err != nil {
					return false
				}
				live[ev.Node] = struct{ X, Y float64 }{ev.Pos.X, ev.Pos.Y}
			case workload.Leave:
				if err := net.Leave(ev.Node); err != nil {
					return false
				}
				delete(live, ev.Node)
			}
			if net.Verify() != nil {
				return false
			}
		}
		m, err := net.Broadcast(net.Root(), broadcast.Options{})
		return err == nil && m.Completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
