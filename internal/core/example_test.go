package core_test

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/gather"
	"dynsens/internal/graph"
)

// tinyGraph builds a deterministic 6-node topology:
//
//	0 (sink) - 1 - 2
//	   \      |
//	    3     4 - 5
func tinyGraph() *graph.Graph {
	g := graph.New()
	edges := [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 3}, {1, 4}, {4, 5}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return g
}

// Example shows the whole lifecycle: build, broadcast, reconfigure,
// multicast, gather.
func Example() {
	net, err := core.Build(tinyGraph(), core.Config{})
	if err != nil {
		panic(err)
	}
	if err := net.Verify(); err != nil {
		panic(err)
	}

	m, _ := net.Broadcast(net.Root(), broadcast.Options{})
	fmt.Printf("broadcast delivered %d/%d\n", m.Received, m.Audience)

	// A node joins next to node 2, then leaves again.
	_ = net.Join(99, []graph.NodeID{2})
	fmt.Println("after join:", net.Size(), "nodes, verify:", net.Verify() == nil)
	_ = net.Leave(99)

	// Group 7 multicast to node 5.
	_ = net.JoinGroup(5, 7)
	mc, _ := net.Multicast(7, net.Root(), broadcast.Options{})
	fmt.Printf("multicast delivered %d/%d\n", mc.Received, mc.Audience)

	// Exact aggregation.
	sums := map[graph.NodeID]int64{0: 1, 1: 2, 2: 3, 3: 4, 4: 5, 5: 6}
	gm, _ := net.Gather(sums, gather.Options{})
	fmt.Printf("gathered sum %d from %d nodes\n", gm.Sum, gm.Reporting)

	// Output:
	// broadcast delivered 6/6
	// after join: 7 nodes, verify: true
	// multicast delivered 1/1
	// gathered sum 21 from 6 nodes
}

// ExampleNetwork_Stats shows the structural statistics matching the
// paper's Figures 10 and 11.
func ExampleNetwork_Stats() {
	net, _ := core.Build(tinyGraph(), core.Config{})
	st := net.Stats()
	fmt.Printf("clusters=%d backbone=%d height=%d D=%d\n",
		st.Clusters, st.BackboneSize, st.Height, st.DegreeG)
	// Output:
	// clusters=3 backbone=4 height=3 D=3
}
