package joinproto

import (
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/geom"
	"dynsens/internal/workload"
)

func TestBootstrapSmall(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(41, 8, 30))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bootstrap(d, core.Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.Size() != 30 {
		t.Fatalf("built %d nodes", res.Network.Size())
	}
	if len(res.Joins) != 29 || res.TotalRounds <= 0 {
		t.Fatalf("join accounting: %d joins, %d rounds", len(res.Joins), res.TotalRounds)
	}
	// The self-built network must broadcast successfully.
	m, err := res.Network.Broadcast(res.Network.Root(), broadcast.Options{})
	if err != nil || !m.Completed {
		t.Fatalf("broadcast on bootstrapped network: %v %s", err, m)
	}
	// Discovery misses should be rare.
	if res.IncompleteDiscoveries > 3 {
		t.Fatalf("%d incomplete discoveries out of 29", res.IncompleteDiscoveries)
	}
}

func TestBootstrapMatchesStructuralShape(t *testing.T) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(43, 8, 25))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bootstrap(d, core.Config{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	structural, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// When every discovery is complete, the protocol-built structure is
	// identical to the structural one (same insertion order, same rules).
	if res.IncompleteDiscoveries > 0 {
		t.Skip("discovery missed edges; structures may legitimately differ")
	}
	ps := res.Network.Stats()
	ss := structural.Stats()
	if ps.Clusters != ss.Clusters || ps.BackboneSize != ss.BackboneSize || ps.Height != ss.Height {
		t.Fatalf("structures differ: protocol %+v vs structural %+v", ps, ss)
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := Bootstrap(&geom.Deployment{}, core.Config{}, 1); err == nil {
		t.Fatal("empty deployment accepted")
	}
	// A deployment whose second node is out of range must fail.
	d := &geom.Deployment{
		Region: geom.Region{Width: 1000, Height: 1000},
		Range:  50,
		Pos:    []geom.Point{{X: 0, Y: 0}, {X: 900, Y: 900}},
	}
	if _, err := Bootstrap(d, core.Config{}, 1); err == nil {
		t.Fatal("disconnected deployment accepted")
	}
}
