package joinproto

import (
	"fmt"

	"dynsens/internal/core"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// Message kinds for node-move-out's Step 0 tour.
const (
	msgLeaving = 21
	msgDelete  = 22
)

// LeaveResult reports a protocol node-move-out (Section 5.2).
type LeaveResult struct {
	// Removed is the departed node; Subtree the size of the detached T.
	Removed graph.NodeID
	Subtree int
	// AnnounceRounds is Step 0(i): "I will leave" with height updates
	// along the path to the root (measured on the engine).
	AnnounceRounds int
	// TourRounds is Step 0(ii)'s Eulerian tour over T carrying "delete me
	// and recalculate" (measured on the engine; one transmitter per round,
	// so it is collision-free like the DFO token).
	TourRounds int
	// StructuralRounds and SlotRounds cover Steps 1-3: the re-insertion
	// of T's nodes (each already knows its neighbors, so per Theorem 2 no
	// re-discovery is needed) and the slot repairs, charged through the
	// structural layer's Theorem 2/3 and Lemma 2 accounting.
	StructuralRounds int
	SlotRounds       int
}

// TotalRounds sums all phases.
func (r LeaveResult) TotalRounds() int {
	return r.AnnounceRounds + r.TourRounds + r.StructuralRounds + r.SlotRounds
}

// String renders a summary.
func (r LeaveResult) String() string {
	return fmt.Sprintf("leave: node=%d |T|=%d rounds: announce=%d tour=%d struct=%d slots=%d (total %d)",
		r.Removed, r.Subtree, r.AnnounceRounds, r.TourRounds,
		r.StructuralRounds, r.SlotRounds, r.TotalRounds())
}

// Leave runs node-move-out as messages: the departure announcement races
// up the tree, the Euler tour walks the departing subtree telling the
// neighbors of each visited node to drop it and recalculate, and then the
// structural layer re-inserts the orphans and repairs knowledge (II). The
// network is mutated on success; the residual graph must stay connected.
func Leave(net *core.Network, lev graph.NodeID) (LeaveResult, error) {
	if !net.Contains(lev) {
		return LeaveResult{}, fmt.Errorf("joinproto: node %d not present", lev)
	}
	tr := net.CNet().Tree()
	res := LeaveResult{Removed: lev, Subtree: len(tr.Subtree(lev))}

	// Step 0(i): announce along the path to the root, one hop per round.
	path := tr.PathToRoot(lev)
	if len(path) > 1 {
		rounds, err := relayPath(net.Graph(), path)
		if err != nil {
			return LeaveResult{}, err
		}
		res.AnnounceRounds = rounds
	}

	// Step 0(ii): Euler tour over T with "delete me" messages. Every
	// neighbor of the tour's current node hears it (single transmitter
	// per round). For a leaf T this is a single announcement.
	tour := subtreeTour(tr, lev)
	rounds, err := runTour(net.Graph(), tour)
	if err != nil {
		return LeaveResult{}, err
	}
	res.TourRounds = rounds

	// Steps 1-3: structural removal, re-insertion and repairs.
	pre := net.Stats()
	if err := net.Leave(lev); err != nil {
		return LeaveResult{}, err
	}
	post := net.Stats()
	res.StructuralRounds = post.StructuralRounds - pre.StructuralRounds
	res.SlotRounds = post.SlotRounds - pre.SlotRounds
	return res, nil
}

// subtreeTour returns the Euler tour of the subtree rooted at lev,
// restricted to tree edges inside the subtree.
func subtreeTour(tr interface {
	Subtree(graph.NodeID) []graph.NodeID
	Children(graph.NodeID) []graph.NodeID
}, lev graph.NodeID) []graph.NodeID {
	var tour []graph.NodeID
	var walk func(u graph.NodeID)
	walk = func(u graph.NodeID) {
		tour = append(tour, u)
		for _, c := range tr.Children(u) {
			walk(c)
			tour = append(tour, u)
		}
	}
	walk(lev)
	return tour
}

// relayPath sends a message hop by hop along path (one transmitter per
// round) and returns the measured rounds.
func relayPath(g *graph.Graph, path []graph.NodeID) (int, error) {
	progs := make(map[graph.NodeID]radio.Program, g.NumNodes())
	horizon := len(path) - 1
	for _, id := range g.Nodes() {
		progs[id] = idle{}
	}
	for j, id := range path {
		n := &attachNode{id: id, horizon: horizon}
		if j < len(path)-1 {
			n.txAt = j + 1
			n.txMsg = radio.Message{Seq: msgLeaving, Depth: msgLeaving, Src: path[0], Dst: path[j+1]}
		}
		progs[id] = n
	}
	eng, err := radio.NewEngine(g, progs)
	if err != nil {
		return 0, err
	}
	r := eng.Run(horizon)
	return r.Rounds, nil
}

// runTour transmits the "delete me" message from each tour position in its
// own round; all neighbors of tour nodes listen.
func runTour(g *graph.Graph, tour []graph.NodeID) (int, error) {
	horizon := len(tour)
	progs := make(map[graph.NodeID]radio.Program, g.NumNodes())
	listeners := make(map[graph.NodeID]bool)
	txAt := make(map[graph.NodeID][]int)
	for p, id := range tour {
		txAt[id] = append(txAt[id], p+1)
		for _, nb := range g.Neighbors(id) {
			listeners[nb] = true
		}
	}
	for _, id := range g.Nodes() {
		if rounds, ok := txAt[id]; ok {
			progs[id] = &tourNode{id: id, rounds: rounds, horizon: horizon}
		} else if listeners[id] {
			progs[id] = &attachNode{id: id, horizon: horizon}
		} else {
			progs[id] = idle{}
		}
	}
	eng, err := radio.NewEngine(g, progs)
	if err != nil {
		return 0, err
	}
	r := eng.Run(horizon)
	if r.Collisions > 0 {
		return 0, fmt.Errorf("joinproto: tour collided %d times (single-transmitter invariant broken)", r.Collisions)
	}
	return r.Rounds, nil
}

// tourNode transmits "delete me" at its tour positions and listens
// otherwise. It honors the radio.Program contract (see joinproto.go).
type tourNode struct {
	id      graph.NodeID
	rounds  []int
	horizon int
	cur     int
}

// The assertion also opts tourNode into dynlint/progpurity's static
// contract check (node-local Act/Deliver, read-only Done).
var _ radio.Program = (*tourNode)(nil)

func (tn *tourNode) Act(round int) radio.Action {
	tn.cur = round
	for _, r := range tn.rounds {
		if r == round {
			return radio.TransmitOn(0, radio.Message{Seq: msgDelete, Depth: msgDelete, Src: tn.id})
		}
	}
	if round <= tn.horizon {
		return radio.ListenOn(0)
	}
	return radio.SleepAction()
}

func (tn *tourNode) Deliver(int, radio.Message) {}
func (tn *tourNode) Done() bool                 { return tn.cur >= tn.horizon }
