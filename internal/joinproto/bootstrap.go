package joinproto

import (
	"fmt"

	"dynsens/internal/core"
	"dynsens/internal/geom"
	"dynsens/internal/graph"
)

// BootstrapResult reports a full protocol-level self-construction.
type BootstrapResult struct {
	// Network is the constructed, verified network.
	Network *core.Network
	// Joins holds the per-node protocol results in insertion order.
	Joins []Result
	// TotalRounds sums every phase of every join — the complete
	// self-construction cost of Section 5's first method, measured.
	TotalRounds int
	// IncompleteDiscoveries counts joins whose discovery missed at least
	// one physical neighbor (the structure then simply lacks that edge).
	IncompleteDiscoveries int
}

// Bootstrap self-constructs a network over a deployment purely through the
// message-level node-move-in protocol: node 0 becomes the sink, and nodes
// 1..n-1 join one at a time, each first discovering its neighbors over the
// air. This is Section 5's "add nodes of G one by one into CNet(G) by
// using node-move-in", executed end to end on the radio engine.
func Bootstrap(d *geom.Deployment, cfg core.Config, seed int64) (*BootstrapResult, error) {
	if d.NumNodes() == 0 {
		return nil, fmt.Errorf("joinproto: empty deployment")
	}
	cfg.Root = 0
	net := core.New(cfg)
	res := &BootstrapResult{Network: net}
	for i := 1; i < d.NumNodes(); i++ {
		id := graph.NodeID(i)
		// Physical neighbors among already-joined nodes.
		var nbrs []graph.NodeID
		for j := 0; j < i; j++ {
			if d.Pos[i].InRange(d.Pos[j], d.Range) {
				nbrs = append(nbrs, graph.NodeID(j))
			}
		}
		if len(nbrs) == 0 {
			return nil, fmt.Errorf("joinproto: node %d hears nobody at join time (deployment not incremental-connected?)", id)
		}
		jr, err := Join(net, id, nbrs, seed+int64(i)*131)
		if err != nil {
			return nil, fmt.Errorf("joinproto: bootstrapping node %d: %w", id, err)
		}
		res.Joins = append(res.Joins, jr)
		res.TotalRounds += jr.TotalRounds()
		if !jr.DiscoveryComplete {
			res.IncompleteDiscoveries++
		}
	}
	if err := net.Verify(); err != nil {
		return nil, fmt.Errorf("joinproto: bootstrap invariants: %w", err)
	}
	return res, nil
}
