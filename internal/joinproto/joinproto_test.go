package joinproto

import (
	"testing"
	"testing/quick"

	"dynsens/internal/cnet"
	"dynsens/internal/core"
	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func buildNetwork(t testing.TB, seed int64, n int) *core.Network {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestJoinAgainstHead(t *testing.T) {
	net := buildNetwork(t, 1, 40)
	heads := net.CNet().Heads()
	res, err := Join(net, 9999, []graph.NodeID{heads[0]}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parent != heads[0] {
		t.Fatalf("parent = %d, want head %d", res.Parent, heads[0])
	}
	if st, _ := net.CNet().Status(9999); st != cnet.Member {
		t.Fatalf("joiner status = %v", st)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.TotalRounds() <= 0 || res.DiscoveryRounds <= 0 || res.QueryRounds != 2 {
		t.Fatalf("round accounting: %s", res)
	}
}

func TestJoinPromotesMember(t *testing.T) {
	net := buildNetwork(t, 2, 60)
	members := net.CNet().Members()
	if len(members) == 0 {
		t.Skip("no members")
	}
	// Find a member whose neighborhood we will restrict to just itself.
	m := members[0]
	res, err := Join(net, 8888, []graph.NodeID{m}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parent != m {
		t.Fatalf("parent = %d, want member %d", res.Parent, m)
	}
	if st, _ := net.CNet().Status(m); st != cnet.Gateway {
		t.Fatalf("member not promoted: %v", st)
	}
	if st, _ := net.CNet().Status(8888); st != cnet.Head {
		t.Fatalf("joiner not head: %v", st)
	}
	if res.AttachRounds != 3 {
		t.Fatalf("promotion attach rounds = %d, want 3", res.AttachRounds)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMultiNeighbor(t *testing.T) {
	net := buildNetwork(t, 3, 80)
	// Join next to a random node and its whole neighborhood.
	anchor := net.CNet().Tree().Nodes()[40]
	nbrs := append([]graph.NodeID{anchor}, net.Graph().Neighbors(anchor)...)
	pre := net.Size()
	res, err := Join(net, 7777, nbrs, 11)
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != pre+1 {
		t.Fatal("join did not grow the network")
	}
	if !res.DiscoveryComplete {
		t.Skipf("discovery missed a neighbor (Monte Carlo): %s", res)
	}
	if len(res.Discovered) != len(nbrs) {
		t.Fatalf("discovered %d of %d", len(res.Discovered), len(nbrs))
	}
	// Query phase is exactly 2 rounds per neighbor.
	if res.QueryRounds != 2*len(nbrs) {
		t.Fatalf("query rounds = %d, want %d", res.QueryRounds, 2*len(nbrs))
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinErrors(t *testing.T) {
	net := buildNetwork(t, 4, 20)
	if _, err := Join(net, 0, []graph.NodeID{1}, 1); err == nil {
		t.Fatal("existing node accepted")
	}
	if _, err := Join(net, 555, nil, 1); err == nil {
		t.Fatal("no neighbors accepted")
	}
	if _, err := Join(net, 555, []graph.NodeID{4242}, 1); err == nil {
		t.Fatal("unknown neighbor accepted")
	}
}

func TestJoinRoundsScaleWithDegree(t *testing.T) {
	total := func(nNbrs int) int {
		net := buildNetwork(t, 6, 100)
		// Use the root's neighborhood truncated to nNbrs.
		nbrs := append([]graph.NodeID{net.Root()}, net.Graph().Neighbors(net.Root())...)
		if len(nbrs) < nNbrs {
			t.Skipf("root degree too small (%d)", len(nbrs))
		}
		res, err := Join(net, 6666, nbrs[:nNbrs], 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.DiscoveryRounds + res.QueryRounds
	}
	small := total(1)
	large := total(6)
	if large <= small {
		t.Fatalf("rounds did not grow with degree: %d vs %d", small, large)
	}
}

// Property: protocol joins on random networks keep every invariant, and
// the protocol's Definition-1 decision matches the structural layer's.
func TestJoinProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, anchorRaw uint8) bool {
		n := int(nRaw%50) + 5
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
		if err != nil {
			return false
		}
		net, err := core.Build(d.Graph(), core.Config{})
		if err != nil {
			return false
		}
		anchor := graph.NodeID(int(anchorRaw) % n)
		nbrs := append([]graph.NodeID{anchor}, net.Graph().Neighbors(anchor)...)
		res, err := Join(net, graph.NodeID(n+100), nbrs, seed)
		if err != nil {
			return false
		}
		if p, ok := net.CNet().Tree().Parent(graph.NodeID(n + 100)); !ok || p != res.Parent {
			return false
		}
		return net.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
