package joinproto

import (
	"testing"

	"dynsens/internal/graph"
)

func safeVictim(t *testing.T, net interface {
	Root() graph.NodeID
	Graph() *graph.Graph
}, nodes []graph.NodeID, wantSubtree bool, tree interface {
	Subtree(graph.NodeID) []graph.NodeID
}) (graph.NodeID, bool) {
	t.Helper()
	for i := len(nodes) - 1; i >= 0; i-- {
		id := nodes[i]
		if id == net.Root() {
			continue
		}
		if wantSubtree && len(tree.Subtree(id)) < 2 {
			continue
		}
		g := net.Graph().Clone()
		g.RemoveNode(id)
		if g.Connected() {
			return id, true
		}
	}
	return 0, false
}

func TestLeaveLeaf(t *testing.T) {
	net := buildNetwork(t, 31, 60)
	victim, ok := safeVictim(t, net, net.CNet().Tree().Nodes(), false, net.CNet().Tree())
	if !ok {
		t.Skip("no safe victim")
	}
	isLeaf := net.CNet().Tree().IsLeaf(victim)
	res, err := Leave(net, victim)
	if err != nil {
		t.Fatal(err)
	}
	if net.Contains(victim) {
		t.Fatal("node still present")
	}
	if isLeaf && res.Subtree != 1 {
		t.Fatalf("leaf subtree = %d", res.Subtree)
	}
	if res.TourRounds != 2*(res.Subtree-1)+1 {
		t.Fatalf("tour rounds %d for |T|=%d", res.TourRounds, res.Subtree)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveInternalSubtree(t *testing.T) {
	// Find a seed/victim with a real subtree.
	for seed := int64(1); seed < 12; seed++ {
		net := buildNetwork(t, seed, 70)
		victim, ok := safeVictim(t, net, net.CNet().Tree().Nodes(), true, net.CNet().Tree())
		if !ok {
			continue
		}
		size := net.Size()
		sub := len(net.CNet().Tree().Subtree(victim))
		res, err := Leave(net, victim)
		if err != nil {
			t.Fatal(err)
		}
		if res.Subtree != sub {
			t.Fatalf("subtree = %d, want %d", res.Subtree, sub)
		}
		if net.Size() != size-1 {
			t.Fatalf("size = %d, want %d", net.Size(), size-1)
		}
		if res.StructuralRounds <= 0 {
			t.Fatalf("no structural cost: %s", res)
		}
		if err := net.Verify(); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Skip("no seed with a removable internal subtree")
}

func TestLeaveAnnounceDepth(t *testing.T) {
	net := buildNetwork(t, 33, 60)
	tr := net.CNet().Tree()
	victim, ok := safeVictim(t, net, tr.Nodes(), false, tr)
	if !ok {
		t.Skip("no safe victim")
	}
	depth := tr.Depth(victim)
	res, err := Leave(net, victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnnounceRounds != depth {
		t.Fatalf("announce rounds %d, want depth %d", res.AnnounceRounds, depth)
	}
}

func TestLeaveErrors(t *testing.T) {
	net := buildNetwork(t, 34, 20)
	if _, err := Leave(net, 4242); err == nil {
		t.Fatal("absent node accepted")
	}
}

func TestJoinThenLeaveRoundTrip(t *testing.T) {
	net := buildNetwork(t, 35, 50)
	anchor := net.Root()
	nbrs := append([]graph.NodeID{anchor}, net.Graph().Neighbors(anchor)...)
	if _, err := Join(net, 5050, nbrs, 9); err != nil {
		t.Fatal(err)
	}
	res, err := Leave(net, 5050)
	if err != nil {
		t.Fatal(err)
	}
	if net.Contains(5050) || res.Removed != 5050 {
		t.Fatalf("round trip failed: %s", res)
	}
	if err := net.Verify(); err != nil {
		t.Fatal(err)
	}
}
