// Package joinproto executes node-move-in as an actual over-the-air
// message exchange on the radio engine, the way Section 5.1 describes it
// running on real sensors:
//
//	phase 1  neighbor discovery — the randomized decay handshake
//	         (internal/discovery), O(d_new) expected rounds;
//	phase 2  knowledge collection — the joiner polls each discovered
//	         neighbor in turn for its status and depth (2 rounds per
//	         neighbor, collision-free because the joiner serializes);
//	phase 3  attach — the joiner applies Definition 1 locally, announces
//	         its chosen parent, and the parent acknowledges (promoting
//	         itself member->gateway when rule (c) fires, with a notice to
//	         its own head);
//	phase 4  knowledge (II) maintenance — time-slot recalculation and the
//	         height/delta reports to the root, charged through the
//	         structural layer's Lemma 2 / Theorem 2 accounting.
//
// The structural outcome is then applied through core.Network.Join using
// exactly the neighbor set the radio discovered — if discovery missed a
// neighbor (a Monte Carlo event), the structure honestly reflects that,
// just like a real deployment would.
package joinproto

import (
	"fmt"

	"dynsens/internal/cnet"
	"dynsens/internal/core"
	"dynsens/internal/discovery"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// Message kinds for phases 2-3, carried in radio.Message.Depth.
const (
	msgQuery   = 11
	msgInfo    = 12
	msgAttach  = 13
	msgAck     = 14
	msgPromote = 15
)

// Result reports a protocol join.
type Result struct {
	// Parent is the node chosen by Definition 1 over the discovered set.
	Parent graph.NodeID
	// Discovered lists the neighbors found in phase 1, ascending.
	Discovered []graph.NodeID
	// DiscoveryComplete is true when phase 1 found every true neighbor.
	DiscoveryComplete bool
	// Phase round counts, measured on the engine (phases 1-3) or charged
	// per Lemma 2 / Theorem 2 (phase 4).
	DiscoveryRounds int
	QueryRounds     int
	AttachRounds    int
	SlotRounds      int
	HeightRounds    int
}

// TotalRounds sums all phases.
func (r Result) TotalRounds() int {
	return r.DiscoveryRounds + r.QueryRounds + r.AttachRounds + r.SlotRounds + r.HeightRounds
}

// String renders a summary.
func (r Result) String() string {
	return fmt.Sprintf("join: parent=%d neighbors=%d complete=%v rounds: discover=%d query=%d attach=%d slots=%d height=%d (total %d)",
		r.Parent, len(r.Discovered), r.DiscoveryComplete,
		r.DiscoveryRounds, r.QueryRounds, r.AttachRounds, r.SlotRounds, r.HeightRounds, r.TotalRounds())
}

// neighborInfo is what phase 2 learns per neighbor.
type neighborInfo struct {
	status cnet.Status
	depth  int
}

// Join runs the full protocol for a new node id whose radio can physically
// reach trueNeighbors, then applies the structural join. The network is
// mutated on success.
func Join(net *core.Network, id graph.NodeID, trueNeighbors []graph.NodeID, seed int64) (Result, error) {
	if net.Contains(id) {
		return Result{}, fmt.Errorf("joinproto: node %d already present", id)
	}
	if len(trueNeighbors) == 0 {
		return Result{}, fmt.Errorf("joinproto: node %d hears nobody", id)
	}
	for _, n := range trueNeighbors {
		if !net.Contains(n) {
			return Result{}, fmt.Errorf("joinproto: neighbor %d not in network", n)
		}
	}

	// Physical graph for the episode: the network plus the joiner's links.
	g := net.Graph().Clone()
	g.AddNode(id)
	for _, n := range trueNeighbors {
		if err := g.AddEdge(id, n); err != nil {
			return Result{}, err
		}
	}

	var res Result

	// Phase 1: discovery.
	disc, err := discovery.Run(g, id, discovery.Options{Seed: seed})
	if err != nil {
		return Result{}, err
	}
	if len(disc.Discovered) == 0 {
		return Result{}, fmt.Errorf("joinproto: discovery found no neighbors for %d", id)
	}
	res.Discovered = disc.Discovered
	res.DiscoveryComplete = disc.Complete
	res.DiscoveryRounds = disc.Rounds

	// Phase 2: poll each discovered neighbor for status and depth.
	info, rounds, err := queryPhase(net, g, id, disc.Discovered)
	if err != nil {
		return Result{}, err
	}
	res.QueryRounds = rounds

	// Phase 3: Definition 1 over the gathered knowledge; attach exchange.
	parent := chooseParent(info)
	res.Parent = parent
	attachRounds, err := attachPhase(net, g, id, parent, info[parent].status == cnet.Member)
	if err != nil {
		return Result{}, err
	}
	res.AttachRounds = attachRounds

	// Phase 4: structural application + knowledge (II) maintenance, using
	// exactly what the radio discovered.
	pre := net.Stats()
	if err := net.Join(id, disc.Discovered); err != nil {
		return Result{}, fmt.Errorf("joinproto: structural join: %w", err)
	}
	post := net.Stats()
	res.SlotRounds = post.SlotRounds - pre.SlotRounds
	res.HeightRounds = 2 * post.Height

	// Cross-check: the structural layer must agree with the protocol's
	// parent decision (same rules, same candidate set, same policy).
	if p, ok := net.CNet().Tree().Parent(id); !ok || p != parent {
		return Result{}, fmt.Errorf("joinproto: protocol chose parent %d but structure has %v", parent, p)
	}
	return res, nil
}

// chooseParent applies Definition 1 with the default lowest-ID policy over
// the neighbor knowledge.
func chooseParent(info map[graph.NodeID]neighborInfo) graph.NodeID {
	best := graph.NodeID(-1)
	bestClass := 3
	class := func(s cnet.Status) int {
		switch s {
		case cnet.Head:
			return 0
		case cnet.Gateway:
			return 1
		default:
			return 2
		}
	}
	for id, ni := range info {
		c := class(ni.status)
		if c < bestClass || (c == bestClass && (best == -1 || id < best)) {
			best, bestClass = id, c
		}
	}
	return best
}

// queryPhase runs 2 rounds per neighbor: QUERY(Dst=u) then u's INFO reply.
func queryPhase(net *core.Network, g *graph.Graph, id graph.NodeID, nbrs []graph.NodeID) (map[graph.NodeID]neighborInfo, int, error) {
	progs := make(map[graph.NodeID]radio.Program, g.NumNodes())
	j := &queryJoiner{id: id, targets: nbrs, info: make(map[graph.NodeID]neighborInfo)}
	progs[id] = j
	depths := net.CNet().Tree().DepthMap()
	for _, nid := range g.Nodes() {
		if nid == id {
			continue
		}
		if g.HasEdge(nid, id) {
			st, _ := net.CNet().Status(nid)
			progs[nid] = &queryResponder{id: nid, status: st, depth: depths[nid], horizon: 2 * len(nbrs)}
		} else {
			progs[nid] = idle{}
		}
	}
	eng, err := radio.NewEngine(g, progs)
	if err != nil {
		return nil, 0, err
	}
	r := eng.Run(2 * len(nbrs))
	if len(j.info) != len(nbrs) {
		return nil, 0, fmt.Errorf("joinproto: query phase heard %d/%d neighbors", len(j.info), len(nbrs))
	}
	return j.info, r.Rounds, nil
}

// queryJoiner, queryResponder, attachNode and idle (plus leaveproto's
// tourNode) run on the radio engine and honor the radio.Program contract:
// every field is node-private or written only at build time, and each
// Done is a pure monotone threshold on the node's own round counter.
// Enforced statically by dynlint/progpurity via these assertions.
var (
	_ radio.Program = (*queryJoiner)(nil)
	_ radio.Program = (*queryResponder)(nil)
	_ radio.Program = (*attachNode)(nil)
	_ radio.Program = idle{}
)

type queryJoiner struct {
	id      graph.NodeID
	targets []graph.NodeID
	info    map[graph.NodeID]neighborInfo
	cur     int
}

func (q *queryJoiner) Act(round int) radio.Action {
	q.cur = round
	i := (round - 1) / 2
	if i >= len(q.targets) {
		return radio.SleepAction()
	}
	if round%2 == 1 {
		return radio.TransmitOn(0, radio.Message{Seq: msgQuery, Depth: msgQuery, Src: q.id, Dst: q.targets[i]})
	}
	return radio.ListenOn(0)
}

func (q *queryJoiner) Deliver(_ int, msg radio.Message) {
	if msg.Depth != msgInfo {
		return
	}
	q.info[msg.From] = neighborInfo{status: cnet.Status(msg.Slot), depth: msg.MaxSlot}
}

func (q *queryJoiner) Done() bool { return q.cur >= 2*len(q.targets) }

type queryResponder struct {
	id      graph.NodeID
	status  cnet.Status
	depth   int
	horizon int
	queried bool
	cur     int
}

func (q *queryResponder) Act(round int) radio.Action {
	q.cur = round
	if round > q.horizon {
		return radio.SleepAction()
	}
	if q.queried {
		q.queried = false
		return radio.TransmitOn(0, radio.Message{
			Seq: msgInfo, Depth: msgInfo, Src: q.id,
			Slot: int(q.status), MaxSlot: q.depth,
		})
	}
	return radio.ListenOn(0)
}

func (q *queryResponder) Deliver(_ int, msg radio.Message) {
	if msg.Depth == msgQuery && msg.Dst == q.id {
		q.queried = true
	}
}

func (q *queryResponder) Done() bool { return q.cur >= q.horizon }

// attachPhase runs the ATTACH / ACK (/ PROMOTE) exchange.
func attachPhase(net *core.Network, g *graph.Graph, id, parent graph.NodeID, promotes bool) (int, error) {
	rounds := 2
	if promotes {
		rounds = 3
	}
	progs := make(map[graph.NodeID]radio.Program, g.NumNodes())
	joiner := &attachNode{id: id, txAt: 1, txMsg: radio.Message{Seq: msgAttach, Depth: msgAttach, Src: id, Dst: parent}, horizon: rounds}
	progs[id] = joiner
	par := &attachNode{id: parent, txAt: 2, txMsg: radio.Message{Seq: msgAck, Depth: msgAck, Src: parent, Dst: id}, horizon: rounds}
	progs[parent] = par
	var headOfParent graph.NodeID = radio.NoNode
	if promotes {
		if hp, ok := net.CNet().Tree().Parent(parent); ok {
			headOfParent = hp
			par.tx2At = 3
			par.tx2Msg = radio.Message{Seq: msgPromote, Depth: msgPromote, Src: parent, Dst: hp}
		}
	}
	for _, nid := range g.Nodes() {
		if _, ok := progs[nid]; ok {
			continue
		}
		if nid == headOfParent {
			progs[nid] = &attachNode{id: nid, horizon: rounds} // listens for the promote notice
			continue
		}
		progs[nid] = idle{}
	}
	eng, err := radio.NewEngine(g, progs)
	if err != nil {
		return 0, err
	}
	eng.Run(rounds)
	if !joiner.heardAck {
		return 0, fmt.Errorf("joinproto: no ACK from parent %d", parent)
	}
	return rounds, nil
}

type attachNode struct {
	id       graph.NodeID
	txAt     int
	txMsg    radio.Message
	tx2At    int
	tx2Msg   radio.Message
	horizon  int
	heardAck bool
	cur      int
}

func (a *attachNode) Act(round int) radio.Action {
	a.cur = round
	switch round {
	case a.txAt:
		if a.txAt > 0 {
			return radio.TransmitOn(0, a.txMsg)
		}
	case a.tx2At:
		if a.tx2At > 0 {
			return radio.TransmitOn(0, a.tx2Msg)
		}
	}
	if round <= a.horizon {
		return radio.ListenOn(0)
	}
	return radio.SleepAction()
}

func (a *attachNode) Deliver(_ int, msg radio.Message) {
	if msg.Depth == msgAck && msg.Dst == a.id {
		a.heardAck = true
	}
}

func (a *attachNode) Done() bool { return a.cur >= a.horizon }

// idle is a non-participant.
type idle struct{}

func (idle) Act(int) radio.Action       { return radio.SleepAction() }
func (idle) Deliver(int, radio.Message) {}
func (idle) Done() bool                 { return true }
