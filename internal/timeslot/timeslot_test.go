package timeslot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func buildNet(t testing.TB, seed int64, n int) *cnet.CNet {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSingleNodeNetwork(t *testing.T) {
	c := cnet.New(0, nil)
	a := New(c, ConditionStrict)
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if a.Delta() != 0 || a.SmallDelta() != 0 {
		t.Fatalf("slots on singleton: Delta=%d delta=%d", a.Delta(), a.SmallDelta())
	}
}

func TestRootWithMembers(t *testing.T) {
	c := cnet.New(0, nil)
	for i := 1; i <= 3; i++ {
		if _, _, err := c.MoveIn(graph.NodeID(i), []graph.NodeID{0}); err != nil {
			t.Fatal(err)
		}
	}
	a := New(c, ConditionStrict)
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	// Root is the only head with members: it needs an l-slot and a u-slot
	// but no b-slot (no backbone children).
	if _, ok := a.Slot(L, 0); !ok {
		t.Fatal("root lacks l-slot")
	}
	if _, ok := a.Slot(U, 0); !ok {
		t.Fatal("root lacks u-slot")
	}
	if _, ok := a.Slot(B, 0); ok {
		t.Fatal("root has spurious b-slot")
	}
	// Members hold no slots.
	for i := 1; i <= 3; i++ {
		for _, k := range []Kind{B, L, U} {
			if _, ok := a.Slot(k, graph.NodeID(i)); ok {
				t.Fatalf("member %d holds %v", i, k)
			}
		}
	}
}

func TestAssignAllVerifiesOnPaperNetworks(t *testing.T) {
	for _, n := range []int{10, 60, 150} {
		for _, cond := range []Condition{ConditionStrict, ConditionPaper} {
			c := buildNet(t, int64(n)+int64(cond)*97, n)
			a := New(c, cond)
			if err := a.Verify(); err != nil {
				t.Fatalf("n=%d cond=%v: %v", n, cond, err)
			}
			if err := a.CheckBounds(); err != nil {
				t.Fatalf("n=%d cond=%v: %v", n, cond, err)
			}
		}
	}
}

func TestDesignatedIsUniqueAndAdjacent(t *testing.T) {
	c := buildNet(t, 9, 80)
	a := New(c, ConditionStrict)
	g := c.Graph()
	for _, v := range c.Tree().Nodes() {
		for _, k := range []Kind{B, L, U} {
			if !a.IsReceiver(k, v) {
				continue
			}
			u, slot, ok := a.Designated(k, v)
			if !ok {
				t.Fatalf("no designated %v transmitter for %d", k, v)
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("designated %d not adjacent to %d", u, v)
			}
			if s, _ := a.Slot(k, u); s != slot {
				t.Fatalf("designated slot mismatch for %d", v)
			}
			// Uniqueness within the interference set.
			n := 0
			for _, w := range a.InterferenceSet(k, v) {
				if s, _ := a.Slot(k, w); s == slot {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("designated slot of %d appears %d times", v, n)
			}
		}
	}
}

func TestInterferenceSetContainsParent(t *testing.T) {
	c := buildNet(t, 21, 60)
	a := New(c, ConditionStrict)
	for _, v := range c.Tree().Nodes() {
		p, ok := c.Tree().Parent(v)
		if !ok {
			continue
		}
		for _, k := range []Kind{B, L, U} {
			if !a.IsReceiver(k, v) || !a.IsTransmitter(k, p) {
				continue
			}
			found := false
			for _, u := range a.InterferenceSet(k, v) {
				if u == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("parent %d missing from %v interference set of %d", p, k, v)
			}
		}
	}
}

func TestStrictSupersetOfPaperForL(t *testing.T) {
	c := buildNet(t, 33, 120)
	strict := New(c, ConditionStrict)
	paper := New(c, ConditionPaper)
	for _, v := range c.Members() {
		ps := paper.InterferenceSet(L, v)
		ss := strict.InterferenceSet(L, v)
		if len(ss) < len(ps) {
			t.Fatalf("strict set smaller than paper set for %d", v)
		}
		in := make(map[graph.NodeID]bool)
		for _, u := range ss {
			in[u] = true
		}
		for _, u := range ps {
			if !in[u] {
				t.Fatalf("paper member %d missing from strict set of %d", u, v)
			}
		}
	}
}

func TestOnJoinIncremental(t *testing.T) {
	c := cnet.New(0, nil)
	a := New(c, ConditionStrict)
	d, err := workload.IncrementalConnected(workload.PaperConfig(5, 8, 60))
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph()
	// Insert nodes one at a time, updating slots incrementally after each.
	order := g.BFS(0).Order
	for _, id := range order[1:] {
		var nbrs []graph.NodeID
		for _, nb := range g.Neighbors(id) {
			if c.Contains(nb) {
				nbrs = append(nbrs, nb)
			}
		}
		if _, _, err := c.MoveIn(id, nbrs); err != nil {
			t.Fatal(err)
		}
		if err := a.OnJoin(id); err != nil {
			t.Fatal(err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("after join of %d: %v", id, err)
		}
	}
	if err := a.CheckBounds(); err != nil {
		t.Fatal(err)
	}
	if a.Rounds() <= 0 || a.Recalcs() <= 0 {
		t.Fatalf("no maintenance cost recorded: rounds=%d recalcs=%d", a.Rounds(), a.Recalcs())
	}
}

func TestOnJoinUnknownNode(t *testing.T) {
	c := cnet.New(0, nil)
	a := New(c, ConditionStrict)
	if err := a.OnJoin(42); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestOnMoveOut(t *testing.T) {
	c := buildNet(t, 13, 50)
	a := New(c, ConditionStrict)
	rng := rand.New(rand.NewSource(13))
	removed := 0
	for k := 0; k < 10 && c.Size() > 3; k++ {
		nodes := c.Tree().Nodes()
		victim := nodes[rng.Intn(len(nodes))]
		if victim == c.Root() {
			continue
		}
		res := c.Graph().Clone()
		res.RemoveNode(victim)
		if !res.Connected() {
			continue
		}
		rec, _, err := c.MoveOut(victim)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.OnMoveOut(rec); err != nil {
			t.Fatal(err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("after move-out of %d: %v", victim, err)
		}
		removed++
	}
	if removed == 0 {
		t.Skip("no removable nodes in this seed")
	}
}

func TestOnMoveOutRootRebuild(t *testing.T) {
	c := buildNet(t, 3, 40)
	res := c.Graph().Clone()
	res.RemoveNode(c.Root())
	if !res.Connected() {
		t.Skip("seed yields cut-vertex root")
	}
	a := New(c, ConditionStrict)
	rec, _, err := c.MoveOut(c.Root())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.OnMoveOut(rec); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOnCrash(t *testing.T) {
	c := buildNet(t, 61, 60)
	a := New(c, ConditionStrict)
	// Crash two non-root nodes.
	var dead []graph.NodeID
	for _, id := range c.Tree().Nodes() {
		if id != c.Root() && len(dead) < 2 {
			dead = append(dead, id)
		}
	}
	rec, _, err := c.RemoveCrashed(dead)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.OnCrash(rec); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("slots after crash: %v", err)
	}
	// No stale entries for departed nodes.
	for _, k := range []Kind{B, L, U} {
		for _, d := range dead {
			if _, ok := a.Slot(k, d); ok {
				t.Fatalf("dead node %d still holds a %v", d, k)
			}
		}
	}
}

func TestOnCrashRootReplaced(t *testing.T) {
	c := buildNet(t, 62, 50)
	a := New(c, ConditionStrict)
	rec, _, err := c.RemoveCrashed([]graph.NodeID{c.Root()})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.RootReplaced {
		t.Fatal("root not replaced")
	}
	if err := a.OnCrash(rec); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckBounds(); err != nil {
		t.Fatal(err)
	}
}

func TestConditionModeAccessor(t *testing.T) {
	c := cnet.New(0, nil)
	if New(c, ConditionPaper).ConditionMode() != ConditionPaper {
		t.Fatal("condition mode lost")
	}
	if New(c, ConditionStrict).Net() != c {
		t.Fatal("net accessor wrong")
	}
}

func TestLemma3BoundsAndSimulationClaim(t *testing.T) {
	// Section 6 observes that measured delta and Delta are far below the
	// Lemma 3 bounds (and in simulation even below d and D themselves).
	c := buildNet(t, 77, 200)
	a := New(c, ConditionStrict)
	st := c.ComputeStats()
	if a.SmallDelta() > st.DegreeBT*(st.DegreeBT+1)/2+1 {
		t.Fatalf("delta=%d exceeds Lemma 3 bound for d=%d", a.SmallDelta(), st.DegreeBT)
	}
	if a.Delta() > st.DegreeG*(st.DegreeG+1)/2+1 {
		t.Fatalf("Delta=%d exceeds Lemma 3 bound for D=%d", a.Delta(), st.DegreeG)
	}
}

func TestKindString(t *testing.T) {
	if B.String() != "b-time-slot" || L.String() != "l-time-slot" || U.String() != "u-time-slot" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should format")
	}
}

func TestMaxOnEmptyKind(t *testing.T) {
	c := cnet.New(0, nil)
	a := New(c, ConditionStrict)
	if a.Max(B) != 0 {
		t.Fatalf("Max(B) = %d on empty", a.Max(B))
	}
}

// Property: for random paper deployments under both conditions, assignment
// verifies, respects Lemma 3 bounds, and incremental joins preserve both.
func TestAssignmentProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, strict bool) bool {
		n := int(nRaw%60) + 2
		cond := ConditionPaper
		if strict {
			cond = ConditionStrict
		}
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
		if err != nil {
			return false
		}
		c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
		if err != nil {
			return false
		}
		a := New(c, cond)
		if a.Verify() != nil || a.CheckBounds() != nil {
			return false
		}
		// One incremental join at a random position.
		g := d.Graph()
		rng := rand.New(rand.NewSource(seed))
		anchor := graph.NodeID(rng.Intn(n))
		id := graph.NodeID(n + 1000)
		nbrs := []graph.NodeID{anchor}
		for _, nb := range g.Neighbors(anchor) {
			nbrs = append(nbrs, nb)
		}
		if _, _, err := c.MoveIn(id, nbrs); err != nil {
			return false
		}
		if err := a.OnJoin(id); err != nil {
			return false
		}
		return a.Verify() == nil && a.CheckBounds() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignAllRecomputesFromScratch(t *testing.T) {
	c := buildNet(t, 17, 90)
	a := New(c, ConditionStrict)

	// Churn the structure so the incremental state has history, then
	// recompute everything from scratch: Lemma 2's conditions must hold
	// again, and a second AssignAll must reproduce identical slots
	// (the recomputation is deterministic).
	nodes := c.Tree().Nodes()
	for _, id := range nodes[len(nodes)-5:] {
		if id == c.Root() {
			continue
		}
		res := c.Graph().Clone()
		res.RemoveNode(id)
		if !res.Connected() {
			continue
		}
		rec, _, err := c.MoveOut(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.OnMoveOut(rec); err != nil {
			t.Fatal(err)
		}
	}
	a.AssignAll()
	if err := a.Verify(); err != nil {
		t.Fatalf("after AssignAll: %v", err)
	}
	if err := a.CheckBounds(); err != nil {
		t.Fatalf("after AssignAll: %v", err)
	}
	snap := make(map[graph.NodeID][3]int)
	for _, id := range c.Tree().Nodes() {
		var s [3]int
		for i, k := range []Kind{B, L, U} {
			s[i] = -1
			if v, ok := a.Slot(k, id); ok {
				s[i] = v
			}
		}
		snap[id] = s
	}
	a.AssignAll()
	for _, id := range c.Tree().Nodes() {
		for i, k := range []Kind{B, L, U} {
			v, ok := a.Slot(k, id)
			if !ok {
				v = -1
			}
			if v != snap[id][i] {
				t.Fatalf("node %d %v slot changed across AssignAll: %d vs %d", id, k, snap[id][i], v)
			}
		}
	}
}
