package timeslot

import (
	"testing"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
)

// FuzzUpdateTimeSlot drives the incremental slot-update procedures
// (Algorithm 3's OnJoin, OnMoveOut) through arbitrary join/leave sequences
// decoded from fuzz bytes, in both condition modes, and asserts
// collision-freedom (the Time-Slot Conditions, via Verify) and the Lemma 3
// size bounds after every single step — the paper's claim is precisely
// that the conditions are an invariant of the update procedures, not just
// of bulk construction.
func FuzzUpdateTimeSlot(f *testing.F) {
	f.Add(byte(0), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(byte(1), []byte{0, 0, 0, 0x85, 1, 1, 0x90, 2})
	f.Add(byte(0), []byte{7, 3, 0xff, 5, 0x80, 9, 0xa0, 2, 2, 0xc0})
	f.Fuzz(func(t *testing.T, mode byte, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		cond := ConditionStrict
		if mode%2 == 1 {
			cond = ConditionPaper
		}
		c := cnet.New(0, nil)
		a := New(c, cond)
		next := graph.NodeID(1)
		for _, op := range ops {
			if op < 0x80 || c.Size() <= 2 {
				// Join next to an anchor selected by op, plus a subset of
				// the anchor's neighbors so degrees keep growing.
				nodes := c.Tree().Nodes()
				anchor := nodes[int(op)%len(nodes)]
				nbrs := []graph.NodeID{anchor}
				for i, nb := range c.Graph().Neighbors(anchor) {
					if i%2 == int(op)%2 {
						nbrs = append(nbrs, nb)
					}
				}
				if _, _, err := c.MoveIn(next, nbrs); err != nil {
					t.Fatalf("join %d: %v", next, err)
				}
				if err := a.OnJoin(next); err != nil {
					t.Fatalf("slots after join %d: %v", next, err)
				}
				next++
			} else {
				// Leave a safe (non-root, non-cut) node chosen from op.
				nodes := c.Tree().Nodes()
				removed := false
				for k := 0; k < len(nodes); k++ {
					cand := nodes[(int(op)+k)%len(nodes)]
					if cand == c.Root() {
						continue
					}
					res := c.Graph().Clone()
					res.RemoveNode(cand)
					if !res.Connected() {
						continue
					}
					rec, _, err := c.MoveOut(cand)
					if err != nil {
						t.Fatalf("leave %d: %v", cand, err)
					}
					if err := a.OnMoveOut(rec); err != nil {
						t.Fatalf("slots after leave %d: %v", cand, err)
					}
					removed = true
					break
				}
				if !removed {
					continue
				}
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("collision-freedom after step: %v", err)
			}
			if err := a.CheckBounds(); err != nil {
				t.Fatalf("lemma 3 bounds after step: %v", err)
			}
		}
	})
}
