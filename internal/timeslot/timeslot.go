// Package timeslot implements Section 4 of the paper: the assignment of
// transmission time-slots to the nodes of CNet(G) so that the
// collision-free-flooding broadcasts of Section 3 work under the no-
// collision-detection radio model.
//
// Three slot kinds are maintained:
//
//   - b-time-slots, held by backbone nodes that transmit during the
//     backbone flooding step of Algorithm 2 (internal nodes of BT(G));
//   - l-time-slots, held by cluster heads that deliver the payload to
//     their pure members in Algorithm 2's final step;
//   - u-time-slots ("uniform"), held by every internal node of CNet(G),
//     used by the plain Algorithm 1 that floods CNet(G) depth by depth.
//
// Slots are 1-based. A receiver v is guaranteed collision-free reception
// when at least one transmitter it can hear holds a slot that is unique
// among all transmitters v can hear during the same window (Time-Slot
// Conditions 1 and 2). The package supports the paper's literal condition
// (interference restricted to the parent depth, ConditionPaper) and a
// strict condition closing the cross-depth interference gap of Algorithm
// 2's final step (ConditionStrict, the default; see DESIGN.md §5).
//
// Assignment is incremental: OnJoin implements Algorithm 3's local update
// after node-move-in, OnMoveOut re-establishes the conditions after
// node-move-out, and every recalculation is charged its Procedure-1 round
// cost (Lemma 2) so reconfiguration experiments can report maintenance
// rounds.
package timeslot

import (
	"fmt"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/obs"
)

// Condition selects which interference sets l-slots must satisfy.
type Condition int

const (
	// ConditionStrict guards a member against every head it can hear,
	// regardless of depth, because in Algorithm 2 all heads transmit to
	// their members inside one shared window.
	ConditionStrict Condition = iota
	// ConditionPaper is the paper's literal Time-Slot Condition 2: only
	// heads at the member's parent depth are considered.
	ConditionPaper
)

// Kind identifies a slot family.
type Kind int

const (
	// B is the backbone-flooding slot.
	B Kind = iota
	// L is the head-to-members slot.
	L
	// U is the uniform CNet-flooding slot of Algorithm 1.
	U
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case B:
		return "b-time-slot"
	case L:
		return "l-time-slot"
	case U:
		return "u-time-slot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Assignment binds time-slots to a CNet and keeps them valid across
// topology changes.
type Assignment struct {
	net  *cnet.CNet
	cond Condition
	slot map[Kind]map[graph.NodeID]int

	// rounds is the accumulated maintenance cost in protocol rounds: each
	// Procedure-1 recalculation for node y costs 1 + |C(y)| rounds (one
	// request plus the replies in turn, Lemma 2).
	rounds int
	// recalcs counts slot recalculations.
	recalcs int

	// Scratch buffers reused across hot-path queries so steady-state
	// condition checks (Designated, Verify, the broadcast planners via
	// AppendInterferenceSet) allocate nothing once warm. setBuf backs
	// Designated; calculate owns audBuf/calcSetBuf/slotBuf/forbidden.
	setBuf     []graph.NodeID
	audBuf     []graph.NodeID
	calcSetBuf []graph.NodeID
	slotBuf    []int
	forbidden  map[int]struct{}
}

// New creates an assignment for net and computes slots for the current
// structure.
func New(net *cnet.CNet, cond Condition) *Assignment {
	a := &Assignment{
		net:  net,
		cond: cond,
		slot: map[Kind]map[graph.NodeID]int{
			B: make(map[graph.NodeID]int),
			L: make(map[graph.NodeID]int),
			U: make(map[graph.NodeID]int),
		},
	}
	a.AssignAll()
	return a
}

// Net returns the bound CNet.
func (a *Assignment) Net() *cnet.CNet { return a.net }

// ConditionMode returns the active condition.
func (a *Assignment) ConditionMode() Condition { return a.cond }

// Rounds returns the accumulated maintenance round cost.
func (a *Assignment) Rounds() int { return a.rounds }

// Recalcs returns the number of slot recalculations performed.
func (a *Assignment) Recalcs() int { return a.recalcs }

// Slot returns the slot of the given kind for id.
func (a *Assignment) Slot(k Kind, id graph.NodeID) (int, bool) {
	s, ok := a.slot[k][id]
	return s, ok
}

// Max returns the largest assigned slot of kind k; the paper's delta is
// Max(B) and Delta is Max(L). Returns 0 when no slots of that kind exist.
func (a *Assignment) Max(k Kind) int {
	m := 0
	for _, s := range a.slot[k] {
		if s > m {
			m = s
		}
	}
	return m
}

// Delta returns the largest l-time-slot (the paper's capital Delta).
func (a *Assignment) Delta() int { return a.Max(L) }

// SmallDelta returns the largest b-time-slot (the paper's small delta).
func (a *Assignment) SmallDelta() int { return a.Max(B) }

// --- transmitter / receiver roles ------------------------------------------

// IsTransmitter reports whether id transmits in the window of kind k.
func (a *Assignment) IsTransmitter(k Kind, id graph.NodeID) bool {
	tr := a.net.Tree()
	st, ok := a.net.Status(id)
	if !ok {
		return false
	}
	switch k {
	case B:
		// Internal nodes of BT(G): backbone nodes with backbone children.
		if st == cnet.Member {
			return false
		}
		for _, c := range tr.Children(id) {
			if cs, _ := a.net.Status(c); cs != cnet.Member {
				return true
			}
		}
		return false
	case L:
		// Heads that own at least one pure member.
		if st != cnet.Head {
			return false
		}
		for _, c := range tr.Children(id) {
			if cs, _ := a.net.Status(c); cs == cnet.Member {
				return true
			}
		}
		return false
	case U:
		// Every internal node of CNet(G).
		return !tr.IsLeaf(id)
	default:
		return false
	}
}

// IsReceiver reports whether id must be able to receive in windows of
// kind k.
func (a *Assignment) IsReceiver(k Kind, id graph.NodeID) bool {
	st, ok := a.net.Status(id)
	if !ok {
		return false
	}
	switch k {
	case B:
		// Every non-root backbone node receives during backbone flooding.
		return st != cnet.Member && id != a.net.Root()
	case L:
		// Every pure member receives in the leaf-delivery window.
		return st == cnet.Member
	case U:
		// Every non-root node receives during plain CNet flooding.
		return id != a.net.Root()
	default:
		return false
	}
}

// InterferenceSet returns the transmitters of kind k that receiver v can
// hear during k's window: for B and U these are transmitters at v's parent
// depth adjacent to v in G (only that depth transmits simultaneously); for
// L it depends on the condition mode — ConditionStrict considers every
// adjacent L-transmitter, ConditionPaper only those at v's parent depth.
// The result is ascending, always contains v's CNet parent when the parent
// transmits in kind k, and is freshly allocated; hot paths should use
// AppendInterferenceSet with a reused buffer instead.
func (a *Assignment) InterferenceSet(k Kind, v graph.NodeID) []graph.NodeID {
	return a.AppendInterferenceSet(nil, k, v)
}

// AppendInterferenceSet appends v's interference set of kind k to dst and
// returns the extended slice — the allocation-free form of InterferenceSet
// used by the per-round broadcast planners.
//
//dynlint:hotpath per receiver per round in the planners
func (a *Assignment) AppendInterferenceSet(dst []graph.NodeID, k Kind, v graph.NodeID) []graph.NodeID {
	depth := a.net.Tree().DepthMap()
	dv, ok := depth[v]
	if !ok {
		return dst
	}
	for _, u := range a.net.Graph().Neighbors(v) {
		if !a.IsTransmitter(k, u) {
			continue
		}
		if k == L && a.cond == ConditionStrict {
			dst = append(dst, u)
			continue
		}
		if depth[u] == dv-1 {
			dst = append(dst, u)
		}
	}
	return dst
}

// Designated returns the transmitter v should tune to: the member of v's
// interference set whose slot is unique within the set (smallest such slot
// on ties). ok is false when the condition is violated for v. Interference
// sets are degree-bounded, so the quadratic uniqueness scan beats a counting
// map and keeps the steady-state receive check allocation-free.
//
//dynlint:hotpath steady-state receive check, reuses setBuf
func (a *Assignment) Designated(k Kind, v graph.NodeID) (u graph.NodeID, slot int, ok bool) {
	a.setBuf = a.AppendInterferenceSet(a.setBuf[:0], k, v)
	set := a.setBuf
	best := -1
	for i, t := range set {
		s := a.slot[k][t]
		unique := true
		for j, o := range set {
			if j != i && a.slot[k][o] == s {
				unique = false
				break
			}
		}
		if unique && (best == -1 || s < best) {
			best = s
			u = t
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return u, best, true
}

// conditionHolds reports whether receiver v's interference set has a
// unique-slot member.
func (a *Assignment) conditionHolds(k Kind, v graph.NodeID) bool {
	_, _, ok := a.Designated(k, v)
	return ok
}

// --- assignment -------------------------------------------------------------

// appendAudience appends C(y) for Procedure 1 — the receivers of kind k
// whose interference sets contain y — to dst and returns the extended
// slice.
//
//dynlint:hotpath per recalculated node during repair
func (a *Assignment) appendAudience(dst []graph.NodeID, k Kind, y graph.NodeID) []graph.NodeID {
	depth := a.net.Tree().DepthMap()
	dy := depth[y]
	for _, v := range a.net.Graph().Neighbors(y) {
		if !a.IsReceiver(k, v) {
			continue
		}
		if k == L && a.cond == ConditionStrict {
			dst = append(dst, v)
			continue
		}
		if depth[v] == dy+1 {
			dst = append(dst, v)
		}
	}
	return dst
}

// calculate runs Procedure 1 (CalculateB/LTimeSlot) for node y: each
// receiver v in C(y) that cannot already guarantee two distinct unique
// slots without y reports the distinct slots it hears; y takes the
// smallest positive integer avoiding all reports. The round cost
// 1 + |C(y)| is charged. Per-receiver slot lists are degree-bounded, so
// uniqueness uses a quadratic scan over the reused slotBuf instead of a
// counting map; only the forbidden set keeps a (reused) map, since the
// final smallest-free-slot search probes it by key.
func (a *Assignment) calculate(k Kind, y graph.NodeID) {
	if a.forbidden == nil {
		a.forbidden = make(map[int]struct{})
	}
	clear(a.forbidden)
	a.audBuf = a.appendAudience(a.audBuf[:0], k, y)
	aud := a.audBuf
	for _, v := range aud {
		a.calcSetBuf = a.AppendInterferenceSet(a.calcSetBuf[:0], k, v)
		a.slotBuf = a.slotBuf[:0]
		for _, t := range a.calcSetBuf {
			if t == y {
				continue
			}
			a.slotBuf = append(a.slotBuf, a.slot[k][t])
		}
		others := a.slotBuf
		unique := 0
		for i, s := range others {
			if s <= 0 {
				continue
			}
			dup := false
			for j, o := range others {
				if j != i && o == s {
					dup = true
					break
				}
			}
			if !dup {
				unique++
			}
		}
		if unique >= 2 {
			// v stays safe whatever slot y takes.
			continue
		}
		for _, s := range others {
			if s > 0 {
				a.forbidden[s] = struct{}{}
			}
		}
	}
	s := 1
	for {
		if _, bad := a.forbidden[s]; !bad {
			break
		}
		s++
	}
	a.slot[k][y] = s
	a.rounds += 1 + len(aud)
	a.recalcs++
}

// ensure assigns a slot to y if it transmits in kind k and lacks one, and
// clears a stale slot if it no longer transmits.
func (a *Assignment) ensure(k Kind, y graph.NodeID) {
	if a.IsTransmitter(k, y) {
		if _, ok := a.slot[k][y]; !ok {
			a.calculate(k, y)
		}
	} else {
		delete(a.slot[k], y)
	}
}

// repair re-establishes the conditions for every receiver by recalculating
// the slots of offending transmitters until a fixpoint. Procedure 1's
// post-condition guarantees each recalculation fixes all of its audience
// without breaking receivers outside it, so the loop converges; the bound
// guards against bugs.
func (a *Assignment) repair() error {
	kinds := []Kind{B, L, U}
	limit := 3*a.net.Size() + 10
	for iter := 0; iter < limit; iter++ {
		fixed := false
		for _, k := range kinds {
			for _, v := range a.net.Tree().Nodes() {
				if !a.IsReceiver(k, v) || a.conditionHolds(k, v) {
					continue
				}
				// Recalculate v's parent if it is in the set, else the
				// first transmitter v hears.
				set := a.InterferenceSet(k, v)
				if len(set) == 0 {
					return fmt.Errorf("timeslot: receiver %d hears no %v transmitter", v, k)
				}
				target := set[0]
				if p, ok := a.net.Tree().Parent(v); ok {
					for _, t := range set {
						if t == p {
							target = p
							break
						}
					}
				}
				a.calculate(k, target)
				fixed = true
			}
		}
		if !fixed {
			return nil
		}
	}
	return fmt.Errorf("timeslot: repair did not converge within %d iterations", limit)
}

// AssignAll recomputes every slot from scratch: transmitters are processed
// in BFS order (top-down) with Procedure 1, then conditions are verified
// and repaired. Use after bulk construction or a root rebuild.
func (a *Assignment) AssignAll() {
	for _, k := range []Kind{B, L, U} {
		a.slot[k] = make(map[graph.NodeID]int)
	}
	tr := a.net.Tree()
	for _, id := range tr.Subtree(tr.Root()) { // preorder: parents first
		for _, k := range []Kind{B, L, U} {
			if a.IsTransmitter(k, id) {
				a.calculate(k, id)
			}
		}
	}
	if err := a.repair(); err != nil {
		//lint:ignore dynlint/panics Procedure 1's post-condition (Lemma 2) makes repair converge on any valid CNet; failure is a bug, not an input error
		panic(err)
	}
}

// OnJoin updates slots after node-move-in of id (Algorithm 3). The fast
// path — the new leaf can already hear a unique transmitter — costs
// nothing; otherwise the parent (and, when it turned from leaf to internal
// node, the grandparent) recalculates per Procedure 1, followed by a
// repair pass for the corner cases the paper's case analysis leaves open.
func (a *Assignment) OnJoin(id graph.NodeID) error {
	tr := a.net.Tree()
	if !tr.Contains(id) {
		return fmt.Errorf("timeslot: OnJoin for unknown node %d", id)
	}
	w, hasParent := tr.Parent(id)
	if hasParent {
		// The parent may have gained a transmitter role (leaf -> internal,
		// or first member child / first backbone child).
		for _, k := range []Kind{B, L, U} {
			a.ensure(k, w)
		}
		// A promoted member (now gateway) must newly satisfy the backbone
		// receive condition; the grandparent may need a b-slot for that.
		if gp, ok := tr.Parent(w); ok {
			for _, k := range []Kind{B, L, U} {
				a.ensure(k, gp)
			}
		}
	}
	// Algorithm 3's check: can the new leaf hear a unique slot?
	for _, k := range []Kind{B, L, U} {
		if a.IsReceiver(k, id) && !a.conditionHolds(k, id) && hasParent {
			a.calculate(k, w)
		}
	}
	return a.repair()
}

// OnMoveOut updates slots after node-move-out (Section 5.2 Step 0/3): the
// departed node's slots are dropped, re-inserted nodes are replayed through
// OnJoin in their re-insertion order, stale transmitter slots are cleared,
// and the conditions are repaired — mirroring the paper's recalculation of
// the P(x) sets along the Euler tour.
func (a *Assignment) OnMoveOut(rec cnet.MoveOutRecord) error {
	if rec.RootChanged {
		// The structure was rebuilt from a new sink; start over.
		a.AssignAll()
		return nil
	}
	for _, k := range []Kind{B, L, U} {
		delete(a.slot[k], rec.Removed)
		for _, x := range rec.Reinserted {
			delete(a.slot[k], x)
		}
	}
	// Clear slots of nodes that lost their transmitter role (e.g. a head
	// whose only member left) and assign to nodes that gained one.
	for _, id := range a.net.Tree().Nodes() {
		for _, k := range []Kind{B, L, U} {
			a.ensure(k, id)
		}
	}
	for _, x := range rec.Reinserted {
		if err := a.OnJoin(x); err != nil {
			return err
		}
	}
	return a.repair()
}

// OnCrash updates slots after a non-graceful repair (cnet.RemoveCrashed):
// entries of departed nodes are purged, re-attached orphans replayed, and
// the conditions repaired. A replaced sink triggers a full reassignment.
func (a *Assignment) OnCrash(rec cnet.CrashRecord) error {
	if rec.RootReplaced {
		a.AssignAll()
		return nil
	}
	tr := a.net.Tree()
	for _, k := range []Kind{B, L, U} {
		for id := range a.slot[k] {
			if !tr.Contains(id) {
				delete(a.slot[k], id)
			}
		}
	}
	for _, id := range tr.Nodes() {
		for _, k := range []Kind{B, L, U} {
			a.ensure(k, id)
		}
	}
	for _, x := range rec.Reinserted {
		if err := a.OnJoin(x); err != nil {
			return err
		}
	}
	return a.repair()
}

// Verify checks that every receiver of every kind satisfies its condition,
// that only transmitters hold slots, and that all slots are positive.
func (a *Assignment) Verify() error {
	for _, k := range []Kind{B, L, U} {
		for id, s := range a.slot[k] {
			if s <= 0 {
				return fmt.Errorf("timeslot: %v of %d is %d", k, id, s)
			}
			if !a.IsTransmitter(k, id) {
				return fmt.Errorf("timeslot: non-transmitter %d holds a %v", id, k)
			}
		}
		for _, id := range a.net.Tree().Nodes() {
			if a.IsTransmitter(k, id) {
				if _, ok := a.slot[k][id]; !ok {
					return fmt.Errorf("timeslot: transmitter %d lacks a %v", id, k)
				}
			}
			if a.IsReceiver(k, id) && !a.conditionHolds(k, id) {
				return fmt.Errorf("timeslot: condition %v violated for receiver %d", k, id)
			}
		}
	}
	return nil
}

// Metric names recorded by Record.
const (
	// MetricTimeslotMax is the gauge of the largest assigned slot per
	// kind (labels kind="b"|"l"|"u").
	MetricTimeslotMax = "dynsens_timeslot_max_slot"
	// MetricTimeslotBound is the gauge of the Lemma 2/3 slot bound per
	// kind: d(d+1)/2+1 for b-slots, D(D+1)/2+1 for l- and u-slots.
	MetricTimeslotBound = "dynsens_timeslot_slot_bound"
	// MetricTimeslotRounds is the accumulated Procedure-1 maintenance
	// cost in protocol rounds.
	MetricTimeslotRounds = "dynsens_timeslot_maintenance_rounds"
	// MetricTimeslotRecalcs is the accumulated slot-recalculation count.
	MetricTimeslotRecalcs = "dynsens_timeslot_recalcs"
)

// kindLabel is the metric label value for a slot kind.
func kindLabel(k Kind) string {
	switch k {
	case B:
		return "b"
	case L:
		return "l"
	default:
		return "u"
	}
}

// Record exports the assignment's slot maxima against their Lemma 2/3
// bounds, plus accumulated maintenance cost, as gauges in reg — the live
// view of how close a deployment runs to the paper's worst case.
func (a *Assignment) Record(reg *obs.Registry) {
	for _, k := range []Kind{B, L, U} {
		lbl := obs.L("kind", kindLabel(k))
		reg.Gauge(MetricTimeslotMax, "Largest assigned time-slot.", lbl).Set(int64(a.Max(k)))
		bound := a.BoundL()
		if k == B {
			bound = a.BoundB()
		}
		reg.Gauge(MetricTimeslotBound, "Lemma 2/3 slot bound for the kind.", lbl).Set(int64(bound))
	}
	reg.Gauge(MetricTimeslotRounds, "Accumulated Procedure-1 maintenance rounds.").Set(int64(a.Rounds()))
	reg.Gauge(MetricTimeslotRecalcs, "Accumulated slot recalculations.").Set(int64(a.Recalcs()))
}

// BoundB returns Lemma 3's bound on b-time-slots, d(d+1)/2 + 1, where d is
// the max degree of G(V_BT).
func (a *Assignment) BoundB() int {
	d := a.net.InducedBackboneGraph().MaxDegree()
	return d*(d+1)/2 + 1
}

// BoundL returns Lemma 3's bound on l-time-slots, D(D+1)/2 + 1, where D is
// the max degree of G.
func (a *Assignment) BoundL() int {
	d := a.net.Graph().MaxDegree()
	return d*(d+1)/2 + 1
}

// CheckBounds verifies Lemma 3: no assigned slot exceeds its bound.
func (a *Assignment) CheckBounds() error {
	if m, b := a.Max(B), a.BoundB(); m > b {
		return fmt.Errorf("timeslot: max b-slot %d exceeds bound %d", m, b)
	}
	if m, b := a.Max(L), a.BoundL(); m > b {
		return fmt.Errorf("timeslot: max l-slot %d exceeds bound %d", m, b)
	}
	if m, b := a.Max(U), a.BoundL(); m > b {
		return fmt.Errorf("timeslot: max u-slot %d exceeds bound %d", m, b)
	}
	return nil
}
