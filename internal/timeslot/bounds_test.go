package timeslot

import (
	"fmt"
	"math/rand"
	"testing"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

// churnInstances is how many randomized (size, seed) deployments the Lemma
// 2/3 property below is checked on.
const churnInstances = 50

// checkPerSlotBounds asserts every individual slot value — not just the
// maxima — against its Lemma 2/3 bound: b-slots stay within d(d+1)/2+1 for
// the induced backbone degree d, l- and u-slots within D(D+1)/2+1 for the
// network degree D.
func checkPerSlotBounds(a *Assignment) error {
	boundB, boundL := a.BoundB(), a.BoundL()
	for _, id := range a.Net().Tree().Nodes() {
		if s, ok := a.Slot(B, id); ok && (s < 1 || s > boundB) {
			return fmt.Errorf("b-slot %d of node %d outside [1, %d]", s, id, boundB)
		}
		if s, ok := a.Slot(L, id); ok && (s < 1 || s > boundL) {
			return fmt.Errorf("l-slot %d of node %d outside [1, %d]", s, id, boundL)
		}
		if s, ok := a.Slot(U, id); ok && (s < 1 || s > boundL) {
			return fmt.Errorf("u-slot %d of node %d outside [1, %d]", s, id, boundL)
		}
	}
	return nil
}

// churn performs one randomized join or leave and keeps the slots updated
// incrementally. Joins attach a fresh node to a random anchor plus a random
// subset of its neighbors (so degrees keep growing); leaves remove a random
// non-root node whose departure keeps the graph connected.
func churn(t *testing.T, rng *rand.Rand, c *cnet.CNet, a *Assignment, next *graph.NodeID) {
	t.Helper()
	if rng.Intn(2) == 0 || c.Size() <= 2 {
		nodes := c.Tree().Nodes()
		anchor := nodes[rng.Intn(len(nodes))]
		nbrs := []graph.NodeID{anchor}
		for _, nb := range c.Graph().Neighbors(anchor) {
			if rng.Intn(2) == 0 {
				nbrs = append(nbrs, nb)
			}
		}
		if _, _, err := c.MoveIn(*next, nbrs); err != nil {
			t.Fatalf("join %d: %v", *next, err)
		}
		if err := a.OnJoin(*next); err != nil {
			t.Fatalf("slots after join %d: %v", *next, err)
		}
		*next++
		return
	}
	nodes := c.Tree().Nodes()
	off := rng.Intn(len(nodes))
	for k := 0; k < len(nodes); k++ {
		cand := nodes[(off+k)%len(nodes)]
		if cand == c.Root() {
			continue
		}
		res := c.Graph().Clone()
		res.RemoveNode(cand)
		if !res.Connected() {
			continue
		}
		rec, _, err := c.MoveOut(cand)
		if err != nil {
			t.Fatalf("leave %d: %v", cand, err)
		}
		if err := a.OnMoveOut(rec); err != nil {
			t.Fatalf("slots after leave %d: %v", cand, err)
		}
		return
	}
}

// TestSlotBoundsUnderChurn drives randomized join/leave churn over many
// deployments and asserts the per-slot Lemma 2/3 bounds after every step,
// then rebuilds the whole assignment from scratch (AssignAll) and verifies
// the bounds and the Time-Slot Conditions again — the bulk recomputation
// must land in the same envelope the incremental path maintained.
func TestSlotBoundsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(0x515))
	for _, cond := range []Condition{ConditionStrict, ConditionPaper} {
		for i := 0; i < churnInstances/2; i++ {
			n := 20 + rng.Intn(60)
			seed := int64(1 + rng.Intn(10_000))
			name := fmt.Sprintf("cond=%d/n=%d/seed=%d", cond, n, seed)

			d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
			if err != nil {
				t.Fatal(err)
			}
			c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			a := New(c, cond)
			next := graph.NodeID(10_000)
			for step := 0; step < 20; step++ {
				churn(t, rng, c, a, &next)
				if err := checkPerSlotBounds(a); err != nil {
					t.Fatalf("%s step %d: %v", name, step, err)
				}
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("%s after churn: %v", name, err)
			}

			// Rebuild from scratch over the churned structure.
			a.AssignAll()
			if err := checkPerSlotBounds(a); err != nil {
				t.Fatalf("%s after rebuild: %v", name, err)
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("%s rebuild conditions: %v", name, err)
			}
			if err := a.CheckBounds(); err != nil {
				t.Fatalf("%s rebuild maxima: %v", name, err)
			}
		}
	}
}
