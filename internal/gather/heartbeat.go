package gather

import (
	"sort"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// HeartbeatReport lists, per parent, the children it failed to hear during
// one heartbeat epoch. Under a verified g-slot schedule a live child is
// always heard, so a missing child is dead (or its whole branch is): the
// report contains exactly the topmost crashed nodes, which is what crash
// repair needs.
type HeartbeatReport struct {
	// Missing maps each parent to its unheard children, ascending.
	Missing map[graph.NodeID][]graph.NodeID
	// Rounds is the epoch length executed on the engine.
	Rounds int
}

// Suspects flattens the report into a sorted list of unheard children.
func (r HeartbeatReport) Suspects() []graph.NodeID {
	var out []graph.NodeID
	for _, ms := range r.Missing {
		out = append(out, ms...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Heartbeat runs one convergecast epoch purely as liveness probing: every
// node transmits once at its g-slot and every parent records which
// children it heard. Crashed nodes (opts.Failures) stay silent, so their
// parents report them. This is the failure-detection half of crash repair;
// pair it with core.Network.RepairCrash.
func Heartbeat(net *cnet.CNet, sched *Schedule, opts Options) (HeartbeatReport, error) {
	progs, schedLen, _ := buildPrograms(net, sched, nil)
	eng, err := radio.NewEngine(net.Graph(), progs)
	if err != nil {
		return HeartbeatReport{}, err
	}
	eng.SetWorkers(opts.Workers)
	if opts.Trace != nil {
		eng.SetTrace(opts.Trace)
	}
	for _, f := range opts.Failures {
		eng.FailNodeAt(f.Node, f.Round)
	}
	res := eng.Run(schedLen)

	report := HeartbeatReport{Missing: make(map[graph.NodeID][]graph.NodeID), Rounds: res.Rounds}
	dead := make(map[graph.NodeID]bool, len(opts.Failures))
	for _, f := range opts.Failures {
		dead[f.Node] = true
	}
	for _, id := range net.Tree().Nodes() {
		gn := progs[id].(*gatherNode)
		if dead[id] {
			// A dead parent reports nothing; its own parent reports it.
			continue
		}
		var missing []graph.NodeID
		for c := range gn.children {
			if !gn.heardFrom[c] {
				missing = append(missing, c)
			}
		}
		if len(missing) > 0 {
			sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
			report.Missing[id] = missing
		}
	}
	return report, nil
}
