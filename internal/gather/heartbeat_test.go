package gather

import (
	"testing"

	"dynsens/internal/graph"
)

func TestHeartbeatAllAlive(t *testing.T) {
	net := buildNet(t, 11, 60)
	s := NewSchedule(net)
	rep, err := Heartbeat(net, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) != 0 {
		t.Fatalf("false positives: %v", rep.Missing)
	}
	if rep.Rounds <= 0 {
		t.Fatalf("rounds = %d", rep.Rounds)
	}
}

func TestHeartbeatDetectsDeadChild(t *testing.T) {
	net := buildNet(t, 12, 60)
	s := NewSchedule(net)
	// Kill a child of the root before the epoch starts.
	children := net.Tree().Children(net.Root())
	if len(children) == 0 {
		t.Skip("root has no children")
	}
	victim := children[0]
	rep, err := Heartbeat(net, s, Options{Failures: []Failure{{Node: victim, Round: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	suspects := rep.Suspects()
	found := false
	for _, sID := range suspects {
		if sID == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim %d not detected; suspects %v", victim, suspects)
	}
	// The victim's parent is the reporter.
	ms := rep.Missing[net.Root()]
	if len(ms) == 0 {
		t.Fatalf("root reported nothing: %v", rep.Missing)
	}
}

func TestHeartbeatDeadParentDoesNotReport(t *testing.T) {
	net := buildNet(t, 13, 80)
	s := NewSchedule(net)
	// Find an internal non-root node and kill it: it must appear as
	// missing at ITS parent, and its own live children must not be
	// reported by it (it is dead).
	var victim graph.NodeID
	found := false
	for _, id := range net.Tree().Nodes() {
		if id != net.Root() && !net.Tree().IsLeaf(id) {
			victim, found = id, true
			break
		}
	}
	if !found {
		t.Skip("no internal node")
	}
	rep, err := Heartbeat(net, s, Options{Failures: []Failure{{Node: victim, Round: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, reported := rep.Missing[victim]; reported {
		t.Fatal("dead parent filed a report")
	}
	parent, _ := net.Tree().Parent(victim)
	foundVictim := false
	for _, m := range rep.Missing[parent] {
		if m == victim {
			foundVictim = true
		}
	}
	if !foundVictim {
		t.Fatalf("parent %d did not report dead child %d: %v", parent, victim, rep.Missing)
	}
}
