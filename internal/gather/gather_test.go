package gather

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func buildNet(t testing.TB, seed int64, n int) *cnet.CNet {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScheduleVerifies(t *testing.T) {
	for _, n := range []int{2, 20, 120} {
		net := buildNet(t, int64(n), n)
		s := NewSchedule(net)
		if err := s.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if s.MaxSlot() <= 0 {
			t.Fatalf("n=%d: max slot %d", n, s.MaxSlot())
		}
		if s.Slot(net.Root()) != 0 {
			t.Fatal("root holds a g-slot")
		}
	}
}

func TestGatherExactSum(t *testing.T) {
	net := buildNet(t, 7, 100)
	s := NewSchedule(net)
	rng := rand.New(rand.NewSource(7))
	values := make(map[graph.NodeID]int64)
	var want int64
	for _, id := range net.Tree().Nodes() {
		v := int64(rng.Intn(1000))
		values[id] = v
		want += v
	}
	m, err := Run(net, s, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() {
		t.Fatalf("incomplete: %s", m)
	}
	if m.Sum != want || m.Expected != want {
		t.Fatalf("sum = %d, want %d", m.Sum, want)
	}
	// Collisions may occur between two non-children audible at a parent
	// (harmless: the schedule only protects parent-child receptions), but
	// the sum above proves every child got through.
	// Awake bound: W+1 per node.
	if m.MaxAwake > s.MaxSlot()+1 {
		t.Fatalf("max awake %d exceeds W+1 = %d", m.MaxAwake, s.MaxSlot()+1)
	}
	if m.ScheduleLen != net.Tree().Height()*s.MaxSlot() {
		t.Fatalf("schedule %d != h*W", m.ScheduleLen)
	}
}

func TestGatherCountsNodes(t *testing.T) {
	net := buildNet(t, 3, 60)
	s := NewSchedule(net)
	// All values zero: the count channel still reports every node.
	m, err := Run(net, s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reporting != 60 || m.Sum != 0 {
		t.Fatalf("metrics = %s", m)
	}
}

func TestGatherSingleNode(t *testing.T) {
	net := cnet.New(0, nil)
	s := NewSchedule(net)
	m, err := Run(net, s, map[graph.NodeID]int64{0: 42}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sum != 42 || !m.Complete() || m.Rounds != 0 {
		t.Fatalf("singleton gather: %s", m)
	}
}

func TestGatherLosesFailedSubtree(t *testing.T) {
	net := buildNet(t, 9, 80)
	s := NewSchedule(net)
	// Kill a child of the root before it relays: its subtree's values are
	// lost but everything else arrives.
	children := net.Tree().Children(net.Root())
	if len(children) == 0 {
		t.Skip("root has no children")
	}
	victim := children[0]
	lost := len(net.Tree().Subtree(victim))
	values := make(map[graph.NodeID]int64)
	for _, id := range net.Tree().Nodes() {
		values[id] = 1
	}
	m, err := Run(net, s, values, Options{Failures: []Failure{{Node: victim, Round: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Complete() {
		t.Fatal("gather complete despite dead relay")
	}
	if m.Reporting != 80-lost {
		t.Fatalf("reporting %d, want %d (lost subtree of %d)", m.Reporting, 80-lost, lost)
	}
	if m.Sum != int64(80-lost) {
		t.Fatalf("sum %d, want %d", m.Sum, 80-lost)
	}
}

// Property: on random deployments the convergecast is exact and
// collision-free, and the W bound respects the conflict-degree argument
// (W <= max over parents of audible same-depth nodes).
func TestGatherProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 1
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
		if err != nil {
			return false
		}
		net, _, err := cnet.BuildFromGraph(d.Graph(), 0, nil)
		if err != nil {
			return false
		}
		s := NewSchedule(net)
		if s.Verify() != nil {
			return false
		}
		values := make(map[graph.NodeID]int64)
		var want int64
		for i, id := range net.Tree().Nodes() {
			values[id] = int64(i)
			want += int64(i)
		}
		m, err := Run(net, s, values, Options{})
		if err != nil {
			return false
		}
		return m.Complete() && m.Sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
