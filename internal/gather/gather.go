// Package gather implements collision-free data gathering (convergecast)
// on the cluster-based structure — the third communication pattern the
// paper's introduction puts ahead of point-to-point traffic ("broadcast,
// multicast and data gathering are more important...").
//
// The schedule mirrors the broadcast TDM in reverse: depths transmit from
// the deepest up, one window per depth; within a window every node sends
// its aggregated subtree value at its g-time-slot, chosen so that each
// parent hears each of its children without collision (a child's slot must
// be unique among all same-depth nodes its parent can hear). The sink ends
// up with the exact aggregate in W*h rounds with every node awake at most
// W+1 rounds, W being the largest g-slot — the convergecast analogue of
// Theorem 1.
package gather

import (
	"fmt"

	"dynsens/internal/cnet"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
)

// gatherSeq marks convergecast frames.
const gatherSeq = 2

// Schedule carries g-time-slots for one CNet.
type Schedule struct {
	net     *cnet.CNet
	slot    map[graph.NodeID]int
	maxSlot int
}

// NewSchedule greedily assigns g-slots: processing nodes in deterministic
// BFS order, each non-root node takes the smallest slot not used by any
// same-depth node its parent can hear (including its siblings).
func NewSchedule(net *cnet.CNet) *Schedule {
	s := &Schedule{net: net, slot: make(map[graph.NodeID]int)}
	tr := net.Tree()
	depth := tr.DepthMap()
	for _, v := range tr.Subtree(tr.Root()) {
		if v == tr.Root() {
			continue
		}
		forbidden := make(map[int]struct{})
		for _, u := range s.conflicts(v, depth) {
			if sl, ok := s.slot[u]; ok {
				forbidden[sl] = struct{}{}
			}
		}
		sl := 1
		for {
			if _, bad := forbidden[sl]; !bad {
				break
			}
			sl++
		}
		s.slot[v] = sl
		if sl > s.maxSlot {
			s.maxSlot = sl
		}
	}
	return s
}

// conflicts returns the same-depth nodes that must not share v's slot:
// those audible at v's parent, and those whose own parent hears both (the
// symmetric closure keeps every parent's inbox collision-free).
func (s *Schedule) conflicts(v graph.NodeID, depth map[graph.NodeID]int) []graph.NodeID {
	tr := s.net.Tree()
	g := s.net.Graph()
	dv := depth[v]
	seen := make(map[graph.NodeID]struct{})
	var out []graph.NodeID
	add := func(u graph.NodeID) {
		if u == v {
			return
		}
		if _, dup := seen[u]; dup {
			return
		}
		seen[u] = struct{}{}
		out = append(out, u)
	}
	// Nodes at v's depth audible at v's parent.
	if p, ok := tr.Parent(v); ok {
		for _, u := range g.Neighbors(p) {
			if depth[u] == dv {
				add(u)
			}
		}
	}
	// Nodes u whose parent hears v too.
	for _, q := range g.Neighbors(v) {
		// q could be a parent at depth dv-1 of some other child u.
		if depth[q] != dv-1 {
			continue
		}
		for _, u := range tr.Children(q) {
			if depth[u] == dv {
				add(u)
			}
		}
	}
	return out
}

// Slot returns v's g-slot (0 for the root).
func (s *Schedule) Slot(v graph.NodeID) int { return s.slot[v] }

// MaxSlot returns the window width W.
func (s *Schedule) MaxSlot() int { return s.maxSlot }

// Verify checks the gathering condition: for every parent p and child c,
// no other same-depth node audible at p shares c's slot.
func (s *Schedule) Verify() error {
	tr := s.net.Tree()
	g := s.net.Graph()
	depth := tr.DepthMap()
	for _, p := range tr.Nodes() {
		for _, c := range tr.Children(p) {
			for _, u := range g.Neighbors(p) {
				if u == c || depth[u] != depth[c] {
					continue
				}
				if s.slot[u] == s.slot[c] {
					return fmt.Errorf("gather: parent %d cannot separate child %d from %d (slot %d)",
						p, c, u, s.slot[c])
				}
			}
		}
	}
	for v, sl := range s.slot {
		if sl <= 0 {
			return fmt.Errorf("gather: node %d has slot %d", v, sl)
		}
	}
	return nil
}

// Metrics reports a convergecast run.
type Metrics struct {
	// Sum is the aggregate that reached the sink; Expected the true total.
	Sum, Expected int64
	// Reporting is how many nodes' values are included in Sum.
	Reporting int
	// Nodes is the network size.
	Nodes int
	// Rounds, MaxAwake, MeanAwake, Collisions mirror the broadcast metrics.
	Rounds int
	// Quiesced is true when every live program reported Done before the
	// schedule ran out.
	Quiesced      bool
	ScheduleLen   int
	MaxAwake      int
	MeanAwake     float64
	Collisions    int
	Transmissions int
}

// Complete reports whether every node's value arrived.
func (m Metrics) Complete() bool { return m.Reporting == m.Nodes }

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("GATHER: sum=%d/%d reporting=%d/%d rounds=%d (sched %d) maxAwake=%d collisions=%d",
		m.Sum, m.Expected, m.Reporting, m.Nodes, m.Rounds, m.ScheduleLen, m.MaxAwake, m.Collisions)
}

// gatherNode aggregates its subtree and fires once in its depth window.
//
// Contract compliance (radio.Program): the schedule and child set are
// written only at build time; the running sum is node-private (each node
// aggregates what *it* heard — there is no shared accumulator). Done is a
// pure monotone threshold on the node's own schedule end. Enforced
// statically by dynlint/progpurity via the assertion below.
type gatherNode struct {
	id       graph.NodeID
	value    int64
	count    int64
	txRound  int // 0 for the root
	listenLo int // children window (0 if leaf)
	listenHi int
	children map[graph.NodeID]bool

	sum       int64
	reported  int64
	heardFrom map[graph.NodeID]bool
	cur       int
}

var _ radio.Program = (*gatherNode)(nil)

func (p *gatherNode) Act(round int) radio.Action {
	p.cur = round
	if p.txRound == round {
		return radio.TransmitOn(0, radio.Message{
			Seq: gatherSeq, Src: p.id,
			Value: p.sum + p.value,
			Slot:  int(p.reported + p.count),
		})
	}
	if p.listenLo > 0 && round >= p.listenLo && round <= p.listenHi {
		return radio.ListenOn(0)
	}
	return radio.SleepAction()
}

func (p *gatherNode) Deliver(_ int, msg radio.Message) {
	if msg.Seq != gatherSeq || !p.children[msg.From] {
		return
	}
	p.sum += msg.Value
	p.reported += int64(msg.Slot)
	p.heardFrom[msg.From] = true
}

func (p *gatherNode) Done() bool {
	if p.txRound > 0 {
		return p.cur >= p.txRound
	}
	return p.listenHi == 0 || p.cur >= p.listenHi
}

// Options tune a gathering run.
type Options struct {
	// Failures are node deaths to inject.
	Failures []Failure
	// Workers sets the radio engine's shard-worker count (see
	// radio.Engine.SetWorkers); 0 keeps the engine default.
	Workers int
	// Trace receives engine events.
	Trace func(radio.Event)
	// Perf, when non-nil, collects kernel performance introspection for
	// the run (radio.Engine.SetPerf); strictly read-only.
	Perf *radio.Perf
}

// Failure kills a node at a round.
type Failure struct {
	Node  graph.NodeID
	Round int
}

// buildPrograms constructs the per-node convergecast programs and returns
// them with the schedule length and the expected total.
func buildPrograms(net *cnet.CNet, sched *Schedule, values map[graph.NodeID]int64) (map[graph.NodeID]radio.Program, int, int64) {
	tr := net.Tree()
	depth := tr.DepthMap()
	h := tr.Height()
	w := sched.MaxSlot()

	progs := make(map[graph.NodeID]radio.Program, tr.Size())
	var expected int64
	for _, id := range tr.Nodes() {
		d := depth[id]
		gn := &gatherNode{
			id:        id,
			value:     values[id],
			count:     1,
			children:  make(map[graph.NodeID]bool),
			heardFrom: make(map[graph.NodeID]bool),
		}
		expected += values[id]
		for _, c := range tr.Children(id) {
			gn.children[c] = true
		}
		if id != tr.Root() {
			// Depth-d window is windows index (h-d): rounds
			// [(h-d)*w+1, (h-d+1)*w].
			gn.txRound = (h-d)*w + sched.Slot(id)
		}
		if len(gn.children) > 0 {
			gn.listenLo = (h-d-1)*w + 1
			gn.listenHi = (h - d) * w
		}
		progs[id] = gn
	}
	return progs, h * w, expected
}

// Run executes one convergecast: every node contributes values[id]
// (missing entries contribute 0) and the sink aggregates the sum. The
// returned metrics are measured on the radio engine.
func Run(net *cnet.CNet, sched *Schedule, values map[graph.NodeID]int64, opts Options) (Metrics, error) {
	tr := net.Tree()
	progs, schedLen, expected := buildPrograms(net, sched, values)
	eng, err := radio.NewEngine(net.Graph(), progs)
	if err != nil {
		return Metrics{}, err
	}
	eng.SetWorkers(opts.Workers)
	eng.SetPerf(opts.Perf)
	if opts.Trace != nil {
		eng.SetTrace(opts.Trace)
	}
	for _, f := range opts.Failures {
		eng.FailNodeAt(f.Node, f.Round)
	}
	res := eng.Run(schedLen)

	root := progs[tr.Root()].(*gatherNode)
	return Metrics{
		Sum:           root.sum + root.value,
		Expected:      expected,
		Reporting:     int(root.reported + root.count),
		Nodes:         tr.Size(),
		Rounds:        res.Rounds,
		Quiesced:      res.Quiesced,
		ScheduleLen:   schedLen,
		MaxAwake:      res.MaxAwake(),
		MeanAwake:     res.MeanAwake(),
		Collisions:    res.Collisions,
		Transmissions: res.Transmissions,
	}, nil
}
