package geom

import "sort"

// Grid is a uniform spatial hash over positioned integer keys. The cell
// size equals the communication range (grown when the region would need
// more than maxGridAxis cells along an axis), so every point within range
// of a query position lies in the query's cell or one of the eight
// surrounding cells; a range query therefore inspects O(neighbors)
// candidates instead of the whole population. Keys are application-chosen
// (deployment indices or graph node IDs) and must be unique among inserted
// entries.
//
// The zero value is not usable; call NewGrid.
type Grid struct {
	region Region
	rng    float64
	cols   int
	rows   int
	// cellW/cellH are the cell dimensions: the range, unless the axis was
	// capped at maxGridAxis cells, in which case the cells grow to cover
	// the region. Both are always >= rng, which is what the 3x3 stencil
	// relies on.
	cellW float64
	cellH float64
	cells [][]gridEntry
	count int
}

type gridEntry struct {
	id int
	p  Point
}

// maxGridAxis caps the cell count per axis so a sparse configuration (tiny
// range over a huge region) cannot allocate an enormous cell array; capped
// axes use proportionally larger cells instead.
const maxGridAxis = 1 << 11

// NewGrid returns an empty index over region with cell size rng (the
// communication range). Points outside the region are clamped into the
// border cells, so out-of-region insertions degrade gracefully rather
// than failing. A non-positive range yields a single-cell grid.
func NewGrid(region Region, rng float64) *Grid {
	g := &Grid{region: region, rng: rng, cols: 1, rows: 1, cellW: rng, cellH: rng}
	if rng > 0 {
		g.cols, g.cellW = gridAxis(region.Width, rng)
		g.rows, g.cellH = gridAxis(region.Height, rng)
	}
	g.cells = make([][]gridEntry, g.cols*g.rows)
	return g
}

// gridAxis sizes one axis: cells of the communication range, capped at
// maxGridAxis cells (with the cell size grown to keep covering the span).
func gridAxis(span, rng float64) (n int, cell float64) {
	n = int(span/rng) + 1
	if n < 1 {
		n = 1
	}
	if n > maxGridAxis {
		n = maxGridAxis
		cell = span / float64(n)
		return n, cell
	}
	return n, rng
}

// Range returns the communication range the grid was built for.
func (g *Grid) Range() float64 { return g.rng }

// Region returns the region the grid was built for.
func (g *Grid) Region() Region { return g.region }

// Len returns the number of indexed entries.
func (g *Grid) Len() int { return g.count }

// cellCoord maps a coordinate to a clamped cell index along one axis.
func (g *Grid) cellCoord(x, cell float64, n int) int {
	if cell <= 0 || x <= 0 {
		return 0
	}
	c := int(x / cell)
	if c >= n {
		c = n - 1
	}
	return c
}

func (g *Grid) cellIndex(p Point) int {
	return g.cellCoord(p.Y, g.cellH, g.rows)*g.cols + g.cellCoord(p.X, g.cellW, g.cols)
}

// Insert adds an entry. Inserting a key twice (even at different
// positions) corrupts the index; callers must Remove first.
func (g *Grid) Insert(id int, p Point) {
	ci := g.cellIndex(p)
	g.cells[ci] = append(g.cells[ci], gridEntry{id: id, p: p})
	g.count++
}

// Remove deletes the entry for id, which must have been inserted at p
// (the position determines the cell to search). It reports whether the
// entry was found.
func (g *Grid) Remove(id int, p Point) bool {
	ci := g.cellIndex(p)
	bucket := g.cells[ci]
	for i, e := range bucket {
		if e.id == id {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[ci] = bucket[:len(bucket)-1]
			g.count--
			return true
		}
	}
	return false
}

// Move relocates an existing entry from old to new in one call.
func (g *Grid) Move(id int, old, new Point) bool {
	if !g.Remove(id, old) {
		return false
	}
	g.Insert(id, new)
	return true
}

// AppendNeighbors appends to dst the keys of all entries within the grid's
// range of p, excluding key exclude (pass a key never inserted, e.g. -1
// for non-negative key spaces, to exclude nothing), and returns the
// extended slice. The appended keys are sorted ascending, so results are
// deterministic and identical to a brute-force scan in insertion-index
// order.
func (g *Grid) AppendNeighbors(dst []int, p Point, exclude int) []int {
	start := len(dst)
	dst = g.appendUnsorted(dst, p, exclude)
	tail := dst[start:]
	sort.Ints(tail)
	return dst
}

// Neighbors returns the keys within range of p, ascending, excluding
// exclude. The result is a fresh slice (nil when empty).
func (g *Grid) Neighbors(p Point, exclude int) []int {
	return g.AppendNeighbors(nil, p, exclude)
}

// appendUnsorted scans the 3×3 cell block around p into dst, unsorted.
//
//dynlint:hotpath per-query scan; dst is the caller's buffer
func (g *Grid) appendUnsorted(dst []int, p Point, exclude int) []int {
	cx := g.cellCoord(p.X, g.cellW, g.cols)
	cy := g.cellCoord(p.Y, g.cellH, g.rows)
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			for _, e := range g.cells[y*g.cols+x] {
				if e.id == exclude {
					continue
				}
				if p.InRange(e.p, g.rng) {
					dst = append(dst, e.id)
				}
			}
		}
	}
	return dst
}

// HasNeighbor reports whether any indexed entry other than exclude lies
// within range of p. It is the allocation-free acceptance check used by
// incremental placement: O(1) expected at bounded density.
//
//dynlint:hotpath acceptance check runs per placement attempt
func (g *Grid) HasNeighbor(p Point, exclude int) bool {
	cx := g.cellCoord(p.X, g.cellW, g.cols)
	cy := g.cellCoord(p.Y, g.cellH, g.rows)
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			for _, e := range g.cells[y*g.cols+x] {
				if e.id != exclude && p.InRange(e.p, g.rng) {
					return true
				}
			}
		}
	}
	return false
}
