package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynsens/internal/graph"
)

func TestDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.Dist(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %v", d)
	}
	if d := a.Dist(a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestInRangeBoundaryInclusive(t *testing.T) {
	a := Point{0, 0}
	b := Point{50, 0}
	if !a.InRange(b, 50) {
		t.Fatal("boundary should be in range")
	}
	if a.InRange(Point{50.0001, 0}, 50) {
		t.Fatal("beyond boundary should be out of range")
	}
}

func TestSquareUnits(t *testing.T) {
	r := SquareUnits(10, 100)
	if r.Width != 1000 || r.Height != 1000 {
		t.Fatalf("region = %+v", r)
	}
	if r.Area() != 1e6 {
		t.Fatalf("area = %v", r.Area())
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{100, 50}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{100, 50}, true},
		{Point{50, 25}, true},
		{Point{-0.1, 10}, false},
		{Point{10, 50.1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Fatalf("Contains(%v) = %v", c.p, got)
		}
	}
}

func TestDeploymentGraph(t *testing.T) {
	d := &Deployment{
		Region: Region{100, 100},
		Range:  10,
		Pos:    []Point{{0, 0}, {5, 0}, {14, 0}, {50, 50}},
	}
	g := d.Graph()
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 3) {
		t.Fatal("unexpected edges")
	}
	if !d.IsUnitDiskGraph(g) {
		t.Fatal("IsUnitDiskGraph rejected its own graph")
	}
	g.RemoveEdge(0, 1)
	if d.IsUnitDiskGraph(g) {
		t.Fatal("IsUnitDiskGraph accepted a mutated graph")
	}
}

func TestNeighborsOf(t *testing.T) {
	d := &Deployment{
		Region: Region{100, 100},
		Range:  10,
		Pos:    []Point{{0, 0}, {5, 0}, {50, 50}},
	}
	nbrs := d.NeighborsOf(Point{1, 0}, -1)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 1 {
		t.Fatalf("NeighborsOf = %v", nbrs)
	}
	nbrs = d.NeighborsOf(d.Pos[0], 0)
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("NeighborsOf excluding self = %v", nbrs)
	}
}

func TestValidate(t *testing.T) {
	d := &Deployment{Region: Region{10, 10}, Range: 1, Pos: []Point{{5, 5}}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.Pos = append(d.Pos, Point{11, 5})
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-region node accepted")
	}
	d2 := &Deployment{Region: Region{10, 10}, Range: 0}
	if err := d2.Validate(); err == nil {
		t.Fatal("zero range accepted")
	}
}

// Property: the deployment graph is symmetric in distance — it equals the
// graph recomputed after shuffling insertion order, and edge membership
// matches the distance predicate exactly.
func TestUDGProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		d := &Deployment{Region: Region{100, 100}, Range: 15}
		for i := 0; i < n; i++ {
			d.Pos = append(d.Pos, Point{rng.Float64() * 100, rng.Float64() * 100})
		}
		g := d.Graph()
		if !d.IsUnitDiskGraph(g) {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := d.Pos[i].Dist(d.Pos[j]) <= d.Range+1e-12
				if g.HasEdge(graph.NodeID(i), graph.NodeID(j)) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
