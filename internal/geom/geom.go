// Package geom provides the planar geometry behind the paper's simulation
// setup: sensor positions in a rectangular deployment region, unit-disk
// adjacency at a given communication range, and conversions to graphs.
//
// The paper deploys nodes on squares of 8x8, 10x10 and 12x12 "units" where a
// unit is 100 meters, with a communication range of 50 meters. All distances
// here are in meters.
package geom

import (
	"fmt"
	"math"

	"dynsens/internal/graph"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// InRange reports whether q is within communication range r of p.
// The boundary counts as in range, matching the unit-disk-graph convention
// "distance not larger than one unit".
func (p Point) InRange(q Point, r float64) bool {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx+dy*dy <= r*r
}

// Region is an axis-aligned rectangular deployment area with its lower-left
// corner at the origin.
type Region struct {
	Width, Height float64 // meters
}

// SquareUnits returns the paper's deployment region of side*side units with
// the given meters-per-unit scale (the paper uses 100 m units).
func SquareUnits(side int, metersPerUnit float64) Region {
	s := float64(side) * metersPerUnit
	return Region{Width: s, Height: s}
}

// Contains reports whether p lies inside the region (boundary inclusive).
func (r Region) Contains(p Point) bool {
	return p.X >= 0 && p.Y >= 0 && p.X <= r.Width && p.Y <= r.Height
}

// Area returns the region's area in square meters.
func (r Region) Area() float64 { return r.Width * r.Height }

// Deployment is a set of positioned nodes. Node i has ID graph.NodeID(i).
//
// Range queries (Graph, NeighborsOf, HasNeighbor) are served by a lazily
// built spatial Grid that is kept in sync as long as Pos only grows by
// appends — the only mutation the workload generators perform. Code that
// edits or truncates existing entries of Pos in place must call
// InvalidateIndex afterwards.
type Deployment struct {
	Region Region
	Range  float64 // communication range in meters
	Pos    []Point // Pos[i] is the position of node i

	// grid indexes Pos[:indexed]; nil until the first range query.
	grid    *Grid
	indexed int
}

// NumNodes returns the number of deployed nodes.
func (d *Deployment) NumNodes() int { return len(d.Pos) }

// InvalidateIndex discards the cached spatial index. Required only after
// in-place edits or truncation of Pos; appends are tracked automatically.
func (d *Deployment) InvalidateIndex() {
	d.grid = nil
	d.indexed = 0
}

// index returns the spatial index over Pos, building or extending it as
// needed. Appended points are inserted incrementally; any other drift
// (range change, truncation) forces a rebuild.
func (d *Deployment) index() *Grid {
	if d.grid == nil || d.grid.Range() != d.Range || d.grid.Region() != d.Region || d.indexed > len(d.Pos) {
		d.grid = NewGrid(d.Region, d.Range)
		d.indexed = 0
	}
	for ; d.indexed < len(d.Pos); d.indexed++ {
		d.grid.Insert(d.indexed, d.Pos[d.indexed])
	}
	return d.grid
}

// Graph builds the unit-disk graph of the deployment: nodes u, v share an
// edge iff their distance is at most d.Range. The grid index makes this
// O(n * neighbors) instead of all-pairs; the result is identical to
// GraphAllPairs (see TestGraphMatchesAllPairs / FuzzGridEquivalence).
func (d *Deployment) Graph() *graph.Graph {
	g := graph.New()
	for i := range d.Pos {
		g.AddNode(graph.NodeID(i))
	}
	idx := d.index()
	var buf []int
	for i := range d.Pos {
		buf = idx.AppendNeighbors(buf[:0], d.Pos[i], i)
		for _, j := range buf {
			if j > i {
				_ = g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return g
}

// GraphAllPairs is the brute-force O(n^2) reference construction of the
// unit-disk graph, retained for equivalence tests and as the benchmark
// baseline the grid path is measured against.
func (d *Deployment) GraphAllPairs() *graph.Graph {
	g := graph.New()
	for i := range d.Pos {
		g.AddNode(graph.NodeID(i))
	}
	for i := range d.Pos {
		for j := i + 1; j < len(d.Pos); j++ {
			if d.Pos[i].InRange(d.Pos[j], d.Range) {
				_ = g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return g
}

// NeighborsOf returns the indices of nodes within range of position p,
// excluding index self (pass -1 to exclude nothing), in ascending order.
// Served by the grid index in O(neighbors).
func (d *Deployment) NeighborsOf(p Point, self int) []int {
	return d.index().Neighbors(p, self)
}

// NeighborsOfAllPairs is the brute-force reference for NeighborsOf,
// retained for equivalence tests and benchmarks.
func (d *Deployment) NeighborsOfAllPairs(p Point, self int) []int {
	var out []int
	for i, q := range d.Pos {
		if i == self {
			continue
		}
		if p.InRange(q, d.Range) {
			out = append(out, i)
		}
	}
	return out
}

// HasNeighbor reports whether any deployed node other than self lies
// within range of p — the allocation-free placement-acceptance check used
// by workload.IncrementalConnected.
func (d *Deployment) HasNeighbor(p Point, self int) bool {
	return d.index().HasNeighbor(p, self)
}

// Validate checks that all nodes lie inside the region and that the range
// is positive.
func (d *Deployment) Validate() error {
	if d.Range <= 0 {
		return fmt.Errorf("geom: non-positive range %v", d.Range)
	}
	for i, p := range d.Pos {
		if !d.Region.Contains(p) {
			return fmt.Errorf("geom: node %d at %v outside region %vx%v",
				i, p, d.Region.Width, d.Region.Height)
		}
	}
	return nil
}

// IsUnitDiskGraph verifies that g is exactly the unit-disk graph of the
// deployment (used as a test invariant).
func (d *Deployment) IsUnitDiskGraph(g *graph.Graph) bool {
	if g.NumNodes() != len(d.Pos) {
		return false
	}
	for i := range d.Pos {
		for j := i + 1; j < len(d.Pos); j++ {
			inRange := d.Pos[i].InRange(d.Pos[j], d.Range)
			if inRange != g.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
				return false
			}
		}
	}
	return true
}
