// Package geom provides the planar geometry behind the paper's simulation
// setup: sensor positions in a rectangular deployment region, unit-disk
// adjacency at a given communication range, and conversions to graphs.
//
// The paper deploys nodes on squares of 8x8, 10x10 and 12x12 "units" where a
// unit is 100 meters, with a communication range of 50 meters. All distances
// here are in meters.
package geom

import (
	"fmt"
	"math"

	"dynsens/internal/graph"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// InRange reports whether q is within communication range r of p.
// The boundary counts as in range, matching the unit-disk-graph convention
// "distance not larger than one unit".
func (p Point) InRange(q Point, r float64) bool {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx+dy*dy <= r*r
}

// Region is an axis-aligned rectangular deployment area with its lower-left
// corner at the origin.
type Region struct {
	Width, Height float64 // meters
}

// SquareUnits returns the paper's deployment region of side*side units with
// the given meters-per-unit scale (the paper uses 100 m units).
func SquareUnits(side int, metersPerUnit float64) Region {
	s := float64(side) * metersPerUnit
	return Region{Width: s, Height: s}
}

// Contains reports whether p lies inside the region (boundary inclusive).
func (r Region) Contains(p Point) bool {
	return p.X >= 0 && p.Y >= 0 && p.X <= r.Width && p.Y <= r.Height
}

// Area returns the region's area in square meters.
func (r Region) Area() float64 { return r.Width * r.Height }

// Deployment is a set of positioned nodes. Node i has ID graph.NodeID(i).
type Deployment struct {
	Region Region
	Range  float64 // communication range in meters
	Pos    []Point // Pos[i] is the position of node i
}

// NumNodes returns the number of deployed nodes.
func (d *Deployment) NumNodes() int { return len(d.Pos) }

// Graph builds the unit-disk graph of the deployment: nodes u, v share an
// edge iff their distance is at most d.Range.
func (d *Deployment) Graph() *graph.Graph {
	g := graph.New()
	for i := range d.Pos {
		g.AddNode(graph.NodeID(i))
	}
	for i := range d.Pos {
		for j := i + 1; j < len(d.Pos); j++ {
			if d.Pos[i].InRange(d.Pos[j], d.Range) {
				_ = g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return g
}

// NeighborsOf returns the indices of nodes within range of position p,
// excluding index self (pass -1 to exclude nothing).
func (d *Deployment) NeighborsOf(p Point, self int) []int {
	var out []int
	for i, q := range d.Pos {
		if i == self {
			continue
		}
		if p.InRange(q, d.Range) {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks that all nodes lie inside the region and that the range
// is positive.
func (d *Deployment) Validate() error {
	if d.Range <= 0 {
		return fmt.Errorf("geom: non-positive range %v", d.Range)
	}
	for i, p := range d.Pos {
		if !d.Region.Contains(p) {
			return fmt.Errorf("geom: node %d at %v outside region %vx%v",
				i, p, d.Region.Width, d.Region.Height)
		}
	}
	return nil
}

// IsUnitDiskGraph verifies that g is exactly the unit-disk graph of the
// deployment (used as a test invariant).
func (d *Deployment) IsUnitDiskGraph(g *graph.Graph) bool {
	if g.NumNodes() != len(d.Pos) {
		return false
	}
	for i := range d.Pos {
		for j := i + 1; j < len(d.Pos); j++ {
			inRange := d.Pos[i].InRange(d.Pos[j], d.Range)
			if inRange != g.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
				return false
			}
		}
	}
	return true
}
