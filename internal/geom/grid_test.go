package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteNeighbors is the reference for Grid queries: scan every entry.
func bruteNeighbors(entries map[int]Point, p Point, rng float64, exclude int) []int {
	var out []int
	for id, q := range entries {
		if id == exclude {
			continue
		}
		if p.InRange(q, rng) {
			out = append(out, id)
		}
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridInsertRemoveMove(t *testing.T) {
	g := NewGrid(Region{Width: 200, Height: 200}, 50)
	g.Insert(1, Point{X: 10, Y: 10})
	g.Insert(2, Point{X: 40, Y: 10})
	g.Insert(3, Point{X: 190, Y: 190})
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.Neighbors(Point{X: 10, Y: 10}, 1); !sameInts(got, []int{2}) {
		t.Fatalf("Neighbors = %v, want [2]", got)
	}
	if !g.Remove(2, Point{X: 40, Y: 10}) {
		t.Fatal("Remove failed")
	}
	if g.Remove(2, Point{X: 40, Y: 10}) {
		t.Fatal("double Remove succeeded")
	}
	if got := g.Neighbors(Point{X: 10, Y: 10}, 1); len(got) != 0 {
		t.Fatalf("Neighbors after remove = %v", got)
	}
	if !g.Move(3, Point{X: 190, Y: 190}, Point{X: 20, Y: 20}) {
		t.Fatal("Move failed")
	}
	if got := g.Neighbors(Point{X: 10, Y: 10}, 1); !sameInts(got, []int{3}) {
		t.Fatalf("Neighbors after move = %v, want [3]", got)
	}
	if g.Move(99, Point{}, Point{X: 1, Y: 1}) {
		t.Fatal("Move of absent key succeeded")
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestGridHasNeighbor(t *testing.T) {
	g := NewGrid(Region{Width: 300, Height: 300}, 50)
	if g.HasNeighbor(Point{X: 150, Y: 150}, -1) {
		t.Fatal("empty grid reports a neighbor")
	}
	g.Insert(7, Point{X: 100, Y: 100})
	if !g.HasNeighbor(Point{X: 130, Y: 100}, -1) {
		t.Fatal("in-range entry not found")
	}
	if g.HasNeighbor(Point{X: 130, Y: 100}, 7) {
		t.Fatal("excluded entry reported")
	}
	if g.HasNeighbor(Point{X: 151, Y: 100}, -1) {
		t.Fatal("out-of-range entry reported")
	}
	// Boundary is inclusive, like Point.InRange.
	if !g.HasNeighbor(Point{X: 150, Y: 100}, -1) {
		t.Fatal("boundary distance not in range")
	}
}

// Property: Grid range queries agree exactly with a brute-force scan, for
// points inside the region and up to one range outside it (the clamped
// border cells), across random populations, mutations, and query points.
func TestGridMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		region := Region{Width: 100 + rng.Float64()*700, Height: 100 + rng.Float64()*700}
		r := 20 + rng.Float64()*80
		g := NewGrid(region, r)
		entries := make(map[int]Point)
		n := int(nRaw)%60 + 1
		for id := 0; id < n; id++ {
			p := Point{X: rng.Float64() * region.Width, Y: rng.Float64() * region.Height}
			g.Insert(id, p)
			entries[id] = p
		}
		// Random removals.
		for id := 0; id < n; id += 3 {
			if !g.Remove(id, entries[id]) {
				return false
			}
			delete(entries, id)
		}
		for q := 0; q < 30; q++ {
			// Sample inside and slightly outside the region.
			p := Point{
				X: -r + rng.Float64()*(region.Width+2*r),
				Y: -r + rng.Float64()*(region.Height+2*r),
			}
			exclude := rng.Intn(n + 1)
			if !sameInts(g.Neighbors(p, exclude), bruteNeighbors(entries, p, r, exclude)) {
				return false
			}
			if g.HasNeighbor(p, exclude) != (len(bruteNeighbors(entries, p, r, exclude)) > 0) {
				return false
			}
		}
		return g.Len() == len(entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := &Deployment{Region: Region{Width: 800, Height: 800}, Range: 50}
	for i := 0; i < 300; i++ {
		d.Pos = append(d.Pos, Point{X: rng.Float64() * 800, Y: rng.Float64() * 800})
	}
	fast, ref := d.Graph(), d.GraphAllPairs()
	if !fast.Equal(ref) {
		t.Fatalf("grid graph differs: %d/%d nodes, %d/%d edges",
			fast.NumNodes(), ref.NumNodes(), fast.NumEdges(), ref.NumEdges())
	}
	for _, id := range ref.Nodes() {
		a, b := fast.Neighbors(id), ref.Neighbors(id)
		if len(a) != len(b) {
			t.Fatalf("neighbor count of %d: %d vs %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbor order of %d differs: %v vs %v", id, a, b)
			}
		}
	}
	if !d.IsUnitDiskGraph(fast) {
		t.Fatal("grid graph is not the unit-disk graph")
	}
}

func TestDeploymentIndexTracksAppends(t *testing.T) {
	d := &Deployment{Region: Region{Width: 400, Height: 400}, Range: 50}
	d.Pos = append(d.Pos, Point{X: 100, Y: 100})
	if got := d.NeighborsOf(Point{X: 120, Y: 100}, -1); !sameInts(got, []int{0}) {
		t.Fatalf("NeighborsOf = %v", got)
	}
	// Appends after the first query must be picked up automatically.
	d.Pos = append(d.Pos, Point{X: 130, Y: 100})
	if got := d.NeighborsOf(Point{X: 120, Y: 100}, -1); !sameInts(got, []int{0, 1}) {
		t.Fatalf("NeighborsOf after append = %v", got)
	}
	if !d.HasNeighbor(Point{X: 120, Y: 100}, 0) {
		t.Fatal("HasNeighbor missed appended node")
	}
	// In-place edits require InvalidateIndex.
	d.Pos[0] = Point{X: 300, Y: 300}
	d.InvalidateIndex()
	if got := d.NeighborsOf(Point{X: 120, Y: 100}, -1); !sameInts(got, []int{1}) {
		t.Fatalf("NeighborsOf after edit+invalidate = %v", got)
	}
	// Truncation forces a rebuild even without InvalidateIndex.
	d.Pos = d.Pos[:1]
	if got := d.NeighborsOf(Point{X: 300, Y: 300}, -1); !sameInts(got, []int{0}) {
		t.Fatalf("NeighborsOf after truncation = %v", got)
	}
}

// FuzzGridEquivalence cross-checks the spatial index against the brute
// force O(n^2) path on fuzz-chosen deployments: NeighborsOf must return the
// same indices in the same ascending order as NeighborsOfAllPairs, and
// Graph must equal GraphAllPairs.
func FuzzGridEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(40), uint16(500), uint16(60))
	f.Add(int64(99), uint8(3), uint16(80), uint16(200))
	f.Add(int64(7), uint8(120), uint16(1200), uint16(50))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, sideRaw, rangeRaw uint16) {
		rng := rand.New(rand.NewSource(seed))
		region := Region{
			Width:  50 + float64(sideRaw%1500),
			Height: 50 + float64(rangeRaw%1500),
		}
		r := 10 + float64(rangeRaw%150)
		d := &Deployment{Region: region, Range: r}
		n := int(nRaw)%80 + 1
		for i := 0; i < n; i++ {
			d.Pos = append(d.Pos, Point{X: rng.Float64() * region.Width, Y: rng.Float64() * region.Height})
		}
		fast, ref := d.Graph(), d.GraphAllPairs()
		if !fast.Equal(ref) {
			t.Fatalf("grid graph differs from all-pairs: %d/%d edges", fast.NumEdges(), ref.NumEdges())
		}
		for _, id := range ref.Nodes() {
			a, b := fast.Neighbors(id), ref.Neighbors(id)
			if len(a) != len(b) {
				t.Fatalf("neighbor count of %d: %v vs %v", id, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("neighbor order of %d: %v vs %v", id, a, b)
				}
			}
		}
		for q := 0; q < 20; q++ {
			p := Point{
				X: -r + rng.Float64()*(region.Width+2*r),
				Y: -r + rng.Float64()*(region.Height+2*r),
			}
			self := rng.Intn(n+2) - 1
			got := d.NeighborsOf(p, self)
			want := d.NeighborsOfAllPairs(p, self)
			if !sameInts(got, want) {
				t.Fatalf("NeighborsOf(%v,%d) = %v, want %v", p, self, got, want)
			}
			if d.HasNeighbor(p, self) != (len(want) > 0) {
				t.Fatalf("HasNeighbor(%v,%d) disagrees with brute force", p, self)
			}
		}
	})
}
