package workload

import (
	"math/rand"
	"strings"
	"testing"

	"dynsens/internal/geom"
	"dynsens/internal/graph"
)

func sameIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameEvents(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIncrementalConnectedMatchesAllPairs(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := PaperConfig(seed, 8, 80)
		fast, err := IncrementalConnected(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := IncrementalConnectedAllPairs(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast.Pos) != len(ref.Pos) {
			t.Fatalf("seed %d: %d vs %d nodes", seed, len(fast.Pos), len(ref.Pos))
		}
		for i := range fast.Pos {
			if fast.Pos[i] != ref.Pos[i] {
				t.Fatalf("seed %d: node %d at %v vs %v — random streams diverged", seed, i, fast.Pos[i], ref.Pos[i])
			}
		}
	}
}

func TestPlacementErrorReportsDensity(t *testing.T) {
	// A 10 km square with 1 m range cannot connect a second node by
	// rejection sampling; the error must report the achieved density.
	cfg := Config{Seed: 3, Region: geom.Region{Width: 10000, Height: 10000}, Range: 1, N: 3}
	_, err := IncrementalConnected(cfg)
	if err == nil {
		t.Fatal("expected placement failure")
	}
	if !strings.Contains(err.Error(), "achieved density") {
		t.Fatalf("error does not report density: %v", err)
	}
}

func TestUDGStateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	region := geom.Region{Width: 500, Height: 500}
	st := NewUDGState(region, 60)
	live := make(map[graph.NodeID]geom.Point)
	for id := graph.NodeID(0); id < 40; id++ {
		p := geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		delta, err := st.Join(id, p)
		if err != nil {
			t.Fatal(err)
		}
		live[id] = p
		want := udgOf(live, 60).Neighbors(id)
		if !sameIDs(delta, want) {
			t.Fatalf("join %d delta %v, want %v", id, delta, want)
		}
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
	// Interleave leaves and rejoins, verifying against brute force.
	for i := 0; i < 20; i++ {
		id := graph.NodeID(rng.Intn(40))
		if _, ok := st.Pos(id); ok {
			before := udgOf(live, 60).Neighbors(id)
			delta, err := st.Leave(id)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(delta, before) {
				t.Fatalf("leave %d delta %v, want %v", id, delta, before)
			}
			delete(live, id)
		} else {
			p := geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
			if _, err := st.Apply(Event{Kind: Join, Node: id, Pos: p}); err != nil {
				t.Fatal(err)
			}
			live[id] = p
		}
		if err := st.Verify(); err != nil {
			t.Fatalf("after op %d: %v", i, err)
		}
	}
}

func TestUDGStateRejectsBadOps(t *testing.T) {
	st := NewUDGState(geom.Region{Width: 100, Height: 100}, 50)
	if _, err := st.Join(1, geom.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Join(1, geom.Point{X: 2, Y: 2}); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if _, err := st.Leave(2); err == nil {
		t.Fatal("leave of absent node accepted")
	}
	if _, err := st.Apply(Event{Kind: EventKind(9)}); err == nil {
		t.Fatal("unknown event kind accepted")
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnTraceMatchesAllPairs(t *testing.T) {
	for _, seed := range []int64{2, 9} {
		cfg := PaperConfig(seed, 8, 50)
		fastBase, fastEv, err := ChurnTrace(cfg, 40, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		refBase, refEv, err := ChurnTraceAllPairs(cfg, 40, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if len(fastBase.Pos) != len(refBase.Pos) {
			t.Fatalf("seed %d: base sizes differ", seed)
		}
		for i := range fastBase.Pos {
			if fastBase.Pos[i] != refBase.Pos[i] {
				t.Fatalf("seed %d: base node %d differs", seed, i)
			}
		}
		if !sameEvents(fastEv, refEv) {
			t.Fatalf("seed %d: traces diverged:\nfast: %v\nref:  %v", seed, fastEv, refEv)
		}
	}
}

func TestMobilityTraceMatchesAllPairs(t *testing.T) {
	for _, seed := range []int64{4, 13} {
		cfg := PaperConfig(seed, 8, 50)
		fastBase, fastEv, err := MobilityTrace(cfg, 20, 2)
		if err != nil {
			t.Fatal(err)
		}
		refBase, refEv, err := MobilityTraceAllPairs(cfg, 20, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fastBase.Pos {
			if fastBase.Pos[i] != refBase.Pos[i] {
				t.Fatalf("seed %d: base node %d differs", seed, i)
			}
		}
		if !sameEvents(fastEv, refEv) {
			t.Fatalf("seed %d: traces diverged:\nfast: %v\nref:  %v", seed, fastEv, refEv)
		}
	}
}

// FuzzChurnEquivalence drives the incremental and all-pairs generators with
// fuzz-chosen parameters and asserts byte-identical traces, then replays
// the trace through a UDGState, cross-checking the maintained graph against
// the from-scratch unit-disk graph after every event.
func FuzzChurnEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(20), uint8(102))
	f.Add(int64(55), uint8(10), uint8(35), uint8(230))
	f.Add(int64(7), uint8(60), uint8(12), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, stepsRaw, fracRaw uint8) {
		n := int(nRaw)%50 + 3
		steps := int(stepsRaw) % 30
		frac := float64(fracRaw) / 255
		cfg := PaperConfig(seed, 6, n)
		fastBase, fastEv, err := ChurnTrace(cfg, steps, frac)
		if err != nil {
			t.Skip("placement failed for this configuration")
		}
		refBase, refEv, err := ChurnTraceAllPairs(cfg, steps, frac)
		if err != nil {
			t.Fatalf("all-pairs failed where grid path succeeded: %v", err)
		}
		for i := range fastBase.Pos {
			if fastBase.Pos[i] != refBase.Pos[i] {
				t.Fatalf("base node %d differs: %v vs %v", i, fastBase.Pos[i], refBase.Pos[i])
			}
		}
		if !sameEvents(fastEv, refEv) {
			t.Fatalf("traces diverged:\nfast: %v\nref:  %v", fastEv, refEv)
		}
		// Replay, verifying incremental maintenance at every step.
		st := NewUDGState(cfg.Region, cfg.Range)
		live := make(map[graph.NodeID]geom.Point)
		for i, p := range fastBase.Pos {
			if _, err := st.Join(graph.NodeID(i), p); err != nil {
				t.Fatal(err)
			}
			live[graph.NodeID(i)] = p
		}
		for i, ev := range fastEv {
			if _, err := st.Apply(ev); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			switch ev.Kind {
			case Join:
				live[ev.Node] = ev.Pos
			case Leave:
				delete(live, ev.Node)
			}
			if err := st.Verify(); err != nil {
				t.Fatalf("after event %d: %v", i, err)
			}
			if !st.Graph().Equal(udgOf(live, cfg.Range)) {
				t.Fatalf("graph mismatch after event %d", i)
			}
			if !st.Graph().Connected() {
				t.Fatalf("network disconnected after event %d", i)
			}
		}
	})
}
