package workload

import (
	"fmt"
	"math"

	"dynsens/internal/geom"
)

// GridDeployment places cfg.N nodes on a deterministic square lattice
// centered in the region, row-major from the lower-left corner. The
// spacing is the largest multiple-free fit that keeps lattice neighbors
// within communication range (connectivity by construction); when the
// region is too large for N nodes at that spacing the lattice simply
// occupies its centered sub-square. No randomness is involved: the same
// cfg always yields the same deployment, which makes grid scenarios
// byte-stable without a seed. The seed field of cfg is ignored.
func GridDeployment(cfg Config) (*geom.Deployment, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", cfg.N)
	}
	if cfg.Range <= 0 {
		return nil, fmt.Errorf("workload: communication range must be positive, got %v", cfg.Range)
	}
	cols := int(math.Ceil(math.Sqrt(float64(cfg.N))))
	rows := (cfg.N + cols - 1) / cols
	// Lattice neighbors sit one spacing apart; keep a 10% margin below
	// the range so floating-point edge cases cannot disconnect the graph.
	spacing := 0.9 * cfg.Range
	w := float64(cols-1) * spacing
	h := float64(rows-1) * spacing
	if w > cfg.Region.Width || h > cfg.Region.Height {
		return nil, fmt.Errorf("workload: grid of %d nodes at spacing %.1f m does not fit a %.0fx%.0f m region",
			cfg.N, spacing, cfg.Region.Width, cfg.Region.Height)
	}
	x0 := (cfg.Region.Width - w) / 2
	y0 := (cfg.Region.Height - h) / 2
	d := &geom.Deployment{Region: cfg.Region, Range: cfg.Range}
	for i := 0; i < cfg.N; i++ {
		d.Pos = append(d.Pos, geom.Point{
			X: x0 + float64(i%cols)*spacing,
			Y: y0 + float64(i/cols)*spacing,
		})
	}
	return d, nil
}
