// Package workload generates the simulation inputs of the paper's
// evaluation: node deployments on square regions (64-720 nodes, 50 m range,
// 800-1200 m squares), dynamic join/leave (churn) traces exercising
// node-move-in/node-move-out, failure traces for the robustness comparison,
// and multicast group assignments.
//
// Every generator is driven by an explicit seed so experiments are exactly
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"dynsens/internal/geom"
	"dynsens/internal/graph"
)

// Config describes a deployment to generate.
type Config struct {
	Seed   int64
	Region geom.Region
	Range  float64 // communication range, meters
	N      int     // number of nodes
	// Rand, when non-nil, supplies all randomness instead of Seed. The
	// Seed-based generators derive per-stage streams (placement, churn,
	// mobility) from Seed; with an injected source the caller owns the
	// stream and its sharing.
	Rand *rand.Rand
}

// rng returns the injected source, or a fresh one derived from Seed with a
// per-stage offset so the Seed-based streams stay distinct.
func (c Config) rng(offset int64) *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.New(rand.NewSource(c.Seed + offset))
}

// PaperConfig returns the paper's setup: a side x side units region with
// 100 m units and 50 m communication range.
func PaperConfig(seed int64, side, n int) Config {
	return Config{
		Seed:   seed,
		Region: geom.SquareUnits(side, 100),
		Range:  50,
		N:      n,
	}
}

// maxPlacementAttempts bounds rejection sampling per node before giving up.
const maxPlacementAttempts = 200000

// IncrementalConnected places N nodes one at a time: the first uniformly at
// random, each later node uniformly at random but accepted only if it is
// within communication range of an already-placed node. This mirrors the
// paper's self-constructing network, where every arriving node performs
// node-move-in and therefore must hear the existing network. The resulting
// unit-disk graph is connected by construction at any density.
func IncrementalConnected(cfg Config) (*geom.Deployment, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", cfg.N)
	}
	rng := cfg.rng(0)
	d := &geom.Deployment{Region: cfg.Region, Range: cfg.Range}
	d.Pos = append(d.Pos, randomPoint(rng, cfg.Region))
	for len(d.Pos) < cfg.N {
		placed := false
		for attempt := 0; attempt < maxPlacementAttempts; attempt++ {
			p := randomPoint(rng, cfg.Region)
			if len(d.NeighborsOf(p, -1)) > 0 {
				d.Pos = append(d.Pos, p)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("workload: could not connect node %d after %d attempts (range %.0f m too small for region)",
				len(d.Pos), maxPlacementAttempts, cfg.Range)
		}
	}
	return d, nil
}

// Uniform places N nodes independently and uniformly at random. The
// resulting graph may be disconnected at low density; use LargestComponent
// or IncrementalConnected when connectivity is required.
func Uniform(cfg Config) *geom.Deployment {
	rng := cfg.rng(0)
	d := &geom.Deployment{Region: cfg.Region, Range: cfg.Range}
	for i := 0; i < cfg.N; i++ {
		d.Pos = append(d.Pos, randomPoint(rng, cfg.Region))
	}
	return d
}

// LargestComponent restricts a deployment to its largest connected
// component and returns the restricted deployment (node IDs are renumbered
// densely, preserving relative order) along with the kept original indices.
func LargestComponent(d *geom.Deployment) (*geom.Deployment, []int) {
	g := d.Graph()
	comps := g.Components()
	best := -1
	for i, c := range comps {
		if best == -1 || len(c) > len(comps[best]) {
			best = i
		}
	}
	if best == -1 {
		return &geom.Deployment{Region: d.Region, Range: d.Range}, nil
	}
	var kept []int
	out := &geom.Deployment{Region: d.Region, Range: d.Range}
	for _, id := range comps[best] {
		kept = append(kept, int(id))
		out.Pos = append(out.Pos, d.Pos[int(id)])
	}
	return out, kept
}

func randomPoint(rng *rand.Rand, r geom.Region) geom.Point {
	return geom.Point{X: rng.Float64() * r.Width, Y: rng.Float64() * r.Height}
}

// EventKind distinguishes churn events.
type EventKind int

const (
	// Join adds a node at Pos.
	Join EventKind = iota
	// Leave removes node Node.
	Leave
)

// String returns "join" or "leave".
func (k EventKind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one churn step.
type Event struct {
	Kind EventKind
	Node graph.NodeID // for Leave; for Join the new node's ID
	Pos  geom.Point   // for Join
}

// ChurnTrace generates a sequence of joins and leaves starting from an
// initial deployment. Leaves only remove nodes whose departure keeps the
// remaining unit-disk graph connected (the paper's node-move-out assumes the
// residual G is connected); joins place nodes that connect to the current
// network. leaveFrac in [0,1] is the approximate fraction of leave events.
// Returned events reference node IDs in the combined space: initial nodes
// are 0..N-1 and joined nodes get fresh increasing IDs.
func ChurnTrace(cfg Config, steps int, leaveFrac float64) (*geom.Deployment, []Event, error) {
	base, err := IncrementalConnected(cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := cfg.rng(1)
	// live tracks current node positions by ID.
	live := make(map[graph.NodeID]geom.Point, cfg.N)
	for i, p := range base.Pos {
		live[graph.NodeID(i)] = p
	}
	nextID := graph.NodeID(cfg.N)
	var events []Event
	for s := 0; s < steps; s++ {
		doLeave := rng.Float64() < leaveFrac && len(live) > 2
		if doLeave {
			victim, ok := removableNode(live, base.Range, rng)
			if ok {
				delete(live, victim)
				events = append(events, Event{Kind: Leave, Node: victim})
				continue
			}
			// No removable node found; fall through to a join.
		}
		p, ok := connectedPoint(live, base.Region, base.Range, rng)
		if !ok {
			return nil, nil, fmt.Errorf("workload: churn join placement failed at step %d", s)
		}
		live[nextID] = p
		events = append(events, Event{Kind: Join, Node: nextID, Pos: p})
		nextID++
	}
	return base, events, nil
}

// MobilityTrace models node movement the way the paper's topology model
// does ("a power-trained sensor node withdraws its connection from its
// network ... and comes back"): each move is a Leave of node v immediately
// followed by a Join of the same v at a new position. The new position is
// sampled within wander*Range of the old one (falling back to anywhere in
// the region), and both halves keep the network connected. The returned
// events alternate Leave/Join pairs for the same node.
func MobilityTrace(cfg Config, moves int, wander float64) (*geom.Deployment, []Event, error) {
	if wander <= 0 {
		wander = 2
	}
	base, err := IncrementalConnected(cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := cfg.rng(2)
	live := make(map[graph.NodeID]geom.Point, cfg.N)
	for i, p := range base.Pos {
		live[graph.NodeID(i)] = p
	}
	var events []Event
	for m := 0; m < moves; m++ {
		if len(live) <= 2 {
			break
		}
		mover, ok := removableNode(live, base.Range, rng)
		if !ok {
			return nil, nil, fmt.Errorf("workload: no movable node at step %d", m)
		}
		old := live[mover]
		delete(live, mover)
		// Prefer a nearby spot; fall back to anywhere connected.
		p, ok := nearbyConnectedPoint(live, base.Region, base.Range, old, wander*base.Range, rng)
		if !ok {
			p, ok = connectedPoint(live, base.Region, base.Range, rng)
			if !ok {
				return nil, nil, fmt.Errorf("workload: mobility rejoin failed at step %d", m)
			}
		}
		events = append(events, Event{Kind: Leave, Node: mover})
		events = append(events, Event{Kind: Join, Node: mover, Pos: p})
		live[mover] = p
	}
	return base, events, nil
}

// nearbyConnectedPoint samples a point within radius of old that hears at
// least one live node.
func nearbyConnectedPoint(live map[graph.NodeID]geom.Point, region geom.Region, rng float64, old geom.Point, radius float64, r *rand.Rand) (geom.Point, bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		p := geom.Point{
			X: old.X + (r.Float64()*2-1)*radius,
			Y: old.Y + (r.Float64()*2-1)*radius,
		}
		if !region.Contains(p) || p.Dist(old) > radius {
			continue
		}
		for _, q := range live {
			if p.InRange(q, rng) {
				return p, true
			}
		}
	}
	return geom.Point{}, false
}

// removableNode picks a random live node whose removal keeps the unit-disk
// graph of the remaining nodes connected.
func removableNode(live map[graph.NodeID]geom.Point, rng float64, r *rand.Rand) (graph.NodeID, bool) {
	ids := make([]graph.NodeID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	// Deterministic base order, random starting offset.
	sortIDs(ids)
	off := r.Intn(len(ids))
	g := udgOf(live, rng)
	for k := 0; k < len(ids); k++ {
		cand := ids[(off+k)%len(ids)]
		h := g.Clone()
		h.RemoveNode(cand)
		if h.Connected() {
			return cand, true
		}
	}
	return 0, false
}

// connectedPoint samples a point in range of at least one live node.
func connectedPoint(live map[graph.NodeID]geom.Point, region geom.Region, rng float64, r *rand.Rand) (geom.Point, bool) {
	for attempt := 0; attempt < maxPlacementAttempts; attempt++ {
		p := geom.Point{X: r.Float64() * region.Width, Y: r.Float64() * region.Height}
		for _, q := range live {
			if p.InRange(q, rng) {
				return p, true
			}
		}
	}
	return geom.Point{}, false
}

func udgOf(live map[graph.NodeID]geom.Point, rng float64) *graph.Graph {
	g := graph.New()
	ids := make([]graph.NodeID, 0, len(live))
	for id := range live {
		g.AddNode(id)
		ids = append(ids, id)
	}
	sortIDs(ids)
	for i, u := range ids {
		for _, v := range ids[i+1:] {
			if live[u].InRange(live[v], rng) {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

func sortIDs(ids []graph.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Failure kills a node at the start of a given round during a broadcast.
type Failure struct {
	Node  graph.NodeID
	Round int
}

// FailureTrace selects approximately frac of the nodes in g (never the
// protected node, typically the broadcast source) and assigns each a
// failure round uniform in [1, maxRound].
func FailureTrace(g *graph.Graph, protected graph.NodeID, frac float64, maxRound int, seed int64) []Failure {
	return FailureTraceRand(g, protected, frac, maxRound, rand.New(rand.NewSource(seed)))
}

// FailureTraceRand is FailureTrace with an injected source.
func FailureTraceRand(g *graph.Graph, protected graph.NodeID, frac float64, maxRound int, rng *rand.Rand) []Failure {
	var out []Failure
	for _, id := range g.Nodes() {
		if id == protected {
			continue
		}
		if rng.Float64() < frac {
			out = append(out, Failure{Node: id, Round: 1 + rng.Intn(maxRound)})
		}
	}
	return out
}

// Groups assigns each node to zero or more of k multicast groups with
// probability memberProb per group. Group IDs are 1..k, matching the
// paper's example with groups (1) and (2). The map only contains nodes
// with at least one group.
func Groups(g *graph.Graph, k int, memberProb float64, seed int64) map[graph.NodeID][]int {
	return GroupsRand(g, k, memberProb, rand.New(rand.NewSource(seed)))
}

// GroupsRand is Groups with an injected source.
func GroupsRand(g *graph.Graph, k int, memberProb float64, rng *rand.Rand) map[graph.NodeID][]int {
	out := make(map[graph.NodeID][]int)
	for _, id := range g.Nodes() {
		var gs []int
		for grp := 1; grp <= k; grp++ {
			if rng.Float64() < memberProb {
				gs = append(gs, grp)
			}
		}
		if len(gs) > 0 {
			out[id] = gs
		}
	}
	return out
}
