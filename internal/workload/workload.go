// Package workload generates the simulation inputs of the paper's
// evaluation: node deployments on square regions (64-720 nodes, 50 m range,
// 800-1200 m squares), dynamic join/leave (churn) traces exercising
// node-move-in/node-move-out, failure traces for the robustness comparison,
// and multicast group assignments.
//
// Every generator is driven by an explicit seed so experiments are exactly
// reproducible. The trace generators maintain the evolving unit-disk graph
// incrementally (UDGState) on top of a spatial grid, so traces scale far
// past the paper's n=500; the original all-pairs implementations are
// retained (*AllPairs) as reference baselines, and equivalence tests assert
// the two paths produce identical deployments, events, and edge orders.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dynsens/internal/geom"
	"dynsens/internal/graph"
)

// Config describes a deployment to generate.
type Config struct {
	Seed   int64
	Region geom.Region
	Range  float64 // communication range, meters
	N      int     // number of nodes
	// Rand, when non-nil, supplies all randomness instead of Seed. The
	// Seed-based generators derive per-stage streams (placement, churn,
	// mobility) from Seed; with an injected source the caller owns the
	// stream and its sharing.
	Rand *rand.Rand
}

// rng returns the injected source, or a fresh one derived from Seed with a
// per-stage offset so the Seed-based streams stay distinct.
func (c Config) rng(offset int64) *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.New(rand.NewSource(c.Seed + offset))
}

// PaperConfig returns the paper's setup: a side x side units region with
// 100 m units and 50 m communication range.
func PaperConfig(seed int64, side, n int) Config {
	return Config{
		Seed:   seed,
		Region: geom.SquareUnits(side, 100),
		Range:  50,
		N:      n,
	}
}

// maxPlacementAttempts bounds rejection sampling per node before giving up.
const maxPlacementAttempts = 200000

// noExclude is a grid key that is never inserted, used to exclude nothing
// from a neighbor query. Node IDs in traces are non-negative, but fuzzing
// may apply arbitrary IDs, so the sentinel sits outside the int range any
// NodeID maps to.
const noExclude = math.MinInt

// IncrementalConnected places N nodes one at a time: the first uniformly at
// random, each later node uniformly at random but accepted only if it is
// within communication range of an already-placed node. This mirrors the
// paper's self-constructing network, where every arriving node performs
// node-move-in and therefore must hear the existing network. The resulting
// unit-disk graph is connected by construction at any density. The
// acceptance check runs on the deployment's spatial grid, so seeding is
// O(attempts) instead of O(n * attempts).
func IncrementalConnected(cfg Config) (*geom.Deployment, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", cfg.N)
	}
	rng := cfg.rng(0)
	d := &geom.Deployment{Region: cfg.Region, Range: cfg.Range}
	d.Pos = append(d.Pos, randomPoint(rng, cfg.Region))
	for len(d.Pos) < cfg.N {
		placed := false
		for attempt := 0; attempt < maxPlacementAttempts; attempt++ {
			p := randomPoint(rng, cfg.Region)
			if d.HasNeighbor(p, -1) {
				d.Pos = append(d.Pos, p)
				placed = true
				break
			}
		}
		if !placed {
			return nil, placementError(cfg, len(d.Pos))
		}
	}
	return d, nil
}

// IncrementalConnectedAllPairs is the brute-force reference for
// IncrementalConnected: the acceptance check scans every placed node. It
// consumes the random stream identically, so on success it returns the
// exact same deployment.
func IncrementalConnectedAllPairs(cfg Config) (*geom.Deployment, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", cfg.N)
	}
	rng := cfg.rng(0)
	d := &geom.Deployment{Region: cfg.Region, Range: cfg.Range}
	d.Pos = append(d.Pos, randomPoint(rng, cfg.Region))
	for len(d.Pos) < cfg.N {
		placed := false
		for attempt := 0; attempt < maxPlacementAttempts; attempt++ {
			p := randomPoint(rng, cfg.Region)
			if len(d.NeighborsOfAllPairs(p, -1)) > 0 {
				d.Pos = append(d.Pos, p)
				placed = true
				break
			}
		}
		if !placed {
			return nil, placementError(cfg, len(d.Pos))
		}
	}
	return d, nil
}

// placementError explains a failed incremental placement in terms of the
// achieved density: the expected number of placed nodes audible from a
// uniform sample. Values well below 1 mean the region is too sparse for
// rejection sampling to connect new nodes.
func placementError(cfg Config, placed int) error {
	coverage := float64(placed) * math.Pi * cfg.Range * cfg.Range / cfg.Region.Area()
	return fmt.Errorf("workload: could not connect node %d/%d after %d attempts: achieved density %.4f expected in-range nodes per uniform sample (range %.0f m over %.0fx%.0f m); increase Range, shrink the Region, or lower N",
		placed, cfg.N, maxPlacementAttempts, coverage, cfg.Range, cfg.Region.Width, cfg.Region.Height)
}

// Uniform places N nodes independently and uniformly at random. The
// resulting graph may be disconnected at low density; use LargestComponent
// or IncrementalConnected when connectivity is required.
func Uniform(cfg Config) *geom.Deployment {
	rng := cfg.rng(0)
	d := &geom.Deployment{Region: cfg.Region, Range: cfg.Range}
	for i := 0; i < cfg.N; i++ {
		d.Pos = append(d.Pos, randomPoint(rng, cfg.Region))
	}
	return d
}

// LargestComponent restricts a deployment to its largest connected
// component and returns the restricted deployment (node IDs are renumbered
// densely, preserving relative order) along with the kept original indices.
func LargestComponent(d *geom.Deployment) (*geom.Deployment, []int) {
	g := d.Graph()
	comps := g.Components()
	best := -1
	for i, c := range comps {
		if best == -1 || len(c) > len(comps[best]) {
			best = i
		}
	}
	if best == -1 {
		return &geom.Deployment{Region: d.Region, Range: d.Range}, nil
	}
	var kept []int
	out := &geom.Deployment{Region: d.Region, Range: d.Range}
	for _, id := range comps[best] {
		kept = append(kept, int(id))
		out.Pos = append(out.Pos, d.Pos[int(id)])
	}
	return out, kept
}

func randomPoint(rng *rand.Rand, r geom.Region) geom.Point {
	return geom.Point{X: rng.Float64() * r.Width, Y: rng.Float64() * r.Height}
}

// EventKind distinguishes churn events.
type EventKind int

const (
	// Join adds a node at Pos.
	Join EventKind = iota
	// Leave removes node Node.
	Leave
)

// String returns "join" or "leave".
func (k EventKind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one churn step.
type Event struct {
	Kind EventKind
	Node graph.NodeID // for Leave; for Join the new node's ID
	Pos  geom.Point   // for Join
}

// UDGState maintains the unit-disk graph of a churning node population
// incrementally: each Join inserts one node plus its delta edge set (found
// via the spatial grid in O(neighbors)) and each Leave removes one node
// plus its incident edges, replacing the from-scratch udgOf recomputation
// the all-pairs trace generators perform per event. Verify checks the
// maintained state against the brute-force reference.
type UDGState struct {
	region geom.Region
	rng    float64
	pos    map[graph.NodeID]geom.Point
	g      *graph.Graph
	grid   *geom.Grid
	buf    []int // scratch for grid queries
}

// NewUDGState returns an empty state over region with communication range
// rng.
func NewUDGState(region geom.Region, rng float64) *UDGState {
	return &UDGState{
		region: region,
		rng:    rng,
		pos:    make(map[graph.NodeID]geom.Point),
		g:      graph.New(),
		grid:   geom.NewGrid(region, rng),
	}
}

// Len returns the number of live nodes.
func (s *UDGState) Len() int { return len(s.pos) }

// Pos returns the position of a live node.
func (s *UDGState) Pos(id graph.NodeID) (geom.Point, bool) {
	p, ok := s.pos[id]
	return p, ok
}

// Graph returns the maintained unit-disk graph (shared, do not mutate).
func (s *UDGState) Graph() *graph.Graph { return s.g }

// Join inserts node id at p and returns the nodes it became adjacent to,
// ascending — the delta edge set of the event.
func (s *UDGState) Join(id graph.NodeID, p geom.Point) ([]graph.NodeID, error) {
	if _, dup := s.pos[id]; dup {
		return nil, fmt.Errorf("workload: join of existing node %d", id)
	}
	s.buf = s.grid.AppendNeighbors(s.buf[:0], p, noExclude)
	delta := make([]graph.NodeID, 0, len(s.buf))
	s.g.AddNode(id)
	for _, j := range s.buf {
		nb := graph.NodeID(j)
		if err := s.g.AddEdge(id, nb); err != nil {
			return nil, err
		}
		delta = append(delta, nb)
	}
	s.grid.Insert(int(id), p)
	s.pos[id] = p
	return delta, nil
}

// Leave removes node id and returns the nodes it was adjacent to,
// ascending — the delta edge set of the event.
func (s *UDGState) Leave(id graph.NodeID) ([]graph.NodeID, error) {
	p, ok := s.pos[id]
	if !ok {
		return nil, fmt.Errorf("workload: leave of absent node %d", id)
	}
	delta := append([]graph.NodeID(nil), s.g.Neighbors(id)...)
	s.g.RemoveNode(id)
	s.grid.Remove(int(id), p)
	delete(s.pos, id)
	return delta, nil
}

// Apply replays one trace event and returns the delta edge set.
func (s *UDGState) Apply(ev Event) ([]graph.NodeID, error) {
	switch ev.Kind {
	case Join:
		return s.Join(ev.Node, ev.Pos)
	case Leave:
		return s.Leave(ev.Node)
	default:
		return nil, fmt.Errorf("workload: unknown event kind %v", ev.Kind)
	}
}

// HasNeighbor reports whether p is within range of any live node.
func (s *UDGState) HasNeighbor(p geom.Point) bool {
	return s.grid.HasNeighbor(p, noExclude)
}

// Verify checks the incrementally maintained state against the brute-force
// reference: the graph must equal the from-scratch unit-disk graph of the
// live positions (identical node sets, edge sets, and ascending neighbor
// orders) and the grid must hold exactly the live nodes.
func (s *UDGState) Verify() error {
	want := udgOf(s.pos, s.rng)
	if !s.g.Equal(want) {
		return fmt.Errorf("workload: incremental graph diverged from brute-force UDG (%d/%d nodes, %d/%d edges)",
			s.g.NumNodes(), want.NumNodes(), s.g.NumEdges(), want.NumEdges())
	}
	for _, id := range want.Nodes() {
		a, b := s.g.Neighbors(id), want.Neighbors(id)
		if len(a) != len(b) {
			return fmt.Errorf("workload: neighbor count of %d diverged: %d vs %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				return fmt.Errorf("workload: neighbor order of %d diverged at %d: %v vs %v", id, i, a, b)
			}
		}
	}
	if s.grid.Len() != len(s.pos) {
		return fmt.Errorf("workload: grid holds %d entries for %d live nodes", s.grid.Len(), len(s.pos))
	}
	for _, id := range s.g.Nodes() {
		got := s.grid.Neighbors(s.pos[id], int(id))
		want := make([]int, 0, len(got))
		for _, nb := range s.g.Neighbors(id) {
			want = append(want, int(nb))
		}
		if len(got) != len(want) {
			return fmt.Errorf("workload: grid neighbors of %d diverged: %v vs %v", id, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("workload: grid neighbor order of %d diverged: %v vs %v", id, got, want)
			}
		}
	}
	return nil
}

// connectedPoint samples a point in range of at least one live node, using
// the grid for the O(1) acceptance check.
func (s *UDGState) connectedPoint(r *rand.Rand) (geom.Point, bool) {
	for attempt := 0; attempt < maxPlacementAttempts; attempt++ {
		p := geom.Point{X: r.Float64() * s.region.Width, Y: r.Float64() * s.region.Height}
		if s.grid.HasNeighbor(p, noExclude) {
			return p, true
		}
	}
	return geom.Point{}, false
}

// nearbyConnectedPoint samples a point within radius of old that hears at
// least one live node.
func (s *UDGState) nearbyConnectedPoint(old geom.Point, radius float64, r *rand.Rand) (geom.Point, bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		p := geom.Point{
			X: old.X + (r.Float64()*2-1)*radius,
			Y: old.Y + (r.Float64()*2-1)*radius,
		}
		if !s.region.Contains(p) || p.Dist(old) > radius {
			continue
		}
		if s.grid.HasNeighbor(p, noExclude) {
			return p, true
		}
	}
	return geom.Point{}, false
}

// removableNode picks a random live node whose removal keeps the remaining
// unit-disk graph connected. On a connected graph this is one articulation-
// point computation (O(n+m)) instead of a per-candidate connectivity probe;
// the disconnected case (never produced by the trace generators, reachable
// via direct UDGState use) falls back to per-candidate checks so the
// decision stays exactly equivalent to the all-pairs reference.
func (s *UDGState) removableNode(r *rand.Rand) (graph.NodeID, bool) {
	ids := s.g.Nodes()
	if len(ids) == 0 {
		return 0, false
	}
	off := r.Intn(len(ids))
	if s.g.Connected() {
		art := s.g.ArticulationPoints()
		for k := 0; k < len(ids); k++ {
			cand := ids[(off+k)%len(ids)]
			if !art[cand] {
				return cand, true
			}
		}
		return 0, false
	}
	for k := 0; k < len(ids); k++ {
		cand := ids[(off+k)%len(ids)]
		if s.removalKeepsConnected(cand) {
			return cand, true
		}
	}
	return 0, false
}

// removalKeepsConnected temporarily removes cand, checks connectivity of
// the remainder, and restores the node with its edges.
func (s *UDGState) removalKeepsConnected(cand graph.NodeID) bool {
	saved := append([]graph.NodeID(nil), s.g.Neighbors(cand)...)
	s.g.RemoveNode(cand)
	ok := s.g.Connected()
	s.g.AddNode(cand)
	for _, n := range saved {
		// AddEdge cannot fail: cand was never a self-neighbor.
		_ = s.g.AddEdge(cand, n)
	}
	return ok
}

// seedState builds a UDGState holding the base deployment's nodes 0..N-1.
func seedState(cfg Config, base *geom.Deployment) (*UDGState, error) {
	st := NewUDGState(cfg.Region, cfg.Range)
	for i, p := range base.Pos {
		if _, err := st.Join(graph.NodeID(i), p); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// ChurnTrace generates a sequence of joins and leaves starting from an
// initial deployment. Leaves only remove nodes whose departure keeps the
// remaining unit-disk graph connected (the paper's node-move-out assumes the
// residual G is connected); joins place nodes that connect to the current
// network. leaveFrac in [0,1] is the approximate fraction of leave events.
// Returned events reference node IDs in the combined space: initial nodes
// are 0..N-1 and joined nodes get fresh increasing IDs. The graph is
// maintained incrementally per event; ChurnTraceAllPairs is the reference
// implementation this is equivalence-tested against.
func ChurnTrace(cfg Config, steps int, leaveFrac float64) (*geom.Deployment, []Event, error) {
	base, err := IncrementalConnected(cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := cfg.rng(1)
	st, err := seedState(cfg, base)
	if err != nil {
		return nil, nil, err
	}
	nextID := graph.NodeID(cfg.N)
	var events []Event
	for s := 0; s < steps; s++ {
		doLeave := rng.Float64() < leaveFrac && st.Len() > 2
		if doLeave {
			victim, ok := st.removableNode(rng)
			if ok {
				if _, err := st.Leave(victim); err != nil {
					return nil, nil, err
				}
				events = append(events, Event{Kind: Leave, Node: victim})
				continue
			}
			// No removable node found; fall through to a join.
		}
		p, ok := st.connectedPoint(rng)
		if !ok {
			return nil, nil, fmt.Errorf("workload: churn join placement failed at step %d", s)
		}
		if _, err := st.Join(nextID, p); err != nil {
			return nil, nil, err
		}
		events = append(events, Event{Kind: Join, Node: nextID, Pos: p})
		nextID++
	}
	return base, events, nil
}

// MobilityTrace models node movement the way the paper's topology model
// does ("a power-trained sensor node withdraws its connection from its
// network ... and comes back"): each move is a Leave of node v immediately
// followed by a Join of the same v at a new position. The new position is
// sampled within wander*Range of the old one (falling back to anywhere in
// the region), and both halves keep the network connected. The returned
// events alternate Leave/Join pairs for the same node. The graph is
// maintained incrementally per move; MobilityTraceAllPairs is the
// reference implementation this is equivalence-tested against.
func MobilityTrace(cfg Config, moves int, wander float64) (*geom.Deployment, []Event, error) {
	if wander <= 0 {
		wander = 2
	}
	base, err := IncrementalConnected(cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := cfg.rng(2)
	st, err := seedState(cfg, base)
	if err != nil {
		return nil, nil, err
	}
	var events []Event
	for m := 0; m < moves; m++ {
		if st.Len() <= 2 {
			break
		}
		mover, ok := st.removableNode(rng)
		if !ok {
			return nil, nil, fmt.Errorf("workload: no movable node at step %d", m)
		}
		old, _ := st.Pos(mover)
		if _, err := st.Leave(mover); err != nil {
			return nil, nil, err
		}
		// Prefer a nearby spot; fall back to anywhere connected.
		p, ok := st.nearbyConnectedPoint(old, wander*cfg.Range, rng)
		if !ok {
			p, ok = st.connectedPoint(rng)
			if !ok {
				return nil, nil, fmt.Errorf("workload: mobility rejoin failed at step %d", m)
			}
		}
		events = append(events, Event{Kind: Leave, Node: mover})
		events = append(events, Event{Kind: Join, Node: mover, Pos: p})
		if _, err := st.Join(mover, p); err != nil {
			return nil, nil, err
		}
	}
	return base, events, nil
}

// ChurnTraceAllPairs is the original from-scratch churn generator: every
// event rebuilds the unit-disk graph with udgOf and probes removal
// candidates by cloning. Retained as the reference baseline for the
// equivalence tests and benchmarks; it consumes the random stream
// identically to ChurnTrace, so both return the same trace.
func ChurnTraceAllPairs(cfg Config, steps int, leaveFrac float64) (*geom.Deployment, []Event, error) {
	base, err := IncrementalConnectedAllPairs(cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := cfg.rng(1)
	// live tracks current node positions by ID.
	live := make(map[graph.NodeID]geom.Point, cfg.N)
	for i, p := range base.Pos {
		live[graph.NodeID(i)] = p
	}
	nextID := graph.NodeID(cfg.N)
	var events []Event
	for s := 0; s < steps; s++ {
		doLeave := rng.Float64() < leaveFrac && len(live) > 2
		if doLeave {
			victim, ok := removableNodeAllPairs(live, base.Range, rng)
			if ok {
				delete(live, victim)
				events = append(events, Event{Kind: Leave, Node: victim})
				continue
			}
			// No removable node found; fall through to a join.
		}
		p, ok := connectedPointAllPairs(live, base.Region, base.Range, rng)
		if !ok {
			return nil, nil, fmt.Errorf("workload: churn join placement failed at step %d", s)
		}
		live[nextID] = p
		events = append(events, Event{Kind: Join, Node: nextID, Pos: p})
		nextID++
	}
	return base, events, nil
}

// MobilityTraceAllPairs is the original from-scratch mobility generator,
// retained as the reference baseline for the equivalence tests and
// benchmarks; it consumes the random stream identically to MobilityTrace.
func MobilityTraceAllPairs(cfg Config, moves int, wander float64) (*geom.Deployment, []Event, error) {
	if wander <= 0 {
		wander = 2
	}
	base, err := IncrementalConnectedAllPairs(cfg)
	if err != nil {
		return nil, nil, err
	}
	rng := cfg.rng(2)
	live := make(map[graph.NodeID]geom.Point, cfg.N)
	for i, p := range base.Pos {
		live[graph.NodeID(i)] = p
	}
	var events []Event
	for m := 0; m < moves; m++ {
		if len(live) <= 2 {
			break
		}
		mover, ok := removableNodeAllPairs(live, base.Range, rng)
		if !ok {
			return nil, nil, fmt.Errorf("workload: no movable node at step %d", m)
		}
		old := live[mover]
		delete(live, mover)
		// Prefer a nearby spot; fall back to anywhere connected.
		p, ok := nearbyConnectedPointAllPairs(live, base.Region, base.Range, old, wander*base.Range, rng)
		if !ok {
			p, ok = connectedPointAllPairs(live, base.Region, base.Range, rng)
			if !ok {
				return nil, nil, fmt.Errorf("workload: mobility rejoin failed at step %d", m)
			}
		}
		events = append(events, Event{Kind: Leave, Node: mover})
		events = append(events, Event{Kind: Join, Node: mover, Pos: p})
		live[mover] = p
	}
	return base, events, nil
}

// nearbyConnectedPointAllPairs samples a point within radius of old that
// hears at least one live node, scanning all live nodes per attempt.
func nearbyConnectedPointAllPairs(live map[graph.NodeID]geom.Point, region geom.Region, rng float64, old geom.Point, radius float64, r *rand.Rand) (geom.Point, bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		p := geom.Point{
			X: old.X + (r.Float64()*2-1)*radius,
			Y: old.Y + (r.Float64()*2-1)*radius,
		}
		if !region.Contains(p) || p.Dist(old) > radius {
			continue
		}
		for _, q := range live {
			if p.InRange(q, rng) {
				return p, true
			}
		}
	}
	return geom.Point{}, false
}

// removableNodeAllPairs picks a random live node whose removal keeps the
// unit-disk graph of the remaining nodes connected, rebuilding the graph
// from scratch and cloning it per candidate.
func removableNodeAllPairs(live map[graph.NodeID]geom.Point, rng float64, r *rand.Rand) (graph.NodeID, bool) {
	ids := make([]graph.NodeID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	// Deterministic base order, random starting offset.
	sortIDs(ids)
	off := r.Intn(len(ids))
	g := udgOf(live, rng)
	for k := 0; k < len(ids); k++ {
		cand := ids[(off+k)%len(ids)]
		h := g.Clone()
		h.RemoveNode(cand)
		if h.Connected() {
			return cand, true
		}
	}
	return 0, false
}

// connectedPointAllPairs samples a point in range of at least one live
// node, scanning all live nodes per attempt.
func connectedPointAllPairs(live map[graph.NodeID]geom.Point, region geom.Region, rng float64, r *rand.Rand) (geom.Point, bool) {
	for attempt := 0; attempt < maxPlacementAttempts; attempt++ {
		p := geom.Point{X: r.Float64() * region.Width, Y: r.Float64() * region.Height}
		for _, q := range live {
			if p.InRange(q, rng) {
				return p, true
			}
		}
	}
	return geom.Point{}, false
}

// udgOf rebuilds the unit-disk graph of the live positions from scratch —
// the brute-force reference the incremental maintenance is verified
// against.
func udgOf(live map[graph.NodeID]geom.Point, rng float64) *graph.Graph {
	g := graph.New()
	ids := make([]graph.NodeID, 0, len(live))
	for id := range live {
		g.AddNode(id)
		ids = append(ids, id)
	}
	sortIDs(ids)
	for i, u := range ids {
		for _, v := range ids[i+1:] {
			if live[u].InRange(live[v], rng) {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

func sortIDs(ids []graph.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Failure kills a node at the start of a given round during a broadcast.
type Failure struct {
	Node  graph.NodeID
	Round int
}

// FailureTrace selects approximately frac of the nodes in g (never the
// protected node, typically the broadcast source) and assigns each a
// failure round uniform in [1, maxRound].
func FailureTrace(g *graph.Graph, protected graph.NodeID, frac float64, maxRound int, seed int64) []Failure {
	return FailureTraceRand(g, protected, frac, maxRound, rand.New(rand.NewSource(seed)))
}

// FailureTraceRand is FailureTrace with an injected source.
func FailureTraceRand(g *graph.Graph, protected graph.NodeID, frac float64, maxRound int, rng *rand.Rand) []Failure {
	var out []Failure
	for _, id := range g.Nodes() {
		if id == protected {
			continue
		}
		if rng.Float64() < frac {
			out = append(out, Failure{Node: id, Round: 1 + rng.Intn(maxRound)})
		}
	}
	return out
}

// Groups assigns each node to zero or more of k multicast groups with
// probability memberProb per group. Group IDs are 1..k, matching the
// paper's example with groups (1) and (2). The map only contains nodes
// with at least one group.
func Groups(g *graph.Graph, k int, memberProb float64, seed int64) map[graph.NodeID][]int {
	return GroupsRand(g, k, memberProb, rand.New(rand.NewSource(seed)))
}

// GroupsRand is Groups with an injected source.
func GroupsRand(g *graph.Graph, k int, memberProb float64, rng *rand.Rand) map[graph.NodeID][]int {
	out := make(map[graph.NodeID][]int)
	for _, id := range g.Nodes() {
		var gs []int
		for grp := 1; grp <= k; grp++ {
			if rng.Float64() < memberProb {
				gs = append(gs, grp)
			}
		}
		if len(gs) > 0 {
			out[id] = gs
		}
	}
	return out
}
