package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsens/internal/geom"
	"dynsens/internal/graph"
)

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(1, 10, 300)
	if cfg.Region.Width != 1000 || cfg.Region.Height != 1000 {
		t.Fatalf("region = %+v", cfg.Region)
	}
	if cfg.Range != 50 || cfg.N != 300 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestIncrementalConnectedIsConnected(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		cfg := PaperConfig(42, 8, n)
		d, err := IncrementalConnected(cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d.NumNodes() != n {
			t.Fatalf("n=%d: placed %d", n, d.NumNodes())
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !d.Graph().Connected() {
			t.Fatalf("n=%d: disconnected deployment", n)
		}
	}
}

func TestIncrementalConnectedDeterministic(t *testing.T) {
	cfg := PaperConfig(7, 10, 50)
	a, err := IncrementalConnected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := IncrementalConnected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("node %d differs: %v vs %v", i, a.Pos[i], b.Pos[i])
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := IncrementalConnected(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pos[0] == a.Pos[0] && c.Pos[1] == a.Pos[1] {
		t.Fatal("different seeds produced identical prefix")
	}
}

func TestIncrementalConnectedRejectsBadN(t *testing.T) {
	cfg := PaperConfig(1, 8, 0)
	if _, err := IncrementalConnected(cfg); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestUniformAndLargestComponent(t *testing.T) {
	cfg := PaperConfig(3, 12, 200)
	d := Uniform(cfg)
	if d.NumNodes() != 200 {
		t.Fatalf("placed %d", d.NumNodes())
	}
	lc, kept := LargestComponent(d)
	if lc.NumNodes() != len(kept) {
		t.Fatalf("component size %d vs kept %d", lc.NumNodes(), len(kept))
	}
	if lc.NumNodes() == 0 || lc.NumNodes() > 200 {
		t.Fatalf("component size %d", lc.NumNodes())
	}
	if !lc.Graph().Connected() {
		t.Fatal("largest component not connected")
	}
	// Positions must match originals.
	for i, orig := range kept {
		if lc.Pos[i] != d.Pos[orig] {
			t.Fatalf("position mismatch at %d", i)
		}
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	d := &geom.Deployment{Region: geom.Region{Width: 10, Height: 10}, Range: 1}
	lc, kept := LargestComponent(d)
	if lc.NumNodes() != 0 || kept != nil {
		t.Fatal("empty deployment mishandled")
	}
}

func TestChurnTraceKeepsConnectivity(t *testing.T) {
	cfg := PaperConfig(5, 8, 40)
	base, events, err := ChurnTrace(cfg, 30, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 30 {
		t.Fatalf("got %d events", len(events))
	}
	// Replay the trace, checking connectivity after every event.
	live := make(map[graph.NodeID]geom.Point)
	for i, p := range base.Pos {
		live[graph.NodeID(i)] = p
	}
	joins, leaves := 0, 0
	for i, ev := range events {
		switch ev.Kind {
		case Join:
			if _, dup := live[ev.Node]; dup {
				t.Fatalf("event %d: join of existing node %d", i, ev.Node)
			}
			live[ev.Node] = ev.Pos
			joins++
		case Leave:
			if _, ok := live[ev.Node]; !ok {
				t.Fatalf("event %d: leave of absent node %d", i, ev.Node)
			}
			delete(live, ev.Node)
			leaves++
		}
		if !udgOf(live, base.Range).Connected() {
			t.Fatalf("disconnected after event %d (%v)", i, ev.Kind)
		}
	}
	if joins == 0 {
		t.Fatal("trace has no joins")
	}
	if leaves == 0 {
		t.Fatal("trace has no leaves despite leaveFrac=0.4")
	}
}

func TestMobilityTrace(t *testing.T) {
	cfg := PaperConfig(8, 8, 40)
	base, events, err := MobilityTrace(cfg, 15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 30 {
		t.Fatalf("got %d events, want 30 (15 leave+join pairs)", len(events))
	}
	live := make(map[graph.NodeID]geom.Point)
	for i, p := range base.Pos {
		live[graph.NodeID(i)] = p
	}
	for i := 0; i < len(events); i += 2 {
		lv, jn := events[i], events[i+1]
		if lv.Kind != Leave || jn.Kind != Join {
			t.Fatalf("pair %d malformed: %v %v", i/2, lv.Kind, jn.Kind)
		}
		if lv.Node != jn.Node {
			t.Fatalf("pair %d moves different nodes: %d vs %d", i/2, lv.Node, jn.Node)
		}
		if _, ok := live[lv.Node]; !ok {
			t.Fatalf("pair %d: unknown mover %d", i/2, lv.Node)
		}
		delete(live, lv.Node)
		if !udgOf(live, base.Range).Connected() {
			t.Fatalf("pair %d: leave disconnects", i/2)
		}
		if !base.Region.Contains(jn.Pos) {
			t.Fatalf("pair %d: rejoin outside region", i/2)
		}
		live[jn.Node] = jn.Pos
		if !udgOf(live, base.Range).Connected() {
			t.Fatalf("pair %d: rejoin disconnects", i/2)
		}
	}
	// Node count is conserved.
	if len(live) != 40 {
		t.Fatalf("node count drifted to %d", len(live))
	}
}

func TestEventKindString(t *testing.T) {
	if Join.String() != "join" || Leave.String() != "leave" {
		t.Fatal("EventKind strings wrong")
	}
	if EventKind(9).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestFailureTrace(t *testing.T) {
	cfg := PaperConfig(9, 8, 50)
	d, err := IncrementalConnected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph()
	fails := FailureTrace(g, 0, 0.3, 100, 17)
	if len(fails) == 0 {
		t.Fatal("no failures generated at frac=0.3")
	}
	for _, f := range fails {
		if f.Node == 0 {
			t.Fatal("protected node failed")
		}
		if f.Round < 1 || f.Round > 100 {
			t.Fatalf("failure round %d out of range", f.Round)
		}
		if !g.HasNode(f.Node) {
			t.Fatalf("failure of unknown node %d", f.Node)
		}
	}
	// frac=0 yields none.
	if got := FailureTrace(g, 0, 0, 100, 17); len(got) != 0 {
		t.Fatalf("frac=0 produced %d failures", len(got))
	}
}

func TestGroups(t *testing.T) {
	cfg := PaperConfig(11, 8, 60)
	d, err := IncrementalConnected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph()
	groups := Groups(g, 3, 0.5, 23)
	if len(groups) == 0 {
		t.Fatal("no group members")
	}
	for id, gs := range groups {
		if !g.HasNode(id) {
			t.Fatalf("group member %d not in graph", id)
		}
		if len(gs) == 0 {
			t.Fatalf("node %d has empty group list", id)
		}
		for _, grp := range gs {
			if grp < 1 || grp > 3 {
				t.Fatalf("group id %d out of range", grp)
			}
		}
	}
	// Determinism.
	again := Groups(g, 3, 0.5, 23)
	if len(again) != len(groups) {
		t.Fatal("Groups not deterministic")
	}
}

// Property: for any seed/size, incremental placement yields a connected UDG
// whose graph matches the deployment predicate.
func TestIncrementalConnectedProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		cfg := PaperConfig(seed, 10, n)
		d, err := IncrementalConnected(cfg)
		if err != nil {
			return false
		}
		g := d.Graph()
		return g.Connected() && d.IsUnitDiskGraph(g) && d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedRandMatchesSeed(t *testing.T) {
	// An injected source seeded like the config must reproduce the
	// Seed-driven deployment exactly: injection changes ownership of the
	// stream, not the stream itself.
	cfg := PaperConfig(42, 8, 60)
	want, err := IncrementalConnected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := cfg
	inj.Rand = rand.New(rand.NewSource(42))
	got, err := IncrementalConnected(inj)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pos) != len(want.Pos) {
		t.Fatalf("sizes differ: %d vs %d", len(got.Pos), len(want.Pos))
	}
	for i := range want.Pos {
		if got.Pos[i] != want.Pos[i] {
			t.Fatalf("node %d placed at %v, want %v", i, got.Pos[i], want.Pos[i])
		}
	}

	g := want.Graph()
	rngA := rand.New(rand.NewSource(7))
	fa := FailureTrace(g, 0, 0.2, 10, 7)
	fb := FailureTraceRand(g, 0, 0.2, 10, rngA)
	if len(fa) != len(fb) {
		t.Fatalf("failure traces differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("failure %d: %+v vs %+v", i, fa[i], fb[i])
		}
	}

	ga := Groups(g, 3, 0.3, 9)
	gb := GroupsRand(g, 3, 0.3, rand.New(rand.NewSource(9)))
	if len(ga) != len(gb) {
		t.Fatalf("group maps differ: %d vs %d", len(ga), len(gb))
	}
	for id, gs := range ga {
		if len(gb[id]) != len(gs) {
			t.Fatalf("node %d groups %v vs %v", id, gs, gb[id])
		}
	}
}
