package multinet

import (
	"testing"
	"testing/quick"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/graph"
	"dynsens/internal/workload"
)

func buildGraph(t testing.TB, seed int64, n int) *graph.Graph {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
	if err != nil {
		t.Fatal(err)
	}
	return d.Graph()
}

func TestBuildMultipleNets(t *testing.T) {
	g := buildGraph(t, 1, 60)
	m, err := Build(g, []graph.NodeID{0, 5, 10}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nets()) != 3 || m.Size() != 60 {
		t.Fatalf("nets=%d size=%d", len(m.Nets()), m.Size())
	}
	roots := m.Roots()
	if roots[0] != 0 || roots[1] != 5 || roots[2] != 10 {
		t.Fatalf("roots = %v", roots)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	g := buildGraph(t, 1, 20)
	if _, err := Build(g, nil, core.Config{}); err == nil {
		t.Fatal("no roots accepted")
	}
	if _, err := Build(g, []graph.NodeID{0, 0}, core.Config{}); err == nil {
		t.Fatal("duplicate roots accepted")
	}
	if _, err := Build(g, []graph.NodeID{999}, core.Config{}); err == nil {
		t.Fatal("absent root accepted")
	}
}

func TestJoinLeavePropagate(t *testing.T) {
	g := buildGraph(t, 2, 40)
	m, err := Build(g, []graph.NodeID{0, 1}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nbrs := append([]graph.NodeID{0}, g.Neighbors(0)...)
	if err := m.Join(500, nbrs); err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Nets() {
		if !n.Contains(500) {
			t.Fatalf("net rooted at %d missed the join", n.Root())
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.Leave(500); err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Nets() {
		if n.Contains(500) {
			t.Fatalf("net rooted at %d missed the leave", n.Root())
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveSinkRejected(t *testing.T) {
	g := buildGraph(t, 2, 30)
	m, err := Build(g, []graph.NodeID{0, 1}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Leave(1); err == nil {
		t.Fatal("sink departure accepted")
	}
}

func TestBroadcastNoFailures(t *testing.T) {
	g := buildGraph(t, 3, 80)
	m, err := Build(g, []graph.NodeID{0, 7}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Broadcast(0, broadcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts) != 1 || res.Used != 0 {
		t.Fatalf("unexpected failover: %+v", res)
	}
	if !res.Final().Completed {
		t.Fatalf("primary broadcast incomplete: %s", res.Final())
	}
}

func TestFailoverOnSinkDeath(t *testing.T) {
	g := buildGraph(t, 4, 100)
	// Two sinks; pick a source that is neither.
	m, err := Build(g, []graph.NodeID{0, 1}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var source graph.NodeID = 50
	// Primary sink dies immediately.
	opts := broadcast.Options{Failures: []broadcast.NodeFailure{{Node: 0, Round: 1}}}
	res, err := m.Broadcast(source, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts) < 2 {
		t.Fatalf("no failover attempted: %+v", res)
	}
	if res.Used == 0 {
		t.Fatalf("dead primary selected: %+v", res)
	}
	// The primary attempt loses the sink mid-preamble; partial flooding
	// from the preamble path still reaches some nodes, but far from all.
	if res.Attempts[0].Completed {
		t.Fatalf("primary attempt completed despite dead sink: %s", res.Attempts[0])
	}
	// The secondary cluster-net reaches the bulk of the network (node 0
	// may also have been a relay there, costing it part of a subtree).
	final := res.Final()
	if final.Received < 60 {
		t.Fatalf("secondary delivered only %d/100: %s", final.Received, final)
	}
	if res.Attempts[0].Received >= final.Received {
		t.Fatalf("primary attempt delivered %d >= secondary %d",
			res.Attempts[0].Received, final.Received)
	}
}

// Property: multi-net construction over random deployments verifies on all
// roots and the no-failure broadcast uses the primary.
func TestMultiNetProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 5
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, 8, n))
		if err != nil {
			return false
		}
		g := d.Graph()
		roots := []graph.NodeID{0, graph.NodeID(n / 2)}
		if roots[1] == roots[0] {
			roots = roots[:1]
		}
		m, err := Build(g, roots, core.Config{})
		if err != nil {
			return false
		}
		if m.Verify() != nil {
			return false
		}
		res, err := m.Broadcast(0, broadcast.Options{})
		return err == nil && res.Used == 0 && res.Final().Completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
