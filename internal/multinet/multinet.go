// Package multinet implements the robustness boost sketched at the end of
// the paper's Section 2: "more than one cluster-net may be selected in the
// same way from different roots (sinks) so that if one cluster-net fails
// others can still be used." It maintains several independent cluster-nets
// over the same physical network — one per sink — keeps all of them updated
// through joins and leaves, and offers a failover broadcast that retries on
// the next cluster-net when the primary one fails to reach everyone (for
// example because its sink died).
package multinet

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/graph"
)

// MultiNet is a set of cluster-nets over one physical topology.
type MultiNet struct {
	nets []*core.Network
}

// Build constructs one cluster-net per root over the connected graph g.
// Roots must be distinct nodes of g.
func Build(g *graph.Graph, roots []graph.NodeID, cfg core.Config) (*MultiNet, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("multinet: need at least one root")
	}
	seen := make(map[graph.NodeID]bool, len(roots))
	m := &MultiNet{}
	for _, r := range roots {
		if seen[r] {
			return nil, fmt.Errorf("multinet: duplicate root %d", r)
		}
		seen[r] = true
		c := cfg
		c.Root = r
		net, err := core.Build(g.Clone(), c)
		if err != nil {
			return nil, fmt.Errorf("multinet: building cluster-net rooted at %d: %w", r, err)
		}
		m.nets = append(m.nets, net)
	}
	return m, nil
}

// Nets returns the underlying networks in priority order.
func (m *MultiNet) Nets() []*core.Network { return m.nets }

// Roots returns the sinks in priority order.
func (m *MultiNet) Roots() []graph.NodeID {
	out := make([]graph.NodeID, len(m.nets))
	for i, n := range m.nets {
		out[i] = n.Root()
	}
	return out
}

// Size returns the node count (identical across cluster-nets).
func (m *MultiNet) Size() int { return m.nets[0].Size() }

// Join applies node-move-in on every cluster-net.
func (m *MultiNet) Join(id graph.NodeID, neighbors []graph.NodeID) error {
	for _, n := range m.nets {
		if err := n.Join(id, neighbors); err != nil {
			return fmt.Errorf("multinet: join on net rooted at %d: %w", n.Root(), err)
		}
	}
	return nil
}

// Leave applies node-move-out on every cluster-net. Sinks cannot leave
// (drop the whole cluster-net instead, or rebuild).
func (m *MultiNet) Leave(id graph.NodeID) error {
	for _, n := range m.nets {
		if id == n.Root() {
			return fmt.Errorf("multinet: %d is the sink of a cluster-net; remove that cluster-net instead", id)
		}
	}
	for _, n := range m.nets {
		if err := n.Leave(id); err != nil {
			return fmt.Errorf("multinet: leave on net rooted at %d: %w", n.Root(), err)
		}
	}
	return nil
}

// Verify checks every cluster-net.
func (m *MultiNet) Verify() error {
	for _, n := range m.nets {
		if err := n.Verify(); err != nil {
			return fmt.Errorf("multinet: net rooted at %d: %w", n.Root(), err)
		}
	}
	return nil
}

// FailoverResult reports a failover broadcast.
type FailoverResult struct {
	// Attempts lists the per-cluster-net metrics in the order tried.
	Attempts []broadcast.Metrics
	// Used is the index of the attempt whose result is final.
	Used int
	// TotalRounds sums rounds across attempts (retries cost time).
	TotalRounds int
}

// Final returns the metrics of the attempt that was accepted.
func (r FailoverResult) Final() broadcast.Metrics { return r.Attempts[r.Used] }

// Broadcast runs the CFF broadcast on the primary cluster-net and fails
// over to the next one whenever the attempt does not reach every node
// (e.g. the sink or a cut of relays died). The same failure schedule is
// replayed against each attempt — a node that died stays dead, which the
// per-attempt options express by shifting failure rounds to 1 for later
// attempts. The best attempt so far is kept if all fail.
func (m *MultiNet) Broadcast(source graph.NodeID, opts broadcast.Options) (FailoverResult, error) {
	var res FailoverResult
	best := -1
	for i, n := range m.nets {
		attemptOpts := opts
		if i > 0 {
			// Failures from earlier attempts have already happened.
			attemptOpts.Failures = pastFailures(opts.Failures)
		}
		src := source
		if !n.Contains(src) {
			src = n.Root()
		}
		metrics, err := n.Broadcast(src, attemptOpts)
		if err != nil {
			return FailoverResult{}, err
		}
		res.Attempts = append(res.Attempts, metrics)
		res.TotalRounds += metrics.Rounds
		if best == -1 || metrics.Received > res.Attempts[best].Received {
			best = i
		}
		if metrics.Completed {
			best = i
			break
		}
	}
	res.Used = best
	return res, nil
}

func pastFailures(in []broadcast.NodeFailure) []broadcast.NodeFailure {
	out := make([]broadcast.NodeFailure, len(in))
	for i, f := range in {
		out[i] = broadcast.NodeFailure{Node: f.Node, Round: 1}
	}
	return out
}
