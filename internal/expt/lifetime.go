package expt

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/core"
	"dynsens/internal/energy"
	"dynsens/internal/graph"
	"dynsens/internal/multinet"
	"dynsens/internal/stats"
	"dynsens/internal/workload"
)

// lifetimeCap bounds the reported epochs for protocols that idle.
const lifetimeCap = 1 << 30

// Lifetime quantifies the paper's "energy saving" claim as network
// lifetime: with every node given the same battery and one broadcast per
// dissemination epoch, how many epochs pass before the first node dies?
// CFF nodes sleep through almost the whole epoch; DFO nodes idle-listen
// for the entire tour, so their batteries drain tour-length times faster.
func Lifetime(p Params, budget float64) (*stats.Table, error) {
	if budget <= 0 {
		budget = 1e5
	}
	model := energy.DefaultModel()
	data, err := forEachPoint(p, func(net *core.Network, n int, seed int64) (map[string]float64, error) {
		icff, dfo, err := runBoth(p, net, n, seed, broadcast.Options{})
		if err != nil {
			return nil, err
		}
		if !icff.Completed || !dfo.Completed {
			return nil, errIncomplete("Lifetime", n, seed, icff, dfo)
		}
		// An epoch lasts as long as the slower protocol needs, so both
		// protocols are compared over identical epoch lengths (the CFF
		// nodes spend the remainder asleep).
		epoch := icff.ScheduleLen
		if dfo.ScheduleLen > epoch {
			epoch = dfo.ScheduleLen
		}
		cffLife, _ := energy.Lifetime(model, budget, icff.Listens, icff.Transmits, epoch, lifetimeCap)
		dfoLife, _ := energy.Lifetime(model, budget, dfo.Listens, dfo.Transmits, epoch, lifetimeCap)
		return map[string]float64{
			"cff": float64(cffLife),
			"dfo": float64(dfoLife),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Network lifetime (budget %.0f units, 1 broadcast/epoch)", budget),
		"nodes", "cff_epochs", "dfo_epochs", "extension")
	for _, n := range p.Sizes {
		d := data[n]
		c, f := mean(d["cff"]), mean(d["dfo"])
		t.AddRow(stats.F(float64(n)), stats.F(c), stats.F(f), ratio(c, f))
	}
	return t, nil
}

// Failover measures the Section 2 multi-sink sketch: with two cluster-nets
// rooted at different sinks, a broadcast survives the death of the primary
// sink by retrying on the secondary. Rows compare single-net and dual-net
// delivery when the primary sink dies at round 1.
func Failover(p Params) (*stats.Table, error) {
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Multi-sink failover (n=%d, primary sink dies)", n),
		"scenario", "delivery", "attempts", "total_rounds")
	var single, dual, attempts, rounds []float64
	for _, seed := range p.seeds() {
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, p.Side, n))
		if err != nil {
			return nil, err
		}
		g := d.Graph()
		secondary := graph.NodeID(n / 2)
		if secondary == 0 {
			secondary = 1
		}
		m, err := multinet.Build(g, []graph.NodeID{0, secondary}, core.Config{})
		if err != nil {
			return nil, err
		}
		source := graph.NodeID(n - 1)
		opts := broadcast.Options{Failures: []broadcast.NodeFailure{{Node: 0, Round: 1}}}

		// Single cluster-net: no fallback.
		solo, err := m.Nets()[0].Broadcast(source, opts)
		if err != nil {
			return nil, err
		}
		single = append(single, solo.DeliveryRatio())

		// Dual cluster-net with failover.
		res, err := m.Broadcast(source, opts)
		if err != nil {
			return nil, err
		}
		dual = append(dual, res.Final().DeliveryRatio())
		attempts = append(attempts, float64(len(res.Attempts)))
		rounds = append(rounds, float64(res.TotalRounds))
	}
	t.AddRow("single-sink", fmt.Sprintf("%.3f", mean(single)), "1", "-")
	t.AddRow("dual-sink", fmt.Sprintf("%.3f", mean(dual)),
		stats.F(mean(attempts)), stats.F(mean(rounds)))
	return t, nil
}

// Construction compares the two Section 5 construction methods: node-by-
// node move-in (cost grows with total degrees and heights) versus gossip-
// then-local-computation (O(n) rounds flat).
func Construction(p Params) (*stats.Table, error) {
	t := stats.NewTable("Construction cost — incremental move-in vs gossip (Section 5)",
		"nodes", "movein_rounds", "movein_slot_rounds", "gossip_rounds")
	for _, n := range p.Sizes {
		var inc, slot, gos []float64
		for _, seed := range p.seeds() {
			d, err := workload.IncrementalConnected(workload.PaperConfig(seed, p.Side, n))
			if err != nil {
				return nil, err
			}
			net, err := core.Build(d.Graph(), core.Config{})
			if err != nil {
				return nil, err
			}
			st := net.Stats()
			inc = append(inc, float64(st.StructuralRounds))
			slot = append(slot, float64(st.SlotRounds))
			_, gcost, err := cnet.BuildByGossip(d.Graph(), 0, nil)
			if err != nil {
				return nil, err
			}
			gos = append(gos, float64(gcost.Total()))
		}
		t.AddRow(stats.F(float64(n)), stats.F(mean(inc)), stats.F(mean(slot)), stats.F(mean(gos)))
	}
	return t, nil
}
