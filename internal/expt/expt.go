// Package expt defines one reproducible experiment per figure of the
// paper's evaluation (Section 6) plus the claims made in the text
// (multi-channel speedup, multicast pruning, robustness, reconfiguration
// cost, Lemma 3 bounds) and two ablations. Each experiment sweeps network
// sizes over several seeds, runs the protocols on the radio engine, and
// returns a text table whose rows are the series the paper plots.
//
// The paper's setup: square regions of 8x8, 10x10 and 12x12 units (1 unit
// = 100 m), communication range 50 m, node counts from 64 to 720; the
// published curves use the 10x10 region. Absolute values depend on the
// authors' unavailable simulator; the reproduction target is the shape of
// each curve (see EXPERIMENTS.md).
package expt

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/flight"
	"dynsens/internal/geom"
	"dynsens/internal/graph"
	"dynsens/internal/netio"
	"dynsens/internal/obs"
	"dynsens/internal/radio"
	"dynsens/internal/stats"
	"dynsens/internal/workload"
)

// Metric names recorded by sweeps given Params.Obs.
const (
	// MetricExptPoints counts completed (size, seed) simulation points.
	MetricExptPoints = "dynsens_expt_points_total"
	// MetricExptErrors counts points that failed.
	MetricExptErrors = "dynsens_expt_point_errors_total"
	// MetricExptPointSeconds is the per-point wall-time histogram
	// (requires Params.Now).
	MetricExptPointSeconds = "dynsens_expt_point_seconds"
)

// Params control a sweep.
type Params struct {
	// Side is the region side in 100 m units (paper: 8, 10 or 12).
	Side int
	// Sizes are the node counts on the x axis.
	Sizes []int
	// Seeds is the number of deployments averaged per point.
	Seeds int
	// BaseSeed offsets the deployment seeds.
	BaseSeed int64
	// Workers bounds the number of (size, seed) points simulated
	// concurrently; 0 means GOMAXPROCS. Every point is an independent
	// seeded simulation, so parallel execution is deterministic: results
	// are aggregated by point, not by arrival order.
	Workers int
	// EngineWorkers sets the radio engine's shard-worker count *inside*
	// each point (radio.Engine.SetWorkers). The default 0 pins point
	// engines to a single shard: the sweep already saturates cores across
	// points, and the paper's point sizes sit below the engine's parallel
	// threshold anyway. Set it for large-n sweeps where a single point
	// dominates wall-clock time. Any value yields identical results.
	EngineWorkers int
	// NewRand, when non-nil, replaces the default rand construction for
	// every auxiliary random stream (clock skew, crash sets, loss coins).
	// It is called with a per-point derived seed and must return an
	// independent source; tests use it to substitute instrumented or
	// shared streams. Must be safe for concurrent calls when Workers > 1.
	NewRand func(seed int64) *rand.Rand
	// Obs, when non-nil, collects sweep instrumentation: a counter of
	// simulated points and (when Now is also set) a histogram of per-point
	// wall time. Workers share the registry's atomic series, so parallel
	// runs merge without extra coordination.
	Obs *obs.Registry
	// Now supplies wall-clock nanoseconds for the per-point duration
	// histogram. It lives here (not a direct time.Now call) so the package
	// stays deterministic by default; binaries wire time.Now().UnixNano.
	Now func() int64
	// Flight, when non-nil, is asked for a flight writer before each
	// point's ICFF run (return nil to skip a point). The sweep writes the
	// header and topology, records the run, and closes the writer. Must be
	// safe for concurrent calls when Workers > 1.
	Flight func(n int, seed int64) *flight.Writer
	// Perf, when non-nil, collects kernel performance introspection
	// across every point's engine runs (radio.Engine.SetPerf). One shared
	// collector is safe under Workers > 1 — runs fold in atomically — and
	// never changes results.
	Perf *radio.Perf
}

func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (p Params) engineWorkers() int {
	if p.EngineWorkers > 0 {
		return p.EngineWorkers
	}
	return 1
}

// rng constructs the auxiliary random stream for a derived per-point seed.
func (p Params) rng(seed int64) *rand.Rand {
	if p.NewRand != nil {
		return p.NewRand(seed)
	}
	return rand.New(rand.NewSource(seed))
}

// Default returns the paper's published configuration: the 10x10 region
// with 100..500 nodes, 5 seeds per point.
func Default() Params {
	return Params{Side: 10, Sizes: []int{100, 200, 300, 400, 500}, Seeds: 5, BaseSeed: 1}
}

// Quick returns a fast configuration for tests and smoke runs.
func Quick() Params {
	return Params{Side: 8, Sizes: []int{40, 80}, Seeds: 2, BaseSeed: 1}
}

func (p Params) seeds() []int64 {
	out := make([]int64, p.Seeds)
	for i := range out {
		out[i] = p.BaseSeed + int64(i)*7919
	}
	return out
}

// BuildNetwork deploys one connected RGG point (the paper's incremental
// placement on a side x side region of 100 m units), self-organizes it
// under cfg, and verifies every structural invariant. It is the shared
// build step of the sweeps here, the scenario runner and the CLIs.
func BuildNetwork(side, n int, seed int64, cfg core.Config) (*core.Network, *geom.Deployment, error) {
	d, err := workload.IncrementalConnected(workload.PaperConfig(seed, side, n))
	if err != nil {
		return nil, nil, err
	}
	net, err := core.Build(d.Graph(), cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := net.Verify(); err != nil {
		return nil, nil, fmt.Errorf("expt: invariant violation (n=%d seed=%d): %w", n, seed, err)
	}
	return net, d, nil
}

// buildNet constructs a verified network for one (size, seed) point.
func buildNet(p Params, n int, seed int64) (*core.Network, error) {
	net, _, err := BuildNetwork(p.Side, n, seed, core.Config{})
	return net, err
}

// forEachPoint runs fn for every (size, seed) pair — in parallel up to
// Params.Workers — and collects per-size sample maps keyed by metric name.
// Samples within a size are ordered by seed index regardless of completion
// order, so parallel and serial runs produce identical tables.
func forEachPoint(p Params, fn func(net *core.Network, n int, seed int64) (map[string]float64, error)) (map[int]map[string][]float64, error) {
	type point struct {
		n    int
		si   int
		seed int64
	}
	var points []point
	seeds := p.seeds()
	for _, n := range p.Sizes {
		for si, seed := range seeds {
			points = append(points, point{n: n, si: si, seed: seed})
		}
	}

	// Register instrumentation handles once, outside the workers; the
	// handles themselves are atomic, so workers merge lock-free.
	var pointsDone, pointErrs *obs.Counter
	var pointSecs *obs.Histogram
	if p.Obs != nil {
		pointsDone = p.Obs.Counter(MetricExptPoints, "Completed (size, seed) simulation points.")
		pointErrs = p.Obs.Counter(MetricExptErrors, "Simulation points that failed.")
		if p.Now != nil {
			pointSecs = p.Obs.Histogram(MetricExptPointSeconds, "Per-point wall time in seconds.", obs.ExpBuckets(0.001, 2, 16))
		}
	}

	results := make([]map[string]float64, len(points))
	errs := make([]error, len(points))
	sem := make(chan struct{}, p.workers())
	var wg sync.WaitGroup
	for i, pt := range points {
		wg.Add(1)
		go func(i int, pt point) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var start int64
			if pointSecs != nil {
				start = p.Now()
			}
			net, err := buildNet(p, pt.n, pt.seed)
			if err != nil {
				errs[i] = err
			} else {
				results[i], errs[i] = fn(net, pt.n, pt.seed)
			}
			if pointSecs != nil {
				pointSecs.Observe(float64(p.Now()-start) / 1e9)
			}
			if errs[i] != nil {
				if pointErrs != nil {
					pointErrs.Inc()
				}
				return
			}
			if pointsDone != nil {
				pointsDone.Inc()
			}
		}(i, pt)
	}
	wg.Wait()

	out := make(map[int]map[string][]float64, len(p.Sizes))
	for _, n := range p.Sizes {
		out[n] = make(map[string][]float64)
	}
	for i, pt := range points {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for k, v := range results[i] {
			out[pt.n][k] = append(out[pt.n][k], v)
		}
	}
	return out, nil
}

func mean(xs []float64) float64 { return stats.Summarize(xs).Mean }

// safeLeaveCandidate returns a non-root node whose removal keeps the graph
// connected, preferring high IDs (recently joined), or ok=false.
func safeLeaveCandidate(net *core.Network) (graph.NodeID, bool) {
	nodes := net.CNet().Tree().Nodes()
	for i := len(nodes) - 1; i >= 0; i-- {
		id := nodes[i]
		if id == net.Root() {
			continue
		}
		res := net.Graph().Clone()
		res.RemoveNode(id)
		if res.Connected() {
			return id, true
		}
	}
	return 0, false
}

// runBoth executes ICFF and DFO broadcasts from the root with the given
// options and returns both metrics. When the sweep has a Flight factory,
// the ICFF run of the point is captured as a flight recording.
func runBoth(p Params, net *core.Network, n int, seed int64, opts broadcast.Options) (icff, dfo broadcast.Metrics, err error) {
	if opts.Workers == 0 {
		// Points run concurrently already; nested engine parallelism
		// would oversubscribe unless the caller asked for it.
		opts.Workers = p.engineWorkers()
	}
	opts.Perf = p.Perf
	icffOpts := opts
	var fw *flight.Writer
	if p.Flight != nil {
		if fw = p.Flight(n, seed); fw != nil {
			fw.WriteHeader(flight.Header{
				Seed: seed, N: n, Side: p.Side, Channels: opts.Channels,
				Source: net.Root(), Protocol: "ICFF",
				LossRate: opts.LossRate, LossSeed: opts.LossSeed,
			})
			netio.RecordTopology(fw, net)
			icffOpts.Flight = fw
		}
	}
	icff, err = net.Broadcast(net.Root(), icffOpts)
	if fw != nil {
		if cerr := fw.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return
	}
	dfo, err = net.BroadcastDFO(net.Root(), opts)
	return
}
