package expt

import (
	"fmt"
	"sort"

	"dynsens/internal/broadcast"
	"dynsens/internal/gather"
	"dynsens/internal/graph"
	"dynsens/internal/stats"
)

// Repair measures the full crash-recovery loop the paper's robustness
// story implies but does not spell out: a fraction of nodes crash
// silently, one heartbeat epoch (a convergecast liveness probe) detects
// the topmost dead nodes at their parents, crash repair detaches them and
// re-attaches reachable orphans, and a broadcast verifies the repaired
// network. Rows sweep the crash fraction.
func Repair(p Params, fracs []float64) (*stats.Table, error) {
	if len(fracs) == 0 {
		fracs = []float64{0.02, 0.05, 0.1}
	}
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Crash detection and repair (n=%d)", n),
		"crash_frac", "detected_topmost", "reattached", "dropped", "post_delivery", "hb_rounds")
	for _, frac := range fracs {
		var detected, reattached, dropped, delivery, hbRounds []float64
		for _, seed := range p.seeds() {
			net, err := buildNet(p, n, seed)
			if err != nil {
				return nil, err
			}
			rng := p.rng(seed * 41)
			deadSet := make(map[graph.NodeID]bool)
			for _, id := range net.CNet().Tree().Nodes() {
				if id != net.Root() && rng.Float64() < frac {
					deadSet[id] = true
				}
			}
			if len(deadSet) == 0 {
				deadSet[net.CNet().Tree().Nodes()[1]] = true
			}
			// Sorted: the repair replays the dead in this order, so map
			// iteration must not decide it.
			var dead []graph.NodeID
			for id := range deadSet {
				dead = append(dead, id)
			}
			sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
			fails := make([]gather.Failure, 0, len(dead))
			for _, id := range dead {
				fails = append(fails, gather.Failure{Node: id, Round: 1})
			}

			// Detection epoch.
			sched := gather.NewSchedule(net.CNet())
			if err := sched.Verify(); err != nil {
				return nil, err
			}
			rep, err := gather.Heartbeat(net.CNet(), sched, gather.Options{Failures: fails})
			if err != nil {
				return nil, err
			}
			// Every suspect must really be dead (no false accusations).
			for _, s := range rep.Suspects() {
				if !deadSet[s] {
					return nil, fmt.Errorf("expt: heartbeat falsely accused %d", s)
				}
			}
			detected = append(detected, float64(len(rep.Suspects())))
			hbRounds = append(hbRounds, float64(rep.Rounds))

			// Repair with the full dead set (descendants of suspects are
			// learned when re-attachment is attempted).
			rec, err := net.RepairCrash(dead)
			if err != nil {
				return nil, err
			}
			reattached = append(reattached, float64(len(rec.Reinserted)))
			dropped = append(dropped, float64(len(rec.Dropped)))
			if err := net.Verify(); err != nil {
				return nil, fmt.Errorf("expt: invariants after repair: %w", err)
			}
			m, err := net.Broadcast(net.Root(), broadcast.Options{})
			if err != nil {
				return nil, err
			}
			delivery = append(delivery, m.DeliveryRatio())
		}
		t.AddRow(fmt.Sprintf("%.2f", frac), stats.F(mean(detected)),
			stats.F(mean(reattached)), stats.F(mean(dropped)),
			fmt.Sprintf("%.3f", mean(delivery)), stats.F(mean(hbRounds)))
	}
	return t, nil
}
