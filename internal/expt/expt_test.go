package expt

import (
	"strconv"
	"strings"
	"testing"

	"dynsens/internal/broadcast"
)

func quick() Params { return Quick() }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig8ShapeCFFFaster(t *testing.T) {
	tb, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		cff := parseF(t, row[1])
		dfo := parseF(t, row[2])
		if cff >= dfo {
			t.Fatalf("CFF %v not faster than DFO %v (row %v)", cff, dfo, row)
		}
	}
}

func TestFig9ShapeCFFLighter(t *testing.T) {
	tb, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		cffMax := parseF(t, row[1])
		cffP95 := parseF(t, row[2])
		dfoMax := parseF(t, row[4])
		if cffMax >= dfoMax {
			t.Fatalf("CFF awake %v not below DFO %v", cffMax, dfoMax)
		}
		if cffP95 > cffMax {
			t.Fatalf("p95 %v above max %v", cffP95, cffMax)
		}
	}
}

func TestFig10HeightBelowSize(t *testing.T) {
	tb, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		size := parseF(t, row[1])
		height := parseF(t, row[2])
		if height >= size {
			t.Fatalf("backbone height %v not below size %v", height, size)
		}
	}
}

func TestFig11SlotsBelowDegrees(t *testing.T) {
	tb, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		D := parseF(t, row[1])
		Delta := parseF(t, row[3])
		if Delta > D {
			t.Fatalf("Delta %v above D %v — Section 6 observation violated", Delta, D)
		}
	}
}

func TestBoundsCheckRatios(t *testing.T) {
	tb, err := BoundsCheck(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if rl := parseF(t, row[3]); rl > 1 {
			t.Fatalf("Delta/bound ratio %v exceeds 1", rl)
		}
		if rb := parseF(t, row[6]); rb > 1 {
			t.Fatalf("delta/bound ratio %v exceeds 1", rb)
		}
	}
}

func TestMultiChannelMonotone(t *testing.T) {
	tb, err := MultiChannel(quick(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i, row := range tb.Rows {
		sched := parseF(t, row[2])
		if i > 0 && sched > prev {
			t.Fatalf("schedule grew with more channels: %v after %v", sched, prev)
		}
		prev = sched
	}
}

func TestMulticastPrunes(t *testing.T) {
	tb, err := Multicast(quick(), []float64{0.1, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	small := parseF(t, tb.Rows[0][2])
	full := parseF(t, tb.Rows[1][3])
	if small >= full {
		t.Fatalf("small-group multicast tx %v not below broadcast tx %v", small, full)
	}
}

func TestRobustnessCFFAtLeastDFO(t *testing.T) {
	tb, err := Robustness(quick(), []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// No failures: both deliver fully.
	if parseF(t, tb.Rows[0][1]) != 1 || parseF(t, tb.Rows[0][2]) != 1 {
		t.Fatalf("lossless run not fully delivered: %v", tb.Rows[0])
	}
	// With failures: CFF at least as good as DFO (averaged).
	if parseF(t, tb.Rows[1][1]) < parseF(t, tb.Rows[1][2]) {
		t.Fatalf("CFF below DFO under failures: %v", tb.Rows[1])
	}
}

func TestReconfigProducesCosts(t *testing.T) {
	tb, err := Reconfig(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if parseF(t, row[1]) <= 0 {
			t.Fatalf("move-in cost missing: %v", row)
		}
	}
}

func TestAreasRuns(t *testing.T) {
	tb, err := Areas(quick(), []int{8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestAblationAlg1VsAlg2(t *testing.T) {
	tb, err := AblationAlg1VsAlg2(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		a1 := parseF(t, row[1])
		a2 := parseF(t, row[2])
		// At the quick scale the two schedules are close (the backbone is
		// nearly the whole tree); assert Algorithm 2 is not meaningfully
		// worse. The paper-scale benchmark shows the real separation.
		if a2 > a1*1.5+5 {
			t.Fatalf("Algorithm 2 (%v) much slower than Algorithm 1 (%v)", a2, a1)
		}
	}
}

func TestAblationSlotCondition(t *testing.T) {
	tb, err := AblationSlotCondition(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if parseF(t, row[4]) != 1 {
			t.Fatalf("strict condition dropped leaves: %v", row)
		}
		if parseF(t, row[2]) < parseF(t, row[1]) {
			t.Fatalf("strict Delta below paper Delta: %v", row)
		}
	}
}

func TestLifetimeCFFOutlivesDFO(t *testing.T) {
	tb, err := Lifetime(quick(), 1e5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		cff := parseF(t, row[1])
		dfo := parseF(t, row[2])
		if cff <= dfo {
			t.Fatalf("CFF lifetime %v not above DFO %v", cff, dfo)
		}
	}
}

func TestFailoverRecoversDelivery(t *testing.T) {
	tb, err := Failover(quick())
	if err != nil {
		t.Fatal(err)
	}
	single := parseF(t, tb.Rows[0][1])
	dual := parseF(t, tb.Rows[1][1])
	if dual <= single {
		t.Fatalf("failover delivery %v not above single-sink %v", dual, single)
	}
}

func TestConstructionGossipFlat(t *testing.T) {
	tb, err := Construction(quick())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tb.Rows {
		n := parseF(t, row[0])
		gossip := parseF(t, row[3])
		if gossip != 2*n {
			t.Fatalf("row %d: gossip cost %v != 2n", i, gossip)
		}
	}
}

func TestSkewGuardTradeoff(t *testing.T) {
	tb, err := Skew(quick(), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// sigma=0: all guards deliver fully.
	for col := 1; col <= 3; col++ {
		if parseF(t, tb.Rows[0][col]) != 1 {
			t.Fatalf("sigma=0 delivery not 1: %v", tb.Rows[0])
		}
	}
	// sigma=1: guard 3 and 5 deliver fully; guard 1 degrades.
	if parseF(t, tb.Rows[1][2]) != 1 || parseF(t, tb.Rows[1][3]) != 1 {
		t.Fatalf("guarded schedules failed under skew: %v", tb.Rows[1])
	}
	if parseF(t, tb.Rows[1][1]) >= 1 {
		t.Fatalf("unguarded schedule unaffected by skew: %v", tb.Rows[1])
	}
}

func TestGatheringExact(t *testing.T) {
	tb, err := Gathering(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if parseF(t, row[4]) != 1 {
			t.Fatalf("gathering inexact: %v", row)
		}
	}
}

func TestFloodingStorm(t *testing.T) {
	tb, err := Flooding(quick(), []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	cffColl := parseF(t, tb.Rows[0][3])
	floodColl := parseF(t, tb.Rows[2][3])
	if floodColl <= cffColl {
		t.Fatalf("blind flooding collided less than CFF: %v vs %v", floodColl, cffColl)
	}
	cffAwake := parseF(t, tb.Rows[0][5])
	floodAwake := parseF(t, tb.Rows[2][5])
	if floodAwake <= cffAwake {
		t.Fatalf("flooding awake %v not above CFF %v", floodAwake, cffAwake)
	}
	// Round-robin always delivers but is slow.
	if parseF(t, tb.Rows[1][1]) != 1 {
		t.Fatalf("round-robin delivery: %v", tb.Rows[1])
	}
	if parseF(t, tb.Rows[1][2]) <= parseF(t, tb.Rows[0][2]) {
		t.Fatalf("round-robin completion not above CFF: %v vs %v", tb.Rows[1][2], tb.Rows[0][2])
	}
}

func TestRepairExperiment(t *testing.T) {
	tb, err := Repair(quick(), []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	if parseF(t, row[4]) != 1 {
		t.Fatalf("post-repair delivery below 1: %v", row)
	}
	if parseF(t, row[1]) <= 0 {
		t.Fatalf("nothing detected: %v", row)
	}
}

func TestMobilityExperiment(t *testing.T) {
	tb, err := Mobility(quick(), []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	if row[4] != "yes" {
		t.Fatalf("broadcast incomplete under mobility: %v", row)
	}
	if parseF(t, row[1]) <= 0 {
		t.Fatalf("no structural cost measured: %v", row)
	}
}

func TestDiscoveryExperiment(t *testing.T) {
	tb, err := Discovery(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if parseF(t, row[5]) < 0.9 {
			t.Fatalf("discovery completeness too low: %v", row)
		}
		if parseF(t, row[2]) <= 0 {
			t.Fatalf("no rounds measured: %v", row)
		}
	}
}

func TestCatalogAndFind(t *testing.T) {
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog too small: %d", len(cat))
	}
	seen := map[string]bool{}
	for _, e := range cat {
		if e.ID == "" || e.Run == nil || e.Name == "" {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("8"); !ok {
		t.Fatal("Find(8) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find(nope) succeeded")
	}
}

func TestPolicyAblation(t *testing.T) {
	tb, err := PolicyAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if parseF(t, row[1]) <= 0 {
			t.Fatalf("no clusters: %v", row)
		}
	}
}

func TestBootstrapExperiment(t *testing.T) {
	p := Params{Side: 8, Sizes: []int{30}, Seeds: 1, BaseSeed: 2}
	tb, err := BootstrapExp(p)
	if err != nil {
		t.Fatal(err)
	}
	if parseF(t, tb.Rows[0][1]) <= 0 {
		t.Fatalf("no rounds: %v", tb.Rows[0])
	}
}

// TestPaperScaleRange exercises the paper's full stated range, 64 to 720
// nodes on the 8x8 and 12x12 regions.
func TestPaperScaleRange(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	for _, tc := range []struct{ side, n int }{{8, 64}, {12, 720}} {
		p := Params{Side: tc.side, Seeds: 1, BaseSeed: 9}
		net, err := buildNet(p, tc.n, 9)
		if err != nil {
			t.Fatalf("side=%d n=%d: %v", tc.side, tc.n, err)
		}
		icff, dfo, err := runBoth(p, net, tc.n, 9, broadcast.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !icff.Completed || !dfo.Completed {
			t.Fatalf("side=%d n=%d incomplete: %s / %s", tc.side, tc.n, icff, dfo)
		}
		if icff.CompletionRound >= dfo.CompletionRound {
			t.Fatalf("side=%d n=%d: CFF not faster (%d vs %d)",
				tc.side, tc.n, icff.CompletionRound, dfo.CompletionRound)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var b strings.Builder
	if err := RunAll(quick(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Lemma 3", "Multicast", "Robustness"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
