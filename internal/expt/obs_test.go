package expt

import (
	"sync/atomic"
	"testing"

	"dynsens/internal/obs"
)

// TestSweepInstrumentation runs a parallel sweep with a shared registry and
// a fake monotone clock, checking that worker results merge into the point
// counter and wall-time histogram without coordination (the -race run of
// this test is the data-race acceptance check for Obs under Workers > 1).
func TestSweepInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	var ticks atomic.Int64
	p := quick()
	p.Workers = 4
	p.Obs = reg
	p.Now = func() int64 { return ticks.Add(1_000_000) } // 1 ms per call

	tb, err := Fig8(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}

	wantPoints := int64(len(p.Sizes) * p.Seeds)
	snap := reg.Snapshot()
	if got, ok := snap.CounterValue(MetricExptPoints); !ok || got != wantPoints {
		t.Errorf("%s = %d (ok=%v), want %d", MetricExptPoints, got, ok, wantPoints)
	}
	if got, _ := snap.CounterValue(MetricExptErrors); got != 0 {
		t.Errorf("%s = %d, want 0", MetricExptErrors, got)
	}
	hp, ok := snap.HistogramPoint(MetricExptPointSeconds)
	if !ok {
		t.Fatalf("histogram %s not in snapshot", MetricExptPointSeconds)
	}
	if hp.Count != wantPoints {
		t.Errorf("histogram count = %d, want %d", hp.Count, wantPoints)
	}
	// The fake clock advances 1 ms per call and each point calls it twice,
	// so every observation is at least 0.001 s. Concurrent workers ticking
	// the shared clock inside another point's window inflate that point's
	// delta, but any single tick lands in at most Workers in-flight windows,
	// so the sum stays below Workers * totalCalls * 1 ms.
	lo := 0.001 * float64(wantPoints)
	hi := 0.001 * float64(2*wantPoints) * float64(p.Workers)
	if hp.Sum < lo || hp.Sum > hi {
		t.Errorf("histogram sum = %v, want in [%v, %v]", hp.Sum, lo, hi)
	}
}

// TestSweepWithoutClockSkipsHistogram checks the Now-less configuration
// still counts points but registers no wall-time series.
func TestSweepWithoutClockSkipsHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	p := quick()
	p.Obs = reg

	if _, err := Fig8(p); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if _, ok := snap.HistogramPoint(MetricExptPointSeconds); ok {
		t.Errorf("wall-time histogram registered without a clock")
	}
	if got, ok := snap.CounterValue(MetricExptPoints); !ok || got == 0 {
		t.Errorf("points counter = %d (ok=%v), want > 0", got, ok)
	}
}
