package expt

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/stats"
)

// Loss measures broadcast delivery under independent per-frame loss
// (fading), a real-radio effect outside the paper's idealized model, and
// how much simple repetition (nodes keep the payload and re-relay)
// recovers. Rows sweep the loss rate.
func Loss(p Params, rates []float64) (*stats.Table, error) {
	if len(rates) == 0 {
		rates = []float64{0, 0.1, 0.2, 0.3}
	}
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Frame loss vs repetition (n=%d)", n),
		"loss", "x1_delivery", "x3_delivery", "x6_delivery", "x6_rounds")
	for _, rate := range rates {
		var d1, d3, d6, r6 []float64
		for _, seed := range p.seeds() {
			net, err := buildNet(p, n, seed)
			if err != nil {
				return nil, err
			}
			for _, rep := range []int{1, 3, 6} {
				m, err := broadcast.RunReliable(net.Slots(), net.Root(), rep,
					broadcast.Options{LossRate: rate, LossSeed: seed * 3})
				if err != nil {
					return nil, err
				}
				switch rep {
				case 1:
					d1 = append(d1, m.DeliveryRatio())
				case 3:
					d3 = append(d3, m.DeliveryRatio())
				case 6:
					d6 = append(d6, m.DeliveryRatio())
					r6 = append(r6, float64(m.ScheduleLen))
				}
			}
		}
		t.AddRow(fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%.3f", mean(d1)), fmt.Sprintf("%.3f", mean(d3)),
			fmt.Sprintf("%.3f", mean(d6)), stats.F(mean(r6)))
	}
	return t, nil
}
