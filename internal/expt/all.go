package expt

import (
	"fmt"
	"io"

	"dynsens/internal/stats"
)

// Experiment names one runnable experiment.
type Experiment struct {
	ID    string
	Name  string
	Run   func(Params) (*stats.Table, error)
	Notes string
}

// Catalog lists every experiment, in report order.
func Catalog() []Experiment {
	return []Experiment{
		{ID: "8", Name: "Figure 8 (broadcast rounds)", Run: Fig8,
			Notes: "DFO grows ~linearly with backbone size; CFF stays near delta*h+Delta."},
		{ID: "9", Name: "Figure 9 (awake rounds)", Run: Fig9,
			Notes: "DFO nodes are awake the whole tour; CFF bounded by 2delta+Delta."},
		{ID: "10", Name: "Figure 10 (backbone size/height)", Run: Fig10,
			Notes: "Height far below size; both grow slowly."},
		{ID: "11", Name: "Figure 11 (degrees and slots)", Run: Fig11,
			Notes: "Delta < D and delta < d in simulation."},
		{ID: "bounds", Name: "Lemma 3 bound check", Run: BoundsCheck,
			Notes: "Measured slots are a small fraction of the quadratic bounds."},
		{ID: "channels", Name: "Multi-channel speedup", Run: func(p Params) (*stats.Table, error) { return MultiChannel(p, nil) },
			Notes: "Rounds and awake scale ~1/k."},
		{ID: "multicast", Name: "Multicast vs broadcast", Run: func(p Params) (*stats.Table, error) { return Multicast(p, nil) },
			Notes: "Pruned subtrees save transmissions; completion comes earlier."},
		{ID: "robust", Name: "Robustness under failures", Run: func(p Params) (*stats.Table, error) { return Robustness(p, nil) },
			Notes: "CFF keeps delivering; DFO's token stalls."},
		{ID: "repair", Name: "Crash detection and repair", Run: func(p Params) (*stats.Table, error) { return Repair(p, nil) },
			Notes: "Heartbeats pinpoint topmost dead nodes; repair re-attaches orphans; broadcasts recover."},
		{ID: "loss", Name: "Frame loss vs repetition", Run: func(p Params) (*stats.Table, error) { return Loss(p, nil) },
			Notes: "Single runs degrade with loss; payload-keeping repetitions recover delivery."},
		{ID: "mobility", Name: "Reconfiguration under movement", Run: func(p Params) (*stats.Table, error) { return Mobility(p, nil) },
			Notes: "Moves cost bounded maintenance; invariants and broadcasts survive every move."},
		{ID: "reconfig", Name: "Reconfiguration cost", Run: Reconfig,
			Notes: "Move-in maintenance stays near the 2h+2d+D bound; move-out scales with |T|."},
		{ID: "areas", Name: "Region-scale sweep", Run: func(p Params) (*stats.Table, error) { return Areas(p, nil) },
			Notes: "Denser networks (smaller regions) favor CFF further."},
		{ID: "lifetime", Name: "Network lifetime under repeated broadcast", Run: func(p Params) (*stats.Table, error) { return Lifetime(p, 0) },
			Notes: "CFF extends time-to-first-death by roughly the DFO tour length."},
		{ID: "failover", Name: "Multi-sink failover", Run: Failover,
			Notes: "A second cluster-net recovers deliveries lost to a dead sink."},
		{ID: "skew", Name: "Clock skew vs guard slots", Run: func(p Params) (*stats.Table, error) { return Skew(p, nil) },
			Notes: "Guard factor G tolerates skew up to G/2 rounds; unguarded schedules degrade."},
		{ID: "gather", Name: "Data gathering (convergecast)", Run: Gathering,
			Notes: "Exact aggregation in W*h rounds with nodes awake at most W+1 rounds."},
		{ID: "flooding", Name: "Unstructured flooding baseline", Run: func(p Params) (*stats.Table, error) { return Flooding(p, nil) },
			Notes: "Blind flooding storms (collisions, partial delivery, everyone awake); CFF does not."},
		{ID: "discovery", Name: "Neighbor discovery cost", Run: Discovery,
			Notes: "Measured rounds scale near-linearly with the joiner's degree (Theorem 2)."},
		{ID: "bootstrap", Name: "Protocol self-construction", Run: BootstrapExp,
			Notes: "Whole-network build over the air; discovery dominates, ~250 rounds/node."},
		{ID: "joinproto", Name: "Message-level node-move-in", Run: JoinProtocol,
			Notes: "Per-phase rounds of the full join protocol; discovery dominates, O(d_new) expected."},
		{ID: "construction", Name: "Construction: move-in vs gossip", Run: Construction,
			Notes: "Gossip is O(n) flat; incremental pays per-node discovery but handles churn."},
		{ID: "ablation", Name: "Ablation: Alg 1 vs Alg 2", Run: AblationAlg1VsAlg2,
			Notes: "Backbone-first flooding wins on both time and energy."},
		{ID: "policy", Name: "Ablation: parent policies", Run: PolicyAblation,
			Notes: "Definition 1's application hook: parent choice shifts backbone shape modestly."},
		{ID: "slotcond", Name: "Ablation: slot conditions", Run: AblationSlotCondition,
			Notes: "The paper's literal condition can drop leaves; the strict one never does."},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Catalog() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and writes the rendered tables to w.
func RunAll(p Params, w io.Writer) error {
	for _, e := range Catalog() {
		t, err := e.Run(p)
		if err != nil {
			return fmt.Errorf("expt %s: %w", e.ID, err)
		}
		if _, err := fmt.Fprintf(w, "== %s ==\n", e.Name); err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "expected shape: %s\n\n", e.Notes); err != nil {
			return err
		}
	}
	return nil
}
