package expt

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/graph"
	"dynsens/internal/stats"
	"dynsens/internal/timeslot"
	"dynsens/internal/workload"
)

// MultiChannel measures the Section 3.3 multi-channel claim: with k
// channels the broadcast completes in about (delta*h + Delta)/k rounds and
// nodes stay awake about (2*delta + Delta)/k rounds. Rows sweep k for the
// largest configured network size.
func MultiChannel(p Params, channels []int) (*stats.Table, error) {
	if len(channels) == 0 {
		channels = []int{1, 2, 4, 8}
	}
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Multi-channel ICFF (n=%d)", n),
		"k", "rounds", "sched", "max_awake", "speedup_vs_k1")
	var base float64
	for _, k := range channels {
		var rounds, scheds, awakes []float64
		for _, seed := range p.seeds() {
			net, err := buildNet(p, n, seed)
			if err != nil {
				return nil, err
			}
			m, err := net.Broadcast(net.Root(), broadcast.Options{Channels: k})
			if err != nil {
				return nil, err
			}
			if !m.Completed {
				return nil, fmt.Errorf("expt: k=%d broadcast incomplete: %s", k, m)
			}
			rounds = append(rounds, float64(m.CompletionRound))
			scheds = append(scheds, float64(m.ScheduleLen))
			awakes = append(awakes, float64(m.MaxAwake))
		}
		r := mean(rounds)
		if k == channels[0] {
			base = r
		}
		t.AddRow(stats.F(float64(k)), stats.F(r), stats.F(mean(scheds)),
			stats.F(mean(awakes)), ratio(base, r))
	}
	return t, nil
}

// Multicast measures the Section 3.4 claim that a multicast is much faster
// (fewer transmissions, earlier completion) than a broadcast as the group
// shrinks. Rows sweep the group-membership probability.
func Multicast(p Params, fracs []float64) (*stats.Table, error) {
	if len(fracs) == 0 {
		fracs = []float64{0.05, 0.1, 0.25, 0.5, 1.0}
	}
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Multicast vs broadcast (n=%d)", n),
		"group_frac", "members", "mc_tx", "bc_tx", "mc_last_rx", "bc_last_rx", "forced_relays")
	for _, frac := range fracs {
		var members, mcTx, bcTx, mcDone, bcDone, forced []float64
		for _, seed := range p.seeds() {
			net, err := buildNet(p, n, seed)
			if err != nil {
				return nil, err
			}
			rng := p.rng(seed * 31)
			nodes := net.CNet().Tree().Nodes()
			joined := 0
			for _, id := range nodes {
				if rng.Float64() < frac {
					if err := net.JoinGroup(id, 1); err != nil {
						return nil, err
					}
					joined++
				}
			}
			if joined == 0 {
				if err := net.JoinGroup(nodes[len(nodes)-1], 1); err != nil {
					return nil, err
				}
				joined = 1
			}
			_, f := net.Groups().RelaySet(net.Slots(), 1)
			mc, err := net.Multicast(1, net.Root(), broadcast.Options{})
			if err != nil {
				return nil, err
			}
			bc, err := net.Broadcast(net.Root(), broadcast.Options{})
			if err != nil {
				return nil, err
			}
			if !mc.Completed || !bc.Completed {
				return nil, fmt.Errorf("expt: multicast incomplete: %s / %s", mc, bc)
			}
			members = append(members, float64(joined))
			mcTx = append(mcTx, float64(mc.Transmissions))
			bcTx = append(bcTx, float64(bc.Transmissions))
			mcDone = append(mcDone, float64(mc.CompletionRound))
			bcDone = append(bcDone, float64(bc.CompletionRound))
			forced = append(forced, float64(f))
		}
		t.AddRow(fmt.Sprintf("%.2f", frac), stats.F(mean(members)), stats.F(mean(mcTx)),
			stats.F(mean(bcTx)), stats.F(mean(mcDone)), stats.F(mean(bcDone)),
			stats.F(mean(forced)))
	}
	return t, nil
}

// Robustness measures Section 3.3's robustness claim: with a fraction of
// nodes dying at random rounds during the broadcast, CFF keeps delivering
// to the surviving reachable part while DFO's token stalls. Rows sweep the
// failure fraction and report mean delivery ratios.
func Robustness(p Params, fracs []float64) (*stats.Table, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.02, 0.05, 0.1, 0.2}
	}
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Robustness under node failures (n=%d)", n),
		"fail_frac", "cff_delivery", "dfo_delivery", "cff_advantage")
	for _, frac := range fracs {
		var cffR, dfoR []float64
		for _, seed := range p.seeds() {
			net, err := buildNet(p, n, seed)
			if err != nil {
				return nil, err
			}
			dfoPlanLen := 2 * (net.CNet().Backbone().Size() - 1)
			trace := workload.FailureTrace(net.Graph(), net.Root(), frac, maxInt(dfoPlanLen, 1), seed*17)
			var fails []broadcast.NodeFailure
			for _, f := range trace {
				fails = append(fails, broadcast.NodeFailure{Node: f.Node, Round: f.Round})
			}
			icff, err := net.Broadcast(net.Root(), broadcast.Options{Failures: fails})
			if err != nil {
				return nil, err
			}
			dfo, err := net.BroadcastDFO(net.Root(), broadcast.Options{Failures: fails})
			if err != nil {
				return nil, err
			}
			cffR = append(cffR, icff.DeliveryRatio())
			dfoR = append(dfoR, dfo.DeliveryRatio())
		}
		c, d := mean(cffR), mean(dfoR)
		t.AddRow(fmt.Sprintf("%.2f", frac), fmt.Sprintf("%.3f", c), fmt.Sprintf("%.3f", d), ratio(c, d))
	}
	return t, nil
}

// Reconfig measures Theorems 2 and 3: the round cost of node-move-in and
// node-move-out (structural knowledge-I/height part plus the time-slot
// maintenance part) as the network grows.
func Reconfig(p Params) (*stats.Table, error) {
	t := stats.NewTable("Reconfiguration cost (Theorems 2 and 3)",
		"nodes", "movein_rounds", "movein_slot", "moveout_rounds", "moveout_slot", "bound_2h+2d+D")
	for _, n := range p.Sizes {
		var inR, inS, outR, outS, bounds []float64
		for _, seed := range p.seeds() {
			net, err := buildNet(p, n, seed)
			if err != nil {
				return nil, err
			}
			st := net.Stats()
			bounds = append(bounds, float64(2*st.Height+2*st.DegreeBT+st.DegreeG))

			// Move-in: attach a fresh node next to a random existing one.
			rng := p.rng(seed * 13)
			nodes := net.CNet().Tree().Nodes()
			anchor := nodes[rng.Intn(len(nodes))]
			nbrs := append([]graph.NodeID{anchor}, net.Graph().Neighbors(anchor)...)
			preStruct, preSlot := net.Stats().StructuralRounds, net.Stats().SlotRounds
			if err := net.Join(graph.NodeID(n+5000), nbrs); err != nil {
				return nil, err
			}
			post := net.Stats()
			inR = append(inR, float64(post.StructuralRounds-preStruct))
			inS = append(inS, float64(post.SlotRounds-preSlot))

			// Move-out: remove a safe node.
			victim, ok := safeLeaveCandidate(net)
			if !ok {
				continue
			}
			preStruct, preSlot = post.StructuralRounds, post.SlotRounds
			if err := net.Leave(victim); err != nil {
				return nil, err
			}
			post = net.Stats()
			outR = append(outR, float64(post.StructuralRounds-preStruct))
			outS = append(outS, float64(post.SlotRounds-preSlot))
		}
		t.AddRow(stats.F(float64(n)), stats.F(mean(inR)), stats.F(mean(inS)),
			stats.F(mean(outR)), stats.F(mean(outS)), stats.F(mean(bounds)))
	}
	return t, nil
}

// Areas repeats the Fig. 8 and Fig. 10 measurements across the paper's
// three region scales (8x8, 10x10, 12x12 units) at a fixed node count.
func Areas(p Params, sides []int) (*stats.Table, error) {
	if len(sides) == 0 {
		sides = []int{8, 10, 12}
	}
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Region-scale sweep (n=%d)", n),
		"side_units", "cff_rounds", "dfo_rounds", "bt_size", "bt_height", "D", "Delta")
	for _, side := range sides {
		q := p
		q.Side = side
		var cff, dfo, size, height, dd, delta []float64
		for _, seed := range q.seeds() {
			net, err := buildNet(q, n, seed)
			if err != nil {
				return nil, err
			}
			ic, df, err := runBoth(q, net, n, seed, broadcast.Options{})
			if err != nil {
				return nil, err
			}
			if !ic.Completed || !df.Completed {
				return nil, errIncomplete("Areas", n, seed, ic, df)
			}
			st := net.Stats()
			cff = append(cff, float64(ic.CompletionRound))
			dfo = append(dfo, float64(df.CompletionRound))
			size = append(size, float64(st.BackboneSize))
			height = append(height, float64(st.BackboneHeight))
			dd = append(dd, float64(st.DegreeG))
			delta = append(delta, float64(st.Delta))
		}
		t.AddRow(stats.F(float64(side)), stats.F(mean(cff)), stats.F(mean(dfo)),
			stats.F(mean(size)), stats.F(mean(height)), stats.F(mean(dd)), stats.F(mean(delta)))
	}
	return t, nil
}

// AblationAlg1VsAlg2 compares plain CNet flooding (Algorithm 1) with the
// backbone-first improvement (Algorithm 2), the design choice Section 3.3
// motivates: the backbone's smaller degree yields smaller slots and a
// shorter schedule.
func AblationAlg1VsAlg2(p Params) (*stats.Table, error) {
	data, err := forEachPoint(p, func(net *core.Network, n int, seed int64) (map[string]float64, error) {
		a2, err := net.Broadcast(net.Root(), broadcast.Options{})
		if err != nil {
			return nil, err
		}
		a1, err := net.BroadcastCFF(net.Root(), broadcast.Options{})
		if err != nil {
			return nil, err
		}
		if !a1.Completed || !a2.Completed {
			return nil, errIncomplete("Ablation", n, seed, a1, a2)
		}
		return map[string]float64{
			"alg1":       float64(a1.CompletionRound),
			"alg2":       float64(a2.CompletionRound),
			"alg1_awake": float64(a1.MaxAwake),
			"alg2_awake": float64(a2.MaxAwake),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation — Algorithm 1 (CNet flooding) vs Algorithm 2 (backbone-first)",
		"nodes", "alg1_rounds", "alg2_rounds", "alg1_awake", "alg2_awake")
	for _, n := range p.Sizes {
		d := data[n]
		t.AddRow(stats.F(float64(n)), stats.F(mean(d["alg1"])), stats.F(mean(d["alg2"])),
			stats.F(mean(d["alg1_awake"])), stats.F(mean(d["alg2_awake"])))
	}
	return t, nil
}

// AblationSlotCondition compares the paper's literal Time-Slot Condition 2
// against the strict cross-depth condition this implementation defaults to
// (DESIGN.md §5): slot magnitudes and the delivery ratio each achieves in
// Algorithm 2's shared leaf window.
func AblationSlotCondition(p Params) (*stats.Table, error) {
	t := stats.NewTable("Ablation — paper vs strict l-slot condition",
		"nodes", "paper_Delta", "strict_Delta", "paper_delivery", "strict_delivery")
	for _, n := range p.Sizes {
		var pd, sd, pr, sr []float64
		for _, seed := range p.seeds() {
			d, err := workload.IncrementalConnected(workload.PaperConfig(seed, p.Side, n))
			if err != nil {
				return nil, err
			}
			for _, cc := range []struct {
				cond   timeslot.Condition
				deltas *[]float64
			}{
				{timeslot.ConditionPaper, &pd},
				{timeslot.ConditionStrict, &sd},
			} {
				cond, deltas := cc.cond, cc.deltas
				net, err := core.Build(d.Graph(), core.Config{SlotCondition: cond})
				if err != nil {
					return nil, err
				}
				m, err := net.Broadcast(net.Root(), broadcast.Options{})
				if err != nil {
					return nil, err
				}
				*deltas = append(*deltas, float64(net.Stats().Delta))
				if cond == timeslot.ConditionPaper {
					pr = append(pr, m.DeliveryRatio())
				} else {
					sr = append(sr, m.DeliveryRatio())
				}
			}
		}
		t.AddRow(stats.F(float64(n)), stats.F(mean(pd)), stats.F(mean(sd)),
			fmt.Sprintf("%.4f", mean(pr)), fmt.Sprintf("%.4f", mean(sr)))
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
