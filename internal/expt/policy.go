package expt

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/cnet"
	"dynsens/internal/core"
	"dynsens/internal/graph"
	"dynsens/internal/stats"
	"dynsens/internal/workload"
)

// PolicyAblation studies the parent-selection hook Definition 1 leaves to
// the application ("based on the criteria an application needs, such as on
// energy level"): lowest ID (the deterministic default), highest degree
// (prefer well-connected parents) and lowest degree. Rows report the
// structural and protocol consequences at the largest configured size.
func PolicyAblation(p Params) (*stats.Table, error) {
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Parent-policy ablation (n=%d)", n),
		"policy", "clusters", "bt_size", "height", "Delta", "cff_rounds")
	type row struct{ clusters, bt, height, delta, rounds []float64 }
	rows := map[string]*row{"lowest-id": {}, "max-degree": {}, "min-degree": {}}
	order := []string{"lowest-id", "max-degree", "min-degree"}
	for _, seed := range p.seeds() {
		d, err := workload.IncrementalConnected(workload.PaperConfig(seed, p.Side, n))
		if err != nil {
			return nil, err
		}
		g := d.Graph()
		degVal := make(map[graph.NodeID]float64, n)
		negVal := make(map[graph.NodeID]float64, n)
		for _, id := range g.Nodes() {
			degVal[id] = float64(g.Degree(id))
			negVal[id] = -float64(g.Degree(id))
		}
		policies := map[string]cnet.Policy{
			"lowest-id":  nil,
			"max-degree": cnet.MaxValue(degVal),
			"min-degree": cnet.MaxValue(negVal),
		}
		for _, name := range order { // fixed order: table rows must not depend on map iteration
			pol := policies[name]
			net, err := core.Build(g, core.Config{Policy: pol})
			if err != nil {
				return nil, err
			}
			if err := net.Verify(); err != nil {
				return nil, fmt.Errorf("policy %s: %w", name, err)
			}
			m, err := net.Broadcast(net.Root(), broadcast.Options{})
			if err != nil {
				return nil, err
			}
			if !m.Completed {
				return nil, fmt.Errorf("policy %s: broadcast incomplete", name)
			}
			st := net.Stats()
			r := rows[name]
			r.clusters = append(r.clusters, float64(st.Clusters))
			r.bt = append(r.bt, float64(st.BackboneSize))
			r.height = append(r.height, float64(st.Height))
			r.delta = append(r.delta, float64(st.Delta))
			r.rounds = append(r.rounds, float64(m.CompletionRound))
		}
	}
	for _, name := range order {
		r := rows[name]
		t.AddRow(name, stats.F(mean(r.clusters)), stats.F(mean(r.bt)),
			stats.F(mean(r.height)), stats.F(mean(r.delta)), stats.F(mean(r.rounds)))
	}
	return t, nil
}
