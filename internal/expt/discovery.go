package expt

import (
	"fmt"

	"dynsens/internal/core"
	"dynsens/internal/discovery"
	"dynsens/internal/graph"
	"dynsens/internal/joinproto"
	"dynsens/internal/stats"
	"dynsens/internal/workload"
)

// Discovery measures the randomized neighbor-discovery handshake behind
// node-move-in (Theorem 2's O(d_new) expected rounds): for each network
// size, a node of known degree runs the decay protocol on the radio
// engine and the measured rounds, collisions and completeness are
// reported against its degree.
func Discovery(p Params) (*stats.Table, error) {
	t := stats.NewTable("Neighbor discovery — measured cost vs degree (Theorem 2 substrate)",
		"nodes", "avg_degree", "rounds", "rounds_per_degree", "collisions", "complete")
	for _, n := range p.Sizes {
		var degs, rounds, colls, complete []float64
		for _, seed := range p.seeds() {
			d, err := workload.IncrementalConnected(workload.PaperConfig(seed, p.Side, n))
			if err != nil {
				return nil, err
			}
			g := d.Graph()
			// Probe a few representative joiners per deployment.
			for _, joiner := range []graph.NodeID{graph.NodeID(n / 4), graph.NodeID(n / 2), graph.NodeID(3 * n / 4)} {
				if !g.HasNode(joiner) || g.Degree(joiner) == 0 {
					continue
				}
				res, err := discovery.Run(g, joiner, discovery.Options{Seed: seed*101 + int64(joiner)})
				if err != nil {
					return nil, err
				}
				degs = append(degs, float64(g.Degree(joiner)))
				rounds = append(rounds, float64(res.Rounds))
				colls = append(colls, float64(res.Collisions))
				if res.Complete {
					complete = append(complete, 1)
				} else {
					complete = append(complete, 0)
				}
			}
		}
		dm, rm := mean(degs), mean(rounds)
		t.AddRow(stats.F(float64(n)), stats.F(dm), stats.F(rm), ratio(rm, dm),
			stats.F(mean(colls)), fmt.Sprintf("%.3f", mean(complete)))
	}
	return t, nil
}

// bootstrapCap bounds the sizes used by the Bootstrap experiment: every
// node's join runs a full discovery episode on the engine, so paper-scale
// sweeps would dominate the harness runtime.
const bootstrapCap = 120

// BootstrapExp measures complete self-construction through the
// message-level protocol: total over-the-air rounds to build the network
// node by node (Section 5's first construction method, end to end),
// versus the gossip alternative's 2n.
func BootstrapExp(p Params) (*stats.Table, error) {
	t := stats.NewTable("Protocol self-construction (message-level, sizes capped)",
		"nodes", "total_rounds", "rounds_per_node", "incomplete_discoveries", "gossip_2n")
	seen := make(map[int]bool)
	var sizes []int
	for _, n := range p.Sizes {
		if n > bootstrapCap {
			n = bootstrapCap
		}
		if !seen[n] {
			seen[n] = true
			sizes = append(sizes, n)
		}
	}
	for _, n := range sizes {
		var total, perNode, inc []float64
		for _, seed := range p.seeds() {
			d, err := workload.IncrementalConnected(workload.PaperConfig(seed, p.Side, n))
			if err != nil {
				return nil, err
			}
			res, err := joinproto.Bootstrap(d, core.Config{}, seed*5)
			if err != nil {
				return nil, err
			}
			total = append(total, float64(res.TotalRounds))
			perNode = append(perNode, float64(res.TotalRounds)/float64(n-1))
			inc = append(inc, float64(res.IncompleteDiscoveries))
		}
		t.AddRow(stats.F(float64(n)), stats.F(mean(total)), stats.F(mean(perNode)),
			stats.F(mean(inc)), stats.F(float64(2*n)))
	}
	return t, nil
}

// JoinProtocol measures the complete message-level node-move-in (Theorem
// 2) per phase: discovery, knowledge queries, attach handshake, slot
// maintenance and height reports — all in rounds, against the joiner's
// degree and the 2h+2d+D knowledge-(II) bound.
func JoinProtocol(p Params) (*stats.Table, error) {
	t := stats.NewTable("Message-level node-move-in, per-phase rounds (Theorem 2)",
		"nodes", "degree", "discover", "query", "attach", "slots", "height", "total", "bound_2h+2d+D")
	for _, n := range p.Sizes {
		var degs, disc, query, attach, slots, height, total, bounds []float64
		for _, seed := range p.seeds() {
			d, err := workload.IncrementalConnected(workload.PaperConfig(seed, p.Side, n))
			if err != nil {
				return nil, err
			}
			net, err := core.Build(d.Graph(), core.Config{})
			if err != nil {
				return nil, err
			}
			anchor := graph.NodeID(n / 2)
			nbrs := append([]graph.NodeID{anchor}, net.Graph().Neighbors(anchor)...)
			res, err := joinproto.Join(net, graph.NodeID(n+1000), nbrs, seed*3)
			if err != nil {
				return nil, err
			}
			st := net.Stats()
			degs = append(degs, float64(len(nbrs)))
			disc = append(disc, float64(res.DiscoveryRounds))
			query = append(query, float64(res.QueryRounds))
			attach = append(attach, float64(res.AttachRounds))
			slots = append(slots, float64(res.SlotRounds))
			height = append(height, float64(res.HeightRounds))
			total = append(total, float64(res.TotalRounds()))
			bounds = append(bounds, float64(2*st.Height+2*st.DegreeBT+st.DegreeG))
		}
		t.AddRow(stats.F(float64(n)), stats.F(mean(degs)), stats.F(mean(disc)),
			stats.F(mean(query)), stats.F(mean(attach)), stats.F(mean(slots)),
			stats.F(mean(height)), stats.F(mean(total)), stats.F(mean(bounds)))
	}
	return t, nil
}
