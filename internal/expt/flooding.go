package expt

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/stats"
)

// Flooding compares the paper's structured CFF broadcast against the
// unstructured probabilistic-flooding family the introduction cites
// (blind flooding suffers the broadcast-storm problem [16]; probabilistic
// variants trade delivery for fewer collisions). Rows sweep the forward
// probability at the largest configured size.
func Flooding(p Params, forwards []float64) (*stats.Table, error) {
	if len(forwards) == 0 {
		forwards = []float64{0.3, 0.5, 0.7, 1.0}
	}
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Unstructured flooding baseline vs CFF (n=%d)",
		n), "protocol", "delivery", "last_rx", "collisions", "tx", "max_awake")

	var cffDel, cffDone, cffColl, cffTx, cffAwake []float64
	var rrDel, rrDone, rrColl, rrTx, rrAwake []float64
	type floodRow struct{ del, done, coll, tx, awake []float64 }
	rows := make(map[float64]*floodRow, len(forwards))
	for _, f := range forwards {
		rows[f] = &floodRow{}
	}
	for _, seed := range p.seeds() {
		net, err := buildNet(p, n, seed)
		if err != nil {
			return nil, err
		}
		cff, err := net.Broadcast(net.Root(), broadcast.Options{})
		if err != nil {
			return nil, err
		}
		cffDel = append(cffDel, cff.DeliveryRatio())
		cffDone = append(cffDone, float64(cff.CompletionRound))
		cffColl = append(cffColl, float64(cff.Collisions))
		cffTx = append(cffTx, float64(cff.Transmissions))
		cffAwake = append(cffAwake, float64(cff.MaxAwake))
		rr, err := broadcast.RunRoundRobin(net.Graph(), net.Root(), 0, broadcast.Options{})
		if err != nil {
			return nil, err
		}
		rrDel = append(rrDel, rr.DeliveryRatio())
		rrDone = append(rrDone, float64(rr.CompletionRound))
		rrColl = append(rrColl, float64(rr.Collisions))
		rrTx = append(rrTx, float64(rr.Transmissions))
		rrAwake = append(rrAwake, float64(rr.MaxAwake))
		for _, f := range forwards {
			m, err := broadcast.RunPFlood(net.Graph(), net.Root(), broadcast.PFloodOptions{
				Seed: seed * 7, Forward: f,
			})
			if err != nil {
				return nil, err
			}
			r := rows[f]
			r.del = append(r.del, m.DeliveryRatio())
			r.done = append(r.done, float64(m.CompletionRound))
			r.coll = append(r.coll, float64(m.Collisions))
			r.tx = append(r.tx, float64(m.Transmissions))
			r.awake = append(r.awake, float64(m.MaxAwake))
		}
	}
	t.AddRow("cff", fmt.Sprintf("%.3f", mean(cffDel)), stats.F(mean(cffDone)),
		stats.F(mean(cffColl)), stats.F(mean(cffTx)), stats.F(mean(cffAwake)))
	t.AddRow("round-robin", fmt.Sprintf("%.3f", mean(rrDel)), stats.F(mean(rrDone)),
		stats.F(mean(rrColl)), stats.F(mean(rrTx)), stats.F(mean(rrAwake)))
	for _, f := range forwards {
		r := rows[f]
		t.AddRow(fmt.Sprintf("flood_p=%.1f", f), fmt.Sprintf("%.3f", mean(r.del)),
			stats.F(mean(r.done)), stats.F(mean(r.coll)), stats.F(mean(r.tx)),
			stats.F(mean(r.awake)))
	}
	return t, nil
}
