package expt

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/geom"
	"dynsens/internal/graph"
	"dynsens/internal/stats"
	"dynsens/internal/workload"
)

// Mobility replays node movement — the paper's motivating dynamic — as
// leave/rejoin pairs against the self-reconfiguring structure, and
// measures the maintenance price per move and the broadcast health after
// every move. Rows sweep the wander radius (how far a node moves, in
// multiples of the communication range).
func Mobility(p Params, wanders []float64) (*stats.Table, error) {
	if len(wanders) == 0 {
		wanders = []float64{1, 2, 4}
	}
	n := p.Sizes[0]
	moves := 20
	t := stats.NewTable(fmt.Sprintf("Mobility: reconfiguration under movement (n=%d, %d moves)", n, moves),
		"wander_x_range", "struct_rounds/move", "slot_rounds/move", "post_bcast_rounds", "always_complete")
	for _, wander := range wanders {
		var structR, slotR, bcast []float64
		allComplete := true
		for _, seed := range p.seeds() {
			cfg := workload.PaperConfig(seed, p.Side, n)
			base, events, err := workload.MobilityTrace(cfg, moves, wander)
			if err != nil {
				return nil, err
			}
			net, err := core.Build(base.Graph(), core.Config{})
			if err != nil {
				return nil, err
			}
			live := make(map[graph.NodeID]geom.Point)
			for i, pos := range base.Pos {
				live[graph.NodeID(i)] = pos
			}
			preStruct := net.Stats().StructuralRounds
			preSlot := net.Stats().SlotRounds
			for i := 0; i < len(events); i += 2 {
				lv, jn := events[i], events[i+1]
				if err := net.Leave(lv.Node); err != nil {
					return nil, fmt.Errorf("mobility leave: %w", err)
				}
				delete(live, lv.Node)
				var nbrs []graph.NodeID
				for id, q := range live {
					if jn.Pos.InRange(q, cfg.Range) {
						nbrs = append(nbrs, id)
					}
				}
				sortNodeIDs(nbrs)
				if err := net.Join(jn.Node, nbrs); err != nil {
					return nil, fmt.Errorf("mobility join: %w", err)
				}
				live[jn.Node] = jn.Pos
				if err := net.Verify(); err != nil {
					return nil, fmt.Errorf("mobility invariants after move %d: %w", i/2, err)
				}
			}
			st := net.Stats()
			structR = append(structR, float64(st.StructuralRounds-preStruct)/float64(moves))
			slotR = append(slotR, float64(st.SlotRounds-preSlot)/float64(moves))
			m, err := net.Broadcast(net.Root(), broadcast.Options{})
			if err != nil {
				return nil, err
			}
			bcast = append(bcast, float64(m.CompletionRound))
			if !m.Completed {
				allComplete = false
			}
		}
		complete := "yes"
		if !allComplete {
			complete = "NO"
		}
		t.AddRow(stats.F(wander), stats.F(mean(structR)), stats.F(mean(slotR)),
			stats.F(mean(bcast)), complete)
	}
	return t, nil
}

func sortNodeIDs(ids []graph.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
