package expt

import (
	"dynsens/internal/core"
	"dynsens/internal/gather"
	"dynsens/internal/graph"
	"dynsens/internal/stats"
)

// Gathering measures the convergecast extension (the data-gathering
// pattern the paper's introduction motivates): exactness, rounds and
// awake costs on the cluster structure, per network size.
func Gathering(p Params) (*stats.Table, error) {
	data, err := forEachPoint(p, func(net *core.Network, n int, seed int64) (map[string]float64, error) {
		values := make(map[graph.NodeID]int64, n)
		for _, id := range net.CNet().Tree().Nodes() {
			values[id] = int64(id) + 1
		}
		m, err := net.Gather(values, gather.Options{})
		if err != nil {
			return nil, err
		}
		exact := 0.0
		if m.Complete() && m.Sum == m.Expected {
			exact = 1
		}
		return map[string]float64{
			"rounds": float64(m.Rounds),
			"W":      float64(m.ScheduleLen / max1(net.CNet().Tree().Height())),
			"awake":  float64(m.MaxAwake),
			"exact":  exact,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Data gathering (convergecast) on the cluster structure",
		"nodes", "rounds", "window_W", "max_awake", "exact_fraction")
	for _, n := range p.Sizes {
		d := data[n]
		t.AddRow(stats.F(float64(n)), stats.F(mean(d["rounds"])), stats.F(mean(d["W"])),
			stats.F(mean(d["awake"])), stats.F(mean(d["exact"])))
	}
	return t, nil
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
