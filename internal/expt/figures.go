package expt

import (
	"sort"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/stats"
)

// Fig8 reproduces Figure 8: rounds needed to complete a CFF broadcast
// (our Algorithm 2 implementation) versus the DFO broadcast of [19], as a
// function of network size. The paper shows DFO growing linearly to ~600
// rounds at 500 nodes while CFF stays far below.
func Fig8(p Params) (*stats.Table, error) {
	data, err := forEachPoint(p, func(net *core.Network, n int, seed int64) (map[string]float64, error) {
		icff, dfo, err := runBoth(p, net, n, seed, broadcast.Options{})
		if err != nil {
			return nil, err
		}
		if !icff.Completed || !dfo.Completed {
			return nil, errIncomplete("Fig8", n, seed, icff, dfo)
		}
		return map[string]float64{
			"cff":       float64(icff.CompletionRound),
			"cff_sched": float64(icff.ScheduleLen),
			"dfo":       float64(dfo.CompletionRound),
			"dfo_sched": float64(dfo.ScheduleLen),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 8 — broadcast completion rounds (CFF vs DFO)",
		"nodes", "cff_rounds", "dfo_rounds", "cff_sched", "dfo_sched", "speedup")
	for _, n := range p.Sizes {
		d := data[n]
		c, f := mean(d["cff"]), mean(d["dfo"])
		t.AddRow(stats.F(float64(n)), stats.F(c), stats.F(f),
			stats.F(mean(d["cff_sched"])), stats.F(mean(d["dfo_sched"])),
			stats.F(f/c))
	}
	return t, nil
}

// Fig9 reproduces Figure 9: the number of rounds a node must stay awake
// during a broadcast. For DFO every node is awake for the whole tour; for
// CFF the maximum over nodes is bounded by 2*delta + Delta.
func Fig9(p Params) (*stats.Table, error) {
	data, err := forEachPoint(p, func(net *core.Network, n int, seed int64) (map[string]float64, error) {
		icff, dfo, err := runBoth(p, net, n, seed, broadcast.Options{})
		if err != nil {
			return nil, err
		}
		if !icff.Completed || !dfo.Completed {
			return nil, errIncomplete("Fig9", n, seed, icff, dfo)
		}
		var cffAwake []int
		for _, v := range icff.Awake {
			cffAwake = append(cffAwake, v)
		}
		sort.Ints(cffAwake) // map order must not leak into the percentile input
		return map[string]float64{
			"cff_max":  float64(icff.MaxAwake),
			"cff_mean": icff.MeanAwake,
			"cff_p95":  stats.PercentileInts(cffAwake, 95),
			"dfo_max":  float64(dfo.MaxAwake),
			"dfo_mean": dfo.MeanAwake,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 9 — rounds a node must be awake (CFF vs DFO)",
		"nodes", "cff_max", "cff_p95", "cff_mean", "dfo_max", "dfo_mean", "saving")
	for _, n := range p.Sizes {
		d := data[n]
		cm, fm := mean(d["cff_max"]), mean(d["dfo_max"])
		t.AddRow(stats.F(float64(n)), stats.F(cm), stats.F(mean(d["cff_p95"])),
			stats.F(mean(d["cff_mean"])),
			stats.F(fm), stats.F(mean(d["dfo_mean"])), stats.F(fm/cm))
	}
	return t, nil
}

// Fig10 reproduces Figure 10: average size and height of the backbone
// BT(G). The paper shows size growing to ~140 at 500 nodes with height far
// below it.
func Fig10(p Params) (*stats.Table, error) {
	data, err := forEachPoint(p, func(net *core.Network, n int, seed int64) (map[string]float64, error) {
		st := net.Stats()
		return map[string]float64{
			"size":   float64(st.BackboneSize),
			"height": float64(st.BackboneHeight),
			"heads":  float64(st.Clusters),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 10 — backbone size and height",
		"nodes", "bt_size", "bt_height", "clusters")
	for _, n := range p.Sizes {
		d := data[n]
		t.AddRow(stats.F(float64(n)), stats.F(mean(d["size"])),
			stats.F(mean(d["height"])), stats.F(mean(d["heads"])))
	}
	return t, nil
}

// Fig11 reproduces Figure 11: D (max degree of G), d (max degree of
// G(V_BT)), Delta (largest l-time-slot) and delta (largest b-time-slot).
// Section 6 observes Delta < D and delta < d in simulation, far below the
// Lemma 3 worst cases.
func Fig11(p Params) (*stats.Table, error) {
	data, err := forEachPoint(p, func(net *core.Network, n int, seed int64) (map[string]float64, error) {
		st := net.Stats()
		return map[string]float64{
			"D":     float64(st.DegreeG),
			"d":     float64(st.DegreeBT),
			"Delta": float64(st.Delta),
			"delta": float64(st.SmallDelta),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 11 — degrees and largest time-slots",
		"nodes", "D", "d", "Delta", "delta")
	for _, n := range p.Sizes {
		d := data[n]
		t.AddRow(stats.F(float64(n)), stats.F(mean(d["D"])), stats.F(mean(d["d"])),
			stats.F(mean(d["Delta"])), stats.F(mean(d["delta"])))
	}
	return t, nil
}

// BoundsCheck validates Lemma 3 numerically: the measured delta and Delta
// against their proven bounds d(d+1)/2+1 and D(D+1)/2+1, reporting the
// measured/bound ratio (Section 4 predicts roughly one quarter; Section 6
// observes even less).
func BoundsCheck(p Params) (*stats.Table, error) {
	data, err := forEachPoint(p, func(net *core.Network, n int, seed int64) (map[string]float64, error) {
		st := net.Stats()
		return map[string]float64{
			"Delta":  float64(st.Delta),
			"boundL": float64(st.BoundL),
			"delta":  float64(st.SmallDelta),
			"boundB": float64(st.BoundB),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Lemma 3 — measured slots vs proven bounds",
		"nodes", "Delta", "bound_L", "ratio_L", "delta", "bound_B", "ratio_B")
	for _, n := range p.Sizes {
		d := data[n]
		dl, bl := mean(d["Delta"]), mean(d["boundL"])
		db, bb := mean(d["delta"]), mean(d["boundB"])
		t.AddRow(stats.F(float64(n)), stats.F(dl), stats.F(bl), ratio(dl, bl),
			stats.F(db), stats.F(bb), ratio(db, bb))
	}
	return t, nil
}

func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return stats.F(a / b)
}

type incompleteErr struct {
	where string
	n     int
	seed  int64
	a, b  broadcast.Metrics
}

func (e incompleteErr) Error() string {
	return e.where + ": incomplete broadcast (n=" + stats.F(float64(e.n)) + "): " + e.a.String() + " / " + e.b.String()
}

func errIncomplete(where string, n int, seed int64, a, b broadcast.Metrics) error {
	return incompleteErr{where: where, n: n, seed: seed, a: a, b: b}
}
