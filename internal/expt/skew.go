package expt

import (
	"fmt"

	"dynsens/internal/broadcast"
	"dynsens/internal/graph"
	"dynsens/internal/stats"
)

// Skew quantifies Section 3.3's synchronization relaxation: the TDM
// schedules assume synchronized rounds, and the paper argues only nodes at
// the same depth need tight synchronization. Rows sweep a uniform per-node
// clock offset in [-sigma, +sigma] against guard factors 1, 3 and 5; guard
// G tolerates skew up to G/2 rounds at a G-fold schedule cost.
func Skew(p Params, sigmas []int) (*stats.Table, error) {
	if len(sigmas) == 0 {
		sigmas = []int{0, 1, 2}
	}
	guards := []int{1, 3, 5}
	n := p.Sizes[len(p.Sizes)-1]
	t := stats.NewTable(fmt.Sprintf("Clock skew vs guard slots (n=%d)", n),
		"sigma", "g1_delivery", "g3_delivery", "g5_delivery", "g1_sched", "g3_sched", "g5_sched")
	for _, sigma := range sigmas {
		del := make(map[int][]float64)
		sch := make(map[int][]float64)
		for _, seed := range p.seeds() {
			net, err := buildNet(p, n, seed)
			if err != nil {
				return nil, err
			}
			rng := p.rng(seed * 23)
			skew := make(map[graph.NodeID]int)
			for _, id := range net.CNet().Tree().Nodes() {
				if sigma > 0 {
					skew[id] = rng.Intn(2*sigma+1) - sigma
				}
			}
			for _, g := range guards {
				plan, err := broadcast.ICFFPlanGuarded(net.Slots(), net.Root(), 1, g)
				if err != nil {
					return nil, err
				}
				m, err := plan.Run(net.Graph(), broadcast.Options{Skew: skew})
				if err != nil {
					return nil, err
				}
				del[g] = append(del[g], m.DeliveryRatio())
				sch[g] = append(sch[g], float64(m.ScheduleLen))
			}
		}
		t.AddRow(stats.F(float64(sigma)),
			fmt.Sprintf("%.3f", mean(del[1])), fmt.Sprintf("%.3f", mean(del[3])),
			fmt.Sprintf("%.3f", mean(del[5])),
			stats.F(mean(sch[1])), stats.F(mean(sch[3])), stats.F(mean(sch[5])))
	}
	return t, nil
}
