// Package netio serializes a constructed network — deployment geometry,
// cluster structure, time-slots and group state — to JSON for external
// tooling, and renders a quick ASCII map of the field for terminal
// inspection.
package netio

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dynsens/internal/cnet"
	"dynsens/internal/core"
	"dynsens/internal/geom"
	"dynsens/internal/graph"
	"dynsens/internal/radio"
	"dynsens/internal/timeslot"
)

// Node is the JSON form of one sensor.
type Node struct {
	ID     int     `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Status string  `json:"status"`
	Parent *int    `json:"parent,omitempty"`
	Depth  int     `json:"depth"`
	BSlot  *int    `json:"b_slot,omitempty"`
	LSlot  *int    `json:"l_slot,omitempty"`
	USlot  *int    `json:"u_slot,omitempty"`
	Groups []int   `json:"groups,omitempty"`
	Relays []int   `json:"relay_list,omitempty"`
}

// Network is the JSON form of the whole system state.
type Network struct {
	RegionWidth  float64  `json:"region_width_m"`
	RegionHeight float64  `json:"region_height_m"`
	Range        float64  `json:"range_m"`
	Root         int      `json:"root"`
	Nodes        []Node   `json:"nodes"`
	Edges        [][2]int `json:"edges"`
	Delta        int      `json:"delta_l"`
	SmallDelta   int      `json:"delta_b"`
}

// Export captures net (with the deployment providing geometry) as a
// serializable Network. The deployment's node i must be network node i.
func Export(net *core.Network, d *geom.Deployment) (*Network, error) {
	tr := net.CNet().Tree()
	if d.NumNodes() < net.Size() {
		return nil, fmt.Errorf("netio: deployment has %d positions for %d nodes", d.NumNodes(), net.Size())
	}
	out := &Network{
		RegionWidth:  d.Region.Width,
		RegionHeight: d.Region.Height,
		Range:        d.Range,
		Root:         int(net.Root()),
		Delta:        net.Slots().Delta(),
		SmallDelta:   net.Slots().SmallDelta(),
	}
	depth := tr.DepthMap()
	for _, id := range tr.Nodes() {
		if int(id) >= d.NumNodes() {
			return nil, fmt.Errorf("netio: node %d has no position", id)
		}
		st, _ := net.CNet().Status(id)
		n := Node{
			ID:     int(id),
			X:      d.Pos[int(id)].X,
			Y:      d.Pos[int(id)].Y,
			Status: statusWord(st),
			Depth:  depth[id],
			Groups: net.Groups().GroupList(id),
			Relays: net.Groups().RelayList(id),
		}
		if p, ok := tr.Parent(id); ok {
			pi := int(p)
			n.Parent = &pi
		}
		if s, ok := net.Slots().Slot(timeslot.B, id); ok {
			n.BSlot = &s
		}
		if s, ok := net.Slots().Slot(timeslot.L, id); ok {
			n.LSlot = &s
		}
		if s, ok := net.Slots().Slot(timeslot.U, id); ok {
			n.USlot = &s
		}
		out.Nodes = append(out.Nodes, n)
	}
	g := net.Graph()
	for _, u := range g.Nodes() {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out.Edges = append(out.Edges, [2]int{int(u), int(v)})
			}
		}
	}
	return out, nil
}

func statusWord(s cnet.Status) string {
	switch s {
	case cnet.Head:
		return "head"
	case cnet.Gateway:
		return "gateway"
	case cnet.Member:
		return "member"
	default:
		return "unknown"
	}
}

// Write emits indented JSON.
func (n *Network) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n)
}

// Read parses a Network from JSON.
func Read(r io.Reader) (*Network, error) {
	var n Network
	if err := json.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("netio: decode: %w", err)
	}
	return &n, nil
}

// Graph reconstructs the connectivity graph from a serialized Network.
func (n *Network) Graph() (*graph.Graph, error) {
	g := graph.New()
	for _, node := range n.Nodes {
		g.AddNode(graph.NodeID(node.ID))
	}
	for _, e := range n.Edges {
		if err := g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1])); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// SVG renders the network to scalable vector graphics: radio links in
// light gray, cluster-net tree edges in black, members as small dots,
// gateways as squares, heads as rings and the sink filled. The drawing is
// width pixels wide with height scaled to the region's aspect ratio.
func SVG(net *core.Network, d *geom.Deployment, width int) string {
	if width < 100 {
		width = 600
	}
	scale := float64(width) / d.Region.Width
	height := int(d.Region.Height * scale)
	sx := func(p geom.Point) float64 { return p.X * scale }
	sy := func(p geom.Point) float64 { return float64(height) - p.Y*scale }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	tr := net.CNet().Tree()
	g := net.Graph()
	line := func(u, v graph.NodeID, stroke string, w float64) {
		if int(u) >= d.NumNodes() || int(v) >= d.NumNodes() {
			return
		}
		pu, pv := d.Pos[int(u)], d.Pos[int(v)]
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
			sx(pu), sy(pu), sx(pv), sy(pv), stroke, w)
	}
	for _, u := range g.Nodes() {
		for _, v := range g.Neighbors(u) {
			if u < v {
				line(u, v, "#dddddd", 0.7)
			}
		}
	}
	for _, id := range tr.Nodes() {
		if p, ok := tr.Parent(id); ok {
			line(id, p, "#333333", 1.4)
		}
	}
	for _, id := range tr.Nodes() {
		if int(id) >= d.NumNodes() {
			continue
		}
		p := d.Pos[int(id)]
		x, y := sx(p), sy(p)
		st, _ := net.CNet().Status(id)
		switch {
		case id == net.Root():
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="#d62728"/>`+"\n", x, y)
		case st == cnet.Head:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4.5" fill="white" stroke="#1f77b4" stroke-width="2"/>`+"\n", x, y)
		case st == cnet.Gateway:
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="7" height="7" fill="#2ca02c"/>`+"\n", x-3.5, y-3.5)
		default:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="#555555"/>`+"\n", x, y)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// HeatSVG renders the field with nodes colored by a per-node scalar (for
// example first-reception round, awake rounds, or remaining energy): low
// values blue, high values red, missing entries gray. Tree edges are drawn
// faintly underneath.
func HeatSVG(net *core.Network, d *geom.Deployment, value map[graph.NodeID]float64, width int) string {
	if width < 100 {
		width = 600
	}
	scale := float64(width) / d.Region.Width
	height := int(d.Region.Height * scale)
	lo, hi := 0.0, 0.0
	first := true
	for _, v := range value {
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	color := func(v float64) string {
		t := 0.0
		if hi > lo {
			t = (v - lo) / (hi - lo)
		}
		r := int(40 + 215*t)
		b := int(255 - 215*t)
		return fmt.Sprintf("rgb(%d,60,%d)", r, b)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	tr := net.CNet().Tree()
	for _, id := range tr.Nodes() {
		p, ok := tr.Parent(id)
		if !ok || int(id) >= d.NumNodes() || int(p) >= d.NumNodes() {
			continue
		}
		a, c := d.Pos[int(id)], d.Pos[int(p)]
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eeeeee" stroke-width="1"/>`+"\n",
			a.X*scale, float64(height)-a.Y*scale, c.X*scale, float64(height)-c.Y*scale)
	}
	for _, id := range tr.Nodes() {
		if int(id) >= d.NumNodes() {
			continue
		}
		p := d.Pos[int(id)]
		fill := "#bbbbbb"
		if v, ok := value[id]; ok {
			fill = color(v)
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n",
			p.X*scale, float64(height)-p.Y*scale, fill)
	}
	fmt.Fprintf(&b, `<text x="4" y="%d" font-size="10" fill="#333">blue=low (%.0f)  red=high (%.0f)</text>`+"\n",
		height-4, lo, hi)
	b.WriteString("</svg>\n")
	return b.String()
}

// ReceptionRounds extracts each node's first payload-reception round from
// recorded radio events — the natural input for HeatSVG after a broadcast.
func ReceptionRounds(events []radio.Event) map[graph.NodeID]float64 {
	out := make(map[graph.NodeID]float64)
	for _, ev := range events {
		if ev.Kind != radio.EvDeliver {
			continue
		}
		if _, seen := out[ev.Node]; !seen {
			out[ev.Node] = float64(ev.Round)
		}
	}
	return out
}

// DOT renders the network as a Graphviz graph: cluster-net tree edges are
// solid, remaining radio links dotted; heads are doubled circles, gateways
// boxes, members plain. Positions (when a deployment is given) become pos
// attributes usable with neato -n.
func DOT(net *core.Network, d *geom.Deployment) string {
	var b strings.Builder
	b.WriteString("graph cnet {\n  node [fontsize=9];\n")
	tr := net.CNet().Tree()
	for _, id := range tr.Nodes() {
		shape := "circle"
		switch st, _ := net.CNet().Status(id); st {
		case cnet.Head:
			shape = "doublecircle"
		case cnet.Gateway:
			shape = "box"
		}
		attrs := fmt.Sprintf("shape=%s", shape)
		if id == net.Root() {
			attrs += ", style=filled, fillcolor=gray"
		}
		if d != nil && int(id) < d.NumNodes() {
			p := d.Pos[int(id)]
			attrs += fmt.Sprintf(", pos=\"%.0f,%.0f\"", p.X, p.Y)
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", id, attrs)
	}
	g := net.Graph()
	for _, u := range g.Nodes() {
		for _, v := range g.Neighbors(u) {
			if u >= v {
				continue
			}
			style := "dotted"
			if p, ok := tr.Parent(u); ok && p == v {
				style = "solid"
			}
			if p, ok := tr.Parent(v); ok && p == u {
				style = "solid"
			}
			fmt.Fprintf(&b, "  n%d -- n%d [style=%s];\n", u, v, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// AsciiMap renders the field as a cols x rows character grid: 'R' the
// root, 'H' heads, 'G' gateways, '.' members, with blanks elsewhere. When
// several nodes share a cell the most important one wins (R > H > G > .).
func AsciiMap(net *core.Network, d *geom.Deployment, cols, rows int) string {
	if cols < 1 {
		cols = 60
	}
	if rows < 1 {
		rows = 24
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	rank := func(b byte) int {
		switch b {
		case 'R':
			return 4
		case 'H':
			return 3
		case 'G':
			return 2
		case '.':
			return 1
		default:
			return 0
		}
	}
	for _, id := range net.CNet().Tree().Nodes() {
		if int(id) >= d.NumNodes() {
			continue
		}
		p := d.Pos[int(id)]
		c := int(p.X / d.Region.Width * float64(cols))
		r := int(p.Y / d.Region.Height * float64(rows))
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		var ch byte
		switch st, _ := net.CNet().Status(id); {
		case id == net.Root():
			ch = 'R'
		case st == cnet.Head:
			ch = 'H'
		case st == cnet.Gateway:
			ch = 'G'
		default:
			ch = '.'
		}
		if rank(ch) > rank(grid[rows-1-r][c]) {
			grid[rows-1-r][c] = ch
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	b.WriteString("R=root H=cluster-head G=gateway .=member\n")
	return b.String()
}
