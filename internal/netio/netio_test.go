package netio

import (
	"strings"
	"testing"

	"dynsens/internal/broadcast"
	"dynsens/internal/core"
	"dynsens/internal/geom"
	"dynsens/internal/trace"
	"dynsens/internal/workload"
)

func setup(t *testing.T) (*core.Network, *geom.Deployment) {
	t.Helper()
	d, err := workload.IncrementalConnected(workload.PaperConfig(4, 8, 60))
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.Build(d.Graph(), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net, d
}

func TestExportRoundTrip(t *testing.T) {
	net, d := setup(t)
	_ = net.JoinGroup(5, 2)
	nw, err := Export(net, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Nodes) != 60 {
		t.Fatalf("nodes = %d", len(nw.Nodes))
	}
	if nw.Root != int(net.Root()) || nw.Range != 50 {
		t.Fatalf("header = %+v", nw)
	}
	if len(nw.Edges) != net.Graph().NumEdges() {
		t.Fatalf("edges = %d, want %d", len(nw.Edges), net.Graph().NumEdges())
	}

	var b strings.Builder
	if err := nw.Write(&b); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != 60 || back.Delta != nw.Delta {
		t.Fatalf("round trip lost data: %+v", back)
	}
	g, err := back.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(net.Graph()) {
		t.Fatal("reconstructed graph differs")
	}
	// Group membership survived.
	found := false
	for _, n := range back.Nodes {
		if n.ID == 5 {
			for _, grp := range n.Groups {
				if grp == 2 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("group membership missing from export")
	}
}

func TestExportStatusAndSlots(t *testing.T) {
	net, d := setup(t)
	nw, err := Export(net, d)
	if err != nil {
		t.Fatal(err)
	}
	heads, gateways, members := 0, 0, 0
	for _, n := range nw.Nodes {
		switch n.Status {
		case "head":
			heads++
		case "gateway":
			gateways++
		case "member":
			members++
			if n.BSlot != nil || n.LSlot != nil || n.USlot != nil {
				t.Fatalf("member %d carries slots", n.ID)
			}
		default:
			t.Fatalf("node %d has status %q", n.ID, n.Status)
		}
		if n.ID == nw.Root {
			if n.Parent != nil || n.Depth != 0 {
				t.Fatal("root metadata wrong")
			}
		} else if n.Parent == nil {
			t.Fatalf("non-root %d has no parent", n.ID)
		}
	}
	st := net.Stats()
	if heads != st.Clusters || gateways != st.Gateways || members != st.Members {
		t.Fatalf("status counts %d/%d/%d vs %+v", heads, gateways, members, st)
	}
}

func TestExportMismatchedDeployment(t *testing.T) {
	net, _ := setup(t)
	short := &geom.Deployment{Region: geom.Region{Width: 10, Height: 10}, Range: 1}
	if _, err := Export(net, short); err == nil {
		t.Fatal("short deployment accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestHeatSVGFromBroadcast(t *testing.T) {
	net, d := setup(t)
	rec := trace.NewRecorder(0)
	m, err := net.Broadcast(net.Root(), broadcast.Options{Trace: rec.Hook()})
	if err != nil || !m.Completed {
		t.Fatalf("broadcast: %v %s", err, m)
	}
	rounds := ReceptionRounds(rec.Events())
	// Every node except the source received at some round.
	if len(rounds) != net.Size()-1 {
		t.Fatalf("reception rounds for %d nodes, want %d", len(rounds), net.Size()-1)
	}
	svg := HeatSVG(net, d, rounds, 400)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "rgb(") {
		t.Fatalf("malformed heat SVG: %.100s", svg)
	}
	// Gray fallback for the uncolored source.
	if !strings.Contains(svg, "#bbbbbb") {
		t.Fatal("source not gray")
	}
	// Empty value map still renders.
	if !strings.HasPrefix(HeatSVG(net, d, nil, 0), "<svg") {
		t.Fatal("empty heat map failed")
	}
}

func TestSVG(t *testing.T) {
	net, d := setup(t)
	svg := SVG(net, d, 400)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatalf("malformed SVG: %.80s", svg)
	}
	st := net.Stats()
	// One ring per non-root head, one square per gateway, one filled sink.
	if got := strings.Count(svg, `stroke="#1f77b4"`); got != st.Clusters-1 {
		t.Fatalf("head rings = %d, want %d", got, st.Clusters-1)
	}
	if got := strings.Count(svg, `fill="#2ca02c"`); got != st.Gateways {
		t.Fatalf("gateway squares = %d, want %d", got, st.Gateways)
	}
	if got := strings.Count(svg, `fill="#d62728"`); got != 1 {
		t.Fatalf("sinks = %d", got)
	}
	// Tree edges: n-1 dark lines.
	if got := strings.Count(svg, `stroke="#333333"`); got != net.Size()-1 {
		t.Fatalf("tree edges = %d, want %d", got, net.Size()-1)
	}
	// Tiny width falls back to the default.
	if !strings.Contains(SVG(net, d, 10), `width="600"`) {
		t.Fatal("width fallback missing")
	}
}

func TestDOT(t *testing.T) {
	net, d := setup(t)
	dot := DOT(net, d)
	if !strings.HasPrefix(dot, "graph cnet {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed DOT:\n%.120s", dot)
	}
	for _, want := range []string{"doublecircle", "style=solid", "style=dotted", "fillcolor=gray", "pos="} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
	// Tree edges: exactly n-1 solid edges.
	solid := strings.Count(dot, "style=solid")
	if solid != net.Size()-1 {
		t.Fatalf("solid edges = %d, want %d", solid, net.Size()-1)
	}
	// Without a deployment, no pos attributes.
	if strings.Contains(DOT(net, nil), "pos=") {
		t.Fatal("pos emitted without deployment")
	}
}

func TestAsciiMap(t *testing.T) {
	net, d := setup(t)
	m := AsciiMap(net, d, 40, 16)
	if !strings.Contains(m, "R") {
		t.Fatal("root missing from map")
	}
	lines := strings.Split(strings.TrimSpace(m), "\n")
	// 16 rows + 2 borders + legend.
	if len(lines) != 19 {
		t.Fatalf("map has %d lines", len(lines))
	}
	if len(lines[1]) != 42 {
		t.Fatalf("row width = %d", len(lines[1]))
	}
	// Default dimensions kick in for nonsense sizes.
	m2 := AsciiMap(net, d, 0, 0)
	if !strings.Contains(m2, "R") {
		t.Fatal("default-size map missing root")
	}
}
