package frame

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dynsens/internal/radio"
)

func sampleFrames() []Frame {
	msg := radio.Message{Seq: 7, Src: 2, From: 3, Dst: radio.NoNode, Slot: 4,
		Depth: 1, MaxSlot: 9, Height: 3, Group: 2, Value: -12345}
	return []Frame{
		{Kind: KindHello, Node: 17, Done: true},
		{Kind: KindHello, Node: -1},
		{Kind: KindAct, Round: 42},
		{Kind: KindAction, Round: 3, Action: radio.SleepAction()},
		{Kind: KindAction, Round: 4, Action: radio.ListenOn(2)},
		{Kind: KindAction, Round: 5, Action: radio.TransmitOn(1, msg)},
		{Kind: KindFinish, Round: 6},
		{Kind: KindFinish, Round: 6, HasMsg: true, Msg: msg},
		{Kind: KindStatus, Round: 7, Done: true},
		{Kind: KindHalt},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, f := range sampleFrames() {
		if err := enc.Encode(&f); err != nil {
			t.Fatalf("encode %v: %v", f.Kind, err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range sampleFrames() {
		var got Frame
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	var extra Frame
	if err := dec.Decode(&extra); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	enc := func(f Frame) []byte { return Append(nil, &f) }
	good := enc(Frame{Kind: KindStatus, Round: 1, Done: true})
	cases := []struct {
		name string
		in   []byte
	}{
		{"unknown kind", []byte{1, 99}},
		{"zero kind", []byte{1, 0}},
		{"trailing bytes", append(append([]byte{byte(len(good[1:]) + 1)}, good[1:]...), 0xFF)},
		{"truncated hello", []byte{1, byte(KindHello)}},
		{"bad bool", []byte{4, byte(KindStatus), 2, 2, 0}},
		{"bad action kind", []byte{4, byte(KindAction), 2, 9, 0}},
		{"oversized length", []byte{0xFF, 0xFF, 0xFF, 0x7F}},
	}
	for _, tc := range cases {
		dec := NewDecoder(bytes.NewReader(tc.in))
		var f Frame
		if err := dec.Decode(&f); err == nil || err == io.EOF {
			t.Errorf("%s: decode accepted %v (err=%v)", tc.name, tc.in, err)
		}
	}
	// A stream that ends mid-frame is an unexpected EOF, not a clean one.
	dec := NewDecoder(bytes.NewReader(good[:len(good)-1]))
	var f Frame
	if err := dec.Decode(&f); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-frame EOF: got %v, want io.ErrUnexpectedEOF", err)
	}
}

// decodeAll decodes frames until the first error, returning the frames and
// their canonical re-encoding.
func decodeAll(in []byte) ([]Frame, []byte) {
	dec := NewDecoder(bytes.NewReader(in))
	var frames []Frame
	var out []byte
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return frames, out
		}
		frames = append(frames, f)
		out = Append(out, &f)
	}
}

// FuzzFrameDecode fuzzes the two codec guarantees: decoding arbitrary bytes
// never panics, and for every frame that does decode, encode→decode→encode
// is a byte-fixpoint (the canonical encoding is stable).
func FuzzFrameDecode(f *testing.F) {
	var seed []byte
	for _, fr := range sampleFrames() {
		seed = Append(seed, &fr)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, byte(KindHalt), 1, byte(KindHalt)})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		frames1, out1 := decodeAll(data)
		frames2, out2 := decodeAll(out1)
		if len(frames1) != len(frames2) {
			t.Fatalf("re-decode lost frames: %d then %d", len(frames1), len(frames2))
		}
		for i := range frames1 {
			if frames1[i] != frames2[i] {
				t.Fatalf("frame %d changed across re-decode:\n first %+v\nsecond %+v",
					i, frames1[i], frames2[i])
			}
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("canonical encoding not a fixpoint:\n first %x\nsecond %x", out1, out2)
		}
	})
}
